package hypo

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/live"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/vfs"
)

// LiveConfig configures the durable store behind a Live engine; see
// live.Config for field semantics.
type LiveConfig struct {
	WALPath       string
	SnapshotPath  string
	SnapshotEvery int
	NoSync        bool
	Logger        *slog.Logger
	// FS, when non-nil, replaces the real filesystem under the store —
	// the seam fault-injection and crash tests use. Nil means the OS.
	FS vfs.FS
}

// Live couples a Pool with a durable, versioned fact store
// (internal/live): the program's rules stay fixed while its base EDB
// accepts transactional assert/retract batches at runtime. Every commit
// produces a new immutable data version; queries in flight keep the
// version their engine was leased at (snapshot isolation), queries
// admitted after Apply returns see the new one. Validation — constants
// inside the pinned dom(R, DB), no intensional predicates, ground facts
// only — happens here, above the store, which keeps internal/live free
// of engine concepts.
type Live struct {
	mu     sync.Mutex // serialises Apply: validate → commit → swap
	store  *live.Store
	pool   *Pool
	cur    *Program
	pinDom []symbols.Const
	domSet map[symbols.Const]bool
	rec    live.Recovery
}

// OpenLive builds a live engine: it recovers the durable state at lc's
// paths (snapshot + WAL tail; initial's facts seed a first boot), pins
// the constant domain, and starts a Pool at the recovered version.
//
// The pinned domain is dom(R, DB) of the initial program, plus
// opts.ExtraDomain, plus any constants appearing in recovered facts.
// It does not grow afterwards: asserting a fact with a fresh constant is
// rejected, exactly like querying with one (declare such constants in
// the program or opts.ExtraDomain). Pinning is what makes versions
// comparable — negation-as-failure and variable enumeration range over
// the same constants at every version, so a retraction can flip answers
// only through the facts, never by silently shrinking the domain.
func OpenLive(initial *Program, lc LiveConfig, opts Options) (*Live, error) {
	st, rec, err := live.Open(initial.src, live.Config{
		WALPath:       lc.WALPath,
		SnapshotPath:  lc.SnapshotPath,
		SnapshotEvery: lc.SnapshotEvery,
		NoSync:        lc.NoSync,
		Logger:        lc.Logger,
		FS:            lc.FS,
	})
	if err != nil {
		return nil, err
	}

	// Pin the domain. Recovered facts may mention constants absent from
	// the initial text (asserted in a previous run); they were in-domain
	// when accepted, so they stay in-domain now.
	dom, domSet := domainInfo(initial, opts)
	pinDom := append([]symbols.Const(nil), dom...)
	for _, f := range st.Facts() {
		for _, t := range f.Args {
			c := initial.syms.Const(t.Name)
			if !domSet[c] {
				domSet[c] = true
				pinDom = append(pinDom, c)
			}
		}
	}

	cur, err := initial.withFacts(st.Facts(), pinDom)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("hypo: compiling recovered facts: %w", err)
	}
	pl, err := NewPool(cur, opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	pl.SetProgram(cur, rec.Version)

	metrics.LiveVersion.Set(int64(rec.Version))
	metrics.LiveReplayed.Add(int64(rec.Replayed))
	metrics.LiveSnapshotAge.Set(int64(st.SinceSnapshot()))
	metrics.LiveReadOnly.Set(0)

	return &Live{
		store:  st,
		pool:   pl,
		cur:    cur,
		pinDom: pinDom,
		domSet: domSet,
		rec:    rec,
	}, nil
}

// Pool returns the query pool. Queries admitted after an Apply returns
// are answered at (or after) the version that Apply produced.
func (l *Live) Pool() *Pool { return l.pool }

// Version returns the current data version.
func (l *Live) Version() uint64 { return l.store.Version() }

// Recovery reports what OpenLive reconstructed from disk.
func (l *Live) Recovery() live.Recovery { return l.rec }

// Degraded reports whether the store has gone read-only after an
// unrecoverable I/O error, with the cause (empty when healthy). A
// degraded Live is still a serving Live: the pool keeps answering
// queries at the last committed version — only mutation traffic is
// refused, with live.ErrReadOnly. The state is sticky; recovering the
// disk requires a restart, which replays the WAL.
func (l *Live) Degraded() (bool, string) {
	ro, err := l.store.ReadOnly()
	if !ro {
		return false, ""
	}
	reason := "unrecoverable I/O error"
	if err != nil {
		reason = err.Error()
	}
	return true, reason
}

// ParseMutations parses assert/retract surface atoms ("edge(a, b)") into
// a mutation batch, rejecting non-ground atoms. Validation beyond
// groundness (domain, intensional predicates) happens at Apply.
func ParseMutations(asserts, retracts []string) ([]live.Mutation, error) {
	out := make([]live.Mutation, 0, len(asserts)+len(retracts))
	parse := func(src string, op live.Op) error {
		a, err := parser.ParseAtom(src)
		if err != nil {
			return fmt.Errorf("hypo: %s %q: %w", op, src, err)
		}
		if !a.IsGround() {
			return fmt.Errorf("hypo: %s %q: fact is not ground", op, src)
		}
		out = append(out, live.Mutation{Op: op, Atom: a})
		return nil
	}
	for _, s := range asserts {
		if err := parse(s, live.OpAssert); err != nil {
			return nil, err
		}
	}
	for _, s := range retracts {
		if err := parse(s, live.OpRetract); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Apply commits a mutation batch: all mutations are validated, written
// durably (WAL fsync), applied as one new data version, and the pool is
// swapped so every subsequent lease evaluates at that version. The batch
// is all-or-nothing — one invalid mutation rejects it with no effect.
// Apply returns only after the swap, so a caller that sees the ack is
// guaranteed the next query it sends observes the commit (or a later
// one). Concurrent Applies serialise; each gets its own version.
func (l *Live) Apply(ms []live.Mutation) (live.CommitInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	for _, m := range ms {
		if err := l.validate(m); err != nil {
			metrics.LiveRejected.Inc()
			return live.CommitInfo{}, err
		}
	}
	// The effective delta must be computed against the pre-commit store:
	// it is what lets stale pooled engines catch up in place instead of
	// rebuilding (see Pool.SetProgramDelta).
	added, removed := effectiveDelta(ms, l.store.Has)
	info, err := l.store.Commit(ms)
	if err != nil {
		// An I/O failure is a degradation, not a rejection: the batch was
		// fine, the disk was not. Flip the gauge operators alert on and
		// surface live.ErrReadOnly so callers can tell the two apart.
		if errors.Is(err, live.ErrReadOnly) {
			metrics.LiveReadOnly.Set(1)
		} else {
			metrics.LiveRejected.Inc()
		}
		return live.CommitInfo{}, err
	}
	next, err := l.cur.withFacts(l.store.Facts(), l.pinDom)
	if err != nil {
		// The commit is durable but unservable — impossible unless a
		// validated fact fails to compile. Fail loudly rather than serve a
		// version that silently dropped it.
		return live.CommitInfo{}, fmt.Errorf("hypo: committed batch failed to compile: %w", err)
	}
	l.cur = next
	l.pool.SetProgramDelta(next, info.Version, added, removed)

	metrics.LiveCommits.Inc()
	metrics.LiveMutations.Add(int64(len(ms)))
	metrics.LiveVersion.Set(int64(info.Version))
	metrics.LiveSnapshotAge.Set(int64(l.store.SinceSnapshot()))
	if info.Compacted {
		metrics.LiveCompactions.Inc()
	}
	// A commit can succeed and still degrade the store (the WAL rotation
	// inside its compaction failed after the record was durable).
	if ro, _ := l.store.ReadOnly(); ro {
		metrics.LiveReadOnly.Set(1)
	}
	return info, nil
}

// validate enforces the engine-level admission rules for one mutation:
// the fact must be ground, its predicate extensional, and its constants
// inside the pinned domain.
func (l *Live) validate(m live.Mutation) error {
	return validateMutation(m, l.cur, l.domSet)
}

// validateMutation is the admission check shared by Live.Apply and
// Engine.ApplyDelta.
func validateMutation(m live.Mutation, p *Program, domSet map[symbols.Const]bool) error {
	if !m.Atom.IsGround() {
		return fmt.Errorf("hypo: %s %s: fact is not ground", m.Op, m.Atom)
	}
	if pr, ok := p.syms.LookupPred(m.Atom.Pred, len(m.Atom.Args)); ok && p.comp.IDB[pr] {
		return fmt.Errorf("hypo: %s %s: predicate %s/%d is intensional (defined by rules); only base facts can be mutated",
			m.Op, m.Atom, m.Atom.Pred, len(m.Atom.Args))
	}
	for _, t := range m.Atom.Args {
		if t.IsVar {
			continue
		}
		if c, ok := p.syms.LookupConst(t.Name); !ok || !domSet[c] {
			return fmt.Errorf("hypo: %s %s: constant %q is outside dom(R, DB); declare it in the program or Options.ExtraDomain",
				m.Op, m.Atom, t.Name)
		}
	}
	return nil
}

// effectiveDelta simulates a mutation batch in order against a presence
// oracle for the pre-batch base and returns the facts whose membership
// actually changes — asserting a present fact, retracting an absent one,
// or doing both to the same atom in one batch nets out to nothing. The
// returned slices preserve first-occurrence order, so the same batch
// always produces the same delta.
func effectiveDelta(ms []live.Mutation, has func(ast.Atom) bool) (added, removed []ast.Atom) {
	type entry struct {
		atom      ast.Atom
		base, now bool
	}
	state := map[string]*entry{}
	var order []string
	for _, m := range ms {
		k := m.Atom.String()
		en, ok := state[k]
		if !ok {
			p := has(m.Atom)
			en = &entry{atom: m.Atom, base: p, now: p}
			state[k] = en
			order = append(order, k)
		}
		switch m.Op {
		case live.OpAssert:
			en.now = true
		case live.OpRetract:
			en.now = false
		}
	}
	for _, k := range order {
		en := state[k]
		if en.now && !en.base {
			added = append(added, en.atom)
		}
		if !en.now && en.base {
			removed = append(removed, en.atom)
		}
	}
	return added, removed
}

// Close shuts the pool down (in-flight queries finish on their leased
// engines) and then closes the store, compacting once more when a
// snapshot path is configured.
func (l *Live) Close() error {
	l.pool.Close()
	return l.store.Close()
}
