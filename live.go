package hypo

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/live"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/storage"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/vfs"
)

// LiveConfig configures the durable store behind a Live engine; see
// live.Config for field semantics.
type LiveConfig struct {
	WALPath       string
	SnapshotPath  string
	SnapshotEvery int
	NoSync        bool
	Logger        *slog.Logger
	// FS, when non-nil, replaces the real filesystem under the store —
	// the seam fault-injection and crash tests use. Nil means the OS.
	FS vfs.FS
	// StreamTailLen bounds the in-memory ring of recent commit records
	// kept for replication followers; 0 means the store default. A
	// follower further behind than the tail reaches must
	// snapshot-bootstrap instead of streaming.
	StreamTailLen int
	// RecoveryProbeInterval is the initial delay between background
	// write-path recovery probes after a transient degradation (ENOSPC);
	// probes back off exponentially from it. 0 means one second.
	// Corruption-class degradations are never probed — they stay sticky
	// until restart.
	RecoveryProbeInterval time.Duration
}

// Live couples a Pool with a durable, versioned fact store
// (internal/live): the program's rules stay fixed while its base EDB
// accepts transactional assert/retract batches at runtime. Every commit
// produces a new immutable data version; queries in flight keep the
// version their engine was leased at (snapshot isolation), queries
// admitted after Apply returns see the new one. Validation — constants
// inside the pinned dom(R, DB), no intensional predicates, ground facts
// only — happens here, above the store, which keeps internal/live free
// of engine concepts.
type Live struct {
	mu     sync.Mutex // serialises Apply: validate → commit → swap
	store  *live.Store
	pool   *Pool
	cur    *Program
	pinDom []symbols.Const
	domSet map[symbols.Const]bool
	rec    live.Recovery
	mets   *metrics.Set // metric set for commit traffic (never nil)

	// changed is closed and replaced after each pool swap (under mu).
	// WaitVersion waits on it rather than on the store's own broadcast,
	// which fires between the durable commit and the swap — waking there
	// could admit a read that still leases an engine at the old version.
	changed chan struct{}

	// probing (under mu) is true while a background recovery goroutine is
	// retrying TryRecover after a transient degradation; stop ends it at
	// Close. probeIv is the initial probe interval.
	probing  bool
	stop     chan struct{}
	stopOnce sync.Once
	probeIv  time.Duration
}

// OpenLive builds a live engine: it recovers the durable state at lc's
// paths (snapshot + WAL tail; initial's facts seed a first boot), pins
// the constant domain, and starts a Pool at the recovered version.
//
// The pinned domain is dom(R, DB) of the initial program, plus
// opts.ExtraDomain, plus any constants appearing in recovered facts.
// It does not grow afterwards: asserting a fact with a fresh constant is
// rejected, exactly like querying with one (declare such constants in
// the program or opts.ExtraDomain). Pinning is what makes versions
// comparable — negation-as-failure and variable enumeration range over
// the same constants at every version, so a retraction can flip answers
// only through the facts, never by silently shrinking the domain.
func OpenLive(initial *Program, lc LiveConfig, opts Options) (*Live, error) {
	st, rec, err := live.Open(initial.src, live.Config{
		WALPath:       lc.WALPath,
		SnapshotPath:  lc.SnapshotPath,
		SnapshotEvery: lc.SnapshotEvery,
		NoSync:        lc.NoSync,
		Logger:        lc.Logger,
		FS:            lc.FS,
		StreamTailLen: lc.StreamTailLen,
	})
	if err != nil {
		return nil, err
	}

	// Pin the domain. Recovered facts may mention constants absent from
	// the initial text (asserted in a previous run); they were in-domain
	// when accepted, so they stay in-domain now.
	dom, domSet := domainInfo(initial, opts)
	pinDom := append([]symbols.Const(nil), dom...)
	for _, f := range st.Facts() {
		for _, t := range f.Args {
			c := initial.syms.Const(t.Name)
			if !domSet[c] {
				domSet[c] = true
				pinDom = append(pinDom, c)
			}
		}
	}

	cur, err := initial.withFacts(st.Facts(), pinDom)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("hypo: compiling recovered facts: %w", err)
	}
	pl, err := NewPool(cur, opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	pl.SetProgram(cur, rec.Version)

	mets := opts.metricSet()
	mets.LiveVersion.Set(int64(rec.Version))
	mets.LiveReplayed.Add(int64(rec.Replayed))
	mets.LiveSnapshotAge.Set(int64(st.SinceSnapshot()))
	mets.LiveReadOnly.Set(0)

	probeIv := lc.RecoveryProbeInterval
	if probeIv <= 0 {
		probeIv = time.Second
	}
	l := &Live{
		store:   st,
		pool:    pl,
		cur:     cur,
		pinDom:  pinDom,
		domSet:  domSet,
		rec:     rec,
		mets:    mets,
		changed: make(chan struct{}),
		stop:    make(chan struct{}),
		probeIv: probeIv,
	}
	mets.DiskBytes.Set(st.DiskBytes())
	return l, nil
}

// Pool returns the query pool. Queries admitted after an Apply returns
// are answered at (or after) the version that Apply produced.
func (l *Live) Pool() *Pool { return l.pool }

// Version returns the current data version.
func (l *Live) Version() uint64 { return l.store.Version() }

// Recovery reports what OpenLive reconstructed from disk.
func (l *Live) Recovery() live.Recovery { return l.rec }

// Degraded reports whether the store has gone read-only after an I/O
// error, with the cause (empty when healthy). A degraded Live is still
// a serving Live: the pool keeps answering queries at the last
// committed version — only mutation traffic is refused, with
// live.ErrReadOnly. Corruption-class degradations are sticky until
// restart; transient ones (ENOSPC) are retried by a background recovery
// prober (see Recovering) and clear in place once a probe write fsyncs.
func (l *Live) Degraded() (bool, string) {
	ro, err := l.store.ReadOnly()
	if !ro {
		return false, ""
	}
	reason := "unrecoverable I/O error"
	if err != nil {
		reason = err.Error()
	}
	return true, reason
}

// Recovering reports whether a background recovery prober is currently
// retrying the write path after a transient degradation.
func (l *Live) Recovering() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.probing
}

// noteDegradedLocked flips the alerting gauge and, for a transient
// degradation, starts the background recovery prober (at most one runs
// at a time). Called with mu held wherever a degrade is observed.
func (l *Live) noteDegradedLocked() {
	l.mets.LiveReadOnly.Set(1)
	if l.probing {
		return
	}
	ro, transient, _ := l.store.Degraded()
	if !ro || !transient {
		return
	}
	l.mets.DiskDegradedTransient.Inc()
	l.probing = true
	go l.probeLoop()
}

// probeLoop retries TryRecover with exponential backoff until the store
// is writable again, the degradation turns out sticky, or the Live
// closes. It re-enables the write path in place — no restart — which is
// the right response to space pressure: the WAL prefix is known-good
// and acked commits are already durable in it.
func (l *Live) probeLoop() {
	iv := l.probeIv
	maxIv := 32 * l.probeIv
	done := func() {
		l.mu.Lock()
		l.probing = false
		l.mu.Unlock()
	}
	for {
		select {
		case <-l.stop:
			done()
			return
		case <-time.After(iv):
		}
		l.mets.DiskRecoveryProbes.Inc()
		if err := l.store.TryRecover(); err == nil {
			done()
			l.mets.DiskRecoveries.Inc()
			l.mets.LiveReadOnly.Set(0)
			return
		}
		if ro, transient, _ := l.store.Degraded(); !ro || !transient {
			// Cleared some other way, or reclassified sticky: stop probing.
			done()
			if !ro {
				l.mets.LiveReadOnly.Set(0)
			}
			return
		}
		if iv *= 2; iv > maxIv {
			iv = maxIv
		}
	}
}

// ParseMutations parses assert/retract surface atoms ("edge(a, b)") into
// a mutation batch, rejecting non-ground atoms. Validation beyond
// groundness (domain, intensional predicates) happens at Apply.
func ParseMutations(asserts, retracts []string) ([]live.Mutation, error) {
	out := make([]live.Mutation, 0, len(asserts)+len(retracts))
	parse := func(src string, op live.Op) error {
		a, err := parser.ParseAtom(src)
		if err != nil {
			return fmt.Errorf("hypo: %s %q: %w", op, src, err)
		}
		if !a.IsGround() {
			return fmt.Errorf("hypo: %s %q: fact is not ground", op, src)
		}
		out = append(out, live.Mutation{Op: op, Atom: a})
		return nil
	}
	for _, s := range asserts {
		if err := parse(s, live.OpAssert); err != nil {
			return nil, err
		}
	}
	for _, s := range retracts {
		if err := parse(s, live.OpRetract); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Apply commits a mutation batch: all mutations are validated, written
// durably (WAL fsync), applied as one new data version, and the pool is
// swapped so every subsequent lease evaluates at that version. The batch
// is all-or-nothing — one invalid mutation rejects it with no effect.
// Apply returns only after the swap, so a caller that sees the ack is
// guaranteed the next query it sends observes the commit (or a later
// one). Concurrent Applies serialise; each gets its own version.
func (l *Live) Apply(ms []live.Mutation) (live.CommitInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applyLocked(ms)
}

func (l *Live) applyLocked(ms []live.Mutation) (live.CommitInfo, error) {
	for _, m := range ms {
		if err := l.validate(m); err != nil {
			l.mets.LiveRejected.Inc()
			return live.CommitInfo{}, err
		}
	}
	// The effective delta must be computed against the pre-commit store:
	// it is what lets stale pooled engines catch up in place instead of
	// rebuilding (see Pool.SetProgramDelta).
	added, removed := effectiveDelta(ms, l.store.Has)
	info, err := l.store.Commit(ms)
	if err != nil {
		// An I/O failure is a degradation, not a rejection: the batch was
		// fine, the disk was not. Flip the gauge operators alert on and
		// surface live.ErrReadOnly so callers can tell the two apart.
		if errors.Is(err, live.ErrReadOnly) {
			l.noteDegradedLocked()
		} else {
			l.mets.LiveRejected.Inc()
		}
		return live.CommitInfo{}, err
	}
	next, err := l.cur.withFacts(l.store.Facts(), l.pinDom)
	if err != nil {
		// The commit is durable but unservable — impossible unless a
		// validated fact fails to compile. Fail loudly rather than serve a
		// version that silently dropped it.
		return live.CommitInfo{}, fmt.Errorf("hypo: committed batch failed to compile: %w", err)
	}
	l.cur = next
	l.pool.SetProgramDelta(next, info.Version, added, removed)
	l.broadcastLocked()

	l.mets.LiveCommits.Inc()
	l.mets.LiveMutations.Add(int64(len(ms)))
	l.mets.LiveVersion.Set(int64(info.Version))
	l.mets.LiveSnapshotAge.Set(int64(l.store.SinceSnapshot()))
	if info.Compacted {
		l.mets.LiveCompactions.Inc()
	}
	l.mets.DiskBytes.Set(l.store.DiskBytes())
	// A commit can succeed and still degrade the store (the WAL rotation
	// inside its compaction failed after the record was durable).
	if ro, _ := l.store.ReadOnly(); ro {
		l.noteDegradedLocked()
	}
	return info, nil
}

// Store exposes the underlying versioned store. Replication
// (internal/repl) reads the WAL tail and snapshots through it; normal
// mutation traffic must keep going through Apply, which is what
// validates and swaps the pool.
func (l *Live) Store() *live.Store { return l.store }

// ApplyReplicated applies one streamed WAL record from a replication
// primary, exactly as Apply would have applied the original batch: same
// validation, same durability (the record is re-framed into the local
// WAL), same pool swap. Records must arrive in version order with no
// gaps — the record's version must be exactly the local version + 1;
// anything else means the stream and the store have diverged and the
// caller must re-bootstrap from a snapshot.
func (l *Live) ApplyReplicated(rec live.Record) (live.CommitInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if want := l.store.Version() + 1; rec.Version != want {
		return live.CommitInfo{}, fmt.Errorf("hypo: replicated record jumps from version %d to %d; resync required", l.store.Version(), rec.Version)
	}
	info, err := l.applyLocked(rec.Muts)
	if err != nil {
		return info, err
	}
	if info.Version != rec.Version {
		// Cannot happen while the version check above holds (Commit
		// increments by one), but a silent renumbering would desync every
		// answer's version stamp — fail loudly.
		return info, fmt.Errorf("hypo: replicated record %d committed as version %d", rec.Version, info.Version)
	}
	return info, nil
}

// InstallSnapshot replaces the entire fact base with a bootstrap
// snapshot (storage.Write format) at the given version, durably, and
// swaps the pool to it. It is the replication cold-start path: a
// follower whose WAL position has aged out of the primary's stream
// window downloads a full snapshot and resumes tailing from its
// version. Every fact is validated against the local program's pinned
// domain first — with primary and replica running the same program the
// check always passes; a failure means the programs differ and the
// replica must not serve.
func (l *Live) InstallSnapshot(rd io.Reader, version uint64) error {
	snap, err := storage.Read(rd)
	if err != nil {
		return fmt.Errorf("hypo: parsing bootstrap snapshot: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, f := range snap.Facts {
		if err := l.validate(live.Mutation{Op: live.OpAssert, Atom: f}); err != nil {
			l.mets.LiveRejected.Inc()
			return fmt.Errorf("hypo: bootstrap snapshot: %w", err)
		}
	}
	if err := l.store.ResetToFacts(snap.Facts, version); err != nil {
		if errors.Is(err, live.ErrReadOnly) {
			l.noteDegradedLocked()
		}
		return err
	}
	next, err := l.cur.withFacts(l.store.Facts(), l.pinDom)
	if err != nil {
		return fmt.Errorf("hypo: bootstrap snapshot failed to compile: %w", err)
	}
	l.cur = next
	l.pool.SetProgram(next, version)
	l.broadcastLocked()
	l.mets.LiveCommits.Inc()
	l.mets.LiveVersion.Set(int64(version))
	l.mets.LiveSnapshotAge.Set(int64(l.store.SinceSnapshot()))
	return nil
}

// broadcastLocked wakes WaitVersion waiters; called with mu held, after
// the pool has been swapped to the new version.
func (l *Live) broadcastLocked() {
	close(l.changed)
	l.changed = make(chan struct{})
}

// WaitVersion blocks until the pool serves data version min or later —
// i.e. until a lease taken after it returns is guaranteed to evaluate
// at >= min — or until ctx is done, returning ctx's error in that case.
// It is the read-your-writes primitive: a server gating on
// X-Hdl-Min-Version parks the request here until replication catches
// up.
func (l *Live) WaitVersion(ctx context.Context, min uint64) error {
	for {
		// Grab the channel and check the version under one lock: the swap
		// and the broadcast also happen under it, so a commit landing after
		// the check closes the channel we already hold — the wake-up cannot
		// be missed.
		l.mu.Lock()
		ch := l.changed
		v := l.pool.Version()
		l.mu.Unlock()
		if v >= min {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// validate enforces the engine-level admission rules for one mutation:
// the fact must be ground, its predicate extensional, and its constants
// inside the pinned domain.
func (l *Live) validate(m live.Mutation) error {
	return validateMutation(m, l.cur, l.domSet)
}

// validateMutation is the admission check shared by Live.Apply and
// Engine.ApplyDelta.
func validateMutation(m live.Mutation, p *Program, domSet map[symbols.Const]bool) error {
	if !m.Atom.IsGround() {
		return fmt.Errorf("hypo: %s %s: fact is not ground", m.Op, m.Atom)
	}
	if pr, ok := p.syms.LookupPred(m.Atom.Pred, len(m.Atom.Args)); ok && p.comp.IDB[pr] {
		return fmt.Errorf("hypo: %s %s: predicate %s/%d is intensional (defined by rules); only base facts can be mutated",
			m.Op, m.Atom, m.Atom.Pred, len(m.Atom.Args))
	}
	for _, t := range m.Atom.Args {
		if t.IsVar {
			continue
		}
		if c, ok := p.syms.LookupConst(t.Name); !ok || !domSet[c] {
			return fmt.Errorf("hypo: %s %s: constant %q is outside dom(R, DB); declare it in the program or Options.ExtraDomain",
				m.Op, m.Atom, t.Name)
		}
	}
	return nil
}

// effectiveDelta simulates a mutation batch in order against a presence
// oracle for the pre-batch base and returns the facts whose membership
// actually changes — asserting a present fact, retracting an absent one,
// or doing both to the same atom in one batch nets out to nothing. The
// returned slices preserve first-occurrence order, so the same batch
// always produces the same delta.
func effectiveDelta(ms []live.Mutation, has func(ast.Atom) bool) (added, removed []ast.Atom) {
	type entry struct {
		atom      ast.Atom
		base, now bool
	}
	state := map[string]*entry{}
	var order []string
	for _, m := range ms {
		k := m.Atom.String()
		en, ok := state[k]
		if !ok {
			p := has(m.Atom)
			en = &entry{atom: m.Atom, base: p, now: p}
			state[k] = en
			order = append(order, k)
		}
		switch m.Op {
		case live.OpAssert:
			en.now = true
		case live.OpRetract:
			en.now = false
		}
	}
	for _, k := range order {
		en := state[k]
		if en.now && !en.base {
			added = append(added, en.atom)
		}
		if !en.now && en.base {
			removed = append(removed, en.atom)
		}
	}
	return added, removed
}

// Close stops the recovery prober, shuts the pool down (in-flight
// queries finish on their leased engines) and then closes the store,
// compacting once more when a snapshot path is configured.
func (l *Live) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	l.pool.Close()
	return l.store.Close()
}
