// University: the paper's motivating Examples 1-3 — hypothetical queries
// over a curriculum database, and the two-discipline graduation policy
// expressed with hypothetical premises in rule bodies.
package main

import (
	"fmt"
	"log"

	"hypodatalog"
)

const policy = `
	% --- facts: courses taken ---
	take(tony, his101).
	take(tony, eng201).
	take(mary, his101).

	% Single-discipline graduation.
	grad(S) :- take(S, his101), take(S, eng201).

	% --- Example 3: the math-and-physics policy ---
	% "A student qualifies for a degree in math and physics if he is
	%  within one course of a degree in math and within one course of a
	%  degree in physics."
	take2(sue, m1).  take2(sue, m2).  take2(sue, p1).
	take2(bob, m1).

	grad2(S, math) :- take2(S, m1), take2(S, m2), take2(S, m3).
	grad2(S, phys) :- take2(S, p1), take2(S, p2).
	within1(S, D)  :- grad2(S, D)[add: take2(S, C)].
	grad2(S, mathphys) :- within1(S, math), within1(S, phys).
`

func main() {
	prog, err := hypo.Parse(policy)
	if err != nil {
		log.Fatal(err)
	}
	// Example 3's rulebase is NOT linearly stratified (grad2/within1 are
	// mutually recursive through two premises) — the engine still
	// evaluates it; only the Σ_k^P bound is unavailable.
	s := prog.Stratification()
	fmt.Printf("linearly stratified: %v", s.Linear)
	if !s.Linear {
		fmt.Printf(" (%s)", s.Reason)
	}
	fmt.Println()

	eng, err := hypo.New(prog, hypo.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Example 1: "If Mary took eng201, would she be eligible to graduate?"
	ok, err := eng.Ask("grad(mary)[add: take(mary, eng201)]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 1: grad(mary) if take(mary, eng201)?  %v\n", ok)

	// Example 2: "Retrieve those students who could graduate if they took
	// one more course."
	bs, err := eng.Query("grad(S)[add: take(S, C)]")
	if err != nil {
		log.Fatal(err)
	}
	students := map[string]bool{}
	for _, b := range bs {
		students[b["S"]] = true
	}
	fmt.Printf("Example 2: students within one course of grad: %v\n", keys(students))

	// Example 3: Sue is one course short of math (m3) and of physics (p2),
	// so she qualifies for the joint degree; Bob does not.
	for _, who := range []string{"sue", "bob"} {
		ok, err := eng.Ask(fmt.Sprintf("grad2(%s, mathphys)", who))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Example 3: grad2(%s, mathphys)?  %v\n", who, ok)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
