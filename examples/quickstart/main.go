// Quickstart: parse a hypothetical Datalog program, check its
// stratification, and run ground and non-ground queries.
package main

import (
	"fmt"
	"log"

	"hypodatalog"
)

func main() {
	prog, err := hypo.Parse(`
		% A tiny curriculum database.
		take(tony, his101).
		take(tony, eng201).
		take(mary, his101).

		% Graduation requires both courses.
		grad(S) :- take(S, his101), take(S, eng201).

		% "Within one course of graduating": a hypothetical premise.
		within1(S) :- grad(S)[add: take(S, C)].
	`)
	if err != nil {
		log.Fatal(err)
	}

	s := prog.Stratification()
	fmt.Printf("linearly stratified: %v, strata: %d\n", s.Linear, s.Strata)

	eng, err := hypo.New(prog, hypo.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Ground queries.
	for _, q := range []string{
		"grad(tony)",
		"grad(mary)",
		"grad(mary)[add: take(mary, eng201)]", // Example 1's shape
		"within1(mary)",
	} {
		ok, err := eng.Ask(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s -> %v\n", q+"?", ok)
	}

	// A non-ground query enumerates bindings (Example 2's shape).
	bindings, err := eng.Query("grad(S)[add: take(S, C)]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("students within one (hypothetical) course of graduating:")
	seen := map[string]bool{}
	for _, b := range bindings {
		if !seen[b["S"]] {
			seen[b["S"]] = true
			fmt.Printf("  %s\n", b["S"])
		}
	}

	// Evaluate a query in an explicitly extended database.
	ok, err := eng.AskUnder("grad(mary)", "take(mary, eng201)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grad(mary) under +take(mary, eng201) -> %v\n", ok)
}
