// Ordering: the section 6 trick — computing an order-dependent query on
// an unordered domain by hypothetically asserting every linear order.
// The demo query ("is |D| odd?") walks the asserted order and checks the
// parity of the last element's position; genericity guarantees every
// order gives the same answer, demonstrated by renaming the domain.
package main

import (
	"fmt"
	"log"
	"time"

	"hypodatalog"
	"hypodatalog/internal/generic"
)

func main() {
	for n := 1; n <= 5; n++ {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("el%d", i)
		}
		src := generic.ParityViaOrder("d") + generic.DomainFacts("d", names)
		prog, err := hypo.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := hypo.New(prog, hypo.Options{Mode: hypo.ModeUniform})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		yes, err := eng.Ask("yes")
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		// Rename every constant: the answer must not change (genericity).
		renamed := make([]string, n)
		for i := range renamed {
			renamed[i] = fmt.Sprintf("zz%d", n-i)
		}
		src2 := generic.ParityViaOrder("d") + generic.DomainFacts("d", renamed)
		prog2, err := hypo.Parse(src2)
		if err != nil {
			log.Fatal(err)
		}
		eng2, err := hypo.New(prog2, hypo.Options{Mode: hypo.ModeUniform})
		if err != nil {
			log.Fatal(err)
		}
		yes2, err := eng2.Ask("yes")
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("|D| = %d: odd=%v  renamed-domain=%v  (%v; up to %d! orders)\n",
			n, yes, yes2, elapsed.Round(time.Microsecond), n)
		if yes != (n%2 == 1) || yes2 != yes {
			log.Fatal("order dependence or wrong parity detected")
		}
	}
	fmt.Println("\nNo a-priori order exists; the rules assert one hypothetically,")
	fmt.Println("and generic queries cannot tell the orders apart (section 6.2.3).")
}
