// Hamiltonian: the paper's Examples 7 and 8 — an NP-hard query (directed
// Hamiltonian path) in four hypothetical rules, and its complement with
// one extra negation. Answers are cross-checked against a brute-force
// graph search.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"hypodatalog"
	"hypodatalog/internal/workload"
)

func main() {
	n := flag.Int("n", 7, "number of nodes")
	p := flag.Float64("p", 0.25, "edge probability")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	for trial := 0; trial < 4; trial++ {
		var g workload.Digraph
		kind := "random"
		if trial%2 == 0 {
			g = workload.PlantedHamiltonian(rng, *n, *p/2)
			kind = "planted"
		} else {
			g = workload.RandomDigraph(rng, *n, *p)
		}
		prog, err := hypo.Parse(workload.HamiltonianProgram(g))
		if err != nil {
			log.Fatal(err)
		}
		eng, err := hypo.New(prog, hypo.Options{})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		yes, err := eng.Ask("yes")
		if err != nil {
			log.Fatal(err)
		}
		ruleTime := time.Since(start)
		no, err := eng.Ask("no")
		if err != nil {
			log.Fatal(err)
		}
		want := workload.HasHamiltonianPath(g)
		fmt.Printf("%s graph: n=%d edges=%d  yes=%-5v no=%-5v brute=%-5v  (%v)\n",
			kind, g.N, len(g.Edges), yes, no, want, ruleTime.Round(time.Microsecond))
		if yes != want || no == yes {
			log.Fatalf("inconsistent answers on %s graph", kind)
		}
	}
	fmt.Println("\nEach rule-engine answer matches brute force; 'no' is always")
	fmt.Println("the complement of 'yes' (Example 8's single extra negation).")
}
