// Turing: the Theorem 1 lower-bound construction end to end. A cascade of
// NP oracle Turing machines is compiled into a hypothetical rulebase R(L)
// with one stratum per machine (section 5.1 of the paper); the rulebase's
// 'accept' answer is compared against direct simulation of the machines.
package main

import (
	"fmt"
	"log"

	"hypodatalog"
	"hypodatalog/internal/turing"
)

func main() {
	machines := []*turing.Machine{
		turing.HasOne(),         // k=1: accepts strings containing a 1
		turing.CopyThenAskYes(), // k=2: same language via an oracle call
		turing.CopyThenAskNo(),  // k=2: the complement, via ~ORACLE
	}
	inputs := []string{"", "0", "1", "00", "01", "10", "11"}

	for _, m := range machines {
		fmt.Printf("machine %s (k=%d):\n", m.Name, m.Depth())
		rules, err := turing.EncodeRules(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  R(L): %d rule lines, independent of the input\n",
			countLines(rules))
		for _, in := range inputs {
			n := 2*len(in) + 6
			want, err := m.Accepts(in, n)
			if err != nil {
				log.Fatal(err)
			}
			src, err := turing.Encode(m, in, n)
			if err != nil {
				log.Fatal(err)
			}
			prog, err := hypo.Parse(src)
			if err != nil {
				log.Fatal(err)
			}
			s := prog.Stratification()
			if !s.Linear || s.Strata != m.Depth() {
				log.Fatalf("encoding of %s: strata=%d linear=%v, want %d",
					m.Name, s.Strata, s.Linear, m.Depth())
			}
			eng, err := hypo.New(prog, hypo.Options{Mode: hypo.ModeUniform})
			if err != nil {
				log.Fatal(err)
			}
			got, err := eng.Ask("accept")
			if err != nil {
				log.Fatal(err)
			}
			status := "ok"
			if got != want {
				status = "MISMATCH"
			}
			fmt.Printf("  input %-4q sim=%-5v rules=%-5v %s\n", in, want, got, status)
			if got != want {
				log.Fatalf("encoding disagrees with simulation")
			}
		}
	}
	fmt.Println("\nEvery encoding agrees with direct simulation, and R(L) has")
	fmt.Println("exactly k strata for a k-machine cascade — Theorem 1's shape.")
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
