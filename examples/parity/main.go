// Parity: the paper's Example 6 — deciding whether a relation has an even
// number of tuples by hypothetically copying it, one tuple at a time,
// while two mutually recursive predicates flip between EVEN and ODD.
// Plain Datalog cannot express this query on unordered domains.
package main

import (
	"fmt"
	"log"

	"hypodatalog"
	"hypodatalog/internal/workload"
)

func main() {
	for n := 0; n <= 8; n++ {
		prog, err := hypo.Parse(workload.ParityProgram(n))
		if err != nil {
			log.Fatal(err)
		}
		s := prog.Stratification()
		eng, err := hypo.New(prog, hypo.Options{})
		if err != nil {
			log.Fatal(err)
		}
		even, err := eng.Ask("even")
		if err != nil {
			log.Fatal(err)
		}
		odd, err := eng.Ask("odd")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("|A| = %d: even=%-5v odd=%-5v (strata: %d)\n", n, even, odd, s.Strata)
		if even != (n%2 == 0) {
			log.Fatalf("wrong answer at n=%d", n)
		}
	}
	fmt.Println("\nThe copy order is irrelevant: every order yields the same")
	fmt.Println("answer — the order-independence that section 6 builds on.")
}
