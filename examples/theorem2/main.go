// Theorem2: the paper's expressibility result, end to end. A Turing
// machine deciding a generic query ("is the relation p non-empty?") is
// compiled to a CONSTANT-FREE hypothetical rulebase that evaluates it on
// an unordered domain: the rules assert every linear order hypothetically,
// build a pair counter from the asserted order, write the database onto
// the machine's tape as a bitmap (zeros via negation-as-failure), and
// simulate the machine — all without naming a single constant.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"hypodatalog"
	"hypodatalog/internal/generic"
	"hypodatalog/internal/turing"
)

func main() {
	rules, err := generic.CompileGeneric(turing.HasOne(), "d", "p")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R(ψ): %d constant-free rules for the query \"p non-empty?\"\n\n",
		strings.Count(rules, "\n"))

	cases := []struct {
		n      int
		marked []int
	}{
		{2, nil}, {2, []int{1}}, {3, nil}, {3, []int{0, 2}}, {4, []int{2}},
	}
	for _, tc := range cases {
		var facts strings.Builder
		for i := 0; i < tc.n; i++ {
			fmt.Fprintf(&facts, "d(el%d).\n", i)
		}
		for _, i := range tc.marked {
			fmt.Fprintf(&facts, "p(el%d).\n", i)
		}
		prog, err := hypo.Parse(rules + facts.String())
		if err != nil {
			log.Fatal(err)
		}
		eng, err := hypo.New(prog, hypo.Options{Mode: hypo.ModeUniform})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		yes, err := eng.Ask("yes")
		if err != nil {
			log.Fatal(err)
		}
		want := len(tc.marked) > 0
		status := "ok"
		if yes != want {
			status = "MISMATCH"
		}
		fmt.Printf("|d|=%d marked=%v -> yes=%-5v (want %-5v, %v) %s\n",
			tc.n, tc.marked, yes, want, time.Since(start).Round(time.Microsecond), status)
		if yes != want {
			log.Fatal("wrong answer")
		}
	}
	fmt.Println("\nEvery answer is computed without any order on the domain and")
	fmt.Println("without any constant in the rulebase — Theorem 2's construction.")
}
