// Package metrics is the observability layer for the hypothetical
// Datalog engines: lock-free atomic counters and latency histograms,
// exported through the standard library's expvar registry (so
// `GET /debug/vars` on any process that mounts expvar's handler reports
// them).
//
// Metrics are grouped into instance-scoped Sets. A Set is one serving
// instance's counters — one engine pool, one live store, one HTTP
// surface. A process hosting several independent pools (the multi-tenant
// hdld) gives each its own Set so that one tenant's traffic never
// perturbs another's numbers; Default is the process-wide set used by
// everything that is not explicitly scoped, published under the legacy
// expvar name "hypo" (the default tenant's alias).
//
// The hot proving loops never touch this package. Counters are updated
// once per query (or per pool transition) from the public API layer, so
// enabling metrics costs a handful of atomic adds per query, not per goal
// expansion.
package metrics

import (
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous level — it goes up and down (e.g.
// requests currently in flight), unlike the monotone Counter.
type Gauge struct {
	v atomic.Int64
}

// Inc raises the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set overwrites the gauge's level (e.g. the current data version).
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by a signed delta (e.g. bytes held by a cache);
// several instances adding deltas into one gauge aggregate correctly.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (cumulative counts are
// derivable from the per-bucket counts). Observations above the last
// bound land in an overflow bucket. All methods are safe for concurrent
// use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sumNs  atomic.Int64 // sum of observations, in nanoseconds-of-a-second
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation (for latencies, in seconds).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(v * float64(time.Second)))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / float64(time.Second) }

// Buckets returns the bucket upper bounds and the per-bucket counts (one
// extra trailing count for observations above the last bound).
func (h *Histogram) Buckets() ([]float64, []int64) {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return h.bounds, out
}

// queryLatencyBounds bucket wall-clock seconds per query, 100µs to 10s.
var queryLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Set is one serving instance's metric set: every hypo.Engine, hypo.Pool,
// hypo.Live, answer cache and HTTP surface reports into exactly one Set.
// The zero value is NOT usable (QueryLatency needs allocation) — build
// Sets with NewSet. All fields are safe for concurrent use.
type Set struct {
	name string

	// Query lifecycle. Every started query ends in exactly one of
	// succeeded (evaluated to an answer, true or false), failed (parse,
	// domain, configuration or budget error), or canceled (the caller's
	// context was canceled or its deadline expired mid-evaluation).
	QueriesStarted   Counter
	QueriesSucceeded Counter
	QueriesFailed    Counter
	QueriesCanceled  Counter

	// Evaluation work, accumulated from per-engine stats deltas after
	// each query: top-down goal expansions and memo-table hits.
	GoalExpansions Counter
	TableHits      Counter

	// Bottom-up Δ-part materialisations computed (cache misses) by the
	// cascade's PROVE_Δ provers.
	DeltaMaterialisations Counter

	// Pool traffic: engines handed out from the free list, engines
	// returned, and engines constructed because the free list was empty.
	PoolGets Counter
	PoolPuts Counter
	PoolNews Counter

	// HTTP serving layer (internal/server). HTTPRequests counts every
	// request that reached an API handler; HTTPShed counts requests
	// refused with 429 because the admission queue was full; HTTPQueued
	// and HTTPInFlight are the instantaneous number of requests waiting
	// for an evaluation slot and holding one.
	HTTPRequests Counter
	HTTPShed     Counter
	HTTPQueued   Gauge
	HTTPInFlight Gauge

	// Live EDB (hypo.Live / internal/live). LiveCommits counts committed
	// mutation batches, LiveMutations the individual mutations inside
	// them, LiveRejected the batches refused by validation (domain,
	// intensional predicate, non-ground). LiveReplayed counts WAL records
	// replayed at recovery, LiveRebuilds engines rebuilt because their
	// data version went stale, LiveCompactions snapshot compactions.
	// LiveVersion is the current data version; LiveSnapshotAge is how many
	// commits the snapshot lags it (the WAL tail a crash would replay).
	// LiveReadOnly is 1 while the store is degraded to read-only after an
	// unrecoverable I/O error (queries keep serving the last committed
	// version; mutations are refused until restart) — the gauge to alert
	// on.
	LiveCommits     Counter
	LiveMutations   Counter
	LiveRejected    Counter
	LiveReplayed    Counter
	LiveRebuilds    Counter
	LiveCompactions Counter
	LiveVersion     Gauge
	LiveSnapshotAge Gauge
	LiveReadOnly    Gauge

	// Incremental maintenance on the commit path. A stale pooled engine
	// normally catches up to the current data version by replaying the
	// commits' effective fact deltas in place: LiveIncrementalApplies
	// counts those catch-ups, LiveIncrementalAtoms the base atoms applied
	// by them, LiveIncrementalFallbacks the catch-ups that could not use
	// the delta path (history gap, oversized batch) and fell back to a
	// rebuild. LiveSubstrateBuilds counts per-version fact substrates
	// interned (the singleflighted part of a rebuild; K engines rebuilding
	// at one version share a single substrate build). Inside the cascade,
	// LiveIncrementalStates counts cached Δ-part materialisations
	// maintained in place and LiveIncrementalDropped the cached states (or
	// memo entries' worth of them) discarded to lazy recomputation.
	LiveIncrementalApplies   Counter
	LiveIncrementalFallbacks Counter
	LiveIncrementalAtoms     Counter
	LiveIncrementalStates    Counter
	LiveIncrementalDropped   Counter
	LiveSubstrateBuilds      Counter

	// Demand-driven (magic-sets) evaluation, Options.DemandDriven.
	// MagicQueries counts ground goals answered through a magic-
	// transformed program; MagicFallbacks goals on intensional predicates
	// that had to fall back to full evaluation (degenerate transform —
	// no demand restriction possible — or compile failure).
	// MagicTransforms counts demand patterns installed on engines (one
	// per engine per queried predicate; the transform itself is computed
	// once per program and shared). MagicInvalidations counts demand
	// caches dropped because a commit's predicate cone overlapped the
	// pattern's transformed rules.
	MagicQueries       Counter
	MagicFallbacks     Counter
	MagicTransforms    Counter
	MagicInvalidations Counter

	// Versioned answer cache (internal/cache). CacheHits counts reads
	// served from a stored entry, CacheMisses reads that ran an
	// evaluation, CacheCoalesced reads that waited on another caller's
	// identical in-flight evaluation and shared its answer (no engine
	// lease of their own). CacheEvictions counts entries dropped for byte
	// budget (or by explicit invalidation); CacheBytes and CacheEntries
	// are the instantaneous totals across every cache reporting into this
	// set.
	CacheHits      Counter
	CacheMisses    Counter
	CacheCoalesced Counter
	CacheEvictions Counter
	CacheBytes     Gauge
	CacheEntries   Gauge

	// CacheCarried counts entries carried forward across a commit because
	// the commit's recorded predicate cone could not have changed their
	// answer (cone-aware retention; without it every version bump expires
	// the whole cache).
	CacheCarried Counter

	// WAL-shipping replication (internal/repl). Primary side:
	// ReplFramesSent counts record/heartbeat/gone frames written to
	// followers, ReplSnapshotsServed bootstrap snapshots streamed, and
	// ReplStreams the tail streams currently open. Replica side:
	// ReplRecordsApplied counts WAL records applied through the local
	// store, ReplBootstraps snapshot bootstraps performed, ReplReconnects
	// stream re-establishments after an error or disconnect.
	// ReplAppliedVersion/ReplPrimaryVersion are the replica's applied data
	// version and the primary's last advertised one; ReplLag is their
	// difference and ReplConnected is 1 while a tail stream is open — the
	// pair to alert on. Serving layer: ReplProxiedWrites counts writes a
	// replica forwarded to the primary, ReplMinVersionWaits reads that had
	// to wait for the store to reach X-Hdl-Min-Version, and
	// ReplMinVersionTimeouts the waits that expired into a 503.
	ReplFramesSent         Counter
	ReplSnapshotsServed    Counter
	ReplStreams            Gauge
	ReplRecordsApplied     Counter
	ReplBootstraps         Counter
	ReplReconnects         Counter
	ReplAppliedVersion     Gauge
	ReplPrimaryVersion     Gauge
	ReplLag                Gauge
	ReplConnected          Gauge
	ReplProxiedWrites      Counter
	ReplMinVersionWaits    Counter
	ReplMinVersionTimeouts Counter

	// Memory governance. MemQueryAborts counts queries aborted because
	// their per-query growth exceeded Options.MaxMemoryBytes (surfaced to
	// callers as ErrMemory / HTTP 422). MemTenantShed counts requests a
	// tenant refused with 503 over_memory because the tenant's tracked
	// footprint (idle engines + answer cache) exceeded its memory quota.
	// MemPoolBytes and MemCacheBytes are the instantaneous tracked
	// footprints of the instance's idle engines and its answer cache;
	// MemEngineTrims counts idle engines dropped by quota-pressure trims.
	MemQueryAborts Counter
	MemTenantShed  Counter
	MemPoolBytes   Gauge
	MemCacheBytes  Gauge
	MemEngineTrims Counter

	// Disk governance. DiskQuotaShed counts mutation batches refused with
	// 503 over_disk because the tenant's on-disk footprint (WAL + snapshot)
	// exceeded its disk quota. DiskDegradedTransient counts degradations
	// classified as transient I/O pressure (ENOSPC and friends) — eligible
	// for automatic recovery — versus sticky corruption.
	// DiskRecoveryProbes counts background probe attempts while degraded;
	// DiskRecoveries counts successful re-enables of the write path.
	// DiskBytes is the instantaneous on-disk footprint (WAL + snapshots).
	DiskQuotaShed         Counter
	DiskDegradedTransient Counter
	DiskRecoveryProbes    Counter
	DiskRecoveries        Counter
	DiskBytes             Gauge

	// Replica→primary write-proxy circuit breaker. ProxyBreakerState is
	// the current state (0 closed, 1 half-open, 2 open); ProxyBreakerOpens
	// counts closed→open transitions. ProxyRetries counts per-request
	// retry attempts after a retryable failure, ProxyFastFails requests
	// answered 503 primary_unreachable without touching the network
	// because the breaker was open.
	ProxyBreakerState Gauge
	ProxyBreakerOpens Counter
	ProxyRetries      Counter
	ProxyFastFails    Counter

	// QueryLatency buckets wall-clock seconds per query, 100µs to 10s.
	QueryLatency *Histogram
}

// NewSet builds a fresh, zeroed metric set. name is the expvar name the
// set registers under when Publish is called; use one name per serving
// instance ("hypo" is reserved for Default, tenants use "hypo_<tenant>").
// NewSet does not publish — a Set is usable without ever touching expvar,
// which is how per-tenant sets are surfaced through a single dynamic
// registry snapshot instead of leaking one expvar per created-then-
// deleted tenant.
func NewSet(name string) *Set {
	return &Set{name: name, QueryLatency: NewHistogram(queryLatencyBounds...)}
}

// Name returns the expvar name the set registers under.
func (s *Set) Name() string { return s.name }

// Snapshot returns the current value of every metric in the set, keyed by
// the names used in the expvar export.
func (s *Set) Snapshot() map[string]any {
	out := map[string]any{
		"queries_started":            s.QueriesStarted.Value(),
		"queries_succeeded":          s.QueriesSucceeded.Value(),
		"queries_failed":             s.QueriesFailed.Value(),
		"queries_canceled":           s.QueriesCanceled.Value(),
		"goal_expansions":            s.GoalExpansions.Value(),
		"table_hits":                 s.TableHits.Value(),
		"delta_materialisations":     s.DeltaMaterialisations.Value(),
		"pool_gets":                  s.PoolGets.Value(),
		"pool_puts":                  s.PoolPuts.Value(),
		"pool_news":                  s.PoolNews.Value(),
		"http_requests":              s.HTTPRequests.Value(),
		"http_shed":                  s.HTTPShed.Value(),
		"http_queued":                s.HTTPQueued.Value(),
		"http_in_flight":             s.HTTPInFlight.Value(),
		"live_commits":               s.LiveCommits.Value(),
		"live_mutations":             s.LiveMutations.Value(),
		"live_rejected":              s.LiveRejected.Value(),
		"live_replayed":              s.LiveReplayed.Value(),
		"live_rebuilds":              s.LiveRebuilds.Value(),
		"live_compactions":           s.LiveCompactions.Value(),
		"live_incremental_applies":   s.LiveIncrementalApplies.Value(),
		"live_incremental_fallbacks": s.LiveIncrementalFallbacks.Value(),
		"live_incremental_atoms":     s.LiveIncrementalAtoms.Value(),
		"live_incremental_states":    s.LiveIncrementalStates.Value(),
		"live_incremental_dropped":   s.LiveIncrementalDropped.Value(),
		"live_substrate_builds":      s.LiveSubstrateBuilds.Value(),
		"live_version":               s.LiveVersion.Value(),
		"live_snapshot_age":          s.LiveSnapshotAge.Value(),
		"live_readonly":              s.LiveReadOnly.Value(),
		"magic_queries":              s.MagicQueries.Value(),
		"magic_fallbacks":            s.MagicFallbacks.Value(),
		"magic_transforms":           s.MagicTransforms.Value(),
		"magic_invalidations":        s.MagicInvalidations.Value(),
		"cache_hits":                 s.CacheHits.Value(),
		"cache_misses":               s.CacheMisses.Value(),
		"cache_coalesced":            s.CacheCoalesced.Value(),
		"cache_evictions":            s.CacheEvictions.Value(),
		"cache_bytes":                s.CacheBytes.Value(),
		"cache_entries":              s.CacheEntries.Value(),
		"cache_carried":              s.CacheCarried.Value(),
		"repl_frames_sent":           s.ReplFramesSent.Value(),
		"repl_snapshots_served":      s.ReplSnapshotsServed.Value(),
		"repl_streams":               s.ReplStreams.Value(),
		"repl_records_applied":       s.ReplRecordsApplied.Value(),
		"repl_bootstraps":            s.ReplBootstraps.Value(),
		"repl_reconnects":            s.ReplReconnects.Value(),
		"repl_applied_version":       s.ReplAppliedVersion.Value(),
		"repl_primary_version":       s.ReplPrimaryVersion.Value(),
		"repl_lag":                   s.ReplLag.Value(),
		"repl_connected":             s.ReplConnected.Value(),
		"repl_proxied_writes":        s.ReplProxiedWrites.Value(),
		"repl_min_version_waits":     s.ReplMinVersionWaits.Value(),
		"repl_min_version_timeouts":  s.ReplMinVersionTimeouts.Value(),
		"mem_query_aborts":           s.MemQueryAborts.Value(),
		"mem_tenant_shed":            s.MemTenantShed.Value(),
		"mem_pool_bytes":             s.MemPoolBytes.Value(),
		"mem_cache_bytes":            s.MemCacheBytes.Value(),
		"mem_engine_trims":           s.MemEngineTrims.Value(),
		"disk_quota_shed":            s.DiskQuotaShed.Value(),
		"disk_degraded_transient":    s.DiskDegradedTransient.Value(),
		"disk_recovery_probes":       s.DiskRecoveryProbes.Value(),
		"disk_recoveries":            s.DiskRecoveries.Value(),
		"disk_bytes":                 s.DiskBytes.Value(),
		"proxy_breaker_state":        s.ProxyBreakerState.Value(),
		"proxy_breaker_opens":        s.ProxyBreakerOpens.Value(),
		"proxy_retries":              s.ProxyRetries.Value(),
		"proxy_fast_fails":           s.ProxyFastFails.Value(),
		"query_latency_count":        s.QueryLatency.Count(),
		"query_latency_sum":          s.QueryLatency.Sum(),
	}
	bounds, counts := s.QueryLatency.Buckets()
	buckets := make(map[string]int64, len(counts))
	for i, n := range counts {
		if i < len(bounds) {
			buckets[fmt.Sprintf("le_%g", bounds[i])] = n
		} else {
			buckets["le_inf"] = n
		}
	}
	out["query_latency_buckets"] = buckets
	return out
}

// published guards expvar registration: expvar.Publish panics on a
// duplicate name, and test binaries re-run packages with -count, so every
// registration in this package is name-idempotent.
var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// Publish registers the set's expvar variable under its name. It is
// idempotent per name: repeated calls — and a name already registered by
// someone else — are no-ops rather than the expvar.Publish panic. A
// published Set must outlive the process (expvar has no unregister);
// short-lived sets (tenants created and deleted at runtime) should be
// surfaced through a dynamic parent snapshot (see PublishFunc) instead.
func (s *Set) Publish() {
	PublishFunc(s.name, func() any { return s.Snapshot() })
}

// PublishFunc registers an expvar Func under name, idempotently. The
// multi-tenant registry uses it to export one "hypo_programs" variable
// whose snapshot walks the live tenants — created and deleted tenants
// appear and disappear without fighting expvar's register-once model.
func PublishFunc(name string, fn func() any) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] || expvar.Get(name) != nil {
		published[name] = true
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(fn))
}

// Default is the process-wide metric set, published under the legacy
// expvar name "hypo". Every engine, pool, cache and server that is not
// given an explicit Set reports here — in a single-program process it is
// the only set, and in a multi-tenant one it is the default tenant's
// alias, so dashboards built against the legacy names keep working.
var Default = NewSet("hypo")

// Snapshot returns the Default set's snapshot (legacy package-level
// form).
func Snapshot() map[string]any { return Default.Snapshot() }

// PublishExpvar registers the "hypo" expvar variable for the Default
// set. It is idempotent; it runs automatically on package init — call it
// explicitly only when expvar registration order matters.
func PublishExpvar() { Default.Publish() }

func init() { PublishExpvar() }
