package metrics

import (
	"encoding/json"
	"expvar"
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 99} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	// 0.0005 and 0.001 land in le_0.001 (bounds are inclusive upper).
	want := []int64{2, 1, 1, 1}
	for i, n := range counts {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, n, want[i], counts)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-99.0565) > 1e-6 {
		t.Errorf("sum = %v, want 99.0565", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(g % 4))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	_, counts := h.Buckets()
	var sum int64
	for _, n := range counts {
		sum += n
	}
	if sum != 4000 {
		t.Fatalf("bucket sum = %d, want 4000", sum)
	}
}

// TestExpvarExport checks that the "hypo" expvar variable is published and
// renders valid JSON that tracks the live counters.
func TestExpvarExport(t *testing.T) {
	v := expvar.Get("hypo")
	if v == nil {
		t.Fatal(`expvar.Get("hypo") = nil; init() did not publish`)
	}
	before := Default.QueriesStarted.Value()
	Default.QueriesStarted.Inc()
	var snap map[string]any
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar JSON: %v\n%s", err, v.String())
	}
	got, ok := snap["queries_started"].(float64)
	if !ok || int64(got) != before+1 {
		t.Errorf("queries_started via expvar = %v, want %d", snap["queries_started"], before+1)
	}
	if _, ok := snap["query_latency_buckets"]; !ok {
		t.Error("snapshot missing query_latency_buckets")
	}
}

func TestSnapshotKeys(t *testing.T) {
	snap := Snapshot()
	for _, k := range []string{
		"queries_started", "queries_succeeded", "queries_failed", "queries_canceled",
		"goal_expansions", "table_hits", "delta_materialisations",
		"pool_gets", "pool_puts", "pool_news",
		"query_latency_count", "query_latency_sum", "query_latency_buckets",
		"http_requests", "http_shed", "http_queued", "http_in_flight",
	} {
		if _, ok := snap[k]; !ok {
			t.Errorf("Snapshot missing %q", k)
		}
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %d", g.Value())
	}
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if g.Value() != 1 {
		t.Fatalf("gauge after balanced churn = %d, want 1", g.Value())
	}
}

// TestNewSetIsolated: instance-scoped sets share nothing — a counter
// bumped on one set must not move on another, and each set keeps its
// own name and snapshot.
func TestNewSetIsolated(t *testing.T) {
	a := NewSet("hypo_a")
	b := NewSet("hypo_b")
	a.QueriesStarted.Add(3)
	a.HTTPShed.Inc()
	if b.QueriesStarted.Value() != 0 || b.HTTPShed.Value() != 0 {
		t.Fatalf("set b saw set a's increments: %d, %d",
			b.QueriesStarted.Value(), b.HTTPShed.Value())
	}
	if Default.QueriesStarted.Value() < 0 {
		t.Fatal("unreachable; keeps Default referenced")
	}
	if a.Name() != "hypo_a" || b.Name() != "hypo_b" {
		t.Errorf("names = %q, %q", a.Name(), b.Name())
	}
	snap := a.Snapshot()
	if got, ok := snap["queries_started"].(int64); !ok || got != 3 {
		t.Errorf("snapshot queries_started = %v, want 3", snap["queries_started"])
	}
	a.QueryLatency.Observe(0.005)
	if b.QueryLatency.Count() != 0 {
		t.Error("histograms shared between sets")
	}
}

// TestPublishFuncIdempotent mirrors the Publish guard for dynamic vars.
func TestPublishFuncIdempotent(t *testing.T) {
	PublishFunc("hypo_test_dynamic", func() any { return map[string]any{"x": 1} })
	PublishFunc("hypo_test_dynamic", func() any { return map[string]any{"x": 2} })
	v := expvar.Get("hypo_test_dynamic")
	if v == nil {
		t.Fatal("PublishFunc did not publish")
	}
	var snap map[string]int
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("dynamic expvar JSON: %v\n%s", err, v.String())
	}
	if snap["x"] != 1 {
		t.Errorf("second PublishFunc replaced the first: %v", snap)
	}
}

// TestPublishExpvarIdempotent: expvar.Publish panics on duplicate names,
// so the export must survive being requested from several packages.
func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar() // already ran via init()
	PublishExpvar()
	if expvar.Get("hypo") == nil {
		t.Fatal(`expvar.Get("hypo") = nil after PublishExpvar`)
	}
}
