// Package ref is a direct, deliberately naive implementation of the
// inference relation of Definition 3 (plus stratified negation-as-failure,
// section 3.1, and the hypothetical-deletion extension). It enumerates
// every ground substitution over the domain and computes fixpoints by
// brute force.
//
// Evaluation proceeds SCC level by SCC level (callees first). Within one
// level it computes a joint least fixpoint over ALL database states
// reachable through hypothetical premises — necessary because deletions
// make state transitions non-monotone (a chain of [add]/[del] premises can
// revisit an earlier state), so a per-state recursion would not terminate.
// Negated premises always refer to strictly lower levels, whose values are
// final when read.
//
// It exists as the specification against which the real engines are
// differentially tested; it is exponential and must only be used on small
// programs. Programs must be free of recursion through negation (run
// strat.Check first) — this package does not re-verify it.
package ref

import (
	"sort"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/symbols"
)

// Interp evaluates a compiled program by exhaustive enumeration.
type Interp struct {
	prog *ast.CProgram
	in   *facts.Interner
	base *facts.DB
	dom  []symbols.Const

	sccOf      map[symbols.Pred]int // topo order: callees before callers
	numSCC     int
	rulesBySCC [][]int

	// final[(stateKey, level)] holds the completed set of atoms derived by
	// the rules of SCC `level` in that state.
	final map[cellKey]atomSet
}

type cellKey struct {
	state string
	level int
}

type atomSet map[facts.AtomID]struct{}

func (s atomSet) has(id facts.AtomID) bool { _, ok := s[id]; return ok }

// New builds an interpreter for a compiled program. The domain is the set
// of constants mentioned anywhere in the program (facts and rules), per
// the paper's dom(R, DB); extra constants may be appended for queries that
// mention fresh symbols.
func New(cp *ast.CProgram, extraDom ...symbols.Const) *Interp {
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	for _, f := range cp.Facts {
		// Compiled facts intern their predicate with their own arity, so a
		// mismatch here means a corrupted CProgram — unrecoverable.
		if _, err := base.Insert(in.InternGround(f)); err != nil {
			panic(err)
		}
	}
	ip := &Interp{
		prog:  cp,
		in:    in,
		base:  base,
		dom:   Domain(cp, extraDom...),
		final: make(map[cellKey]atomSet),
	}
	ip.computeSCCs()
	return ip
}

// Domain returns the constants of dom(R, DB) for a compiled program, plus
// any extras, without duplicates, in first-seen order.
func Domain(cp *ast.CProgram, extra ...symbols.Const) []symbols.Const {
	seen := map[symbols.Const]bool{}
	var dom []symbols.Const
	add := func(t ast.CTerm) {
		if t.IsVar() {
			return
		}
		c := t.ConstID()
		if !seen[c] {
			seen[c] = true
			dom = append(dom, c)
		}
	}
	atom := func(a ast.CAtom) {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, f := range cp.Facts {
		atom(f)
	}
	for _, r := range cp.Rules {
		atom(r.Head)
		for _, pr := range r.Body {
			atom(pr.Atom)
			for _, a := range pr.Adds {
				atom(a)
			}
			for _, a := range pr.Dels {
				atom(a)
			}
		}
	}
	for _, c := range extra {
		if !seen[c] {
			seen[c] = true
			dom = append(dom, c)
		}
	}
	return dom
}

// Base returns the interpreter's base database.
func (ip *Interp) Base() *facts.DB { return ip.base }

// EmptyState returns the state of the unmodified base database.
func (ip *Interp) EmptyState() facts.State { return facts.NewState(ip.base) }

// Interner returns the interpreter's ground-atom interner.
func (ip *Interp) Interner() *facts.Interner { return ip.in }

// Dom returns the interpreter's domain. The slice must not be modified.
func (ip *Interp) Dom() []symbols.Const { return ip.dom }

// computeSCCs builds the predicate dependency SCCs of the compiled program
// in reverse topological order (callees first).
func (ip *Interp) computeSCCs() {
	var nodes []symbols.Pred
	idx := map[symbols.Pred]int{}
	node := func(p symbols.Pred) int {
		if i, ok := idx[p]; ok {
			return i
		}
		i := len(nodes)
		nodes = append(nodes, p)
		idx[p] = i
		return i
	}
	adj := map[int][]int{}
	for _, r := range ip.prog.Rules {
		h := node(r.Head.Pred)
		for _, pr := range r.Body {
			adj[h] = append(adj[h], node(pr.Atom.Pred))
		}
	}
	n := len(nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0
	compOf := make([]int, n)
	numComp := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				compOf[w] = numComp
				if w == v {
					break
				}
			}
			numComp++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	ip.numSCC = numComp
	ip.sccOf = make(map[symbols.Pred]int, n)
	for i, p := range nodes {
		ip.sccOf[p] = compOf[i]
	}
	ip.rulesBySCC = make([][]int, numComp)
	for ri, r := range ip.prog.Rules {
		c := compOf[idx[r.Head.Pred]]
		ip.rulesBySCC[c] = append(ip.rulesBySCC[c], ri)
	}
}

// sccOfPred returns the SCC of a predicate, or -1 if it has no defining
// rules (its derivations are exactly the state's facts).
func (ip *Interp) sccOfPred(p symbols.Pred) int {
	if c, ok := ip.sccOf[p]; ok {
		return c
	}
	return -1
}

// Holds reports whether the interned ground atom holds in the given state:
// R, DB±Δ ⊢ A per Definition 3 (with deletions).
func (ip *Interp) Holds(goal facts.AtomID, st facts.State) bool {
	if st.Has(goal) {
		return true
	}
	c := ip.sccOfPred(ip.in.Pred(goal))
	if c < 0 {
		return false
	}
	ip.computeLevel(st, c)
	return ip.final[cellKey{st.Key(), c}].has(goal)
}

// HoldsPremise evaluates a ground compiled premise in a state.
func (ip *Interp) HoldsPremise(p ast.CPremise, st facts.State) bool {
	goal := ip.in.InternGround(p.Atom)
	switch p.Kind {
	case ast.Plain:
		return ip.Holds(goal, st)
	case ast.Negated:
		return !ip.Holds(goal, st)
	case ast.Hyp:
		next := st
		for _, a := range p.Adds {
			next = next.Add(ip.in.InternGround(a))
		}
		for _, a := range p.Dels {
			next = next.Del(ip.in.InternGround(a))
		}
		return ip.Holds(goal, next)
	default:
		return false
	}
}

// Derivable returns every atom derivable in the state (including the
// state's own visible facts).
func (ip *Interp) Derivable(st facts.State) map[facts.AtomID]bool {
	out := map[facts.AtomID]bool{}
	for lvl := 0; lvl < ip.numSCC; lvl++ {
		ip.computeLevel(st, lvl)
		for id := range ip.final[cellKey{st.Key(), lvl}] {
			out[id] = true
		}
	}
	for _, id := range ip.base.All() {
		if st.Has(id) {
			out[id] = true
		}
	}
	for _, id := range st.Delta.IDs() {
		out[id] = true
	}
	return out
}

// levelGroup is the working set of one joint level computation.
type levelGroup struct {
	level  int
	active map[string]atomSet     // stateKey -> growing set
	states map[string]facts.State // stateKey -> state value
	grown  bool                   // set when an atom or state was added
}

// computeLevel finalises the cell (st, lvl), jointly with every state at
// the same level reachable from it through hypothetical premises.
func (ip *Interp) computeLevel(st facts.State, lvl int) {
	key := cellKey{st.Key(), lvl}
	if _, ok := ip.final[key]; ok {
		return
	}
	// Lower levels of the seed state first.
	for l := 0; l < lvl; l++ {
		ip.computeLevel(st, l)
	}
	g := &levelGroup{
		level:  lvl,
		active: map[string]atomSet{st.Key(): {}},
		states: map[string]facts.State{st.Key(): st},
	}
	for {
		g.grown = false
		keys := make([]string, 0, len(g.states))
		for k := range g.states {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			T := g.states[k]
			// Lower levels of a discovered state are computed on demand
			// before its rules fire.
			for l := 0; l < lvl; l++ {
				ip.computeLevel(T, l)
			}
			for _, ri := range ip.rulesBySCC[lvl] {
				ip.applyRule(&ip.prog.Rules[ri], T, g)
			}
		}
		if !g.grown {
			break
		}
	}
	for k, set := range g.active {
		ip.final[cellKey{k, lvl}] = set
	}
}

// unboundC marks a variable slot not assigned by the outer substitution
// (it occurs only in negated premises and is quantified inside them).
const unboundC symbols.Const = -1

// applyRule fires every ground instance of r whose body holds in state st,
// adding head instances to the group's active set for st.
func (ip *Interp) applyRule(r *ast.CRule, st facts.State, g *levelGroup) {
	binding := make([]symbols.Const, r.NumVars)
	for i := range binding {
		binding[i] = unboundC
	}
	var posSlots []int
	for s, pos := range r.PosVar {
		if pos {
			posSlots = append(posSlots, s)
		}
	}
	derived := g.active[st.Key()]
	var rec func(v int)
	rec = func(v int) {
		if v == len(posSlots) {
			if ip.bodyHolds(r, binding, st, g) {
				h := ip.ground(r.Head, binding)
				if !derived.has(h) {
					derived[h] = struct{}{}
					g.grown = true
				}
			}
			return
		}
		for _, c := range ip.dom {
			binding[posSlots[v]] = c
			rec(v + 1)
		}
	}
	if len(ip.dom) == 0 && len(posSlots) > 0 {
		return
	}
	rec(0)
}

func (ip *Interp) ground(a ast.CAtom, binding []symbols.Const) facts.AtomID {
	args := make([]symbols.Const, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v := binding[t.VarSlot()]
			if v == unboundC {
				panic("ref: grounding with unbound variable")
			}
			args[i] = v
		} else {
			args[i] = t.ConstID()
		}
	}
	return ip.in.ID(a.Pred, args)
}

func (ip *Interp) bodyHolds(r *ast.CRule, binding []symbols.Const, st facts.State, g *levelGroup) bool {
	for i := range r.Body {
		pr := &r.Body[i]
		switch pr.Kind {
		case ast.Plain:
			if !ip.atomHoldsAt(ip.ground(pr.Atom, binding), st, g) {
				return false
			}
		case ast.Negated:
			// Stratification guarantees the negated predicate's SCC is
			// strictly below the current level, so its value is final.
			// Variables occurring only in negated premises are quantified
			// inside the negation.
			if ip.negInstanceHolds(pr.Atom, binding, st, g) {
				return false
			}
		case ast.Hyp:
			next := st
			for _, a := range pr.Adds {
				next = next.Add(ip.ground(a, binding))
			}
			for _, a := range pr.Dels {
				next = next.Del(ip.ground(a, binding))
			}
			if !ip.atomHoldsAt(ip.ground(pr.Atom, binding), next, g) {
				return false
			}
		}
	}
	return true
}

// atomHoldsAt checks a ground atom in an arbitrary state, against the
// group's in-progress sets at the current level and final sets below it.
// States at the current level not yet in the group are registered
// (monotone: the joint fixpoint keeps iterating).
func (ip *Interp) atomHoldsAt(gid facts.AtomID, st facts.State, g *levelGroup) bool {
	if st.Has(gid) {
		return true
	}
	c := ip.sccOfPred(ip.in.Pred(gid))
	if c < 0 {
		return false
	}
	key := st.Key()
	if c < g.level {
		ip.computeLevel(st, c)
		return ip.final[cellKey{key, c}].has(gid)
	}
	// Same level: read the group cell (final from an earlier computation,
	// active in this one, or freshly discovered).
	if f, ok := ip.final[cellKey{key, g.level}]; ok {
		return f.has(gid)
	}
	if set, ok := g.active[key]; ok {
		return set.has(gid)
	}
	g.active[key] = atomSet{}
	g.states[key] = st
	g.grown = true
	return false
}

// negInstanceHolds reports whether some instantiation of the atom's
// unbound (negation-local) variables is derivable.
func (ip *Interp) negInstanceHolds(a ast.CAtom, binding []symbols.Const, st facts.State, g *levelGroup) bool {
	var local []int
	seen := map[int]bool{}
	for _, t := range a.Args {
		if t.IsVar() {
			s := t.VarSlot()
			if binding[s] == unboundC && !seen[s] {
				seen[s] = true
				local = append(local, s)
			}
		}
	}
	found := false
	var rec func(i int)
	rec = func(i int) {
		if found {
			return
		}
		if i == len(local) {
			if ip.atomHoldsAt(ip.ground(a, binding), st, g) {
				found = true
			}
			return
		}
		for _, c := range ip.dom {
			binding[local[i]] = c
			rec(i + 1)
			if found {
				break
			}
		}
	}
	rec(0)
	for _, s := range local {
		binding[s] = unboundC
	}
	return found
}
