package ref

import (
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/symbols"
)

func build(t *testing.T, src string) *Interp {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	return New(cp)
}

func holds(t *testing.T, ip *Interp, atom string) bool {
	t.Helper()
	a, err := parser.ParseAtom(atom)
	if err != nil {
		t.Fatal(err)
	}
	syms := ip.Interner().Syms()
	p, ok := syms.LookupPred(a.Pred, a.Arity())
	if !ok {
		return false
	}
	args := make([]symbols.Const, a.Arity())
	for i, tm := range a.Args {
		c, ok := syms.LookupConst(tm.Name)
		if !ok {
			return false
		}
		args[i] = c
	}
	return ip.Holds(ip.Interner().ID(p, args), ip.EmptyState())
}

func TestPlainDatalog(t *testing.T) {
	ip := build(t, `
		edge(a, b). edge(b, c).
		tc(X, Y) :- edge(X, Y).
		tc(X, Y) :- tc(X, Z), edge(Z, Y).
	`)
	if !holds(t, ip, "tc(a, c)") {
		t.Error("tc(a,c) false")
	}
	if holds(t, ip, "tc(c, a)") {
		t.Error("tc(c,a) true")
	}
}

func TestHypotheticalPremise(t *testing.T) {
	ip := build(t, `
		p(a).
		q(X) :- r(X)[add: s(X)].
		r(X) :- p(X), s(X).
	`)
	if !holds(t, ip, "q(a)") {
		t.Error("q(a) false")
	}
	if holds(t, ip, "r(a)") {
		t.Error("r(a) true without the hypothesis")
	}
}

func TestNegationLocalVar(t *testing.T) {
	ip := build(t, "ok :- not p(X).\nd(a).\n")
	if !holds(t, ip, "ok") {
		t.Error("ok should hold when no p exists")
	}
	ip2 := build(t, "ok :- not p(X).\np(a).\n")
	if holds(t, ip2, "ok") {
		t.Error("ok should fail when p(a) exists")
	}
}

func TestHoldsPremise(t *testing.T) {
	ip := build(t, "p(a).\ngrad(X) :- p(X), q(X).")
	pr, err := parser.ParsePremise("grad(a)[add: q(a)]")
	if err != nil {
		t.Fatal(err)
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, ip.Interner().Syms(), vars, &names)
	if err != nil {
		t.Fatal(err)
	}
	if !ip.HoldsPremise(cpr, ip.EmptyState()) {
		t.Error("hypothetical premise false")
	}
	neg, _ := parser.ParsePremise("not grad(a)")
	cneg, err := ast.CompilePremise(neg, ip.Interner().Syms(), map[string]int{}, &[]string{})
	if err != nil {
		t.Fatal(err)
	}
	if !ip.HoldsPremise(cneg, ip.EmptyState()) {
		t.Error("negated premise false (grad(a) should not hold plainly)")
	}
}

func TestDerivableIncludesStateAndDerived(t *testing.T) {
	ip := build(t, "p(a).\nq(X) :- p(X).")
	all := ip.Derivable(ip.EmptyState())
	if len(all) != 2 {
		t.Fatalf("derivable = %d atoms", len(all))
	}
}

func TestDomainCollection(t *testing.T) {
	prog, err := parser.Parse("p(a).\nq(X) :- r(X, b)[add: w(c)].")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	extra := cp.Syms.Const("zzz")
	dom := Domain(cp, extra)
	if len(dom) != 4 { // a, b, c, zzz
		t.Fatalf("dom = %d", len(dom))
	}
	// No duplicates when extra already occurs.
	dom2 := Domain(cp, cp.Syms.Const("a"))
	if len(dom2) != 3 {
		t.Fatalf("dom2 = %d", len(dom2))
	}
}

func TestMonotoneUnderAdds(t *testing.T) {
	// Negation-free programs are monotone: anything derivable in DB stays
	// derivable in DB+Δ.
	ip := build(t, `
		p(a). p(b).
		q(X) :- p(X).
		r(X) :- q(X), s(X).
	`)
	syms := ip.Interner().Syms()
	sPred, _ := syms.LookupPred("s", 1)
	aConst, _ := syms.LookupConst("a")
	st := ip.EmptyState()
	before := ip.Derivable(st)
	ext := st.Add(ip.Interner().ID(sPred, []symbols.Const{aConst}))
	after := ip.Derivable(ext)
	for id := range before {
		if !after[id] {
			t.Errorf("monotonicity violated: %s lost", ip.Interner().Format(id))
		}
	}
	rPred, _ := syms.LookupPred("r", 1)
	if !after[ip.Interner().ID(rPred, []symbols.Const{aConst})] {
		t.Error("r(a) not derivable after adding s(a)")
	}
}
