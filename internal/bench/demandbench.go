package bench

// E21: demand-driven magic sets — what Options.DemandDriven buys on
// bound point queries. Full-stratum evaluation of reach(n0, n_last) on
// a linear chain materialises the whole O(n²) transitive closure before
// answering; the magic-set rewrite propagates demand down the chain and
// derives only the O(n) tuples the bound arguments can reach. Both the
// hit (the chain's endpoints, answer true) and the miss (the reversed
// endpoints, answer false) are timed cold — a fresh engine per
// repetition, so no memo or cache state survives between asks and the
// number measured is the first-query latency an operator flipping
// -demand actually sees.

import (
	"fmt"
	"sort"
	"time"

	hypo "hypodatalog"
)

// e21Ask times one cold Ask on a fresh engine built with opts and
// checks the answer. It returns the evaluation latency only — engine
// construction (shared by both modes, and amortised across queries in
// any real deployment) is excluded.
func e21Ask(prog *hypo.Program, opts hypo.Options, q string, want bool) (time.Duration, error) {
	e, err := hypo.New(prog, opts)
	if err != nil {
		return 0, fmt.Errorf("E21: engine: %w", err)
	}
	start := time.Now()
	got, err := e.Ask(q)
	d := time.Since(start)
	if err != nil {
		return 0, fmt.Errorf("E21: Ask(%s): %w", q, err)
	}
	if got != want {
		return 0, fmt.Errorf("E21: Ask(%s) = %v, want %v", q, got, want)
	}
	return d, nil
}

// E21DemandPoint sweeps chain sizes and reports the cold point-query
// p50 of full-stratum ModeCascade against the same mode with
// DemandDriven, for both a true and a false point query. The answers
// are verified every repetition, so the table doubles as an
// equivalence check at sizes the differential fuzzer never reaches.
func E21DemandPoint(s Sizes) (*Table, error) {
	t := NewTable("E21 (demand-driven magic sets): cold bound point queries, full-stratum vs demand",
		"n", "full hit p50", "demand hit p50", "hit speedup", "full miss p50", "demand miss p50")
	t.Note = "chain edge(n0..n); hit = reach(n0, n_last) cold on a fresh engine, miss = reach(n_last, n0); full = ModeCascade, demand = ModeCascade + DemandDriven"

	const reps = 5
	full := hypo.Options{Mode: hypo.ModeCascade}
	demand := hypo.Options{Mode: hypo.ModeCascade, DemandDriven: true}
	for _, n := range s.DemandN {
		prog, err := hypo.Parse(memChainSrc(n))
		if err != nil {
			return nil, err
		}
		hit := fmt.Sprintf("reach(n0, n%d)", n)
		miss := fmt.Sprintf("reach(n%d, n0)", n)

		p50 := func(opts hypo.Options, q string, want bool) (time.Duration, error) {
			ds := make([]time.Duration, 0, reps)
			for rep := 0; rep < reps; rep++ {
				d, err := e21Ask(prog, opts, q, want)
				if err != nil {
					return 0, fmt.Errorf("n=%d: %w", n, err)
				}
				ds = append(ds, d)
			}
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			return ds[len(ds)/2], nil
		}

		fullHit, err := p50(full, hit, true)
		if err != nil {
			return nil, err
		}
		demandHit, err := p50(demand, hit, true)
		if err != nil {
			return nil, err
		}
		fullMiss, err := p50(full, miss, false)
		if err != nil {
			return nil, err
		}
		demandMiss, err := p50(demand, miss, false)
		if err != nil {
			return nil, err
		}
		speedup := float64(fullHit) / float64(demandHit)
		t.Add(n, fullHit, demandHit, speedup, fullMiss, demandMiss)
	}
	return t, nil
}
