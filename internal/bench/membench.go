package bench

// E20: memory governance — what a per-query byte budget costs and what
// it buys. The budget's value proposition is the refusal speedup: an
// over-budget query is turned away after growing ~budget bytes instead
// of the full closure, so the latency of saying no must be well under
// the latency of paying up. The cheap-query column is the other half of
// the contract: work that fits the budget is not taxed by the guard.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	hypo "hypodatalog"
)

// e20Budget is the per-query growth ceiling under test. It sits far
// under the full transitive closure of every sweep point but leaves
// room for queries touching a single source node.
const e20Budget = 8 << 10

// memChainSrc builds the linear chain with transitive reachability used
// by the E20 sweep: reach/2 has O(n²) answers, so the full closure is
// the expensive thing a budget refuses.
func memChainSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(n%d, n%d).\n", i, i+1)
	}
	b.WriteString("reach(X, Y) :- edge(X, Y).\n")
	b.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	return b.String()
}

// E20MemGovern prices Options.MaxMemoryBytes: the full-closure query is
// evaluated to completion on an unbudgeted pool, then refused by a
// budgeted one, on fresh pools each repetition so warm memo state never
// lets a retry finish what the budget refused. Cheap queries run on the
// budgeted pool AFTER its aborts — the same engines — so the column
// doubles as the unpoisoned-engine check.
func E20MemGovern(s Sizes) (*Table, error) {
	t := NewTable("E20 (memory governance): per-query byte budget — refusing vs paying",
		"n", "full eval", "abort latency", "refusal speedup", "cheap p50", "budget")
	t.Note = fmt.Sprintf("budget %d bytes; full eval = unbudgeted reach(X, Y) closure; abort latency = time for the budgeted pool to refuse the same query with ErrMemory; cheap p50 = edge(n0, Y) on the budgeted pool after the aborts (fits the budget, must be unaffected)", e20Budget)

	const reps = 3
	for _, n := range s.MemN {
		prog, err := hypo.Parse(memChainSrc(n))
		if err != nil {
			return nil, err
		}

		var full, abort time.Duration
		var cheap []time.Duration
		for rep := 0; rep < reps; rep++ {
			// Unbudgeted: pay for the whole closure.
			pl, err := hypo.NewPool(prog, hypo.Options{PoolSize: 1})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			bs, err := pl.Query("reach(X, Y)")
			d := time.Since(start)
			pl.Close()
			if err != nil {
				return nil, fmt.Errorf("E20: unbudgeted closure: %w", err)
			}
			if want := n * (n + 1) / 2; len(bs) != want {
				return nil, fmt.Errorf("E20: closure size %d, want %d", len(bs), want)
			}
			if rep == 0 || d < full {
				full = d
			}

			// Budgeted: the same query must be refused, fast.
			bpl, err := hypo.NewPool(prog, hypo.Options{PoolSize: 1, MaxMemoryBytes: e20Budget})
			if err != nil {
				return nil, err
			}
			start = time.Now()
			_, err = bpl.Query("reach(X, Y)")
			d = time.Since(start)
			if !errors.Is(err, hypo.ErrMemory) {
				bpl.Close()
				return nil, fmt.Errorf("E20: budgeted closure at n=%d = %v, want ErrMemory", n, err)
			}
			if rep == 0 || d < abort {
				abort = d
			}
			// The refused pool still serves queries that fit.
			for i := 0; i < 8; i++ {
				start = time.Now()
				bs, err := bpl.Query("edge(n0, Y)")
				cheap = append(cheap, time.Since(start))
				if err != nil || len(bs) != 1 {
					bpl.Close()
					return nil, fmt.Errorf("E20: cheap query after abort = %d answers, %v", len(bs), err)
				}
			}
			bpl.Close()
		}

		sort.Slice(cheap, func(i, j int) bool { return cheap[i] < cheap[j] })
		speedup := float64(full) / float64(abort)
		t.Add(n, full, abort, speedup, cheap[len(cheap)/2], e20Budget)
	}
	return t, nil
}
