package bench

// E18: replication read scaling and read-your-writes wait latency.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/repl"
	"hypodatalog/internal/workload"
)

// e18Node opens one hypo.Live over a fresh temp dir, returning a
// cleanup.
func e18Node(prog *hypo.Program, poolSize int) (*hypo.Live, func(), error) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	dir, err := os.MkdirTemp("", "hdl-e18-")
	if err != nil {
		return nil, nil, err
	}
	lv, err := hypo.OpenLive(prog, hypo.LiveConfig{
		WALPath: filepath.Join(dir, "wal.log"),
		NoSync:  true,
		Logger:  quiet,
	}, hypo.Options{PoolSize: poolSize})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return lv, func() { lv.Close(); os.RemoveAll(dir) }, nil
}

// E18Replication prices WAL-shipping read replicas: closure-read
// throughput as replicas are added (each replica runs its own engine
// pool, so aggregate read capacity should scale), and the
// read-your-writes cost — after each primary commit, how long a replica
// read demanding that version (X-Hdl-Min-Version) waits for the record
// to ship and apply.
func E18Replication(s Sizes) (*Table, error) {
	t := NewTable("E18 (replication): read scaling across replicas, min-version wait under churn",
		"replicas", "reads", "node read p50", "aggregate reads/s", "scaling", "min-ver wait p50", "final version")
	t.Note = "aggregate = sum of per-node isolated rates (replicas are separate hosts in production; one shared benchmark CPU would serialize them); min-ver wait = time a replica read demanding the just-committed version parks before the record arrives."
	rng := rand.New(rand.NewSource(s.Seed + 7))
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// One fixed mid-size graph: E18 sweeps replica count, not data size.
	const n = 24
	w := workload.MixedReachability(rng, n, 4*n, 0.3)
	prog, err := hypo.Parse(w.Source)
	if err != nil {
		return nil, err
	}
	closure := "reach(X, Y)"
	const readsPerReplica = 60
	const churnCommits = 15

	var baseline float64
	for _, replicas := range s.ReplN {
		err := func() error {
			primary, cleanup, err := e18Node(prog, 2)
			if err != nil {
				return err
			}
			defer cleanup()

			mux := http.NewServeMux()
			repl.NewPrimary(repl.PrimaryConfig{
				Source:    primary.Store(),
				RulesHash: prog.RulesHash(),
				Heartbeat: 100 * time.Millisecond,
				Logger:    quiet,
			}).Mount(mux)
			srv := httptest.NewServer(mux)
			defer srv.Close()

			nodes := make([]*hypo.Live, replicas)
			for i := range nodes {
				lv, cleanup, err := e18Node(prog, 2)
				if err != nil {
					return err
				}
				defer cleanup()
				nodes[i] = lv
				rep, err := repl.Start(repl.ReplicaConfig{
					Primary:    srv.URL,
					Target:     lv,
					RulesHash:  prog.RulesHash(),
					BackoffMin: 5 * time.Millisecond,
					Logger:     quiet,
				})
				if err != nil {
					return err
				}
				defer rep.Close()
			}
			waitAll := func(v uint64) error {
				deadline := time.Now().Add(30 * time.Second)
				for _, lv := range nodes {
					ctx, cancel := context.WithDeadline(context.Background(), deadline)
					err := lv.WaitVersion(ctx, v)
					cancel()
					if err != nil {
						return fmt.Errorf("E18: replica stuck at %d waiting for %d", lv.Version(), v)
					}
				}
				return nil
			}
			if err := waitAll(primary.Version()); err != nil {
				return err
			}

			// Warm each replica's memo tables once so the throughput phase
			// measures steady-state reads, not first-touch compilation.
			for _, lv := range nodes {
				if _, err := lv.Pool().Query(closure); err != nil {
					return err
				}
			}

			// Read-scaling phase: measure each node's serving rate in
			// isolation and sum — the capacity a load balancer can draw on
			// when every replica is its own host.
			totalReads := readsPerReplica * replicas
			var reads []time.Duration
			var aggregate float64
			for _, lv := range nodes {
				start := time.Now()
				for r := 0; r < readsPerReplica; r++ {
					rs := time.Now()
					if _, err := lv.Pool().Query(closure); err != nil {
						return err
					}
					reads = append(reads, time.Since(rs))
				}
				aggregate += readsPerReplica / time.Since(start).Seconds()
			}
			sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
			if baseline == 0 {
				baseline = aggregate
			}

			// Churn phase: commit on the primary, then immediately demand the
			// new version on a replica — the X-Hdl-Min-Version server gate is
			// Live.WaitVersion, measured here without the HTTP overhead.
			var waits []time.Duration
			toggles := 0
			for _, op := range w.Ops {
				if op.Query != "" {
					continue
				}
				ms, err := hypo.ParseMutations(op.Assert, op.Retract)
				if err != nil {
					return err
				}
				info, err := primary.Apply(ms)
				if err != nil {
					return err
				}
				lv := nodes[toggles%replicas]
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				ws := time.Now()
				err = lv.WaitVersion(ctx, info.Version)
				cancel()
				if err != nil {
					return fmt.Errorf("E18: min-version wait for %d timed out at replica version %d", info.Version, lv.Version())
				}
				waits = append(waits, time.Since(ws))
				if toggles++; toggles >= churnCommits {
					break
				}
			}
			if len(waits) == 0 {
				return fmt.Errorf("E18: workload produced no commits")
			}
			sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
			if err := waitAll(primary.Version()); err != nil {
				return err
			}

			t.Add(replicas, totalReads, reads[len(reads)/2], aggregate, aggregate/baseline,
				waits[len(waits)/2], primary.Version())
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
