package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/ast"
	"hypodatalog/internal/engine"
	"hypodatalog/internal/generic"
	"hypodatalog/internal/horn"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
	"hypodatalog/internal/turing"
	"hypodatalog/internal/workload"
)

// Sizes configure the sweeps; the zero value selects the defaults used by
// EXPERIMENTS.md.
type Sizes struct {
	Chain   []int // E1
	Order   []int // E2
	Parity  []int // E3
	HamN    []int // E4/E5
	StratM  []int // E6: k values (width fixed at 4)
	TMLen   []int // E7: input lengths
	HypOrd  []int // E9: domain sizes (n! orders!)
	HornN   []int // E10
	LiveN   []int // E16: live-EDB graph sizes
	CacheN  []int // E17: answer-cache graph sizes
	ReplN   []int // E18: replica counts
	TenantK []int // E19: co-resident tenant counts
	MemN    []int // E20: memory-budget graph sizes
	DemandN []int // E21: demand-driven point-query graph sizes
	Seed    int64
}

// DefaultSizes are the sweep points reported in EXPERIMENTS.md.
func DefaultSizes() Sizes {
	return Sizes{
		Chain:   []int{4, 16, 64, 256, 512},
		Order:   []int{4, 16, 64, 128},
		Parity:  []int{4, 8, 16, 32, 48},
		HamN:    []int{4, 6, 8, 10},
		StratM:  []int{4, 16, 64, 256, 1024},
		TMLen:   []int{0, 1, 2, 3},
		HypOrd:  []int{2, 3, 4, 5},
		HornN:   []int{16, 64, 256, 512},
		LiveN:   []int{16, 32, 64},
		CacheN:  []int{32, 48, 64},
		ReplN:   []int{1, 2, 3},
		TenantK: []int{1, 2, 4},
		MemN:    []int{24, 48, 64},
		DemandN: []int{32, 64, 128},
		Seed:    1,
	}
}

// SmokeSizes are tiny sweeps for tests.
func SmokeSizes() Sizes {
	return Sizes{
		Chain:   []int{4, 8},
		Order:   []int{4, 8},
		Parity:  []int{3, 6},
		HamN:    []int{4, 5},
		StratM:  []int{4, 8},
		TMLen:   []int{0, 1},
		HypOrd:  []int{2, 3},
		HornN:   []int{16, 32},
		LiveN:   []int{6, 10},
		CacheN:  []int{6, 10},
		ReplN:   []int{1, 2},
		TenantK: []int{1, 2},
		MemN:    []int{16},
		DemandN: []int{8, 16},
		Seed:    1,
	}
}

// buildUniform compiles a source program and returns a fresh uniform
// engine plus the compiled program.
func buildUniform(src string, opts topdown.Options) (*topdown.Engine, *ast.CProgram, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	ast.RewriteNegHyp(prog)
	if err := strat.CheckNegation(prog); err != nil {
		return nil, nil, err
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		return nil, nil, err
	}
	return topdown.New(cp, ref.Domain(cp), opts), cp, nil
}

// askZero evaluates a 0-ary predicate on a fresh uniform engine.
func askZero(e *topdown.Engine, cp *ast.CProgram, name string) (bool, error) {
	p, ok := cp.Syms.LookupPred(name, 0)
	if !ok {
		return false, fmt.Errorf("bench: no predicate %s/0", name)
	}
	return e.Ask(e.Interner().ID(p, nil), e.EmptyState())
}

// E1HypChain measures Example 4: chains of hypothetical implications.
func E1HypChain(s Sizes) (*Table, error) {
	t := NewTable("E1 (Example 4): chain of hypothetical adds",
		"n", "a1 holds", "time", "goals", "max depth")
	t.Note = "a1 requires accumulating all n hypotheses; expect near-linear goal growth."
	for _, n := range s.Chain {
		e, cp, err := buildUniform(workload.ChainProgram(n), topdown.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ok, err := askZero(e, cp, "a1")
		if err != nil {
			return nil, err
		}
		st := e.Stats()
		t.Add(n, ok, time.Since(start), st.Goals, st.MaxDepth)
		if !ok {
			return nil, fmt.Errorf("E1: a1 false at n=%d", n)
		}
	}
	return t, nil
}

// E2OrderLoop measures Example 5: iterating a stored linear order.
func E2OrderLoop(s Sizes) (*Table, error) {
	t := NewTable("E2 (Example 5): loop over a stored linear order",
		"n", "a holds", "time", "goals", "max depth")
	for _, n := range s.Order {
		e, cp, err := buildUniform(workload.OrderLoopProgram(n), topdown.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ok, err := askZero(e, cp, "a")
		if err != nil {
			return nil, err
		}
		st := e.Stats()
		t.Add(n, ok, time.Since(start), st.Goals, st.MaxDepth)
		if !ok {
			return nil, fmt.Errorf("E2: a false at n=%d", n)
		}
	}
	return t, nil
}

// E3Parity measures Example 6: relation parity via hypothetical copying.
// Proving the true parity predicate follows one copy chain (polynomial
// with tabling); refuting the false one must explore the whole subset
// lattice (2^n tabled states) — the coNP face of the same query — so the
// refutation column is only filled for small n.
func E3Parity(s Sizes) (*Table, error) {
	t := NewTable("E3 (Example 6): EVEN iff |A| is even",
		"|A|", "true query", "time", "goals", "refute other", "refute time", "refute states")
	t.Note = "proof of the true parity is one chain; refutation of the false one is 2^n (coNP shape)."
	for _, n := range s.Parity {
		e, cp, err := buildUniform(workload.ParityProgram(n), topdown.Options{})
		if err != nil {
			return nil, err
		}
		trueQ, falseQ := "even", "odd"
		if n%2 == 1 {
			trueQ, falseQ = "odd", "even"
		}
		start := time.Now()
		got, err := askZero(e, cp, trueQ)
		if err != nil {
			return nil, err
		}
		proveTime := time.Since(start)
		if !got {
			return nil, fmt.Errorf("E3: wrong parity at n=%d", n)
		}
		goals := e.Stats().Goals
		if n <= 12 {
			e2, cp2, err := buildUniform(workload.ParityProgram(n), topdown.Options{})
			if err != nil {
				return nil, err
			}
			start = time.Now()
			neg, err := askZero(e2, cp2, falseQ)
			if err != nil {
				return nil, err
			}
			if neg {
				return nil, fmt.Errorf("E3: %s true at n=%d", falseQ, n)
			}
			t.Add(n, trueQ, proveTime, goals, falseQ, time.Since(start), e2.Stats().TableSize)
		} else {
			t.Add(n, trueQ, proveTime, goals, "-", "-", "-")
		}
	}
	return t, nil
}

// E4Hamiltonian measures Example 7 against the brute-force baseline.
func E4Hamiltonian(s Sizes) (*Table, error) {
	t := NewTable("E4 (Example 7): directed Hamiltonian path",
		"n", "edges", "planted", "rules yes", "brute yes", "rule time", "brute time", "goals")
	t.Note = "NP workload: expect superpolynomial growth of rule-engine time with n."
	rng := rand.New(rand.NewSource(s.Seed))
	for _, n := range s.HamN {
		for _, planted := range []bool{true, false} {
			var g workload.Digraph
			if planted {
				g = workload.PlantedHamiltonian(rng, n, 0.15)
			} else {
				g = workload.RandomDigraph(rng, n, 0.25)
			}
			e, cp, err := buildUniform(workload.HamiltonianProgram(g), topdown.Options{})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			got, err := askZero(e, cp, "yes")
			if err != nil {
				return nil, err
			}
			ruleTime := time.Since(start)
			start = time.Now()
			want := workload.HasHamiltonianPath(g)
			bruteTime := time.Since(start)
			if got != want {
				return nil, fmt.Errorf("E4: n=%d planted=%v: rules=%v brute=%v", n, planted, got, want)
			}
			t.Add(n, len(g.Edges), planted, got, want, ruleTime, bruteTime, e.Stats().Goals)
		}
	}
	return t, nil
}

// E5HamCircuitNo measures Example 8: the complementary no query.
func E5HamCircuitNo(s Sizes) (*Table, error) {
	t := NewTable("E5 (Example 8): NO <- ~YES adds the complement",
		"n", "edges", "yes", "no", "time")
	rng := rand.New(rand.NewSource(s.Seed + 1))
	for _, n := range s.HamN {
		g := workload.RandomDigraph(rng, n, 0.2)
		e, cp, err := buildUniform(workload.HamiltonianProgram(g), topdown.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		yes, err := askZero(e, cp, "yes")
		if err != nil {
			return nil, err
		}
		no, err := askZero(e, cp, "no")
		if err != nil {
			return nil, err
		}
		if yes == no {
			return nil, fmt.Errorf("E5: yes and no agree at n=%d", n)
		}
		t.Add(n, len(g.Edges), yes, no, time.Since(start))
	}
	return t, nil
}

// E6Stratify measures Lemma 1: the stratification algorithm is polynomial.
func E6Stratify(s Sizes) (*Table, error) {
	t := NewTable("E6 (Lemma 1): linear stratification is polynomial time",
		"k", "rules", "preds", "strata", "iterations", "time")
	for _, k := range s.StratM {
		src := workload.KStrataProgram(k, 4)
		prog, err := parser.Parse(src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		st, err := strat.Stratify(prog)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if st.NumStrata != k {
			return nil, fmt.Errorf("E6: k=%d got %d strata", k, st.NumStrata)
		}
		t.Add(k, len(prog.Rules), len(st.Part), st.NumStrata, st.Iterations, elapsed)
	}
	return t, nil
}

// E7TMEncoding runs the Theorem 1 lower-bound experiment: encoded oracle
// machines agree with direct simulation.
func E7TMEncoding(s Sizes) (*Table, error) {
	t := NewTable("E7 (Theorem 1, lower bound): oracle-TM encodings",
		"machine", "k", "input", "N", "sim", "encoding", "agree", "enc rules", "time")
	machines := []*turing.Machine{
		turing.HasOne(), turing.GuessOne(), turing.CopyThenAskYes(), turing.CopyThenAskNo(),
	}
	for _, m := range machines {
		for _, l := range s.TMLen {
			for _, in := range binStrings(l) {
				n := 2*l + 6
				want, err := m.Accepts(in, n)
				if err != nil {
					return nil, err
				}
				src, err := turing.Encode(m, in, n)
				if err != nil {
					return nil, err
				}
				prog, err := parser.Parse(src)
				if err != nil {
					return nil, err
				}
				cp, err := ast.Compile(prog, symbols.NewTable())
				if err != nil {
					return nil, err
				}
				e := topdown.New(cp, ref.Domain(cp), topdown.Options{MaxGoals: 100_000_000})
				start := time.Now()
				got, err := askZero(e, cp, "accept")
				if err != nil {
					return nil, err
				}
				if got != want {
					return nil, fmt.Errorf("E7: %s(%q): enc=%v sim=%v", m.Name, in, got, want)
				}
				t.Add(m.Name, m.Depth(), fmt.Sprintf("%q", in), n, want, got, got == want,
					len(prog.Rules), time.Since(start))
			}
		}
	}
	return t, nil
}

func binStrings(l int) []string {
	if l == 0 {
		return []string{""}
	}
	var out []string
	for _, s := range binStrings(l - 1) {
		out = append(out, s+"0", s+"1")
	}
	return out
}

// E8Cascade compares the uniform engine with the paper's PROVE cascade
// and records goal counts (the Appendix A polynomial-length bound).
func E8Cascade(s Sizes) (*Table, error) {
	t := NewTable("E8 (Theorem 1, upper bound): PROVE cascade vs uniform engine",
		"workload", "n", "answer", "uniform time", "cascade time", "uniform goals")
	run := func(name, src, query string, n int) error {
		prog, err := parser.Parse(src)
		if err != nil {
			return err
		}
		st, err := strat.Stratify(prog)
		if err != nil {
			return err
		}
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			return err
		}
		dom := ref.Domain(cp)
		uni := topdown.New(cp, dom, topdown.Options{})
		cas, err := engine.NewCascade(cp, st, dom)
		if err != nil {
			return err
		}
		p, ok := cp.Syms.LookupPred(query, 0)
		if !ok {
			return fmt.Errorf("no %s/0", query)
		}
		start := time.Now()
		gu, err := uni.Ask(uni.Interner().ID(p, nil), uni.EmptyState())
		if err != nil {
			return err
		}
		uniTime := time.Since(start)
		start = time.Now()
		gc, err := cas.Ask(cas.Interner().ID(p, nil), cas.EmptyState())
		if err != nil {
			return err
		}
		casTime := time.Since(start)
		if gu != gc {
			return fmt.Errorf("E8: %s n=%d: uniform=%v cascade=%v", name, n, gu, gc)
		}
		t.Add(name, n, gu, uniTime, casTime, uni.Stats().Goals)
		return nil
	}
	for _, n := range s.Parity {
		if err := run("parity", workload.ParityProgram(n), "even", n); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(s.Seed + 2))
	for _, n := range s.HamN {
		g := workload.PlantedHamiltonian(rng, n, 0.15)
		if err := run("hamiltonian", workload.HamiltonianProgram(g), "yes", n); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E9HypOrder measures the section 6 construction: asserting every linear
// order hypothetically. All n! orders are explored, so n stays small.
func E9HypOrder(s Sizes) (*Table, error) {
	t := NewTable("E9 (Theorem 2 / section 6): hypothetically asserted orders",
		"n", "yes (|D| odd)", "time", "goals", "order independent")
	for _, n := range s.HypOrd {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("el%d", i)
		}
		src := generic.ParityViaOrder("d") + generic.DomainFacts("d", names)
		e, cp, err := buildUniform(src, topdown.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		got, err := askZero(e, cp, "yes")
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if got != (n%2 == 1) {
			return nil, fmt.Errorf("E9: wrong parity at n=%d", n)
		}
		// Order independence: renamed domain gives the same answer.
		renamed := make([]string, n)
		for i := range renamed {
			renamed[i] = fmt.Sprintf("other%d", n-1-i)
		}
		src2 := generic.ParityViaOrder("d") + generic.DomainFacts("d", renamed)
		e2, cp2, err := buildUniform(src2, topdown.Options{})
		if err != nil {
			return nil, err
		}
		got2, err := askZero(e2, cp2, "yes")
		if err != nil {
			return nil, err
		}
		t.Add(n, got, elapsed, e.Stats().Goals, got == got2)
		if got != got2 {
			return nil, fmt.Errorf("E9: order dependence at n=%d", n)
		}
	}
	return t, nil
}

// E10Horn measures the Horn baseline: linear and non-linear transitive
// closure, naive vs semi-naive — all polynomial.
func E10Horn(s Sizes) (*Table, error) {
	t := NewTable("E10 (section 1 claim): Horn Datalog stays in P",
		"n", "variant", "strategy", "time", "derived", "probes")
	variants := map[string]string{
		"linear":     "tc(X, Y) :- edge(X, Y).\ntc(X, Y) :- tc(X, Z), edge(Z, Y).\n",
		"non-linear": "tc(X, Y) :- edge(X, Y).\ntc(X, Y) :- tc(X, Z), tc(Z, Y).\n",
	}
	for _, n := range s.HornN {
		edges := ""
		for i := 0; i < n; i++ {
			edges += fmt.Sprintf("edge(v%d, v%d).\n", i, i+1)
		}
		for _, variant := range []string{"linear", "non-linear"} {
			for _, strategy := range []horn.Strategy{horn.SemiNaive, horn.Naive} {
				if strategy == horn.Naive && n > 256 {
					continue // naive quadratic blowup; keep runs short
				}
				prog, err := parser.Parse(variants[variant] + edges)
				if err != nil {
					return nil, err
				}
				cp, err := ast.Compile(prog, symbols.NewTable())
				if err != nil {
					return nil, err
				}
				e, err := horn.New(cp, strategy)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				e.Compute()
				elapsed := time.Since(start)
				st := e.Stats()
				name := "semi-naive"
				if strategy == horn.Naive {
					name = "naive"
				}
				t.Add(n, variant, name, elapsed, st.Derived, st.JoinProbes)
			}
		}
	}
	return t, nil
}

// E11Rewrite checks that the section 3.1 negated-hypothetical rewrite
// preserves answers and measures its overhead.
func E11Rewrite(s Sizes) (*Table, error) {
	t := NewTable("E11 (section 3.1): ~A[add:B] rewrite preserves answers",
		"case", "direct", "rewritten", "agree", "time")
	cases := []struct {
		name    string
		rewrite string // uses not-hyp; rewritten automatically
		manual  string // hand-written aux predicate
		query   string
	}{
		{
			name: "blocked",
			rewrite: "p(a).\nq(X) :- p(X), not r(X)[add: w(X)].\n" +
				"r(X) :- w(X), blocked.\n",
			manual: "p(a).\nq(X) :- p(X), not aux(X).\naux(X) :- r(X)[add: w(X)].\n" +
				"r(X) :- w(X), blocked.\n",
			query: "qa",
		},
		{
			name: "enabled",
			rewrite: "p(a).\nblocked.\nq(X) :- p(X), not r(X)[add: w(X)].\n" +
				"r(X) :- w(X), blocked.\n",
			manual: "p(a).\nblocked.\nq(X) :- p(X), not aux(X).\naux(X) :- r(X)[add: w(X)].\n" +
				"r(X) :- w(X), blocked.\n",
			query: "qa",
		},
	}
	for _, c := range cases {
		ask := func(src string) (bool, error) {
			prog, err := parser.Parse(src + "qa :- q(a).\n")
			if err != nil {
				return false, err
			}
			ast.RewriteNegHyp(prog)
			cp, err := ast.Compile(prog, symbols.NewTable())
			if err != nil {
				return false, err
			}
			e := topdown.New(cp, ref.Domain(cp), topdown.Options{})
			return askZero(e, cp, c.query)
		}
		start := time.Now()
		d, err := ask(c.rewrite)
		if err != nil {
			return nil, err
		}
		m, err := ask(c.manual)
		if err != nil {
			return nil, err
		}
		if d != m {
			return nil, fmt.Errorf("E11: case %s disagrees", c.name)
		}
		t.Add(c.name, d, m, d == m, time.Since(start))
	}
	return t, nil
}

// E12Ablation measures the engine features: tabling and the planner.
func E12Ablation(s Sizes) (*Table, error) {
	t := NewTable("E12 (ablation): tabling and premise planning",
		"workload", "n", "config", "time", "goals", "enumerated")
	t.Note = "untabled parity is factorial in |A|; sizes are capped and budgeted."
	configs := []struct {
		name string
		opts topdown.Options
	}{
		{"full", topdown.Options{}},
		{"no tabling", topdown.Options{NoTabling: true, MaxGoals: 20_000_000}},
		{"no planner", topdown.Options{NoPlanner: true, MaxGoals: 20_000_000}},
	}
	run := func(name, src, query string, n int) error {
		for _, cfg := range configs {
			e, cp, err := buildUniform(src, cfg.opts)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := askZero(e, cp, query); err != nil {
				if errors.Is(err, topdown.ErrBudget) {
					t.Add(name, n, cfg.name, "budget exceeded", ">"+fmt.Sprint(cfg.opts.MaxGoals), "-")
					continue
				}
				return err
			}
			st := e.Stats()
			t.Add(name, n, cfg.name, time.Since(start), st.Goals, st.Enumerated)
		}
		return nil
	}
	for _, n := range capped(s.Parity, 8) {
		if err := run("parity", workload.ParityProgram(n), "even", n); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(s.Seed + 3))
	for _, n := range capped(s.HamN, 7) {
		g := workload.PlantedHamiltonian(rng, n, 0.15)
		if err := run("hamiltonian", workload.HamiltonianProgram(g), "yes", n); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// capped filters out sweep points beyond max (for exponential ablations).
func capped(xs []int, max int) []int {
	var out []int
	for _, x := range xs {
		if x <= max {
			out = append(out, x)
		}
	}
	return out
}

// E13Deletion measures the hypothetical-deletion extension: the token
// game (move a token along edges, each move an [add][del] pair) answers
// graph reachability; cyclic move graphs revisit database states, so this
// exercises the engines' non-monotone termination. BFS is the baseline.
func E13Deletion(s Sizes) (*Table, error) {
	t := NewTable("E13 (extension): hypothetical deletions — token game",
		"n", "edges", "target", "rules goal", "bfs", "rule time", "bfs time", "goals")
	t.Note = "each move is [add: token(Y)][del: token(X)]; states cycle, answers equal reachability."
	rng := rand.New(rand.NewSource(s.Seed + 4))
	for _, n := range s.HornN {
		if n > 128 {
			continue
		}
		for _, planted := range []bool{true, false} {
			g := workload.RandomDigraph(rng, n, 2.0/float64(n))
			target := rng.Intn(n)
			if planted {
				// Guarantee reachability with a chain 0 -> ... -> target.
				for i := 0; i < target; i++ {
					g.Edges = append(g.Edges, [2]int{i, i + 1})
				}
			}
			e, cp, err := buildUniform(workload.TokenGameProgram(g, 0, target), topdown.Options{MaxGoals: 100_000_000})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			got, err := askZero(e, cp, "goal")
			if err != nil {
				return nil, err
			}
			ruleTime := time.Since(start)
			start = time.Now()
			want := workload.Reachable(g, 0, target)
			bfsTime := time.Since(start)
			if got != want {
				return nil, fmt.Errorf("E13: n=%d: rules=%v bfs=%v", n, got, want)
			}
			t.Add(n, len(g.Edges), target, got, want, ruleTime, bfsTime, e.Stats().Goals)
		}
	}
	return t, nil
}

// E14GenericCompile runs Theorem 2's constructive content end to end:
// constant-free rulebases compiled from Turing machines decide generic
// queries on unordered domains (every order asserted hypothetically,
// counter and database bitmap built from the asserted order).
func E14GenericCompile(s Sizes) (*Table, error) {
	t := NewTable("E14 (Theorem 2): constant-free machine compilation on unordered domains",
		"query", "n", "|p|", "yes", "expected", "time", "goals")
	t.Note = "n! orders x n^2-step machines; n stays small by design."
	queries := []struct {
		name string
		m    func() *turing.Machine
		want func(n, marked int) bool
	}{
		{"p nonempty (has-one)", turing.HasOne, func(n, marked int) bool { return marked > 0 }},
		{"p = domain (all-ones)", turing.AllOnes, func(n, marked int) bool { return marked == n }},
	}
	for _, q := range queries {
		rules, err := generic.CompileGeneric(q.m(), "d", "p")
		if err != nil {
			return nil, err
		}
		for _, n := range s.HypOrd {
			if n < 2 {
				continue
			}
			for _, marked := range []int{0, n / 2, n} {
				var facts strings.Builder
				for i := 0; i < n; i++ {
					fmt.Fprintf(&facts, "d(el%d).\n", i)
				}
				for i := 0; i < marked; i++ {
					fmt.Fprintf(&facts, "p(el%d).\n", i)
				}
				e, cp, err := buildUniform(rules+facts.String(), topdown.Options{MaxGoals: 500_000_000})
				if err != nil {
					return nil, err
				}
				start := time.Now()
				got, err := askZero(e, cp, "yes")
				if err != nil {
					return nil, err
				}
				want := q.want(n, marked)
				if got != want {
					return nil, fmt.Errorf("E14: %s n=%d |p|=%d: got %v want %v", q.name, n, marked, got, want)
				}
				t.Add(q.name, n, marked, got, want, time.Since(start), e.Stats().Goals)
			}
		}
	}
	return t, nil
}

// E15Alternation runs the PSPACE context of section 4: alternating
// Turing machines encoded via the non-linear rule form (2) — the form
// linear stratification excludes — evaluated by the uniform engine and
// checked against direct alternating simulation.
func E15Alternation(s Sizes) (*Table, error) {
	t := NewTable("E15 (section 4 context): alternation via rule form (2) — PSPACE fragment",
		"machine", "input", "sim", "encoding", "agree", "linearly stratifiable", "time")
	machines := []*turing.AMachine{turing.AllOnesForall(), turing.HasDoubleOne()}
	for _, m := range machines {
		for _, l := range s.TMLen {
			for _, in := range binStrings(l) {
				n := 2*l + 6
				want, err := m.Accepts(in, n)
				if err != nil {
					return nil, err
				}
				rules, err := turing.EncodeAlternating(m)
				if err != nil {
					return nil, err
				}
				db, err := turing.EncodeAlternatingDB(m, in, n)
				if err != nil {
					return nil, err
				}
				prog, err := parser.Parse(rules + db)
				if err != nil {
					return nil, err
				}
				_, serr := strat.Stratify(prog)
				cp, err := ast.Compile(prog, symbols.NewTable())
				if err != nil {
					return nil, err
				}
				e := topdown.New(cp, ref.Domain(cp), topdown.Options{MaxGoals: 100_000_000})
				start := time.Now()
				got, err := askZero(e, cp, "accept")
				if err != nil {
					return nil, err
				}
				if got != want {
					return nil, fmt.Errorf("E15: %s(%q): enc=%v sim=%v", m.Name, in, got, want)
				}
				t.Add(m.Name, fmt.Sprintf("%q", in), want, got, got == want,
					serr == nil, time.Since(start))
			}
		}
	}
	return t, nil
}

// E16LiveChurn measures the live-EDB subsystem end to end: read latency
// against an engine pool while the base fact set is quiet vs while it
// churns through WAL-logged commits. Each commit recompiles the fact
// layer and invalidates the pooled engines, so the churn column prices
// the rebuild-on-lease path; the quiet column is the memoised steady
// state. The workload is MixedReachability: transitive closure over a
// spine graph with random non-spine edge toggles.
func E16LiveChurn(s Sizes) (*Table, error) {
	t := NewTable("E16 (live EDB): reads while the fact base churns",
		"n", "ops", "commits", "quiet read", "churn read", "commit", "final version")
	t.Note = "commits are applied incrementally on the next lease; memo state outside the delta's cone stays warm."
	rng := rand.New(rand.NewSource(s.Seed + 5))
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	for _, n := range s.LiveN {
		w := workload.MixedReachability(rng, n, 4*n, 0.3)
		prog, err := hypo.Parse(w.Source)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "hdl-e16-")
		if err != nil {
			return nil, err
		}
		err = func() error {
			defer os.RemoveAll(dir)
			lv, err := hypo.OpenLive(prog, hypo.LiveConfig{
				WALPath: filepath.Join(dir, "wal.log"),
				NoSync:  true,
				Logger:  quiet,
			}, hypo.Options{PoolSize: 2})
			if err != nil {
				return err
			}
			defer lv.Close()
			pl := lv.Pool()
			ground := fmt.Sprintf("reach(v0, v%d)", n-1)

			const quietReads = 20
			var quietTotal time.Duration
			for i := 0; i < quietReads; i++ {
				start := time.Now()
				ok, err := pl.Ask(ground)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("E16: spine unreachable at n=%d", n)
				}
				quietTotal += time.Since(start)
			}

			var churnReads, commits int
			var churnTotal, commitTotal time.Duration
			for _, op := range w.Ops {
				if op.Query == "" {
					ms, err := hypo.ParseMutations(op.Assert, op.Retract)
					if err != nil {
						return err
					}
					start := time.Now()
					info, err := lv.Apply(ms)
					if err != nil {
						return err
					}
					if info.Changed != 1 {
						return fmt.Errorf("E16: toggle changed %d facts", info.Changed)
					}
					commitTotal += time.Since(start)
					commits++
					continue
				}
				start := time.Now()
				if strings.ContainsRune(op.Query, 'Y') {
					if _, err := pl.Query(op.Query); err != nil {
						return err
					}
				} else {
					ok, err := pl.Ask(op.Query)
					if err != nil {
						return err
					}
					if !ok {
						return fmt.Errorf("E16: %s false at n=%d", op.Query, n)
					}
				}
				churnTotal += time.Since(start)
				churnReads++
			}
			if churnReads == 0 || commits == 0 {
				return fmt.Errorf("E16: degenerate op stream (%d reads, %d commits)", churnReads, commits)
			}
			if got := lv.Version(); got != uint64(commits) {
				return fmt.Errorf("E16: version %d after %d commits", got, commits)
			}
			t.Add(n, len(w.Ops), commits,
				quietTotal/quietReads,
				churnTotal/time.Duration(churnReads),
				commitTotal/time.Duration(commits),
				lv.Version())
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E17CacheReads prices the versioned answer cache on the same
// MixedReachability workload as E16, cache off vs on. The quiet column
// is repeated reads at one data version — with the cache every read
// after the first is a hit and never leases an engine; without it every
// read re-enters the (warm) memo tables. The churn columns run the mixed
// read/write stream against the cached pool: every commit moves the data
// version, so entries expire by construction and the hit rate prices how
// much reuse survives real write traffic.
func E17CacheReads(s Sizes) (*Table, error) {
	t := NewTable("E17 (answer cache): repeated reads, cache on vs off",
		"n", "quiet p50 off", "quiet p50 on", "speedup", "churn read", "churn hits", "final version")
	t.Note = "quiet = repeated reads at a fixed version; churn = mixed reads and commits, each commit expires the cached version."
	rng := rand.New(rand.NewSource(s.Seed + 6))
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	const quietRounds = 25
	p50 := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	for _, n := range s.CacheN {
		w := workload.MixedReachability(rng, n, 4*n, 0.3)
		prog, err := hypo.Parse(w.Source)
		if err != nil {
			return nil, err
		}
		ground := fmt.Sprintf("reach(v0, v%d)", n-1)
		// The quiet read materialises the whole closure — the "dashboard
		// refresh" read pattern the cache exists for. Enumerating it costs
		// O(n^2) engine work; replaying the cached answer costs a slice walk.
		closure := "reach(X, Y)"

		// withLive runs body against a fresh Live over its own WAL dir.
		withLive := func(cacheBytes int64, body func(*hypo.Live) error) error {
			dir, err := os.MkdirTemp("", "hdl-e17-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			lv, err := hypo.OpenLive(prog, hypo.LiveConfig{
				WALPath: filepath.Join(dir, "wal.log"),
				NoSync:  true,
				Logger:  quiet,
			}, hypo.Options{PoolSize: 2, CacheBytes: cacheBytes})
			if err != nil {
				return err
			}
			defer lv.Close()
			return body(lv)
		}

		// quietP50: the same closure query repeated at one data version.
		quietP50 := func(cacheBytes int64) (time.Duration, error) {
			var reads []time.Duration
			err := withLive(cacheBytes, func(lv *hypo.Live) error {
				pl := lv.Pool()
				ctx := context.Background()
				ok, _, err := pl.AskInfoCtx(ctx, ground)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("E17: spine unreachable at n=%d", n)
				}
				want := -1
				for i := 0; i < quietRounds; i++ {
					start := time.Now()
					bs, _, err := pl.QueryInfoCtx(ctx, closure)
					if err != nil {
						return err
					}
					reads = append(reads, time.Since(start))
					if want == -1 {
						want = len(bs)
					} else if len(bs) != want {
						return fmt.Errorf("E17: closure size changed %d -> %d while quiet", want, len(bs))
					}
				}
				return nil
			})
			if err != nil {
				return 0, err
			}
			return p50(reads), nil
		}
		p50Off, err := quietP50(0)
		if err != nil {
			return nil, err
		}
		p50On, err := quietP50(4 << 20)
		if err != nil {
			return nil, err
		}

		// Churn: the mixed op stream against the cached pool.
		var churnReads, hits, commits int
		var churnTotal time.Duration
		var finalVersion uint64
		err = withLive(4<<20, func(lv *hypo.Live) error {
			pl := lv.Pool()
			ctx := context.Background()
			for _, op := range w.Ops {
				if op.Query == "" {
					ms, err := hypo.ParseMutations(op.Assert, op.Retract)
					if err != nil {
						return err
					}
					if _, err := lv.Apply(ms); err != nil {
						return err
					}
					commits++
					continue
				}
				var st hypo.CacheStatus
				start := time.Now()
				if strings.ContainsRune(op.Query, 'Y') {
					_, info, err := pl.QueryInfoCtx(ctx, op.Query)
					if err != nil {
						return err
					}
					st = info.Cache
				} else {
					ok, info, err := pl.AskInfoCtx(ctx, op.Query)
					if err != nil {
						return err
					}
					if !ok {
						return fmt.Errorf("E17: %s false at n=%d", op.Query, n)
					}
					st = info.Cache
				}
				churnTotal += time.Since(start)
				churnReads++
				if st == hypo.CacheHit || st == hypo.CacheCoalesced {
					hits++
				}
			}
			if churnReads == 0 || commits == 0 {
				return fmt.Errorf("E17: degenerate op stream (%d reads, %d commits)", churnReads, commits)
			}
			finalVersion = lv.Version()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(n,
			p50Off,
			p50On,
			fmt.Sprintf("%.1fx", float64(p50Off)/float64(max64(int64(p50On), 1))),
			churnTotal/time.Duration(churnReads),
			fmt.Sprintf("%d/%d", hits, churnReads),
			finalVersion)
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(Sizes) (*Table, error)
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{"E1", "hypothetical chain (Example 4)", E1HypChain},
		{"E2", "order loop (Example 5)", E2OrderLoop},
		{"E3", "parity (Example 6)", E3Parity},
		{"E4", "Hamiltonian path (Example 7)", E4Hamiltonian},
		{"E5", "Hamiltonian complement (Example 8)", E5HamCircuitNo},
		{"E6", "stratification (Lemma 1)", E6Stratify},
		{"E7", "oracle-TM encodings (Theorem 1 lower bound)", E7TMEncoding},
		{"E8", "PROVE cascade (Theorem 1 upper bound)", E8Cascade},
		{"E9", "hypothetical orders (Theorem 2 / section 6)", E9HypOrder},
		{"E10", "Horn baseline (section 1)", E10Horn},
		{"E11", "negated-hypothetical rewrite (section 3.1)", E11Rewrite},
		{"E12", "engine ablation", E12Ablation},
		{"E13", "hypothetical deletions (extension)", E13Deletion},
		{"E14", "constant-free machine compilation (Theorem 2)", E14GenericCompile},
		{"E15", "alternation / PSPACE fragment (section 4 context)", E15Alternation},
		{"E16", "live EDB under churn (runtime fact updates)", E16LiveChurn},
		{"E17", "answer cache: repeated reads on vs off", E17CacheReads},
		{"E18", "replication: read scaling across replicas, min-version wait", E18Replication},
		{"E19", "multi-tenant: per-tenant tail latency as co-resident programs grow", E19MultiTenant},
		{"E20", "memory governance: per-query byte budget, refusing vs paying", E20MemGovern},
		{"E21", "demand-driven magic sets: bound point queries vs full-stratum evaluation", E21DemandPoint},
	}
}
