package bench

// E19: multi-tenant registry — per-tenant read latency as the number of
// co-resident programs grows.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"sort"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/tenant"
	"hypodatalog/internal/workload"
)

// E19MultiTenant prices the program registry: K tenants, each with its
// own reachability graph, WAL, engine pool, and admission gate, served
// by one process. Traffic is the mixed read/write stream from E16,
// round-robin interleaved across tenants so every read lands on a
// tenant whose neighbours just ran queries and commits of their own.
// The isolation claim is the ratio column: per-tenant tail latency must
// not grow with K, because tenants share nothing but the process.
func E19MultiTenant(s Sizes) (*Table, error) {
	t := NewTable("E19 (multi-tenant): K co-resident programs under mixed traffic",
		"tenants", "reads", "read p50", "worst p99", "p99 vs K=1", "aggregate reads/s", "commits")
	t.Note = "round-robin interleaved clients, one in flight at a time (tenants are independent request streams in production; one shared benchmark CPU would serialize concurrent ones); aggregate = sum of per-tenant isolated rates; worst p99 = slowest tenant's 99th-percentile read."
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Every tenant runs the identical graph and op stream: with the
	// workload held fixed, any growth in the worst tenant's p99 as K
	// rises is interference, not a harder-graph tenant skewing the tail.
	const n = 16
	opsPerTenant := 24 * n

	var baseline time.Duration
	for _, k := range s.TenantK {
		err := func() error {
			dir, err := os.MkdirTemp("", "hdl-e19-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			reg, err := tenant.Open(tenant.Config{
				Dir:        dir,
				Options:    hypo.Options{PoolSize: 2},
				LiveConfig: hypo.LiveConfig{NoSync: true},
				Logger:     quiet,
			})
			if err != nil {
				return err
			}
			defer reg.Close()

			type client struct {
				tn    *tenant.Tenant
				ops   []workload.MixedOp
				reads []time.Duration
			}
			clients := make([]*client, k)
			for i := range clients {
				rng := rand.New(rand.NewSource(s.Seed + 100))
				w := workload.MixedReachability(rng, n, opsPerTenant, 0.3)
				tn, _, err := reg.Create(fmt.Sprintf("t%d", i), w.Source)
				if err != nil {
					return err
				}
				// Warm the memo tables so the measured phase sees
				// steady-state reads, not first-touch compilation.
				if _, err := tn.Pool().Query("reach(X, Y)"); err != nil {
					return err
				}
				clients[i] = &client{tn: tn, ops: w.Ops}
			}

			commits := 0
			for op := 0; op < opsPerTenant; op++ {
				for _, c := range clients {
					o := c.ops[op]
					release, err := c.tn.Admit(context.Background())
					if err != nil {
						return err
					}
					if o.Query != "" {
						start := time.Now()
						_, err = c.tn.Pool().Query(o.Query)
						c.reads = append(c.reads, time.Since(start))
					} else {
						if ms, perr := hypo.ParseMutations(o.Assert, o.Retract); perr != nil {
							err = perr
						} else if _, err = c.tn.Live().Apply(ms); err == nil {
							commits++
						}
					}
					release()
					if err != nil {
						return err
					}
				}
			}

			var all []time.Duration
			var worst time.Duration
			var aggregate float64
			totalReads := 0
			for _, c := range clients {
				sort.Slice(c.reads, func(i, j int) bool { return c.reads[i] < c.reads[j] })
				p99 := c.reads[len(c.reads)*99/100]
				if p99 > worst {
					worst = p99
				}
				var sum time.Duration
				for _, d := range c.reads {
					sum += d
				}
				aggregate += float64(len(c.reads)) / sum.Seconds()
				totalReads += len(c.reads)
				all = append(all, c.reads...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			if baseline == 0 {
				baseline = worst
			}
			t.Add(k, totalReads, all[len(all)/2], worst,
				float64(worst)/float64(baseline), aggregate, commits)
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
