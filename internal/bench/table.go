// Package bench is the experiment harness: it runs the per-claim
// experiments of DESIGN.md (E1-E12) and renders their result tables. The
// cmd/hdlbench binary drives it; bench_test.go at the repository root
// wraps the same workloads in testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a fixed-width result table.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are rendered with %v, durations compactly.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = formatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
