package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every experiment at smoke sizes; each
// experiment internally verifies its correctness conditions (answers
// match baselines, stratification counts, order independence, ...).
func TestAllExperimentsSmoke(t *testing.T) {
	s := SmokeSizes()
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tbl, err := ex.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", ex.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", ex.ID)
			}
			out := tbl.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("%s: malformed render:\n%s", ex.ID, out)
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "a", "long column", "c")
	tbl.Add(1, "x", true)
	tbl.Add(22, "yyyy", false)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("title line = %q", lines[0])
	}
	// All data lines align to the header width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("separator misaligned:\n%s", out)
	}
}
