package storage

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hypodatalog/internal/parser"
	"hypodatalog/internal/workload"
)

func roundTrip(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, prog); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got.String()
}

func canon(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog.String()
}

func TestRoundTripPrograms(t *testing.T) {
	sources := []string{
		"p(a).\nq(X) :- p(X).\n",
		workload.ParityProgram(5),
		workload.HamiltonianProgram(workload.Digraph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}}}),
		workload.ChainProgram(6),
		"goal :- m(X, Y), t(X), goal[add: t(Y)][del: t(X)].\nt(a).\nm(a, b).\n?- goal.\n",
		"", // empty program
	}
	for _, src := range sources {
		got := roundTrip(t, src)
		want := canon(t, src)
		if !sameClauses(got, want) {
			t.Errorf("round trip mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
		}
	}
}

// sameClauses compares programs as clause sets: the snapshot groups facts
// by predicate, so fact order may legitimately change.
func sameClauses(a, b string) bool {
	setOf := func(s string) map[string]int {
		m := map[string]int{}
		for _, line := range strings.Split(s, "\n") {
			line = strings.TrimSpace(line)
			if line != "" {
				m[line]++
			}
		}
		return m
	}
	ma, mb := setOf(a), setOf(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

func TestLargeFactBaseCompact(t *testing.T) {
	var src strings.Builder
	src.WriteString("tc(X, Y) :- edge(X, Y).\n")
	for i := 0; i < 2000; i++ {
		src.WriteString("edge(v")
		src.WriteString(strings.Repeat("x", 1+i%3))
		src.WriteString(", w)." + "\n")
	}
	prog, err := parser.Parse(src.String())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, prog); err != nil {
		t.Fatal(err)
	}
	// The binary fact encoding interns the repeated constants, so the
	// snapshot must be far smaller than the source text.
	if buf.Len() >= len(src.String())/2 {
		t.Errorf("snapshot %d bytes for %d bytes of source", buf.Len(), len(src.String()))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Facts) != len(prog.Facts) {
		t.Errorf("facts %d, want %d", len(got.Facts), len(prog.Facts))
	}
}

func TestRejectsCorruption(t *testing.T) {
	prog, err := parser.Parse(workload.ParityProgram(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, prog); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Every single-bit corruption of the body must be caught by the CRC.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		bad := append([]byte{}, good...)
		i := 12 + rng.Intn(len(bad)-12)
		bad[i] ^= 1 << uint(rng.Intn(8))
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	// Truncations.
	for _, cut := range []int{0, 4, len(good) / 2, len(good) - 1} {
		if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestRejectsNonGroundFacts(t *testing.T) {
	prog, err := parser.Parse("p(a).")
	if err != nil {
		t.Fatal(err)
	}
	prog.Facts[0].Args[0].IsVar = true
	var buf bytes.Buffer
	if err := Write(&buf, prog); err == nil {
		t.Error("non-ground fact accepted")
	}
}

func TestRandomProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := workload.RandomStratifiedProgram(rng, workload.DefaultFuzz())
		got := roundTrip(t, src)
		want := canon(t, src)
		if !sameClauses(got, want) {
			t.Errorf("seed %d: round trip mismatch", seed)
		}
	}
}
