// Package storage persists hypothetical Datalog programs and their fact
// bases as versioned binary snapshots.
//
// Rules and queries are stored as canonical source text (they are tiny
// and the printer/parser round-trip is the stable interface); facts are
// stored compactly — a string table followed by per-predicate tuple
// blocks of varint-encoded symbol indexes — so large extensional
// databases do not pay text-parsing costs. The whole snapshot is guarded
// by a CRC32 and a version byte.
//
// Layout (all integers are uvarints unless noted):
//
//	magic   "HDLSNAP\x01"
//	crc     uint32 little-endian over everything after this field
//	rulesLen, rules source bytes
//	nConsts, then each: len, bytes
//	nPreds,  then each: nameLen, name bytes, arity
//	nBlocks, then each: predIndex, nTuples, nTuples*arity const indexes
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
)

var magic = []byte("HDLSNAP\x01")

// maxSaneLen guards length fields against corrupt or hostile input.
const maxSaneLen = 1 << 28

// Write serialises a program (rules, queries and facts) to w.
func Write(w io.Writer, prog *ast.Program) error {
	var body []byte

	// Rules and queries as canonical text (facts are stored in binary).
	noFacts := &ast.Program{Rules: prog.Rules, Queries: prog.Queries}
	src := noFacts.String()
	body = appendUvarint(body, uint64(len(src)))
	body = append(body, src...)

	// Symbol tables for the facts.
	constIdx := map[string]uint64{}
	var consts []string
	internConst := func(s string) uint64 {
		if i, ok := constIdx[s]; ok {
			return i
		}
		i := uint64(len(consts))
		constIdx[s] = i
		consts = append(consts, s)
		return i
	}
	type predKey struct {
		name  string
		arity int
	}
	predIdx := map[predKey]uint64{}
	var preds []predKey
	tuples := map[uint64][][]uint64{}
	for _, f := range prog.Facts {
		if !f.IsGround() {
			return fmt.Errorf("storage: fact %s is not ground", f)
		}
		k := predKey{f.Pred, f.Arity()}
		pi, ok := predIdx[k]
		if !ok {
			pi = uint64(len(preds))
			predIdx[k] = pi
			preds = append(preds, k)
		}
		row := make([]uint64, f.Arity())
		for i, t := range f.Args {
			row[i] = internConst(t.Name)
		}
		tuples[pi] = append(tuples[pi], row)
	}

	body = appendUvarint(body, uint64(len(consts)))
	for _, c := range consts {
		body = appendUvarint(body, uint64(len(c)))
		body = append(body, c...)
	}
	body = appendUvarint(body, uint64(len(preds)))
	for _, p := range preds {
		body = appendUvarint(body, uint64(len(p.name)))
		body = append(body, p.name...)
		body = appendUvarint(body, uint64(p.arity))
	}
	body = appendUvarint(body, uint64(len(tuples)))
	for pi := uint64(0); pi < uint64(len(preds)); pi++ {
		rows := tuples[pi]
		if len(rows) == 0 {
			continue
		}
		body = appendUvarint(body, pi)
		body = appendUvarint(body, uint64(len(rows)))
		for _, row := range rows {
			for _, c := range row {
				body = appendUvarint(body, c)
			}
		}
	}

	if _, err := w.Write(magic); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(crcBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Read deserialises a program previously written by Write.
func Read(r io.Reader) (*ast.Program, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("storage: bad magic (not a snapshot, or unsupported version)")
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("storage: reading checksum: %w", err)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("storage: checksum mismatch (corrupt snapshot)")
	}

	d := &decoder{buf: body}
	srcLen := d.uvarint()
	src := d.bytes(srcLen)
	if d.err != nil {
		return nil, d.err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("storage: embedded rules do not parse: %w", err)
	}

	nConsts := d.uvarint()
	if nConsts > maxSaneLen {
		return nil, fmt.Errorf("storage: implausible constant count %d", nConsts)
	}
	consts := make([]string, nConsts)
	for i := range consts {
		consts[i] = string(d.bytes(d.uvarint()))
	}
	nPreds := d.uvarint()
	if nPreds > maxSaneLen {
		return nil, fmt.Errorf("storage: implausible predicate count %d", nPreds)
	}
	type predKey struct {
		name  string
		arity int
	}
	preds := make([]predKey, nPreds)
	for i := range preds {
		preds[i].name = string(d.bytes(d.uvarint()))
		preds[i].arity = int(d.uvarint())
		if preds[i].arity > 1024 {
			return nil, fmt.Errorf("storage: implausible arity %d", preds[i].arity)
		}
	}
	nBlocks := d.uvarint()
	if nBlocks > nPreds {
		return nil, fmt.Errorf("storage: more fact blocks (%d) than predicates (%d)", nBlocks, nPreds)
	}
	for b := uint64(0); b < nBlocks; b++ {
		pi := d.uvarint()
		if pi >= nPreds {
			return nil, fmt.Errorf("storage: fact block references predicate %d of %d", pi, nPreds)
		}
		p := preds[pi]
		nRows := d.uvarint()
		if nRows > maxSaneLen {
			return nil, fmt.Errorf("storage: implausible row count %d", nRows)
		}
		for row := uint64(0); row < nRows; row++ {
			args := make([]ast.Term, p.arity)
			for i := range args {
				ci := d.uvarint()
				if d.err != nil {
					return nil, d.err
				}
				if ci >= nConsts {
					return nil, fmt.Errorf("storage: constant index %d of %d", ci, nConsts)
				}
				args[i] = ast.Const(consts[ci])
			}
			prog.Facts = append(prog.Facts, ast.Atom{Pred: p.name, Args: args})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.pos {
		return nil, fmt.Errorf("storage: %d trailing bytes", len(d.buf)-d.pos)
	}
	return prog, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("storage: truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > maxSaneLen || d.pos+int(n) > len(d.buf) {
		d.err = fmt.Errorf("storage: truncated data at offset %d (want %d bytes)", d.pos, n)
		return nil
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out
}
