package storage

import (
	"bytes"
	"testing"

	"hypodatalog/internal/parser"
	"hypodatalog/internal/workload"
)

// FuzzRead checks that arbitrary bytes never panic the snapshot reader
// (corrupt input must fail with an error, not crash), and that valid
// snapshots embedded as seeds still load.
func FuzzRead(f *testing.F) {
	for _, src := range []string{
		"p(a).",
		workload.ParityProgram(3),
		workload.ChainProgram(4),
	} {
		prog, err := parser.Parse(src)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, prog); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("HDLSNAP\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loads must be writable again.
		var buf bytes.Buffer
		if err := Write(&buf, prog); err != nil {
			t.Fatalf("rewrite of loaded snapshot failed: %v", err)
		}
	})
}
