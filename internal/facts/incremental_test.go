package facts

import (
	"sort"
	"testing"

	"hypodatalog/internal/symbols"
)

// TestDeltaKeyCollisionRegression pins the unambiguous key encoding down
// with the concrete near-miss pairs from the audit: sorted multi-id adds
// whose concatenations could collide under a naive variable-width or
// separator-free scheme, and pairs that differ only in where the add/del
// boundary falls.
func TestDeltaKeyCollisionRegression(t *testing.T) {
	cases := []struct{ a, b Delta }{
		// adds [1,12] vs [11,2] — same digits, different split.
		{NewDelta([]AtomID{1, 12}), NewDelta([]AtomID{11, 2})},
		// add-vs-del boundary: {adds: 1,2} vs {adds: 1, dels: 2}.
		{NewDelta([]AtomID{1, 2}), NewDelta([]AtomID{1}).DelAll([]AtomID{2})},
		// boundary at zero adds: {adds: 1} vs {dels: 1}.
		{NewDelta([]AtomID{1}), Delta{}.DelAll([]AtomID{1})},
		// all ids to one side vs split across both.
		{NewDelta([]AtomID{1, 2, 3}), NewDelta([]AtomID{1, 2}).DelAll([]AtomID{3})},
		// zero id at the boundary vs in the del section.
		{NewDelta([]AtomID{0}), Delta{}.DelAll([]AtomID{0})},
	}
	for i, c := range cases {
		if c.a.Key() == c.b.Key() {
			t.Errorf("case %d: deltas %v/%v and %v/%v share key %q",
				i, c.a.IDs(), c.a.DeletedIDs(), c.b.IDs(), c.b.DeletedIDs(), c.a.Key())
		}
	}
	// Same modification reached in any op order keys identically.
	x := NewDelta([]AtomID{12, 1})
	y := NewDelta([]AtomID{1}).AddAll([]AtomID{12})
	if x.Key() != y.Key() {
		t.Errorf("equal modifications key differently: %q vs %q", x.Key(), y.Key())
	}
	if (Delta{}).Key() != "" {
		t.Errorf("empty delta key = %q, want empty", (Delta{}).Key())
	}
}

func TestDBRemove(t *testing.T) {
	in, db, syms := newTestDB()
	edge := syms.Pred("edge", 2)
	a, b, c := syms.Const("a"), syms.Const("b"), syms.Const("c")
	ab := in.ID(edge, []symbols.Const{a, b})
	ac := in.ID(edge, []symbols.Const{a, c})
	for _, id := range []AtomID{ab, ac} {
		if _, err := db.Insert(id); err != nil {
			t.Fatal(err)
		}
	}
	if !db.Remove(ab) {
		t.Fatal("Remove(ab) reported absent")
	}
	if db.Remove(ab) {
		t.Fatal("double Remove reported present")
	}
	if db.Has(ab) {
		t.Error("removed atom still visible")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
	if got := db.ByPred(edge); len(got) != 1 || got[0] != ac {
		t.Errorf("ByPred = %v, want [%v]", got, ac)
	}
	if got := db.ByPredArg(edge, 0, a); len(got) != 1 || got[0] != ac {
		t.Errorf("ByPredArg(0,a) = %v, want [%v]", got, ac)
	}
	if got := db.ByPredArg(edge, 1, b); len(got) != 0 {
		t.Errorf("ByPredArg(1,b) = %v, want empty", got)
	}
	// Re-insert after removal works and re-indexes.
	if ok, err := db.Insert(ab); err != nil || !ok {
		t.Fatalf("re-Insert = %v, %v", ok, err)
	}
	if got := db.ByPredArg(edge, 1, b); len(got) != 1 || got[0] != ab {
		t.Errorf("after re-insert ByPredArg(1,b) = %v", got)
	}
}

// TestDBCloneCopyOnWrite drives the shared-backing-array hazard directly:
// mutations on a clone (or the original) must never become visible
// through the sibling's index slices.
func TestDBCloneCopyOnWrite(t *testing.T) {
	in, db, syms := newTestDB()
	edge := syms.Pred("edge", 2)
	cs := make([]symbols.Const, 6)
	for i, n := range []string{"a", "b", "c", "d", "e", "f"} {
		cs[i] = syms.Const(n)
	}
	ids := make([]AtomID, 0, 4)
	for i := 0; i < 4; i++ {
		id := in.ID(edge, []symbols.Const{cs[0], cs[i+1]})
		ids = append(ids, id)
		if _, err := db.Insert(id); err != nil {
			t.Fatal(err)
		}
	}
	clone := db.Clone()
	// Mutate the clone: remove one atom, insert a new one.
	clone.Remove(ids[1])
	newAtom := in.ID(edge, []symbols.Const{cs[0], cs[5]})
	if _, err := clone.Insert(newAtom); err != nil {
		t.Fatal(err)
	}
	// The original must be untouched.
	if !db.Has(ids[1]) || db.Has(newAtom) || db.Len() != 4 {
		t.Fatalf("original DB observed clone mutations: len=%d", db.Len())
	}
	want := append([]AtomID(nil), ids...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := append([]AtomID(nil), db.ByPredArg(edge, 0, cs[0])...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(want) {
		t.Fatalf("original index = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("original index = %v, want %v", got, want)
		}
	}
	// And the other direction: appending to the original must not leak
	// into the clone's capacity-clipped slices.
	extra := in.ID(edge, []symbols.Const{cs[0], cs[0]})
	if _, err := db.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if clone.Has(extra) {
		t.Error("clone observed original's insert")
	}
	for _, id := range clone.ByPredArg(edge, 0, cs[0]) {
		if id == extra {
			t.Error("clone index leaked original's appended atom")
		}
	}
}

func TestInternerClone(t *testing.T) {
	in, _, syms := newTestDB()
	p := syms.Pred("p", 1)
	a, b := syms.Const("a"), syms.Const("b")
	ida := in.ID(p, []symbols.Const{a})
	clone := in.Clone()
	if clone.Len() != in.Len() {
		t.Fatalf("clone Len = %d, want %d", clone.Len(), in.Len())
	}
	if got, ok := clone.Lookup(p, []symbols.Const{a}); !ok || got != ida {
		t.Fatalf("clone lost atom: %v %v", got, ok)
	}
	// Interning into the clone must not affect the original.
	idb := clone.ID(p, []symbols.Const{b})
	if _, ok := in.Lookup(p, []symbols.Const{b}); ok {
		t.Error("original observed clone's interning")
	}
	// And vice versa: ids stay consistent per copy.
	idb2 := in.ID(p, []symbols.Const{b})
	if idb != idb2 {
		// Both assigned the next dense id independently — they should
		// agree because the prefix is identical.
		t.Errorf("diverged ids for same atom: clone=%d original=%d", idb, idb2)
	}
}
