// Package facts provides the ground-level data plane of the system: a
// ground-atom interner assigning dense ids, an indexed base database, and
// the immutable Delta overlays that represent hypothetical states
// DB + {B1, ..., Bm} during inference.
package facts

import (
	"encoding/binary"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/symbols"
)

// AtomID is a dense identifier for an interned ground atom.
type AtomID int32

// NoAtom is returned by lookups that find nothing.
const NoAtom AtomID = -1

type groundAtom struct {
	pred symbols.Pred
	args []symbols.Const
}

// Interner assigns dense ids to ground atoms. It is shared by a base
// database and all hypothetical states layered on top of it.
// The zero value is not usable; call NewInterner.
type Interner struct {
	syms  *symbols.Table
	atoms []groundAtom
	index map[string]AtomID
	buf   []byte // scratch for key encoding
	bytes int64  // approximate heap footprint of atoms + index
}

// internEntryOverhead approximates the fixed heap cost of one interned
// atom beyond its key and argument bytes: the groundAtom struct, the
// index map entry, and allocator slack. The accounting is a budget
// estimator, not a profiler — it only needs to grow linearly with real
// memory so a byte ceiling translates to a bounded RSS.
const internEntryOverhead = 64

// NewInterner returns an empty interner over the given symbol table.
func NewInterner(syms *symbols.Table) *Interner {
	return &Interner{
		syms:  syms,
		index: make(map[string]AtomID),
	}
}

// Syms returns the symbol table the interner was built over.
func (in *Interner) Syms() *symbols.Table { return in.syms }

// encodeKey packs pred and args into in.buf and returns it. The result is
// only valid until the next call.
func (in *Interner) encodeKey(pred symbols.Pred, args []symbols.Const) []byte {
	need := 4 * (1 + len(args))
	if cap(in.buf) < need {
		in.buf = make([]byte, need)
	}
	b := in.buf[:need]
	binary.LittleEndian.PutUint32(b[0:], uint32(pred))
	for i, a := range args {
		binary.LittleEndian.PutUint32(b[4*(i+1):], uint32(a))
	}
	return b
}

// ID interns the ground atom pred(args...) and returns its id. The args
// slice is copied on first interning.
func (in *Interner) ID(pred symbols.Pred, args []symbols.Const) AtomID {
	key := in.encodeKey(pred, args)
	if id, ok := in.index[string(key)]; ok {
		return id
	}
	id := AtomID(len(in.atoms))
	stored := groundAtom{pred: pred}
	if len(args) > 0 {
		stored.args = append([]symbols.Const(nil), args...)
	}
	in.atoms = append(in.atoms, stored)
	in.index[string(key)] = id
	in.bytes += int64(len(key)) + 8*int64(len(args)) + internEntryOverhead
	return id
}

// MemBytes returns the interner's approximate heap footprint. Atoms are
// never un-interned, so the value is monotone within one interner (but
// resets to the substrate's footprint on Clone).
func (in *Interner) MemBytes() int64 { return in.bytes }

// Lookup returns the id of pred(args...) if it has been interned.
func (in *Interner) Lookup(pred symbols.Pred, args []symbols.Const) (AtomID, bool) {
	key := in.encodeKey(pred, args)
	id, ok := in.index[string(key)]
	return id, ok
}

// Pred returns the predicate of an interned atom.
func (in *Interner) Pred(id AtomID) symbols.Pred { return in.atoms[id].pred }

// Args returns the argument constants of an interned atom. The returned
// slice must not be modified.
func (in *Interner) Args(id AtomID) []symbols.Const { return in.atoms[id].args }

// Len reports how many atoms have been interned.
func (in *Interner) Len() int { return len(in.atoms) }

// Clone returns an independent interner with the same atom/id assignment.
// The per-atom argument slices are shared (they are immutable after
// interning); the atoms slice and index map are copied, so interning into
// either copy never affects the other.
func (in *Interner) Clone() *Interner {
	out := &Interner{
		syms:  in.syms,
		atoms: append([]groundAtom(nil), in.atoms...),
		index: make(map[string]AtomID, len(in.index)),
		bytes: in.bytes,
	}
	for k, v := range in.index {
		out.index[k] = v
	}
	return out
}

// InternGround interns a ground compiled atom. It panics if the atom
// contains variables (callers ground atoms before interning).
func (in *Interner) InternGround(a ast.CAtom) AtomID {
	args := make([]symbols.Const, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.ConstID()
	}
	return in.ID(a.Pred, args)
}

// Format renders an interned atom using the symbol table.
func (in *Interner) Format(id AtomID) string {
	g := in.atoms[id]
	if len(g.args) == 0 {
		return in.syms.PredName(g.pred)
	}
	s := in.syms.PredName(g.pred) + "("
	for i, a := range g.args {
		if i > 0 {
			s += ", "
		}
		s += in.syms.ConstName(a)
	}
	return s + ")"
}
