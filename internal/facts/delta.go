package facts

import (
	"encoding/binary"
	"sort"
)

// Delta is an immutable modification of a base database: a set of
// hypothetically added atoms and a set of hypothetically deleted atoms
// (always disjoint — the most recent operation on an atom wins). Adding
// or deleting returns a new Delta; existing values are never mutated, so
// Deltas can be shared freely across proof branches and used as
// memoisation keys.
//
// Hypothetical deletion is the extension mentioned in the introduction of
// the paper (data-complexity rises from PSPACE to EXPTIME); the core
// PODS'89 fragment only ever adds.
//
// The canonical Key is a binary encoding of the sorted added ids, a
// separator, and the sorted deleted ids, so two Deltas are equal as
// modifications iff their Keys are equal — the tabling layer relies on
// exact equality, not hashing, for soundness.
type Delta struct {
	ids  []AtomID // added: sorted, deduplicated; nil for none
	dels []AtomID // deleted: sorted, deduplicated; nil for none
	key  string   // canonical encoding
}

// EmptyDelta is the delta of the unmodified database.
var EmptyDelta = Delta{}

// NewDelta builds an additions-only delta from the given ids (copied,
// sorted, deduped).
func NewDelta(ids []AtomID) Delta {
	if len(ids) == 0 {
		return EmptyDelta
	}
	return Delta{}.AddAll(ids)
}

func normalize(ids []AtomID) []AtomID {
	if len(ids) == 0 {
		return nil
	}
	cp := append([]AtomID(nil), ids...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	w := 0
	for i, id := range cp {
		if i == 0 || id != cp[w-1] {
			cp[w] = id
			w++
		}
	}
	return cp[:w]
}

// makeKey builds the canonical key: a 4-byte length prefix holding the
// number of added ids, then the sorted added ids, then the sorted deleted
// ids, each as fixed-width 4-byte words. The length prefix makes the
// add/del boundary explicit rather than inferred from a separator value,
// so no sequence of ids — whatever their numeric values — can make the
// encoding of one (adds, dels) pair collide with another: equal keys
// imply equal section lengths, hence equal sections word for word.
func makeKey(ids, dels []AtomID) string {
	if len(ids) == 0 && len(dels) == 0 {
		return ""
	}
	b := make([]byte, 0, 4*(1+len(ids)+len(dels)))
	var enc [4]byte
	binary.LittleEndian.PutUint32(enc[:], uint32(len(ids)))
	b = append(b, enc[:]...)
	for _, id := range ids {
		binary.LittleEndian.PutUint32(enc[:], uint32(id))
		b = append(b, enc[:]...)
	}
	for _, id := range dels {
		binary.LittleEndian.PutUint32(enc[:], uint32(id))
		b = append(b, enc[:]...)
	}
	return string(b)
}

// Len reports the number of added atoms in the delta.
func (d Delta) Len() int { return len(d.ids) }

// NumDeleted reports the number of deleted atoms in the delta.
func (d Delta) NumDeleted() int { return len(d.dels) }

// Key returns the canonical key identifying the delta as a modification.
func (d Delta) Key() string { return d.key }

// Has reports whether id is in the delta's added set.
func (d Delta) Has(id AtomID) bool { return member(d.ids, id) }

// Deleted reports whether id is in the delta's deleted set.
func (d Delta) Deleted(id AtomID) bool { return member(d.dels, id) }

func member(ids []AtomID, id AtomID) bool {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	return i < len(ids) && ids[i] == id
}

func insertSorted(ids []AtomID, id AtomID) []AtomID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	out := make([]AtomID, len(ids)+1)
	copy(out, ids[:i])
	out[i] = id
	copy(out[i+1:], ids[i:])
	return out
}

func removeSorted(ids []AtomID, id AtomID) []AtomID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i >= len(ids) || ids[i] != id {
		return ids
	}
	out := make([]AtomID, 0, len(ids)-1)
	out = append(out, ids[:i]...)
	return append(out, ids[i+1:]...)
}

// Add returns a delta extended with an added atom (clearing any deletion
// of the same atom). If the result equals the receiver it is returned
// unchanged.
func (d Delta) Add(id AtomID) Delta {
	if d.Has(id) && !d.Deleted(id) {
		return d
	}
	ids := insertSorted(d.ids, id)
	dels := removeSorted(d.dels, id)
	return Delta{ids: ids, dels: dels, key: makeKey(ids, dels)}
}

// Del returns a delta extended with a deleted atom (clearing any addition
// of the same atom).
func (d Delta) Del(id AtomID) Delta {
	if d.Deleted(id) && !d.Has(id) {
		return d
	}
	dels := insertSorted(d.dels, id)
	ids := removeSorted(d.ids, id)
	return Delta{ids: ids, dels: dels, key: makeKey(ids, dels)}
}

// undelete removes id from the deleted set without touching the added
// set (used by State.Add for base atoms).
func (d Delta) undelete(id AtomID) Delta {
	if !d.Deleted(id) {
		return d
	}
	dels := removeSorted(d.dels, id)
	return Delta{ids: d.ids, dels: dels, key: makeKey(d.ids, dels)}
}

// unadd removes id from the added set without touching the deleted set
// (used by State.Del for non-base atoms).
func (d Delta) unadd(id AtomID) Delta {
	if !d.Has(id) {
		return d
	}
	ids := removeSorted(d.ids, id)
	return Delta{ids: ids, dels: d.dels, key: makeKey(ids, d.dels)}
}

// AddAll returns a delta extended with all the given added atoms.
func (d Delta) AddAll(ids []AtomID) Delta {
	out := d
	for _, id := range ids {
		out = out.Add(id)
	}
	return out
}

// DelAll returns a delta extended with all the given deleted atoms.
func (d Delta) DelAll(ids []AtomID) Delta {
	out := d
	for _, id := range ids {
		out = out.Del(id)
	}
	return out
}

// IDs returns the added ids in sorted order. The returned slice must not
// be modified.
func (d Delta) IDs() []AtomID { return d.ids }

// DeletedIDs returns the deleted ids in sorted order. The returned slice
// must not be modified.
func (d Delta) DeletedIDs() []AtomID { return d.dels }

// Contains reports whether every added atom of other is also added in d
// and every deleted atom of other is also deleted in d.
func (d Delta) Contains(other Delta) bool {
	for _, id := range other.ids {
		if !d.Has(id) {
			return false
		}
	}
	for _, id := range other.dels {
		if !d.Deleted(id) {
			return false
		}
	}
	return true
}

// State is a hypothetical database state: a base database plus a delta of
// hypothetically added and deleted atoms. States are values; extending
// the delta gives a new State.
type State struct {
	Base  *DB
	Delta Delta
}

// NewState returns the state of the unmodified base database.
func NewState(base *DB) State { return State{Base: base} }

// Has reports whether the atom is visible in this state:
// (base ∪ added) \ deleted.
func (s State) Has(id AtomID) bool {
	if s.Delta.Deleted(id) {
		return false
	}
	return s.Delta.Has(id) || s.Base.Has(id)
}

// Add returns the state extended with a hypothetically inserted atom.
//
// The delta is kept canonical relative to the base (added ∩ base = ∅,
// deleted ⊆ base): operations that do not change the visible set return
// the state unchanged, so two states with equal visible sets always have
// equal keys. Without this, a chain of adds and deletes would encode its
// whole history into the key and the tabling layer would treat
// semantically identical states as distinct.
func (s State) Add(id AtomID) State {
	if s.Has(id) {
		return s // already visible: inserting changes nothing
	}
	if s.Base.Has(id) {
		// Visible again once the deletion is retracted; the canonical
		// delta never lists base atoms as added.
		return State{Base: s.Base, Delta: s.Delta.undelete(id)}
	}
	return State{Base: s.Base, Delta: s.Delta.Add(id)}
}

// Del returns the state extended with a hypothetically deleted atom;
// see Add for the canonicalisation rules.
func (s State) Del(id AtomID) State {
	if !s.Has(id) {
		return s // already invisible: deleting changes nothing
	}
	if s.Base.Has(id) {
		return State{Base: s.Base, Delta: s.Delta.Del(id)}
	}
	// A non-base atom disappears by dropping its addition; recording the
	// deletion would bake evaluation history into the key.
	return State{Base: s.Base, Delta: s.Delta.unadd(id)}
}

// AddAll returns the state extended with all the given atoms.
func (s State) AddAll(ids []AtomID) State {
	out := s
	for _, id := range ids {
		out = out.Add(id)
	}
	return out
}

// Key returns the canonical key of the state's delta. States over the same
// base are equal iff their keys are equal.
func (s State) Key() string { return s.Delta.Key() }
