package facts

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hypodatalog/internal/symbols"
)

func newTestDB() (*Interner, *DB, *symbols.Table) {
	syms := symbols.NewTable()
	in := NewInterner(syms)
	return in, NewDB(in), syms
}

func TestInternerRoundTrip(t *testing.T) {
	in, _, syms := newTestDB()
	p := syms.Pred("edge", 2)
	a := syms.Const("a")
	b := syms.Const("b")
	id1 := in.ID(p, []symbols.Const{a, b})
	id2 := in.ID(p, []symbols.Const{a, b})
	if id1 != id2 {
		t.Fatal("same atom interned twice")
	}
	id3 := in.ID(p, []symbols.Const{b, a})
	if id3 == id1 {
		t.Fatal("different atoms share an id")
	}
	if in.Pred(id1) != p {
		t.Error("wrong pred")
	}
	if got := in.Args(id1); got[0] != a || got[1] != b {
		t.Error("wrong args")
	}
	if in.Format(id1) != "edge(a, b)" {
		t.Errorf("Format = %q", in.Format(id1))
	}
	if _, ok := in.Lookup(p, []symbols.Const{a, a}); ok {
		t.Error("lookup invented an atom")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d", in.Len())
	}
}

func TestZeroArityAtom(t *testing.T) {
	in, _, syms := newTestDB()
	p := syms.Pred("yes", 0)
	id := in.ID(p, nil)
	if in.Format(id) != "yes" {
		t.Errorf("Format = %q", in.Format(id))
	}
}

func TestDBIndexes(t *testing.T) {
	in, db, syms := newTestDB()
	edge := syms.Pred("edge", 2)
	consts := make([]symbols.Const, 5)
	for i := range consts {
		consts[i] = syms.Const(string(rune('a' + i)))
	}
	// Chain a->b->c->d->e.
	for i := 0; i+1 < len(consts); i++ {
		db.Insert(in.ID(edge, []symbols.Const{consts[i], consts[i+1]}))
	}
	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	if got := db.ByPredArg(edge, 0, consts[1]); len(got) != 1 {
		t.Errorf("index pos0=b: %d atoms", len(got))
	}
	if got := db.ByPredArg(edge, 1, consts[1]); len(got) != 1 {
		t.Errorf("index pos1=b: %d atoms", len(got))
	}
	if got := db.ByPred(edge); len(got) != 4 {
		t.Errorf("ByPred: %d", len(got))
	}
	// Duplicate insert is a no-op.
	if added, err := db.Insert(in.ID(edge, []symbols.Const{consts[0], consts[1]})); err != nil || added {
		t.Errorf("duplicate insert: added=%v err=%v", added, err)
	}
	clone := db.Clone()
	clone.Insert(in.ID(edge, []symbols.Const{consts[4], consts[0]}))
	if db.Len() == clone.Len() {
		t.Error("clone shares storage")
	}
}

// TestInsertRejectsArityMismatch: the interner happily assigns an id to
// edge(a) even when edge was declared with arity 2; Insert must refuse to
// index it rather than corrupt the per-argument indexes.
func TestInsertRejectsArityMismatch(t *testing.T) {
	in, db, syms := newTestDB()
	edge := syms.Pred("edge", 2)
	a, b := syms.Const("a"), syms.Const("b")
	if _, err := db.Insert(in.ID(edge, []symbols.Const{a, b})); err != nil {
		t.Fatalf("well-formed insert failed: %v", err)
	}
	bad := in.ID(edge, []symbols.Const{a}) // one arg on a 2-ary predicate
	added, err := db.Insert(bad)
	if err == nil {
		t.Fatal("arity-mismatched insert succeeded")
	}
	if added {
		t.Fatal("arity-mismatched insert reported as added")
	}
	if db.Has(bad) {
		t.Fatal("arity-mismatched atom visible in the DB")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d after rejected insert, want 1", db.Len())
	}
	if got := db.ByPred(edge); len(got) != 1 {
		t.Fatalf("ByPred lists %d atoms after rejected insert, want 1", len(got))
	}
}

func TestDeltaBasics(t *testing.T) {
	d := EmptyDelta
	if d.Len() != 0 || d.Key() != "" {
		t.Fatal("empty delta not empty")
	}
	d1 := d.Add(5)
	d2 := d1.Add(3)
	d3 := d2.Add(5) // duplicate
	if d3.Len() != 2 {
		t.Fatalf("Len = %d", d3.Len())
	}
	if !d3.Has(3) || !d3.Has(5) || d3.Has(4) {
		t.Error("membership wrong")
	}
	// Original deltas untouched.
	if d1.Len() != 1 || d.Len() != 0 {
		t.Error("immutability violated")
	}
	// Same set, same key, regardless of insertion order.
	other := EmptyDelta.Add(3).Add(5)
	if other.Key() != d3.Key() {
		t.Error("keys differ for equal sets")
	}
	if !d3.Contains(d1) || d1.Contains(d3) {
		t.Error("Contains wrong")
	}
}

// TestDeltaSetSemantics is a property test: a Delta built by any sequence
// of Adds behaves exactly like a set, and equal sets have equal keys.
func TestDeltaSetSemantics(t *testing.T) {
	f := func(ids []uint8, probe uint8) bool {
		d := EmptyDelta
		set := map[AtomID]bool{}
		for _, x := range ids {
			d = d.Add(AtomID(x))
			set[AtomID(x)] = true
		}
		if d.Len() != len(set) {
			return false
		}
		if d.Has(AtomID(probe)) != set[AtomID(probe)] {
			return false
		}
		// Shuffled insertion gives the same key.
		shuffled := append([]uint8(nil), ids...)
		rand.New(rand.NewSource(int64(len(ids)))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		d2 := EmptyDelta
		for _, x := range shuffled {
			d2 = d2.Add(AtomID(x))
		}
		if d2.Key() != d.Key() {
			return false
		}
		// IDs are sorted and unique.
		got := d.IDs()
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaKeyInjective: distinct sets always get distinct keys (the
// tabling layer depends on this being exact, not probabilistic).
func TestDeltaKeyInjective(t *testing.T) {
	f := func(a, b []uint8) bool {
		da, db := EmptyDelta, EmptyDelta
		sa, sb := map[uint8]bool{}, map[uint8]bool{}
		for _, x := range a {
			da = da.Add(AtomID(x))
			sa[x] = true
		}
		for _, x := range b {
			db = db.Add(AtomID(x))
			sb[x] = true
		}
		equalSets := len(sa) == len(sb)
		if equalSets {
			for x := range sa {
				if !sb[x] {
					equalSets = false
					break
				}
			}
		}
		return (da.Key() == db.Key()) == equalSets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestStateCanonicalisation: the visible set determines the state key —
// histories of no-op adds/deletes never leak into it.
func TestStateCanonicalisation(t *testing.T) {
	in, db, syms := newTestDB()
	p := syms.Pred("tok", 1)
	mk := func(name string) AtomID {
		return in.ID(p, []symbols.Const{syms.Const(name)})
	}
	base := mk("b")
	x, y := mk("x"), mk("y")
	db.Insert(base)
	st := NewState(db)

	// Adding a visible atom is a no-op.
	if st.Add(base).Key() != st.Key() {
		t.Error("adding a base atom changed the key")
	}
	// Deleting an invisible atom is a no-op.
	if st.Del(x).Key() != st.Key() {
		t.Error("deleting an absent atom changed the key")
	}
	// Add x then delete it: back to the original state.
	if st.Add(x).Del(x).Key() != st.Key() {
		t.Error("add+del of a fresh atom did not cancel")
	}
	// Delete base then re-add it: back to the original state.
	if st.Del(base).Add(base).Key() != st.Key() {
		t.Error("del+add of a base atom did not cancel")
	}
	// Token-game walk: histories with equal visible sets share a key.
	walk1 := st.Add(x).Del(x).Add(y) // via x
	walk2 := st.Add(y)               // direct
	if walk1.Key() != walk2.Key() {
		t.Errorf("equal visible sets, different keys: %q vs %q", walk1.Key(), walk2.Key())
	}
}

// TestStateVisibleSetDeterminesKey is the property-test version over
// random operation sequences.
func TestStateVisibleSetDeterminesKey(t *testing.T) {
	in, db, syms := newTestDB()
	p := syms.Pred("a", 1)
	atoms := make([]AtomID, 6)
	for i := range atoms {
		atoms[i] = in.ID(p, []symbols.Const{syms.Const(string(rune('a' + i)))})
		if i < 3 {
			db.Insert(atoms[i]) // first three are base facts
		}
	}
	visible := func(st State) string {
		out := ""
		for _, id := range atoms {
			if st.Has(id) {
				out += "1"
			} else {
				out += "0"
			}
		}
		return out
	}
	f := func(ops []uint8) bool {
		st := NewState(db)
		seen := map[string]string{} // visible set -> key
		for _, op := range ops {
			id := atoms[int(op)%len(atoms)]
			if op&0x80 != 0 {
				st = st.Del(id)
			} else {
				st = st.Add(id)
			}
			v := visible(st)
			if prev, ok := seen[v]; ok {
				if prev != st.Key() {
					return false
				}
			} else {
				seen[v] = st.Key()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateVisibility(t *testing.T) {
	in, db, syms := newTestDB()
	p := syms.Pred("p", 1)
	a := in.ID(p, []symbols.Const{syms.Const("a")})
	b := in.ID(p, []symbols.Const{syms.Const("b")})
	db.Insert(a)
	st := NewState(db)
	if !st.Has(a) || st.Has(b) {
		t.Fatal("base visibility wrong")
	}
	st2 := st.Add(b)
	if !st2.Has(b) || st.Has(b) {
		t.Fatal("delta visibility wrong")
	}
	st3 := st.AddAll([]AtomID{a, b})
	if st3.Key() != st2.Key() {
		// a is already in base but AddAll records it in the delta too;
		// the keys then differ, which is fine — different deltas.
		if !st3.Has(a) || !st3.Has(b) {
			t.Fatal("AddAll lost atoms")
		}
	}
}
