package facts

import (
	"fmt"
	"sort"

	"hypodatalog/internal/symbols"
)

type indexKey struct {
	pred symbols.Pred
	pos  int
	val  symbols.Const
}

// DB is the base (extensional) database: a set of interned ground atoms
// with a per-predicate list and per-argument hash indexes. A DB is built
// (or incrementally mutated) single-threaded and then read concurrently;
// Insert and Remove must not race with reads.
type DB struct {
	in     *Interner
	set    map[AtomID]struct{}
	byPred map[symbols.Pred][]AtomID
	index  map[indexKey][]AtomID
	bytes  int64 // approximate heap footprint of the indexes
}

// dbAtomBytes approximates the indexing cost of one atom: the set entry,
// the byPred slot, and one index entry (key + slot) per argument
// position. Like the interner's accounting it is an estimator for budget
// enforcement, linear in the real footprint.
func dbAtomBytes(nargs int) int64 { return 48 + 32*int64(nargs) }

// NewDB returns an empty database over the interner.
func NewDB(in *Interner) *DB {
	return &DB{
		in:     in,
		set:    make(map[AtomID]struct{}),
		byPred: make(map[symbols.Pred][]AtomID),
		index:  make(map[indexKey][]AtomID),
	}
}

// Interner returns the interner backing the database.
func (db *DB) Interner() *Interner { return db.in }

// Insert adds an interned atom to the database. Duplicate inserts are
// no-ops. It reports whether the atom was newly added, and rejects an
// atom whose argument count disagrees with the declared arity of its
// predicate — the interner itself does not check, and silently indexing
// such an atom would corrupt the per-argument indexes (lookups key on
// positions that the declared arity says cannot exist).
func (db *DB) Insert(id AtomID) (bool, error) {
	pred := db.in.Pred(id)
	if want, got := db.in.Syms().PredArity(pred), len(db.in.Args(id)); want != got {
		return false, fmt.Errorf("facts: atom %s has %d args but predicate %s is declared with arity %d",
			db.in.Format(id), got, db.in.Syms().PredName(pred), want)
	}
	return db.insert(id), nil
}

// insert indexes an atom already known to be arity-consistent.
func (db *DB) insert(id AtomID) bool {
	if _, ok := db.set[id]; ok {
		return false
	}
	db.set[id] = struct{}{}
	pred := db.in.Pred(id)
	db.byPred[pred] = append(db.byPred[pred], id)
	for pos, val := range db.in.Args(id) {
		k := indexKey{pred, pos, val}
		db.index[k] = append(db.index[k], id)
	}
	db.bytes += dbAtomBytes(len(db.in.Args(id)))
	return true
}

// MemBytes returns the database's approximate heap footprint (excluding
// the interner's, reported separately by Interner.MemBytes).
func (db *DB) MemBytes() int64 { return db.bytes }

// Remove deletes an atom from the database, unindexing it. It reports
// whether the atom was present. The filtered index slices are freshly
// allocated rather than compacted in place: clones share slice backing
// arrays copy-on-write (see Clone), so an in-place shift would corrupt a
// sibling's view of the same array.
func (db *DB) Remove(id AtomID) bool {
	if _, ok := db.set[id]; !ok {
		return false
	}
	delete(db.set, id)
	pred := db.in.Pred(id)
	db.byPred[pred] = withoutID(db.byPred[pred], id)
	if len(db.byPred[pred]) == 0 {
		delete(db.byPred, pred)
	}
	for pos, val := range db.in.Args(id) {
		k := indexKey{pred, pos, val}
		db.index[k] = withoutID(db.index[k], id)
		if len(db.index[k]) == 0 {
			delete(db.index, k)
		}
	}
	db.bytes -= dbAtomBytes(len(db.in.Args(id)))
	return true
}

// withoutID returns s minus id in a fresh slice (never mutating s).
func withoutID(s []AtomID, id AtomID) []AtomID {
	out := make([]AtomID, 0, len(s)-1)
	for _, v := range s {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// Has reports whether the atom is in the base database.
func (db *DB) Has(id AtomID) bool {
	_, ok := db.set[id]
	return ok
}

// Len reports the number of atoms in the database.
func (db *DB) Len() int { return len(db.set) }

// ByPred returns the atoms with the given predicate. The returned slice
// must not be modified.
func (db *DB) ByPred(p symbols.Pred) []AtomID { return db.byPred[p] }

// ByPredArg returns the atoms with predicate p whose argument at position
// pos equals val, using the hash index. The returned slice must not be
// modified.
func (db *DB) ByPredArg(p symbols.Pred, pos int, val symbols.Const) []AtomID {
	return db.index[indexKey{p, pos, val}]
}

// All returns every atom id in the database, sorted. The slice is freshly
// allocated.
func (db *DB) All() []AtomID {
	out := make([]AtomID, 0, len(db.set))
	for id := range db.set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the database sharing the interner.
// The index slices are shared copy-on-write: each is capacity-clipped so
// an Insert on either copy reallocates instead of appending into the
// shared backing array, and Remove always builds a fresh slice. This
// makes cloning O(entries) map copies with no per-atom re-indexing — the
// path pool engines take when stamping a fresh engine from a shared
// per-version substrate.
func (db *DB) Clone() *DB { return db.CloneFor(db.in) }

// CloneFor is Clone with the copy bound to a different interner — one
// that assigns the same ids (an Interner.Clone of this database's), so a
// pooled engine gets a fully private interner+database pair cloned from
// a shared per-version substrate.
func (db *DB) CloneFor(in *Interner) *DB {
	out := &DB{
		in:     in,
		set:    make(map[AtomID]struct{}, len(db.set)),
		byPred: make(map[symbols.Pred][]AtomID, len(db.byPred)),
		index:  make(map[indexKey][]AtomID, len(db.index)),
		bytes:  db.bytes,
	}
	for id := range db.set {
		out.set[id] = struct{}{}
	}
	for p, s := range db.byPred {
		out.byPred[p] = s[:len(s):len(s)]
	}
	for k, s := range db.index {
		out.index[k] = s[:len(s):len(s)]
	}
	return out
}
