package vfs

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the error every scripted fault surfaces. Code under
// test must treat it like any other I/O error; tests assert on it with
// errors.Is.
var ErrInjected = errors.New("vfs: injected fault")

// OpKind classifies an intercepted operation.
type OpKind uint8

const (
	// OpOpen is a non-mutating open (read path).
	OpOpen OpKind = iota
	// OpRead is ReadFile or a handle Read.
	OpRead
	// OpCreate is an OpenFile that may create or truncate.
	OpCreate
	// OpWrite is a handle Write.
	OpWrite
	// OpSync is a handle Sync.
	OpSync
	// OpTruncate is a handle or path Truncate.
	OpTruncate
	// OpRename is a Rename.
	OpRename
	// OpRemove is a Remove.
	OpRemove
	// OpSyncDir is a SyncDir.
	OpSyncDir
)

var opNames = map[OpKind]string{
	OpOpen: "open", OpRead: "read", OpCreate: "create", OpWrite: "write",
	OpSync: "sync", OpTruncate: "truncate", OpRename: "rename",
	OpRemove: "remove", OpSyncDir: "syncdir",
}

func (k OpKind) String() string { return opNames[k] }

// Mutating reports whether the op changes on-disk state. Mutating ops
// are exactly the crash boundaries the torture harness enumerates.
func (k OpKind) Mutating() bool {
	switch k {
	case OpCreate, OpWrite, OpSync, OpTruncate, OpRename, OpRemove, OpSyncDir:
		return true
	}
	return false
}

// Op identifies one intercepted operation. Seq counts mutating
// operations from 1 (a non-mutating op carries the Seq of the mutating
// op before it), so a deterministic workload maps each Seq to the same
// operation on every run — the property crash-point sweeps rely on.
type Op struct {
	Seq  int
	Kind OpKind
	Path string
}

// Decision is a script's verdict on one operation.
type Decision struct {
	// Err, when non-nil, fails the operation with this error.
	Err error
	// ShortWrite, for a failed OpWrite, is how many leading bytes still
	// reach the file before the error — a torn write observed by the
	// process itself (a crash-torn write is Mem.Crash's job).
	ShortWrite int
	// Delay is injected latency, applied before the operation runs (or
	// fails).
	Delay time.Duration
}

// Script decides the fate of each operation. Scripts run under the
// Fault's lock: they see a consistent Seq order even under concurrency,
// and must not call back into the filesystem.
type Script interface {
	Decide(op Op) Decision
}

// ScriptFunc adapts a function to a Script.
type ScriptFunc func(op Op) Decision

// Decide implements Script.
func (f ScriptFunc) Decide(op Op) Decision { return f(op) }

// FailNth fails the nth (1-based) operation of the given kind, and
// every later operation of that kind ("the disk stays broken") — fsync
// failure semantics, where retrying after EIO must not be trusted.
func FailNth(kind OpKind, n int) Script {
	count := 0
	return ScriptFunc(func(op Op) Decision {
		if op.Kind != kind {
			return Decision{}
		}
		count++
		if count >= n {
			return Decision{Err: fmt.Errorf("%w: %s #%d", ErrInjected, kind, count)}
		}
		return Decision{}
	})
}

// PowerCut fails every mutating operation with Seq > n — the disk has
// stopped accepting writes. If the boundary op (Seq == n+1) is a write,
// shortWrite of its bytes still land, modeling a write torn by the cut
// itself. Combine with Mem.Crash to drop what was never synced.
func PowerCut(n, shortWrite int) Script {
	return ScriptFunc(func(op Op) Decision {
		if !op.Kind.Mutating() || op.Seq <= n {
			return Decision{}
		}
		d := Decision{Err: fmt.Errorf("%w: power cut after op %d", ErrInjected, n)}
		if op.Kind == OpWrite && op.Seq == n+1 {
			d.ShortWrite = shortWrite
		}
		return d
	})
}

// Latency delays every operation of the given kind.
func Latency(kind OpKind, d time.Duration) Script {
	return ScriptFunc(func(op Op) Decision {
		if op.Kind == kind {
			return Decision{Delay: d}
		}
		return Decision{}
	})
}

// ENOSPC models a filesystem running out of space: while full, every
// operation that needs new blocks (OpWrite, OpCreate) fails with an
// error satisfying both errors.Is(err, ErrInjected) and
// errors.Is(err, syscall.ENOSPC). Operations that free or reshuffle
// space — Truncate, Remove, Rename, Sync, SyncDir, reads — pass
// through, exactly as on a real full disk, so rollback and recovery
// probes can still run. The first failing write after each Fill may be
// torn (its leading shortWrite bytes land before the error), modeling
// an append that hit the wall mid-extent. Release frees the space;
// Fill/Release may be toggled repeatedly on one script.
type ENOSPC struct {
	mu         sync.Mutex
	full       bool
	shortWrite int
	torn       bool // the post-Fill torn write already happened
}

// NewENOSPC returns an ENOSPC script with space still available.
// shortWrite > 0 makes the first failing write after each Fill a torn
// one (that many leading bytes land); 0 fails writes cleanly.
func NewENOSPC(shortWrite int) *ENOSPC {
	return &ENOSPC{shortWrite: shortWrite}
}

// Fill marks the disk full: subsequent space-needing ops fail.
func (e *ENOSPC) Fill() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.full = true
	e.torn = false
}

// Release frees the space: subsequent ops succeed again.
func (e *ENOSPC) Release() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.full = false
}

// Full reports whether the modeled disk is currently full.
func (e *ENOSPC) Full() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.full
}

// Decide implements Script.
func (e *ENOSPC) Decide(op Op) Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.full {
		return Decision{}
	}
	switch op.Kind {
	case OpWrite, OpCreate:
	default:
		return Decision{}
	}
	d := Decision{Err: fmt.Errorf("%w: %w: %s %s", ErrInjected, syscall.ENOSPC, op.Kind, op.Path)}
	if op.Kind == OpWrite && e.shortWrite > 0 && !e.torn {
		e.torn = true
		d.ShortWrite = e.shortWrite
	}
	return d
}

// FailPath fails every mutating operation of the given kind on the given
// path (e.g. error-on-rename of the snapshot).
func FailPath(kind OpKind, path string) Script {
	return ScriptFunc(func(op Op) Decision {
		if op.Kind == kind && op.Path == path {
			return Decision{Err: fmt.Errorf("%w: %s %s", ErrInjected, kind, path)}
		}
		return Decision{}
	})
}

// Fault wraps an FS, routing every operation through a Script. A nil
// script passes everything through (useful for the counting run of a
// crash-point sweep). Fault is safe for concurrent use.
type Fault struct {
	inner FS

	mu     sync.Mutex
	script Script
	seq    int // mutating ops so far
}

// NewFault wraps inner with the given script (nil = pass-through).
func NewFault(inner FS, script Script) *Fault {
	return &Fault{inner: inner, script: script}
}

// SetScript swaps the script at runtime (e.g. "now the disk breaks").
func (f *Fault) SetScript(s Script) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = s
}

// Ops returns how many mutating operations have been issued — the number
// of crash boundaries a deterministic workload exposes.
func (f *Fault) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// decide sequences the op and consults the script. The returned decision
// has Delay already applied.
func (f *Fault) decide(kind OpKind, path string) Decision {
	f.mu.Lock()
	if kind.Mutating() {
		f.seq++
	}
	op := Op{Seq: f.seq, Kind: kind, Path: path}
	var d Decision
	if f.script != nil {
		d = f.script.Decide(op)
	}
	f.mu.Unlock()
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	return d
}

func (f *Fault) Open(name string) (File, error) {
	if d := f.decide(OpOpen, name); d.Err != nil {
		return nil, d.Err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: inner, name: name}, nil
}

func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	kind := OpOpen
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		kind = OpCreate
	}
	if d := f.decide(kind, name); d.Err != nil {
		return nil, d.Err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: inner, name: name}, nil
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	if d := f.decide(OpRead, name); d.Err != nil {
		return nil, d.Err
	}
	return f.inner.ReadFile(name)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if d := f.decide(OpRename, newpath); d.Err != nil {
		return d.Err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if d := f.decide(OpRemove, name); d.Err != nil {
		return d.Err
	}
	return f.inner.Remove(name)
}

func (f *Fault) Truncate(name string, size int64) error {
	if d := f.decide(OpTruncate, name); d.Err != nil {
		return d.Err
	}
	return f.inner.Truncate(name, size)
}

func (f *Fault) SyncDir(dir string) error {
	if d := f.decide(OpSyncDir, dir); d.Err != nil {
		return d.Err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes the mutating handle operations through the script.
type faultFile struct {
	f     *Fault
	inner File
	name  string
}

func (h *faultFile) Read(p []byte) (int, error) { return h.inner.Read(p) }
func (h *faultFile) Close() error               { return h.inner.Close() }

func (h *faultFile) Seek(offset int64, whence int) (int64, error) {
	return h.inner.Seek(offset, whence)
}

func (h *faultFile) Write(p []byte) (int, error) {
	if d := h.f.decide(OpWrite, h.name); d.Err != nil {
		n := 0
		if d.ShortWrite > 0 {
			short := min(d.ShortWrite, len(p))
			n, _ = h.inner.Write(p[:short])
		}
		return n, d.Err
	}
	return h.inner.Write(p)
}

func (h *faultFile) Sync() error {
	if d := h.f.decide(OpSync, h.name); d.Err != nil {
		return d.Err
	}
	return h.inner.Sync()
}

func (h *faultFile) Truncate(size int64) error {
	if d := h.f.decide(OpTruncate, h.name); d.Err != nil {
		return d.Err
	}
	return h.inner.Truncate(size)
}
