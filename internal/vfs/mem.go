package vfs

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
)

// Mem is an in-memory FS that models crash durability the way a real
// disk behind a page cache behaves:
//
//   - a write lands in the live content immediately but is guaranteed to
//     survive a crash only after File.Sync; until then a power cut may
//     keep any prefix of the unsynced tail (a torn write) or none of it;
//   - a create, rename or remove is visible immediately but durable only
//     after SyncDir on its directory; until then a power cut may roll it
//     back — and independently per file name, so two un-fsynced renames
//     can survive in either order, which is exactly the reordering that
//     loses data when a WAL rotation outruns its snapshot rename.
//
// Crash applies such a power cut in place. Mem is safe for concurrent
// use. It models a single flat namespace of regular files (directories
// exist implicitly), which is all the durable layer needs.
type Mem struct {
	mu      sync.Mutex
	live    map[string]*inode // current (page-cache) view
	durable map[string]*inode // directory entries guaranteed after a crash
	pending []dirOp           // metadata ops since the last covering SyncDir
}

// inode is one file's storage: the live content and the prefix of it
// guaranteed to survive a crash.
type inode struct {
	content []byte
	durable []byte
}

// dirOp is one not-yet-durable metadata operation.
type dirOp struct {
	dir  string // directory whose SyncDir persists this op
	key  string // grouping key: ops sharing a key survive a crash only in order
	kind uint8  // opLink | opUnlink | opRename
	path string // link/unlink target; rename source
	to   string // rename destination
	ino  *inode // link/rename inode
}

const (
	opLink uint8 = iota
	opUnlink
	opRename
)

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{live: make(map[string]*inode), durable: make(map[string]*inode)}
}

func notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

func (m *Mem) Open(name string) (File, error) {
	return m.OpenFile(name, os.O_RDONLY, 0)
}

func (m *Mem) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, notExist("open", name)
	case !ok:
		ino = &inode{}
		m.live[name] = ino
		m.pending = append(m.pending, dirOp{
			dir: filepath.Dir(name), key: name, kind: opLink, path: name, ino: ino,
		})
	case flag&(os.O_CREATE|os.O_EXCL) == os.O_CREATE|os.O_EXCL:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	}
	if flag&os.O_TRUNC != 0 {
		ino.content = nil // durable content survives until the next Sync
	}
	f := &memFile{m: m, ino: ino, name: name,
		append:   flag&os.O_APPEND != 0,
		writable: flag&(os.O_WRONLY|os.O_RDWR) != 0,
	}
	return f, nil
}

func (m *Mem) ReadFile(name string) ([]byte, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[name]
	if !ok {
		return nil, notExist("open", name)
	}
	return append([]byte(nil), ino.content...), nil
}

func (m *Mem) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fs.ErrNotExist}
	}
	delete(m.live, oldpath)
	m.live[newpath] = ino
	// One atomic metadata op, keyed by the source: a surviving rename
	// implies the creation of its source survived too (they share a key),
	// while renames of unrelated files stay independently reorderable.
	m.pending = append(m.pending, dirOp{
		dir: filepath.Dir(newpath), key: oldpath, kind: opRename, path: oldpath, to: newpath, ino: ino,
	})
	return nil
}

func (m *Mem) Remove(name string) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.live[name]; !ok {
		return notExist("remove", name)
	}
	delete(m.live, name)
	m.pending = append(m.pending, dirOp{
		dir: filepath.Dir(name), key: name, kind: opUnlink, path: name,
	})
	return nil
}

func (m *Mem) Truncate(name string, size int64) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[name]
	if !ok {
		return notExist("truncate", name)
	}
	ino.resize(size)
	return nil
}

func (m *Mem) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	rest := m.pending[:0]
	for _, op := range m.pending {
		if op.dir != dir {
			rest = append(rest, op)
			continue
		}
		op.applyTo(m.durable)
	}
	m.pending = rest
	return nil
}

func (op dirOp) applyTo(entries map[string]*inode) {
	switch op.kind {
	case opLink:
		entries[op.path] = op.ino
	case opUnlink:
		delete(entries, op.path)
	case opRename:
		delete(entries, op.path)
		entries[op.to] = op.ino
	}
}

// Crash simulates a power cut and reboot, in place: every file reverts
// to its durable directory entry and durable content, each group of
// un-fsynced metadata ops survives only as a prefix (chosen by rng,
// independently per group), and unsynced appended bytes survive only as
// a prefix (the torn write). Open handles become stale — a crashed
// store must be discarded, and a fresh one recovered from the surviving
// image. After Crash the surviving state is fully durable, as after any
// reboot.
func (m *Mem) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()

	next := make(map[string]*inode, len(m.durable))
	for k, v := range m.durable {
		next[k] = v
	}
	// Deterministic group order: pending is scanned in op order, and the
	// first op of each group decides when the group's survival is drawn.
	drawn := make(map[string]int)
	counts := make(map[string]int)
	for _, op := range m.pending {
		counts[op.key]++
	}
	applied := make(map[string]int)
	for _, op := range m.pending {
		keep, ok := drawn[op.key]
		if !ok {
			keep = rng.Intn(counts[op.key] + 1)
			drawn[op.key] = keep
		}
		if applied[op.key] < keep {
			op.applyTo(next)
		}
		applied[op.key]++
	}

	// Content survival, once per surviving inode (an inode reachable
	// under two names after a partially-surviving rename keeps one image).
	seen := make(map[*inode]bool)
	for _, ino := range next {
		if seen[ino] {
			continue
		}
		seen[ino] = true
		s := ino.survivor(rng)
		ino.content, ino.durable = s, append([]byte(nil), s...)
	}

	m.live = next
	m.durable = make(map[string]*inode, len(next))
	for k, v := range next {
		m.durable[k] = v
	}
	m.pending = nil
}

// survivor picks the post-crash content: the durable image plus a
// random prefix of the unsynced tail, or — when an unsynced truncate or
// overwrite diverged the two — either whole image.
func (ino *inode) survivor(rng *rand.Rand) []byte {
	c, d := ino.content, ino.durable
	if len(c) >= len(d) && bytes.Equal(c[:len(d)], d) {
		keep := 0
		if tail := len(c) - len(d); tail > 0 {
			keep = rng.Intn(tail + 1)
		}
		return append(append([]byte(nil), d...), c[len(d):len(d)+keep]...)
	}
	if rng.Intn(2) == 0 {
		return append([]byte(nil), d...)
	}
	return append([]byte(nil), c...)
}

func (ino *inode) resize(size int64) {
	switch n := int(size); {
	case n <= len(ino.content):
		ino.content = ino.content[:n]
	default:
		ino.content = append(ino.content, make([]byte, n-len(ino.content))...)
	}
}

// memFile is a handle into a Mem inode.
type memFile struct {
	m        *Mem
	ino      *inode
	name     string
	append   bool
	writable bool
	pos      int64
	closed   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if f.pos >= int64(len(f.ino.content)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.content[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if !f.writable {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: fs.ErrPermission}
	}
	if f.append {
		f.pos = int64(len(f.ino.content))
	}
	if grow := f.pos + int64(len(p)) - int64(len(f.ino.content)); grow > 0 {
		f.ino.content = append(f.ino.content, make([]byte, grow)...)
	}
	copy(f.ino.content[f.pos:], p)
	f.pos += int64(len(p))
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = int64(len(f.ino.content)) + offset
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	if f.pos < 0 {
		return 0, fmt.Errorf("vfs: negative seek position")
	}
	return f.pos, nil
}

func (f *memFile) Sync() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.ino.durable = append([]byte(nil), f.ino.content...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.ino.resize(size)
	return nil
}

func (f *memFile) Close() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	f.closed = true
	return nil
}
