// Package vfs is the filesystem seam under the durable subsystems
// (internal/live): a small interface covering exactly the operations a
// write-ahead log and snapshot compactor need — open, append, fsync,
// atomic rename, directory fsync — with three implementations:
//
//   - OS: a passthrough to the real filesystem (production);
//   - Mem: an in-memory filesystem that models a disk the way crash
//     testing needs it modeled — written-but-unsynced data, and renames
//     whose directory was never fsynced, can be lost (or partially
//     kept) by a simulated power cut;
//   - Fault: a wrapper injecting deterministic, scriptable faults (fail
//     the Nth sync, power-cut after N operations, short writes, latency)
//     into any inner FS.
//
// The split follows FoundationDB-style simulation testing: the durable
// layer is written once against FS, and the torture harness explores
// crash interleavings by swapping the implementation, not by mocking the
// store.
package vfs

import (
	"io"
	"os"
)

// File is the handle interface: the subset of *os.File the durable layer
// uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Seek repositions the file offset; whence follows io.SeekStart/
	// io.SeekCurrent/io.SeekEnd.
	Seek(offset int64, whence int) (int64, error)
	// Sync flushes the file's data to stable storage. Until Sync returns
	// nil, a crash may lose (or keep only a prefix of) preceding writes.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
}

// FS is the filesystem interface. Path semantics follow the os package;
// errors satisfy errors.Is(err, fs.ErrNotExist) etc. where applicable.
type FS interface {
	// Open opens a file for reading.
	Open(name string) (File, error)
	// OpenFile is the general open; flag is the os.O_* bitmask.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the whole content of the named file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath. Like POSIX rename,
	// the swap is atomic with respect to a crash, but it is durable only
	// after SyncDir on the parent directory.
	Rename(oldpath, newpath string) error
	// Remove unlinks the named file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making the creations, renames and
	// removals inside it durable.
	SyncDir(dir string) error
}

// OS is the production FS: a passthrough to the os package.
type OS struct{}

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadFile(name string) ([]byte, error)   { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error               { return os.Remove(name) }
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
