package vfs

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"testing"
)

func write(t *testing.T, f File, data string) {
	t.Helper()
	if n, err := f.Write([]byte(data)); err != nil || n != len(data) {
		t.Fatalf("Write(%q) = %d, %v", data, n, err)
	}
}

func readAll(t *testing.T, m FS, name string) string {
	t.Helper()
	data, err := m.ReadFile(name)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", name, err)
	}
	return string(data)
}

func TestMemBasicFileOps(t *testing.T) {
	m := NewMem()
	if _, err := m.Open("/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open missing = %v, want ErrNotExist", err)
	}
	f, err := m.OpenFile("/a", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "hello")
	if _, err := m.OpenFile("/a", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("O_EXCL on existing = %v, want ErrExist", err)
	}
	// Append handle: writes land at the end regardless of seeks.
	g, err := m.OpenFile("/a", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if off, err := g.Seek(0, io.SeekEnd); err != nil || off != 5 {
		t.Fatalf("Seek end = %d, %v", off, err)
	}
	write(t, g, " world")
	if got := readAll(t, m, "/a"); got != "hello world" {
		t.Fatalf("content = %q", got)
	}
	// Read handle sees the bytes; writing through it is refused.
	r, err := m.Open("/a")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(r)
	if err != nil || string(buf) != "hello world" {
		t.Fatalf("ReadAll = %q, %v", buf, err)
	}
	if _, err := r.Write([]byte("x")); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("write on read handle = %v", err)
	}
	if err := m.Truncate("/a", 5); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "/a"); got != "hello" {
		t.Fatalf("after truncate = %q", got)
	}
	if err := m.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read after remove = %v", err)
	}
}

// TestMemCrashDropsUnsynced: unsynced appended bytes survive a crash
// only as a prefix; synced bytes always survive.
func TestMemCrashDropsUnsynced(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := NewMem()
		f, _ := m.OpenFile("/wal", os.O_WRONLY|os.O_CREATE, 0o644)
		write(t, f, "durable")
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		m.SyncDir("/")
		write(t, f, "-unsynced")
		m.Crash(rand.New(rand.NewSource(seed)))

		got := readAll(t, m, "/wal")
		if len(got) < len("durable") || got[:7] != "durable" {
			t.Fatalf("seed %d: synced prefix lost: %q", seed, got)
		}
		if want := "durable-unsynced"; got != want[:len(got)] {
			t.Fatalf("seed %d: surviving tail is not a prefix: %q", seed, got)
		}
	}
}

// TestMemCrashRollsBackUnsyncedCreate: a file created but whose
// directory was never fsynced can vanish; after SyncDir it cannot.
func TestMemCrashRollsBackUnsyncedCreate(t *testing.T) {
	vanished, survived := false, false
	for seed := int64(0); seed < 40; seed++ {
		m := NewMem()
		f, _ := m.OpenFile("/f", os.O_WRONLY|os.O_CREATE, 0o644)
		write(t, f, "x")
		f.Sync() // content durable, dir entry not
		m.Crash(rand.New(rand.NewSource(seed)))
		if _, err := m.ReadFile("/f"); err != nil {
			vanished = true
		} else {
			survived = true
		}
	}
	if !vanished || !survived {
		t.Fatalf("unsynced create: vanished=%v survived=%v; want both outcomes across seeds", vanished, survived)
	}

	// With the directory fsynced, the file always survives.
	for seed := int64(0); seed < 20; seed++ {
		m := NewMem()
		f, _ := m.OpenFile("/f", os.O_WRONLY|os.O_CREATE, 0o644)
		write(t, f, "x")
		f.Sync()
		if err := m.SyncDir("/"); err != nil {
			t.Fatal(err)
		}
		m.Crash(rand.New(rand.NewSource(seed)))
		if got := readAll(t, m, "/f"); got != "x" {
			t.Fatalf("seed %d: dir-synced file lost: %q", seed, got)
		}
	}
}

// TestMemCrashRenameAtomic: an un-dir-synced rename either fully
// survives or fully rolls back — never a state where both names are
// gone — and a dir-synced rename always survives.
func TestMemCrashRenameAtomic(t *testing.T) {
	rolledBack, applied := false, false
	for seed := int64(0); seed < 40; seed++ {
		m := NewMem()
		f, _ := m.OpenFile("/t.tmp", os.O_WRONLY|os.O_CREATE, 0o644)
		write(t, f, "new")
		f.Sync()
		g, _ := m.OpenFile("/t", os.O_WRONLY|os.O_CREATE, 0o644)
		write(t, g, "old")
		g.Sync()
		m.SyncDir("/")
		if err := m.Rename("/t.tmp", "/t"); err != nil {
			t.Fatal(err)
		}
		m.Crash(rand.New(rand.NewSource(seed)))
		switch got := readAll(t, m, "/t"); got {
		case "new":
			applied = true
		case "old":
			rolledBack = true
		default:
			t.Fatalf("seed %d: /t = %q, want old or new", seed, got)
		}
	}
	if !rolledBack || !applied {
		t.Fatalf("rename: applied=%v rolledBack=%v; want both outcomes across seeds", applied, rolledBack)
	}
}

// TestMemCrashRenamesReorder: two renames of different files, neither
// dir-synced, can survive in any combination — including the second
// without the first, the reordering that motivates fsync-between.
func TestMemCrashRenamesReorder(t *testing.T) {
	outcomes := map[[2]bool]bool{}
	for seed := int64(0); seed < 60; seed++ {
		m := NewMem()
		for _, name := range []string{"/a.tmp", "/b.tmp"} {
			f, _ := m.OpenFile(name, os.O_WRONLY|os.O_CREATE, 0o644)
			write(t, f, "v2")
			f.Sync()
		}
		for _, name := range []string{"/a", "/b"} {
			f, _ := m.OpenFile(name, os.O_WRONLY|os.O_CREATE, 0o644)
			write(t, f, "v1")
			f.Sync()
		}
		m.SyncDir("/")
		m.Rename("/a.tmp", "/a")
		m.Rename("/b.tmp", "/b")
		m.Crash(rand.New(rand.NewSource(seed)))
		outcomes[[2]bool{readAll(t, m, "/a") == "v2", readAll(t, m, "/b") == "v2"}] = true
	}
	for _, want := range [][2]bool{{false, false}, {true, true}, {true, false}, {false, true}} {
		if !outcomes[want] {
			t.Errorf("rename survival combination %v never observed across seeds", want)
		}
	}
}

func TestFaultFailNthSync(t *testing.T) {
	m := NewMem()
	ft := NewFault(m, FailNth(OpSync, 2))
	f, err := ft.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "a")
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync = %v, want ErrInjected", err)
	}
	// The disk stays broken: later syncs keep failing.
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("third sync = %v, want ErrInjected", err)
	}
}

func TestFaultPowerCutShortWrite(t *testing.T) {
	m := NewMem()
	ft := NewFault(m, nil)
	f, _ := ft.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f, "aaaa") // op 2 (create was op 1)
	if got := ft.Ops(); got != 2 {
		t.Fatalf("Ops = %d, want 2", got)
	}
	ft.SetScript(PowerCut(2, 3))
	n, err := f.Write([]byte("bbbb")) // boundary op: 3 bytes land, then the error
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("boundary write = %d, %v", n, err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut sync = %v", err)
	}
	if err := ft.Rename("/x", "/y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut rename = %v", err)
	}
	if got := readAll(t, m, "/x"); got != "aaaabbb" {
		t.Fatalf("content = %q, want aaaabbb", got)
	}
	// Reads still work: the process is alive, the disk is not.
	if _, err := ft.ReadFile("/x"); err != nil {
		t.Fatalf("post-cut read = %v", err)
	}
}

func TestFaultFailPathRename(t *testing.T) {
	m := NewMem()
	ft := NewFault(m, FailPath(OpRename, "/db.snap"))
	f, _ := ft.OpenFile("/db.snap.tmp", os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f, "snap")
	if err := ft.Rename("/db.snap.tmp", "/db.snap"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename to guarded path = %v", err)
	}
	if err := ft.Rename("/db.snap.tmp", "/elsewhere"); err != nil {
		t.Fatalf("rename elsewhere = %v", err)
	}
}

// TestOSRoundTrip exercises the production FS against a real temp dir —
// the same call sequence the WAL uses.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var o OS
	f, err := o.OpenFile(dir+"/wal", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "header")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := o.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Rename(dir+"/wal", dir+"/wal2"); err != nil {
		t.Fatal(err)
	}
	data, err := o.ReadFile(dir + "/wal2")
	if err != nil || string(data) != "header" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := o.Truncate(dir+"/wal2", 3); err != nil {
		t.Fatal(err)
	}
	if err := o.Remove(dir + "/wal2"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Open(dir + "/wal2"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open removed = %v", err)
	}
}
