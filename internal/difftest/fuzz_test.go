package difftest

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hypodatalog/internal/workload"
)

// Small hand-written seeds in the spirit of the paper's Examples 1–3:
// hypothetical insertion through rules (Example 1), chained hypotheses
// (Example 2), and insertion interacting with negation (Example 3).
var handSeeds = []string{
	// Example 1: would Tony graduate if he took his201?
	`grad(S) :- take(S, his201), take(S, cs101).
take(tony, cs101).
pool(his201).
taken(S) :- take(S, C).
`,
	// Example 2: nested hypothetical premises accumulate.
	`a :- b[add: p]. b :- c[add: q]. c :- p, q.
`,
	// Example 3: hypothetical insertion under stratified negation.
	`ok :- good(X), not bad(X).
bad(X) :- flagged(X)[add: mark(X)].
flagged(X) :- mark(X), risky(X).
good(c0). good(c1). risky(c1).
pool(c0).
`,
	// Deletion: a premise can retract a hypothesis again.
	`win :- lose[del: token(t1)].
lose :- not token(t1).
token(t1).
pool(t1).
`,
	// Bound point queries over binary linear recursion: the shape the
	// demand-driven (magic-set) engine rewrites hardest, with a pool so
	// demand is also seeded under hypothetical contexts.
	`edge(a, b). edge(b, c). edge(c, a).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
pool(a).
`,
	// Negation over the closure: unreach falls out of reach's demand
	// scope, so the demand engine mixes magic evaluation with full
	// oracle answers in one query.
	`edge(a, b). edge(b, c). node(a). node(b). node(c).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
unreach(X, Y) :- node(X), node(Y), not reach(X, Y).
pool(b).
`,
}

func seedCorpus(tb testing.TB) []string {
	out := append([]string{}, handSeeds...)

	// The paper's sized examples from the workload generators (Examples
	// 4–9), small enough for the reference interpreter.
	out = append(out,
		workload.ChainProgram(3),
		workload.OrderLoopProgram(3),
		workload.ParityProgram(3),
		workload.HamiltonianProgram(workload.Digraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}}}),
		workload.KStrataProgram(3, 2),
	)

	// The checked-in example programs (university is Example 1 at full
	// size, tokengame and nationality are the section-7 programs). Some
	// exceed Check's domain bound and only exercise the skip path — still
	// useful mutation fodder.
	for _, name := range []string{"university", "parity", "hamiltonian", "example9", "tokengame", "nationality"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "examples", "programs", name+".hdl"))
		if err != nil {
			tb.Logf("seed corpus: %v (skipping)", err)
			continue
		}
		out = append(out, string(data))
	}

	// Random stratified programs, with and without deletions.
	for seed := 0; seed < 6; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		out = append(out, workload.RandomStratifiedProgram(rng, workload.DefaultFuzz()))
	}
	delOpts := workload.DefaultFuzz()
	delOpts.DelProb = 0.4
	for seed := 100; seed < 103; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		out = append(out, workload.RandomStratifiedProgram(rng, delOpts))
	}
	return out
}

// FuzzEngineAgreement mutates program source and asserts that ModeUniform,
// ModeCascade (when linearly stratifiable), their demand-driven
// (magic-set) variants and the reference interpreter agree on Ask, Query
// and AskUnder for everything that parses. CI runs it for a bounded
// wall-clock slice (see .github/workflows/ci.yml).
func FuzzEngineAgreement(f *testing.F) {
	for _, src := range seedCorpus(f) {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if err := Check(src); err != nil && !errors.Is(err, ErrSkip) {
			t.Fatal(err)
		}
	})
}

// FuzzDemandAgreement spends its whole budget on the demand-driven
// engine: no reference interpreter, just full-mode versus DemandDriven
// engines over every bound ground query, open query, and pool/1
// AskUnder. CI splits the difftest fuzz budget between this target and
// FuzzEngineAgreement.
func FuzzDemandAgreement(f *testing.F) {
	for _, src := range seedCorpus(f) {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if err := CheckDemand(src); err != nil && !errors.Is(err, ErrSkip) {
			t.Fatal(err)
		}
	})
}

// TestSeedAgreement runs every corpus seed through Check directly, so the
// curated programs are verified on every plain `go test` run, not only
// under `go test -fuzz`.
func TestSeedAgreement(t *testing.T) {
	for i, src := range seedCorpus(t) {
		if err := Check(src); err != nil && !errors.Is(err, ErrSkip) {
			t.Errorf("seed %d: %v", i, err)
		}
	}
}

// TestDemandSeedAgreement runs every corpus seed through CheckDemand on
// plain `go test`, mirroring TestSeedAgreement for the demand-focused
// fuzz target.
func TestDemandSeedAgreement(t *testing.T) {
	for i, src := range seedCorpus(t) {
		if err := CheckDemand(src); err != nil && !errors.Is(err, ErrSkip) {
			t.Errorf("seed %d: %v", i, err)
		}
	}
}

// TestRandomAgreement is the deterministic slice of the fuzzer: many
// generator seeds, every one expected to be fully checkable (the
// generator's bounds sit inside Check's skip limits).
func TestRandomAgreement(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	opts := workload.DefaultFuzz()
	delOpts := workload.DefaultFuzz()
	delOpts.DelProb = 0.35
	skipped := 0
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed + 7000)))
		o := opts
		if seed%3 == 0 {
			o = delOpts
		}
		src := workload.RandomStratifiedProgram(rng, o)
		err := Check(src)
		if errors.Is(err, ErrSkip) {
			skipped++
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if skipped > iters/2 {
		t.Errorf("%d/%d random programs skipped; generator drifted outside Check's bounds", skipped, iters)
	}
}
