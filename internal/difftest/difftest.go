// Package difftest cross-checks the package's evaluators against each
// other through the public API: the top-down tabled engine
// (hypo.ModeUniform), the paper's PROVE_Σ/PROVE_Δ cascade
// (hypo.ModeCascade, when the program is linearly stratifiable), the
// naive Definition-3 reference interpreter (internal/ref), the
// demand-driven magic-set rewrite (Options.DemandDriven, the fifth
// engine — every Ask routes through a query-specific transformed
// program), and — as a further implementation — engines mutated in
// place through Engine.ApplyDelta, which must agree with a cold rebuild
// at the post-batch fact set. Any disagreement on Ask, Query or
// AskUnder is a bug in at least one of them.
//
// The existing fuzzers in internal/topdown and internal/engine compare
// the evaluators below the public surface — on interned atom IDs, with
// hand-built states. This package closes the remaining gap: it drives
// the same surface strings (query text, hypothetical add lists) that the
// HTTP server and the answer cache key on, so a divergence introduced in
// parsing, compilation, domain checking or result materialisation is
// caught too, not just one in the provers.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
)

// ErrSkip reports that an input is out of scope for differential
// checking — it does not parse, fails validation or stratification (the
// fuzzer mutates source text freely), or is too large for the
// exponential reference interpreter to ground out. Test with errors.Is.
var ErrSkip = errors.New("difftest: input out of scope")

// Bounds keeping one Check call tractable: the reference interpreter is
// deliberately exponential in the reachable hypothetical states, and the
// enumeration below grounds every predicate over the full domain.
const (
	maxSrcBytes   = 8 << 10
	maxDomain     = 4
	maxGroundQs   = 300
	maxHypAtoms   = 6
	maxRefWork    = 300_000
	maxGoalBudget = 500_000

	// checkDeadline bounds the engine-side wall clock of one Check call.
	// Fuzz mutation finds programs whose every query runs long without
	// ever tripping the goal budget; without a hard clock those dominate
	// the fuzzing loop. Hitting the deadline skips the input — which
	// queries complete before it varies with machine speed, but a
	// disagreement can only ever be reported on completed answers, never
	// manufactured by the timeout.
	checkDeadline = 3 * time.Second
)

// Check parses src and asserts that every evaluator agrees on:
//
//   - Ask for every ground atom of arity ≤ 2 over the program's domain;
//   - Query("p(X)") / Query("p(X, Y)") binding sets for those predicates;
//   - AskUnder with hypothetical pool/1 additions, when the program
//     declares pool/1 (the convention of workload.RandomStratifiedProgram).
//
// It returns nil when all evaluators agree, an error wrapping ErrSkip
// when the input is out of scope, and a descriptive disagreement error
// otherwise.
func Check(src string) error {
	if len(src) > maxSrcBytes {
		return fmt.Errorf("%w: source over %d bytes", ErrSkip, maxSrcBytes)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return fmt.Errorf("%w: parse: %v", ErrSkip, err)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		return fmt.Errorf("%w: validate: %v", ErrSkip, errs[0])
	}
	if err := strat.CheckNegation(prog); err != nil {
		return fmt.Errorf("%w: negation: %v", ErrSkip, err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		return fmt.Errorf("%w: compile: %v", ErrSkip, err)
	}
	ip := ref.New(cp)
	dom := ip.Dom()
	if len(dom) == 0 || len(dom) > maxDomain {
		return fmt.Errorf("%w: domain size %d", ErrSkip, len(dom))
	}
	if groundQueries(cp.Syms, len(dom)) > maxGroundQs {
		return fmt.Errorf("%w: too many ground queries", ErrSkip)
	}
	hyp := hypAtoms(prog, len(dom))
	if hyp > maxHypAtoms {
		return fmt.Errorf("%w: %d hypothetically mutable ground atoms", ErrSkip, hyp)
	}
	if w := refWork(prog, len(dom), hyp); w > maxRefWork {
		return fmt.Errorf("%w: reference work estimate %d", ErrSkip, w)
	}

	// The same source through the public API. The internal pipeline above
	// accepted it, so a public-surface rejection is itself a finding.
	hp, err := hypo.Parse(src)
	if err != nil {
		return fmt.Errorf("difftest: internal parser accepts but hypo.Parse rejects: %v\n%s", err, src)
	}
	engines := map[string]*hypo.Engine{}
	uni, err := hypo.New(hp, hypo.Options{Mode: hypo.ModeUniform, MaxGoals: maxGoalBudget})
	if err != nil {
		return fmt.Errorf("%w: ModeUniform construction: %v", ErrSkip, err)
	}
	engines["uniform"] = uni
	dem, err := hypo.New(hp, hypo.Options{Mode: hypo.ModeUniform, DemandDriven: true, MaxGoals: maxGoalBudget})
	if err != nil {
		return fmt.Errorf("difftest: ModeUniform accepted but DemandDriven construction fails: %v\n%s", err, src)
	}
	engines["demand"] = dem
	if hp.Stratification().Linear {
		casc, err := hypo.New(hp, hypo.Options{Mode: hypo.ModeCascade, MaxGoals: maxGoalBudget})
		if err != nil {
			return fmt.Errorf("difftest: linearly stratifiable per Stratification() but ModeCascade fails: %v\n%s", err, src)
		}
		engines["cascade"] = casc
		dcasc, err := hypo.New(hp, hypo.Options{Mode: hypo.ModeCascade, DemandDriven: true, MaxGoals: maxGoalBudget})
		if err != nil {
			return fmt.Errorf("difftest: ModeCascade accepted but DemandDriven construction fails: %v\n%s", err, src)
		}
		engines["demand-cascade"] = dcasc
	}

	ctx, cancel := context.WithTimeout(context.Background(), checkDeadline)
	defer cancel()
	if err := checkAsk(ctx, src, cp.Syms, dom, ip, engines); err != nil {
		return err
	}
	if err := checkQuery(ctx, src, cp.Syms, dom, ip, engines); err != nil {
		return err
	}
	if err := checkAskUnder(ctx, src, cp.Syms, dom, ip, engines); err != nil {
		return err
	}
	return checkIncremental(ctx, src, prog, cp, dom, hp)
}

// CheckDemand is the demand-focused variant of Check: it compares
// evaluation modes against each other only — no reference interpreter —
// so its whole budget goes to the magic-set rewrite. ModeUniform with
// and without Options.DemandDriven (plus the cascade pair when the
// program is linearly stratifiable) must agree on every bound ground
// Ask of arity ≤ 2, on open Query binding sets, and on AskUnder with
// pool/1 additions. Skipping the exponential reference interpreter lets
// this path check programs Check would reject for reference-work cost.
func CheckDemand(src string) error {
	if len(src) > maxSrcBytes {
		return fmt.Errorf("%w: source over %d bytes", ErrSkip, maxSrcBytes)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return fmt.Errorf("%w: parse: %v", ErrSkip, err)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		return fmt.Errorf("%w: validate: %v", ErrSkip, errs[0])
	}
	if err := strat.CheckNegation(prog); err != nil {
		return fmt.Errorf("%w: negation: %v", ErrSkip, err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		return fmt.Errorf("%w: compile: %v", ErrSkip, err)
	}
	syms := cp.Syms
	dom := ref.New(cp).Dom()
	if len(dom) == 0 || len(dom) > maxDomain {
		return fmt.Errorf("%w: domain size %d", ErrSkip, len(dom))
	}
	if groundQueries(syms, len(dom)) > maxGroundQs {
		return fmt.Errorf("%w: too many ground queries", ErrSkip)
	}
	hp, err := hypo.Parse(src)
	if err != nil {
		return fmt.Errorf("difftest: internal parser accepts but hypo.Parse rejects: %v\n%s", err, src)
	}
	pairs := [][2]hypo.Options{{
		{Mode: hypo.ModeUniform, MaxGoals: maxGoalBudget},
		{Mode: hypo.ModeUniform, DemandDriven: true, MaxGoals: maxGoalBudget},
	}}
	if hp.Stratification().Linear {
		pairs = append(pairs, [2]hypo.Options{
			{Mode: hypo.ModeCascade, MaxGoals: maxGoalBudget},
			{Mode: hypo.ModeCascade, DemandDriven: true, MaxGoals: maxGoalBudget},
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), checkDeadline)
	defer cancel()
	for _, pair := range pairs {
		full, err := hypo.New(hp, pair[0])
		if err != nil {
			return fmt.Errorf("%w: full engine construction: %v", ErrSkip, err)
		}
		dd, err := hypo.New(hp, pair[1])
		if err != nil {
			return fmt.Errorf("difftest: full mode accepted but DemandDriven fails: %v\n%s", err, src)
		}
		mode := "uniform"
		if pair[0].Mode == hypo.ModeCascade {
			mode = "cascade"
		}
		err = eachGroundAtom(syms, dom, func(p symbols.Pred, args []symbols.Const) error {
			q := atomString(syms, p, args)
			want, err := full.AskCtx(ctx, q)
			if err != nil {
				return skipOrFail(mode, q, err, src)
			}
			got, err := dd.AskCtx(ctx, q)
			if err != nil {
				return skipOrFail("demand-"+mode, q, err, src)
			}
			if got != want {
				return fmt.Errorf("difftest: Ask(%s): demand-%s=%v %s=%v\n%s", q, mode, got, mode, want, src)
			}
			return nil
		})
		if err != nil {
			return err
		}
		for p := symbols.Pred(0); int(p) < syms.NumPreds(); p++ {
			arity := syms.PredArity(p)
			if arity < 1 || arity > 2 {
				continue
			}
			q := syms.PredName(p) + "(X)"
			if arity == 2 {
				q = syms.PredName(p) + "(X, Y)"
			}
			wantBs, err := full.QueryCtx(ctx, q)
			if err != nil {
				return skipOrFail(mode, q, err, src)
			}
			gotBs, err := dd.QueryCtx(ctx, q)
			if err != nil {
				return skipOrFail("demand-"+mode, q, err, src)
			}
			if got, want := canonBindings(gotBs), canonBindings(wantBs); !equalStrings(got, want) {
				return fmt.Errorf("difftest: Query(%s): demand-%s=%v %s=%v\n%s", q, mode, got, mode, want, src)
			}
		}
		poolPred, ok := syms.LookupPred("pool", 1)
		if !ok {
			continue
		}
		add := atomString(syms, poolPred, []symbols.Const{dom[0]})
		err = eachGroundAtom(syms, dom, func(p symbols.Pred, args []symbols.Const) error {
			q := atomString(syms, p, args)
			want, err := full.AskUnderCtx(ctx, q, add)
			if err != nil {
				return skipOrFail(mode, q, err, src)
			}
			got, err := dd.AskUnderCtx(ctx, q, add)
			if err != nil {
				return skipOrFail("demand-"+mode, q, err, src)
			}
			if got != want {
				return fmt.Errorf("difftest: AskUnder(%s, add %s): demand-%s=%v %s=%v\n%s",
					q, add, mode, got, mode, want, src)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// checkIncremental is the fourth implementation under test: engines
// mutated in place through Engine.ApplyDelta must agree with a cold
// engine built from scratch at the post-batch fact set. The batch is
// derived deterministically from the program — every third extensional
// ground atom over the domain, capped — flipping membership: present
// facts are retracted (exercising DRed delete-rederive), absent ones
// asserted (semi-naive propagation). The cold engine pins the original
// domain via ExtraDomain, matching the incremental engines' fixed
// dom(R, DB).
func checkIncremental(ctx context.Context, src string, prog *ast.Program, cp *ast.CProgram, dom []symbols.Const, hp *hypo.Program) error {
	syms := cp.Syms
	factSet := map[string]ast.Atom{}
	for _, f := range prog.Facts {
		factSet[f.String()] = f
	}
	const maxBatch = 6
	var asserts, retracts []string
	cand := 0
	_ = eachGroundAtom(syms, dom, func(p symbols.Pred, args []symbols.Const) error {
		if cp.IDB[p] || len(asserts)+len(retracts) >= maxBatch {
			return nil
		}
		cand++
		if cand%3 != 0 {
			return nil
		}
		a := ast.Atom{Pred: syms.PredName(p)}
		for _, c := range args {
			a.Args = append(a.Args, ast.Term{Name: syms.ConstName(c)})
		}
		k := a.String()
		if _, ok := factSet[k]; ok {
			retracts = append(retracts, k)
			delete(factSet, k)
		} else {
			asserts = append(asserts, k)
			factSet[k] = a
		}
		return nil
	})
	if len(asserts)+len(retracts) == 0 {
		return nil
	}

	incremental := map[string]*hypo.Engine{}
	extra := make([]string, len(dom))
	for i, c := range dom {
		extra[i] = syms.ConstName(c)
	}
	opts := hypo.Options{Mode: hypo.ModeUniform, MaxGoals: maxGoalBudget, ExtraDomain: extra}
	uni, err := hypo.New(hp, opts)
	if err != nil {
		return fmt.Errorf("%w: incremental ModeUniform construction: %v", ErrSkip, err)
	}
	incremental["incremental-uniform"] = uni
	dopts := opts
	dopts.DemandDriven = true
	dem, err := hypo.New(hp, dopts)
	if err != nil {
		return fmt.Errorf("%w: incremental DemandDriven construction: %v", ErrSkip, err)
	}
	incremental["incremental-demand"] = dem
	if hp.Stratification().Linear {
		opts.Mode = hypo.ModeCascade
		casc, err := hypo.New(hp, opts)
		if err != nil {
			return fmt.Errorf("%w: incremental ModeCascade construction: %v", ErrSkip, err)
		}
		incremental["incremental-cascade"] = casc
	}
	for name, e := range incremental {
		if err := e.ApplyDelta(asserts, retracts); err != nil {
			// Admission rejections on fuzz-shaped names (quoting, arity
			// oddities) put the batch out of scope rather than failing it;
			// correctness bugs surface in the comparisons below.
			return fmt.Errorf("%w: %s ApplyDelta: %v", ErrSkip, name, err)
		}
	}

	// The cold reference: the same rules re-parsed with the post-batch
	// facts (Rule.String/Atom.String round-trip through the parser).
	var b strings.Builder
	for _, r := range prog.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	keys := make([]string, 0, len(factSet))
	for k := range factSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString(".\n")
	}
	coldProg, err := hypo.Parse(b.String())
	if err != nil {
		return fmt.Errorf("%w: post-batch source re-parse: %v", ErrSkip, err)
	}
	opts.Mode = hypo.ModeUniform
	cold, err := hypo.New(coldProg, opts)
	if err != nil {
		return fmt.Errorf("%w: cold post-batch construction: %v", ErrSkip, err)
	}

	batch := fmt.Sprintf("assert %v retract %v", asserts, retracts)
	err = eachGroundAtom(syms, dom, func(p symbols.Pred, args []symbols.Const) error {
		q := atomString(syms, p, args)
		want, err := cold.AskCtx(ctx, q)
		if err != nil {
			return skipOrFail("cold-rebuild", q, err, src)
		}
		for name, e := range incremental {
			got, err := e.AskCtx(ctx, q)
			if err != nil {
				return skipOrFail(name, q, err, src)
			}
			if got != want {
				return fmt.Errorf("difftest: after %s, Ask(%s): %s=%v cold=%v\n%s",
					batch, q, name, got, want, src)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for p := symbols.Pred(0); int(p) < syms.NumPreds(); p++ {
		arity := syms.PredArity(p)
		if arity < 1 || arity > 2 {
			continue
		}
		q := syms.PredName(p) + "(X)"
		if arity == 2 {
			q = syms.PredName(p) + "(X, Y)"
		}
		wantBs, err := cold.QueryCtx(ctx, q)
		if err != nil {
			return skipOrFail("cold-rebuild", q, err, src)
		}
		want := canonBindings(wantBs)
		for name, e := range incremental {
			bs, err := e.QueryCtx(ctx, q)
			if err != nil {
				return skipOrFail(name, q, err, src)
			}
			if got := canonBindings(bs); !equalStrings(got, want) {
				return fmt.Errorf("difftest: after %s, Query(%s): %s=%v cold=%v\n%s",
					batch, q, name, got, want, src)
			}
		}
	}
	poolPred, ok := syms.LookupPred("pool", 1)
	if !ok || len(dom) == 0 {
		return nil
	}
	// One hypothetical probe: mutated base plus a pool/1 extension, so
	// the post-batch memo state is also exercised under [add:].
	add := atomString(syms, poolPred, []symbols.Const{dom[0]})
	return eachGroundAtom(syms, dom, func(p symbols.Pred, args []symbols.Const) error {
		q := atomString(syms, p, args)
		want, err := cold.AskUnderCtx(ctx, q, add)
		if err != nil {
			return skipOrFail("cold-rebuild", q, err, src)
		}
		for name, e := range incremental {
			got, err := e.AskUnderCtx(ctx, q, add)
			if err != nil {
				return skipOrFail(name, q, err, src)
			}
			if got != want {
				return fmt.Errorf("difftest: after %s, AskUnder(%s, add %s): %s=%v cold=%v\n%s",
					batch, q, add, name, got, want, src)
			}
		}
		return nil
	})
}

// hypAtoms counts the ground atoms of predicates that appear in an add or
// del position anywhere in the program. The reference interpreter's state
// space is exponential in this number (each such atom can be added,
// deleted or untouched along a premise chain), so fuzz-mutated sources
// with many hypothetical premises must be skipped, not endured.
func hypAtoms(prog *ast.Program, domSize int) int {
	preds := map[string]int{}
	for _, r := range prog.Rules {
		for _, pr := range r.Body {
			for _, a := range pr.Adds {
				preds[a.Pred] = a.Arity()
			}
			for _, a := range pr.Dels {
				preds[a.Pred] = a.Arity()
			}
		}
	}
	n := 0
	for _, arity := range preds {
		atoms := 1
		for i := 0; i < arity; i++ {
			atoms *= domSize
		}
		n += atoms
	}
	return n
}

// refWork estimates the reference interpreter's cost: ground
// substitutions per rule (|dom|^vars), summed over rules, times the
// hypothetical state-space bound (3^hypAtoms: each mutable atom is
// added, deleted or untouched). The interpreter has no deadline, so
// inputs whose estimate explodes — fuzz mutation loves rules with many
// distinct variables — are skipped up front.
func refWork(prog *ast.Program, domSize, hypCount int) int {
	subst := 0
	for _, r := range prog.Rules {
		w := 1
		for range r.Vars() {
			w *= domSize
			if w > maxRefWork {
				return maxRefWork + 1
			}
		}
		subst += w
	}
	states := 1
	for i := 0; i < hypCount; i++ {
		states *= 3
	}
	if subst > 0 && states > maxRefWork/subst {
		return maxRefWork + 1
	}
	return subst * states
}

// groundQueries counts the ground atoms the enumeration below will ask.
func groundQueries(syms *symbols.Table, domSize int) int {
	n := 0
	for p := symbols.Pred(0); int(p) < syms.NumPreds(); p++ {
		switch syms.PredArity(p) {
		case 0:
			n++
		case 1:
			n += domSize
		case 2:
			n += domSize * domSize
		}
	}
	return n
}

// atomString renders p(c1, ..., ck) in surface syntax.
func atomString(syms *symbols.Table, p symbols.Pred, args []symbols.Const) string {
	if len(args) == 0 {
		return syms.PredName(p)
	}
	names := make([]string, len(args))
	for i, c := range args {
		names[i] = syms.ConstName(c)
	}
	return syms.PredName(p) + "(" + strings.Join(names, ", ") + ")"
}

// eachGroundAtom calls fn for every ground atom of arity ≤ 2 over dom.
func eachGroundAtom(syms *symbols.Table, dom []symbols.Const, fn func(p symbols.Pred, args []symbols.Const) error) error {
	for p := symbols.Pred(0); int(p) < syms.NumPreds(); p++ {
		switch syms.PredArity(p) {
		case 0:
			if err := fn(p, nil); err != nil {
				return err
			}
		case 1:
			for _, c := range dom {
				if err := fn(p, []symbols.Const{c}); err != nil {
					return err
				}
			}
		case 2:
			for _, c1 := range dom {
				for _, c2 := range dom {
					if err := fn(p, []symbols.Const{c1, c2}); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// skipOrFail wraps an evaluation error: budget or deadline exhaustion
// makes the whole input out of scope, anything else is a real failure.
func skipOrFail(name, q string, err error, src string) error {
	if errors.Is(err, hypo.ErrBudget) || errors.Is(err, hypo.ErrDeadline) || errors.Is(err, hypo.ErrCanceled) {
		return fmt.Errorf("%w: %s gave up on %s: %v", ErrSkip, name, q, err)
	}
	return fmt.Errorf("difftest: engine %s failed on %s: %v\n%s", name, q, err, src)
}

func checkAsk(ctx context.Context, src string, syms *symbols.Table, dom []symbols.Const, ip *ref.Interp, engines map[string]*hypo.Engine) error {
	return eachGroundAtom(syms, dom, func(p symbols.Pred, args []symbols.Const) error {
		q := atomString(syms, p, args)
		want := ip.Holds(ip.Interner().ID(p, args), ip.EmptyState())
		for name, e := range engines {
			got, err := e.AskCtx(ctx, q)
			if err != nil {
				return skipOrFail(name, q, err, src)
			}
			if got != want {
				return fmt.Errorf("difftest: Ask(%s): %s=%v ref=%v\n%s", q, name, got, want, src)
			}
		}
		return nil
	})
}

func checkQuery(ctx context.Context, src string, syms *symbols.Table, dom []symbols.Const, ip *ref.Interp, engines map[string]*hypo.Engine) error {
	for p := symbols.Pred(0); int(p) < syms.NumPreds(); p++ {
		arity := syms.PredArity(p)
		if arity < 1 || arity > 2 {
			continue
		}
		var q string
		var want []string
		if arity == 1 {
			q = syms.PredName(p) + "(X)"
			for _, c := range dom {
				if ip.Holds(ip.Interner().ID(p, []symbols.Const{c}), ip.EmptyState()) {
					want = append(want, "X="+syms.ConstName(c))
				}
			}
		} else {
			q = syms.PredName(p) + "(X, Y)"
			for _, c1 := range dom {
				for _, c2 := range dom {
					if ip.Holds(ip.Interner().ID(p, []symbols.Const{c1, c2}), ip.EmptyState()) {
						want = append(want, "X="+syms.ConstName(c1)+",Y="+syms.ConstName(c2))
					}
				}
			}
		}
		sort.Strings(want)
		for name, e := range engines {
			bs, err := e.QueryCtx(ctx, q)
			if err != nil {
				return skipOrFail(name, q, err, src)
			}
			got := canonBindings(bs)
			if !equalStrings(got, want) {
				return fmt.Errorf("difftest: Query(%s): %s=%v ref=%v\n%s", q, name, got, want, src)
			}
		}
	}
	return nil
}

// checkAskUnder compares every evaluator under hypothetical extensions of
// the pool/1 relation — each single atom, plus one two-atom set. Programs
// without pool/1 are vacuously fine (Ask already covered them).
func checkAskUnder(ctx context.Context, src string, syms *symbols.Table, dom []symbols.Const, ip *ref.Interp, engines map[string]*hypo.Engine) error {
	poolPred, ok := syms.LookupPred("pool", 1)
	if !ok {
		return nil
	}
	var addSets [][]symbols.Const
	for _, c := range dom {
		addSets = append(addSets, []symbols.Const{c})
	}
	if len(dom) >= 2 {
		addSets = append(addSets, []symbols.Const{dom[0], dom[1]})
	}
	for _, set := range addSets {
		adds := make([]string, len(set))
		stR := ip.EmptyState()
		for i, c := range set {
			adds[i] = atomString(syms, poolPred, []symbols.Const{c})
			stR = stR.Add(ip.Interner().ID(poolPred, []symbols.Const{c}))
		}
		err := eachGroundAtom(syms, dom, func(p symbols.Pred, args []symbols.Const) error {
			q := atomString(syms, p, args)
			want := ip.Holds(ip.Interner().ID(p, args), stR)
			for name, e := range engines {
				got, err := e.AskUnderCtx(ctx, q, adds...)
				if err != nil {
					return skipOrFail(name, q, err, src)
				}
				if got != want {
					return fmt.Errorf("difftest: AskUnder(%s, add %v): %s=%v ref=%v\n%s",
						q, adds, name, got, want, src)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// canonBindings renders a binding set in a sorted canonical form so two
// evaluators' answer sets compare independent of enumeration order.
func canonBindings(bs []hypo.Binding) []string {
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + b[k]
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
