package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func mustDo(t *testing.T, c *Cache, k Key, val any) {
	t.Helper()
	_, _, err := c.Do(context.Background(), k, func() (Computed, error) {
		return Computed{Val: val, Bytes: 8, Store: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{Version: 1, Query: "q"}
	calls := 0
	compute := func() (Computed, error) {
		calls++
		return Computed{Val: 42, Bytes: 8, Store: true}, nil
	}
	v, st, err := c.Do(context.Background(), k, compute)
	if err != nil || v.(int) != 42 || st != Miss {
		t.Fatalf("first Do: v=%v st=%v err=%v", v, st, err)
	}
	v, st, err = c.Do(context.Background(), k, compute)
	if err != nil || v.(int) != 42 || st != Hit {
		t.Fatalf("second Do: v=%v st=%v err=%v", v, st, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st2 := c.Stats()
	if st2.Hits != 1 || st2.Misses != 1 || st2.Entries != 1 {
		t.Fatalf("stats %+v", st2)
	}
}

func TestVersionIsPartOfTheKey(t *testing.T) {
	c := New(1<<20, nil)
	mustDo(t, c, Key{Version: 1, Query: "q"}, "old")
	mustDo(t, c, Key{Version: 2, Query: "q"}, "new")
	if v, ok := c.Get(Key{Version: 1, Query: "q"}); !ok || v.(string) != "old" {
		t.Fatalf("v1 entry: %v %v", v, ok)
	}
	if v, ok := c.Get(Key{Version: 2, Query: "q"}); !ok || v.(string) != "new" {
		t.Fatalf("v2 entry: %v %v", v, ok)
	}
}

func TestGetMiss(t *testing.T) {
	c := New(1<<20, nil)
	if _, ok := c.Get(Key{Version: 9, Query: "nope"}); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
}

func TestStoreFalseReturnsWithoutCaching(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{Version: 1, Query: "q"}
	calls := 0
	compute := func() (Computed, error) {
		calls++
		return Computed{Val: "x", Bytes: 8, Store: false}, nil
	}
	for i := 0; i < 2; i++ {
		v, st, err := c.Do(context.Background(), k, compute)
		if err != nil || v.(string) != "x" || st != Miss {
			t.Fatalf("Do %d: v=%v st=%v err=%v", i, v, st, err)
		}
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (Store=false must not cache)", calls)
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{Version: 1, Query: "q"}
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), k, func() (Computed, error) {
		return Computed{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("leader error: %v", err)
	}
	v, st, err := c.Do(context.Background(), k, func() (Computed, error) {
		return Computed{Val: "ok", Bytes: 8, Store: true}, nil
	})
	if err != nil || v.(string) != "ok" || st != Miss {
		t.Fatalf("after failed compute: v=%v st=%v err=%v", v, st, err)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard gets budget/numShards; use keys that all land wherever
	// they land and just assert the global invariant: bytes within budget
	// and the most recent keys still present.
	c := New(numShards*1024, nil) // minimum per-shard budget
	for i := 0; i < 200; i++ {
		mustDo(t, c, Key{Version: 1, Query: fmt.Sprintf("q%03d", i)}, i)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 200 entries against a minimal budget")
	}
	if st.Bytes > numShards*1024 {
		t.Fatalf("bytes %d exceed total budget %d", st.Bytes, numShards*1024)
	}
	if st.Entries >= 200 {
		t.Fatalf("entries %d, want fewer than inserted", st.Entries)
	}
}

func TestLRUOrderRespected(t *testing.T) {
	c := New(numShards*1024, nil)
	// Three entries sized so a shard holds ~2: touch the first, insert a
	// third; the untouched second should go first when pressure comes.
	// Force same shard by hammering one shard's budget with many inserts
	// of the same key prefix is not deterministic across seeds, so assert
	// the weaker but stable property: a just-touched entry survives an
	// insert that evicts something.
	k1 := Key{Version: 1, Query: "keep"}
	mustDo(t, c, k1, 1)
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(k1); !ok {
			t.Fatalf("touched entry evicted at i=%d", i)
		}
		mustDo(t, c, Key{Version: 1, Query: fmt.Sprintf("filler%03d", i)}, i)
	}
	// k1 was re-touched before every insert, so unless it shares a shard
	// with every filler (impossible across 16 shards), it survives.
	if _, ok := c.Get(k1); !ok {
		t.Fatal("most-recently-used entry was evicted")
	}
}

func TestOversizedEntryIsKeptNotThrashed(t *testing.T) {
	c := New(1, nil) // clamps to 1024 per shard
	k := Key{Version: 1, Query: "big"}
	_, _, err := c.Do(context.Background(), k, func() (Computed, error) {
		return Computed{Val: "huge", Bytes: 1 << 20, Store: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("oversized entry evicted itself; cache would thrash on every oversized query")
	}
}

func TestReplaceExistingKeyAccounting(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{Version: 1, Query: "q"}
	_, _, _ = c.Do(context.Background(), k, func() (Computed, error) {
		return Computed{Val: "a", Bytes: 100, Store: true}, nil
	})
	before := c.Stats()
	// Force a recompute-and-replace by going through a Store=true compute
	// for the same key after invalidating the flight path via direct
	// insert: simplest is Invalidate then Do again with a larger size.
	c.Invalidate(2)
	_, _, _ = c.Do(context.Background(), k, func() (Computed, error) {
		return Computed{Val: "bb", Bytes: 200, Store: true}, nil
	})
	after := c.Stats()
	if after.Entries != 1 {
		t.Fatalf("entries %d, want 1", after.Entries)
	}
	if after.Bytes <= 0 || after.Bytes == before.Bytes {
		t.Fatalf("bytes not re-accounted: before %d after %d", before.Bytes, after.Bytes)
	}
}

func TestInvalidateDropsOldVersions(t *testing.T) {
	c := New(1<<20, nil)
	mustDo(t, c, Key{Version: 1, Query: "a"}, 1)
	mustDo(t, c, Key{Version: 2, Query: "b"}, 2)
	mustDo(t, c, Key{Version: 3, Query: "c"}, 3)
	if n := c.Invalidate(3); n != 2 {
		t.Fatalf("Invalidate dropped %d, want 2", n)
	}
	if _, ok := c.Get(Key{Version: 1, Query: "a"}); ok {
		t.Fatal("v1 survived Invalidate(3)")
	}
	if _, ok := c.Get(Key{Version: 3, Query: "c"}); !ok {
		t.Fatal("v3 dropped by Invalidate(3)")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries %d, want 1", st.Entries)
	}
}

func TestCoalescingSharesOneComputation(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{Version: 1, Query: "q"}
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int64

	var wg sync.WaitGroup
	results := make([]Status, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, st, err := c.Do(context.Background(), k, func() (Computed, error) {
			computes.Add(1)
			close(started)
			<-release
			return Computed{Val: "answer", Bytes: 8, Store: true}, nil
		})
		if err != nil || v.(string) != "answer" {
			t.Errorf("leader: v=%v err=%v", v, err)
		}
		results[0] = st
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, st, err := c.Do(context.Background(), k, func() (Computed, error) {
				computes.Add(1)
				return Computed{Val: "answer", Bytes: 8, Store: true}, nil
			})
			if err != nil || v.(string) != "answer" {
				t.Errorf("waiter %d: v=%v err=%v", i, v, err)
			}
			results[i] = st
		}(i)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computations, want 1", n)
	}
	if results[0] != Miss {
		t.Fatalf("leader status %v, want Miss", results[0])
	}
	for i := 1; i < 8; i++ {
		if results[i] != Coalesced && results[i] != Hit {
			t.Fatalf("waiter %d status %v, want Coalesced or Hit", i, results[i])
		}
	}
}

func TestLeaderFailureDoesNotPoisonWaiters(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{Version: 1, Query: "q"}
	started := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("boom")

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), k, func() (Computed, error) {
			close(started)
			<-release
			return Computed{}, boom
		})
		leaderErr <- err
	}()
	<-started

	waiterDone := make(chan error, 1)
	go func() {
		v, _, err := c.Do(context.Background(), k, func() (Computed, error) {
			// The waiter re-loops after the leader's failure and becomes
			// the next leader; its own computation succeeds.
			return Computed{Val: "recovered", Bytes: 8, Store: true}, nil
		})
		if err == nil && v.(string) != "recovered" {
			err = fmt.Errorf("waiter got %v", v)
		}
		waiterDone <- err
	}()
	close(release)
	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Fatalf("leader error %v, want boom", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter: %v", err)
	}
}

func TestWaiterContextCancellation(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{Version: 1, Query: "q"}
	started := make(chan struct{})
	release := make(chan struct{})

	go func() {
		_, _, _ = c.Do(context.Background(), k, func() (Computed, error) {
			close(started)
			<-release
			return Computed{Val: "late", Bytes: 8, Store: true}, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, k, func() (Computed, error) {
			t.Error("canceled waiter must not compute")
			return Computed{}, nil
		})
		waiter <- err
	}()
	cancel()
	err := <-waiter
	var we *WaitError
	if !errors.As(err, &we) || !errors.Is(we.Err, context.Canceled) {
		t.Fatalf("waiter error %v, want WaitError{context.Canceled}", err)
	}
	if we.Error() == "" || errors.Unwrap(we) != context.Canceled {
		t.Fatalf("WaitError surface broken: %q unwrap=%v", we.Error(), errors.Unwrap(we))
	}

	// The flight is unaffected: release the leader, then the same key
	// serves the leader's value (a hit, or coalesced if the leader is
	// still mid-store).
	close(release)
	v, st, err := c.Do(context.Background(), k, func() (Computed, error) {
		return Computed{}, errors.New("must not run")
	})
	if err != nil || v.(string) != "late" || (st != Hit && st != Coalesced) {
		t.Fatalf("after cancellation: v=%v st=%v err=%v", v, st, err)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Miss: "miss", Hit: "hit", Coalesced: "coalesced"} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(64<<10, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Version: uint64(i % 3), Query: fmt.Sprintf("q%d", i%17)}
				v, _, err := c.Do(context.Background(), k, func() (Computed, error) {
					return Computed{Val: k, Bytes: 32, Store: true}, nil
				})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if v.(Key) != k {
					t.Errorf("goroutine %d: wrong value %v for %v", g, v, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats %+v: expected both hits and misses", st)
	}
}

func TestCarryForwardRekeysEntries(t *testing.T) {
	c := New(1<<20, nil)
	mustDo(t, c, Key{Version: 3, Query: "keep"}, "k")
	mustDo(t, c, Key{Version: 3, Query: "drop"}, "d")
	mustDo(t, c, Key{Version: 2, Query: "old"}, "o")
	n := c.CarryForward(3, 4, func(k Key, val any) (any, bool) {
		if k.Version != 3 {
			t.Errorf("rekey saw version %d, want 3", k.Version)
		}
		if k.Query == "drop" {
			return nil, false
		}
		return val.(string) + "'", true
	})
	if n != 1 {
		t.Fatalf("carried %d, want 1", n)
	}
	if v, ok := c.Get(Key{Version: 4, Query: "keep"}); !ok || v.(string) != "k'" {
		t.Fatalf("carried entry: %v %v", v, ok)
	}
	if _, ok := c.Get(Key{Version: 4, Query: "drop"}); ok {
		t.Fatal("declined entry was carried")
	}
	if _, ok := c.Get(Key{Version: 4, Query: "old"}); ok {
		t.Fatal("entry at a different source version was carried")
	}
	// The source entries stay behind (they age out naturally).
	if _, ok := c.Get(Key{Version: 3, Query: "keep"}); !ok {
		t.Fatal("source entry vanished")
	}
}

func TestCarryForwardNeverOverwrites(t *testing.T) {
	c := New(1<<20, nil)
	mustDo(t, c, Key{Version: 1, Query: "q"}, "stale")
	mustDo(t, c, Key{Version: 2, Query: "q"}, "fresh")
	n := c.CarryForward(1, 2, func(k Key, val any) (any, bool) { return val, true })
	if n != 0 {
		t.Fatalf("carried %d over an existing entry, want 0", n)
	}
	if v, _ := c.Get(Key{Version: 2, Query: "q"}); v.(string) != "fresh" {
		t.Fatalf("carry overwrote a fresher entry: %v", v)
	}
}

func TestCarryForwardSkipsActiveFlights(t *testing.T) {
	c := New(1<<20, nil)
	mustDo(t, c, Key{Version: 1, Query: "q"}, "stale")
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Do(context.Background(), Key{Version: 2, Query: "q"}, func() (Computed, error) {
			close(started)
			<-release
			return Computed{Val: "fresh", Bytes: 8, Store: true}, nil
		})
	}()
	<-started
	n := c.CarryForward(1, 2, func(k Key, val any) (any, bool) { return val, true })
	close(release)
	<-done
	if n != 0 {
		t.Fatalf("carried %d past an active flight, want 0", n)
	}
	if v, _ := c.Get(Key{Version: 2, Query: "q"}); v.(string) != "fresh" {
		t.Fatalf("flight's answer lost: %v", v)
	}
}

func TestCarryForwardDegenerateArgs(t *testing.T) {
	c := New(1<<20, nil)
	mustDo(t, c, Key{Version: 2, Query: "q"}, "v")
	if n := c.CarryForward(2, 2, func(Key, any) (any, bool) { return nil, true }); n != 0 {
		t.Fatalf("same-version carry: %d", n)
	}
	if n := c.CarryForward(3, 2, func(Key, any) (any, bool) { return nil, true }); n != 0 {
		t.Fatalf("backwards carry: %d", n)
	}
	if n := c.CarryForward(2, 3, nil); n != 0 {
		t.Fatalf("nil rekey carry: %d", n)
	}
}

func TestCarryForwardAccountsBytes(t *testing.T) {
	c := New(1<<20, nil)
	mustDo(t, c, Key{Version: 1, Query: "q"}, "v")
	before := c.Stats()
	c.CarryForward(1, 2, func(k Key, val any) (any, bool) { return val, true })
	after := c.Stats()
	if after.Entries != before.Entries+1 {
		t.Fatalf("entries %d -> %d, want +1", before.Entries, after.Entries)
	}
	// The carried entry is the same size as its source (same query, same
	// caller-reported byte count).
	if got, want := after.Bytes-before.Bytes, before.Bytes; got != want {
		t.Fatalf("carried entry charged %d bytes, want %d", got, want)
	}
}
