// Package cache is a sharded, byte-budgeted LRU answer cache with
// singleflight request coalescing, used by the hypo layer to memoise
// query answers across engine leases.
//
// # Keying and version expiry
//
// Entries are keyed by (Version, Query): the data version of the base
// EDB the answer was computed at, and an opaque canonical query string
// (the hypo layer folds the operation kind and any sorted hypothetical
// adds into it). Because the version is part of the key, a hot engine
// swap invalidates by construction: readers at the new version compute
// new keys and simply never look up the old entries, which age out of
// the LRU under byte pressure. A stale-version answer can therefore
// never be served to a reader keyed at a newer version.
//
// # Coalescing
//
// Do runs at most one computation per key at a time. Concurrent callers
// of the same key join the in-flight computation ("flight") and receive
// its value when it completes — N identical cache misses under load cost
// one evaluation. Errors are deliberately NOT shared: a leader that
// fails (its context was canceled, its yield callback aborted, the
// evaluation hit a budget) returns its error only to itself; waiters
// loop — re-checking the cache and possibly becoming the next leader —
// so one caller's abort never poisons the answer for the others. A
// waiter whose own context ends while waiting leaves the flight with its
// context's error and no side effects.
//
// # Budget
//
// The byte budget is split evenly across shards; each shard evicts its
// own least-recently-used entries when over its slice of the budget.
// Entry sizes are caller-reported (the cache stores opaque values) plus
// a fixed per-entry overhead and the key length.
package cache

import (
	"context"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"hypodatalog/internal/metrics"
)

// Key identifies one cached answer: the data version it was computed at
// and the canonical query string (kind, query text, sorted adds).
type Key struct {
	Version uint64
	Query   string
}

// entryOverhead approximates the bookkeeping bytes per entry (list
// links, map cell, header fields) charged on top of the caller-reported
// value size and the key length.
const entryOverhead = 96

// Status reports how a Do call was served.
type Status int

const (
	// Miss: this caller ran the computation (and stored the result).
	Miss Status = iota
	// Hit: the answer was already in the cache.
	Hit
	// Coalesced: another caller was already computing this key; this
	// caller waited and shares the result without evaluating anything.
	Coalesced
)

func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Computed is the result of one Do computation. Store=false returns the
// value to the caller (and any coalesced waiters) without caching it —
// the hypo layer uses it when the engine it leased turned out to be at a
// different data version than the key.
type Computed struct {
	Val   any
	Bytes int64
	Store bool
}

// WaitError reports that a Do caller's context ended while it was
// waiting on another caller's in-flight computation. Err is the context
// error (context.Canceled or context.DeadlineExceeded); the flight it
// was waiting on is unaffected.
type WaitError struct{ Err error }

func (e *WaitError) Error() string { return "cache: wait aborted: " + e.Err.Error() }
func (e *WaitError) Unwrap() error { return e.Err }

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Coalesced int64
	Evictions int64
	Bytes     int64
	Entries   int64
}

// Cache is the sharded LRU. Safe for concurrent use.
type Cache struct {
	shards []shard
	seed   maphash.Seed
	mets   *metrics.Set // metric set the cache reports into (never nil)

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	mets    *metrics.Set // the owning cache's set
	budget  int64
	bytes   int64
	entries map[Key]*entry
	flights map[Key]*flight
	// Intrusive LRU list: head.next is most recent, head.prev least.
	head entry
}

type entry struct {
	key        Key
	val        any
	bytes      int64
	prev, next *entry
}

// flight is one in-progress computation; done is closed once val/err are
// set. ok distinguishes a shareable success from a leader failure.
type flight struct {
	done chan struct{}
	val  any
	ok   bool
}

// numShards balances lock contention against budget fragmentation.
const numShards = 16

// New builds a cache with the given total byte budget, reporting into
// the given metric set (nil means metrics.Default). Budgets are clamped
// so every shard can hold at least one small entry.
func New(budgetBytes int64, mets *metrics.Set) *Cache {
	if mets == nil {
		mets = metrics.Default
	}
	per := budgetBytes / numShards
	if per < 1024 {
		per = 1024
	}
	c := &Cache{shards: make([]shard, numShards), seed: maphash.MakeSeed(), mets: mets}
	for i := range c.shards {
		s := &c.shards[i]
		s.mets = mets
		s.budget = per
		s.entries = make(map[Key]*entry)
		s.flights = make(map[Key]*flight)
		s.head.next = &s.head
		s.head.prev = &s.head
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	var v [8]byte
	for i := 0; i < 8; i++ {
		v[i] = byte(k.Version >> (8 * i))
	}
	_, _ = h.Write(v[:])
	_, _ = h.WriteString(k.Query)
	return &c.shards[h.Sum64()%numShards]
}

// Get looks the key up without computing anything, refreshing its LRU
// position on a hit.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.touch(e)
		c.hits.Add(1)
		c.mets.CacheHits.Inc()
		return e.val, true
	}
	return nil, false
}

// Do returns the cached value for k, or computes it. At most one compute
// runs per key at a time; concurrent callers coalesce onto it (see the
// package comment for the error-sharing policy). ctx bounds only the
// wait on another caller's flight — the compute callback is responsible
// for honouring its own context.
func (c *Cache) Do(ctx context.Context, k Key, compute func() (Computed, error)) (any, Status, error) {
	s := c.shardFor(k)
	for {
		s.mu.Lock()
		if e, ok := s.entries[k]; ok {
			s.touch(e)
			s.mu.Unlock()
			c.hits.Add(1)
			c.mets.CacheHits.Inc()
			return e.val, Hit, nil
		}
		if f, ok := s.flights[k]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.ok {
					c.coalesced.Add(1)
					c.mets.CacheCoalesced.Inc()
					return f.val, Coalesced, nil
				}
				// The leader failed; its error is its own. Loop: the next
				// iteration re-checks the cache and may become the leader.
				continue
			case <-ctx.Done():
				return nil, Miss, &WaitError{Err: ctx.Err()}
			}
		}
		f := &flight{done: make(chan struct{})}
		s.flights[k] = f
		s.mu.Unlock()

		res, err := compute()
		s.mu.Lock()
		delete(s.flights, k)
		if err == nil && res.Store {
			evicted := s.insert(c, k, res.Val, res.Bytes)
			c.evictions.Add(evicted)
			c.mets.CacheEvictions.Add(evicted)
		}
		f.val, f.ok = res.Val, err == nil
		close(f.done)
		s.mu.Unlock()
		c.misses.Add(1)
		c.mets.CacheMisses.Inc()
		return res.Val, Miss, err
	}
}

// insert stores (or replaces) an entry and evicts LRU entries until the
// shard is within budget, returning how many were evicted. Called with
// the shard lock held.
func (s *shard) insert(c *Cache, k Key, val any, bytes int64) int64 {
	size := bytes + int64(len(k.Query)) + entryOverhead
	if e, ok := s.entries[k]; ok {
		s.bytes += size - e.bytes
		s.mets.CacheBytes.Add(size - e.bytes)
		e.val, e.bytes = val, size
		s.touch(e)
	} else {
		e := &entry{key: k, val: val, bytes: size}
		s.entries[k] = e
		s.bytes += size
		s.mets.CacheBytes.Add(size)
		s.mets.CacheEntries.Add(1)
		s.pushFront(e)
	}
	var evicted int64
	for s.bytes > s.budget && s.head.prev != &s.head {
		old := s.head.prev
		// Never evict the entry just inserted, even if it alone exceeds
		// the shard budget — a cache that cannot hold its newest answer
		// would thrash on every oversized query.
		if old.key == k {
			break
		}
		s.remove(old)
		evicted++
	}
	return evicted
}

// CarryForward re-keys entries from version `from` to version `to` when
// the caller can prove the commit between them could not have changed
// their answer. rekey is consulted for every entry at version `from`: it
// receives the key and stored value and returns the value to store at
// {to, Query} plus whether to carry it at all (return the same value, or
// a copy with any embedded version field updated — the cache stores
// whatever it gets back). Entries rekey declines stay behind and age out
// as usual. A carried entry never overwrites a fresher one: if the
// target key already has an entry or an in-flight computation, the carry
// is skipped (the racing miss computed at the new version wins).
//
// rekey runs with a shard lock held and must not call back into the
// cache. Returns how many entries were carried.
func (c *Cache) CarryForward(from, to uint64, rekey func(k Key, val any) (any, bool)) int64 {
	if to <= from || rekey == nil {
		return 0
	}
	type carry struct {
		q     string
		val   any
		bytes int64
	}
	var carries []carry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if k.Version != from {
				continue
			}
			if val, ok := rekey(k, e.val); ok {
				// e.bytes includes the key length and overhead; strip them
				// back out so insert's own accounting applies once.
				carries = append(carries, carry{k.Query, val, e.bytes - int64(len(k.Query)) - entryOverhead})
			}
		}
		s.mu.Unlock()
	}
	var carried int64
	for _, cr := range carries {
		k := Key{Version: to, Query: cr.q}
		s := c.shardFor(k)
		s.mu.Lock()
		_, haveEntry := s.entries[k]
		_, haveFlight := s.flights[k]
		if !haveEntry && !haveFlight {
			evicted := s.insert(c, k, cr.val, cr.bytes)
			c.evictions.Add(evicted)
			c.mets.CacheEvictions.Add(evicted)
			carried++
		}
		s.mu.Unlock()
	}
	c.mets.CacheCarried.Add(carried)
	return carried
}

// Invalidate drops every entry whose version is older than minVersion,
// returning how many were dropped. The version-in-key scheme makes this
// optional (stale entries are never served); it exists so callers can
// reclaim budget eagerly after a burst of commits.
func (c *Cache) Invalidate(minVersion uint64) int64 {
	var dropped int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if k.Version < minVersion {
				s.remove(e)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	c.evictions.Add(dropped)
	c.mets.CacheEvictions.Add(dropped)
	return dropped
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}

// touch moves e to the front of the LRU list.
func (s *shard) touch(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	s.pushFront(e)
}

func (s *shard) pushFront(e *entry) {
	e.next = s.head.next
	e.prev = &s.head
	s.head.next.prev = e
	s.head.next = e
}

// remove unlinks e and releases its accounting. Called with the shard
// lock held.
func (s *shard) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	delete(s.entries, e.key)
	s.bytes -= e.bytes
	s.mets.CacheBytes.Add(-e.bytes)
	s.mets.CacheEntries.Add(-1)
}
