package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
)

// parseAndCheck verifies a generated program parses, validates, compiles,
// and has stratified negation.
func parseAndCheck(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		t.Fatalf("validate: %v\n%s", errs[0], src)
	}
	if err := strat.CheckNegation(prog); err != nil {
		t.Fatalf("negation: %v\n%s", err, src)
	}
	if _, err := ast.Compile(prog, symbols.NewTable()); err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return prog
}

func TestGeneratorsCompile(t *testing.T) {
	for _, n := range []int{1, 8, 100, 300} {
		parseAndCheck(t, ChainProgram(n))
		parseAndCheck(t, OrderLoopProgram(n))
		parseAndCheck(t, ParityProgram(n))
	}
	g := Digraph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {3, 4}}}
	parseAndCheck(t, HamiltonianProgram(g))
	parseAndCheck(t, KStrataProgram(6, 3))
}

func TestGeneratedRulesRespectPremiseLimit(t *testing.T) {
	for _, src := range []string{ChainProgram(300), OrderLoopProgram(300)} {
		prog := parseAndCheck(t, src)
		for _, r := range prog.Rules {
			if len(r.Body) > 64 {
				t.Fatalf("rule with %d premises: %s", len(r.Body), r.String())
			}
		}
	}
}

func TestKStrataProgramShape(t *testing.T) {
	prog := parseAndCheck(t, KStrataProgram(5, 2))
	s, err := strat.Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStrata != 5 {
		t.Errorf("strata = %d, want 5", s.NumStrata)
	}
}

func TestRandomDigraphEdgeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomDigraph(rng, 10, 0.5)
	if g.N != 10 {
		t.Fatal("wrong N")
	}
	for _, e := range g.Edges {
		if e[0] == e[1] || e[0] < 0 || e[0] >= 10 || e[1] < 0 || e[1] >= 10 {
			t.Fatalf("bad edge %v", e)
		}
	}
	// p=0 and p=1 extremes.
	if len(RandomDigraph(rng, 6, 0).Edges) != 0 {
		t.Error("p=0 produced edges")
	}
	if len(RandomDigraph(rng, 6, 1).Edges) != 30 {
		t.Error("p=1 missed edges")
	}
}

func TestPlantedHamiltonianAlwaysHasPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := PlantedHamiltonian(rng, n, rng.Float64()*0.3)
		return HasHamiltonianPath(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHasHamiltonianPathKnownCases(t *testing.T) {
	cases := []struct {
		g    Digraph
		want bool
	}{
		{Digraph{N: 0}, false},
		{Digraph{N: 1}, true},
		{Digraph{N: 2}, false},
		{Digraph{N: 2, Edges: [][2]int{{1, 0}}}, true},
		{Digraph{N: 3, Edges: [][2]int{{0, 1}, {0, 2}}}, false},
		{Digraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}, true},
		{Digraph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}, true},
	}
	for i, tc := range cases {
		if got := HasHamiltonianPath(tc.g); got != tc.want {
			t.Errorf("case %d: got %v", i, got)
		}
	}
}

func TestPlantedNoDuplicateEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PlantedHamiltonian(rng, 8, 0.5)
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestRandomStratifiedProgramAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := RandomStratifiedProgram(rng, DefaultFuzz())
		parseAndCheck(t, src)
	}
}

func TestParityProgramContainsPaperRules(t *testing.T) {
	src := ParityProgram(2)
	for _, want := range []string{
		"even :- selectx(X), odd[add: copied(X)].",
		"even :- not selectx(X).",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
}
