package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
)

// parseAndCheck verifies a generated program parses, validates, compiles,
// and has stratified negation.
func parseAndCheck(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		t.Fatalf("validate: %v\n%s", errs[0], src)
	}
	if err := strat.CheckNegation(prog); err != nil {
		t.Fatalf("negation: %v\n%s", err, src)
	}
	if _, err := ast.Compile(prog, symbols.NewTable()); err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return prog
}

func TestGeneratorsCompile(t *testing.T) {
	for _, n := range []int{1, 8, 100, 300} {
		parseAndCheck(t, ChainProgram(n))
		parseAndCheck(t, OrderLoopProgram(n))
		parseAndCheck(t, ParityProgram(n))
	}
	g := Digraph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {3, 4}}}
	parseAndCheck(t, HamiltonianProgram(g))
	parseAndCheck(t, KStrataProgram(6, 3))
}

func TestGeneratedRulesRespectPremiseLimit(t *testing.T) {
	for _, src := range []string{ChainProgram(300), OrderLoopProgram(300)} {
		prog := parseAndCheck(t, src)
		for _, r := range prog.Rules {
			if len(r.Body) > 64 {
				t.Fatalf("rule with %d premises: %s", len(r.Body), r.String())
			}
		}
	}
}

func TestKStrataProgramShape(t *testing.T) {
	prog := parseAndCheck(t, KStrataProgram(5, 2))
	s, err := strat.Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStrata != 5 {
		t.Errorf("strata = %d, want 5", s.NumStrata)
	}
}

func TestRandomDigraphEdgeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomDigraph(rng, 10, 0.5)
	if g.N != 10 {
		t.Fatal("wrong N")
	}
	for _, e := range g.Edges {
		if e[0] == e[1] || e[0] < 0 || e[0] >= 10 || e[1] < 0 || e[1] >= 10 {
			t.Fatalf("bad edge %v", e)
		}
	}
	// p=0 and p=1 extremes.
	if len(RandomDigraph(rng, 6, 0).Edges) != 0 {
		t.Error("p=0 produced edges")
	}
	if len(RandomDigraph(rng, 6, 1).Edges) != 30 {
		t.Error("p=1 missed edges")
	}
}

func TestPlantedHamiltonianAlwaysHasPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := PlantedHamiltonian(rng, n, rng.Float64()*0.3)
		return HasHamiltonianPath(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHasHamiltonianPathKnownCases(t *testing.T) {
	cases := []struct {
		g    Digraph
		want bool
	}{
		{Digraph{N: 0}, false},
		{Digraph{N: 1}, true},
		{Digraph{N: 2}, false},
		{Digraph{N: 2, Edges: [][2]int{{1, 0}}}, true},
		{Digraph{N: 3, Edges: [][2]int{{0, 1}, {0, 2}}}, false},
		{Digraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}, true},
		{Digraph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}, true},
	}
	for i, tc := range cases {
		if got := HasHamiltonianPath(tc.g); got != tc.want {
			t.Errorf("case %d: got %v", i, got)
		}
	}
}

func TestPlantedNoDuplicateEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PlantedHamiltonian(rng, 8, 0.5)
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestRandomStratifiedProgramAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := RandomStratifiedProgram(rng, DefaultFuzz())
		parseAndCheck(t, src)
	}
}

func TestParityProgramContainsPaperRules(t *testing.T) {
	src := ParityProgram(2)
	for _, want := range []string{
		"even :- selectx(X), odd[add: copied(X)].",
		"even :- not selectx(X).",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestMixedReachabilityShape checks the live-churn generator: the seed
// program compiles, the op stream has the declared read/write split,
// every write is a genuine toggle (assert only when absent, retract
// only when present, starting from the spine-free empty set), and all
// mutated constants appear as node facts (so they are in dom(R, DB)).
func TestMixedReachabilityShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, ops = 6, 80
	w := MixedReachability(rng, n, ops, 0.5)
	parseAndCheck(t, w.Source)
	if w.Writes+w.Reads != ops || len(w.Ops) != ops {
		t.Fatalf("ops split %d+%d over %d entries, want %d total", w.Writes, w.Reads, len(w.Ops), ops)
	}
	if w.Writes == 0 || w.Reads == 0 {
		t.Fatalf("degenerate split: %d writes, %d reads", w.Writes, w.Reads)
	}
	present := map[string]bool{}
	for i, op := range w.Ops {
		switch {
		case op.Query != "":
			if len(op.Assert)+len(op.Retract) != 0 {
				t.Fatalf("op %d mixes query and mutation", i)
			}
			if !strings.HasPrefix(op.Query, "reach(") {
				t.Fatalf("op %d: unexpected query %q", i, op.Query)
			}
		case len(op.Assert) == 1:
			if present[op.Assert[0]] {
				t.Fatalf("op %d asserts present edge %s", i, op.Assert[0])
			}
			present[op.Assert[0]] = true
		case len(op.Retract) == 1:
			if !present[op.Retract[0]] {
				t.Fatalf("op %d retracts absent edge %s", i, op.Retract[0])
			}
			delete(present, op.Retract[0])
		default:
			t.Fatalf("op %d is neither read nor single-edge toggle: %+v", i, op)
		}
	}
	// The spine never churns, so reach(v0, v{n-1}) stays derivable.
	for _, op := range w.Ops {
		for _, r := range op.Retract {
			for i := 0; i+1 < n; i++ {
				if r == fmt.Sprintf("edge(v%d, v%d)", i, i+1) {
					t.Fatalf("spine edge retracted: %s", r)
				}
			}
		}
	}
}
