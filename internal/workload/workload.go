// Package workload generates the programs and databases used by the test
// suite and the experiment harness: the paper's Examples 4-8 parameterised
// by size, random digraphs (optionally with a planted Hamiltonian path),
// synthetic k-strata rulebases for the Lemma 1 experiment, and random
// stratified programs for differential fuzzing.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// ChainProgram builds Example 4: a chain of hypothetical implications
//
//	a1 :- a2[add: b1].   ...   an :- a{n+1}[add: bn].   a{n+1} :- d.
//	d :- b1, ..., bn.
//
// so a1 holds iff all n hypotheses accumulate.
func ChainProgram(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "a%d :- a%d[add: b%d].\n", i, i+1, i)
	}
	fmt.Fprintf(&b, "a%d :- d.\n", n+1)
	// d holds iff all b1..bn accumulated, written as a chain so no rule
	// body exceeds the engines' 64-premise limit.
	b.WriteString("d :- d1.\n")
	for i := 1; i <= n; i++ {
		if i < n {
			fmt.Fprintf(&b, "d%d :- b%d, d%d.\n", i, i, i+1)
		} else {
			fmt.Fprintf(&b, "d%d :- b%d.\n", i, i)
		}
	}
	return b.String()
}

// OrderLoopProgram builds Example 5: iterate over a stored linear order of
// n elements, hypothetically adding marker(x) for each, then check that
// every marker is present.
func OrderLoopProgram(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "first(e1).\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "next(e%d, e%d).\n", i, i+1)
	}
	fmt.Fprintf(&b, "last(e%d).\n", n)
	b.WriteString("a :- first(X), ap(X)[add: marker(X)].\n")
	b.WriteString("ap(X) :- next(X, Y), ap(Y)[add: marker(Y)].\n")
	b.WriteString("ap(X) :- last(X), d.\n")
	// d holds iff every marker(e_i) accumulated, as a chain so no rule
	// body exceeds the engines' 64-premise limit.
	b.WriteString("d :- d1.\n")
	for i := 1; i <= n; i++ {
		if i < n {
			fmt.Fprintf(&b, "d%d :- marker(e%d), d%d.\n", i, i, i+1)
		} else {
			fmt.Fprintf(&b, "d%d :- marker(e%d).\n", i, i)
		}
	}
	return b.String()
}

// ParityProgram builds Example 6 over a unary relation item/1 with n
// elements: even holds iff n is even. The copying order is irrelevant
// (order independence, section 6.2.3).
func ParityProgram(n int) string {
	var b strings.Builder
	b.WriteString("even :- selectx(X), odd[add: copied(X)].\n")
	b.WriteString("odd :- selectx(X), even[add: copied(X)].\n")
	b.WriteString("even :- not selectx(X).\n")
	b.WriteString("selectx(X) :- item(X), not copied(X).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "item(x%d).\n", i)
	}
	return b.String()
}

// Digraph is a directed graph over nodes 0..N-1.
type Digraph struct {
	N     int
	Edges [][2]int
}

// HamiltonianProgram builds Examples 7 and 8 for a digraph: yes holds iff
// the graph has a directed Hamiltonian path, and no holds iff it does not.
func HamiltonianProgram(g Digraph) string {
	var b strings.Builder
	b.WriteString("yes :- node(X), path(X)[add: pnode(X)].\n")
	b.WriteString("path(X) :- selecty(Y), edge(X, Y), path(Y)[add: pnode(Y)].\n")
	b.WriteString("path(X) :- not selecty(Y).\n")
	b.WriteString("selecty(Y) :- node(Y), not pnode(Y).\n")
	b.WriteString("no :- not yes.\n")
	for i := 0; i < g.N; i++ {
		fmt.Fprintf(&b, "node(v%d).\n", i)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "edge(v%d, v%d).\n", e[0], e[1])
	}
	return b.String()
}

// RandomDigraph samples a digraph on n nodes where each ordered pair
// (i, j), i != j, is an edge with probability p.
func RandomDigraph(rng *rand.Rand, n int, p float64) Digraph {
	g := Digraph{N: n}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return g
}

// PlantedHamiltonian samples a digraph on n nodes that contains a
// Hamiltonian path by construction (a random permutation chain) plus
// random extra edges with probability p.
func PlantedHamiltonian(rng *rand.Rand, n int, p float64) Digraph {
	perm := rng.Perm(n)
	g := Digraph{N: n}
	have := map[[2]int]bool{}
	for i := 0; i+1 < n; i++ {
		e := [2]int{perm[i], perm[i+1]}
		g.Edges = append(g.Edges, e)
		have[e] = true
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			e := [2]int{i, j}
			if i != j && !have[e] && rng.Float64() < p {
				g.Edges = append(g.Edges, e)
				have[e] = true
			}
		}
	}
	return g
}

// HasHamiltonianPath decides by exhaustive search whether the digraph has
// a directed Hamiltonian path — the brute-force baseline for Example 7.
func HasHamiltonianPath(g Digraph) bool {
	if g.N == 0 {
		return false
	}
	adj := make([][]bool, g.N)
	for i := range adj {
		adj[i] = make([]bool, g.N)
	}
	for _, e := range g.Edges {
		adj[e[0]][e[1]] = true
	}
	visited := make([]bool, g.N)
	var dfs func(at, count int) bool
	dfs = func(at, count int) bool {
		if count == g.N {
			return true
		}
		for next := 0; next < g.N; next++ {
			if !visited[next] && adj[at][next] {
				visited[next] = true
				if dfs(next, count+1) {
					return true
				}
				visited[next] = false
			}
		}
		return false
	}
	for start := 0; start < g.N; start++ {
		visited[start] = true
		if dfs(start, 1) {
			return true
		}
		visited[start] = false
	}
	return false
}

// KStrataProgram builds a linearly stratified rulebase shaped like
// Example 9, with k strata and `width` predicates per stratum:
//
//	a<i> :- b<i>, a<i>[add: c<i>]       (Σ_i: linear hypothetical recursion)
//	a<i> :- d<i>, not a<i-1>.           (Δ_i boundary: negation)
//
// plus width-1 auxiliary chained predicates per stratum to scale the
// rulebase size for the Lemma 1 experiment.
func KStrataProgram(k, width int) string {
	var b strings.Builder
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&b, "a%d :- b%d, a%d[add: c%d].\n", i, i, i, i)
		if i == 1 {
			fmt.Fprintf(&b, "a%d :- d%d.\n", i, i)
		} else {
			fmt.Fprintf(&b, "a%d :- d%d, not a%d.\n", i, i, i-1)
		}
		for w := 1; w < width; w++ {
			fmt.Fprintf(&b, "aux%d_%d :- a%d.\n", i, w, i)
		}
	}
	return b.String()
}

// TokenGameProgram builds a deletion workload: a token sits on node
// `start` of a digraph and may move along edges — each move adds the
// token at the new node and deletes it at the old one. goal holds iff the
// token can reach `target`. Moving around cycles revisits database
// states, exercising the engines' non-monotone termination machinery;
// the answer equals plain graph reachability (see Reachable).
func TokenGameProgram(g Digraph, start, target int) string {
	var b strings.Builder
	b.WriteString("goal :- token(T), targetnode(T).\n")
	b.WriteString("goal :- move(X, Y), token(X), goal[add: token(Y)][del: token(X)].\n")
	fmt.Fprintf(&b, "token(v%d).\n", start)
	fmt.Fprintf(&b, "targetnode(v%d).\n", target)
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "move(v%d, v%d).\n", e[0], e[1])
	}
	for i := 0; i < g.N; i++ {
		fmt.Fprintf(&b, "nodetag(v%d).\n", i)
	}
	return b.String()
}

// Reachable decides whether target is reachable from start in the
// digraph (including start == target) — the baseline for TokenGameProgram.
func Reachable(g Digraph, start, target int) bool {
	if start == target {
		return true
	}
	adj := map[int][]int{}
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	seen := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, next := range adj[at] {
			if next == target {
				return true
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// MixedOp is one step of a live read/write workload against a mutable
// EDB: a query when Query is non-empty, otherwise a mutation batch.
type MixedOp struct {
	Query   string
	Assert  []string
	Retract []string
}

// MixedWorkload couples a seed program with an operation stream for
// exercising an engine whose base facts change at runtime.
type MixedWorkload struct {
	Source string
	Ops    []MixedOp
	Writes int
	Reads  int
}

// MixedReachability builds a graph-reachability workload whose edge set
// churns. The seed program is the transitive closure of edge/2 over n
// nodes with a spine v0 -> ... -> v{n-1}; writes toggle random
// non-spine edges (assert when absent, retract when present — the
// generator tracks the set, so every batch actually changes the
// database), and reads alternate between the ground query
// reach(v0, v{n-1}) (always true: the spine never churns) and
// enumerating reach(v_i, Y). node/1 facts anchor every constant in
// dom(R, DB), so all mutations pass live-store domain validation.
func MixedReachability(rng *rand.Rand, n, ops int, writeFrac float64) MixedWorkload {
	var b strings.Builder
	b.WriteString("reach(X, Y) :- edge(X, Y).\n")
	b.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "node(v%d).\n", i)
	}
	spine := map[[2]int]bool{}
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "edge(v%d, v%d).\n", i, i+1)
		spine[[2]int{i, i + 1}] = true
	}
	w := MixedWorkload{Source: b.String()}

	present := map[[2]int]bool{}
	edge := func(e [2]int) string { return fmt.Sprintf("edge(v%d, v%d)", e[0], e[1]) }
	for k := 0; k < ops; k++ {
		if rng.Float64() < writeFrac {
			// Toggle a random non-spine edge.
			var e [2]int
			for {
				e = [2]int{rng.Intn(n), rng.Intn(n)}
				if e[0] != e[1] && !spine[e] {
					break
				}
			}
			op := MixedOp{}
			if present[e] {
				op.Retract = []string{edge(e)}
				delete(present, e)
			} else {
				op.Assert = []string{edge(e)}
				present[e] = true
			}
			w.Ops = append(w.Ops, op)
			w.Writes++
		} else {
			q := fmt.Sprintf("reach(v0, v%d)", n-1)
			if k%2 == 1 {
				q = fmt.Sprintf("reach(v%d, Y)", rng.Intn(n))
			}
			w.Ops = append(w.Ops, MixedOp{Query: q})
			w.Reads++
		}
	}
	return w
}

// FuzzOptions bound the size of RandomStratifiedProgram outputs.
type FuzzOptions struct {
	MaxLevels    int // predicate levels (negation goes strictly down)
	PredsPerLvl  int
	MaxRulesPer  int
	MaxBodyLen   int
	DomSize      int
	EDBFillProb  float64
	HypAddArity1 bool // adds restricted to a single unary predicate pool
	// DelProb makes hypothetical premises delete a pool atom (instead of
	// or in addition to adding one) with this probability.
	DelProb float64
	// BinaryChainProb emits, with this probability, a binary edge/2
	// relation plus a linearly recursive closure tc/2 over it, and lets
	// rule bodies consult tc. Point queries over binary recursion are
	// the shape the demand-driven (magic-set) rewrite transforms most
	// aggressively, so this biases the differential corpus toward it.
	BinaryChainProb float64
}

// DefaultFuzz are bounds small enough for the naive reference interpreter.
func DefaultFuzz() FuzzOptions {
	return FuzzOptions{
		MaxLevels:   3,
		PredsPerLvl: 2,
		MaxRulesPer: 2,
		MaxBodyLen:  3,
		DomSize:     3,
		EDBFillProb: 0.4,

		BinaryChainProb: 0.5,
	}
}

// RandomStratifiedProgram generates a random program with hypothetical
// premises and stratified negation:
//
//   - predicates are arranged in levels; negated premises may only mention
//     strictly lower levels (so negation is stratified by construction);
//     plain and hypothetical premises mention the same or lower levels;
//   - hypothetical adds draw from a dedicated pool pool/1, which keeps the
//     reachable state space small enough for the reference interpreter;
//   - extensional predicates e0../1 and the pool are filled randomly.
//
// The generated source parses, validates and passes strat.CheckNegation.
func RandomStratifiedProgram(rng *rand.Rand, o FuzzOptions) string {
	var b strings.Builder
	domConst := func() string { return fmt.Sprintf("c%d", rng.Intn(o.DomSize)) }

	// Extensional layer: two unary relations plus the hypothetical pool.
	for e := 0; e < 2; e++ {
		for d := 0; d < o.DomSize; d++ {
			if rng.Float64() < o.EDBFillProb {
				fmt.Fprintf(&b, "e%d(c%d).\n", e, d)
			}
		}
	}
	if rng.Float64() < 0.3 {
		fmt.Fprintf(&b, "pool(%s).\n", domConst())
	}

	// Optional binary layer: a random edge relation with its transitive
	// closure, consulted from the unary rules below so demand for tc
	// point queries flows out of every stratum.
	binary := rng.Float64() < o.BinaryChainProb
	if binary {
		for s := 0; s < o.DomSize; s++ {
			for d := 0; d < o.DomSize; d++ {
				if rng.Float64() < o.EDBFillProb {
					fmt.Fprintf(&b, "edge(c%d, c%d).\n", s, d)
				}
			}
		}
		b.WriteString("tc(X, Y) :- edge(X, Y).\n")
		b.WriteString("tc(X, Y) :- edge(X, Z), tc(Z, Y).\n")
	}

	pred := func(level, i int) string { return fmt.Sprintf("p%d_%d", level, i) }
	varNames := []string{"X", "Y"}

	atom := func(name string, arity int, groundProb float64) string {
		if arity == 0 {
			return name
		}
		args := make([]string, arity)
		for i := range args {
			if rng.Float64() < groundProb {
				args[i] = domConst()
			} else {
				args[i] = varNames[rng.Intn(len(varNames))]
			}
		}
		return name + "(" + strings.Join(args, ", ") + ")"
	}

	// Each intensional predicate is unary; bodies mix EDB atoms, same-or-
	// lower-level IDB atoms, negated strictly-lower atoms, and hypothetical
	// premises adding pool atoms.
	for lvl := 0; lvl < o.MaxLevels; lvl++ {
		for pi := 0; pi < o.PredsPerLvl; pi++ {
			name := pred(lvl, pi)
			nRules := 1 + rng.Intn(o.MaxRulesPer)
			for r := 0; r < nRules; r++ {
				head := atom(name, 1, 0.2)
				n := 1 + rng.Intn(o.MaxBodyLen)
				var body []string
				for j := 0; j < n; j++ {
					if binary && rng.Intn(6) == 0 {
						body = append(body, atom("tc", 2, 0.4))
						continue
					}
					switch rng.Intn(5) {
					case 0: // EDB atom
						body = append(body, atom(fmt.Sprintf("e%d", rng.Intn(2)), 1, 0.2))
					case 1: // same-or-lower IDB atom
						l := rng.Intn(lvl + 1)
						body = append(body, atom(pred(l, rng.Intn(o.PredsPerLvl)), 1, 0.2))
					case 2: // negated strictly-lower atom (or EDB at level 0)
						if lvl == 0 {
							body = append(body, "not "+atom(fmt.Sprintf("e%d", rng.Intn(2)), 1, 0.3))
						} else {
							body = append(body, "not "+atom(pred(rng.Intn(lvl), rng.Intn(o.PredsPerLvl)), 1, 0.3))
						}
					case 3: // hypothetical premise adding/deleting pool atoms
						l := rng.Intn(lvl + 1)
						goal := atom(pred(l, rng.Intn(o.PredsPerLvl)), 1, 0.2)
						mod := fmt.Sprintf("[add: %s]", atom("pool", 1, 0.3))
						if o.DelProb > 0 && rng.Float64() < o.DelProb {
							if rng.Intn(2) == 0 {
								mod = fmt.Sprintf("[del: %s]", atom("pool", 1, 0.3))
							} else {
								mod += fmt.Sprintf("[del: %s]", atom("pool", 1, 0.3))
							}
						}
						body = append(body, goal+mod)
					case 4: // pool membership
						body = append(body, atom("pool", 1, 0.3))
					}
				}
				fmt.Fprintf(&b, "%s :- %s.\n", head, strings.Join(body, ", "))
			}
		}
	}
	// Anchor the domain so every ci exists even in sparse programs.
	for d := 0; d < o.DomSize; d++ {
		fmt.Fprintf(&b, "domc(c%d).\n", d)
	}
	return b.String()
}
