package bottomup

import (
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/symbols"
)

// build compiles a source program and creates a prover over ALL its rules
// (a single Δ part), with an optional oracle.
func build(t *testing.T, src string, oracle Oracle) (*Prover, *ast.CProgram, *facts.DB) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	for _, f := range cp.Facts {
		base.Insert(in.InternGround(f))
	}
	rules := make([]int, len(cp.Rules))
	for i := range rules {
		rules[i] = i
	}
	p, err := New(cp, base, ref.Domain(cp), rules, oracle)
	if err != nil {
		t.Fatal(err)
	}
	return p, cp, base
}

func holds(t *testing.T, p *Prover, cp *ast.CProgram, base *facts.DB, atom string) bool {
	t.Helper()
	a, err := parser.ParseAtom(atom)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := cp.Syms.LookupPred(a.Pred, a.Arity())
	if !ok {
		return false
	}
	args := make([]symbols.Const, a.Arity())
	for i, tm := range a.Args {
		c, ok := cp.Syms.LookupConst(tm.Name)
		if !ok {
			return false
		}
		args[i] = c
	}
	got, err := p.Holds(base.Interner().ID(pr, args), facts.NewState(base))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestHornFixpoint(t *testing.T) {
	p, cp, base := build(t, `
		edge(a, b). edge(b, c).
		tc(X, Y) :- edge(X, Y).
		tc(X, Y) :- tc(X, Z), edge(Z, Y).
	`, nil)
	if !holds(t, p, cp, base, "tc(a, c)") {
		t.Error("tc(a,c) false")
	}
	if holds(t, p, cp, base, "tc(c, a)") {
		t.Error("tc(c,a) true")
	}
}

func TestStratifiedNegationLevels(t *testing.T) {
	p, cp, base := build(t, `
		node(a). node(b).
		edge(a, b).
		reach(a).
		reach(Y) :- reach(X), edge(X, Y).
		unreach(X) :- node(X), not reach(X).
		lonely :- not reach(X).
	`, nil)
	if holds(t, p, cp, base, "unreach(a)") || holds(t, p, cp, base, "unreach(b)") {
		t.Error("unreach wrong")
	}
	if holds(t, p, cp, base, "lonely") {
		t.Error("lonely should fail (reach is non-empty)")
	}
	if len(p.levels) < 2 {
		t.Errorf("negation levels = %d, want >= 2", len(p.levels))
	}
}

func TestRecursionThroughNegationRejected(t *testing.T) {
	prog, err := parser.Parse("a :- not b.\nb :- not a.\n")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	if _, err := New(cp, base, nil, []int{0, 1}, nil); err == nil {
		t.Error("expected rejection")
	}
}

func TestOracleCalls(t *testing.T) {
	// q is "defined below" (not in the Δ part's rule set); the oracle
	// answers it, also under hypothetical additions.
	src := `
		p(a).
		r(X) :- p(X), q(X).
		w(X) :- s(X)[add: h(X)].
	`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	// Mark q and s as intensional (they would be defined in lower strata).
	qPred := cp.Syms.Pred("q", 1)
	sPred := cp.Syms.Pred("s", 1)
	hPred := cp.Syms.Pred("h", 1)
	cp.IDB[qPred] = true
	cp.IDB[sPred] = true
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	for _, f := range cp.Facts {
		base.Insert(in.InternGround(f))
	}
	oracleCalls := 0
	oracle := func(goal facts.AtomID, st facts.State) (bool, error) {
		oracleCalls++
		switch in.Pred(goal) {
		case qPred:
			return true, nil
		case sPred:
			// s(X) holds iff h(X) was hypothetically added.
			h := in.ID(hPred, in.Args(goal))
			return st.Has(h), nil
		}
		return false, nil
	}
	p, err := New(cp, base, ref.Domain(cp), []int{0, 1}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !holds(t, p, cp, base, "r(a)") {
		t.Error("r(a) false")
	}
	if !holds(t, p, cp, base, "w(a)") {
		t.Error("w(a) false: hypothetical oracle call failed")
	}
	if oracleCalls == 0 {
		t.Error("oracle never called")
	}
}

func TestMissingOracleIsError(t *testing.T) {
	prog, err := parser.Parse("r(X) :- p(X), q(X).\np(a).")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	cp.IDB[cp.Syms.Pred("q", 1)] = true // q intensional, no oracle
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	for _, f := range cp.Facts {
		base.Insert(in.InternGround(f))
	}
	p, err := New(cp, base, ref.Domain(cp), []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rPred, _ := cp.Syms.LookupPred("r", 1)
	aConst, _ := cp.Syms.LookupConst("a")
	_, err = p.Holds(in.ID(rPred, []symbols.Const{aConst}), facts.NewState(base))
	if err == nil {
		t.Error("expected missing-oracle error")
	}
}

func TestMaterialisationCachePerState(t *testing.T) {
	p, cp, base := build(t, "q(X) :- w(X).\n", nil)
	wPred := cp.Syms.Pred("w", 1)
	aConst := cp.Syms.Const("a")
	in := base.Interner()
	st := facts.NewState(base)
	ext := st.Add(in.ID(wPred, []symbols.Const{aConst}))

	qPred, _ := cp.Syms.LookupPred("q", 1)
	qa := in.ID(qPred, []symbols.Const{aConst})
	got1, err := p.Holds(qa, st)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := p.Holds(qa, ext)
	if err != nil {
		t.Fatal(err)
	}
	if got1 || !got2 {
		t.Errorf("state separation wrong: base=%v ext=%v", got1, got2)
	}
	if len(p.cache) != 2 {
		t.Errorf("cache entries = %d, want 2", len(p.cache))
	}
}

func TestNegationLocalVarInDelta(t *testing.T) {
	p, cp, base := build(t, "empty :- not q(X).\nd(a).\n", nil)
	if !holds(t, p, cp, base, "empty") {
		t.Error("empty should hold with no q facts")
	}
	p2, cp2, base2 := build(t, "empty :- not q(X).\nq(a).\n", nil)
	if holds(t, p2, cp2, base2, "empty") {
		t.Error("empty should fail when q(a) exists")
	}
}
