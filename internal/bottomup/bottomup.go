// Package bottomup implements the paper's PROVE_Δi procedure (section
// 5.2.2): bottom-up materialisation of a Δ part — a set of Horn rules with
// stratified negation, possibly containing hypothetical premises whose
// predicates are defined in lower strata.
//
// Following the paper, the Δ rules are sub-partitioned into negation
// strata Δ_i1, ..., Δ_im; LFP applies each sub-stratum's rules to a
// fixpoint in order, building the perfect model of Δ_i and the state.
// TEST⁰ routes hypothetical premises and lower-strata predicates to an
// oracle (PROVE_Σ(i-1) in the cascade). Materialisations are cached per
// hypothetical state.
package bottomup

import (
	"context"
	"fmt"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// Oracle answers goals whose predicates are defined below this Δ part —
// in the cascade, PROVE_Σ(i-1).Ask. The state passed may extend the
// current one with hypothetical additions.
type Oracle func(goal facts.AtomID, st facts.State) (bool, error)

// Prover materialises the perfect model of one Δ part per state.
// A Prover is not safe for concurrent use.
type Prover struct {
	prog   *ast.CProgram // full program (for rule storage and symbols)
	in     *facts.Interner
	base   *facts.DB
	dom    []symbols.Const
	oracle Oracle

	rules    []int                 // rule indexes forming this Δ part
	own      map[symbols.Pred]bool // predicates defined by those rules
	levels   [][]int               // rules grouped by negation sub-stratum
	cache    map[string]*matEntry  // state key -> materialised model
	maxCache int

	// ctx is the cancellation source of the in-flight *Ctx call, or nil
	// when the call is not cancellable; the join loop polls it every
	// ctxCheckInterval steps and the fixpoint loop once per pass.
	ctx   context.Context
	steps int64

	// mem is the shared footprint tracker of the enclosing cascade (via
	// SetMem); nil disables accounting and the budget. Derived atoms and
	// cached materialisations are charged into it as they grow, and the
	// join loop polls it at the same points as the context.
	mem *topdown.MemTracker
}

// ctxCheckInterval is how many join steps pass between context polls.
const ctxCheckInterval = 1024

// matAtomBytes approximates the heap cost of one derived atom in a
// materialised model; matEntryOverhead the fixed cost of one cache entry
// beyond its atoms (key string, map slot, matEntry struct).
const (
	matAtomBytes     = 16
	matEntryOverhead = 96
)

// SetMem installs the cascade's shared footprint tracker.
func (p *Prover) SetMem(t *topdown.MemTracker) { p.mem = t }

type atomSet map[facts.AtomID]struct{}

func (s atomSet) has(id facts.AtomID) bool { _, ok := s[id]; return ok }

// matEntry is one cached materialisation: the perfect model of the Δ part
// over the state with the given hypothetical delta. The delta is kept so
// incremental maintenance (incremental.go) can reconstruct the state a
// cached model belongs to and update it in place on a base-fact commit.
type matEntry struct {
	delta facts.Delta
	atoms atomSet
}

// New builds a Δ prover over a subset of the program's rules. oracle may
// be nil when the Δ part is self-contained (stratum 1 with no
// hypothetical premises); it is then an error for evaluation to need it.
func New(cp *ast.CProgram, base *facts.DB, dom []symbols.Const, rules []int, oracle Oracle) (*Prover, error) {
	p := &Prover{
		prog:     cp,
		in:       base.Interner(),
		base:     base,
		dom:      dom,
		oracle:   oracle,
		rules:    rules,
		own:      make(map[symbols.Pred]bool),
		cache:    make(map[string]*matEntry),
		maxCache: 1 << 16,
	}
	for _, ri := range rules {
		p.own[cp.Rules[ri].Head.Pred] = true
	}
	lv, err := p.negationLevels()
	if err != nil {
		return nil, err
	}
	p.levels = lv
	return p, nil
}

// negationLevels sub-partitions the Δ rules so that within each level,
// negation refers only to lower levels (the Δ_i1..Δ_im of the paper).
// It fails if the part has recursion through negation.
func (p *Prover) negationLevels() ([][]int, error) {
	level := map[symbols.Pred]int{}
	for q := range p.own {
		level[q] = 1
	}
	n := len(p.own)
	// Relax: level(head) >= level(pos premise); > level(negated premise).
	for pass := 0; ; pass++ {
		if pass > 2*n+2 {
			return nil, fmt.Errorf("bottomup: recursion through negation in Δ part")
		}
		changed := false
		for _, ri := range p.rules {
			r := &p.prog.Rules[ri]
			h := r.Head.Pred
			for _, pr := range r.Body {
				q := pr.Atom.Pred
				if !p.own[q] {
					continue
				}
				switch pr.Kind {
				case ast.Plain:
					if level[h] < level[q] {
						level[h] = level[q]
						changed = true
					}
				case ast.Negated:
					if level[h] <= level[q] {
						level[h] = level[q] + 1
						changed = true
					}
				case ast.Hyp:
					// H-stratification places hypothetical premises of a Δ
					// part strictly below it, so q should not be owned;
					// treat an owned one like a positive dependency.
					if level[h] < level[q] {
						level[h] = level[q]
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	maxLvl := 1
	for _, l := range level {
		if l > maxLvl {
			maxLvl = l
		}
	}
	out := make([][]int, maxLvl)
	for _, ri := range p.rules {
		l := level[p.prog.Rules[ri].Head.Pred]
		out[l-1] = append(out[l-1], ri)
	}
	return out, nil
}

// Owns reports whether the prover's Δ part defines the predicate.
func (p *Prover) Owns(pred symbols.Pred) bool { return p.own[pred] }

// Holds reports whether the goal atom is in the perfect model of the Δ
// part over the state (or in the state itself).
func (p *Prover) Holds(goal facts.AtomID, st facts.State) (bool, error) {
	if st.Has(goal) {
		return true, nil
	}
	m, err := p.Materialise(st)
	if err != nil {
		return false, err
	}
	return m.has(goal), nil
}

// HoldsCtx is Holds with cancellation: a materialisation in progress is
// aborted with topdown.ErrCanceled / topdown.ErrDeadline (wrapped in a
// *topdown.AbortError) when ctx is canceled. Aborted materialisations are
// not cached.
func (p *Prover) HoldsCtx(ctx context.Context, goal facts.AtomID, st facts.State) (bool, error) {
	restore, err := p.pushCtx(ctx)
	if err != nil {
		return false, err
	}
	if restore != nil {
		defer restore()
	}
	return p.Holds(goal, st)
}

// pushCtx installs ctx as the prover's cancellation source for one public
// call; nil or never-cancellable contexts disable polling (and return a
// nil restore, keeping that path allocation-free).
func (p *Prover) pushCtx(ctx context.Context) (func(), error) {
	if ctx == nil || ctx.Done() == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, topdown.ContextAbort(err, topdown.Stats{})
	}
	saved := p.ctx
	p.ctx = ctx
	return func() { p.ctx = saved }, nil
}

// checkCtx polls the installed context.
func (p *Prover) checkCtx() error {
	if p.ctx == nil {
		return nil
	}
	if err := p.ctx.Err(); err != nil {
		return topdown.ContextAbort(err, topdown.Stats{})
	}
	return nil
}

// checkMem polls the shared memory budget.
func (p *Prover) checkMem() error {
	if p.mem.Over() {
		return &topdown.AbortError{
			Reason: topdown.ErrMemory,
			Limit:  p.mem.Max(),
			Stats:  topdown.Stats{MemBytes: p.mem.Grown()},
		}
	}
	return nil
}

// Materialise computes (or returns the cached) perfect model of the Δ part
// over the state, per the paper's PROVE_Δi main loop.
func (p *Prover) Materialise(st facts.State) (atomSet, error) {
	key := st.Key()
	if m, ok := p.cache[key]; ok {
		return m.atoms, nil
	}
	metrics.Default.DeltaMaterialisations.Inc()
	derived := atomSet{}
	for _, lvlRules := range p.levels {
		if err := p.lfp(lvlRules, st, derived); err != nil {
			// The partial model is discarded; release its charges.
			p.mem.Add(-matAtomBytes * int64(len(derived)))
			return nil, err
		}
	}
	if len(p.cache) < p.maxCache {
		p.cache[key] = &matEntry{delta: st.Delta, atoms: derived}
		p.mem.Add(matEntryOverhead + int64(len(key)))
	} else {
		// Not cached: the model is garbage once the caller is done.
		p.mem.Add(-matAtomBytes * int64(len(derived)))
	}
	return derived, nil
}

// lfp applies the rules of one sub-stratum to a fixpoint (the paper's
// LFP_i / T_i procedures).
func (p *Prover) lfp(rules []int, st facts.State, derived atomSet) error {
	for {
		if err := p.checkCtx(); err != nil {
			return err
		}
		if err := p.checkMem(); err != nil {
			return err
		}
		changed := false
		for _, ri := range rules {
			c, err := p.applyRule(ri, st, derived)
			if err != nil {
				return err
			}
			if c {
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
}

// applyRule derives all new head instances of one rule (one step of T_i).
func (p *Prover) applyRule(ri int, st facts.State, derived atomSet) (bool, error) {
	r := &p.prog.Rules[ri]
	binding := make([]symbols.Const, r.NumVars)
	for i := range binding {
		binding[i] = unbound
	}
	changed := false
	err := p.join(r, binding, 0, st, derived, func() error {
		// Head variables with no body occurrence remain unbound here; the
		// Definition 3 substitution ranges them over the whole domain.
		var free []int
		for _, t := range r.Head.Args {
			if t.IsVar() && binding[t.VarSlot()] == unbound && !contains(free, t.VarSlot()) {
				free = append(free, t.VarSlot())
			}
		}
		return p.enumSlotsThen(free, binding, func() error {
			h := p.ground(r.Head, binding)
			if !derived.has(h) && !st.Has(h) {
				derived[h] = struct{}{}
				p.mem.Add(matAtomBytes)
				changed = true
			}
			return nil
		})
	})
	return changed, err
}

const unbound symbols.Const = -1

// join evaluates body premises left-to-right after a one-time static
// reorder (done implicitly by premiseOrder), enumerating bindings.
func (p *Prover) join(r *ast.CRule, binding []symbols.Const, pi int, st facts.State, derived atomSet, yield func() error) error {
	order := p.premiseOrder(r)
	return p.joinAt(r, order, binding, pi, st, derived, yield)
}

// premiseOrder: state-matchable premises first (own preds and extensional,
// which bind variables by scanning materialised/state atoms), then
// hypothetical and oracle-answered premises, negations last.
func (p *Prover) premiseOrder(r *ast.CRule) []int {
	var matchable, middle, negs []int
	for i := range r.Body {
		pr := &r.Body[i]
		switch {
		case pr.Kind == ast.Negated:
			negs = append(negs, i)
		case pr.Kind == ast.Plain && (p.own[pr.Atom.Pred] || !p.oracleOwned(pr.Atom.Pred)):
			matchable = append(matchable, i)
		default:
			middle = append(middle, i)
		}
	}
	out := append(matchable, middle...)
	return append(out, negs...)
}

// oracleOwned reports whether a predicate must be answered by the oracle:
// it is intensional in the full program but not defined in this Δ part.
func (p *Prover) oracleOwned(pred symbols.Pred) bool {
	return p.prog.IDB[pred] && !p.own[pred]
}

func (p *Prover) joinAt(r *ast.CRule, order []int, binding []symbols.Const, pi int, st facts.State, derived atomSet, yield func() error) error {
	p.steps++
	if p.steps%ctxCheckInterval == 0 {
		if err := p.checkCtx(); err != nil {
			return err
		}
		if err := p.checkMem(); err != nil {
			return err
		}
	}
	if pi == len(order) {
		return yield()
	}
	pr := &r.Body[order[pi]]
	next := func() error {
		return p.joinAt(r, order, binding, pi+1, st, derived, yield)
	}
	switch pr.Kind {
	case ast.Plain:
		if p.own[pr.Atom.Pred] {
			// TEST⁰: membership in DB (state) or the growing model.
			return p.matchOwn(pr.Atom, binding, st, derived, next)
		}
		if !p.oracleOwned(pr.Atom.Pred) {
			// Extensional: match the state.
			return p.matchStateOnly(pr.Atom, binding, st, next)
		}
		// Defined below: enumerate and ask the oracle.
		return p.enumThen(pr, binding, func() error {
			ok, err := p.askOracle(p.ground(pr.Atom, binding), st)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return next()
		})
	case ast.Hyp:
		return p.enumThen(pr, binding, func() error {
			ext := st
			for _, a := range pr.Adds {
				ext = ext.Add(p.ground(a, binding))
			}
			for _, a := range pr.Dels {
				ext = ext.Del(p.ground(a, binding))
			}
			ok, err := p.askOracleOrModel(p.ground(pr.Atom, binding), st, ext, derived)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return next()
		})
	case ast.Negated:
		// Negation-local variables (not occurring positively in the rule)
		// are quantified inside the negation.
		var enumSlots, localSlots []int
		for _, s := range unboundSlots(pr, binding) {
			if r.PosVar[s] {
				enumSlots = append(enumSlots, s)
			} else {
				localSlots = append(localSlots, s)
			}
		}
		return p.enumSlotsThen(enumSlots, binding, func() error {
			holds, err := p.negInstance(pr.Atom, binding, localSlots, st, derived)
			if err != nil {
				return err
			}
			if holds {
				return nil
			}
			return next()
		})
	default:
		return fmt.Errorf("bottomup: premise kind %v", pr.Kind)
	}
}

// askOracle answers a goal defined below the Δ part.
func (p *Prover) askOracle(goal facts.AtomID, st facts.State) (bool, error) {
	if st.Has(goal) {
		return true, nil
	}
	if !p.prog.IDB[p.in.Pred(goal)] {
		return false, nil
	}
	if p.oracle == nil {
		return false, fmt.Errorf("bottomup: goal %s needs an oracle but none is configured",
			p.in.Format(goal))
	}
	return p.oracle(goal, st)
}

// askOracleOrModel evaluates a hypothetical premise target. If the target
// predicate is owned by this Δ part and the additions changed nothing, it
// reads the growing model (monotone); owned targets with real additions
// are materialised recursively; everything else goes to the oracle.
func (p *Prover) askOracleOrModel(goal facts.AtomID, st, ext facts.State, derived atomSet) (bool, error) {
	if ext.Has(goal) {
		return true, nil
	}
	pred := p.in.Pred(goal)
	if p.own[pred] {
		if ext.Key() == st.Key() {
			return derived.has(goal), nil
		}
		// H-stratification normally rules this out; fall back to a
		// recursive materialisation of the extended state for generality.
		m, err := p.Materialise(ext)
		if err != nil {
			return false, err
		}
		return m.has(goal), nil
	}
	return p.askOracle(goal, ext)
}

// negInstance reports whether some instantiation of localSlots makes the
// atom derivable (state, model, or oracle).
func (p *Prover) negInstance(a ast.CAtom, binding []symbols.Const, localSlots []int, st facts.State, derived atomSet) (bool, error) {
	if len(localSlots) == 0 {
		return p.testAtom(p.ground(a, binding), st, derived)
	}
	found := false
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(localSlots) {
			ok, err := p.testAtom(p.ground(a, binding), st, derived)
			if err != nil {
				return err
			}
			if ok {
				found = true
				return errStop
			}
			return nil
		}
		for _, c := range p.dom {
			binding[localSlots[i]] = c
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0)
	for _, s := range localSlots {
		binding[s] = unbound
	}
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

// testAtom is TEST⁰ for a ground atom: state, then own model, then oracle.
func (p *Prover) testAtom(goal facts.AtomID, st facts.State, derived atomSet) (bool, error) {
	if st.Has(goal) {
		return true, nil
	}
	if p.own[p.in.Pred(goal)] {
		return derived.has(goal), nil
	}
	return p.askOracle(goal, st)
}

var errStop = fmt.Errorf("bottomup: stop")

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// enumThen enumerates all unbound slots of a premise over the domain.
func (p *Prover) enumThen(pr *ast.CPremise, binding []symbols.Const, leaf func() error) error {
	return p.enumSlotsThen(unboundSlots(pr, binding), binding, leaf)
}

func (p *Prover) enumSlotsThen(slots []int, binding []symbols.Const, leaf func() error) error {
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(slots) {
			return leaf()
		}
		for _, c := range p.dom {
			binding[slots[i]] = c
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		binding[slots[i]] = unbound
		return nil
	}
	return rec(0)
}

func unboundSlots(pr *ast.CPremise, binding []symbols.Const) []int {
	var slots []int
	seen := map[int]bool{}
	note := func(a ast.CAtom) {
		for _, t := range a.Args {
			if t.IsVar() {
				s := t.VarSlot()
				if binding[s] == unbound && !seen[s] {
					seen[s] = true
					slots = append(slots, s)
				}
			}
		}
	}
	note(pr.Atom)
	for _, a := range pr.Adds {
		note(a)
	}
	for _, a := range pr.Dels {
		note(a)
	}
	return slots
}

// matchOwn enumerates bindings from the state plus the growing model for
// an owned predicate.
func (p *Prover) matchOwn(pattern ast.CAtom, binding []symbols.Const, st facts.State, derived atomSet, yield func() error) error {
	if err := p.matchStateOnly(pattern, binding, st, yield); err != nil {
		return err
	}
	// Snapshot first: yield may grow derived while we iterate (new atoms
	// are picked up by the enclosing fixpoint's next pass).
	var candidates []facts.AtomID
	for id := range derived {
		if p.in.Pred(id) == pattern.Pred {
			candidates = append(candidates, id)
		}
	}
	for _, id := range candidates {
		if err := p.tryMatch(pattern, binding, id, yield); err != nil {
			return err
		}
	}
	return nil
}

// matchStateOnly enumerates bindings from the state (base indexes plus
// delta scan).
func (p *Prover) matchStateOnly(pattern ast.CAtom, binding []symbols.Const, st facts.State, yield func() error) error {
	bestPos, bestVal := -1, unbound
	for i, t := range pattern.Args {
		var v symbols.Const
		if t.IsVar() {
			v = binding[t.VarSlot()]
		} else {
			v = t.ConstID()
		}
		if v != unbound {
			bestPos, bestVal = i, v
			break
		}
	}
	var candidates []facts.AtomID
	if bestPos >= 0 {
		candidates = p.base.ByPredArg(pattern.Pred, bestPos, bestVal)
	} else {
		candidates = p.base.ByPred(pattern.Pred)
	}
	for _, id := range candidates {
		if st.Delta.Deleted(id) {
			continue // hypothetically deleted
		}
		if err := p.tryMatch(pattern, binding, id, yield); err != nil {
			return err
		}
	}
	for _, id := range st.Delta.IDs() {
		if p.in.Pred(id) != pattern.Pred || p.base.Has(id) {
			continue
		}
		if err := p.tryMatch(pattern, binding, id, yield); err != nil {
			return err
		}
	}
	return nil
}

func (p *Prover) tryMatch(pattern ast.CAtom, binding []symbols.Const, id facts.AtomID, yield func() error) error {
	args := p.in.Args(id)
	var boundHere []int
	ok := true
	for i, t := range pattern.Args {
		if t.IsVar() {
			s := t.VarSlot()
			switch binding[s] {
			case unbound:
				binding[s] = args[i]
				boundHere = append(boundHere, s)
			case args[i]:
			default:
				ok = false
			}
		} else if t.ConstID() != args[i] {
			ok = false
		}
		if !ok {
			break
		}
	}
	var err error
	if ok {
		err = yield()
	}
	for _, s := range boundHere {
		binding[s] = unbound
	}
	return err
}

func (p *Prover) ground(a ast.CAtom, binding []symbols.Const) facts.AtomID {
	args := make([]symbols.Const, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v := binding[t.VarSlot()]
			if v == unbound {
				panic("bottomup: grounding with unbound variable")
			}
			args[i] = v
		} else {
			args[i] = t.ConstID()
		}
	}
	return p.in.ID(a.Pred, args)
}
