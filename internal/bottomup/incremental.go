// Incremental maintenance of cached Δ-part materialisations across base
// (extensional) fact commits.
//
// A commit that adds and removes base facts invalidates derived state
// only inside the *affected cone* — the predicates that can reach a
// changed predicate in the dependency graph (depgraph.Cone). A Δ prover
// whose own predicates are outside the cone keeps every cached model
// untouched. An affected prover maintains its cached models in place when
// the change is provably monotone from its point of view:
//
//   - semi-naive addition: new derivations must use at least one changed
//     atom, so rule bodies are joined with one premise pinned to a delta
//     atom and the rest evaluated normally;
//   - DRed-style retraction: first overdelete every cached atom with some
//     derivation through a removed atom (an overestimate, computed
//     against the pre-commit database), then rederive the overdeleted
//     atoms that still have a derivation from the survivors, and finally
//     propagate rederivations and additions semi-naively to a fixpoint.
//
// Rederivation subsumes the counting approach: counting is unsound for
// recursive strata (a cyclic derivation can keep its own count alive),
// while delete-and-rederive is correct for any monotone rule set, so the
// same machinery covers both the non-recursive and the linear-recursive
// strata of the paper's cascade.
//
// Eligibility (incrementalOK) is what keeps the monotonicity argument
// honest: a rule with a negated or oracle-answered premise inside the
// cone, or any hypothetical premise, can flip non-monotonically under the
// commit, so such provers drop their caches and fall back to the paper's
// from-scratch materialisation on the next query — stratum recomputation,
// exactly where linear recursion (or negation) makes local maintenance
// unsound.
package bottomup

import (
	"hypodatalog/internal/ast"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/symbols"
)

// maxIncStates bounds how many cached states one prover maintains in
// place per commit; beyond it, updating every entry costs more than
// letting queries rematerialise the few states they actually revisit.
const maxIncStates = 64

// Plan is the first (pre-mutation) phase of a two-phase commit against a
// prover: the overdeletion sets computed while the shared base database
// still holds its pre-commit contents. The caller mutates the base, then
// runs ApplyPlan.
type Plan struct {
	updates []*pendingUpdate
}

type pendingUpdate struct {
	key   string
	entry *matEntry
	over  atomSet // own atoms with some derivation through a removed atom
}

// Affected reports whether a commit touching the cone can change this
// prover's model. The prover's model consists solely of atoms of its own
// predicates, and the cone over-approximates every predicate whose
// extension can move, so unaffected provers keep all caches verbatim.
func (p *Prover) Affected(cone map[symbols.Pred]bool) bool {
	for q := range p.own {
		if cone[q] {
			return true
		}
	}
	return false
}

// incrementalOK reports whether in-place maintenance is sound for this
// prover under the given cone: every premise whose answer can change must
// be a plain positive one matched locally (own or extensional), so all
// change is monotone in the delta. Hypothetical premises are excluded
// outright — they evaluate recursively under extended states whose
// materialisations are themselves mid-update.
func (p *Prover) incrementalOK(cone map[symbols.Pred]bool) bool {
	for _, ri := range p.rules {
		r := &p.prog.Rules[ri]
		for i := range r.Body {
			pr := &r.Body[i]
			switch pr.Kind {
			case ast.Hyp:
				return false
			case ast.Negated:
				if cone[pr.Atom.Pred] {
					return false
				}
			case ast.Plain:
				if p.oracleOwned(pr.Atom.Pred) && cone[pr.Atom.Pred] {
					return false
				}
			}
		}
	}
	return true
}

// releaseEntry returns a cache entry's memory charges (the entry itself
// is deleted by the caller).
func (p *Prover) releaseEntry(key string, me *matEntry) {
	p.mem.Add(-(matEntryOverhead + int64(len(key)) + matAtomBytes*int64(len(me.atoms))))
}

// DropCache discards every cached materialisation; queries recompute
// lazily against whatever the base database holds then.
func (p *Prover) DropCache() {
	if n := len(p.cache); n > 0 {
		metrics.Default.LiveIncrementalDropped.Add(int64(n))
	}
	for key, me := range p.cache {
		p.releaseEntry(key, me)
	}
	p.cache = make(map[string]*matEntry)
}

// PlanDelta is phase one of a commit: decide, per cached state, whether
// the model will be maintained in place, and compute the overdeletion
// sets against the pre-commit base. It returns nil when there is nothing
// to apply later — either the prover is unaffected (caches stay) or
// maintenance is unsound/uneconomical (caches dropped).
func (p *Prover) PlanDelta(added, removed []facts.AtomID, cone map[symbols.Pred]bool) *Plan {
	if !p.Affected(cone) {
		return nil
	}
	if !p.incrementalOK(cone) || len(p.cache) > maxIncStates {
		p.DropCache()
		return nil
	}
	plan := &Plan{}
	for key, me := range p.cache {
		// A state whose hypothetical delta mentions a committed atom has a
		// key that is no longer canonical against the new base (added ∩
		// base must stay empty, deleted ⊆ base): the entry would be
		// unreachable garbage, so drop it instead of maintaining it.
		if deltaTouches(me.delta, added) || deltaTouches(me.delta, removed) {
			delete(p.cache, key)
			p.releaseEntry(key, me)
			metrics.Default.LiveIncrementalDropped.Inc()
			continue
		}
		over, err := p.overdelete(me, removed)
		if err != nil {
			// An oracle failure mid-plan: dropping the entry is always
			// sound — the next query rematerialises and surfaces the error
			// in its own context.
			delete(p.cache, key)
			p.releaseEntry(key, me)
			metrics.Default.LiveIncrementalDropped.Inc()
			continue
		}
		plan.updates = append(plan.updates, &pendingUpdate{key: key, entry: me, over: over})
	}
	return plan
}

// ApplyPlan is phase two, run after the shared base database has been
// mutated: remove the overdeleted atoms, rederive those still provable
// from the survivors, and propagate rederivations plus the added base
// atoms semi-naively to the new fixpoint. Errors never propagate — an
// entry that fails mid-update is dropped, which degrades to lazy
// rematerialisation.
func (p *Prover) ApplyPlan(plan *Plan, added []facts.AtomID) {
	if plan == nil {
		return
	}
	for _, u := range plan.updates {
		if err := p.applyUpdate(u, added); err != nil {
			delete(p.cache, u.key)
			p.releaseEntry(u.key, u.entry)
			metrics.Default.LiveIncrementalDropped.Inc()
			continue
		}
		metrics.Default.LiveIncrementalStates.Inc()
	}
}

func (p *Prover) applyUpdate(u *pendingUpdate, added []facts.AtomID) error {
	me := u.entry
	for id := range u.over {
		delete(me.atoms, id)
		p.mem.Add(-matAtomBytes)
	}
	st := facts.State{Base: p.base, Delta: me.delta} // base holds post-commit facts now
	var frontier []facts.AtomID
	for id := range u.over {
		ok, err := p.rederivable(id, st, me.atoms)
		if err != nil {
			return err
		}
		if ok {
			me.atoms[id] = struct{}{}
			p.mem.Add(matAtomBytes)
			frontier = append(frontier, id)
		}
	}
	// Added base atoms are visible in every maintained state (a state
	// whose delta mentioned them was dropped in PlanDelta), so they seed
	// the semi-naive rounds directly.
	frontier = append(frontier, added...)
	return p.propagate(me, st, frontier)
}

// overdelete computes the DRed overestimate for one cached state: every
// derived atom with some derivation using a removed base atom (or,
// transitively, an overdeleted one), joined against the pre-commit
// database and the still-intact model.
func (p *Prover) overdelete(me *matEntry, removed []facts.AtomID) (atomSet, error) {
	if len(removed) == 0 {
		return atomSet{}, nil
	}
	st := facts.State{Base: p.base, Delta: me.delta}
	over := atomSet{}
	frontier := removed
	for len(frontier) > 0 {
		var next []facts.AtomID
		err := p.pinnedJoin(st, me.atoms, frontier, func(h facts.AtomID) error {
			if me.atoms.has(h) && !over.has(h) {
				over[h] = struct{}{}
				next = append(next, h)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		frontier = next
	}
	return over, nil
}

// propagate runs semi-naive addition rounds: each round joins every rule
// with one premise pinned to a frontier atom, deriving only heads not yet
// in the model; new heads form the next frontier.
func (p *Prover) propagate(me *matEntry, st facts.State, frontier []facts.AtomID) error {
	for len(frontier) > 0 {
		var next []facts.AtomID
		err := p.pinnedJoin(st, me.atoms, frontier, func(h facts.AtomID) error {
			if !me.atoms.has(h) && !st.Has(h) {
				me.atoms[h] = struct{}{}
				p.mem.Add(matAtomBytes)
				next = append(next, h)
			}
			return nil
		})
		if err != nil {
			return err
		}
		frontier = next
	}
	return nil
}

// pinnedJoin joins every rule of the part once per (plain locally-matched
// premise, frontier atom of its predicate) pair: the premise is bound to
// the frontier atom, the remaining premises evaluate normally against the
// state and model, and every resulting head instance is yielded.
func (p *Prover) pinnedJoin(st facts.State, derived atomSet, frontier []facts.AtomID, yield func(facts.AtomID) error) error {
	byPred := make(map[symbols.Pred][]facts.AtomID)
	for _, id := range frontier {
		pred := p.in.Pred(id)
		byPred[pred] = append(byPred[pred], id)
	}
	for _, ri := range p.rules {
		r := &p.prog.Rules[ri]
		for bi := range r.Body {
			pr := &r.Body[bi]
			if pr.Kind != ast.Plain || p.oracleOwned(pr.Atom.Pred) {
				continue
			}
			seeds := byPred[pr.Atom.Pred]
			if len(seeds) == 0 {
				continue
			}
			order := p.orderWithout(r, bi)
			for _, fa := range seeds {
				binding := newUnbound(r.NumVars)
				err := p.tryMatch(pr.Atom, binding, fa, func() error {
					return p.joinAt(r, order, binding, 0, st, derived, func() error {
						return p.deriveHeads(r, binding, yield)
					})
				})
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// orderWithout is the static premise order minus the pinned premise.
func (p *Prover) orderWithout(r *ast.CRule, skip int) []int {
	full := p.premiseOrder(r)
	out := make([]int, 0, len(full)-1)
	for _, i := range full {
		if i != skip {
			out = append(out, i)
		}
	}
	return out
}

// deriveHeads grounds the rule head under the binding, ranging head
// variables with no body occurrence over the whole domain (Definition 3),
// exactly as applyRule does.
func (p *Prover) deriveHeads(r *ast.CRule, binding []symbols.Const, yield func(facts.AtomID) error) error {
	var free []int
	for _, t := range r.Head.Args {
		if t.IsVar() && binding[t.VarSlot()] == unbound && !contains(free, t.VarSlot()) {
			free = append(free, t.VarSlot())
		}
	}
	return p.enumSlotsThen(free, binding, func() error {
		return yield(p.ground(r.Head, binding))
	})
}

// rederivable reports whether the goal still has a derivation from the
// current model and state (used after overdeleted atoms are removed).
func (p *Prover) rederivable(goal facts.AtomID, st facts.State, derived atomSet) (bool, error) {
	gp := p.in.Pred(goal)
	gargs := p.in.Args(goal)
	for _, ri := range p.rules {
		r := &p.prog.Rules[ri]
		if r.Head.Pred != gp {
			continue
		}
		binding := newUnbound(r.NumVars)
		if !unifyHeadArgs(r.Head, gargs, binding) {
			continue
		}
		found := false
		err := p.joinAt(r, p.premiseOrder(r), binding, 0, st, derived, func() error {
			found = true
			return errStop
		})
		if err != nil && err != errStop {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// unifyHeadArgs matches a rule head against ground goal arguments,
// extending binding; fails on constant mismatch or a repeated head
// variable bound to two different constants.
func unifyHeadArgs(head ast.CAtom, goalArgs []symbols.Const, binding []symbols.Const) bool {
	for i, t := range head.Args {
		g := goalArgs[i]
		if t.IsVar() {
			s := t.VarSlot()
			if binding[s] == unbound {
				binding[s] = g
			} else if binding[s] != g {
				return false
			}
		} else if t.ConstID() != g {
			return false
		}
	}
	return true
}

func newUnbound(n int) []symbols.Const {
	b := make([]symbols.Const, n)
	for i := range b {
		b[i] = unbound
	}
	return b
}

func deltaTouches(d facts.Delta, ids []facts.AtomID) bool {
	for _, id := range ids {
		if d.Has(id) || d.Deleted(id) {
			return true
		}
	}
	return false
}

// DropTouching discards cached materialisations whose hypothetical delta
// mentions any of the given atoms. After a commit, a state key built
// over the old base may no longer be canonical for deltas that overlap
// the committed atoms (an added atom is now in the base, a removed one
// is gone), so such entries can never be looked up again — dropping them
// releases their memory instead of leaking it. Entries whose delta is
// disjoint from the commit are kept; callers use this only when the
// commit's predicate cone provably cannot change the prover's derived
// atoms (the demand-driven mode's out-of-cone case).
func (p *Prover) DropTouching(added, removed []facts.AtomID) {
	var n int64
	for key, me := range p.cache {
		if !deltaTouches(me.delta, added) && !deltaTouches(me.delta, removed) {
			continue
		}
		delete(p.cache, key)
		p.releaseEntry(key, me)
		n++
	}
	if n > 0 {
		metrics.Default.LiveIncrementalDropped.Add(n)
	}
}
