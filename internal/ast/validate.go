package ast

import (
	"fmt"
	"strings"
)

// ValidateError describes a static error in a program, with the offending
// rule when available.
type ValidateError struct {
	Rule *Rule  // nil for fact/query errors
	Line int    // 1-based, 0 if unknown
	Msg  string // human-readable description
}

func (e *ValidateError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
	}
	return e.Msg
}

// Validate checks the static well-formedness rules that the inference
// system of the paper assumes:
//
//   - facts must be ground;
//   - negated-hypothetical premises ~A[add:B] are not part of the inference
//     system (section 3.1) — RewriteNegHyp removes them;
//   - predicate symbols must be used with a consistent arity (this is
//     already enforced by treating name/arity as the identity, but mixed
//     arities are usually typos, so they are reported);
//   - hypothetical premises must add at least one atom.
//
// It returns all problems found, not just the first.
func Validate(p *Program) []error {
	var errs []error
	for _, f := range p.Facts {
		if !f.IsGround() {
			errs = append(errs, &ValidateError{
				Msg: fmt.Sprintf("fact %s is not ground", f),
			})
		}
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		for _, pr := range r.Body {
			if pr.Kind == NegHyp {
				errs = append(errs, &ValidateError{
					Rule: r, Line: r.Line,
					Msg: fmt.Sprintf("negated hypothetical premise %s is not allowed; "+
						"introduce an auxiliary predicate (see RewriteNegHyp)", pr),
				})
			}
			if (pr.Kind == Hyp || pr.Kind == NegHyp) && len(pr.Adds)+len(pr.Dels) == 0 {
				errs = append(errs, &ValidateError{
					Rule: r, Line: r.Line,
					Msg: fmt.Sprintf("hypothetical premise %s neither adds nor deletes atoms", pr),
				})
			}
		}
	}
	errs = append(errs, checkArities(p)...)
	return errs
}

func checkArities(p *Program) []error {
	arities := map[string]map[int]bool{}
	note := func(a Atom) {
		m := arities[a.Pred]
		if m == nil {
			m = map[int]bool{}
			arities[a.Pred] = m
		}
		m[a.Arity()] = true
	}
	for _, f := range p.Facts {
		note(f)
	}
	for _, r := range p.Rules {
		note(r.Head)
		for _, pr := range r.Body {
			note(pr.Atom)
			for _, a := range pr.Adds {
				note(a)
			}
			for _, a := range pr.Dels {
				note(a)
			}
		}
	}
	var errs []error
	for name, m := range arities {
		if len(m) > 1 {
			var as []string
			for k := range m {
				as = append(as, fmt.Sprintf("%d", k))
			}
			errs = append(errs, &ValidateError{
				Msg: fmt.Sprintf("predicate %s used with multiple arities {%s}",
					name, strings.Join(as, ", ")),
			})
		}
	}
	return errs
}

// RewriteNegHyp eliminates negated-hypothetical premises using the
// transformation from section 3.1 of the paper: a premise ~A[add: B̄] in a
// rule is replaced by ~C(x̄) for a fresh predicate C, and a new rule
//
//	C(x̄) ← A[add: B̄]
//
// is appended, where x̄ are the variables of the original premise. The
// transformation preserves the answers of the program (tested in
// engine tests). It returns the number of premises rewritten.
func RewriteNegHyp(p *Program) int {
	used := map[string]bool{}
	for _, s := range p.Predicates() {
		used[s.Name] = true
	}
	fresh := func() string {
		for i := 1; ; i++ {
			name := fmt.Sprintf("neghyp_aux%d", i)
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
	count := 0
	var newRules []Rule
	for i := range p.Rules {
		r := &p.Rules[i]
		for j := range r.Body {
			pr := &r.Body[j]
			if pr.Kind != NegHyp {
				continue
			}
			count++
			vars := pr.Vars(nil)
			args := make([]Term, len(vars))
			for k, v := range vars {
				args[k] = Var(v)
			}
			aux := fresh()
			newRules = append(newRules, Rule{
				Head: Atom{Pred: aux, Args: args},
				Body: []Premise{{Kind: Hyp, Atom: pr.Atom, Adds: pr.Adds, Dels: pr.Dels}},
			})
			*pr = Premise{Kind: Negated, Atom: Atom{Pred: aux, Args: args}}
		}
	}
	p.Rules = append(p.Rules, newRules...)
	return count
}
