package ast_test

import (
	"testing"
	"testing/quick"

	. "hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
)

func TestQuotedConstantsRoundTrip(t *testing.T) {
	cases := []string{
		"hello world", "Upper", "not", "", "3abc", "with'quote", `back\slash`,
		"über", "a-b", "p(x)",
	}
	for _, name := range cases {
		a := NewAtom("p", Const(name))
		printed := a.String() + "."
		prog, err := parser.Parse(printed)
		if err != nil {
			t.Errorf("constant %q: printed form %q does not parse: %v", name, printed, err)
			continue
		}
		if len(prog.Facts) != 1 || prog.Facts[0].Args[0].Name != name {
			t.Errorf("constant %q: round trip gave %v", name, prog.Facts[0])
		}
	}
}

func TestQuotedPredicateRoundTrip(t *testing.T) {
	a := Atom{Pred: "Strange Pred!"}
	printed := a.String() + "."
	prog, err := parser.Parse(printed)
	if err != nil {
		t.Fatalf("%q does not parse: %v", printed, err)
	}
	if prog.Facts[0].Pred != "Strange Pred!" {
		t.Errorf("pred = %q", prog.Facts[0].Pred)
	}
}

// Property: every constant name round-trips through print+parse.
func TestQuotingProperty(t *testing.T) {
	f := func(name string) bool {
		if name == "" {
			return true // empty names cannot arise from parsing; skip
		}
		for _, r := range name {
			if r == 0 || r == '\n' || r == '\r' {
				return true // the lexer treats raw newlines inside quotes literally; skip control chars
			}
		}
		a := NewAtom("p", Const(name))
		prog, err := parser.Parse(a.String() + ".")
		if err != nil {
			return false
		}
		return len(prog.Facts) == 1 && prog.Facts[0].Args[0].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPlainNamesNotQuoted(t *testing.T) {
	for _, name := range []string{"abc", "a1_B", "0", "42", "x"} {
		if got := Const(name).String(); got != name {
			t.Errorf("plain name %q printed as %q", name, got)
		}
	}
}

func TestPremiseKindStrings(t *testing.T) {
	for k, want := range map[PremiseKind]string{
		Plain: "plain", Negated: "negated", Hyp: "hypothetical",
		NegHyp: "negated-hypothetical", PremiseKind(99): "PremiseKind(99)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestDelPremiseStringRoundTrip(t *testing.T) {
	p := HypDelP(NewAtom("goal"), []Atom{NewAtom("a", Var("X"))}, []Atom{NewAtom("b")})
	if got := p.String(); got != "goal[add: a(X)][del: b]" {
		t.Errorf("String = %q", got)
	}
	// del-only premise.
	p2 := HypDelP(NewAtom("goal"), nil, []Atom{NewAtom("b")})
	if got := p2.String(); got != "goal[del: b]" {
		t.Errorf("String = %q", got)
	}
	pr, err := parser.ParsePremise(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if pr.String() != p.String() {
		t.Errorf("round trip: %q vs %q", pr.String(), p.String())
	}
}
