package ast

import (
	"fmt"

	"hypodatalog/internal/symbols"
)

// CTerm is an interned term: a non-negative value is a constant id, a
// negative value -(i+1) is the rule-local variable slot i.
type CTerm int32

// CConst encodes a constant id as a CTerm.
func CConst(c symbols.Const) CTerm { return CTerm(c) }

// CVar encodes rule-local variable slot i as a CTerm.
func CVar(i int) CTerm { return CTerm(-(i + 1)) }

// IsVar reports whether the term is a variable slot.
func (t CTerm) IsVar() bool { return t < 0 }

// VarSlot returns the variable slot index; it panics on constants.
func (t CTerm) VarSlot() int {
	if t >= 0 {
		panic("ast: VarSlot on constant CTerm")
	}
	return int(-t) - 1
}

// ConstID returns the constant id; it panics on variables.
func (t CTerm) ConstID() symbols.Const {
	if t < 0 {
		panic("ast: ConstID on variable CTerm")
	}
	return symbols.Const(t)
}

// CAtom is an interned atom.
type CAtom struct {
	Pred symbols.Pred
	Args []CTerm
}

// IsGround reports whether the atom contains no variable slots.
func (a CAtom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// CPremise is an interned premise.
type CPremise struct {
	Kind PremiseKind
	Atom CAtom
	Adds []CAtom
	Dels []CAtom
}

// CRule is an interned rule with its variables renamed to dense slots.
type CRule struct {
	Head     CAtom
	Body     []CPremise
	NumVars  int
	VarNames []string // slot -> surface name, for diagnostics
	Line     int

	// PosVar[slot] reports whether the variable occurs positively — in the
	// head, in a plain premise, or anywhere in a hypothetical premise
	// (queried atom or added atoms). Variables that occur only in negated
	// premises are quantified inside the negation: ~B(x) with x occurring
	// nowhere else reads "no instance of B is provable", which is what
	// Examples 6 and 7 of the paper require (the rule EVEN ← ~SELECT(x̄)
	// must fire exactly when nothing is selectable).
	PosVar []bool
}

// CProgram is a compiled program: interned rules, ground facts, queries,
// and rule indexes used by the engines.
type CProgram struct {
	Syms    *symbols.Table
	Rules   []CRule
	Facts   []CAtom // all ground
	Queries []CPremise

	// ByHead indexes rule positions by head predicate.
	ByHead map[symbols.Pred][]int
	// IDB marks predicates that have at least one defining rule.
	IDB map[symbols.Pred]bool
	// MaxArity is the largest predicate arity in the program.
	MaxArity int
}

// Compile interns a validated program into syms. Facts must be ground and
// NegHyp premises must have been rewritten away; Compile reports an error
// otherwise rather than producing an engine-visible inconsistency.
func Compile(p *Program, syms *symbols.Table) (*CProgram, error) {
	cp := &CProgram{
		Syms:   syms,
		ByHead: make(map[symbols.Pred][]int),
		IDB:    make(map[symbols.Pred]bool),
	}
	for _, f := range p.Facts {
		if !f.IsGround() {
			return nil, fmt.Errorf("ast: fact %s is not ground", f)
		}
		ca, _ := compileAtom(f, syms, nil)
		cp.Facts = append(cp.Facts, ca)
		cp.noteArity(ca)
	}
	for _, r := range p.Rules {
		cr, err := compileRule(r, syms)
		if err != nil {
			return nil, err
		}
		idx := len(cp.Rules)
		cp.Rules = append(cp.Rules, cr)
		cp.ByHead[cr.Head.Pred] = append(cp.ByHead[cr.Head.Pred], idx)
		cp.IDB[cr.Head.Pred] = true
		cp.noteArity(cr.Head)
		for _, pr := range cr.Body {
			cp.noteArity(pr.Atom)
			for _, a := range pr.Adds {
				cp.noteArity(a)
			}
			for _, a := range pr.Dels {
				cp.noteArity(a)
			}
		}
	}
	for _, q := range p.Queries {
		if q.Kind == NegHyp {
			return nil, fmt.Errorf("ast: query %s: negated hypotheticals are not supported", q)
		}
		vars := map[string]int{}
		var names []string
		cq, err := compilePremise(q, syms, vars, &names)
		if err != nil {
			return nil, err
		}
		cp.Queries = append(cp.Queries, cq)
	}
	return cp, nil
}

// Restrict returns a view of the program containing only the given rules
// (by index). Symbols, rule storage, facts and queries are shared; ByHead
// and IDB are rebuilt for the subset. Used by the stratified cascade to
// hand each Σ_i its own rule set.
func (cp *CProgram) Restrict(ruleIdx []int) *CProgram {
	out := &CProgram{
		Syms:     cp.Syms,
		Rules:    cp.Rules,
		Facts:    cp.Facts,
		Queries:  cp.Queries,
		ByHead:   make(map[symbols.Pred][]int),
		IDB:      make(map[symbols.Pred]bool),
		MaxArity: cp.MaxArity,
	}
	for _, ri := range ruleIdx {
		p := cp.Rules[ri].Head.Pred
		out.ByHead[p] = append(out.ByHead[p], ri)
		out.IDB[p] = true
	}
	return out
}

func (cp *CProgram) noteArity(a CAtom) {
	if len(a.Args) > cp.MaxArity {
		cp.MaxArity = len(a.Args)
	}
}

func compileRule(r Rule, syms *symbols.Table) (CRule, error) {
	vars := map[string]int{}
	var names []string
	head, err := compileAtomVars(r.Head, syms, vars, &names)
	if err != nil {
		return CRule{}, err
	}
	cr := CRule{Head: head, Line: r.Line}
	for _, pr := range r.Body {
		cpr, err := compilePremise(pr, syms, vars, &names)
		if err != nil {
			return CRule{}, err
		}
		if cpr.Kind == NegHyp {
			return CRule{}, fmt.Errorf("ast: rule at line %d: negated hypothetical premise %s; run RewriteNegHyp first", r.Line, pr)
		}
		cr.Body = append(cr.Body, cpr)
	}
	cr.NumVars = len(names)
	cr.VarNames = names
	if len(cr.Body) > 64 {
		return CRule{}, fmt.Errorf("ast: rule at line %d has %d premises; the engines support at most 64", r.Line, len(cr.Body))
	}
	cr.PosVar = make([]bool, cr.NumVars)
	markPos := func(a CAtom) {
		for _, t := range a.Args {
			if t.IsVar() {
				cr.PosVar[t.VarSlot()] = true
			}
		}
	}
	markPos(cr.Head)
	for _, pr := range cr.Body {
		switch pr.Kind {
		case Plain, Hyp:
			markPos(pr.Atom)
			for _, a := range pr.Adds {
				markPos(a)
			}
			for _, a := range pr.Dels {
				markPos(a)
			}
		}
	}
	return cr, nil
}

// CompilePremise interns a standalone premise (typically a query). vars
// and names accumulate variable slots across calls, so several premises
// can share a binding space.
func CompilePremise(p Premise, syms *symbols.Table, vars map[string]int, names *[]string) (CPremise, error) {
	return compilePremise(p, syms, vars, names)
}

func compilePremise(p Premise, syms *symbols.Table, vars map[string]int, names *[]string) (CPremise, error) {
	a, err := compileAtomVars(p.Atom, syms, vars, names)
	if err != nil {
		return CPremise{}, err
	}
	cp := CPremise{Kind: p.Kind, Atom: a}
	for _, add := range p.Adds {
		ca, err := compileAtomVars(add, syms, vars, names)
		if err != nil {
			return CPremise{}, err
		}
		cp.Adds = append(cp.Adds, ca)
	}
	for _, del := range p.Dels {
		ca, err := compileAtomVars(del, syms, vars, names)
		if err != nil {
			return CPremise{}, err
		}
		cp.Dels = append(cp.Dels, ca)
	}
	return cp, nil
}

func compileAtomVars(a Atom, syms *symbols.Table, vars map[string]int, names *[]string) (CAtom, error) {
	out := CAtom{Pred: syms.Pred(a.Pred, a.Arity())}
	if len(a.Args) > 0 {
		out.Args = make([]CTerm, len(a.Args))
	}
	for i, t := range a.Args {
		if t.IsVar {
			slot, ok := vars[t.Name]
			if !ok {
				slot = len(*names)
				vars[t.Name] = slot
				*names = append(*names, t.Name)
			}
			out.Args[i] = CVar(slot)
		} else {
			out.Args[i] = CConst(syms.Const(t.Name))
		}
	}
	return out, nil
}

// compileAtom interns a ground atom (vars map unused).
func compileAtom(a Atom, syms *symbols.Table, _ map[string]int) (CAtom, error) {
	out := CAtom{Pred: syms.Pred(a.Pred, a.Arity())}
	if len(a.Args) > 0 {
		out.Args = make([]CTerm, len(a.Args))
	}
	for i, t := range a.Args {
		if t.IsVar {
			return CAtom{}, fmt.Errorf("ast: variable %s in ground atom %s", t.Name, a)
		}
		out.Args[i] = CConst(syms.Const(t.Name))
	}
	return out, nil
}

// FormatCAtom renders an interned atom using the symbol table, optionally
// substituting variable names from varNames.
func FormatCAtom(a CAtom, syms *symbols.Table, varNames []string) string {
	if len(a.Args) == 0 {
		return syms.PredName(a.Pred)
	}
	s := syms.PredName(a.Pred) + "("
	for i, t := range a.Args {
		if i > 0 {
			s += ", "
		}
		if t.IsVar() {
			if varNames != nil && t.VarSlot() < len(varNames) {
				s += varNames[t.VarSlot()]
			} else {
				s += fmt.Sprintf("_V%d", t.VarSlot())
			}
		} else {
			s += syms.ConstName(t.ConstID())
		}
	}
	return s + ")"
}
