package ast

import (
	"strings"
	"testing"

	"hypodatalog/internal/symbols"
)

func TestAtomHelpers(t *testing.T) {
	a := NewAtom("edge", Const("a"), Var("X"))
	if a.IsGround() {
		t.Error("edge(a, X) reported ground")
	}
	if got := a.String(); got != "edge(a, X)" {
		t.Errorf("String = %q", got)
	}
	vs := a.Vars(nil)
	if len(vs) != 1 || vs[0] != "X" {
		t.Errorf("Vars = %v", vs)
	}
	b := NewAtom("edge", Const("a"), Var("X"))
	if !a.Equal(b) {
		t.Error("Equal false for identical atoms")
	}
	if a.Equal(NewAtom("edge", Var("X"), Const("a"))) {
		t.Error("Equal true for different atoms")
	}
	zero := NewAtom("yes")
	if zero.String() != "yes" || zero.Arity() != 0 {
		t.Errorf("zero-arity atom: %q/%d", zero.String(), zero.Arity())
	}
}

func TestPremiseString(t *testing.T) {
	p := HypP(NewAtom("grad", Var("S")), NewAtom("take", Var("S"), Var("C")))
	if got := p.String(); got != "grad(S)[add: take(S, C)]" {
		t.Errorf("String = %q", got)
	}
	n := NegP(NewAtom("p", Var("X")))
	if got := n.String(); got != "not p(X)" {
		t.Errorf("String = %q", got)
	}
}

func TestRuleVarsOrder(t *testing.T) {
	r := Rule{
		Head: NewAtom("h", Var("A"), Var("B")),
		Body: []Premise{
			PlainP(NewAtom("p", Var("B"), Var("C"))),
			HypP(NewAtom("q", Var("D")), NewAtom("w", Var("E"))),
		},
	}
	got := strings.Join(r.Vars(), ",")
	if got != "A,B,C,D,E" {
		t.Errorf("Vars = %s", got)
	}
}

func TestProgramCloneIndependence(t *testing.T) {
	p := &Program{
		Facts: []Atom{NewAtom("p", Const("a"))},
		Rules: []Rule{{Head: NewAtom("q", Var("X")), Body: []Premise{PlainP(NewAtom("p", Var("X")))}}},
	}
	c := p.Clone()
	c.Facts[0].Args[0] = Const("zzz")
	c.Rules[0].Body[0].Atom.Pred = "changed"
	if p.Facts[0].Args[0].Name != "a" || p.Rules[0].Body[0].Atom.Pred != "p" {
		t.Error("Clone shares storage")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	p := &Program{
		Facts: []Atom{NewAtom("p", Var("X"))}, // non-ground fact
		Rules: []Rule{
			{Head: NewAtom("q"), Body: []Premise{{Kind: NegHyp, Atom: NewAtom("r"), Adds: []Atom{NewAtom("w")}}}},
			{Head: NewAtom("s"), Body: []Premise{{Kind: Hyp, Atom: NewAtom("r")}}}, // no adds
			{Head: NewAtom("p", Const("a"), Const("b"))},                           // arity clash with p/1
		},
	}
	errs := Validate(p)
	if len(errs) < 4 {
		t.Fatalf("got %d errors, want >= 4: %v", len(errs), errs)
	}
}

func TestRewriteNegHyp(t *testing.T) {
	p := &Program{
		Rules: []Rule{{
			Head: NewAtom("q", Var("X")),
			Body: []Premise{
				PlainP(NewAtom("p", Var("X"))),
				{Kind: NegHyp, Atom: NewAtom("r", Var("X")), Adds: []Atom{NewAtom("w", Var("X"))}},
			},
		}},
	}
	n := RewriteNegHyp(p)
	if n != 1 {
		t.Fatalf("rewrote %d premises", n)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	// Original premise became a plain negation of the aux predicate.
	pr := p.Rules[0].Body[1]
	if pr.Kind != Negated || !strings.HasPrefix(pr.Atom.Pred, "neghyp_aux") {
		t.Errorf("rewritten premise = %v", pr)
	}
	// New rule defines the aux predicate with the hypothetical body.
	aux := p.Rules[1]
	if aux.Head.Pred != pr.Atom.Pred || aux.Body[0].Kind != Hyp {
		t.Errorf("aux rule = %v", aux)
	}
	if len(Validate(p)) != 0 {
		t.Errorf("rewritten program invalid: %v", Validate(p))
	}
	// Idempotent.
	if RewriteNegHyp(p) != 0 {
		t.Error("second rewrite found premises")
	}
}

func TestCompileInternsSlots(t *testing.T) {
	p := &Program{
		Facts: []Atom{NewAtom("edge", Const("a"), Const("b"))},
		Rules: []Rule{{
			Head: NewAtom("tc", Var("X"), Var("Y")),
			Body: []Premise{
				PlainP(NewAtom("tc", Var("X"), Var("Z"))),
				PlainP(NewAtom("edge", Var("Z"), Var("Y"))),
			},
		}},
	}
	cp, err := Compile(p, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	r := cp.Rules[0]
	if r.NumVars != 3 {
		t.Fatalf("NumVars = %d", r.NumVars)
	}
	// X is slot 0 in both head and body.
	if r.Head.Args[0] != r.Body[0].Atom.Args[0] {
		t.Error("X slots differ")
	}
	// Z is shared between the two body premises.
	if r.Body[0].Atom.Args[1] != r.Body[1].Atom.Args[0] {
		t.Error("Z slots differ")
	}
	if len(cp.ByHead) != 1 || !cp.IDB[r.Head.Pred] {
		t.Error("indexes wrong")
	}
	if cp.MaxArity != 2 {
		t.Errorf("MaxArity = %d", cp.MaxArity)
	}
}

func TestPosVarComputation(t *testing.T) {
	p := &Program{
		Rules: []Rule{{
			Head: NewAtom("h", Var("A")),
			Body: []Premise{
				NegP(NewAtom("n", Var("B"))),                            // B negation-local
				HypP(NewAtom("q", Var("C")), NewAtom("w", Var("D"))),    // C, D positive
				{Kind: Negated, Atom: NewAtom("m", Var("A"), Var("C"))}, // A, C already positive
			},
		}},
	}
	cp, err := Compile(p, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	r := cp.Rules[0]
	want := map[string]bool{"A": true, "B": false, "C": true, "D": true}
	for slot, name := range r.VarNames {
		if r.PosVar[slot] != want[name] {
			t.Errorf("PosVar[%s] = %v, want %v", name, r.PosVar[slot], want[name])
		}
	}
}

func TestRestrict(t *testing.T) {
	p := &Program{
		Rules: []Rule{
			{Head: NewAtom("a"), Body: []Premise{PlainP(NewAtom("b"))}},
			{Head: NewAtom("b"), Body: []Premise{PlainP(NewAtom("c"))}},
		},
	}
	cp, err := Compile(p, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	sub := cp.Restrict([]int{1})
	if len(sub.ByHead) != 1 {
		t.Fatalf("ByHead = %v", sub.ByHead)
	}
	bPred, _ := cp.Syms.LookupPred("b", 0)
	aPred, _ := cp.Syms.LookupPred("a", 0)
	if !sub.IDB[bPred] || sub.IDB[aPred] {
		t.Error("IDB wrong in restriction")
	}
	// Shares rule storage with the parent.
	if &sub.Rules[0] != &cp.Rules[0] {
		t.Error("rules were copied")
	}
}

func TestCompileRejectsNonGroundFact(t *testing.T) {
	p := &Program{Facts: []Atom{NewAtom("p", Var("X"))}}
	if _, err := Compile(p, symbols.NewTable()); err == nil {
		t.Error("expected non-ground fact rejection")
	}
}

func TestFormatCAtom(t *testing.T) {
	p := &Program{
		Rules: []Rule{{Head: NewAtom("p", Var("X"), Const("a"))}},
	}
	cp, err := Compile(p, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	r := cp.Rules[0]
	if got := FormatCAtom(r.Head, cp.Syms, r.VarNames); got != "p(X, a)" {
		t.Errorf("FormatCAtom = %q", got)
	}
}
