// Package ast defines the abstract syntax of hypothetical Datalog programs:
// terms, atoms, rule premises (plain, negated, and hypothetical), rules, and
// whole programs. It also provides validation, the negated-hypothetical
// rewrite of section 3.1 of the paper, and compilation into the interned
// form consumed by the evaluation engines.
//
// The syntax follows Bonner (PODS 1989): a rule is
//
//	A ← φ1, ..., φk
//
// where A is an atom and each premise φi is an atom B, a negated atom ~B, or
// a hypothetical query B[add: C1, ..., Cm] meaning "B is provable if the
// ground atoms Ci were inserted into the database".
package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a variable or a constant. Variables start with an upper-case
// letter or underscore in the surface syntax; constants start lower-case.
type Term struct {
	Name  string
	IsVar bool
}

// Var returns a variable term.
func Var(name string) Term { return Term{Name: name, IsVar: true} }

// Const returns a constant term.
func Const(name string) Term { return Term{Name: name} }

// String renders the term in surface syntax, quoting constants that are
// not plain identifiers or integers.
func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	return quoteName(t.Name)
}

// quoteName renders a constant or predicate name, quoting when it would
// not lex back as a single identifier or integer token.
func quoteName(s string) string {
	if isPlainName(s) {
		return s
	}
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range s {
		if r == '\'' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('\'')
	return b.String()
}

// isPlainName reports whether s lexes as a bare identifier (lower-case
// first letter) or an integer literal.
func isPlainName(s string) bool {
	if s == "" || s == "not" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		for i := 0; i < len(s); i++ {
			if s[i] < '0' || s[i] > '9' {
				return false
			}
		}
		return true
	}
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// Atom is a predicate applied to terms. A zero-arity atom has nil Args.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar {
			return false
		}
	}
	return true
}

// Vars appends the names of variables occurring in a to dst, preserving
// first-occurrence order and skipping duplicates already present in dst.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if !t.IsVar {
			continue
		}
		if !containsString(dst, t.Name) {
			dst = append(dst, t.Name)
		}
	}
	return dst
}

// String renders the atom in surface syntax.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return quoteName(a.Pred)
	}
	var b strings.Builder
	b.WriteString(quoteName(a.Pred))
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// PremiseKind distinguishes the three premise forms of Definition 1 plus
// the negated-hypothetical form that the paper's section 3.1 rewrites away.
type PremiseKind int

const (
	// Plain is an atomic premise B.
	Plain PremiseKind = iota
	// Negated is a negation-as-failure premise ~B.
	Negated
	// Hyp is a hypothetical premise B[add: C1,...,Cm].
	Hyp
	// NegHyp is ~B[add: C1,...,Cm]. The inference system does not accept
	// it directly; RewriteNegHyp eliminates it per section 3.1.
	NegHyp
)

func (k PremiseKind) String() string {
	switch k {
	case Plain:
		return "plain"
	case Negated:
		return "negated"
	case Hyp:
		return "hypothetical"
	case NegHyp:
		return "negated-hypothetical"
	default:
		return fmt.Sprintf("PremiseKind(%d)", int(k))
	}
}

// Premise is one conjunct of a rule body, or a top-level query.
type Premise struct {
	Kind PremiseKind
	Atom Atom   // the queried atom B
	Adds []Atom // hypothetically added atoms (Kind Hyp or NegHyp only)
	// Dels are hypothetically deleted atoms — the extension beyond the
	// PODS'89 fragment that the paper's introduction credits with raising
	// data-complexity to EXPTIME. A Hyp premise carries Adds, Dels, or
	// both.
	Dels []Atom
}

// PlainP wraps an atom as a plain premise.
func PlainP(a Atom) Premise { return Premise{Kind: Plain, Atom: a} }

// NegP wraps an atom as a negated premise.
func NegP(a Atom) Premise { return Premise{Kind: Negated, Atom: a} }

// HypP builds a hypothetical premise atom[add: adds...].
func HypP(a Atom, adds ...Atom) Premise {
	return Premise{Kind: Hyp, Atom: a, Adds: adds}
}

// HypDelP builds a hypothetical premise atom[add: ...][del: ...].
func HypDelP(a Atom, adds, dels []Atom) Premise {
	return Premise{Kind: Hyp, Atom: a, Adds: adds, Dels: dels}
}

// Vars appends the premise's variable names to dst in first-occurrence
// order, skipping duplicates.
func (p Premise) Vars(dst []string) []string {
	dst = p.Atom.Vars(dst)
	for _, a := range p.Adds {
		dst = a.Vars(dst)
	}
	for _, a := range p.Dels {
		dst = a.Vars(dst)
	}
	return dst
}

// String renders the premise in surface syntax.
func (p Premise) String() string {
	var b strings.Builder
	if p.Kind == Negated || p.Kind == NegHyp {
		b.WriteString("not ")
	}
	b.WriteString(p.Atom.String())
	if p.Kind == Hyp || p.Kind == NegHyp {
		if len(p.Adds) > 0 {
			b.WriteString("[add: ")
			for i, a := range p.Adds {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(a.String())
			}
			b.WriteByte(']')
		}
		if len(p.Dels) > 0 {
			b.WriteString("[del: ")
			for i, a := range p.Dels {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(a.String())
			}
			b.WriteByte(']')
		}
	}
	return b.String()
}

// Rule is a hypothetical rule Head ← Body. A rule with an empty body is a
// (possibly non-ground) unconditional rule; ground bodiless rules are facts.
type Rule struct {
	Head Atom
	Body []Premise
	Line int // 1-based source line, 0 if synthesised
}

// Vars returns the rule's variable names in first-occurrence order
// (head first, then body).
func (r Rule) Vars() []string {
	vs := r.Head.Vars(nil)
	for _, p := range r.Body {
		vs = p.Vars(vs)
	}
	return vs
}

// String renders the rule in surface syntax, terminated with a period.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, p := range r.Body {
		parts[i] = p.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a parsed hypothetical Datalog program: a rulebase, a set of
// ground facts (the database), and optional queries.
type Program struct {
	Rules   []Rule
	Facts   []Atom
	Queries []Premise
}

// String renders the whole program in surface syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, q := range p.Queries {
		b.WriteString("?- ")
		b.WriteString(q.String())
		b.WriteString(".\n")
	}
	return b.String()
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	out := &Program{
		Rules:   make([]Rule, len(p.Rules)),
		Facts:   make([]Atom, len(p.Facts)),
		Queries: make([]Premise, len(p.Queries)),
	}
	for i, r := range p.Rules {
		out.Rules[i] = cloneRule(r)
	}
	for i, f := range p.Facts {
		out.Facts[i] = cloneAtom(f)
	}
	for i, q := range p.Queries {
		out.Queries[i] = clonePremise(q)
	}
	return out
}

func cloneAtom(a Atom) Atom {
	out := Atom{Pred: a.Pred}
	if a.Args != nil {
		out.Args = append([]Term(nil), a.Args...)
	}
	return out
}

func clonePremise(p Premise) Premise {
	out := Premise{Kind: p.Kind, Atom: cloneAtom(p.Atom)}
	for _, a := range p.Adds {
		out.Adds = append(out.Adds, cloneAtom(a))
	}
	for _, a := range p.Dels {
		out.Dels = append(out.Dels, cloneAtom(a))
	}
	return out
}

func cloneRule(r Rule) Rule {
	out := Rule{Head: cloneAtom(r.Head), Line: r.Line}
	for _, p := range r.Body {
		out.Body = append(out.Body, clonePremise(p))
	}
	return out
}

// Predicates returns the name/arity pairs of all predicates mentioned
// anywhere in the program, sorted by name then arity.
func (p *Program) Predicates() []PredSig {
	seen := map[PredSig]bool{}
	add := func(a Atom) { seen[PredSig{a.Pred, a.Arity()}] = true }
	for _, f := range p.Facts {
		add(f)
	}
	for _, r := range p.Rules {
		add(r.Head)
		for _, pr := range r.Body {
			add(pr.Atom)
			for _, a := range pr.Adds {
				add(a)
			}
			for _, a := range pr.Dels {
				add(a)
			}
		}
	}
	for _, q := range p.Queries {
		add(q.Atom)
		for _, a := range q.Adds {
			add(a)
		}
		for _, a := range q.Dels {
			add(a)
		}
	}
	out := make([]PredSig, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// PredSig identifies a predicate by name and arity.
type PredSig struct {
	Name  string
	Arity int
}

// String renders the signature as name/arity.
func (s PredSig) String() string { return fmt.Sprintf("%s/%d", s.Name, s.Arity) }

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
