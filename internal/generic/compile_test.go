package generic

import (
	"fmt"
	"strings"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
	"hypodatalog/internal/turing"
)

// dbFacts renders a domain of n elements plus marked elements of p.
func dbFacts(n int, marked []int, domNames func(int) string) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "d(%s).\n", domNames(i))
	}
	for _, i := range marked {
		fmt.Fprintf(&b, "p(%s).\n", domNames(i))
	}
	return b.String()
}

func plainName(i int) string { return fmt.Sprintf("el%d", i) }

// askGenericYes compiles R(ψ) + facts and evaluates yes.
func askGenericYes(t *testing.T, rules, facts string) bool {
	t.Helper()
	prog, err := parser.Parse(rules + facts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		t.Fatalf("validate: %v", errs[0])
	}
	if err := strat.CheckNegation(prog); err != nil {
		t.Fatalf("negation: %v", err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	e := topdown.New(cp, ref.Domain(cp), topdown.Options{MaxGoals: 500_000_000})
	p, ok := cp.Syms.LookupPred("yes", 0)
	if !ok {
		t.Fatal("no yes/0")
	}
	got, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCompileGenericIsConstantFree checks the headline syntactic property
// of Theorem 2: R(ψ) mentions no constants at all.
func TestCompileGenericIsConstantFree(t *testing.T) {
	rules, err := CompileGeneric(turing.HasOne(), "d", "p")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(rules)
	if err != nil {
		t.Fatalf("rules do not parse: %v\n%s", err, rules)
	}
	check := func(a ast.Atom, where string) {
		for _, tm := range a.Args {
			if !tm.IsVar {
				t.Errorf("constant %q in %s: %s", tm.Name, where, a)
			}
		}
	}
	for _, r := range prog.Rules {
		check(r.Head, "head")
		for _, pr := range r.Body {
			check(pr.Atom, "premise")
			for _, a := range pr.Adds {
				check(a, "add")
			}
			for _, a := range pr.Dels {
				check(a, "del")
			}
		}
	}
	if len(prog.Facts) != 0 {
		t.Errorf("R(ψ) contains facts: %v", prog.Facts)
	}
}

func TestCompileGenericStratifiable(t *testing.T) {
	rules, err := CompileGeneric(turing.HasOne(), "d", "p")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(rules + dbFacts(2, []int{0}, plainName))
	if err != nil {
		t.Fatal(err)
	}
	s, err := strat.Stratify(prog)
	if err != nil {
		t.Fatalf("R(ψ) not linearly stratifiable: %v", err)
	}
	if s.NumStrata < 1 {
		t.Errorf("strata = %d", s.NumStrata)
	}
}

// TestGenericHasOne runs Theorem 2 end to end: the constant-free rulebase
// for the query "is p non-empty?" answers correctly on unordered domains.
func TestGenericHasOne(t *testing.T) {
	rules, err := CompileGeneric(turing.HasOne(), "d", "p")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		n      int
		marked []int
	}{
		{2, nil}, {2, []int{0}}, {2, []int{1}}, {2, []int{0, 1}},
		{3, nil}, {3, []int{1}}, {3, []int{0, 2}},
	}
	for _, tc := range cases {
		want := len(tc.marked) > 0
		got := askGenericYes(t, rules, dbFacts(tc.n, tc.marked, plainName))
		if got != want {
			t.Errorf("n=%d marked=%v: yes=%v want %v", tc.n, tc.marked, got, want)
		}
	}
}

// TestGenericAllOnes: the query "does p cover the whole domain?" — its
// zeros are written by negation-as-failure, which the paper singles out
// as essential to the bitmap encoding.
func TestGenericAllOnes(t *testing.T) {
	rules, err := CompileGeneric(turing.AllOnes(), "d", "p")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		n      int
		marked []int
		want   bool
	}{
		{2, []int{0, 1}, true},
		{2, []int{0}, false},
		{2, nil, false},
		{3, []int{0, 1, 2}, true},
		{3, []int{0, 2}, false},
	}
	for _, tc := range cases {
		got := askGenericYes(t, rules, dbFacts(tc.n, tc.marked, plainName))
		if got != tc.want {
			t.Errorf("n=%d marked=%v: yes=%v want %v", tc.n, tc.marked, got, tc.want)
		}
	}
}

// TestGenericOrderIndependence: renaming the domain must not change the
// answer (section 6.2.3 — re-ordering is a renaming for generic queries).
func TestGenericOrderIndependence(t *testing.T) {
	rules, err := CompileGeneric(turing.HasOne(), "d", "p")
	if err != nil {
		t.Fatal(err)
	}
	renamed := func(i int) string { return fmt.Sprintf("zz%d", 9-i) }
	for _, marked := range [][]int{nil, {0}, {1}} {
		a := askGenericYes(t, rules, dbFacts(3, marked, plainName))
		b := askGenericYes(t, rules, dbFacts(3, marked, renamed))
		if a != b {
			t.Errorf("marked=%v: renaming changed the answer (%v vs %v)", marked, a, b)
		}
	}
}

func TestCompileGenericRejectsBadAlphabet(t *testing.T) {
	m := turing.HasOne()
	m.Alphabet = []byte{'x'}
	m.Transitions = nil
	if _, err := CompileGeneric(m, "d", "p"); err == nil {
		t.Error("expected alphabet rejection")
	}
}
