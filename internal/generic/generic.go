// Package generic implements the section 6 construction: asserting a
// linear order hypothetically on an unordered domain.
//
// A rulebase cannot select one particular order of the domain — nothing
// distinguishes the elements — but it can assert every order, one after
// another, and run an order-dependent computation under each. For generic
// (isomorphism-invariant) queries the result is the same under every
// order, so the answer is well defined. OrderRules emits the paper's six
// rules, which hypothetically insert
//
//	first1(a1), next1(a1, a2), ..., next1(a_{n-1}, a_n), last1(a_n)
//
// for each permutation a1..an of the elements satisfying the domain
// predicate, and then try to derive the 0-ary goal accept. The package
// also provides genericity helpers: renaming databases and checking order
// independence.
package generic

import (
	"fmt"
	"strings"

	"hypodatalog/internal/ast"
)

// OrderRules returns the section 6.2.1 rulebase asserting every linear
// order over the elements of domPred/1. The caller supplies rules that
// define the 0-ary predicate accept in terms of first1/next1/last1 (and
// last1 may be absent for domains of size 0; in that case yes is simply
// not derivable, matching the paper, whose construction assumes a
// non-empty domain).
func OrderRules(domPred string) string {
	return strings.ReplaceAll(`yes :- sel(X), order(X)[add: first1(X)].
order(X) :- sel(Y), order(Y)[add: next1(X, Y)].
order(X) :- not sel(Y), accept[add: last1(X)].
sel(Y) :- @DOM@(Y), not selected(Y).
selected(Y) :- first1(Y).
selected(Y) :- next1(X, Y).
`, "@DOM@", domPred)
}

// ParityViaOrder is a complete generic query built on OrderRules: yes
// holds iff the number of elements of domPred is odd. The position parity
// of the last element of the asserted order decides it — a computation
// that needs an order, run on an unordered domain.
func ParityViaOrder(domPred string) string {
	return OrderRules(domPred) + `oddpos(X) :- first1(X).
evenpos(Y) :- next1(X, Y), oddpos(X).
oddpos(Y) :- next1(X, Y), evenpos(X).
accept :- last1(X), oddpos(X).
`
}

// RenameConsts applies a renaming (permutation of constant symbols) to
// every fact of a program, returning the isomorphic copy. Constants
// missing from the map are kept. Rules and queries are not touched — the
// construction is constant-free there.
func RenameConsts(p *ast.Program, rename map[string]string) *ast.Program {
	out := p.Clone()
	for fi := range out.Facts {
		f := &out.Facts[fi]
		for ai := range f.Args {
			if f.Args[ai].IsVar {
				continue
			}
			if to, ok := rename[f.Args[ai].Name]; ok {
				f.Args[ai] = ast.Const(to)
			}
		}
	}
	return out
}

// DomainFacts renders n facts domPred(e1). ... domPred(en).
func DomainFacts(domPred string, names []string) string {
	var b strings.Builder
	for _, nm := range names {
		fmt.Fprintf(&b, "%s(%s).\n", domPred, nm)
	}
	return b.String()
}
