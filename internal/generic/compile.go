package generic

import (
	"fmt"
	"strings"

	"hypodatalog/internal/turing"
)

// This file implements the constructive core of Theorem 2 (section 6.2):
// a compiler from an NP oracle-machine cascade computing a generic yes/no
// query to a CONSTANT-FREE hypothetical rulebase that evaluates the query
// on an *unordered* domain.
//
// The pieces, exactly as in the paper:
//
//   - the section 6.2.1 rules assert every linear order of the domain
//     hypothetically (OrderRules) and, under each, try to derive accept;
//   - Horn rules extend the asserted order to an l-tuple counter
//     (l = 2 here: first2/next2/last2 over pairs, lexicographic);
//   - the database is encoded as a bitmap on M_k's work tape: under the
//     asserted order, the cell at position (first, x) holds symbol 1 iff
//     dbPred(x), 0 otherwise, and every later row is blank — the
//     negation-as-failure writing the 0s is, as the paper notes, crucial;
//   - the machine-simulation rules of section 5.1, generated over the
//     pair counter (turing.EncodeRulesCounter).
//
// Because the query is generic, the machine accepts the bitmap under
// every asserted order or under none (section 6.2.3), so yes/no is well
// defined despite the domain having no a-priori order.

// CompileGeneric emits the constant-free rulebase R(ψ) for the generic
// yes/no query computed by the machine cascade m over databases of the
// schema (domPred/1, dbPred/1): domPred lists the domain, dbPred is the
// queried unary relation. The machine's tape alphabet must contain '0',
// '1' and its blank; it reads the bitmap of dbPred (one bit per domain
// element, in asserted order) from its work tape.
//
// Appending domain and relation facts to the result yields a complete
// program whose 0-ary predicate `yes` answers the query. The counter has
// n^2 values, so the machines may use up to n^2 time steps and tape
// cells. Domains need at least 2 elements for the counter to have a
// successor at all.
func CompileGeneric(m *turing.Machine, domPred, dbPred string) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	if !strings.ContainsRune(string(m.Alphabet), '0') || !strings.ContainsRune(string(m.Alphabet), '1') {
		return "", fmt.Errorf("generic: machine alphabet must contain '0' and '1' to read bitmaps")
	}
	var b strings.Builder

	// (a) Assert every linear order; each asserts first1/next1/last1 and
	// then queries accept.
	b.WriteString("% ---- section 6.2.1: hypothetically asserted orders ----\n")
	b.WriteString(OrderRules(domPred))

	// (b) The l=2 counter over the asserted order (lexicographic pairs).
	b.WriteString("% ---- section 6.2.2: pair counter over the order ----\n")
	fmt.Fprintf(&b, "first2(X, X) :- first1(X).\n")
	fmt.Fprintf(&b, "next2(X, Y1, X, Y2) :- %s(X), next1(Y1, Y2).\n", domPred)
	fmt.Fprintf(&b, "next2(X1, Yl, X2, Yf) :- next1(X1, X2), last1(Yl), first1(Yf).\n")
	fmt.Fprintf(&b, "last2(X, Y) :- last1(X), last1(Y).\n")

	// (c) Bitmap initialisation of M_k's work tape; blanks below.
	levels := m.Levels()
	k := len(levels)
	b.WriteString("% ---- section 6.2.2: database bitmap on M_k's tape ----\n")
	fmt.Fprintf(&b, "%s(F, X, T1, T2) :- first1(F), %s(X), first2(T1, T2).\n",
		cellName(k, '1'), dbPred)
	fmt.Fprintf(&b, "%s(F, X, T1, T2) :- first1(F), %s(X), not %s(X), first2(T1, T2).\n",
		cellName(k, '0'), domPred, dbPred)
	fmt.Fprintf(&b, "%s(J1, J2, T1, T2) :- %s(J1), %s(J2), not first1(J1), first2(T1, T2).\n",
		cellName(k, m.Blank), domPred, domPred)
	for j, mach := range levels {
		i := k - j
		if i == k {
			continue
		}
		fmt.Fprintf(&b, "%s(J1, J2, T1, T2) :- %s(J1), %s(J2), first2(T1, T2).\n",
			cellName(i, mach.Blank), domPred, domPred)
	}

	// (d) The machine simulation over the pair counter.
	rules, err := turing.EncodeRulesCounter(m, turing.Counter{
		L: 2, First: "first2", Next: "next2", Last: "last2",
	})
	if err != nil {
		return "", err
	}
	b.WriteString(rules)
	return b.String(), nil
}

// cellName mirrors the turing compiler's cell predicate naming.
func cellName(level int, sym byte) string {
	name := fmt.Sprintf("s%d", sym)
	if sym >= 'a' && sym <= 'z' || sym >= '0' && sym <= '9' {
		name = "s" + string(sym)
	}
	return fmt.Sprintf("cell_%d_%s", level, name)
}
