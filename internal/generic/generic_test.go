package generic

import (
	"fmt"
	"math/rand"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

func askYes(t *testing.T, src string) bool {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		t.Fatalf("validate: %v", errs[0])
	}
	if err := strat.CheckNegation(prog); err != nil {
		t.Fatalf("negation: %v", err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	e := topdown.New(cp, ref.Domain(cp), topdown.Options{MaxGoals: 50_000_000})
	p, ok := cp.Syms.LookupPred("yes", 0)
	if !ok {
		t.Fatal("no yes predicate")
	}
	got, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("el%d", i)
	}
	return out
}

func TestOrderRulesAreLinearlyStratified(t *testing.T) {
	src := ParityViaOrder("d") + DomainFacts("d", names(3))
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strat.Stratify(prog); err != nil {
		t.Fatalf("order rules not linearly stratifiable: %v", err)
	}
}

func TestParityViaOrder(t *testing.T) {
	for n := 1; n <= 5; n++ {
		src := ParityViaOrder("d") + DomainFacts("d", names(n))
		want := n%2 == 1
		if got := askYes(t, src); got != want {
			t.Errorf("n=%d: yes=%v want %v", n, got, want)
		}
	}
}

// TestOrderIndependence is the section 6.2.3 property: the answer is the
// same no matter how the domain constants are named (genericity), because
// every linear order is asserted.
func TestOrderIndependence(t *testing.T) {
	base := ParityViaOrder("d")
	for n := 2; n <= 4; n++ {
		orig := askYes(t, base+DomainFacts("d", names(n)))
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 3; trial++ {
			perm := rng.Perm(n)
			renamed := make([]string, n)
			for i, pi := range perm {
				renamed[i] = fmt.Sprintf("renamed%d", pi)
			}
			if got := askYes(t, base+DomainFacts("d", renamed)); got != orig {
				t.Errorf("n=%d trial %d: renaming changed the answer", n, trial)
			}
		}
	}
}

// TestRenameConsts checks the isomorphism helper.
func TestRenameConsts(t *testing.T) {
	prog, err := parser.Parse("p(a, b).\nq(b).\nr(X) :- p(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	out := RenameConsts(prog, map[string]string{"a": "b", "b": "a"})
	if got := out.Facts[0].String(); got != "p(b, a)" {
		t.Errorf("fact 0 = %s", got)
	}
	if got := out.Facts[1].String(); got != "q(a)" {
		t.Errorf("fact 1 = %s", got)
	}
	// Rules untouched; original program untouched.
	if out.Rules[0].String() != prog.Rules[0].String() {
		t.Error("rules were modified")
	}
	if prog.Facts[0].String() != "p(a, b)" {
		t.Error("original mutated")
	}
}

// TestGenericWithExtraRelation uses the asserted order to answer a query
// over a second relation: yes iff the number of marked elements is odd —
// the order walks the whole domain, counting only marked ones.
func TestGenericWithExtraRelation(t *testing.T) {
	rules := OrderRules("d") + `
		cnt_even(X) :- first1(X), not marked(X).
		cnt_odd(X) :- first1(X), marked(X).
		cnt_even(Y) :- next1(X, Y), cnt_even(X), not marked(Y).
		cnt_odd(Y) :- next1(X, Y), cnt_even(X), marked(Y).
		cnt_odd(Y) :- next1(X, Y), cnt_odd(X), not marked(Y).
		cnt_even(Y) :- next1(X, Y), cnt_odd(X), marked(Y).
		accept :- last1(X), cnt_odd(X).
	`
	for n := 1; n <= 4; n++ {
		for marked := 0; marked <= n; marked++ {
			src := rules + DomainFacts("d", names(n))
			for i := 0; i < marked; i++ {
				src += fmt.Sprintf("marked(el%d).\n", i)
			}
			want := marked%2 == 1
			if got := askYes(t, src); got != want {
				t.Errorf("n=%d marked=%d: yes=%v want %v", n, marked, got, want)
			}
		}
	}
}
