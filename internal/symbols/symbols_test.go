package symbols

import (
	"testing"
	"testing/quick"
)

func TestPredInterning(t *testing.T) {
	tb := NewTable()
	p1 := tb.Pred("edge", 2)
	p2 := tb.Pred("edge", 2)
	if p1 != p2 {
		t.Fatal("same predicate interned twice")
	}
	// Same name, different arity: distinct predicate.
	p3 := tb.Pred("edge", 1)
	if p3 == p1 {
		t.Fatal("arity ignored")
	}
	if tb.PredName(p1) != "edge" || tb.PredArity(p1) != 2 {
		t.Error("metadata wrong")
	}
	if tb.NumPreds() != 2 {
		t.Errorf("NumPreds = %d", tb.NumPreds())
	}
	if _, ok := tb.LookupPred("edge", 2); !ok {
		t.Error("lookup failed")
	}
	if _, ok := tb.LookupPred("missing", 0); ok {
		t.Error("lookup invented a predicate")
	}
}

func TestConstInterning(t *testing.T) {
	tb := NewTable()
	a := tb.Const("a")
	if tb.Const("a") != a {
		t.Fatal("same constant interned twice")
	}
	if tb.ConstName(a) != "a" {
		t.Error("name wrong")
	}
	b := tb.Const("b")
	cs := tb.Consts()
	if len(cs) != 2 || cs[0] != a || cs[1] != b {
		t.Errorf("Consts = %v", cs)
	}
}

func TestZeroValueTableUsable(t *testing.T) {
	var tb Table
	p := tb.Pred("p", 0)
	c := tb.Const("c")
	if tb.PredName(p) != "p" || tb.ConstName(c) != "c" {
		t.Error("zero-value table broken")
	}
}

func TestOutOfRangeFormatting(t *testing.T) {
	tb := NewTable()
	if tb.PredName(Pred(99)) == "" || tb.ConstName(Const(99)) == "" {
		t.Error("out-of-range ids should format to placeholders, not empty")
	}
}

// Property: interning is injective — distinct (name, arity) pairs never
// collide, and ids round-trip to their names.
func TestInterningInjective(t *testing.T) {
	f := func(names []string, arities []uint8) bool {
		tb := NewTable()
		type key struct {
			n string
			a int
		}
		seen := map[key]Pred{}
		for i, n := range names {
			a := 0
			if len(arities) > 0 {
				a = int(arities[i%len(arities)]) % 4
			}
			id := tb.Pred(n, a)
			k := key{n, a}
			if prev, ok := seen[k]; ok {
				if prev != id {
					return false
				}
			} else {
				for _, other := range seen {
					if other == id {
						return false
					}
				}
				seen[k] = id
			}
			if tb.PredName(id) != n || tb.PredArity(id) != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
