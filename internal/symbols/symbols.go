// Package symbols interns predicate and constant names to dense integer
// ids. Every other layer of the system works with these ids; strings appear
// only at the parsing and printing boundaries.
//
// A Table is safe for concurrent use: interning takes a write lock,
// lookups and name resolution a read lock. The hot proving loops of the
// engines never touch the Table (they work on pre-interned ids), so the
// locking only costs at compilation and formatting boundaries.
package symbols

import (
	"fmt"
	"sync"
)

// Pred identifies an interned predicate symbol (name plus arity).
type Pred int32

// Const identifies an interned constant symbol.
type Const int32

// NoPred is the zero Pred; it never names a real predicate.
const NoPred Pred = -1

// Table maps predicate and constant names to dense ids and back.
// The zero value is ready to use. A Table must not be copied after first
// use.
type Table struct {
	mu        sync.RWMutex
	preds     []predInfo
	predIndex map[predKey]Pred

	consts     []string
	constIndex map[string]Const
}

type predKey struct {
	name  string
	arity int
}

type predInfo struct {
	name  string
	arity int
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{
		predIndex:  make(map[predKey]Pred),
		constIndex: make(map[string]Const),
	}
}

// Pred interns a predicate symbol. Predicates are identified by name and
// arity together, so p/1 and p/2 are distinct predicates.
func (t *Table) Pred(name string, arity int) Pred {
	k := predKey{name, arity}
	t.mu.RLock()
	id, ok := t.predIndex[k]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.predIndex == nil {
		t.predIndex = make(map[predKey]Pred)
	}
	if id, ok := t.predIndex[k]; ok {
		return id
	}
	id = Pred(len(t.preds))
	t.preds = append(t.preds, predInfo{name, arity})
	t.predIndex[k] = id
	return id
}

// LookupPred reports the id for name/arity if it has been interned.
func (t *Table) LookupPred(name string, arity int) (Pred, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.predIndex[predKey{name, arity}]
	return id, ok
}

// Const interns a constant symbol.
func (t *Table) Const(name string) Const {
	t.mu.RLock()
	id, ok := t.constIndex[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.constIndex == nil {
		t.constIndex = make(map[string]Const)
	}
	if id, ok := t.constIndex[name]; ok {
		return id
	}
	id = Const(len(t.consts))
	t.consts = append(t.consts, name)
	t.constIndex[name] = id
	return id
}

// LookupConst reports the id for name if it has been interned.
func (t *Table) LookupConst(name string) (Const, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.constIndex[name]
	return id, ok
}

// PredName returns the name of an interned predicate.
func (t *Table) PredName(p Pred) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(p) < 0 || int(p) >= len(t.preds) {
		return fmt.Sprintf("?pred%d", int(p))
	}
	return t.preds[p].name
}

// PredArity returns the arity of an interned predicate.
func (t *Table) PredArity(p Pred) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(p) < 0 || int(p) >= len(t.preds) {
		return 0
	}
	return t.preds[p].arity
}

// ConstName returns the name of an interned constant.
func (t *Table) ConstName(c Const) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(c) < 0 || int(c) >= len(t.consts) {
		return fmt.Sprintf("?const%d", int(c))
	}
	return t.consts[c]
}

// NumPreds reports how many predicates have been interned.
func (t *Table) NumPreds() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.preds)
}

// NumConsts reports how many constants have been interned.
func (t *Table) NumConsts() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.consts)
}

// Consts returns the ids of all interned constants, in interning order.
// The returned slice is freshly allocated.
func (t *Table) Consts() []Const {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Const, len(t.consts))
	for i := range out {
		out[i] = Const(i)
	}
	return out
}
