package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hypodatalog/internal/tenant"
)

// gateMinVersion enforces the X-Hdl-Min-Version read-your-writes
// contract: a client that just wrote at version V sends V on its next
// read and is never answered from older data, whichever node it lands
// on. A read at or past the demanded version proceeds immediately; an
// earlier one waits (bounded by Config.MinVersionWait) for the local
// store to catch up, then is refused with 503 kind "stale" + Retry-After
// if it has not. Returns false when the response has been written.
//
// The gate runs before admission: a request parked on replication lag
// must not hold an evaluation slot while it waits.
func (s *Server) gateMinVersion(ctx context.Context, w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant) bool {
	h := r.Header.Get("X-Hdl-Min-Version")
	if h == "" {
		return true
	}
	min, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", "X-Hdl-Min-Version is not a uint64")
		return false
	}
	ri.minVersion = min
	if t.Version() >= min {
		return true
	}
	if t.Live() == nil {
		// A static server can never reach the demanded version.
		s.refuseStale(w, ri, t, min)
		return false
	}
	t.Metrics().ReplMinVersionWaits.Inc()
	wctx, cancel := context.WithTimeout(ctx, s.cfg.MinVersionWait)
	defer cancel()
	if err := t.Live().WaitVersion(wctx, min); err != nil {
		t.Metrics().ReplMinVersionTimeouts.Inc()
		s.refuseStale(w, ri, t, min)
		return false
	}
	return true
}

// refuseStale answers a read whose X-Hdl-Min-Version the node could not
// reach in time: 503 kind "stale" with Retry-After and the version the
// node IS at, so the client can retry here later or fall back to the
// primary.
func (s *Server) refuseStale(w http.ResponseWriter, ri *reqInfo, t *tenant.Tenant, min uint64) {
	ri.outcome = "stale"
	retry := strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
	w.Header().Set("Retry-After", retry)
	w.Header().Set("X-Hdl-Version", strconv.FormatUint(t.Version(), 10))
	writeError(w, http.StatusServiceUnavailable, "stale",
		fmt.Sprintf("data version %d not yet replicated here (at %d); retry or read the primary", min, t.Version()))
}

// proxyFacts forwards a write landing on a replica to the primary, so
// clients can POST /v1/facts to any node. The response — including the
// committed version the client will use as its next X-Hdl-Min-Version —
// is relayed verbatim, plus an X-Hdl-Proxied marker.
//
// The forward is governed by the proxy circuit breaker: while the
// primary is deemed dead, writes fail fast with 503 primary_unreachable
// + Retry-After instead of each burning a dial timeout. Every attempt
// runs under its own deadline (ProxyAttemptTimeout, clamped by the
// inbound request's context, which still bounds the whole exchange),
// and dial-level failures — where the request provably never reached
// the primary, so a retry cannot double-commit — are retried with
// jittered exponential backoff up to ProxyRetries times.
func (s *Server) proxyFacts(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		ri.outcome = "too_large"
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	proceed, probe := s.proxyBr.allow()
	if !proceed {
		s.mets.ProxyFastFails.Inc()
		ri.outcome = "primary_unreachable"
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeError(w, http.StatusServiceUnavailable, "primary_unreachable",
			"primary is unreachable (circuit open); retry later or write to the primary directly")
		return
	}
	url := strings.TrimRight(s.cfg.PrimaryURL, "/") + "/v1/facts"
	var resp *http.Response
	var cancel context.CancelFunc
	for attempt := 0; ; attempt++ {
		resp, cancel, err = s.proxyAttempt(r, url, body)
		if err == nil || attempt >= s.cfg.ProxyRetries ||
			!requestNotSent(err) || r.Context().Err() != nil {
			break
		}
		s.mets.ProxyRetries.Inc()
		d := s.cfg.ProxyBackoff << attempt
		d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1)) // jitter in [d/2, d]
		select {
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	if err != nil {
		s.proxyBr.failure(probe)
		ri.outcome = "primary_unreachable"
		writeError(w, http.StatusBadGateway, "primary_unreachable",
			"write could not be forwarded to the primary: "+err.Error())
		return
	}
	defer cancel()
	defer resp.Body.Close()
	// Any response — even a 5xx status — proves the primary reachable;
	// its status is the primary's answer to relay, not a transport fault.
	s.proxyBr.success(probe)
	s.mets.ReplProxiedWrites.Inc()
	ri.outcome = "proxied"
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Hdl-Proxied", "primary")
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// proxyAttempt issues one forwarded write under its own clamped
// deadline. On success the caller must run cancel only after it has
// drained the response body (cancelling the context aborts the read).
func (s *Server) proxyAttempt(r *http.Request, url string, body []byte) (*http.Response, context.CancelFunc, error) {
	actx, cancel := context.WithTimeout(r.Context(), s.cfg.ProxyAttemptTimeout)
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cfg.ProxyClient.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

// requestNotSent reports whether a transport error proves the request
// never reached the primary — a failed dial or a refused connection.
// Only those are safe to retry: /v1/facts is not idempotent (every
// commit mints a version), so an error after the request may have been
// delivered must surface to the client instead of re-posting.
func requestNotSent(err error) bool {
	var oe *net.OpError
	if errors.As(err, &oe) && oe.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// retryAfterSecs renders Config.RetryAfter as a whole-seconds header
// value (rounded up).
func (s *Server) retryAfterSecs() string {
	return strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
}
