package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/tenant"
)

const paritySrc = `
even.
odd :- not even.
`

// newRegistryServer builds a dynamic registry in a temp dir with the
// default program created from uniSrc, and a server over it.
func newRegistryServer(t *testing.T, regCfg tenant.Config, cfg Config) (*Server, *httptest.Server, *tenant.Registry) {
	t.Helper()
	regCfg.Dir = t.TempDir()
	if regCfg.Logger == nil {
		regCfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	regCfg.LiveConfig.NoSync = true
	reg, err := tenant.Open(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	if _, _, err := reg.Create(reg.DefaultName(), uniSrc); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func put(t *testing.T, cl *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func del(t *testing.T, cl *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func putProgram(src string) string {
	b, _ := json.Marshal(map[string]string{"program": src})
	return string(b)
}

// TestTenantAdminAndRoutes walks the admin lifecycle over HTTP: create,
// idempotent re-create, conflict, list, get, query through the named
// routes, delete, and the protections around the default program.
func TestTenantAdminAndRoutes(t *testing.T) {
	_, ts, _ := newRegistryServer(t, tenant.Config{Options: hypo.Options{PoolSize: 2}}, Config{})
	cl := ts.Client()

	// Create a second program.
	resp, body := put(t, cl, ts.URL+"/v1/programs/parity", putProgram(paritySrc))
	if resp.StatusCode != 201 || !strings.Contains(string(body), `"created":true`) {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	// Same rules again: 200, not created.
	resp, body = put(t, cl, ts.URL+"/v1/programs/parity", putProgram(paritySrc))
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"created":false`) {
		t.Fatalf("idempotent create: %d %s", resp.StatusCode, body)
	}
	// Different rules: 409.
	resp, body = put(t, cl, ts.URL+"/v1/programs/parity", putProgram(uniSrc))
	if resp.StatusCode != 409 || !strings.Contains(string(body), `"kind":"conflict"`) {
		t.Fatalf("conflicting create: %d %s", resp.StatusCode, body)
	}
	// Bad name and bad rulebase: 400.
	resp, _ = put(t, cl, ts.URL+"/v1/programs/Bad%20Name", putProgram(paritySrc))
	if resp.StatusCode != 400 {
		t.Fatalf("bad name: %d", resp.StatusCode)
	}
	resp, _ = put(t, cl, ts.URL+"/v1/programs/broken", putProgram("p :- q("))
	if resp.StatusCode != 400 {
		t.Fatalf("bad program: %d", resp.StatusCode)
	}

	// Query each tenant through its own routes; the un-prefixed route is
	// the default program.
	resp, body = post(t, cl, ts.URL+"/v1/programs/parity/ask", `{"query": "odd"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":false`) {
		t.Errorf("parity odd: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, cl, ts.URL+"/v1/programs/default/ask", `{"query": "grad(tony)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("named default ask: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, cl, ts.URL+"/v1/ask", `{"query": "grad(tony)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("alias ask: %d %s", resp.StatusCode, body)
	}
	// Unknown program: 404 with the machine-readable kind.
	resp, body = post(t, cl, ts.URL+"/v1/programs/nope/ask", `{"query": "x"}`)
	if resp.StatusCode != 404 || !strings.Contains(string(body), `"kind":"unknown_program"`) {
		t.Errorf("unknown program: %d %s", resp.StatusCode, body)
	}

	// List and get.
	resp, body = post0(t, cl, ts.URL+"/v1/programs")
	if resp.StatusCode != 200 {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	var list struct {
		Programs []struct {
			Name string `json:"name"`
		} `json:"programs"`
		Default string `json:"default"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Programs) != 2 || list.Default != "default" {
		t.Errorf("list = %s", body)
	}
	resp, body = post0(t, cl, ts.URL+"/v1/programs/parity")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "odd :- not even.") {
		t.Errorf("get program: %d %s", resp.StatusCode, body)
	}

	// Per-tenant facts: write to the default through the named route.
	resp, body = post(t, cl, ts.URL+"/v1/programs/default/facts",
		`{"assert": ["take(mary, eng201)"]}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"version":1`) {
		t.Fatalf("named facts: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, cl, ts.URL+"/v1/programs/default/ask", `{"query": "grad(mary)"}`)
	if !strings.Contains(string(body), `"result":true`) {
		t.Errorf("post-write ask: %s", body)
	}
	// The write did not touch the parity program.
	resp, body = post0(t, cl, ts.URL+"/v1/programs/parity")
	if !strings.Contains(string(body), `"dataVersion":0`) {
		t.Errorf("parity version moved: %s", body)
	}

	// healthz reports both programs.
	resp, body = post0(t, cl, ts.URL+"/healthz")
	var hz struct {
		Programs map[string]struct {
			DataVersion uint64 `json:"dataVersion"`
			Status      string `json:"status"`
		} `json:"programs"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Programs["default"].DataVersion != 1 || hz.Programs["parity"].Status != "ok" {
		t.Errorf("healthz programs: %s", body)
	}

	// Delete parity; its routes 404 afterwards; the default is protected.
	resp, body = del(t, cl, ts.URL+"/v1/programs/parity")
	if resp.StatusCode != 200 {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	resp, _ = post(t, cl, ts.URL+"/v1/programs/parity/ask", `{"query": "odd"}`)
	if resp.StatusCode != 404 {
		t.Errorf("ask after delete: %d", resp.StatusCode)
	}
	resp, _ = del(t, cl, ts.URL+"/v1/programs/parity")
	if resp.StatusCode != 404 {
		t.Errorf("double delete: %d", resp.StatusCode)
	}
	resp, body = del(t, cl, ts.URL+"/v1/programs/default")
	if resp.StatusCode != 400 {
		t.Errorf("delete default: %d %s", resp.StatusCode, body)
	}
}

// post0 issues a GET (name kept symmetrical with post).
func post0(t *testing.T, cl *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

// TestAdminOnStaticServer: a legacy single-program config exposes the
// query routes but refuses program administration with 501.
func TestAdminOnStaticServer(t *testing.T) {
	_, ts := newTestServer(t, uniSrc, hypo.Options{}, Config{})
	cl := ts.Client()
	resp, body := put(t, cl, ts.URL+"/v1/programs/x", putProgram(paritySrc))
	if resp.StatusCode != 501 || !strings.Contains(string(body), `"kind":"not_enabled"`) {
		t.Errorf("static put: %d %s", resp.StatusCode, body)
	}
	resp, _ = del(t, cl, ts.URL+"/v1/programs/x")
	if resp.StatusCode != 501 {
		t.Errorf("static delete: %d", resp.StatusCode)
	}
	// The default program still answers under its named route.
	resp, body = post(t, cl, ts.URL+"/v1/programs/default/ask", `{"query": "grad(tony)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("static named ask: %d %s", resp.StatusCode, body)
	}
}

// TestExplainEndpoint covers the HTTP proof surface: a provable query
// returns its rendered derivation, an unprovable one provable=false, a
// malformed one 400 — on both the alias and the named route.
func TestExplainEndpoint(t *testing.T) {
	_, ts, _ := newRegistryServer(t, tenant.Config{Options: hypo.Options{PoolSize: 1}}, Config{})
	cl := ts.Client()

	resp, body := post(t, cl, ts.URL+"/v1/explain", `{"query": "grad(tony)"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("explain: %d %s", resp.StatusCode, body)
	}
	var er struct {
		Provable    bool   `json:"provable"`
		Proof       string `json:"proof"`
		DataVersion uint64 `json:"dataVersion"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Provable || !strings.Contains(er.Proof, "[fact]") {
		t.Errorf("explain grad(tony): %s", body)
	}

	// Hypothetical query: the added premise participates in the proof.
	resp, body = post(t, cl, ts.URL+"/v1/explain",
		`{"query": "grad(mary)[add: take(mary, eng201)]"}`)
	er.Provable, er.Proof = false, ""
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Provable || !strings.Contains(er.Proof, "take(mary, eng201)") {
		t.Errorf("hypothetical explain: %s", body)
	}

	// Unprovable: 200 with provable=false and no proof.
	resp, body = post(t, cl, ts.URL+"/v1/explain", `{"query": "grad(mary)"}`)
	er.Provable, er.Proof = false, ""
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Provable || er.Proof != "" {
		t.Errorf("unprovable explain: %s", body)
	}

	// Malformed query: the standard 400.
	resp, _ = post(t, cl, ts.URL+"/v1/explain", `{"query": "grad("}`)
	if resp.StatusCode != 400 {
		t.Errorf("bad explain query: %d", resp.StatusCode)
	}

	// Named route; facts bump dataVersion in the explain response.
	resp, _ = post(t, cl, ts.URL+"/v1/facts", `{"assert": ["take(mary, eng201)"]}`)
	if resp.StatusCode != 200 {
		t.Fatal("facts for explain version")
	}
	resp, body = post(t, cl, ts.URL+"/v1/programs/default/explain", `{"query": "grad(mary)"}`)
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Provable || er.DataVersion != 1 {
		t.Errorf("named explain after write: %s", body)
	}
}

// TestTenantIsolationE2E is the headline property of the registry: a
// tenant driven past its admission quota and cache budget must not
// shed, evict, or slow a well-behaved neighbour. "hot" runs a
// near-factorial Hamiltonian refutation that pins its single evaluation
// slot and floods its answer cache; "cold" serves trivial asks
// throughout, and every one of them must succeed quickly with a clean
// cache.
func TestTenantIsolationE2E(t *testing.T) {
	_, ts, reg := newRegistryServer(t, tenant.Config{
		Options:       hypo.Options{PoolSize: 1, Mode: hypo.ModeUniform, NoTabling: true, CacheBytes: 1 << 14},
		MaxConcurrent: 1,
		MaxQueue:      1,
	}, Config{})
	cl := ts.Client()

	if _, _, err := reg.Create("hot", hardSrc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Create("cold", uniSrc); err != nil {
		t.Fatal(err)
	}
	hot, _ := reg.Get("hot")
	cold, _ := reg.Get("cold")

	// Phase 1: saturate hot's admission quota. One slow refutation
	// occupies the only slot, a second parks in the queue, a third is
	// shed with 429.
	var wg sync.WaitGroup
	slow := func(timeout string) {
		defer wg.Done()
		resp, _ := post(t, cl, ts.URL+"/v1/programs/hot/ask",
			fmt.Sprintf(`{"query": "yes", "timeout": %q}`, timeout))
		// The refutation cannot finish: it ends in 504 (deadline).
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("slow hot query = %d, want 504", resp.StatusCode)
		}
	}
	wg.Add(1)
	go slow("2500ms")
	waitGauge(t, func() int64 { return hot.Metrics().HTTPInFlight.Value() }, 1, "hot in-flight")
	wg.Add(1)
	go slow("2000ms")
	waitGauge(t, func() int64 { return hot.Metrics().HTTPQueued.Value() }, 1, "hot queued")

	resp, body := post(t, cl, ts.URL+"/v1/programs/hot/ask", `{"query": "yes", "timeout": "1s"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow hot ask = %d %s, want 429", resp.StatusCode, body)
	}

	// Phase 2: while hot is saturated, cold serves normally. Every
	// request must succeed — no 429, no queueing delay worth noticing.
	for i := 0; i < 20; i++ {
		start := time.Now()
		resp, body := post(t, cl, ts.URL+"/v1/programs/cold/ask", `{"query": "grad(tony)"}`)
		if resp.StatusCode != 200 {
			t.Fatalf("cold ask %d during hot saturation = %d %s", i, resp.StatusCode, body)
		}
		if el := time.Since(start); el > time.Second {
			t.Errorf("cold ask %d took %v during hot saturation", i, el)
		}
	}
	if got := cold.Metrics().HTTPShed.Value(); got != 0 {
		t.Errorf("cold shed count = %d, want 0 (isolation)", got)
	}
	if got := hot.Metrics().HTTPShed.Value(); got == 0 {
		t.Error("hot shed count = 0, want > 0")
	}
	wg.Wait()

	// Phase 3: cache isolation. Prime cold's cache, then blow hot's
	// cache budget with hundreds of distinct hypothetical asks; cold's
	// entry must survive untouched.
	post(t, cl, ts.URL+"/v1/programs/cold/ask", `{"query": "grad(mary)"}`)
	resp, _ = post(t, cl, ts.URL+"/v1/programs/cold/ask", `{"query": "grad(mary)"}`)
	if got := resp.Header.Get("X-Hdl-Cache"); got != "hit" {
		t.Fatalf("cold primed ask X-Hdl-Cache = %q, want hit", got)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			for _, q := range []string{"edge(v0, v1)", "edge(v1, v0)"} {
				body := fmt.Sprintf(`{"query": "%s", "add": ["edge(v%d, v%d)"]}`, q, i, j)
				resp, data := post(t, cl, ts.URL+"/v1/programs/hot/askunder", body)
				if resp.StatusCode != 200 {
					t.Fatalf("hot cache filler (%d,%d) = %d %s", i, j, resp.StatusCode, data)
				}
			}
		}
	}
	if got := hot.Metrics().CacheEvictions.Value(); got == 0 {
		t.Error("hot cache evictions = 0; the filler did not overflow its budget")
	}
	if got := cold.Metrics().CacheEvictions.Value(); got != 0 {
		t.Errorf("cold cache evictions = %d, want 0 (isolation)", got)
	}
	resp, _ = post(t, cl, ts.URL+"/v1/programs/cold/ask", `{"query": "grad(mary)"}`)
	if got := resp.Header.Get("X-Hdl-Cache"); got != "hit" {
		t.Errorf("cold ask after hot cache flood X-Hdl-Cache = %q, want hit", got)
	}
}

// waitGauge polls fn until it reaches want, failing after 5s.
func waitGauge(t *testing.T, fn func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fn() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d (at %d)", what, want, fn())
}
