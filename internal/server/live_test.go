package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/vfs"
)

// liveSrc has an extensional toggle (flag), a rule over it, and a small
// graph for reachability churn.
const liveSrc = `
flag(off).
node(a). node(b). node(c).
edge(a, b).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
light(X) :- flag(X).
`

// newLiveTestServer is newTestServer plus a Live store in a temp dir.
func newLiveTestServer(t *testing.T, opts hypo.Options, cfg Config) (*Server, *httptest.Server, *hypo.Live) {
	t.Helper()
	prog, err := hypo.Parse(liveSrc)
	if err != nil {
		t.Fatal(err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	dir := t.TempDir()
	lv, err := hypo.OpenLive(prog, hypo.LiveConfig{
		WALPath:      filepath.Join(dir, "wal.log"),
		SnapshotPath: filepath.Join(dir, "db.snap"),
		NoSync:       true,
		Logger:       quiet,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = lv.Pool()
	cfg.Live = lv
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		lv.Close()
	})
	return s, ts, lv
}

func TestFactsEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, uniSrc, hypo.Options{}, Config{})
	resp, body := post(t, ts.Client(), ts.URL+"/v1/facts", `{"assert": ["take(mary, eng201)"]}`)
	if resp.StatusCode != http.StatusNotImplemented || !strings.Contains(string(body), "not_enabled") {
		t.Errorf("facts without Live: status %d body %s", resp.StatusCode, body)
	}
}

func TestFactsEndpointCommitAndEcho(t *testing.T) {
	_, ts, _ := newLiveTestServer(t, hypo.Options{}, Config{})
	cl := ts.Client()

	// Version 0 everywhere before any commit.
	resp, body := post(t, cl, ts.URL+"/v1/ask", `{"query": "reach(b, c)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":false`) ||
		!strings.Contains(string(body), `"dataVersion":0`) {
		t.Fatalf("pre-commit ask: status %d body %s", resp.StatusCode, body)
	}

	resp, body = post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("facts: status %d body %s", resp.StatusCode, body)
	}
	var fr struct {
		Version uint64 `json:"version"`
		Changed int    `json:"changed"`
	}
	if err := json.Unmarshal(body, &fr); err != nil || fr.Version != 1 || fr.Changed != 1 {
		t.Fatalf("facts response %s (err %v)", body, err)
	}

	// The committed batch is visible to the next query, which echoes the
	// new version.
	resp, body = post(t, cl, ts.URL+"/v1/ask", `{"query": "reach(a, c)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) ||
		!strings.Contains(string(body), `"dataVersion":1`) {
		t.Fatalf("post-commit ask: status %d body %s", resp.StatusCode, body)
	}

	// /healthz and the query stream echo it too.
	hresp, err := cl.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hbody), `"dataVersion":1`) {
		t.Errorf("healthz body %s lacks dataVersion 1", hbody)
	}
	resp, body = post(t, cl, ts.URL+"/v1/query", `{"query": "reach(a, Y)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"dataVersion":1`) {
		t.Errorf("query done line: status %d body %s", resp.StatusCode, body)
	}
	resp, body = post(t, cl, ts.URL+"/v1/batch", `{"queries": [{"query": "reach(b, c)"}]}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"dataVersion":1`) {
		t.Errorf("batch response: status %d body %s", resp.StatusCode, body)
	}

	// Retraction is a new version and flips the answer back.
	resp, body = post(t, cl, ts.URL+"/v1/facts", `{"retract": ["edge(b, c)"]}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"version":2`) {
		t.Fatalf("retract: status %d body %s", resp.StatusCode, body)
	}
	resp, body = post(t, cl, ts.URL+"/v1/ask", `{"query": "reach(a, c)"}`)
	if !strings.Contains(string(body), `"result":false`) || !strings.Contains(string(body), `"dataVersion":2`) {
		t.Fatalf("post-retract ask: status %d body %s", resp.StatusCode, body)
	}
}

func TestFactsEndpointValidation(t *testing.T) {
	_, ts, lv := newLiveTestServer(t, hypo.Options{}, Config{})
	cl := ts.Client()
	cases := []struct {
		name, body, want string
	}{
		{"empty batch", `{}`, "non-empty"},
		{"intensional", `{"assert": ["reach(a, b)"]}`, "intensional"},
		{"out of domain", `{"assert": ["edge(a, zz9)"]}`, "outside dom"},
		{"non-ground", `{"assert": ["edge(a, X)"]}`, "not ground"},
		{"malformed atom", `{"assert": ["edge(a,"]}`, "bad_request"},
		{"unknown field", `{"add": ["edge(b, c)"]}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, cl, ts.URL+"/v1/facts", tc.body)
			if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), tc.want) {
				t.Errorf("status %d body %s (want 400 containing %q)", resp.StatusCode, body, tc.want)
			}
		})
	}
	if v := lv.Version(); v != 0 {
		t.Errorf("rejected batches moved the version to %d", v)
	}
}

func TestFactsEndpointDraining(t *testing.T) {
	s, ts, _ := newLiveTestServer(t, hypo.Options{}, Config{})
	s.BeginDrain()
	resp, body := post(t, ts.Client(), ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("facts while draining: status %d body %s", resp.StatusCode, body)
	}
}

// TestLiveServerConcurrentReadWrite hammers /v1/facts and /v1/ask
// concurrently: every response must satisfy the version-parity invariant
// (light(on) holds exactly at odd versions — the writer alternates
// assert/retract of flag(on)), proving snapshot isolation end to end.
// Run under -race in CI.
func TestLiveServerConcurrentReadWrite(t *testing.T) {
	_, ts, _ := newLiveTestServer(t, hypo.Options{PoolSize: 4, ExtraDomain: []string{"on"}}, Config{})
	cl := ts.Client()

	const commits = 40
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			var body string
			if i%2 == 0 {
				body = `{"assert": ["flag(on)"]}`
			} else {
				body = `{"retract": ["flag(on)"]}`
			}
			resp, data := post(t, cl, ts.URL+"/v1/facts", body)
			if resp.StatusCode != 200 {
				errCh <- fmt.Errorf("writer commit %d: status %d body %s", i, resp.StatusCode, data)
				return
			}
			var fr struct {
				Version uint64 `json:"version"`
			}
			if err := json.Unmarshal(data, &fr); err != nil || fr.Version != uint64(i+1) {
				errCh <- fmt.Errorf("writer commit %d: version %d in %s (err %v)", i, fr.Version, data, err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, data := post(t, cl, ts.URL+"/v1/ask", `{"query": "light(on)"}`)
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("reader %d: status %d body %s", r, resp.StatusCode, data)
					return
				}
				var ar struct {
					Result      bool   `json:"result"`
					DataVersion uint64 `json:"dataVersion"`
				}
				if err := json.Unmarshal(data, &ar); err != nil {
					errCh <- fmt.Errorf("reader %d: %v in %s", r, err, data)
					return
				}
				if want := ar.DataVersion%2 == 1; ar.Result != want {
					errCh <- fmt.Errorf("reader %d: light(on)=%v at version %d", r, ar.Result, ar.DataVersion)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestDegradedReadOnlyServing is the end-to-end failure-model test: the
// disk under the live store starts failing fsyncs mid-flight, the next
// write degrades the store, and from then on the server must refuse
// mutations with a machine-readable 503 while queries — including
// concurrent ones, for the race detector — keep serving the last
// committed version, and /healthz reports the degradation.
func TestDegradedReadOnlyServing(t *testing.T) {
	prog, err := hypo.Parse(liveSrc)
	if err != nil {
		t.Fatal(err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	ft := vfs.NewFault(vfs.NewMem(), nil)
	lv, err := hypo.OpenLive(prog, hypo.LiveConfig{
		WALPath:      "/db/wal.log",
		SnapshotPath: "/db/db.snap",
		Logger:       quiet,
		FS:           ft,
	}, hypo.Options{PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pool: lv.Pool(), Live: lv, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		lv.Close()
	})
	cl := ts.Client()

	// Healthy: one commit lands, health is "ok".
	resp, body := post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"version":1`) {
		t.Fatalf("healthy commit: status %d body %s", resp.StatusCode, body)
	}
	if hb := get(t, cl, ts.URL+"/healthz"); !strings.Contains(hb, `"status":"ok"`) {
		t.Fatalf("healthy healthz: %s", hb)
	}

	// The disk breaks: every fsync from now on fails.
	ft.SetScript(vfs.FailNth(vfs.OpSync, 1))

	resp, body = post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(c, a)"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"kind":"read_only"`) {
		t.Fatalf("write over broken disk: status %d body %s (want 503 read_only)", resp.StatusCode, body)
	}

	// Degradation is sticky, reads keep serving version 1, and health
	// reports it — all under concurrent traffic.
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, data := post(t, cl, ts.URL+"/v1/ask", `{"query": "reach(a, c)"}`)
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("degraded reader %d: status %d body %s", r, resp.StatusCode, data)
					return
				}
				if !strings.Contains(string(data), `"result":true`) || !strings.Contains(string(data), `"dataVersion":1`) {
					errCh <- fmt.Errorf("degraded reader %d: lost the committed version: %s", r, data)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			resp, data := post(t, cl, ts.URL+"/v1/facts", `{"retract": ["edge(b, c)"]}`)
			if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), `"kind":"read_only"`) {
				errCh <- fmt.Errorf("degraded writer: status %d body %s (want sticky 503 read_only)", resp.StatusCode, data)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	hb := get(t, cl, ts.URL+"/healthz")
	if !strings.Contains(hb, `"status":"degraded"`) || !strings.Contains(hb, `"reason":"read_only"`) {
		t.Fatalf("degraded healthz: %s", hb)
	}
	if !strings.Contains(hb, `"dataVersion":1`) {
		t.Fatalf("degraded healthz lost the served version: %s", hb)
	}
	if got := metrics.Default.LiveReadOnly.Value(); got != 1 {
		t.Fatalf("live_readonly gauge = %d, want 1", got)
	}
	if degraded, cause := lv.Degraded(); !degraded || cause == "" {
		t.Fatalf("Degraded() = %v, %q", degraded, cause)
	}
}

// TestCoalescedAskSurvivesCommitRace is the regression test for the
// coalesced-waiter/commit race: a waiter that latched onto an identical
// in-flight ask must echo the dataVersion of the flight that actually
// computed the answer — not its own admission-time version — and must
// carry the X-Hdl-Cache: coalesced header. The race is forced: both
// callers are admitted while the data is at version 0, the pool's only
// engine is held hostage so the flight leader blocks on its lease, a
// commit bumps the version to 1, and only then is the engine released —
// so the flight evaluates at version 1 and both answers are valid only
// there.
func TestCoalescedAskSurvivesCommitRace(t *testing.T) {
	// MaxConcurrent must exceed the pool size, or the second caller waits
	// in HTTP admission instead of reaching the cache flight.
	_, ts, lv := newLiveTestServer(t,
		hypo.Options{PoolSize: 1, CacheBytes: 1 << 20},
		Config{MaxConcurrent: 4})
	cl := ts.Client()
	pl := lv.Pool()

	hold := make(chan struct{})
	held := make(chan struct{})
	doDone := make(chan error, 1)
	go func() {
		doDone <- pl.Do(context.Background(), func(e *hypo.Engine) error {
			close(held)
			<-hold
			return nil
		})
	}()
	<-held

	type res struct {
		status int
		body   string
		cache  string
	}
	results := make(chan res, 2)
	ask := func() {
		resp, body := post(t, cl, ts.URL+"/v1/ask", `{"query": "reach(a, c)"}`)
		results <- res{resp.StatusCode, string(body), resp.Header.Get("X-Hdl-Cache")}
	}
	go ask()
	time.Sleep(50 * time.Millisecond) // first caller becomes the flight leader
	go ask()
	time.Sleep(50 * time.Millisecond) // second caller latches onto the flight

	// Commit while both wait. /v1/facts never leases an engine, so it
	// cannot deadlock against the held pool.
	if resp, body := post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`); resp.StatusCode != 200 {
		t.Fatalf("facts: status %d body %s", resp.StatusCode, body)
	}
	close(hold)
	if err := <-doDone; err != nil {
		t.Fatal(err)
	}

	var caches []string
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != 200 {
			t.Fatalf("ask %d: status %d body %s", i, r.status, r.body)
		}
		// reach(a, c) holds at version 1 and at no earlier version, so a
		// stale answer or a stale echoed version is each detectable.
		if !strings.Contains(r.body, `"result":true`) {
			t.Errorf("ask %d answered for the wrong version: %s", i, r.body)
		}
		if !strings.Contains(r.body, `"dataVersion":1`) {
			t.Errorf("ask %d echoed a version its answer is not valid at: %s", i, r.body)
		}
		caches = append(caches, r.cache)
	}
	sort.Strings(caches)
	if got := strings.Join(caches, ","); got != "coalesced,miss" {
		t.Errorf("cache headers %q, want one miss and one coalesced", got)
	}
}

// get fetches a URL and returns the body.
func get(t *testing.T, cl *http.Client, url string) string {
	t.Helper()
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
