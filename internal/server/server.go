// Package server serves hypothetical-Datalog queries over HTTP/JSON,
// backed by a registry of named programs (tenants), each with its own
// engine pool, live store, answer cache and admission quota. It is the
// network surface of the engine: the one-shot hdl CLI wraps an Engine,
// cmd/hdld wraps this package.
//
// # Endpoints
//
//   - POST /v1/ask       {"query": "grad(tony)"}                → {"result": true}
//   - POST /v1/query     {"query": "edge(X, Y)"}                → NDJSON binding stream
//   - POST /v1/askunder  {"query": "...", "add": ["fact(a)"]}   → {"result": bool}
//   - POST /v1/batch     {"queries": [{...}, ...]}              → per-item results, one engine lease
//   - POST /v1/explain   {"query": "grad(tony)"}                → {"provable": bool, "proof": "..."}
//   - POST /v1/facts     {"assert": [...], "retract": [...]}    → {"version": n} (needs a live store)
//   - GET  /healthz      liveness (always 200 while the process runs)
//   - GET  /readyz       readiness (503 once draining)
//   - GET  /debug/vars   expvar: "hypo" (default program) and "hypo_programs" (all)
//
// Every query endpoint also exists tenant-qualified as
// POST /v1/programs/{name}/ask (query, askunder, batch, explain,
// facts); the un-prefixed routes are aliases for the registry's
// default program, so single-program deployments keep working
// unchanged. The admin surface manages the registry itself:
//
//   - PUT    /v1/programs/{name}  {"program": "rules..."}  → create (201) or no-op (200)
//   - GET    /v1/programs/{name}                           → source + version
//   - DELETE /v1/programs/{name}                           → drain, close, remove state dir
//   - GET    /v1/programs                                  → list all programs
//
// # Admission control
//
// Admission is per tenant: at most MaxConcurrent requests evaluate at
// once per program, with up to MaxQueue more waiting for a slot.
// Anything beyond that is shed immediately with 429 + Retry-After. One
// tenant saturating its queue cannot shed or slow another — each
// tenant's slots, queue, cache budget and metric set are private.
//
// # Error mapping
//
// Every failure surface has a distinct status: malformed JSON, bad
// queries and domain violations are 400; an over-long body is 413; an
// expired per-request deadline is 504; a goal-budget abort is 422; shed
// load is 429; an unknown program is 404; a conflicting PUT is 409; a
// draining or closed server is 503; a handler panic is 500. A client
// that disconnects mid-evaluation gets nothing (the nginx-style 499
// appears only in the access log).
package server

import (
	"context"
	"errors"
	"expvar"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/repl"
	"hypodatalog/internal/tenant"
)

// statusClientClosed is the nginx convention for "client closed the
// connection before the response"; it is never sent on the wire, only
// logged.
const statusClientClosed = 499

// Config parameterises a Server. Provide either Registry (multi-tenant)
// or Pool/Live (legacy single program, wrapped into a static registry).
type Config struct {
	// Registry holds the programs this server serves. When set it must
	// already contain its default tenant; Pool and Live are ignored.
	Registry *tenant.Registry

	// Pool evaluates the queries of a single-program server (ignored
	// when Registry is set). Size it to the number of truly concurrent
	// evaluations the host should run (engines are memory-heavy: each
	// holds its own interner and memo tables).
	Pool *hypo.Pool

	// Live, when set, enables POST /v1/facts: runtime mutation of the
	// base EDB with WAL durability. It must be the Live whose Pool is the
	// Pool above. When nil the endpoint answers 501. Ignored when
	// Registry is set.
	Live *hypo.Live

	// MaxConcurrent bounds simultaneous evaluations per tenant (static
	// registry only; a dynamic registry carries its own quota config).
	// Default: Pool.Size().
	MaxConcurrent int

	// MaxQueue bounds requests waiting for an evaluation slot per
	// tenant; beyond it requests are shed with 429. Default:
	// 4 × MaxConcurrent.
	MaxQueue int

	// DefaultTimeout is the per-request evaluation deadline when the
	// request has no "timeout" field. Default: 10s.
	DefaultTimeout time.Duration

	// MaxTimeout clamps the request-supplied "timeout". Default: 60s.
	MaxTimeout time.Duration

	// MaxBodyBytes caps the request body. Default: 1 MiB.
	MaxBodyBytes int64

	// MaxBatch caps the number of queries in one /v1/batch request.
	// Default: 256.
	MaxBatch int

	// RetryAfter is the Retry-After hint attached to 429 and 503
	// responses. Default: 1s.
	RetryAfter time.Duration

	// Logger receives structured access and error logs. Default:
	// slog.Default().
	Logger *slog.Logger

	// Role names this node's replication role in logs and healthz:
	// "primary", "replica", or "" for a standalone server. Replication
	// always concerns the default program only.
	Role string

	// Demand reports that the engines evaluate demand-driven
	// (Options.DemandDriven): healthz carries a "demand": true field so
	// operators can tell which mode answered, and /debug/vars grows the
	// magic_* counters. Purely informational — the pool decides the
	// evaluation mode, this only surfaces it.
	Demand bool

	// ReplPrimary, when set, mounts the replication endpoints
	// (GET /v1/repl/snapshot and /v1/repl/stream) so followers can
	// bootstrap and tail this node. Replication traffic bypasses
	// admission control: streams are long-lived and must not occupy — or
	// be shed from — query evaluation slots.
	ReplPrimary *repl.Primary

	// ReplicaStatus, when set, marks this server a tailing replica: it is
	// polled for healthz/readyz replication state, and reads carrying
	// X-Hdl-Min-Version ahead of the applied version wait for replication
	// to catch up (see MinVersionWait).
	ReplicaStatus func() repl.Status

	// PrimaryURL is the primary's base URL. On a replica, POST /v1/facts
	// is proxied there instead of being refused, so clients can write to
	// any node.
	PrimaryURL string

	// MinVersionWait bounds how long a read carrying X-Hdl-Min-Version
	// may wait for the local store to catch up before being refused with
	// 503 kind "stale". Default: 2s.
	MinVersionWait time.Duration

	// ProxyClient issues proxied write requests; nil means a default
	// client.
	ProxyClient *http.Client

	// ProxyAttemptTimeout bounds each individual forwarded-write attempt
	// to the primary (the inbound request's own deadline still bounds the
	// whole exchange). Default: 5s.
	ProxyAttemptTimeout time.Duration

	// ProxyRetries is how many extra attempts a proxied write gets after
	// a dial-level failure (where the request provably never reached the
	// primary, so retrying cannot double-commit). Default: 2; set
	// negative to disable retries.
	ProxyRetries int

	// ProxyBackoff is the base delay between proxy retries; attempt n
	// waits a jittered ProxyBackoff<<n. Default: 100ms.
	ProxyBackoff time.Duration

	// ProxyBreakerThreshold is how many consecutive proxied-write
	// transport failures open the circuit breaker. Default: 5.
	ProxyBreakerThreshold int

	// ProxyBreakerCooldown is how long an open breaker fast-fails writes
	// before letting a half-open probe through. Default: 5s.
	ProxyBreakerCooldown time.Duration

	// MemoryQuota caps the static default tenant's tracked memory
	// footprint (idle engines + answer cache); past it, requests are shed
	// with 503 over_memory after idle-engine trimming. 0 = unlimited.
	// Ignored when Registry is set (use tenant.Config.MemoryQuota).
	MemoryQuota int64

	// DiskQuota caps the static default tenant's WAL + snapshot bytes;
	// past it, writes are refused with 503 over_disk (reads keep
	// serving). 0 = unlimited. Ignored when Registry is set.
	DiskQuota int64

	// Metrics is the metric set server-level counters (and the static
	// default tenant) report into; nil means metrics.Default.
	Metrics *metrics.Set
}

// Server is the HTTP query server. Create it with New, mount Handler on
// an http.Server, and call BeginDrain when shutting down.
type Server struct {
	cfg  Config
	log  *slog.Logger
	mux  *http.ServeMux
	mets *metrics.Set
	reg  *tenant.Registry
	def  *tenant.Tenant // the default program (never deletable)

	// proxyBr circuit-breaks the replica→primary write proxy; always
	// built (it is inert on nodes that never proxy).
	proxyBr *breaker

	draining atomic.Bool
}

// New validates the config, fills in defaults, and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil && cfg.Pool == nil {
		return nil, errors.New("server: one of Config.Registry and Config.Pool is required")
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.MinVersionWait <= 0 {
		cfg.MinVersionWait = 2 * time.Second
	}
	if cfg.ProxyClient == nil {
		cfg.ProxyClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.ProxyAttemptTimeout <= 0 {
		cfg.ProxyAttemptTimeout = 5 * time.Second
	}
	if cfg.ProxyRetries < 0 {
		cfg.ProxyRetries = 0
	} else if cfg.ProxyRetries == 0 {
		cfg.ProxyRetries = 2
	}
	if cfg.ProxyBackoff <= 0 {
		cfg.ProxyBackoff = 100 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	reg := cfg.Registry
	if reg == nil {
		// Legacy single-program config: wrap the pool/live as a static
		// registry whose only tenant is the default.
		reg = tenant.NewStatic("default", cfg.Pool, cfg.Live, cfg.Metrics, cfg.MaxConcurrent, cfg.MaxQueue)
		if cfg.MemoryQuota > 0 || cfg.DiskQuota > 0 {
			reg.Default().SetQuotas(cfg.MemoryQuota, cfg.DiskQuota)
		}
	}
	def := reg.Default()
	if def == nil {
		return nil, errors.New("server: registry has no default program (create it before serving)")
	}
	metrics.PublishExpvar()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		mets:    cfg.Metrics,
		reg:     reg,
		def:     def,
		proxyBr: newBreaker(cfg.ProxyBreakerThreshold, cfg.ProxyBreakerCooldown, cfg.Metrics),
	}
	// Un-prefixed routes alias the default program.
	s.mux.HandleFunc("POST /v1/ask", s.wrap("ask", false, s.handleAsk))
	s.mux.HandleFunc("POST /v1/query", s.wrap("query", false, s.handleQuery))
	s.mux.HandleFunc("POST /v1/askunder", s.wrap("askunder", false, s.handleAskUnder))
	s.mux.HandleFunc("POST /v1/batch", s.wrap("batch", false, s.handleBatch))
	s.mux.HandleFunc("POST /v1/explain", s.wrap("explain", false, s.handleExplain))
	s.mux.HandleFunc("POST /v1/facts", s.wrap("facts", false, s.handleFacts))
	// Tenant-qualified routes.
	s.mux.HandleFunc("POST /v1/programs/{name}/ask", s.wrap("ask", true, s.handleAsk))
	s.mux.HandleFunc("POST /v1/programs/{name}/query", s.wrap("query", true, s.handleQuery))
	s.mux.HandleFunc("POST /v1/programs/{name}/askunder", s.wrap("askunder", true, s.handleAskUnder))
	s.mux.HandleFunc("POST /v1/programs/{name}/batch", s.wrap("batch", true, s.handleBatch))
	s.mux.HandleFunc("POST /v1/programs/{name}/explain", s.wrap("explain", true, s.handleExplain))
	s.mux.HandleFunc("POST /v1/programs/{name}/facts", s.wrap("facts", true, s.handleFacts))
	// Admin surface: the registry itself.
	s.mux.HandleFunc("GET /v1/programs", s.wrapAdmin("programs_list", s.handleProgramsList))
	s.mux.HandleFunc("PUT /v1/programs/{name}", s.wrapAdmin("program_put", s.handleProgramPut))
	s.mux.HandleFunc("GET /v1/programs/{name}", s.wrapAdmin("program_get", s.handleProgramGet))
	s.mux.HandleFunc("DELETE /v1/programs/{name}", s.wrapAdmin("program_delete", s.handleProgramDelete))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	if cfg.ReplPrimary != nil {
		// Unwrapped: replication streams are long-lived infrastructure
		// traffic, not query requests — no admission slot, no per-request
		// access-log line (the repl package logs lifecycle events).
		cfg.ReplPrimary.Mount(s.mux)
	}
	return s, nil
}

// Handler returns the root handler with all routes mounted.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the registry the server serves from.
func (s *Server) Registry() *tenant.Registry { return s.reg }

// BeginDrain flips the server into draining mode: /readyz starts
// failing (so load balancers stop routing here), new API requests are
// refused with 503, and requests queued for an evaluation slot are woken
// and refused likewise — on every tenant. In-flight evaluations are NOT
// interrupted — cancel their base context after a grace period to force
// them out (see cmd/hdld). BeginDrain is idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.reg.BeginDrain()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Admission errors (mapped to statuses in refuse). Aliases of the
// tenant package's errors — admission is per tenant now.
var (
	errShed     = tenant.ErrShed
	errDraining = tenant.ErrDraining
)

// reqInfo accumulates access-log fields as one request progresses
// through decode, admission and evaluation.
type reqInfo struct {
	endpoint    string
	program     string           // tenant the request resolved to (or asked for)
	query       string           // surface query text (first of a batch)
	outcome     string           // ok | bad_request | deadline | canceled | shed | draining | budget | panic | ...
	status      int              // overrides the written status in logs (e.g. 499)
	bindings    int              // bindings streamed / results returned
	stats       hypo.Stats       // evaluation-work delta for this request
	dataVersion uint64           // data version the request evaluated at (or produced)
	cache       hypo.CacheStatus // how the answer cache served this read
	minVersion  uint64           // X-Hdl-Min-Version the client demanded (0 if absent)
}

// wrap is the middleware around every query handler: tenant resolution
// (the {name} path segment, or the default program for un-prefixed
// routes), request counting on the resolved tenant's metric set, a
// status-recording writer, panic-to-500 recovery, and one structured
// access-log line per request with the program, query, outcome, latency
// and the evaluation-work stats delta.
func (s *Server) wrap(endpoint string, named bool, h func(http.ResponseWriter, *http.Request, *reqInfo, *tenant.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var t *tenant.Tenant
		if named {
			t, _ = s.reg.Get(r.PathValue("name"))
		} else {
			t = s.def
		}
		if t != nil {
			t.Metrics().HTTPRequests.Inc()
		} else {
			s.mets.HTTPRequests.Inc()
		}
		sw := &statusWriter{ResponseWriter: w}
		ri := &reqInfo{endpoint: endpoint}
		if t != nil {
			ri.program = t.Name()
		} else {
			ri.program = r.PathValue("name")
		}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				// The engine (if any was leased) is already back on the
				// pool's free list: Pool.Do and the Pool query methods
				// return it in a defer that runs before this one.
				ri.outcome = "panic"
				s.log.Error("handler panic",
					"endpoint", endpoint, "program", ri.program,
					"panic", p, "stack", string(debug.Stack()))
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			status := ri.status
			if status == 0 {
				status = sw.status
			}
			if status == 0 {
				status = http.StatusOK
			}
			if ri.outcome == "" {
				ri.outcome = "ok"
			}
			s.log.Info("request",
				"endpoint", endpoint,
				"program", ri.program,
				"status", status,
				"outcome", ri.outcome,
				"query", ri.query,
				"elapsed_ms", float64(time.Since(start).Microseconds())/1000,
				"bindings", ri.bindings,
				"goals", ri.stats.Goals,
				"enumerated", ri.stats.Enumerated,
				"table_hits", ri.stats.TableHits,
				"max_depth", ri.stats.MaxDepth,
				"data_version", ri.dataVersion,
				"cache", ri.cache.String(),
				"role", s.cfg.Role,
				"min_version", ri.minVersion,
			)
		}()
		if t == nil {
			ri.outcome = "unknown_program"
			writeError(sw, http.StatusNotFound, "unknown_program",
				"no program named "+strconv.Quote(r.PathValue("name"))+" (PUT /v1/programs/{name} creates one)")
			return
		}
		h(sw, r, ri, t)
	}
}

// wrapAdmin is the wrap variant for registry-admin handlers: same
// logging and panic recovery, no tenant resolution (the handler manages
// tenants itself), counters on the server's own metric set.
func (s *Server) wrapAdmin(endpoint string, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mets.HTTPRequests.Inc()
		sw := &statusWriter{ResponseWriter: w}
		ri := &reqInfo{endpoint: endpoint, program: r.PathValue("name")}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				ri.outcome = "panic"
				s.log.Error("handler panic",
					"endpoint", endpoint, "program", ri.program,
					"panic", p, "stack", string(debug.Stack()))
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			status := ri.status
			if status == 0 {
				status = sw.status
			}
			if status == 0 {
				status = http.StatusOK
			}
			if ri.outcome == "" {
				ri.outcome = "ok"
			}
			s.log.Info("request",
				"endpoint", endpoint,
				"program", ri.program,
				"status", status,
				"outcome", ri.outcome,
				"elapsed_ms", float64(time.Since(start).Microseconds())/1000,
			)
		}()
		h(sw, r, ri)
	}
}

// refuse writes the response for an admission failure.
func (s *Server) refuse(w http.ResponseWriter, ri *reqInfo, err error) {
	retry := strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
	switch {
	case errors.Is(err, errShed):
		ri.outcome = "shed"
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusTooManyRequests, "shed",
			"program at capacity: evaluation slots and admission queue are full")
	case errors.Is(err, tenant.ErrOverMemory):
		ri.outcome = "over_memory"
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusServiceUnavailable, "over_memory",
			"program over its memory quota: "+err.Error())
	case errors.Is(err, errDraining), errors.Is(err, hypo.ErrPoolClosed):
		ri.outcome = "draining"
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		ri.outcome = "deadline"
		writeError(w, http.StatusGatewayTimeout, "deadline",
			"request deadline expired while waiting for an evaluation slot")
	default: // context.Canceled: the client went away while queued
		ri.outcome = "canceled"
		ri.status = statusClientClosed
	}
}

// statusWriter records the status and whether anything was written, and
// forwards Flush so NDJSON streams traverse it.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
