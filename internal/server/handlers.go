package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/live"
	"hypodatalog/internal/tenant"
)

// errClientWrite marks a failed write to the response stream: the client
// went away mid-stream. It is logged as 499, never sent.
var errClientWrite = errors.New("server: client write failed")

// askRequest is the body of /v1/ask and /v1/askunder. Timeout is a Go
// duration string ("250ms", "2s") bounding evaluation; it is clamped to
// Config.MaxTimeout and defaults to Config.DefaultTimeout.
type askRequest struct {
	Query   string   `json:"query"`
	Add     []string `json:"add,omitempty"`
	Timeout string   `json:"timeout,omitempty"`
}

type askResponse struct {
	Result bool `json:"result"`
	// DataVersion is the base-EDB version the query evaluated at (always
	// 0 for a server without a live store).
	DataVersion uint64 `json:"dataVersion"`
}

// queryRequest is the body of /v1/query.
type queryRequest struct {
	Query   string `json:"query"`
	Timeout string `json:"timeout,omitempty"`
}

// The NDJSON lines of a /v1/query response: zero or more binding lines,
// then exactly one done or error line.
type bindingLine struct {
	Binding hypo.Binding `json:"binding"`
}

type doneLine struct {
	Done        bool   `json:"done"`
	Count       int    `json:"count"`
	DataVersion uint64 `json:"dataVersion"`
}

type errorLine struct {
	Error errorBody `json:"error"`
}

// batchRequest is the body of /v1/batch: many queries evaluated on one
// engine lease, in order. Kind selects the operation: "ask" (default),
// "query", or "askunder" (which uses Add).
type batchRequest struct {
	Queries []batchItem `json:"queries"`
	Timeout string      `json:"timeout,omitempty"`
}

type batchItem struct {
	Kind  string   `json:"kind,omitempty"`
	Query string   `json:"query"`
	Add   []string `json:"add,omitempty"`
}

// batchResult is one per-item outcome: exactly one of Result (ask,
// askunder), Bindings (query) or Error is set. Item errors do not fail
// the batch — except evaluation aborts (deadline, cancellation), which
// stop it and mark the remaining items with kind "skipped".
type batchResult struct {
	Result   *bool          `json:"result,omitempty"`
	Bindings []hypo.Binding `json:"bindings,omitempty"`
	Error    *errorBody     `json:"error,omitempty"`
}

type batchResponse struct {
	Results     []batchResult `json:"results"`
	DataVersion uint64        `json:"dataVersion"`
}

// factsRequest is the body of /v1/facts: a transactional mutation batch
// against the base EDB. Asserts apply before retracts within the batch;
// the whole batch is one new data version or nothing.
type factsRequest struct {
	Assert  []string `json:"assert,omitempty"`
	Retract []string `json:"retract,omitempty"`
}

// factsResponse acknowledges a committed batch. By the time the client
// reads it, the commit is fsynced to the WAL and every subsequently
// admitted query evaluates at Version or later.
type factsResponse struct {
	Version uint64 `json:"version"`
	// Changed counts the mutations that altered the fact set (asserting a
	// present fact or retracting an absent one is a committed no-op).
	Changed int `json:"changed"`
}

type errorBody struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorLine{Error: errorBody{Kind: kind, Message: msg}})
}

// decode reads the size-capped JSON body into v, answering 413 for an
// over-long body and 400 for anything else malformed.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, ri *reqInfo, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			ri.outcome = "too_large"
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return false
		}
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", "malformed request: "+err.Error())
		return false
	}
	return true
}

// timeoutFor resolves a request's evaluation deadline: the parsed
// "timeout" field if present, else the default, clamped to the max.
func (s *Server) timeoutFor(spec string) (time.Duration, error) {
	d := s.cfg.DefaultTimeout
	if spec != "" {
		var err error
		d, err = time.ParseDuration(spec)
		if err != nil {
			return 0, fmt.Errorf("bad timeout %q: %v", spec, err)
		}
		if d <= 0 {
			return 0, fmt.Errorf("bad timeout %q: must be positive", spec)
		}
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// statsDelta is the evaluation work done between two Engine.Stats
// snapshots of the same engine.
func statsDelta(before, after hypo.Stats) hypo.Stats {
	return hypo.Stats{
		Goals:      after.Goals - before.Goals,
		TableHits:  after.TableHits - before.TableHits,
		LoopCuts:   after.LoopCuts - before.LoopCuts,
		Enumerated: after.Enumerated - before.Enumerated,
		NegCalls:   after.NegCalls - before.NegCalls,
		MaxDepth:   after.MaxDepth,
		TableSize:  after.TableSize,
		MemBytes:   after.MemBytes - before.MemBytes,
	}
}

// classify maps an evaluation error to its HTTP status, error kind and
// log outcome. The boolean reports whether a response should be written
// at all (false for client-gone cases).
func classify(err error) (status int, kind string, write bool) {
	switch {
	case errors.Is(err, errClientWrite), errors.Is(err, hypo.ErrCanceled),
		errors.Is(err, context.Canceled):
		return statusClientClosed, "canceled", false
	case errors.Is(err, hypo.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline", true
	case errors.Is(err, hypo.ErrMemory):
		return http.StatusUnprocessableEntity, "memory", true
	case errors.Is(err, hypo.ErrBudget):
		return http.StatusUnprocessableEntity, "budget", true
	case errors.Is(err, hypo.ErrPoolClosed):
		return http.StatusServiceUnavailable, "draining", true
	default:
		return http.StatusBadRequest, "bad_request", true
	}
}

// evalError answers a failed evaluation, folding the abort's partial
// work snapshot into the access log.
func (s *Server) evalError(w http.ResponseWriter, ri *reqInfo, err error) {
	var ae *hypo.AbortError
	if errors.As(err, &ae) && ri.stats == (hypo.Stats{}) {
		ri.stats = ae.Stats
	}
	status, kind, write := classify(err)
	ri.outcome = kind
	if !write {
		ri.status = status
		return
	}
	writeError(w, status, kind, err.Error())
}

// run is the shared admit-lease-evaluate skeleton of the non-streaming
// handlers: it reserves a slot on the tenant's admission quota, leases
// an engine from the tenant's pool, runs fn with the engine and records
// the evaluation-work delta.
func (s *Server) run(ctx context.Context, ri *reqInfo, t *tenant.Tenant, fn func(e *hypo.Engine) error) error {
	release, err := t.Admit(ctx)
	if err != nil {
		return err
	}
	defer release()
	return t.Pool().Do(ctx, func(e *hypo.Engine) error {
		ri.dataVersion = e.DataVersion()
		before := e.Stats()
		defer func() { ri.stats = statsDelta(before, e.Stats()) }()
		return fn(e)
	})
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant) {
	var req askRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	ri.query = req.Query
	if len(req.Add) > 0 {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", `"add" is for /v1/askunder`)
		return
	}
	s.answerAsk(w, r, ri, t, req)
}

func (s *Server) handleAskUnder(w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant) {
	var req askRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	ri.query = req.Query
	s.answerAsk(w, r, ri, t, req)
}

// answerAsk evaluates a ground ask (optionally under hypothetical adds)
// and answers {"result": bool}. It goes through the pool's Info methods
// so the answer cache sits above the engine lease: a hit or coalesced
// read still takes an admission slot (it is HTTP work) but no engine.
func (s *Server) answerAsk(w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant, req askRequest) {
	d, err := s.timeoutFor(req.Timeout)
	if err != nil {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	if !s.gateMinVersion(ctx, w, r, ri, t) {
		return
	}
	release, err := t.Admit(ctx)
	if err != nil {
		s.refuse(w, ri, err)
		return
	}
	defer release()
	var result bool
	var info hypo.ReadInfo
	if len(req.Add) > 0 {
		result, info, err = t.Pool().AskUnderInfoCtx(ctx, req.Query, req.Add...)
	} else {
		result, info, err = t.Pool().AskInfoCtx(ctx, req.Query)
	}
	ri.dataVersion = info.DataVersion
	ri.stats = info.Stats
	ri.cache = info.Cache
	if err != nil {
		s.evalError(w, ri, err)
		return
	}
	setCacheHeader(w, info.Cache)
	writeJSON(w, askResponse{Result: result, DataVersion: info.DataVersion})
}

// setCacheHeader surfaces how the answer cache served the request. The
// header is absent when no cache is configured.
func setCacheHeader(w http.ResponseWriter, st hypo.CacheStatus) {
	if st != hypo.CacheBypass {
		w.Header().Set("X-Hdl-Cache", st.String())
	}
}

// handleQuery streams bindings as NDJSON: one {"binding": {...}} line
// per answer as it is proved, then a terminal {"done": true, "count": n}
// line — or an {"error": ...} line if evaluation aborted after the
// stream began. Errors before the first binding use a proper HTTP
// status instead.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant) {
	var req queryRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	ri.query = req.Query
	d, err := s.timeoutFor(req.Timeout)
	if err != nil {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	if !s.gateMinVersion(ctx, w, r, ri, t) {
		return
	}
	release, err := t.Admit(ctx)
	if err != nil {
		s.refuse(w, ri, err)
		return
	}
	defer release()

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	n := 0
	var info hypo.ReadInfo
	// QueryEachInfoCtx guarantees DataVersion and Cache are set before
	// the first yield, so the headers can go out ahead of the stream.
	err = t.Pool().QueryEachInfoCtx(ctx, req.Query, &info, func(b hypo.Binding) error {
		if n == 0 {
			setCacheHeader(w, info.Cache)
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		if err := enc.Encode(bindingLine{Binding: b}); err != nil {
			return fmt.Errorf("%w: %v", errClientWrite, err)
		}
		n++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	ri.bindings = n
	ri.dataVersion = info.DataVersion
	ri.stats = info.Stats
	ri.cache = info.Cache
	if err != nil {
		if n == 0 {
			s.evalError(w, ri, err)
			return
		}
		// The stream is already under way as a 200; report the abort
		// in-band as the terminal line.
		_, kind, write := classify(err)
		ri.outcome = kind
		if write {
			_ = enc.Encode(errorLine{Error: errorBody{Kind: kind, Message: err.Error()}})
		} else {
			ri.status = statusClientClosed
		}
		return
	}
	if n == 0 {
		setCacheHeader(w, info.Cache)
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	_ = enc.Encode(doneLine{Done: true, Count: n, DataVersion: info.DataVersion})
}

// handleBatch evaluates many queries on a single engine lease — one
// admission slot, no interleaving with other traffic, warm memo tables
// shared across the items. The response is always 200 with per-item
// results once evaluation starts; an abort (deadline, cancellation)
// stops the batch, reports itself on the item it hit, and marks the
// rest "skipped".
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant) {
	var req batchRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if len(req.Queries) == 0 {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", `"queries" must be non-empty`)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d exceeds the %d-query limit", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	ri.query = req.Queries[0].Query
	d, err := s.timeoutFor(req.Timeout)
	if err != nil {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	if !s.gateMinVersion(ctx, w, r, ri, t) {
		return
	}

	results := make([]batchResult, len(req.Queries))
	err = s.run(ctx, ri, t, func(e *hypo.Engine) error {
		for i, item := range req.Queries {
			res, abort := evalBatchItem(ctx, e, item)
			results[i] = res
			if abort != nil {
				for j := i + 1; j < len(req.Queries); j++ {
					results[j] = batchResult{Error: &errorBody{
						Kind: "skipped", Message: "not evaluated: batch aborted earlier",
					}}
				}
				// Client gone: stop and close without a body.
				if _, _, write := classify(abort); !write {
					return abort
				}
				break
			}
		}
		return nil
	})
	switch {
	case err == nil:
		ri.bindings = len(results)
		writeJSON(w, batchResponse{Results: results, DataVersion: ri.dataVersion})
	case errors.Is(err, errShed), errors.Is(err, errDraining):
		s.refuse(w, ri, err)
	default:
		s.evalError(w, ri, err)
	}
}

// evalBatchItem runs one batch entry on the leased engine. Item-level
// problems (bad query, unknown kind, budget) land in the result; an
// abort is also returned so the batch stops.
func evalBatchItem(ctx context.Context, e *hypo.Engine, item batchItem) (batchResult, error) {
	kind := item.Kind
	if kind == "" {
		kind = "ask"
	}
	var res batchResult
	var err error
	switch kind {
	case "ask":
		var ok bool
		ok, err = e.AskCtx(ctx, item.Query)
		res.Result = &ok
	case "askunder":
		var ok bool
		ok, err = e.AskUnderCtx(ctx, item.Query, item.Add...)
		res.Result = &ok
	case "query":
		res.Bindings, err = e.QueryCtx(ctx, item.Query)
		if res.Bindings == nil {
			res.Bindings = []hypo.Binding{}
		}
	default:
		err = fmt.Errorf("unknown kind %q (want ask, query or askunder)", kind)
	}
	if err != nil {
		res = batchResult{}
		_, ekind, _ := classify(err)
		res.Error = &errorBody{Kind: ekind, Message: err.Error()}
		if errors.Is(err, hypo.ErrCanceled) || errors.Is(err, hypo.ErrDeadline) {
			return res, err
		}
	}
	return res, nil
}

// handleFacts commits a mutation batch against the live store. It does
// not take an evaluation slot — commits serialise inside Live.Apply and
// never lease an engine — but a draining server refuses new writes like
// it refuses new queries.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant) {
	if s.cfg.Role == "replica" && s.cfg.PrimaryURL != "" && t == s.def {
		// Replicas never commit locally — their store is written only by
		// the replication stream. Forward the write so clients can talk to
		// any node.
		if s.draining.Load() {
			s.refuse(w, ri, errDraining)
			return
		}
		s.proxyFacts(w, r, ri)
		return
	}
	if t.Live() == nil {
		ri.outcome = "not_enabled"
		writeError(w, http.StatusNotImplemented, "not_enabled",
			"runtime fact mutation is disabled: start the server with a WAL (hdld -wal)")
		return
	}
	if s.draining.Load() || t.Draining() {
		s.refuse(w, ri, errDraining)
		return
	}
	if err := t.CheckDiskQuota(); err != nil {
		// Disk quota gates only the write path: reads (and retractions'
		// eventual compaction) keep working, so the right client move is
		// to retract or wait for compaction, then retry.
		ri.outcome = "over_disk"
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeError(w, http.StatusServiceUnavailable, "over_disk", err.Error())
		return
	}
	var req factsRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if len(req.Assert)+len(req.Retract) == 0 {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request",
			`at least one of "assert" and "retract" must be non-empty`)
		return
	}
	if n := len(req.Assert); n > 0 {
		ri.query = req.Assert[0]
	} else {
		ri.query = req.Retract[0]
	}
	ms, err := hypo.ParseMutations(req.Assert, req.Retract)
	if err != nil {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	info, err := t.Live().Apply(ms)
	if err != nil {
		if errors.Is(err, live.ErrClosed) {
			ri.outcome = "draining"
			writeError(w, http.StatusServiceUnavailable, "draining", "live store is closed")
			return
		}
		// A degraded store refuses writes but keeps serving reads; the
		// machine-readable kind lets clients fail over their write path
		// without abandoning this replica for queries.
		if errors.Is(err, live.ErrReadOnly) {
			ri.outcome = "read_only"
			writeError(w, http.StatusServiceUnavailable, "read_only", err.Error())
			return
		}
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ri.dataVersion = info.Version
	ri.bindings = info.Changed
	writeJSON(w, factsResponse{Version: info.Version, Changed: info.Changed})
}

// handleHealthz reports liveness. A server whose store degraded to
// read-only is still alive — it answers queries at the last committed
// version — so the response stays 200, with status "degraded" and a
// machine-readable reason for operators and write-path routers. The
// top-level status/dataVersion describe the default program (the legacy
// single-program shape); the "programs" map adds the same per tenant.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"ok": true, "status": "ok", "dataVersion": s.def.Version()}
	if s.cfg.Role != "" {
		resp["role"] = s.cfg.Role
	}
	if s.cfg.Demand {
		resp["demand"] = true
	}
	if degraded, cause := s.def.Degraded(); degraded {
		resp["status"] = "degraded"
		resp["reason"] = "read_only"
		resp["detail"] = cause
		if s.def.Recovering() {
			// A background prober is retrying the write path (transient
			// cause, e.g. a full disk); writes may come back without a
			// restart. Sticky corruption shows no recovering flag.
			resp["recovering"] = true
		}
	}
	programs := make(map[string]any)
	for _, t := range s.reg.List() {
		// Each program reports its own degraded/read-only state, not just
		// the default's: a write-path router watching healthz must see
		// which tenants refuse writes.
		st := "ok"
		var detail string
		if degraded, cause := t.Degraded(); degraded {
			st, detail = "degraded", cause
		}
		if t.Draining() {
			st = "draining"
		}
		p := map[string]any{"status": st, "dataVersion": t.Version()}
		if detail != "" {
			p["reason"] = "read_only"
			p["detail"] = detail
			if t.Recovering() {
				p["recovering"] = true
			}
		}
		programs[t.Name()] = p
	}
	resp["programs"] = programs
	if s.cfg.ReplicaStatus != nil {
		st := s.cfg.ReplicaStatus()
		repl := map[string]any{
			"connected":      st.Connected,
			"applied":        st.Applied,
			"primaryVersion": st.Primary,
			"lag":            st.Lag(),
			"bootstraps":     st.Bootstraps,
			"reconnects":     st.Reconnects,
		}
		if st.LastError != "" {
			repl["lastError"] = st.LastError
		}
		resp["replication"] = repl
		if !st.Connected && resp["status"] == "ok" {
			// Still serving (at the applied version) but no longer tracking
			// the primary — the operator signal that this follower is adrift.
			resp["status"] = "degraded"
			resp["reason"] = "repl_disconnected"
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]bool{"ready": false, "draining": true})
		return
	}
	if s.cfg.ReplicaStatus != nil {
		// A replica that has never caught up to its primary serves stale —
		// possibly empty — data; keep it out of the load balancer until the
		// first sync completes. Ready is sticky, so transient lag afterwards
		// does not flap readiness (min-version gating handles per-request
		// freshness).
		if st := s.cfg.ReplicaStatus(); !st.Ready {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]bool{"ready": false, "syncing": true})
			return
		}
	}
	writeJSON(w, map[string]bool{"ready": true})
}
