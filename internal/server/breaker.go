package server

import (
	"sync"
	"time"

	"hypodatalog/internal/metrics"
)

// breaker states, exported to metrics as proxy_breaker_state.
const (
	breakerClosed int64 = iota
	breakerHalfOpen
	breakerOpen
)

// breaker is the circuit breaker on the replica→primary write proxy.
// While the primary answers, it is closed and invisible. After
// `threshold` consecutive transport failures it opens: proxied writes
// fail fast with 503 primary_unreachable — no dial, no timeout wait —
// until `cooldown` elapses. Then exactly one request is let through as
// a half-open probe; its success closes the breaker, its failure
// re-opens it for another cooldown. All methods are safe for
// concurrent use.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
	mets      *metrics.Set

	mu       sync.Mutex
	state    int64
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, mets *metrics.Set) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, mets: mets}
}

// allow reports whether a proxied write may attempt the network.
// probe is true when this caller is the single half-open probe; it MUST
// report its outcome via success(true) or failure(true).
func (b *breaker) allow() (proceed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.setStateLocked(breakerHalfOpen)
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// success records a working primary: any success closes the breaker.
func (b *breaker) success(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	b.failures = 0
	if b.state != breakerClosed {
		b.setStateLocked(breakerClosed)
	}
}

// failure records a transport failure. A failed probe re-opens
// immediately; while closed, `threshold` consecutive failures open.
func (b *breaker) failure(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		b.openLocked()
		return
	}
	if b.state != breakerClosed {
		return
	}
	if b.failures++; b.failures >= b.threshold {
		b.openLocked()
	}
}

func (b *breaker) openLocked() {
	b.failures = 0
	b.openedAt = b.now()
	b.setStateLocked(breakerOpen)
	b.mets.ProxyBreakerOpens.Inc()
}

func (b *breaker) setStateLocked(st int64) {
	b.state = st
	b.mets.ProxyBreakerState.Set(st)
}
