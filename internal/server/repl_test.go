package server

// Tests for the replication-aware server surface: X-Hdl-Min-Version
// read-your-writes gating, write proxying from replicas, and the
// role/replication fields in healthz/readyz.

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/repl"
)

// askMin posts an ask with an X-Hdl-Min-Version header.
func askMin(t *testing.T, url, query, min string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/ask",
		strings.NewReader(`{"query": "`+query+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if min != "" {
		req.Header.Set("X-Hdl-Min-Version", min)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestMinVersionGate(t *testing.T) {
	_, ts, lv := newLiveTestServer(t, hypo.Options{}, Config{MinVersionWait: 200 * time.Millisecond})

	// At or below the current version: passes immediately.
	resp, body := askMin(t, ts.URL, "reach(a, b)", "0")
	if resp.StatusCode != 200 || !strings.Contains(body, `"result":true`) {
		t.Fatalf("min=0: status %d body %s", resp.StatusCode, body)
	}

	// Ahead of the current version with no write coming: 503 stale with
	// Retry-After and the version the node IS at.
	resp, body = askMin(t, ts.URL, "reach(a, b)", "99")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, `"stale"`) {
		t.Fatalf("min=99: status %d body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Hdl-Version") != "0" {
		t.Fatalf("stale refusal headers: Retry-After=%q X-Hdl-Version=%q",
			resp.Header.Get("Retry-After"), resp.Header.Get("X-Hdl-Version"))
	}

	// A malformed header is the client's fault.
	resp, _ = askMin(t, ts.URL, "reach(a, b)", "not-a-number")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed min version: status %d, want 400", resp.StatusCode)
	}

	// Ahead of the current version with the write landing mid-wait: the
	// read parks, wakes on the commit, and answers at the new version.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		ms, err := hypo.ParseMutations([]string{"edge(b, c)"}, nil)
		if err == nil {
			_, err = lv.Apply(ms)
		}
		if err != nil {
			t.Errorf("apply during wait: %v", err)
		}
	}()
	resp, body = askMin(t, ts.URL, "reach(a, c)", "1")
	<-done
	if resp.StatusCode != 200 || !strings.Contains(body, `"result":true`) {
		t.Fatalf("min=1 with concurrent write: status %d body %s", resp.StatusCode, body)
	}
}

func TestProxyFactsToPrimary(t *testing.T) {
	// A real primary with a live store...
	_, primaryTS, primaryLive := newLiveTestServer(t, hypo.Options{}, Config{})
	// ...and a replica-role server pointing at it. The replica has its
	// own (empty) live store; the write must not land there.
	_, replicaTS, replicaLive := newLiveTestServer(t, hypo.Options{},
		Config{Role: "replica", PrimaryURL: primaryTS.URL})

	resp, body := post(t, replicaTS.Client(), replicaTS.URL+"/v1/facts",
		`{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("proxied write: status %d body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Hdl-Proxied") != "primary" {
		t.Fatalf("X-Hdl-Proxied = %q, want primary", resp.Header.Get("X-Hdl-Proxied"))
	}
	if !strings.Contains(string(body), `"version":1`) {
		t.Fatalf("proxied response did not relay the committed version: %s", body)
	}
	if v := primaryLive.Version(); v != 1 {
		t.Fatalf("primary version = %d, want 1", v)
	}
	if v := replicaLive.Version(); v != 0 {
		t.Fatalf("replica version = %d, want 0 (write must not land locally)", v)
	}

	// Validation errors surface to the caller through the proxy.
	resp, body = post(t, replicaTS.Client(), replicaTS.URL+"/v1/facts",
		`{"assert": ["reach(a, b)"]}`)
	if resp.StatusCode == 200 || !strings.Contains(string(body), "intensional") {
		t.Fatalf("invalid proxied write: status %d body %s", resp.StatusCode, body)
	}
}

func TestProxyFactsPrimaryUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, replicaTS, _ := newLiveTestServer(t, hypo.Options{},
		Config{Role: "replica", PrimaryURL: dead.URL})
	resp, body := post(t, replicaTS.Client(), replicaTS.URL+"/v1/facts",
		`{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(string(body), "primary_unreachable") {
		t.Fatalf("dead primary: status %d body %s", resp.StatusCode, body)
	}
}

func TestHealthzReportsReplication(t *testing.T) {
	st := repl.Status{Connected: true, Ready: true, Applied: 7, Primary: 9, Reconnects: 1}
	_, ts, _ := newLiveTestServer(t, hypo.Options{}, Config{
		Role:          "replica",
		ReplicaStatus: func() repl.Status { return st },
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Status      string `json:"status"`
		Role        string `json:"role"`
		Replication struct {
			Connected      bool   `json:"connected"`
			Applied        uint64 `json:"applied"`
			PrimaryVersion uint64 `json:"primaryVersion"`
			Lag            uint64 `json:"lag"`
		} `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Role != "replica" || !got.Replication.Connected ||
		got.Replication.Applied != 7 || got.Replication.PrimaryVersion != 9 || got.Replication.Lag != 2 {
		t.Fatalf("healthz = %+v", got)
	}
	if got.Status != "ok" {
		t.Fatalf("status = %q, want ok", got.Status)
	}
}

func TestHealthzDegradedWhenDisconnected(t *testing.T) {
	_, ts, _ := newLiveTestServer(t, hypo.Options{}, Config{
		Role:          "replica",
		ReplicaStatus: func() repl.Status { return repl.Status{Connected: false, LastError: "conn refused"} },
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["status"] != "degraded" {
		t.Fatalf("disconnected replica healthz status = %v, want degraded", got["status"])
	}
}

func TestReadyzSyncingReplica(t *testing.T) {
	ready := false
	_, ts, _ := newLiveTestServer(t, hypo.Options{}, Config{
		Role:          "replica",
		ReplicaStatus: func() repl.Status { return repl.Status{Ready: ready} },
	})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("syncing replica readyz = %d, want 503", resp.StatusCode)
	}
	ready = true
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up replica readyz = %d, want 200", resp.StatusCode)
	}
}

// TestPrimaryEndpointsMounted: a server built with a ReplPrimary serves
// the replication endpoints on its own mux, outside admission.
func TestPrimaryEndpointsMounted(t *testing.T) {
	prog, err := hypo.Parse(liveSrc)
	if err != nil {
		t.Fatal(err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	dir := t.TempDir()
	lv, err := hypo.OpenLive(prog, hypo.LiveConfig{
		WALPath: filepath.Join(dir, "wal.log"),
		NoSync:  true,
		Logger:  quiet,
	}, hypo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := repl.NewPrimary(repl.PrimaryConfig{
		Source:    lv.Store(),
		RulesHash: prog.RulesHash(),
		Logger:    quiet,
	})
	s, err := New(Config{Pool: lv.Pool(), Live: lv, Role: "primary", ReplPrimary: p, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		lv.Close()
	})

	resp, err := http.Get(ts.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("X-Hdl-Version") != "0" {
		t.Fatalf("snapshot: status %d X-Hdl-Version %q", resp.StatusCode, resp.Header.Get("X-Hdl-Version"))
	}
	resp, err = http.Get(ts.URL + "/v1/repl/stream?from=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stream from ahead: status %d, want 409", resp.StatusCode)
	}
}
