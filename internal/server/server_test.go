package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/tenant"
	"hypodatalog/internal/workload"
)

// uniSrc is the paper's university database: grad(tony) holds outright,
// grad(mary) only under a hypothetical second course.
const uniSrc = `
take(tony, his101).
take(tony, eng201).
take(mary, his101).
grad(S) :- take(S, his101), take(S, eng201).
`

// hardSrc is a hard Hamiltonian instance: an 11-node complete core plus
// an isolated 12th node, so "yes" is false but refuting it must exhaust
// a near-factorial search. Tests that need "yes" to run until its
// deadline must evaluate with ModeUniform AND NoTabling — the memo
// table is keyed by hypothetical state, which collapses the search to a
// subset-style dynamic program that finishes in ~100ms. The edge
// relation still enumerates instantly: 110 tuples, the large binding
// set for the streaming tests.
var hardSrc = func() string {
	g := workload.Digraph{N: 12}
	for i := 0; i < 11; i++ {
		for j := 0; j < 11; j++ {
			if i != j {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return workload.HamiltonianProgram(g)
}()

const hardEdges = 110

// newTestServer builds a pool over src and a server over the pool,
// mounted on an httptest.Server. Logs are discarded to keep test output
// readable; pass a cfg.Logger to inspect them.
func newTestServer(t *testing.T, src string, opts hypo.Options, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	prog, err := hypo.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := hypo.NewPool(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = pool
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return s, ts
}

// post sends a JSON body and returns the response and its bytes.
func post(t *testing.T, client *http.Client, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// waitGoroutines polls until the goroutine count settles at or below
// want, failing the test if it never does.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines settled at %d, want <= %d (leak)", n, want)
}

func TestAskEndpoints(t *testing.T) {
	_, ts := newTestServer(t, uniSrc, hypo.Options{}, Config{})
	cl := ts.Client()

	resp, body := post(t, cl, ts.URL+"/v1/ask", `{"query": "grad(tony)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("grad(tony): status %d body %s", resp.StatusCode, body)
	}
	resp, body = post(t, cl, ts.URL+"/v1/ask", `{"query": "grad(mary)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":false`) {
		t.Errorf("grad(mary): status %d body %s", resp.StatusCode, body)
	}
	resp, body = post(t, cl, ts.URL+"/v1/askunder",
		`{"query": "grad(mary)", "add": ["take(mary, eng201)"]}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("askunder grad(mary): status %d body %s", resp.StatusCode, body)
	}
	// Hypothetical worlds are per-request: the add above must not leak.
	resp, body = post(t, cl, ts.URL+"/v1/ask", `{"query": "grad(mary)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":false`) {
		t.Errorf("grad(mary) after askunder: status %d body %s", resp.StatusCode, body)
	}
	// Inline hypothetical syntax works through /v1/ask too.
	resp, body = post(t, cl, ts.URL+"/v1/ask",
		`{"query": "grad(mary)[add: take(mary, eng201)]"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("inline hyp: status %d body %s", resp.StatusCode, body)
	}
}

// TestQueryStreamsNDJSON drives the streaming endpoint over the
// 110-tuple edge relation of the hard Hamiltonian instance and checks
// every line parses, the count matches, and the same answer set comes
// back from a batch query.
func TestQueryStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, hardSrc, hypo.Options{Mode: hypo.ModeUniform}, Config{})
	cl := ts.Client()

	resp, err := cl.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"query": "edge(X, Y)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	bindings := 0
	done := false
	seen := map[string]bool{}
	for sc.Scan() {
		var line struct {
			Binding map[string]string `json:"binding"`
			Done    bool              `json:"done"`
			Count   int               `json:"count"`
			Error   *struct{ Kind string }
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != nil:
			t.Fatalf("error line: %s", sc.Text())
		case line.Done:
			done = true
			if line.Count != bindings {
				t.Errorf("done count = %d, saw %d bindings", line.Count, bindings)
			}
		default:
			bindings++
			seen[line.Binding["X"]+">"+line.Binding["Y"]] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("stream ended without a done line")
	}
	if bindings != hardEdges || len(seen) != hardEdges {
		t.Errorf("streamed %d bindings (%d distinct), want %d", bindings, len(seen), hardEdges)
	}

	// The batch endpoint must agree with the stream.
	resp2, body := post(t, cl, ts.URL+"/v1/batch",
		`{"queries": [{"kind": "query", "query": "edge(X, Y)"}]}`)
	if resp2.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp2.StatusCode, body)
	}
	var br struct {
		Results []struct {
			Bindings []map[string]string `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 1 || len(br.Results[0].Bindings) != hardEdges {
		t.Errorf("batch bindings = %d, want %d", len(br.Results[0].Bindings), hardEdges)
	}
}

// TestQueryGroundStreaming checks the NDJSON shape of a ground query:
// one empty binding when true, none when false.
func TestQueryGroundStreaming(t *testing.T) {
	_, ts := newTestServer(t, uniSrc, hypo.Options{}, Config{})
	cl := ts.Client()

	_, body := post(t, cl, ts.URL+"/v1/query", `{"query": "grad(tony)"}`)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"binding":{}`) ||
		!strings.Contains(lines[1], `"count":1`) {
		t.Errorf("ground true stream:\n%s", body)
	}
	_, body = post(t, cl, ts.URL+"/v1/query", `{"query": "grad(mary)"}`)
	lines = strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"count":0`) {
		t.Errorf("ground false stream:\n%s", body)
	}
}

// TestErrorStatuses pins every failure surface to its distinct status.
func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, uniSrc, hypo.Options{}, Config{MaxBodyBytes: 512})
	cl := ts.Client()
	cases := []struct {
		name, path, body string
		want             int
		kind             string
	}{
		{"malformed json", "/v1/ask", `{"query":`, 400, "bad_request"},
		{"unknown field", "/v1/ask", `{"quer": "grad(tony)"}`, 400, "bad_request"},
		{"parse error", "/v1/ask", `{"query": "grad("}`, 400, "bad_request"},
		{"domain violation", "/v1/ask", `{"query": "grad(nobody)"}`, 400, "bad_request"},
		{"non-ground ask", "/v1/ask", `{"query": "grad(S)"}`, 400, "bad_request"},
		{"bad timeout", "/v1/ask", `{"query": "grad(tony)", "timeout": "soon"}`, 400, "bad_request"},
		{"add on ask", "/v1/ask", `{"query": "grad(tony)", "add": ["take(mary, his101)"]}`, 400, "bad_request"},
		{"non-ground add", "/v1/askunder", `{"query": "grad(mary)", "add": ["take(mary, C)"]}`, 400, "bad_request"},
		{"huge body", "/v1/ask", `{"query": "` + strings.Repeat("x", 600) + `"}`, 413, "too_large"},
		{"empty batch", "/v1/batch", `{"queries": []}`, 400, "bad_request"},
		{"query parse error", "/v1/query", `{"query": "???"}`, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, cl, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			if tc.kind != "" && !strings.Contains(string(body), `"kind":"`+tc.kind+`"`) {
				t.Errorf("missing kind %q: %s", tc.kind, body)
			}
		})
	}

	// Method and route errors come from the Go 1.22 mux.
	resp, err := cl.Get(ts.URL + "/v1/ask")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ask = %d, want 405", resp.StatusCode)
	}
	resp, _ = post(t, cl, ts.URL+"/v1/nosuch", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /v1/nosuch = %d, want 404", resp.StatusCode)
	}
}

// TestDeadlineAndBudgetStatuses runs intractable queries into the two
// server-side abort surfaces: the per-request deadline (504) and the
// engine goal budget (422).
func TestDeadlineAndBudgetStatuses(t *testing.T) {
	t.Run("deadline", func(t *testing.T) {
		_, ts := newTestServer(t, hardSrc, hypo.Options{Mode: hypo.ModeUniform, NoTabling: true}, Config{})
		for _, path := range []string{"/v1/ask", "/v1/query"} {
			resp, body := post(t, ts.Client(), ts.URL+path, `{"query": "yes", "timeout": "60ms"}`)
			if resp.StatusCode != http.StatusGatewayTimeout {
				t.Errorf("%s status %d, want 504: %s", path, resp.StatusCode, body)
			}
			if !strings.Contains(string(body), `"kind":"deadline"`) {
				t.Errorf("%s missing deadline kind: %s", path, body)
			}
		}
	})
	t.Run("budget", func(t *testing.T) {
		_, ts := newTestServer(t, hardSrc, hypo.Options{Mode: hypo.ModeUniform, MaxGoals: 100}, Config{})
		resp, body := post(t, ts.Client(), ts.URL+"/v1/ask", `{"query": "yes"}`)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status %d, want 422: %s", resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"kind":"budget"`) {
			t.Errorf("missing budget kind: %s", body)
		}
	})
}

// TestLoadShed proves the admission queue bound holds: with 1 slot and a
// 1-deep queue, a 16-request burst of slow queries must shed at least 13
// requests with 429 + Retry-After immediately, and no goroutines may
// outlive the burst.
func TestLoadShed(t *testing.T) {
	_, ts := newTestServer(t, hardSrc, hypo.Options{Mode: hypo.ModeUniform, NoTabling: true, PoolSize: 1},
		Config{MaxConcurrent: 1, MaxQueue: 1})
	cl := ts.Client()
	shedBefore := metrics.Default.HTTPShed.Value()
	before := runtime.NumGoroutine()

	const burst = 16
	var wg sync.WaitGroup
	var shed, timedOut, other atomic.Int64
	var retryAfterSeen atomic.Bool
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := cl.Post(ts.URL+"/v1/ask", "application/json",
				strings.NewReader(`{"query": "yes", "timeout": "300ms"}`))
			if err != nil {
				other.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") != "" {
					retryAfterSeen.Store(true)
				}
			case http.StatusGatewayTimeout:
				timedOut.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := shed.Load(); got < burst-3 {
		t.Errorf("shed %d of %d, want >= %d (queue bound broken)", got, burst, burst-3)
	}
	if timedOut.Load()+shed.Load()+other.Load() != burst {
		t.Errorf("responses don't add up: shed=%d 504=%d other=%d",
			shed.Load(), timedOut.Load(), other.Load())
	}
	if other.Load() != 0 {
		t.Errorf("%d unexpected responses", other.Load())
	}
	if !retryAfterSeen.Load() {
		t.Error("429 responses carried no Retry-After header")
	}
	if d := metrics.Default.HTTPShed.Value() - shedBefore; d < int64(burst-3) {
		t.Errorf("http_shed grew by %d, want >= %d", d, burst-3)
	}
	ts.Client().Transport.(*http.Transport).CloseIdleConnections()
	waitGoroutines(t, before+8)
}

// TestConcurrentMixedTraffic hammers all endpoints from 64 concurrent
// clients — including clients that hang up mid-evaluation — and then
// checks nothing leaked.
func TestConcurrentMixedTraffic(t *testing.T) {
	src := uniSrc + workload.ParityProgram(6) + hardSrc
	_, ts := newTestServer(t, src, hypo.Options{Mode: hypo.ModeUniform, NoTabling: true, PoolSize: 4},
		Config{MaxConcurrent: 4, MaxQueue: 256})
	cl := ts.Client()
	before := runtime.NumGoroutine()

	const clients = 64
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0:
				resp, body := post(t, cl, ts.URL+"/v1/ask", `{"query": "even"}`)
				if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
					failures.Add(1)
				}
			case 1:
				resp, body := post(t, cl, ts.URL+"/v1/query", `{"query": "take(S, C)"}`)
				if resp.StatusCode != 200 || !strings.Contains(string(body), `"done":true`) {
					failures.Add(1)
				}
			case 2:
				resp, body := post(t, cl, ts.URL+"/v1/askunder",
					`{"query": "grad(mary)", "add": ["take(mary, eng201)"]}`)
				if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
					failures.Add(1)
				}
			case 3:
				// A client that gives up mid-evaluation: the server should
				// abort the query and log 499, not hang or crash.
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/ask",
					strings.NewReader(`{"query": "yes", "timeout": "2s"}`))
				req.Header.Set("Content-Type", "application/json")
				resp, err := cl.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Errorf("%d requests got wrong answers", n)
	}
	ts.Client().Transport.(*http.Transport).CloseIdleConnections()
	waitGoroutines(t, before+8)
}

// TestGracefulDrain: once BeginDrain is called, readiness fails, new and
// queued requests are refused with 503, and the in-flight query runs to
// its own completion rather than being killed.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, hardSrc, hypo.Options{Mode: hypo.ModeUniform, NoTabling: true, PoolSize: 1},
		Config{MaxConcurrent: 1, MaxQueue: 4})
	cl := ts.Client()

	type result struct {
		status  int
		elapsed time.Duration
	}
	inflight := make(chan result, 1)
	queued := make(chan result, 1)
	fire := func(ch chan result, timeout string) {
		start := time.Now()
		resp, err := cl.Post(ts.URL+"/v1/ask", "application/json",
			strings.NewReader(`{"query": "yes", "timeout": "`+timeout+`"}`))
		if err != nil {
			ch <- result{status: -1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ch <- result{resp.StatusCode, time.Since(start)}
	}
	go fire(inflight, "500ms")
	time.Sleep(100 * time.Millisecond) // let it occupy the slot
	go fire(queued, "2s")
	time.Sleep(100 * time.Millisecond) // let it enter the queue

	s.BeginDrain()

	// Readiness flips.
	resp, err := cl.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	// Liveness does not.
	resp, err = cl.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz during drain = %d, want 200", resp.StatusCode)
	}
	// New work is refused.
	resp2, body := post(t, cl, ts.URL+"/v1/ask", `{"query": "yes", "timeout": "100ms"}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request during drain = %d, want 503: %s", resp2.StatusCode, body)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("503 during drain carried no Retry-After")
	}
	// The queued waiter is woken and refused.
	got := <-queued
	if got.status != http.StatusServiceUnavailable {
		t.Errorf("queued request during drain = %d, want 503", got.status)
	}
	// The in-flight query drains: it finishes with its own outcome (504
	// from its deadline) after running its full course.
	got = <-inflight
	if got.status != http.StatusGatewayTimeout {
		t.Errorf("in-flight request = %d, want 504 (drained, not killed)", got.status)
	}
	if got.elapsed < 400*time.Millisecond {
		t.Errorf("in-flight finished after %v; drain must not cut it short", got.elapsed)
	}
}

// TestPanicRecovery mounts a panicking handler behind the standard
// middleware and checks the response is a clean 500.
func TestPanicRecovery(t *testing.T) {
	s, _ := newTestServer(t, uniSrc, hypo.Options{}, Config{})
	ts := httptest.NewServer(s.wrap("boom", false, func(w http.ResponseWriter, r *http.Request, ri *reqInfo, _ *tenant.Tenant) {
		panic("kaboom")
	}))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"kind":"internal"`) {
		t.Errorf("body %s", body)
	}
}

// TestBatchSingleLease covers mixed batch items, per-item errors that do
// not fail the batch, and an abort that skips the rest.
func TestBatchSingleLease(t *testing.T) {
	_, ts := newTestServer(t, uniSrc+hardSrc,
		hypo.Options{Mode: hypo.ModeUniform, NoTabling: true}, Config{MaxBatch: 8})
	cl := ts.Client()

	resp, body := post(t, cl, ts.URL+"/v1/batch", `{"queries": [
		{"query": "grad(tony)"},
		{"kind": "query", "query": "take(tony, C)"},
		{"kind": "askunder", "query": "grad(mary)", "add": ["take(mary, eng201)"]},
		{"query": "grad(broken("},
		{"query": "grad(mary)"}
	]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(br.Results))
	}
	if br.Results[0].Result == nil || !*br.Results[0].Result {
		t.Errorf("item 0: %s", body)
	}
	if len(br.Results[1].Bindings) != 2 {
		t.Errorf("item 1 bindings = %v", br.Results[1].Bindings)
	}
	if br.Results[2].Result == nil || !*br.Results[2].Result {
		t.Errorf("item 2: %s", body)
	}
	if br.Results[3].Error == nil || br.Results[3].Error.Kind != "bad_request" {
		t.Errorf("item 3 should be a per-item bad_request: %s", body)
	}
	if br.Results[4].Result == nil || *br.Results[4].Result {
		t.Errorf("item 4 should still evaluate to false after item 3 failed: %s", body)
	}

	// An abort mid-batch stops it: the hard item reports the deadline,
	// the rest are skipped, the response is still a 200 with partials.
	resp, body = post(t, cl, ts.URL+"/v1/batch", `{"queries": [
		{"query": "grad(tony)"},
		{"query": "yes"},
		{"query": "grad(tony)"}
	], "timeout": "150ms"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("abort batch status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Result == nil || !*br.Results[0].Result {
		t.Errorf("pre-abort item lost: %s", body)
	}
	if br.Results[1].Error == nil || br.Results[1].Error.Kind != "deadline" {
		t.Errorf("aborted item kind = %v, want deadline", br.Results[1].Error)
	}
	if br.Results[2].Error == nil || br.Results[2].Error.Kind != "skipped" {
		t.Errorf("post-abort item kind = %v, want skipped", br.Results[2].Error)
	}

	// Oversized batches are refused outright.
	queries := make([]string, 9)
	for i := range queries {
		queries[i] = `{"query": "grad(tony)"}`
	}
	resp, body = post(t, cl, ts.URL+"/v1/batch",
		`{"queries": [`+strings.Join(queries, ",")+`]}`)
	if resp.StatusCode != 400 {
		t.Errorf("oversized batch = %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestHealthAndVars(t *testing.T) {
	_, ts := newTestServer(t, uniSrc, hypo.Options{}, Config{})
	cl := ts.Client()
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := cl.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := cl.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("debug/vars is not JSON: %v", err)
	}
	hypoVars, ok := vars["hypo"]
	if !ok {
		t.Fatal("debug/vars missing the hypo metric set")
	}
	for _, key := range []string{"http_requests", "http_shed", "http_in_flight", "queries_started"} {
		if !bytes.Contains(hypoVars, []byte(key)) {
			t.Errorf("hypo metrics missing %q", key)
		}
	}
}

// TestAccessLogFields checks the structured access log carries the
// query, outcome and work stats.
func TestAccessLogFields(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, uniSrc, hypo.Options{}, Config{Logger: logger})
	post(t, ts.Client(), ts.URL+"/v1/ask", `{"query": "grad(tony)"}`)

	var seen bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			continue
		}
		if entry["msg"] != "request" {
			continue
		}
		seen = true
		if entry["query"] != "grad(tony)" || entry["outcome"] != "ok" ||
			entry["endpoint"] != "ask" {
			t.Errorf("log entry: %s", line)
		}
		if _, ok := entry["goals"]; !ok {
			t.Errorf("log entry missing goals: %s", line)
		}
		if _, ok := entry["elapsed_ms"]; !ok {
			t.Errorf("log entry missing elapsed_ms: %s", line)
		}
	}
	if !seen {
		t.Fatalf("no request log line:\n%s", buf.String())
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: slog handlers may be
// called from concurrent request goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestPoolClosedMapsTo503 exercises the ErrPoolClosed surface end to
// end: a server whose pool has been closed refuses with 503.
func TestPoolClosedMapsTo503(t *testing.T) {
	prog, err := hypo.Parse(uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := hypo.NewPool(prog, hypo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pool: pool, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	pool.Close()
	resp, body := post(t, ts.Client(), ts.URL+"/v1/ask", `{"query": "grad(tony)"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed pool = %d, want 503: %s", resp.StatusCode, body)
	}
}
