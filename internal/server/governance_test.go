package server

// End-to-end resource-governance tests: memory-quota shedding (503
// over_memory), disk-quota write refusal (503 over_disk), transient
// degradation reporting in healthz while the recovery prober runs, and
// the circuit-broken write proxy on replicas.

import (
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/vfs"
)

// TestOverMemoryShed: a tenant whose untrimmable footprint (the answer
// cache) exceeds its memory quota refuses new work with 503 over_memory
// and a Retry-After, before consuming an evaluation slot.
func TestOverMemoryShed(t *testing.T) {
	_, ts := newTestServer(t, uniSrc,
		hypo.Options{PoolSize: 1, CacheBytes: 1 << 20},
		Config{MemoryQuota: 1})
	cl := ts.Client()

	// First request: the only footprint is the idle engine, which the
	// quota gate trims away — admitted, evaluated, and the answer cached.
	resp, body := post(t, cl, ts.URL+"/v1/query", `{"query": "grad(S)"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("first query: status %d body %s (trimming should have satisfied the quota)",
			resp.StatusCode, body)
	}

	// Second request: the cache entry cannot be trimmed and is over the
	// 1-byte quota — shed.
	resp, body = post(t, cl, ts.URL+"/v1/query", `{"query": "grad(S)"}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "over_memory") {
		t.Fatalf("query over memory quota: status %d body %s (want 503 over_memory)",
			resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over_memory refusal carries no Retry-After")
	}
}

// TestOverDiskShed: a tenant whose WAL+snapshot footprint exceeds its
// disk quota refuses writes with 503 over_disk; reads are untouched,
// and raising the quota re-enables writes with no other intervention.
func TestOverDiskShed(t *testing.T) {
	s, ts, _ := newLiveTestServer(t, hypo.Options{}, Config{DiskQuota: 1})
	cl := ts.Client()

	resp, body := post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "over_disk") {
		t.Fatalf("write over disk quota: status %d body %s (want 503 over_disk)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over_disk refusal carries no Retry-After")
	}

	// Reads never consult the disk quota.
	resp, body = post(t, cl, ts.URL+"/v1/ask", `{"query": "reach(a, b)"}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Fatalf("read with disk over quota: status %d body %s", resp.StatusCode, body)
	}

	// Quota raised (operator action): the same write goes through.
	s.def.SetQuotas(0, 1<<30)
	resp, body = post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"version":1`) {
		t.Fatalf("write after quota raise: status %d body %s", resp.StatusCode, body)
	}
}

// TestHealthzTransientRecovery: a disk-full degradation shows up in
// healthz as degraded+recovering — at the top level and in the
// per-program map — and clears IN PLACE once space returns, no restart.
func TestHealthzTransientRecovery(t *testing.T) {
	prog, err := hypo.Parse(liveSrc)
	if err != nil {
		t.Fatal(err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	en := vfs.NewENOSPC(4)
	ft := vfs.NewFault(vfs.NewMem(), en)
	lv, err := hypo.OpenLive(prog, hypo.LiveConfig{
		WALPath:               "/db/wal.log",
		SnapshotPath:          "/db/db.snap",
		FS:                    ft,
		Logger:                quiet,
		RecoveryProbeInterval: 2 * time.Millisecond,
	}, hypo.Options{PoolSize: 1, Metrics: metrics.NewSet("test_healthz_recovery")})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pool: lv.Pool(), Live: lv, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		lv.Close()
	})
	cl := ts.Client()

	en.Fill()
	resp, body := post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "read_only") {
		t.Fatalf("write on full disk: status %d body %s", resp.StatusCode, body)
	}
	hb := get(t, cl, ts.URL+"/healthz")
	for _, want := range []string{`"status":"degraded"`, `"reason":"read_only"`, `"recovering":true`} {
		if !strings.Contains(hb, want) {
			t.Fatalf("degraded healthz missing %s: %s", want, hb)
		}
	}
	if !strings.Contains(hb, `"default":{`) {
		t.Fatalf("healthz has no per-program map: %s", hb)
	}

	// Space returns: the background prober restores the write path and
	// healthz goes back to ok, still the same process.
	en.Release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hb = get(t, cl, ts.URL+"/healthz")
		if strings.Contains(hb, `"status":"ok"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz still degraded 5s after space returned: %s", hb)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body = post(t, cl, ts.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("write after in-place recovery: status %d body %s", resp.StatusCode, body)
	}
}

// TestProxyBreakerFastFailAndRecovery: an open breaker short-circuits
// proxied writes into an immediate 503 primary_unreachable (no dial, no
// timeout wait); after the cooldown one probe goes through, and its
// success against a healthy primary closes the breaker for everyone.
func TestProxyBreakerFastFailAndRecovery(t *testing.T) {
	_, primaryTS, primaryLive := newLiveTestServer(t, hypo.Options{}, Config{})
	mets := metrics.NewSet("test_breaker_e2e")
	replica, replicaTS, _ := newLiveTestServer(t, hypo.Options{}, Config{
		Role:                  "replica",
		PrimaryURL:            primaryTS.URL,
		ProxyBreakerThreshold: 1,
		ProxyBreakerCooldown:  time.Minute,
		Metrics:               mets,
	})
	cl := replicaTS.Client()

	// Trip the breaker (threshold 1, so one recorded transport failure
	// opens it) and verify the fast-fail path: the healthy primary is
	// never contacted.
	replica.proxyBr.failure(false)
	resp, body := post(t, cl, replicaTS.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "primary_unreachable") {
		t.Fatalf("open breaker: status %d body %s (want fast 503)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fast-fail refusal carries no Retry-After")
	}
	if v := primaryLive.Version(); v != 0 {
		t.Fatalf("open breaker dialed the primary: version %d", v)
	}
	if got := mets.ProxyFastFails.Value(); got != 1 {
		t.Fatalf("proxy_fast_fails = %d, want 1", got)
	}

	// Cooldown elapses (manual clock): the next write is the half-open
	// probe, reaches the healthy primary, succeeds, and closes the
	// breaker — later writes flow normally.
	replica.proxyBr.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	resp, body = post(t, cl, replicaTS.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != 200 || resp.Header.Get("X-Hdl-Proxied") != "primary" {
		t.Fatalf("probe write: status %d proxied=%q body %s",
			resp.StatusCode, resp.Header.Get("X-Hdl-Proxied"), body)
	}
	if v := primaryLive.Version(); v != 1 {
		t.Fatalf("primary version after probe = %d, want 1", v)
	}
	if got := mets.ProxyBreakerState.Value(); got != breakerClosed {
		t.Fatalf("proxy_breaker_state = %d after successful probe, want closed", got)
	}
	resp, _ = post(t, cl, replicaTS.URL+"/v1/facts", `{"assert": ["edge(c, a)"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("write after breaker closed: status %d", resp.StatusCode)
	}
}

// TestProxyBreakerOpensOnDeadPrimary: real transport failures (dial
// errors) count toward the threshold, so a dead primary flips the
// replica from slow 502s into fast 503s.
func TestProxyBreakerOpensOnDeadPrimary(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	mets := metrics.NewSet("test_breaker_dead")
	_, replicaTS, _ := newLiveTestServer(t, hypo.Options{}, Config{
		Role:                  "replica",
		PrimaryURL:            dead.URL,
		ProxyBreakerThreshold: 1,
		ProxyBreakerCooldown:  time.Minute,
		ProxyRetries:          -1, // no retry: one dial failure per request
		Metrics:               mets,
	})
	cl := replicaTS.Client()

	// First write pays the dial and gets the transport-level 502...
	resp, body := post(t, cl, replicaTS.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(string(body), "primary_unreachable") {
		t.Fatalf("dead primary: status %d body %s (want 502)", resp.StatusCode, body)
	}
	if got := mets.ProxyBreakerOpens.Value(); got != 1 {
		t.Fatalf("proxy_breaker_opens = %d, want 1", got)
	}
	// ...every write after that fails fast on the open breaker.
	resp, body = post(t, cl, replicaTS.URL+"/v1/facts", `{"assert": ["edge(b, c)"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "primary_unreachable") {
		t.Fatalf("second write: status %d body %s (want fast 503)", resp.StatusCode, body)
	}
	if got := mets.ProxyFastFails.Value(); got != 1 {
		t.Fatalf("proxy_fast_fails = %d, want 1", got)
	}
}

// TestRequestNotSent pins the retry-safety predicate: only failures
// proving the request never reached the primary (dial errors,
// connection refused) are retried — anything after a byte may have been
// a committed non-idempotent write.
func TestRequestNotSent(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&net.OpError{Op: "dial", Err: errors.New("no route")}, true},
		{syscall.ECONNREFUSED, true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, false},
		{errors.New("response body truncated"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := requestNotSent(c.err); got != c.want {
			t.Errorf("requestNotSent(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
