package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"

	"hypodatalog/internal/tenant"
)

// explainRequest is the body of /v1/explain: one ground query whose
// derivation (or lack of one) should be rendered.
type explainRequest struct {
	Query   string `json:"query"`
	Timeout string `json:"timeout,omitempty"`
}

// explainResponse carries the rendered proof tree. Provable false means
// the query has no derivation at this data version; Proof is then "".
type explainResponse struct {
	Provable    bool   `json:"provable"`
	Proof       string `json:"proof,omitempty"`
	DataVersion uint64 `json:"dataVersion"`
}

// handleExplain renders the derivation of one ground query — the HTTP
// surface of Engine.Explain. Explanation is evaluation work (it re-runs
// the proof search with recording on), so it takes an admission slot
// and the standard error-status table applies.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, ri *reqInfo, t *tenant.Tenant) {
	var req explainRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	ri.query = req.Query
	d, err := s.timeoutFor(req.Timeout)
	if err != nil {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	if !s.gateMinVersion(ctx, w, r, ri, t) {
		return
	}
	release, err := t.Admit(ctx)
	if err != nil {
		s.refuse(w, ri, err)
		return
	}
	defer release()
	proof, info, err := t.Pool().ExplainCtx(ctx, req.Query)
	ri.dataVersion = info.DataVersion
	ri.stats = info.Stats
	if err != nil {
		s.evalError(w, ri, err)
		return
	}
	writeJSON(w, explainResponse{
		Provable:    proof != "",
		Proof:       proof,
		DataVersion: info.DataVersion,
	})
}

// programPutRequest is the body of PUT /v1/programs/{name}: the full
// rulebase of the program to create.
type programPutRequest struct {
	Program string `json:"program"`
}

// programInfo describes one registered program in admin responses.
type programInfo struct {
	Name        string `json:"name"`
	DataVersion uint64 `json:"dataVersion"`
	RulesHash   string `json:"rulesHash"`
	Status      string `json:"status"`
	Program     string `json:"program,omitempty"` // GET /v1/programs/{name} only
	Created     *bool  `json:"created,omitempty"` // PUT only
}

func infoFor(t *tenant.Tenant) programInfo {
	st := "ok"
	if degraded, _ := t.Degraded(); degraded {
		st = "degraded"
	}
	if t.Draining() {
		st = "draining"
	}
	return programInfo{
		Name:        t.Name(),
		DataVersion: t.Version(),
		RulesHash:   strconv.FormatUint(t.RulesHash(), 16),
		Status:      st,
	}
}

// adminError maps registry errors onto the error-status table: bad
// names and rulebases are 400, an unknown program is 404, a rules
// conflict is 409, a static registry is 501, a closed/draining registry
// is 503.
func (s *Server) adminError(w http.ResponseWriter, ri *reqInfo, err error) {
	switch {
	case errors.Is(err, tenant.ErrBadName), errors.Is(err, tenant.ErrBadProgram),
		errors.Is(err, tenant.ErrProtected):
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, tenant.ErrUnknown):
		ri.outcome = "unknown_program"
		writeError(w, http.StatusNotFound, "unknown_program", err.Error())
	case errors.Is(err, tenant.ErrConflict):
		ri.outcome = "conflict"
		writeError(w, http.StatusConflict, "conflict",
			err.Error()+" (delete it first; rules are never swapped under live traffic)")
	case errors.Is(err, tenant.ErrStatic):
		ri.outcome = "not_enabled"
		writeError(w, http.StatusNotImplemented, "not_enabled",
			"program administration is disabled: start the server with a programs directory (hdld -programs-dir)")
	case errors.Is(err, tenant.ErrClosed), errors.Is(err, tenant.ErrDraining):
		ri.outcome = "draining"
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
	default:
		ri.outcome = "internal"
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// handleProgramsList answers GET /v1/programs: every registered program
// with its data version and status.
func (s *Server) handleProgramsList(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	tenants := s.reg.List()
	out := make([]programInfo, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, infoFor(t))
	}
	writeJSON(w, map[string]any{
		"programs": out,
		"default":  s.reg.DefaultName(),
	})
}

// handleProgramGet answers GET /v1/programs/{name}: the program's
// source plus the same info the list carries.
func (s *Server) handleProgramGet(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	t, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.adminError(w, ri, err)
		return
	}
	info := infoFor(t)
	info.Program = t.Source()
	writeJSON(w, info)
}

// handleProgramPut answers PUT /v1/programs/{name}: register a new
// program (201), or 200 unchanged when the same rulebase is already
// registered under that name. A different rulebase is a 409 — programs
// are replaced by delete + create, never swapped in place.
func (s *Server) handleProgramPut(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	if s.draining.Load() {
		s.adminError(w, ri, tenant.ErrDraining)
		return
	}
	var req programPutRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if req.Program == "" {
		ri.outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "bad_request", `"program" must be the non-empty rulebase source`)
		return
	}
	t, created, err := s.reg.Create(r.PathValue("name"), req.Program)
	if err != nil {
		s.adminError(w, ri, err)
		return
	}
	info := infoFor(t)
	info.Created = &created
	if created {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, info)
}

// handleProgramDelete answers DELETE /v1/programs/{name}: two-phase
// drain (new requests 503, in-flight bounded by the server's max
// timeout), close the stores, remove the state directory. The default
// program is protected (400).
func (s *Server) handleProgramDelete(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	if err := s.reg.Delete(ctx, r.PathValue("name")); err != nil {
		s.adminError(w, ri, err)
		return
	}
	writeJSON(w, map[string]any{"deleted": true, "name": r.PathValue("name")})
}
