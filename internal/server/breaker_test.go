package server

// Unit and concurrency tests for the write-proxy circuit breaker. The
// clock is injected, so state transitions are exercised without
// sleeping; the concurrency test below is what `go test -race` chews
// on in CI.

import (
	"sync"
	"testing"
	"time"

	"hypodatalog/internal/metrics"
)

// testBreaker builds a breaker on a manual clock.
func testBreaker(t *testing.T, threshold int, cooldown time.Duration) (*breaker, *time.Time, *metrics.Set) {
	t.Helper()
	mets := metrics.NewSet("test_breaker_" + t.Name())
	b := newBreaker(threshold, cooldown, mets)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }
	return b, &clock, mets
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _, mets := testBreaker(t, 3, time.Minute)
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.failure(false)
	}
	if got := mets.ProxyBreakerState.Value(); got != breakerClosed {
		t.Fatalf("state after %d failures = %d, want closed", 2, got)
	}
	// Third consecutive failure trips it.
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker opened early")
	}
	b.failure(false)
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker let a request through before cooldown")
	}
	if got := mets.ProxyBreakerState.Value(); got != breakerOpen {
		t.Fatalf("state = %d, want open", got)
	}
	if got := mets.ProxyBreakerOpens.Value(); got != 1 {
		t.Fatalf("proxy_breaker_opens = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _, _ := testBreaker(t, 3, time.Minute)
	b.failure(false)
	b.failure(false)
	b.success(false) // streak broken: the count starts over
	b.failure(false)
	b.failure(false)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker opened although failures were not consecutive")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock, mets := testBreaker(t, 1, time.Minute)
	b.failure(false) // threshold 1: open immediately
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker allowed during cooldown")
	}

	// Cooldown elapses: exactly one caller becomes the half-open probe,
	// everyone else keeps failing fast until it reports.
	*clock = clock.Add(time.Minute)
	ok, probe := b.allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown allow = %v, %v; want the probe slot", ok, probe)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("second caller admitted while the probe is in flight")
	}

	// Probe fails: re-open for another full cooldown.
	b.failure(true)
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker admitted right after a failed probe")
	}
	*clock = clock.Add(time.Minute)
	ok, probe = b.allow()
	if !ok || !probe {
		t.Fatalf("allow after second cooldown = %v, %v; want a new probe", ok, probe)
	}

	// Probe succeeds: closed, traffic flows, gauge says so.
	b.success(true)
	if got := mets.ProxyBreakerState.Value(); got != breakerClosed {
		t.Fatalf("state after successful probe = %d, want closed", got)
	}
	for i := 0; i < 5; i++ {
		if ok, probe := b.allow(); !ok || probe {
			t.Fatalf("closed breaker allow = %v, %v", ok, probe)
		}
	}
}

// TestBreakerConcurrent hammers the breaker from many goroutines while
// the clock jumps, to give the race detector something to find. The
// invariant checked at the end is the only sequential one available:
// the breaker is in a legal state and its probe slot is not leaked.
func TestBreakerConcurrent(t *testing.T) {
	b, _, _ := testBreaker(t, 3, time.Microsecond)
	var clockMu sync.Mutex
	clock := time.Unix(1000, 0)
	b.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		clock = clock.Add(time.Microsecond)
		return clock
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ok, probe := b.allow()
				if !ok {
					continue
				}
				if (g+i)%3 == 0 {
					b.failure(probe)
				} else {
					b.success(probe)
				}
			}
		}(g)
	}
	wg.Wait()
	// Settle: either the breaker is closed, or a cooldown later a probe
	// slot is available again — no state leaves it wedged.
	b.mu.Lock()
	state, probing := b.state, b.probing
	b.mu.Unlock()
	if probing {
		t.Fatal("probe slot leaked: probing=true with no probe in flight")
	}
	if state != breakerClosed && state != breakerOpen && state != breakerHalfOpen {
		t.Fatalf("illegal breaker state %d", state)
	}
	if state != breakerClosed {
		if ok, probe := b.allow(); !ok || !probe {
			t.Fatalf("settled non-closed breaker refused a probe after cooldown: %v, %v", ok, probe)
		}
		b.success(true)
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker wedged after the storm")
	}
}
