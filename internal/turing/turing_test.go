package turing

import (
	"strings"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

func hasOne(s string) bool { return strings.ContainsRune(s, '1') }

func TestSimulatorHasOne(t *testing.T) {
	m := HasOne()
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"", false}, {"0", false}, {"1", true}, {"01", true},
		{"000", false}, {"001", true}, {"100", true}, {"010", true},
	} {
		got, err := m.Accepts(tc.in, 2*len(tc.in)+6)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("HasOne(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSimulatorNondeterminism(t *testing.T) {
	m := GuessOne()
	for _, in := range []string{"", "0", "1", "00", "01", "10", "010"} {
		got, err := m.Accepts(in, 2*len(in)+6)
		if err != nil {
			t.Fatal(err)
		}
		if got != hasOne(in) {
			t.Errorf("GuessOne(%q) = %v, want %v", in, got, hasOne(in))
		}
	}
}

func TestSimulatorOracleCascades(t *testing.T) {
	yes := CopyThenAskYes()
	no := CopyThenAskNo()
	three := ThreeLevel()
	for _, in := range []string{"", "0", "1", "00", "01", "10", "11", "000", "010"} {
		n := 3*len(in) + 8
		gotYes, err := yes.Accepts(in, n)
		if err != nil {
			t.Fatal(err)
		}
		if gotYes != hasOne(in) {
			t.Errorf("CopyThenAskYes(%q) = %v, want %v", in, gotYes, hasOne(in))
		}
		gotNo, err := no.Accepts(in, n)
		if err != nil {
			t.Fatal(err)
		}
		if gotNo != !hasOne(in) {
			t.Errorf("CopyThenAskNo(%q) = %v, want %v", in, gotNo, !hasOne(in))
		}
		gotThree, err := three.Accepts(in, n+4)
		if err != nil {
			t.Fatal(err)
		}
		if gotThree != !hasOne(in) {
			t.Errorf("ThreeLevel(%q) = %v, want %v", in, gotThree, !hasOne(in))
		}
	}
}

func TestSimulatorClockBudget(t *testing.T) {
	// With too small a clock the machine cannot reach the 1.
	m := HasOne()
	got, err := m.Accepts("0001", 4) // needs 4 moves + accept check
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("accepted despite exhausted clock")
	}
	got, err = m.Accepts("0001", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("rejected despite sufficient clock")
	}
}

func TestValidate(t *testing.T) {
	bad := HasOne()
	bad.Transitions[0].WriteOracle = '0' // no oracle to write
	if err := bad.Validate(); err == nil {
		t.Error("expected oracle-write validation error")
	}
	bad2 := CopyThenAskYes()
	bad2.Transitions = append(bad2.Transitions,
		Transition{From: "pq", Read: 'x', WriteWork: 'x', MoveWork: Stay, WriteOracle: 'x', To: "p0"})
	if err := bad2.Validate(); err == nil {
		t.Error("expected query-state transition rejection")
	}
}

// compileEncoding parses and compiles R(L) ∪ DB(s̄), checking the linear
// stratification along the way.
func compileEncoding(t *testing.T, m *Machine, input string, n int) (*ast.CProgram, *strat.Stratification) {
	t.Helper()
	src, err := Encode(m, input, n)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("encoding does not parse: %v", err)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		t.Fatalf("encoding invalid: %v", errs[0])
	}
	s, err := strat.Stratify(prog)
	if err != nil {
		t.Fatalf("encoding not linearly stratifiable: %v", err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	return cp, s
}

// TestEncodingStrataCount checks the headline structural property: R(L)
// for a k-machine cascade has exactly k strata.
func TestEncodingStrataCount(t *testing.T) {
	for _, tc := range []struct {
		m *Machine
		k int
	}{
		{HasOne(), 1},
		{GuessOne(), 1},
		{CopyThenAskYes(), 2},
		{CopyThenAskNo(), 2},
		{ThreeLevel(), 3},
	} {
		_, s := compileEncoding(t, tc.m, "01", 8)
		if s.NumStrata != tc.k {
			t.Errorf("machine %s: %d strata, want %d", tc.m.Name, s.NumStrata, tc.k)
		}
	}
}

// TestEncodingRulesInputIndependent checks that R(L) does not depend on
// the input string (only DB(s̄) does).
func TestEncodingRulesInputIndependent(t *testing.T) {
	m := CopyThenAskYes()
	r1, err := EncodeRules(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EncodeRules(m)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("EncodeRules is not deterministic")
	}
	db1, err := EncodeDB(m, "01", 8)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := EncodeDB(m, "10", 8)
	if err != nil {
		t.Fatal(err)
	}
	if db1 == db2 {
		t.Error("different inputs produced identical databases")
	}
}

// askAccept evaluates the 0-ary accept goal of an encoding.
func askAccept(t *testing.T, cp *ast.CProgram) bool {
	t.Helper()
	e := topdown.New(cp, ref.Domain(cp), topdown.Options{MaxGoals: 50_000_000})
	p, ok := cp.Syms.LookupPred("accept", 0)
	if !ok {
		t.Fatal("encoding has no accept predicate")
	}
	goal := e.Interner().ID(p, nil)
	got, err := e.Ask(goal, e.EmptyState())
	if err != nil {
		t.Fatalf("ask accept: %v", err)
	}
	return got
}

func TestEndsWithOneLeftMoves(t *testing.T) {
	m := EndsWithOne()
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"", false}, {"1", true}, {"0", false}, {"01", true},
		{"10", false}, {"11", true}, {"010", false}, {"011", true},
	} {
		n := 2*len(tc.in) + 6
		got, err := m.Accepts(tc.in, n)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("EndsWithOne(%q) = %v, want %v", tc.in, got, tc.want)
		}
		// And the encoding (exercises the left-move rule form).
		cp, _ := compileEncoding(t, m, tc.in, n)
		if enc := askAccept(t, cp); enc != tc.want {
			t.Errorf("encoding EndsWithOne(%q) = %v, want %v", tc.in, enc, tc.want)
		}
	}
}

// TestEncodingMatchesSimulator is the Theorem 1 lower-bound experiment:
// R(L), DB(s̄) ⊢ accept iff the machine cascade accepts s̄.
func TestEncodingMatchesSimulator(t *testing.T) {
	machines := []*Machine{HasOne(), GuessOne(), EndsWithOne(), CopyThenAskYes(), CopyThenAskNo()}
	inputs := []string{"", "0", "1", "01", "10", "00", "11"}
	for _, m := range machines {
		for _, in := range inputs {
			n := 2*len(in) + 6
			want, err := m.Accepts(in, n)
			if err != nil {
				t.Fatal(err)
			}
			cp, _ := compileEncoding(t, m, in, n)
			if got := askAccept(t, cp); got != want {
				t.Errorf("machine %s input %q: encoding=%v simulator=%v", m.Name, in, got, want)
			}
		}
	}
}

// TestEncodingThreeLevels runs the k=3 cascade end to end on the smallest
// inputs (it is the most expensive encoding).
func TestEncodingThreeLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("three-level encoding is slow")
	}
	m := ThreeLevel()
	for _, in := range []string{"", "1", "0"} {
		n := 3*len(in) + 7
		want, err := m.Accepts(in, n)
		if err != nil {
			t.Fatal(err)
		}
		cp, s := compileEncoding(t, m, in, n)
		if s.NumStrata != 3 {
			t.Fatalf("strata = %d", s.NumStrata)
		}
		if got := askAccept(t, cp); got != want {
			t.Errorf("three-level input %q: encoding=%v simulator=%v", in, got, want)
		}
	}
}
