package turing

import (
	"strings"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

func allOnes(s string) bool { return !strings.ContainsRune(s, '0') }

func hasDouble(s string) bool { return strings.Contains(s, "11") }

func TestAlternatingSimulator(t *testing.T) {
	fa := AllOnesForall()
	dd := HasDoubleOne()
	for _, in := range []string{"", "0", "1", "00", "01", "10", "11", "101", "110", "111", "0110"} {
		n := 2*len(in) + 6
		got, err := fa.Accepts(in, n)
		if err != nil {
			t.Fatal(err)
		}
		if got != allOnes(in) {
			t.Errorf("AllOnesForall(%q) = %v, want %v", in, got, allOnes(in))
		}
		got, err = dd.Accepts(in, n)
		if err != nil {
			t.Fatal(err)
		}
		if got != hasDouble(in) {
			t.Errorf("HasDoubleOne(%q) = %v, want %v", in, got, hasDouble(in))
		}
	}
}

// compileAlternating parses and compiles the encoding, checking it has
// stratified negation but — per section 4 — is NOT linearly stratifiable
// when the machine has a branching universal state (rule form (2)).
func compileAlternating(t *testing.T, m *AMachine, input string, n int, wantNonLinear bool) *ast.CProgram {
	t.Helper()
	rules, err := EncodeAlternating(m)
	if err != nil {
		t.Fatal(err)
	}
	db, err := EncodeAlternatingDB(m, input, n)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(rules + db)
	if err != nil {
		t.Fatalf("encoding does not parse: %v\n%s", err, rules)
	}
	if errs := ast.Validate(prog); len(errs) > 0 {
		t.Fatalf("encoding invalid: %v", errs[0])
	}
	if err := strat.CheckNegation(prog); err != nil {
		t.Fatalf("recursion through negation: %v", err)
	}
	_, err = strat.Stratify(prog)
	if wantNonLinear {
		if err == nil {
			t.Fatal("universal-branching encoding unexpectedly linearly stratifiable")
		}
		if !strings.Contains(err.Error(), "non-linear") {
			t.Fatalf("wrong stratification failure: %v", err)
		}
	} else if err != nil {
		t.Fatalf("stratify: %v", err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestAlternatingEncodingMatchesSimulator: the PSPACE encoding (rule form
// (2)) agrees with direct alternating simulation — evaluated by the
// uniform engine, which handles the non-linearly-stratifiable fragment.
func TestAlternatingEncodingMatchesSimulator(t *testing.T) {
	machines := []*AMachine{AllOnesForall(), HasDoubleOne()}
	inputs := []string{"", "0", "1", "00", "01", "10", "11", "011"}
	for _, m := range machines {
		for _, in := range inputs {
			n := 2*len(in) + 6
			want, err := m.Accepts(in, n)
			if err != nil {
				t.Fatal(err)
			}
			cp := compileAlternating(t, m, in, n, true)
			e := topdown.New(cp, ref.Domain(cp), topdown.Options{MaxGoals: 100_000_000})
			p, ok := cp.Syms.LookupPred("accept", 0)
			if !ok {
				t.Fatal("no accept/0")
			}
			got, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("machine %s input %q: encoding=%v simulator=%v", m.Name, in, got, want)
			}
		}
	}
}

// TestUniversalRuleIsForm2 checks the syntactic claim: the universal
// state's rule has two recursive hypothetical premises — exactly the
// form (2) that section 4 disallows for linear stratification.
func TestUniversalRuleIsForm2(t *testing.T) {
	rules, err := EncodeAlternating(AllOnesForall())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(rules, "\n") {
		if strings.Count(line, "aaccept(Tn)[add:") >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rule-form-(2) rule in:\n%s", rules)
	}
}

// TestVacuousUniversal: a universal state with no applicable transition
// accepts vacuously, in both simulator and encoding.
func TestVacuousUniversal(t *testing.T) {
	m := &AMachine{
		Name:      "vacuous",
		Start:     "u",
		Accepting: map[string]bool{},
		Universal: map[string]bool{"u": true},
		Blank:     'x',
		Alphabet:  Alphabet01,
		Transitions: []ATransition{
			// Only defined on '0'; reading anything else is a vacuous ∀.
			{From: "u", Read: '0', Write: '0', Move: Stay, To: "dead"},
		},
	}
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"1", true}, {"", true}, {"0", false},
	} {
		n := 6
		got, err := m.Accepts(tc.in, n)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("simulator vacuous(%q) = %v, want %v", tc.in, got, tc.want)
		}
		cp := compileAlternating(t, m, tc.in, n, false)
		e := topdown.New(cp, ref.Domain(cp), topdown.Options{})
		p, _ := cp.Syms.LookupPred("accept", 0)
		enc, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
		if err != nil {
			t.Fatal(err)
		}
		if enc != tc.want {
			t.Errorf("encoding vacuous(%q) = %v, want %v", tc.in, enc, tc.want)
		}
	}
}
