package turing

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the paper's section 5.1 construction: given a
// cascade of NP oracle machines M_k, ..., M_1, emit
//
//   - R(L): a hypothetical rulebase with exactly k strata, independent of
//     the input string (EncodeRules), and
//   - DB(s̄): a database encoding a counter 0..N-1 and the initial tape
//     contents (EncodeDB),
//
// such that R(L), DB(s̄) ⊢ accept iff the cascade accepts s̄. The predicate
// naming scheme follows the paper: cell_i_<sym>(J̄, T̄), control_i_<q>(J̄1,
// J̄2, T̄), accept_i(T̄), oracle_i(T̄), active_i(J̄, T̄), plus the counter
// first/next/last and the 0-ary goal accept.
//
// Counter values may be l-tuples (section 6.2.2 uses l = 2 over a
// hypothetically asserted order); Counter abstracts the arity and the
// first/next/last predicate names so the same machine encoding serves
// both the section 5.1 lower bound (l = 1 over a stored counter) and the
// section 6 constant-free expressibility construction.

// Counter describes the time/position counter predicates: First and Last
// have arity L, Next has arity 2L.
type Counter struct {
	L                 int
	First, Next, Last string
}

// DefaultCounter is the section 5.1 stored counter: first/next/last over
// single values.
func DefaultCounter() Counter { return Counter{L: 1, First: "first", Next: "next", Last: "last"} }

// vars returns the L variable names for one counter value, derived from a
// prefix ("T" -> [T] for L=1, [Ta, Tb] for L=2).
func (c Counter) vars(prefix string) []string {
	if c.L == 1 {
		return []string{prefix}
	}
	out := make([]string, c.L)
	for i := range out {
		out[i] = fmt.Sprintf("%s%c", prefix, 'a'+i)
	}
	return out
}

func (c Counter) firstAtom(v []string) string {
	return fmt.Sprintf("%s(%s)", c.First, strings.Join(v, ", "))
}

func (c Counter) nextAtom(from, to []string) string {
	return fmt.Sprintf("%s(%s, %s)", c.Next, strings.Join(from, ", "), strings.Join(to, ", "))
}

func args(groups ...[]string) string {
	var all []string
	for _, g := range groups {
		all = append(all, g...)
	}
	return strings.Join(all, ", ")
}

// symName renders a tape symbol as a constant-safe token.
func symName(c byte) string {
	if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
		return "s" + string(c)
	}
	return fmt.Sprintf("s%d", c)
}

// stName renders a machine state as a predicate-safe token.
func stName(q string) string {
	return strings.ToLower(strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, q))
}

// states collects the state names of one machine, sorted for determinism.
func states(m *Machine) []string {
	set := map[string]bool{m.Start: true}
	for q := range m.Accepting {
		set[q] = true
	}
	for _, s := range []string{m.QueryState, m.YesState, m.NoState} {
		if s != "" {
			set[s] = true
		}
	}
	for _, tr := range m.Transitions {
		set[tr.From] = true
		set[tr.To] = true
	}
	out := make([]string, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

func cellPred(level int, sym byte) string { return fmt.Sprintf("cell_%d_%s", level, symName(sym)) }

func controlPred(level int, q string) string {
	return fmt.Sprintf("control_%d_%s", level, stName(q))
}

// EncodeRules emits R(L) for the cascade headed by m with the section 5.1
// stored counter. The rulebase does not depend on the input string — only
// on the machines — which is the property that makes the construction a
// data-complexity lower bound.
func EncodeRules(m *Machine) (string, error) {
	return EncodeRulesCounter(m, DefaultCounter())
}

// EncodeRulesCounter emits the machine-simulation rules of R(L) using the
// given counter predicates. All rules are constant-free.
func EncodeRulesCounter(m *Machine, c Counter) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	levels := m.Levels()
	k := len(levels)
	var b strings.Builder

	tv, tnv := c.vars("T"), c.vars("U")
	j1v, j1n := c.vars("J"), c.vars("K")
	j2v, j2n := c.vars("L"), c.vars("M")
	xv := c.vars("X")

	// Machine levels[j] is M_{k-j}; write strata top-down like the paper.
	for j, mach := range levels {
		i := k - j
		fmt.Fprintf(&b, "%% ---- machine M_%d (%s) ----\n", i, mach.Name)

		// (i) accepting ids.
		for _, q := range states(mach) {
			if mach.Accepting[q] {
				fmt.Fprintf(&b, "accept_%d(%s) :- %s(%s).\n",
					i, args(tv), controlPred(i, q), args(j1v, j2v, tv))
			}
		}

		// (ii) transition rules.
		for _, tr := range mach.Transitions {
			var prem []string
			prem = append(prem, c.nextAtom(tv, tnv))
			prem = append(prem, fmt.Sprintf("%s(%s)", controlPred(i, tr.From), args(j1v, j2v, tv)))
			prem = append(prem, fmt.Sprintf("%s(%s)", cellPred(i, tr.Read), args(j1v, tv)))
			newWork := j1v
			switch tr.MoveWork {
			case Left:
				prem = append(prem, c.nextAtom(j1n, j1v))
				newWork = j1n
			case Right:
				prem = append(prem, c.nextAtom(j1v, j1n))
				newWork = j1n
			}
			newOracle := j2v
			var adds []string
			if tr.WriteOracle != 0 {
				prem = append(prem, c.nextAtom(j2v, j2n))
				newOracle = j2n
				adds = append(adds, fmt.Sprintf("%s(%s)", cellPred(i-1, tr.WriteOracle), args(j2v, tnv)))
			}
			adds = append([]string{
				fmt.Sprintf("%s(%s)", controlPred(i, tr.To), args(newWork, newOracle, tnv)),
				fmt.Sprintf("%s(%s)", cellPred(i, tr.WriteWork), args(j1v, tnv)),
			}, adds...)
			fmt.Fprintf(&b, "accept_%d(%s) :- %s, accept_%d(%s)[add: %s].\n",
				i, args(tv), strings.Join(prem, ", "), i, args(tnv), strings.Join(adds, ", "))
		}

		// (iii) oracle invocation.
		if mach.QueryState != "" {
			qq := controlPred(i, mach.QueryState)
			fmt.Fprintf(&b, "accept_%d(%s) :- %s, %s(%s), oracle_%d(%s), accept_%d(%s)[add: %s(%s)].\n",
				i, args(tv), c.nextAtom(tv, tnv), qq, args(j1v, j2v, tv), i-1, args(tv),
				i, args(tnv), controlPred(i, mach.YesState), args(j1v, j2v, tnv))
			fmt.Fprintf(&b, "accept_%d(%s) :- %s, %s(%s), not oracle_%d(%s), accept_%d(%s)[add: %s(%s)].\n",
				i, args(tv), c.nextAtom(tv, tnv), qq, args(j1v, j2v, tv), i-1, args(tv),
				i, args(tnv), controlPred(i, mach.NoState), args(j1v, j2v, tnv))
			fmt.Fprintf(&b, "oracle_%d(%s) :- %s, accept_%d(%s)[add: %s(%s)].\n",
				i-1, args(tv), c.firstAtom(xv), i-1, args(tv),
				controlPred(i-1, levels[j+1].Start), args(xv, xv, tv))
		}
	}

	// The frame axioms live in the bottom stratum.
	b.WriteString("% ---- frame axioms ----\n")
	for j, mach := range levels {
		i := k - j
		for _, sym := range mach.Alphabet {
			fmt.Fprintf(&b, "%s(%s) :- %s, %s(%s), not active_%d(%s).\n",
				cellPred(i, sym), args(j1v, tnv), c.nextAtom(tv, tnv),
				cellPred(i, sym), args(j1v, tv), i, args(j1v, tv))
		}
		// Work head of M_i is active unless M_i is suspended in its query
		// state.
		for _, q := range states(mach) {
			if mach.QueryState != "" && q == mach.QueryState {
				continue
			}
			fmt.Fprintf(&b, "active_%d(%s) :- %s(%s).\n",
				i, args(j1v, tv), controlPred(i, q), args(j1v, j2v, tv))
		}
		// Oracle head of M_{i+1} writes onto tape i.
		if j > 0 {
			above := levels[j-1]
			for _, q := range states(above) {
				if above.QueryState != "" && q == above.QueryState {
					continue
				}
				fmt.Fprintf(&b, "active_%d(%s) :- %s(%s).\n",
					i, args(j2v, tv), controlPred(i+1, q), args(j1v, j2v, tv))
			}
		}
	}

	// Top-level goal: complete M_k's initial id and start the simulation.
	fmt.Fprintf(&b, "accept :- %s, accept_%d(%s)[add: %s(%s)].\n",
		c.firstAtom(xv), k, args(xv), controlPred(k, m.Start), args(xv, xv, xv))
	return b.String(), nil
}

// EncodeDB emits DB(s̄): the counter 0..n-1 and the initial tape contents —
// the input on M_k's work tape, blanks everywhere else. (Section 5.1 uses
// the stored l=1 counter.)
func EncodeDB(m *Machine, input string, n int) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	if len(input) > n {
		return "", fmt.Errorf("turing: input longer than tape bound %d", n)
	}
	for i := 0; i < len(input); i++ {
		if !contains(m.Alphabet, input[i]) {
			return "", fmt.Errorf("turing: input symbol %q outside M_%d's alphabet", input[i], m.Depth())
		}
	}
	levels := m.Levels()
	k := len(levels)
	var b strings.Builder
	b.WriteString("% ---- counter ----\n")
	fmt.Fprintf(&b, "first(t0).\n")
	for t := 0; t+1 < n; t++ {
		fmt.Fprintf(&b, "next(t%d, t%d).\n", t, t+1)
	}
	fmt.Fprintf(&b, "last(t%d).\n", n-1)
	b.WriteString("% ---- initial tapes ----\n")
	for j, mach := range levels {
		i := k - j
		for pos := 0; pos < n; pos++ {
			sym := mach.Blank
			if i == k && pos < len(input) {
				sym = input[pos]
			}
			fmt.Fprintf(&b, "%s(t%d, t0).\n", cellPred(i, sym), pos)
		}
	}
	return b.String(), nil
}

// Encode emits the full program R(L) ∪ DB(s̄) plus the accept query.
func Encode(m *Machine, input string, n int) (string, error) {
	rules, err := EncodeRules(m)
	if err != nil {
		return "", err
	}
	db, err := EncodeDB(m, input, n)
	if err != nil {
		return "", err
	}
	return rules + db + "?- accept.\n", nil
}
