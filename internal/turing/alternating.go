package turing

import (
	"fmt"
	"strings"
)

// This file implements the PSPACE context that section 4 of the paper
// builds on: alternating Turing machines and their encoding as
// hypothetical rulebases via the non-linear rule form (2),
//
//	A ← B, A[add:C_1], A[add:C_2], ..., A[add:C_n],
//
// the form that linear stratification exists to exclude. A universal
// state's rule carries one recursive hypothetical premise per successor —
// every branch must accept — which is exactly form (2); existential states
// get one rule per transition, as in section 5.1. The encodings are
// evaluable by the uniform engine (PSPACE fragment) but are NOT linearly
// stratifiable, which the tests assert.

// AMachine is a single-tape alternating Turing machine. States listed in
// Universal require all applicable transitions to accept; all other
// states are existential. A configuration with an accepting state
// accepts; a universal configuration with no applicable transition
// accepts vacuously; an existential one with none rejects.
type AMachine struct {
	Name        string
	Start       string
	Accepting   map[string]bool
	Universal   map[string]bool
	Blank       byte
	Alphabet    []byte
	Transitions []ATransition
}

// ATransition is one move: in state From reading Read, write Write, move
// the head, and enter To.
type ATransition struct {
	From  string
	Read  byte
	Write byte
	Move  Move
	To    string
}

// Validate checks structural sanity.
func (m *AMachine) Validate() error {
	if m.Start == "" {
		return fmt.Errorf("turing: alternating machine %s has no start state", m.Name)
	}
	if !contains(m.Alphabet, m.Blank) {
		return fmt.Errorf("turing: alternating machine %s alphabet misses its blank", m.Name)
	}
	for _, tr := range m.Transitions {
		if !contains(m.Alphabet, tr.Read) || !contains(m.Alphabet, tr.Write) {
			return fmt.Errorf("turing: alternating machine %s transition %v uses symbols outside its alphabet", m.Name, tr)
		}
	}
	return nil
}

// aStates collects the machine's state names (sorted).
func (m *AMachine) aStates() []string {
	set := map[string]bool{m.Start: true}
	for q := range m.Accepting {
		set[q] = true
	}
	for q := range m.Universal {
		set[q] = true
	}
	for _, tr := range m.Transitions {
		set[tr.From] = true
		set[tr.To] = true
	}
	var out []string
	for q := range set {
		out = append(out, q)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Accepts reports whether the machine accepts the input within a tape and
// clock of n cells — the direct-simulation ground truth.
func (m *AMachine) Accepts(input string, n int) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	if len(input) > n {
		return false, fmt.Errorf("turing: input longer than tape bound %d", n)
	}
	tape := input + strings.Repeat(string(m.Blank), n-len(input))
	memo := map[string]int{} // 0 unknown, 1 accept, 2 reject
	type cfg struct {
		state string
		tape  string
		pos   int
		time  int
	}
	var accept func(c cfg) bool
	accept = func(c cfg) bool {
		if m.Accepting[c.state] {
			return true
		}
		key := fmt.Sprintf("%s|%d|%d|%s", c.state, c.pos, c.time, c.tape)
		if v := memo[key]; v != 0 {
			return v == 1
		}
		universal := m.Universal[c.state]
		read := c.tape[c.pos]
		var matching []ATransition
		for _, tr := range m.Transitions {
			if tr.From == c.state && tr.Read == read {
				matching = append(matching, tr)
			}
		}
		result := false
		switch {
		case universal && len(matching) == 0:
			// Vacuous for-all; in the encoding this rule has no clock
			// premise, so it accepts at any time.
			result = true
		case c.time+1 >= n:
			// Clock exhausted: no transition (and no encoding rule) fires.
			result = false
		default:
			// Universal: every branch must move legally and accept (a
			// branch that falls off the tape fails the whole for-all,
			// matching the encoding, whose single rule needs every
			// branch's move premise). Existential: some branch suffices.
			result = universal
			for _, tr := range matching {
				next := cfg{state: tr.To, time: c.time + 1, pos: c.pos}
				tp := []byte(c.tape)
				tp[c.pos] = tr.Write
				next.tape = string(tp)
				switch tr.Move {
				case Left:
					next.pos--
				case Right:
					next.pos++
				}
				branchOK := next.pos >= 0 && next.pos < n && accept(next)
				if universal && !branchOK {
					result = false
					break
				}
				if !universal && branchOK {
					result = true
					break
				}
			}
		}
		if result {
			memo[key] = 1
		} else {
			memo[key] = 2
		}
		return result
	}
	return accept(cfg{state: m.Start, tape: tape, time: 0}), nil
}

// EncodeAlternating emits the hypothetical rulebase simulating the
// alternating machine over the stored first/next/last counter, using the
// non-linear rule form (2) for universal states. Combine with
// EncodeAlternatingDB for the input.
func EncodeAlternating(m *AMachine) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%% ---- alternating machine %s (PSPACE encoding, rule form (2)) ----\n", m.Name)

	ctl := func(q string) string { return "actl_" + stName(q) }
	cell := func(sym byte) string { return "acell_" + symName(sym) }

	// Accepting ids.
	for _, q := range m.aStates() {
		if m.Accepting[q] {
			fmt.Fprintf(&b, "aaccept(T) :- %s(J, T).\n", ctl(q))
		}
	}

	// Group transitions by (state, read symbol).
	type key struct {
		q string
		c byte
	}
	groups := map[key][]ATransition{}
	for _, tr := range m.Transitions {
		k := key{tr.From, tr.Read}
		groups[k] = append(groups[k], tr)
	}

	// Deterministic iteration order.
	for _, q := range m.aStates() {
		for _, sym := range m.Alphabet {
			trs := groups[key{q, sym}]
			if len(trs) == 0 {
				continue
			}
			if m.Universal[q] {
				// One rule with every successor as its own recursive
				// hypothetical premise — rule form (2).
				prem := []string{"next(T, Tn)", fmt.Sprintf("%s(J, T)", ctl(q)),
					fmt.Sprintf("%s(J, T)", cell(sym))}
				var recs []string
				for bi, tr := range trs {
					jn := fmt.Sprintf("J%d", bi)
					switch tr.Move {
					case Left:
						prem = append(prem, fmt.Sprintf("next(%s, J)", jn))
					case Right:
						prem = append(prem, fmt.Sprintf("next(J, %s)", jn))
					default:
						jn = "J"
					}
					recs = append(recs, fmt.Sprintf("aaccept(Tn)[add: %s(%s, Tn), %s(J, Tn)]",
						ctl(tr.To), jn, cell(tr.Write)))
				}
				fmt.Fprintf(&b, "aaccept(T) :- %s, %s.\n",
					strings.Join(prem, ", "), strings.Join(recs, ", "))
			} else {
				// Existential: one rule per transition, as in section 5.1.
				for _, tr := range trs {
					prem := []string{"next(T, Tn)", fmt.Sprintf("%s(J, T)", ctl(q)),
						fmt.Sprintf("%s(J, T)", cell(sym))}
					jn := "J"
					switch tr.Move {
					case Left:
						prem = append(prem, "next(Jn, J)")
						jn = "Jn"
					case Right:
						prem = append(prem, "next(J, Jn)")
						jn = "Jn"
					}
					fmt.Fprintf(&b, "aaccept(T) :- %s, aaccept(Tn)[add: %s(%s, Tn), %s(J, Tn)].\n",
						strings.Join(prem, ", "), ctl(tr.To), jn, cell(tr.Write))
				}
			}
		}
	}

	// Universal states with no applicable transition accept vacuously:
	// one rule per (universal state, symbol) pair without transitions.
	for _, q := range m.aStates() {
		if !m.Universal[q] || m.Accepting[q] {
			continue
		}
		for _, sym := range m.Alphabet {
			if len(groups[key{q, sym}]) == 0 {
				fmt.Fprintf(&b, "aaccept(T) :- %s(J, T), %s(J, T).\n", ctl(q), cell(sym))
			}
		}
	}

	// Frame axioms.
	for _, sym := range m.Alphabet {
		fmt.Fprintf(&b, "%s(J, Tn) :- next(T, Tn), %s(J, T), not aactive(J, T).\n",
			cell(sym), cell(sym))
	}
	for _, q := range m.aStates() {
		fmt.Fprintf(&b, "aactive(J, T) :- %s(J, T).\n", ctl(q))
	}

	// Start rule.
	fmt.Fprintf(&b, "accept :- first(X), aaccept(X)[add: %s(X, X)].\n", ctl(m.Start))
	return b.String(), nil
}

// EncodeAlternatingDB emits the counter and initial tape for an
// alternating-machine encoding.
func EncodeAlternatingDB(m *AMachine, input string, n int) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	if len(input) > n {
		return "", fmt.Errorf("turing: input longer than tape bound %d", n)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "first(t0).\n")
	for t := 0; t+1 < n; t++ {
		fmt.Fprintf(&b, "next(t%d, t%d).\n", t, t+1)
	}
	fmt.Fprintf(&b, "last(t%d).\n", n-1)
	for pos := 0; pos < n; pos++ {
		sym := m.Blank
		if pos < len(input) {
			sym = input[pos]
		}
		fmt.Fprintf(&b, "acell_%s(t%d, t0).\n", symName(sym), pos)
	}
	return b.String(), nil
}

// AllOnesForall accepts strings of 1s (up to the first blank) using a
// UNIVERSAL scanning state: reading a '0' branches into a live path and a
// dead one, so the for-all fails exactly on inputs containing a 0.
// Deliberately the same language as AllOnes, decided by alternation.
func AllOnesForall() *AMachine {
	return &AMachine{
		Name:      "all-ones-forall",
		Start:     "u0",
		Accepting: map[string]bool{"qa": true},
		Universal: map[string]bool{"u0": true},
		Blank:     'x',
		Alphabet:  Alphabet01,
		Transitions: []ATransition{
			{From: "u0", Read: '1', Write: '1', Move: Right, To: "u0"},
			{From: "u0", Read: 'x', Write: 'x', Move: Stay, To: "qa"},
			// On a 0 the universal state must satisfy BOTH branches; qd is
			// a dead existential state, so any 0 rejects.
			{From: "u0", Read: '0', Write: '0', Move: Right, To: "u0"},
			{From: "u0", Read: '0', Write: '0', Move: Stay, To: "qd"},
		},
	}
}

// HasDoubleOne accepts strings containing "11": an existential scan
// commits to a position, then a universal state checks both that the
// committed cell holds a 1 (immediate accept branch) and that the next
// cell does too. A genuine ∃∀ alternation.
func HasDoubleOne() *AMachine {
	return &AMachine{
		Name:      "has-double-one",
		Start:     "e0",
		Accepting: map[string]bool{"qa": true},
		Universal: map[string]bool{"uv": true},
		Blank:     'x',
		Alphabet:  Alphabet01,
		Transitions: []ATransition{
			// Existential scan; may commit on any 1.
			{From: "e0", Read: '0', Write: '0', Move: Right, To: "e0"},
			{From: "e0", Read: '1', Write: '1', Move: Right, To: "e0"},
			{From: "e0", Read: '1', Write: '1', Move: Stay, To: "uv"},
			// Universal check: both branches must accept.
			{From: "uv", Read: '1', Write: '1', Move: Stay, To: "qa"},
			{From: "uv", Read: '1', Write: '1', Move: Right, To: "qn"},
			// The second branch requires the NEXT cell to be a 1 too.
			{From: "qn", Read: '1', Write: '1', Move: Stay, To: "qa"},
		},
	}
}
