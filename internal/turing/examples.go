package turing

// Prebuilt machine cascades used by the tests, the Theorem 1 experiment,
// and the examples. All use the alphabet {x, 0, 1} with x as blank.

// Alphabet01 is the shared three-symbol alphabet; 'x' is the blank.
var Alphabet01 = []byte{'x', '0', '1'}

// HasOne is a deterministic one-level machine accepting the strings that
// contain a '1' (scanning right until it finds one or falls off the tape).
func HasOne() *Machine {
	return &Machine{
		Name:      "has-one",
		Start:     "q0",
		Accepting: map[string]bool{"qa": true},
		Blank:     'x',
		Alphabet:  Alphabet01,
		Transitions: []Transition{
			{From: "q0", Read: '0', WriteWork: '0', MoveWork: Right, To: "q0"},
			{From: "q0", Read: 'x', WriteWork: 'x', MoveWork: Right, To: "q0"},
			{From: "q0", Read: '1', WriteWork: '1', MoveWork: Stay, To: "qa"},
		},
	}
}

// GuessOne accepts the same language as HasOne but nondeterministically:
// in each step it may either move right or "commit" to the current cell,
// accepting only if that cell holds a '1'. It exercises the
// nondeterministic search of both the simulator and the encoding.
func GuessOne() *Machine {
	return &Machine{
		Name:      "guess-one",
		Start:     "q0",
		Accepting: map[string]bool{"qa": true},
		Blank:     'x',
		Alphabet:  Alphabet01,
		Transitions: []Transition{
			// Either skip right...
			{From: "q0", Read: '0', WriteWork: '0', MoveWork: Right, To: "q0"},
			{From: "q0", Read: '1', WriteWork: '1', MoveWork: Right, To: "q0"},
			{From: "q0", Read: 'x', WriteWork: 'x', MoveWork: Right, To: "q0"},
			// ...or commit to the scanned cell.
			{From: "q0", Read: '1', WriteWork: '1', MoveWork: Stay, To: "qa"},
		},
	}
}

// AllOnes accepts strings over {0,1} that consist only of 1s up to the
// first blank (the empty string accepts). Reading the bitmap of a unary
// relation, it decides "does the relation cover the whole domain?" — a
// generic query used by the section 6 expressibility construction.
func AllOnes() *Machine {
	return &Machine{
		Name:      "all-ones",
		Start:     "q0",
		Accepting: map[string]bool{"qa": true},
		Blank:     'x',
		Alphabet:  Alphabet01,
		Transitions: []Transition{
			{From: "q0", Read: '1', WriteWork: '1', MoveWork: Right, To: "q0"},
			{From: "q0", Read: 'x', WriteWork: 'x', MoveWork: Stay, To: "qa"},
			// Reading a 0 has no transition: the path rejects.
		},
	}
}

// EndsWithOne accepts strings over {0,1} whose last symbol before the
// first blank is '1'. It scans right to the blank, then steps LEFT and
// checks the symbol — the only prebuilt machine that exercises left moves
// (and therefore the encoding's next(J1n, J1) premise).
func EndsWithOne() *Machine {
	return &Machine{
		Name:      "ends-with-one",
		Start:     "q0",
		Accepting: map[string]bool{"qa": true},
		Blank:     'x',
		Alphabet:  Alphabet01,
		Transitions: []Transition{
			// Scan right over content.
			{From: "q0", Read: '0', WriteWork: '0', MoveWork: Right, To: "q0"},
			{From: "q0", Read: '1', WriteWork: '1', MoveWork: Right, To: "q0"},
			// At the first blank, step back left.
			{From: "q0", Read: 'x', WriteWork: 'x', MoveWork: Left, To: "qb"},
			// Accept iff the cell there is a 1.
			{From: "qb", Read: '1', WriteWork: '1', MoveWork: Stay, To: "qa"},
		},
	}
}

// copyThenAsk builds the two-level cascade: M_2 copies its input (up to
// the first blank) onto the oracle tape, then queries the HasOne oracle
// and accepts on the given answer. acceptOnYes selects whether M_2
// accepts the oracle's yes (same language as HasOne) or its no (the
// complement — this is the path that exercises the stratum-boundary
// negation ~ORACLE of section 5.1.3).
func copyThenAsk(name string, acceptOnYes bool) *Machine {
	acc := "pn"
	if acceptOnYes {
		acc = "py"
	}
	return &Machine{
		Name:       name,
		Start:      "p0",
		Accepting:  map[string]bool{acc: true},
		QueryState: "pq",
		YesState:   "py",
		NoState:    "pn",
		Blank:      'x',
		Alphabet:   Alphabet01,
		Oracle:     HasOne(),
		Transitions: []Transition{
			{From: "p0", Read: '0', WriteWork: '0', MoveWork: Right, WriteOracle: '0', To: "p0"},
			{From: "p0", Read: '1', WriteWork: '1', MoveWork: Right, WriteOracle: '1', To: "p0"},
			{From: "p0", Read: 'x', WriteWork: 'x', MoveWork: Stay, WriteOracle: 'x', To: "pq"},
		},
	}
}

// CopyThenAskYes is the two-level cascade accepting inputs with a '1'
// (via the oracle's yes answer).
func CopyThenAskYes() *Machine { return copyThenAsk("copy-ask-yes", true) }

// CopyThenAskNo is the two-level cascade accepting inputs without any '1'
// (via the oracle's no answer) — a coNP-shaped use of the oracle.
func CopyThenAskNo() *Machine { return copyThenAsk("copy-ask-no", false) }

// ThreeLevel builds a k=3 cascade: M_3 copies its input to M_2, which
// copies its input to M_1 (HasOne); M_3 accepts iff M_2 answers no, and
// M_2 accepts iff M_1 answers yes. Net effect: M_3 accepts inputs with no
// '1'. Its value is exercising three strata of the encoding.
func ThreeLevel() *Machine {
	m2 := copyThenAsk("mid-copy-ask-yes", true)
	return &Machine{
		Name:       "three-level",
		Start:      "r0",
		Accepting:  map[string]bool{"rn": true},
		QueryState: "rq",
		YesState:   "ry",
		NoState:    "rn",
		Blank:      'x',
		Alphabet:   Alphabet01,
		Oracle:     m2,
		Transitions: []Transition{
			{From: "r0", Read: '0', WriteWork: '0', MoveWork: Right, WriteOracle: '0', To: "r0"},
			{From: "r0", Read: '1', WriteWork: '1', MoveWork: Right, WriteOracle: '1', To: "r0"},
			{From: "r0", Read: 'x', WriteWork: 'x', MoveWork: Stay, WriteOracle: 'x', To: "rq"},
		},
	}
}
