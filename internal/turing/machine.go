// Package turing implements the substrate of Theorem 1's lower bound
// (section 5.1): nondeterministic oracle Turing machines — a direct
// simulator, and the paper's compiler from a cascade of machines
// M_k, ..., M_1 into a hypothetical rulebase R(L) with k strata plus a
// database DB(s̄).
//
// # Machine model
//
// Each machine M_i has one read/write work tape and, if it has an oracle,
// one write-only oracle tape whose head only moves right; the oracle tape
// of M_i is the work tape of M_{i-1}. Every non-query step writes its work
// cell (possibly rewriting the same symbol); on machines with an oracle,
// every non-query step also writes one symbol at the oracle head and
// advances it. Entering the query state suspends M_i for one time step:
// the oracle M_{i-1} is started in its initial state on the current oracle
// tape (its own tapes start blank at every invocation, and any writes it
// performs are discarded when it returns), and M_i resumes in YesState or
// NoState. A computation accepts when it reaches an accepting state.
//
// Time and tape are bounded by a shared clock 0..N-1 (the counter of
// DB(s̄)); an oracle invoked at time t has only the remaining N-1-t steps,
// exactly as in the encoding, where the nested ACCEPT_{i-1} recursion
// consumes the same counter.
package turing

import (
	"fmt"
	"strings"
)

// Move directions for the work head.
type Move int

// Work-head movements.
const (
	Stay Move = iota
	Left
	Right
)

func (m Move) String() string {
	switch m {
	case Stay:
		return "S"
	case Left:
		return "L"
	case Right:
		return "R"
	default:
		return "?"
	}
}

// Transition is one nondeterministic choice: in state From reading Read at
// the work head, write WriteWork, move the work head, optionally write
// WriteOracle at the oracle head (which then advances one cell; only legal
// on machines with an oracle), and enter state To.
type Transition struct {
	From        string
	Read        byte
	WriteWork   byte
	MoveWork    Move
	WriteOracle byte // 0 = no oracle write (required 0 when no oracle)
	To          string
}

// Machine is a nondeterministic (oracle) Turing machine.
type Machine struct {
	Name        string
	Start       string
	Accepting   map[string]bool
	QueryState  string // "" if the machine never queries
	YesState    string
	NoState     string
	Blank       byte
	Alphabet    []byte // must include Blank
	Transitions []Transition
	Oracle      *Machine // machine one level down, nil at the bottom
}

// Levels returns the machines of the cascade from the top down:
// M_k, M_{k-1}, ..., M_1.
func (m *Machine) Levels() []*Machine {
	var out []*Machine
	for cur := m; cur != nil; cur = cur.Oracle {
		out = append(out, cur)
	}
	return out
}

// Depth returns k, the number of machines in the cascade.
func (m *Machine) Depth() int { return len(m.Levels()) }

// Validate checks structural sanity: states referenced by transitions
// exist implicitly; oracle writes only on machines with oracles; query
// plumbing is complete when QueryState is set.
func (m *Machine) Validate() error {
	for _, lv := range m.Levels() {
		if lv.Start == "" {
			return fmt.Errorf("turing: machine %s has no start state", lv.Name)
		}
		if !contains(lv.Alphabet, lv.Blank) {
			return fmt.Errorf("turing: machine %s alphabet misses its blank", lv.Name)
		}
		if lv.QueryState != "" {
			if lv.Oracle == nil {
				return fmt.Errorf("turing: machine %s queries but has no oracle", lv.Name)
			}
			if lv.YesState == "" || lv.NoState == "" {
				return fmt.Errorf("turing: machine %s misses yes/no states", lv.Name)
			}
		}
		for _, tr := range lv.Transitions {
			if tr.From == lv.QueryState && lv.QueryState != "" {
				return fmt.Errorf("turing: machine %s has a transition out of the query state %s; the query mechanism handles it", lv.Name, tr.From)
			}
			if tr.WriteOracle != 0 && lv.Oracle == nil {
				return fmt.Errorf("turing: machine %s writes an oracle tape it does not have", lv.Name)
			}
			if tr.WriteOracle == 0 && lv.Oracle != nil {
				return fmt.Errorf("turing: machine %s transition %v must write the oracle tape (the model writes every step)", lv.Name, tr)
			}
			if !contains(lv.Alphabet, tr.Read) || !contains(lv.Alphabet, tr.WriteWork) {
				return fmt.Errorf("turing: machine %s transition %v uses symbols outside its alphabet", lv.Name, tr)
			}
		}
	}
	return nil
}

func contains(bs []byte, b byte) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// config is a simulator configuration of one machine.
type config struct {
	state     string
	work      string // full tape contents, length N
	workPos   int
	oracle    string // oracle tape contents (empty when no oracle)
	oraclePos int
	time      int
}

func (c config) key() string {
	return fmt.Sprintf("%s|%d|%d|%d|%s|%s", c.state, c.workPos, c.oraclePos, c.time, c.work, c.oracle)
}

// Accepts reports whether the cascade headed by m accepts input on a tape
// and clock of N cells, starting at time 0 — the direct-simulation ground
// truth that the rulebase encoding is tested against.
func (m *Machine) Accepts(input string, n int) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	if len(input) > n {
		return false, fmt.Errorf("turing: input longer than tape bound %d", n)
	}
	tape := input + strings.Repeat(string(m.Blank), n-len(input))
	return m.run(tape, 0, n), nil
}

// run explores all computation paths of m on the given work tape starting
// at startTime, with times bounded by 0..n-1. It memoises visited
// configurations (time is part of the key, so the search space is finite
// and acyclic in time).
func (m *Machine) run(workTape string, startTime, n int) bool {
	visited := map[string]bool{}
	var oracleTape string
	if m.Oracle != nil {
		oracleTape = strings.Repeat(string(m.Oracle.Blank), n)
	}
	start := config{
		state:  m.Start,
		work:   workTape,
		oracle: oracleTape,
		time:   startTime,
	}
	var accept func(c config) bool
	accept = func(c config) bool {
		if m.Accepting[c.state] {
			return true
		}
		k := c.key()
		if visited[k] {
			return false
		}
		visited[k] = true
		if c.time+1 >= n {
			return false // no NEXT(t, t') — the clock is exhausted
		}
		if m.QueryState != "" && c.state == m.QueryState {
			// Oracle invocation: the oracle runs on a copy of the oracle
			// tape, starting at the current time, and its writes are
			// discarded (they happen in a nested hypothetical state).
			ans := m.Oracle.run(c.oracle, c.time, n)
			next := c
			next.time++
			if ans {
				next.state = m.YesState
			} else {
				next.state = m.NoState
			}
			return accept(next)
		}
		read := c.work[c.workPos]
		for _, tr := range m.Transitions {
			if tr.From != c.state || tr.Read != read {
				continue
			}
			next := c
			next.state = tr.To
			next.time++
			w := []byte(c.work)
			w[c.workPos] = tr.WriteWork
			next.work = string(w)
			switch tr.MoveWork {
			case Left:
				next.workPos--
			case Right:
				next.workPos++
			}
			if next.workPos < 0 || next.workPos >= n {
				continue // fell off the tape: this path dies
			}
			if tr.WriteOracle != 0 {
				if c.oraclePos >= n {
					continue
				}
				o := []byte(c.oracle)
				o[c.oraclePos] = tr.WriteOracle
				next.oracle = string(o)
				next.oraclePos++
			}
			if accept(next) {
				return true
			}
		}
		return false
	}
	return accept(start)
}
