package magic

import (
	"strings"
	"sync"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/symbols"
)

// Compiled is one demand pattern compiled and ready to evaluate: the
// transformed rules lowered through ast.Compile against the program's
// shared symbol table. CP is nil when the pattern is ineligible for
// demand evaluation (the transform was degenerate or the transformed
// rules failed to compile, e.g. a guarded body overflowing the premise
// cap); callers then fall back to full evaluation.
type Compiled struct {
	T  *Transformed
	CP *ast.CProgram
	// RuleIdx indexes every rule of CP (the demand prover owns them all).
	RuleIdx []int
	// Seed is the interned magic predicate of the query pattern.
	Seed symbols.Pred
	// Mentioned is T.Mentioned interned: every predicate the transformed
	// rules consult. A commit whose cone is disjoint from Mentioned
	// cannot change any answer this pattern produces.
	Mentioned []symbols.Pred
}

// Eligible reports whether the pattern can actually be evaluated
// demand-driven.
func (c *Compiled) Eligible() bool { return c != nil && c.CP != nil }

// Set is a per-program cache of compiled demand patterns, shared by
// every engine built over the program (the pool's engines all point at
// one Set). Patterns are transformed and compiled lazily, once per
// queried predicate; the symbol table is safe for concurrent interning,
// so Set only guards its own map.
type Set struct {
	prog *ast.Program
	syms *symbols.Table

	mu     sync.Mutex
	byPred map[ast.PredSig]*Compiled
}

// NewSet builds an empty pattern cache over the program.
func NewSet(p *ast.Program, syms *symbols.Table) *Set {
	return &Set{prog: p, syms: syms, byPred: map[ast.PredSig]*Compiled{}}
}

// For returns the compiled demand pattern for ground (all-bound) queries
// on sig, transforming and compiling it on first use. The result is
// never nil; check Eligible.
func (s *Set) For(sig ast.PredSig) *Compiled {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.byPred[sig]; ok {
		return c
	}
	c := s.compile(sig)
	s.byPred[sig] = c
	return c
}

func (s *Set) compile(sig ast.PredSig) *Compiled {
	t, err := Transform(s.prog, sig, strings.Repeat("b", sig.Arity))
	if err != nil || t.Degenerate {
		if t == nil {
			t = &Transformed{Query: sig, Degenerate: true}
		}
		return &Compiled{T: t}
	}
	cp, err := ast.Compile(&ast.Program{Rules: t.Rules}, s.syms)
	if err != nil {
		return &Compiled{T: t}
	}
	// Plain premises on out-of-scope intensional predicates must route to
	// the oracle (the full engine), not be read as extensional: mark the
	// source program's rule heads intensional in the compiled view too.
	for _, r := range s.prog.Rules {
		cp.IDB[s.syms.Pred(r.Head.Pred, r.Head.Arity())] = true
	}
	idx := make([]int, len(cp.Rules))
	for i := range idx {
		idx[i] = i
	}
	mentioned := make([]symbols.Pred, 0, len(t.Mentioned))
	for ms := range t.Mentioned {
		mentioned = append(mentioned, s.syms.Pred(ms.Name, ms.Arity))
	}
	return &Compiled{
		T:         t,
		CP:        cp,
		RuleIdx:   idx,
		Seed:      s.syms.Pred(t.SeedPred.Name, t.SeedPred.Arity),
		Mentioned: mentioned,
	}
}

// Installed returns the transformed rules of every eligible pattern
// compiled so far, for dependency-graph extension: commit-cone
// computation walks these so magic predicates land inside the cones of
// the base facts they consult.
func (s *Set) Installed() []ast.Rule {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ast.Rule
	for _, c := range s.byPred {
		if c.Eligible() {
			out = append(out, c.T.Rules...)
		}
	}
	return out
}
