// Package magic implements the demand-driven (magic-sets) rewrite of a
// stratified hypothetical-Datalog program for a single query pattern.
//
// The rewrite follows the extended magic-sets construction of Tekle &
// Liu (arXiv:1909.08246), adapted to this system's hypothetical cascade
// in three ways:
//
//   - Guarded answer rules instead of renamed adorned copies. Each
//     original rule p(x̄) :- B is kept verbatim and guarded by a magic
//     premise on p's bound head arguments:
//
//     p(x̄) :- 'magic$p$a'(bound(x̄)), B.
//
//     Derived atoms are plain p-atoms, so answers from different
//     adornments union soundly and magic predicates never leak into
//     user-visible answers or proof trees (the restricted-predicate
//     discipline of Sáenz-Pérez, arXiv:1512.06945).
//
//   - Demand flows only through positive plain premises inside the
//     strat.DemandScope: predicates consulted under negation or inside
//     a hypothetical [add:]/[del:] premise are forced out of scope and
//     answered by the full engine (the rewrite's oracle), so demand
//     never peeks below an unsafe stratum and negation is never applied
//     to a partial, demanded model.
//
//   - The magic seed is a fact in the query state's hypothetical delta,
//     not in the program: the evaluator adds 'magic$q$a'(bound args) to
//     the per-query state, so the hypothetical context's effective
//     delta and the demand seed travel together and per-state
//     materialisation caches stay keyed correctly.
//
// Sideways information passing uses the left-to-right plain-premise
// prefix: a subgoal argument is bound iff it is a constant or a variable
// occurring in the magic guard or an earlier plain premise of the same
// rule. Variables bound only by negated or hypothetical premises are
// conservatively treated as free — that can only enlarge the demanded
// set, never lose answers.
package magic

import (
	"fmt"
	"strings"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/strat"
)

// Transformed is the result of rewriting one program for one query
// pattern.
type Transformed struct {
	Query     ast.PredSig // the demanded predicate
	Adornment string      // 'b'/'f' per argument position of Query

	// Degenerate is set when the rewrite would not restrict anything —
	// the adornment has no bound argument (and the query has arguments),
	// or the query predicate falls outside the demand scope. Rules then
	// holds the original program's rules unchanged.
	Degenerate bool

	// Rules is the transformed rule set: guarded answer rules for every
	// in-scope predicate reachable from the query, plus the magic and
	// supplementary rules that drive demand.
	Rules []ast.Rule

	// SeedPred is the magic predicate of the query pattern itself; the
	// evaluator seeds one SeedPred fact holding the query's bound
	// arguments (in position order) into the query state.
	SeedPred ast.PredSig
	// BoundPos lists the query argument positions (0-based) that are
	// bound in the adornment, in order; SeedPred.Arity == len(BoundPos).
	BoundPos []int

	// Scope is the demand scope the rewrite used (strat.DemandScope).
	Scope map[ast.PredSig]bool

	// Mentioned holds every predicate occurring anywhere in Rules
	// (heads, premises, add/del lists). A commit whose cone is disjoint
	// from Mentioned cannot change any demanded answer.
	Mentioned map[ast.PredSig]bool
}

// adorned keys the transformation worklist: one entry per (predicate,
// adornment) pattern demanded somewhere.
type adorned struct {
	sig ast.PredSig
	ad  string
}

// Transform rewrites the program for a query on sig with the given
// adornment ('b' = bound, 'f' = free, one rune per argument position).
// The input program is not modified; transformed rules share atom/premise
// values with it and must be treated as immutable.
func Transform(p *ast.Program, query ast.PredSig, adornment string) (*Transformed, error) {
	if len(adornment) != query.Arity {
		return nil, fmt.Errorf("magic: adornment %q has length %d, want %d for %s",
			adornment, len(adornment), query.Arity, query)
	}
	for _, c := range adornment {
		if c != 'b' && c != 'f' {
			return nil, fmt.Errorf("magic: adornment %q: want only 'b'/'f'", adornment)
		}
	}
	t := &Transformed{Query: query, Adornment: adornment}
	t.Scope = strat.DemandScope(p, query)
	if (query.Arity > 0 && !strings.Contains(adornment, "b")) || !t.Scope[query] {
		t.Degenerate = true
		t.Rules = append([]ast.Rule(nil), p.Rules...)
		return t, nil
	}

	// Collision-safe naming: generated predicates must not clash with any
	// predicate of the user program (or each other).
	taken := map[ast.PredSig]bool{}
	for _, sig := range p.Predicates() {
		taken[sig] = true
	}
	fresh := func(name string, arity int) ast.PredSig {
		for taken[ast.PredSig{Name: name, Arity: arity}] {
			name += "$"
		}
		sig := ast.PredSig{Name: name, Arity: arity}
		taken[sig] = true
		return sig
	}
	magicPreds := map[adorned]ast.PredSig{}
	magicPred := func(sig ast.PredSig, ad string) ast.PredSig {
		key := adorned{sig, ad}
		if m, ok := magicPreds[key]; ok {
			return m
		}
		m := fresh("magic$"+sig.Name+"$"+ad, strings.Count(ad, "b"))
		magicPreds[key] = m
		return m
	}

	rulesOf := map[ast.PredSig][]int{}
	for ri, r := range p.Rules {
		sig := ast.PredSig{Name: r.Head.Pred, Arity: r.Head.Arity()}
		rulesOf[sig] = append(rulesOf[sig], ri)
	}

	var out []ast.Rule
	seen := map[adorned]bool{}
	queue := []adorned{{query, adornment}}
	seen[queue[0]] = true
	for len(queue) > 0 {
		qa := queue[0]
		queue = queue[1:]
		for _, ri := range rulesOf[qa.sig] {
			out = append(out, transformRule(p.Rules[ri], ri, qa, t.Scope,
				magicPred, fresh, func(next adorned) {
					if !seen[next] {
						seen[next] = true
						queue = append(queue, next)
					}
				})...)
		}
	}

	t.SeedPred = magicPreds[adorned{query, adornment}]
	for i, c := range adornment {
		if c == 'b' {
			t.BoundPos = append(t.BoundPos, i)
		}
	}
	t.Rules = out
	t.Mentioned = mentions(out)
	return t, nil
}

// transformRule emits the guarded answer rule for one source rule under
// one head adornment, plus the magic (and supplementary) rules that pass
// demand to its in-scope plain subgoals.
func transformRule(r ast.Rule, ri int, qa adorned, scope map[ast.PredSig]bool,
	magicPred func(ast.PredSig, string) ast.PredSig,
	fresh func(string, int) ast.PredSig,
	demand func(adorned)) []ast.Rule {

	guard := guardAtom(magicPred(qa.sig, qa.ad), r.Head, qa.ad)
	rules := []ast.Rule{{
		Head: r.Head,
		Body: append([]ast.Premise{ast.PlainP(guard)}, r.Body...),
	}}

	// ctx is the sideways-information-passing prefix: the guard followed
	// by the plain premises seen so far (possibly compressed into one
	// supplementary premise). boundList/boundSet track the variables it
	// binds, in first-occurrence order.
	ctx := []ast.Premise{ast.PlainP(guard)}
	var boundList []string
	boundSet := map[string]bool{}
	bind := func(a ast.Atom) {
		for _, arg := range a.Args {
			if arg.IsVar && !boundSet[arg.Name] {
				boundSet[arg.Name] = true
				boundList = append(boundList, arg.Name)
			}
		}
	}
	bind(guard)
	emitted := false
	for pi, pr := range r.Body {
		if pr.Kind != ast.Plain {
			// Negated and hypothetical premises neither receive demand
			// (their targets are out of scope by construction) nor bind
			// variables for the SIP prefix: treating their variables as
			// free only widens the demanded set, which is sound.
			continue
		}
		sig := ast.PredSig{Name: pr.Atom.Pred, Arity: pr.Atom.Arity()}
		if scope[sig] {
			ad := adornOf(pr.Atom, boundSet)
			if emitted && len(ctx) > 1 {
				// Second (or later) magic rule from this source rule:
				// compress the shared prefix into one supplementary
				// predicate so it is evaluated once, not per magic rule.
				sup := fresh(fmt.Sprintf("sup$%s$%s$%d$%d", qa.sig.Name, qa.ad, ri, pi),
					len(boundList))
				supAtom := ast.Atom{Pred: sup.Name, Args: varTerms(boundList)}
				rules = append(rules, ast.Rule{Head: supAtom, Body: ctx})
				ctx = []ast.Premise{ast.PlainP(supAtom)}
			}
			m := magicPred(sig, ad)
			rules = append(rules, ast.Rule{
				Head: guardAtom(m, pr.Atom, ad),
				Body: append([]ast.Premise(nil), ctx...),
			})
			emitted = true
			demand(adorned{sig, ad})
		}
		ctx = append(ctx, pr)
		bind(pr.Atom)
	}
	return rules
}

// guardAtom builds the magic atom for a predicate occurrence: the magic
// predicate applied to the occurrence's arguments at the adornment's
// bound positions, in position order.
func guardAtom(m ast.PredSig, a ast.Atom, ad string) ast.Atom {
	args := make([]ast.Term, 0, m.Arity)
	for i, c := range ad {
		if c == 'b' {
			args = append(args, a.Args[i])
		}
	}
	return ast.Atom{Pred: m.Name, Args: args}
}

// adornOf computes a subgoal's adornment against the set of variables
// bound by the SIP prefix: constants and bound variables are 'b',
// everything else 'f'.
func adornOf(a ast.Atom, bound map[string]bool) string {
	var b strings.Builder
	for _, arg := range a.Args {
		if !arg.IsVar || bound[arg.Name] {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

func varTerms(names []string) []ast.Term {
	out := make([]ast.Term, len(names))
	for i, n := range names {
		out[i] = ast.Var(n)
	}
	return out
}

// mentions collects every predicate occurring anywhere in the rules.
func mentions(rules []ast.Rule) map[ast.PredSig]bool {
	out := map[ast.PredSig]bool{}
	add := func(a ast.Atom) { out[ast.PredSig{Name: a.Pred, Arity: a.Arity()}] = true }
	for _, r := range rules {
		add(r.Head)
		for _, pr := range r.Body {
			add(pr.Atom)
			for _, a := range pr.Adds {
				add(a)
			}
			for _, a := range pr.Dels {
				add(a)
			}
		}
	}
	return out
}
