package magic_test

import (
	"sort"
	"strings"
	"testing"

	hypo "hypodatalog"
	"hypodatalog/internal/ast"
	"hypodatalog/internal/magic"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/strat"
)

// propPrograms is a small corpus spanning the language: plain recursion,
// negation (including negation over recursion), hypothetical add/del
// premises, and mutual recursion.
var propPrograms = []struct {
	name string
	src  string
}{
	{"reach", `
		edge(a, b). edge(b, c). edge(c, d).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`},
	{"nonlinear-path", `
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, Z), path(Z, Y).
	`},
	{"negation-over-recursion", `
		edge(a, b). edge(b, c). node(a). node(b). node(c).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
		unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
	`},
	{"mutual", `
		e(a, b). e(b, c).
		p(X) :- q(X).
		q(X) :- e(X, Y), p(Y).
		q(c).
		r(X) :- p(X), not q(X).
	`},
	{"hypothetical", `
		take(tony, his101). take(sam, his101). take(sam, eng201).
		grad(S) :- take(S, his101), take(S, eng201).
		eligible(S) :- grad(S)[add: take(S, eng201)].
		blocked(S) :- grad(S)[del: take(S, his101)].
	`},
}

func idbSigs(p *ast.Program) []ast.PredSig {
	seen := map[ast.PredSig]bool{}
	var out []ast.PredSig
	for _, r := range p.Rules {
		sig := ast.PredSig{Name: r.Head.Pred, Arity: r.Head.Arity()}
		if !seen[sig] {
			seen[sig] = true
			out = append(out, sig)
		}
	}
	return out
}

// Every non-degenerate transform must keep negation stratified: the
// rewrite adds only positive premises (magic guards, supplementary
// joins), so recursion through negation cannot appear where the source
// program had none.
func TestTransformPreservesStratifiedNegation(t *testing.T) {
	for _, tc := range propPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := strat.CheckNegation(prog); err != nil {
				t.Fatalf("source not stratified: %v", err)
			}
			for _, sig := range idbSigs(prog) {
				tr, err := magic.Transform(prog, sig, strings.Repeat("b", sig.Arity))
				if err != nil {
					t.Fatalf("Transform(%s): %v", sig, err)
				}
				out := &ast.Program{Rules: tr.Rules, Facts: prog.Facts}
				if err := strat.CheckNegation(out); err != nil {
					t.Errorf("Transform(%s): output not stratified: %v", sig, err)
				}
			}
		})
	}
}

// An adornment with no bound arguments carries no demand: the transform
// must degenerate to exactly the original rule set.
func TestTransformAllFreeDegenerates(t *testing.T) {
	for _, tc := range propPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, sig := range idbSigs(prog) {
				if sig.Arity == 0 {
					continue // a 0-ary query is trivially all-bound
				}
				tr, err := magic.Transform(prog, sig, strings.Repeat("f", sig.Arity))
				if err != nil {
					t.Fatalf("Transform(%s): %v", sig, err)
				}
				if !tr.Degenerate {
					t.Fatalf("Transform(%s, all-free) not degenerate", sig)
				}
				if len(tr.Rules) != len(prog.Rules) {
					t.Fatalf("degenerate rule count %d, want %d", len(tr.Rules), len(prog.Rules))
				}
				for i := range tr.Rules {
					if got, want := tr.Rules[i].String(), prog.Rules[i].String(); got != want {
						t.Errorf("degenerate rule %d = %s, want %s", i, got, want)
					}
				}
			}
		})
	}
}

// Every generated predicate must be fresh: magic and supplementary
// names never collide with a predicate of the source program, even a
// hostile one that already uses magic$-shaped names.
func TestTransformFreshNames(t *testing.T) {
	src := `
		'magic$reach$bb'(a, b).
		edge(a, b).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y), 'magic$reach$bb'(X, Z).
	`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tr, err := magic.Transform(prog, ast.PredSig{Name: "reach", Arity: 2}, "bb")
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if tr.Degenerate {
		t.Fatal("unexpected degenerate transform")
	}
	orig := map[ast.PredSig]bool{}
	for _, sig := range prog.Predicates() {
		orig[sig] = true
	}
	for sig := range tr.Mentioned {
		if strings.HasPrefix(sig.Name, "magic$") || strings.HasPrefix(sig.Name, "sup$") {
			if sig.Name == "magic$reach$bb" && sig.Arity == 2 {
				continue // the user's own predicate, mentioned by their rule
			}
			if orig[sig] {
				t.Errorf("generated predicate %s collides with the source program", sig)
			}
		}
	}
	if tr.SeedPred.Name == "magic$reach$bb" {
		t.Errorf("seed %s collides with a user predicate", tr.SeedPred)
	}
}

// Demand-driven answers must be bit-identical to full evaluation, and
// magic predicates must never surface in answers or proof trees.
func TestDemandAnswersMatchAndStayClean(t *testing.T) {
	queries := map[string][]string{
		"reach":                   {"reach(a, d)", "reach(d, a)", "reach(X, Y)", "reach(a, Y)"},
		"nonlinear-path":          {"path(a, c)", "path(c, a)", "path(X, Y)"},
		"negation-over-recursion": {"unreachable(c, a)", "unreachable(a, c)", "unreachable(X, Y)"},
		"mutual":                  {"p(a)", "r(a)", "r(c)", "q(X)"},
		"hypothetical":            {"grad(sam)", "eligible(tony)", "blocked(sam)", "eligible(X)"},
	}
	askUnder := map[string][][2]string{
		"reach":        {{"reach(a, d)", "edge(d, a)"}, {"reach(c, a)", "edge(d, a)"}},
		"hypothetical": {{"grad(tony)", "take(tony, eng201)"}},
	}
	for _, tc := range propPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := hypo.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			plain, err := hypo.New(prog, hypo.Options{Mode: hypo.ModeUniform})
			if err != nil {
				t.Fatalf("plain engine: %v", err)
			}
			dd, err := hypo.New(prog, hypo.Options{Mode: hypo.ModeUniform, DemandDriven: true})
			if err != nil {
				t.Fatalf("demand engine: %v", err)
			}
			for _, q := range queries[tc.name] {
				if strings.ContainsAny(q, "XYZ") {
					want := queryStrings(t, plain, q)
					got := queryStrings(t, dd, q)
					if strings.Join(got, "|") != strings.Join(want, "|") {
						t.Errorf("Query(%s): demand %v, full %v", q, got, want)
					}
					for _, b := range got {
						if strings.Contains(b, "magic$") || strings.Contains(b, "sup$") {
							t.Errorf("Query(%s): magic predicate leaked into answer %q", q, b)
						}
					}
					continue
				}
				want, err := plain.Ask(q)
				if err != nil {
					t.Fatalf("plain Ask(%s): %v", q, err)
				}
				got, err := dd.Ask(q)
				if err != nil {
					t.Fatalf("demand Ask(%s): %v", q, err)
				}
				if got != want {
					t.Errorf("Ask(%s): demand %v, full %v", q, got, want)
				}
			}
			for _, qa := range askUnder[tc.name] {
				want, err := plain.AskUnder(qa[0], qa[1])
				if err != nil {
					t.Fatalf("plain AskUnder(%s): %v", qa[0], err)
				}
				got, err := dd.AskUnder(qa[0], qa[1])
				if err != nil {
					t.Fatalf("demand AskUnder(%s): %v", qa[0], err)
				}
				if got != want {
					t.Errorf("AskUnder(%s)[add: %s]: demand %v, full %v", qa[0], qa[1], got, want)
				}
			}
			// Proof trees come from the uniform engine underneath the
			// demand wrapper and must show user rules only.
			for _, q := range queries[tc.name] {
				if strings.ContainsAny(q, "XYZ") {
					continue
				}
				proof, err := dd.Explain(q)
				if err != nil {
					t.Fatalf("Explain(%s): %v", q, err)
				}
				if strings.Contains(proof, "magic$") || strings.Contains(proof, "sup$") {
					t.Errorf("Explain(%s): magic predicate leaked into proof tree:\n%s", q, proof)
				}
			}
		})
	}
}

func queryStrings(t *testing.T, e *hypo.Engine, q string) []string {
	t.Helper()
	bs, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query(%s): %v", q, err)
	}
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		var parts []string
		for k, v := range b {
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}
