package magic

import (
	"strings"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
)

// The golden corpus pins the transformation's exact output rule sets so
// a regression diffs readably here instead of failing deep inside the
// differential fuzzer. Rules are compared in rendered surface syntax and
// in order (guarded answer rule first, then the magic/supplementary
// rules its body generates, rule by rule, worklist pattern by pattern).
func TestTransformGolden(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		query   ast.PredSig
		adorn   string
		seed    string
		degener bool
		want    []string
	}{
		{
			// The paper's flavor of linear recursion: transitive closure
			// over an edge relation, fully bound point query. Demand
			// propagates along the chain via one magic rule.
			name: "reach-chain-bb",
			src: `
				edge(a, b). edge(b, c).
				reach(X, Y) :- edge(X, Y).
				reach(X, Y) :- edge(X, Z), reach(Z, Y).
			`,
			query: ast.PredSig{Name: "reach", Arity: 2},
			adorn: "bb",
			seed:  "magic$reach$bb",
			want: []string{
				"reach(X, Y) :- 'magic$reach$bb'(X, Y), edge(X, Y).",
				"reach(X, Y) :- 'magic$reach$bb'(X, Y), edge(X, Z), reach(Z, Y).",
				"'magic$reach$bb'(Z, Y) :- 'magic$reach$bb'(X, Y), edge(X, Z).",
			},
		},
		{
			// Bound-free point query: only the first argument drives
			// demand, so the magic predicate is unary.
			name: "reach-chain-bf",
			src: `
				edge(a, b).
				reach(X, Y) :- edge(X, Y).
				reach(X, Y) :- edge(X, Z), reach(Z, Y).
			`,
			query: ast.PredSig{Name: "reach", Arity: 2},
			adorn: "bf",
			seed:  "magic$reach$bf",
			want: []string{
				"reach(X, Y) :- 'magic$reach$bf'(X), edge(X, Y).",
				"reach(X, Y) :- 'magic$reach$bf'(X), edge(X, Z), reach(Z, Y).",
				"'magic$reach$bf'(Z) :- 'magic$reach$bf'(X), edge(X, Z).",
			},
		},
		{
			// Non-linear (doubling) recursion exercises supplementary
			// compression: the second in-scope subgoal of a rule shares
			// its prefix through a sup predicate, and the bf pattern the
			// first subgoal demands is transformed in its own right.
			name: "path-nonlinear-bb",
			src: `
				edge(a, b).
				path(X, Y) :- edge(X, Y).
				path(X, Y) :- path(X, Z), path(Z, Y).
			`,
			query: ast.PredSig{Name: "path", Arity: 2},
			adorn: "bb",
			seed:  "magic$path$bb",
			want: []string{
				"path(X, Y) :- 'magic$path$bb'(X, Y), edge(X, Y).",
				"path(X, Y) :- 'magic$path$bb'(X, Y), path(X, Z), path(Z, Y).",
				"'magic$path$bf'(X) :- 'magic$path$bb'(X, Y).",
				"'sup$path$bb$1$1'(X, Y, Z) :- 'magic$path$bb'(X, Y), path(X, Z).",
				"'magic$path$bb'(Z, Y) :- 'sup$path$bb$1$1'(X, Y, Z).",
				"path(X, Y) :- 'magic$path$bf'(X), edge(X, Y).",
				"path(X, Y) :- 'magic$path$bf'(X), path(X, Z), path(Z, Y).",
				"'magic$path$bf'(X) :- 'magic$path$bf'(X).",
				"'sup$path$bf$1$1'(X, Z) :- 'magic$path$bf'(X), path(X, Z).",
				"'magic$path$bf'(Z) :- 'sup$path$bf$1$1'(X, Z).",
			},
		},
		{
			// Negation through recursion: r consults q under negation, so
			// q falls out of the demand scope — its guarded rules are
			// never emitted and the evaluator answers q via the full
			// engine. p stays demanded.
			name: "negation-shields-q",
			src: `
				e(a, b).
				p(X) :- q(X).
				q(X) :- e(X, Y), p(Y).
				r(X) :- p(X), not q(X).
			`,
			query: ast.PredSig{Name: "r", Arity: 1},
			adorn: "b",
			seed:  "magic$r$b",
			want: []string{
				"r(X) :- 'magic$r$b'(X), p(X), not q(X).",
				"'magic$p$b'(X) :- 'magic$r$b'(X).",
				"p(X) :- 'magic$p$b'(X), q(X).",
			},
		},
		{
			// A hypothetical [add:] premise: its target leaves the scope
			// (full per-state evaluation via the oracle), it contributes
			// nothing to the demand prefix, and demand flows past it to
			// the plain premises of the rule.
			name: "hyp-add-context",
			src: `
				base(a). flag(a).
				ok(X) :- flag(X).
				good(X) :- base(X).
				safe(X) :- ok(X)[add: flag(X)], good(X).
			`,
			query: ast.PredSig{Name: "safe", Arity: 1},
			adorn: "b",
			seed:  "magic$safe$b",
			want: []string{
				"safe(X) :- 'magic$safe$b'(X), ok(X)[add: flag(X)], good(X).",
				"'magic$good$b'(X) :- 'magic$safe$b'(X).",
				"good(X) :- 'magic$good$b'(X), base(X).",
			},
		},
		{
			// Same with [del:]: hypothetical deletion premises are
			// equally opaque to demand.
			name: "hyp-del-context",
			src: `
				base(a). flag(a).
				ok(X) :- base(X).
				good(X) :- base(X).
				safe(X) :- ok(X)[del: flag(X)], good(X).
			`,
			query: ast.PredSig{Name: "safe", Arity: 1},
			adorn: "b",
			seed:  "magic$safe$b",
			want: []string{
				"safe(X) :- 'magic$safe$b'(X), ok(X)[del: flag(X)], good(X).",
				"'magic$good$b'(X) :- 'magic$safe$b'(X).",
				"good(X) :- 'magic$good$b'(X), base(X).",
			},
		},
		{
			// All-free adornment must degenerate to the original program
			// verbatim: with nothing bound there is no demand to seed.
			name: "all-free-degenerates",
			src: `
				edge(a, b).
				reach(X, Y) :- edge(X, Y).
				reach(X, Y) :- edge(X, Z), reach(Z, Y).
			`,
			query:   ast.PredSig{Name: "reach", Arity: 2},
			adorn:   "ff",
			degener: true,
			want: []string{
				"reach(X, Y) :- edge(X, Y).",
				"reach(X, Y) :- edge(X, Z), reach(Z, Y).",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			tr, err := Transform(prog, tc.query, tc.adorn)
			if err != nil {
				t.Fatalf("Transform: %v", err)
			}
			if tr.Degenerate != tc.degener {
				t.Fatalf("Degenerate = %v, want %v", tr.Degenerate, tc.degener)
			}
			if !tc.degener && tr.SeedPred.Name != tc.seed {
				t.Errorf("SeedPred = %s, want %s", tr.SeedPred, tc.seed)
			}
			got := make([]string, len(tr.Rules))
			for i, r := range tr.Rules {
				got[i] = r.String()
			}
			if strings.Join(got, "\n") != strings.Join(tc.want, "\n") {
				t.Errorf("transformed rules:\n%s\nwant:\n%s",
					strings.Join(got, "\n"), strings.Join(tc.want, "\n"))
			}
		})
	}
}
