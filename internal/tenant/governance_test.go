package tenant

// Per-tenant resource-quota tests: the memory ceiling (trim idle
// engines first, shed only if still over) and the write-path disk
// quota.

import (
	"context"
	"errors"
	"testing"

	hypo "hypodatalog"
)

// TestMemoryQuotaTrimsBeforeShedding: a tenant over its memory ceiling
// first sheds idle engines (warm memo tables rebuild lazily); only the
// footprint that trimming cannot reclaim — the answer cache — causes
// requests to be refused with ErrOverMemory.
func TestMemoryQuotaTrimsBeforeShedding(t *testing.T) {
	r, err := Open(Config{
		Dir:        t.TempDir(),
		Options:    hypo.Options{PoolSize: 2, CacheBytes: 1 << 20},
		LiveConfig: hypo.LiveConfig{NoSync: true},
		Logger:     quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tn, _, err := r.Create("m", uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool so idle engines carry memo state and the answer
	// cache holds an entry.
	if _, err := tn.Pool().Query("grad(S)"); err != nil {
		t.Fatal(err)
	}
	if tn.Pool().MemBytes() <= 0 {
		t.Fatal("warm pool reports no footprint; the quota has nothing to govern")
	}

	// A 1-byte ceiling: idle engines are dropped, but the cached answers
	// remain — still over, so the request is shed before taking a slot.
	tn.SetQuotas(1, 0)
	if _, err := tn.Admit(context.Background()); !errors.Is(err, ErrOverMemory) {
		t.Fatalf("admit over memory quota = %v, want ErrOverMemory", err)
	}
	if got := tn.Metrics().MemEngineTrims.Value(); got <= 0 {
		t.Fatalf("mem_engine_trims = %d, want > 0 (idle engines must go first)", got)
	}
	if got := tn.Metrics().MemTenantShed.Value(); got != 1 {
		t.Fatalf("mem_tenant_shed = %d, want 1", got)
	}

	// With a ceiling that the post-trim footprint fits, trimming alone
	// satisfies the quota and the request is admitted.
	tn.SetQuotas(1<<20, 0)
	rel, err := tn.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit under a fitting quota = %v", err)
	}
	rel()

	// Unlimited again: no gating at all.
	tn.SetQuotas(0, 0)
	rel, err = tn.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit with quota off = %v", err)
	}
	rel()
}

// TestDiskQuotaGatesWrites: the WAL+snapshot footprint over the disk
// quota refuses writes with ErrOverDisk; reads are never disk-gated
// (CheckDiskQuota is only consulted on the write path, so Admit stays
// open).
func TestDiskQuotaGatesWrites(t *testing.T) {
	r := openTestRegistry(t, t.TempDir())
	tn, _, err := r.Create("d", uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.CheckDiskQuota(); err != nil {
		t.Fatalf("unlimited disk quota = %v, want nil", err)
	}

	tn.SetQuotas(0, 1)
	if err := tn.CheckDiskQuota(); !errors.Is(err, ErrOverDisk) {
		t.Fatalf("1-byte disk quota on a tenant with a WAL = %v, want ErrOverDisk", err)
	}
	if got := tn.Metrics().DiskQuotaShed.Value(); got != 1 {
		t.Fatalf("disk_quota_shed = %d, want 1", got)
	}
	// Reads stay open: admission does not consult the disk quota.
	rel, err := tn.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit with disk over quota = %v, want nil (reads unaffected)", err)
	}
	rel()

	tn.SetQuotas(0, 1<<30)
	if err := tn.CheckDiskQuota(); err != nil {
		t.Fatalf("roomy disk quota = %v, want nil", err)
	}
}
