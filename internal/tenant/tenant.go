// Package tenant implements a registry of named hypothetical-Datalog
// programs served side by side from one process. Each tenant owns the
// full vertical slice of serving state — a hypo.Live store over its own
// WAL/snapshot directory, an engine pool, an answer-cache byte budget,
// an admission quota, and a metrics.Set — so one program saturating its
// queue or cache cannot shed, evict, or slow another. The HTTP layer in
// internal/server resolves a *Tenant per request and works only through
// it; nothing in this package is a process-wide singleton except the
// one dynamic "hypo_programs" expvar that snapshots every live tenant.
//
// Registries come in two shapes. A dynamic registry (Open) manages a
// directory of per-tenant state dirs — <dir>/<name>/{program.hdl,
// wal.log, snapshot.hdlsnap} — and supports runtime Create/Delete with
// the server's two-phase drain. A static registry (NewStatic) wraps one
// pre-built Pool/Live as the default tenant for legacy single-program
// configs; admin operations on it fail with ErrStatic.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	hypo "hypodatalog"
	"hypodatalog/internal/metrics"
)

// Admission and admin-surface errors. The server maps these onto the
// standard error-status table (ErrShed → 429, ErrDraining → 503, ...).
var (
	// ErrShed reports a full admission queue: the tenant is at its
	// concurrency quota and its wait queue is also full.
	ErrShed = errors.New("tenant: admission queue full")
	// ErrDraining reports that the tenant (or the whole registry) is
	// shutting down and refuses new work.
	ErrDraining = errors.New("tenant: program is draining")
	// ErrUnknown reports a program name with no registered tenant.
	ErrUnknown = errors.New("tenant: unknown program")
	// ErrBadName reports a program name outside ^[a-z0-9][a-z0-9_-]{0,63}$.
	ErrBadName = errors.New("tenant: invalid program name")
	// ErrBadProgram reports a rulebase that failed to parse or stratify.
	ErrBadProgram = errors.New("tenant: invalid program")
	// ErrConflict reports a Create whose rulebase differs from the one
	// already registered under that name.
	ErrConflict = errors.New("tenant: program exists with different rules")
	// ErrStatic reports an admin operation on a static registry.
	ErrStatic = errors.New("tenant: registry is static (no programs directory)")
	// ErrProtected reports an attempt to delete the default program.
	ErrProtected = errors.New("tenant: the default program cannot be deleted")
	// ErrClosed reports an operation on a closed registry.
	ErrClosed = errors.New("tenant: registry is closed")
	// ErrOverMemory reports a request refused because the tenant's
	// tracked memory footprint (idle engines + answer cache) exceeds its
	// quota even after trimming idle engines. The server maps it to 503
	// over_memory.
	ErrOverMemory = errors.New("tenant: memory quota exceeded")
	// ErrOverDisk reports a mutation refused because the tenant's
	// on-disk footprint (WAL + snapshot) exceeds its quota. Reads keep
	// serving; the server maps it to 503 over_disk.
	ErrOverDisk = errors.New("tenant: disk quota exceeded")
)

// Tenant is one named program plus everything it needs to serve
// requests in isolation: live store, engine pool, metrics set, and a
// private admission gate (slots + bounded queue). Create tenants
// through a Registry; the zero value is not usable.
type Tenant struct {
	name      string
	dir       string // per-tenant state directory; "" for static tenants
	source    string // rulebase text as registered
	rulesHash uint64
	pool      *hypo.Pool
	live      *hypo.Live // nil when the tenant wraps a bare pool
	mets      *metrics.Set

	sem      chan struct{} // evaluation slots (admission quota)
	queued   atomic.Int64  // requests waiting for a slot
	maxQueue int64
	draining atomic.Bool
	drainCh  chan struct{} // closed by BeginDrain; wakes queued waiters

	// memQuota and diskQuota are the tenant's resource ceilings (0 =
	// unlimited): memQuota bounds the tracked footprint of idle engines
	// plus answer cache (Admit trims idle engines, then sheds with
	// ErrOverMemory); diskQuota bounds WAL + snapshot bytes (the write
	// path sheds with ErrOverDisk).
	memQuota  atomic.Int64
	diskQuota atomic.Int64
}

func newTenant(name, dir, source string, rulesHash uint64, pool *hypo.Pool, live *hypo.Live, mets *metrics.Set, maxConcurrent, maxQueue int) *Tenant {
	if maxConcurrent <= 0 {
		maxConcurrent = pool.Size()
	}
	if maxQueue <= 0 {
		maxQueue = 4 * maxConcurrent
	}
	return &Tenant{
		name:      name,
		dir:       dir,
		source:    source,
		rulesHash: rulesHash,
		pool:      pool,
		live:      live,
		mets:      mets,
		sem:       make(chan struct{}, maxConcurrent),
		maxQueue:  int64(maxQueue),
		drainCh:   make(chan struct{}),
	}
}

// Name returns the program name the tenant is registered under.
func (t *Tenant) Name() string { return t.name }

// Pool returns the tenant's engine pool.
func (t *Tenant) Pool() *hypo.Pool { return t.pool }

// Live returns the tenant's durable store, or nil for a static tenant
// built over a bare pool (its /v1/facts surface answers 501).
func (t *Tenant) Live() *hypo.Live { return t.live }

// Metrics returns the tenant's metric set. The default tenant reports
// into metrics.Default (the legacy "hypo" expvar names); every other
// tenant gets its own set, exported under the "hypo_programs" expvar.
func (t *Tenant) Metrics() *metrics.Set { return t.mets }

// Source returns the rulebase text the tenant was registered with.
func (t *Tenant) Source() string { return t.source }

// RulesHash fingerprints the tenant's rulebase (see Program.RulesHash).
func (t *Tenant) RulesHash() uint64 { return t.rulesHash }

// Version reports the tenant's current data version.
func (t *Tenant) Version() uint64 {
	if t.live != nil {
		return t.live.Version()
	}
	return t.pool.Version()
}

// Degraded reports whether the tenant's store recovered in a degraded
// state (e.g. a truncated WAL tail), with a reason.
func (t *Tenant) Degraded() (bool, string) {
	if t.live != nil {
		return t.live.Degraded()
	}
	return false, ""
}

// Recovering reports whether a background recovery prober is retrying
// the tenant's write path after a transient degradation.
func (t *Tenant) Recovering() bool {
	return t.live != nil && t.live.Recovering()
}

// SetQuotas sets the tenant's memory and disk ceilings in bytes (0 =
// unlimited). Safe to call at any time; quotas apply to subsequent
// admissions and writes.
func (t *Tenant) SetQuotas(memBytes, diskBytes int64) {
	t.memQuota.Store(memBytes)
	t.diskQuota.Store(diskBytes)
}

// overMemory enforces the memory quota: when the tenant's tracked
// footprint exceeds it, idle engines are trimmed first (dropping warm
// memo tables, which rebuild lazily); only if the footprint is still
// over — the answer cache plus remaining floor — is the request shed.
func (t *Tenant) overMemory() bool {
	quota := t.memQuota.Load()
	if quota <= 0 {
		return false
	}
	n := t.pool.MemBytes()
	t.mets.MemPoolBytes.Set(n)
	t.mets.MemCacheBytes.Set(t.pool.CacheMemBytes())
	if n <= quota {
		return false
	}
	if dropped := t.pool.TrimMemory(quota); dropped > 0 {
		t.mets.MemEngineTrims.Add(int64(dropped))
	}
	n = t.pool.MemBytes()
	t.mets.MemPoolBytes.Set(n)
	return n > quota
}

// CheckDiskQuota enforces the disk quota on the write path: it fails
// with ErrOverDisk while the tenant's WAL + snapshot footprint exceeds
// the quota. Reads are never disk-gated.
func (t *Tenant) CheckDiskQuota() error {
	quota := t.diskQuota.Load()
	if quota <= 0 || t.live == nil {
		return nil
	}
	n := t.live.Store().DiskBytes()
	t.mets.DiskBytes.Set(n)
	if n > quota {
		t.mets.DiskQuotaShed.Inc()
		return fmt.Errorf("%w: %d bytes on disk over quota %d", ErrOverDisk, n, quota)
	}
	return nil
}

// Admit reserves an evaluation slot on this tenant's quota, waiting in
// its bounded admission queue if none is free. It fails fast with
// ErrShed when the queue is full and ErrDraining when the tenant is (or
// starts) draining; a done ctx while queued surfaces as the ctx error.
// On success the returned release func must be called exactly once.
// Shed/queued/in-flight counters land on this tenant's metric set only,
// so a hot neighbour's pressure is visible per program.
func (t *Tenant) Admit(ctx context.Context) (release func(), err error) {
	if t.draining.Load() {
		return nil, ErrDraining
	}
	// Memory quota gates before the slot: a tenant over its ceiling must
	// not consume evaluation capacity it would only grow further.
	if t.overMemory() {
		t.mets.MemTenantShed.Inc()
		return nil, ErrOverMemory
	}
	acquired := false
	select {
	case t.sem <- struct{}{}:
		acquired = true
	default:
	}
	if !acquired {
		if t.queued.Add(1) > t.maxQueue {
			t.queued.Add(-1)
			t.mets.HTTPShed.Inc()
			return nil, ErrShed
		}
		t.mets.HTTPQueued.Inc()
		defer func() {
			t.queued.Add(-1)
			t.mets.HTTPQueued.Dec()
		}()
		select {
		case t.sem <- struct{}{}:
		case <-t.drainCh:
			return nil, ErrDraining
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	t.mets.HTTPInFlight.Inc()
	return func() {
		t.mets.HTTPInFlight.Dec()
		<-t.sem
	}, nil
}

// BeginDrain flips the tenant into draining mode: new Admit calls are
// refused with ErrDraining and queued waiters are woken and refused
// likewise. In-flight evaluations are not interrupted. Idempotent.
func (t *Tenant) BeginDrain() {
	if t.draining.CompareAndSwap(false, true) {
		close(t.drainCh)
	}
}

// Draining reports whether BeginDrain has been called.
func (t *Tenant) Draining() bool { return t.draining.Load() }

// drain waits for every in-flight evaluation to finish by acquiring all
// admission slots. BeginDrain must have been called first — otherwise
// new requests would race the acquisition. Holding every slot is a
// race-free proof that no request is past Admit, so the caller may
// close the tenant's stores. Returns ctx.Err() if the deadline expires
// with evaluations still in flight.
func (t *Tenant) drain(ctx context.Context) error {
	for i := 0; i < cap(t.sem); i++ {
		select {
		case t.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// closeStores shuts the tenant's pool and (if any) live store.
// In-flight queries finish on their leased engines; see Pool.Close.
func (t *Tenant) closeStores() error {
	if t.live != nil {
		return t.live.Close()
	}
	return t.pool.Close()
}
