package tenant

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	hypo "hypodatalog"
	"hypodatalog/internal/metrics"
)

// Per-tenant state files inside <dir>/<name>/.
const (
	programFile  = "program.hdl"
	walFile      = "wal.log"
	snapshotFile = "snapshot.hdlsnap"
)

// nameRE is the accepted shape of a program name: DNS-label-ish, safe
// as a directory name and an URL path segment, bounded at 64 bytes.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// ValidName reports whether name is an acceptable program name.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Config parameterises a dynamic registry. Options and LiveConfig are
// templates applied to every tenant: the registry overrides
// Options.Metrics with the tenant's own set and derives
// LiveConfig.WALPath / SnapshotPath inside the tenant's directory.
type Config struct {
	// Dir is the programs directory; each tenant lives in <Dir>/<name>/.
	// Required for Open; created if absent.
	Dir string

	// DefaultName is the tenant the un-prefixed /v1/* routes alias.
	// Default: "default". It reports into metrics.Default (the legacy
	// "hypo" expvar names) and cannot be deleted.
	DefaultName string

	// Options is the per-tenant engine/pool template (PoolSize,
	// CacheBytes, MaxGoals, ...). Metrics is ignored and replaced.
	Options hypo.Options

	// LiveConfig is the per-tenant store template (SnapshotEvery,
	// NoSync, StreamTailLen, FS). WALPath and SnapshotPath are ignored
	// and derived per tenant.
	LiveConfig hypo.LiveConfig

	// MaxConcurrent bounds simultaneous evaluations per tenant.
	// Default: the tenant's pool size.
	MaxConcurrent int

	// MaxQueue bounds requests waiting for a slot per tenant; beyond it
	// requests are shed. Default: 4 × MaxConcurrent.
	MaxQueue int

	// MemoryQuota bounds each tenant's tracked memory footprint (idle
	// engines + answer cache) in bytes. Over it, idle engines are
	// trimmed; if still over, requests are shed with ErrOverMemory.
	// 0 = unlimited.
	MemoryQuota int64

	// DiskQuota bounds each tenant's on-disk footprint (WAL + snapshot)
	// in bytes. Over it, mutations are refused with ErrOverDisk; reads
	// keep serving. 0 = unlimited.
	DiskQuota int64

	// Logger receives registry lifecycle logs. Default: slog.Default().
	Logger *slog.Logger
}

// Registry is a set of named tenants. All methods are safe for
// concurrent use.
type Registry struct {
	cfg     Config
	static  bool
	defName string
	log     *slog.Logger

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool
}

// Open creates a dynamic registry over cfg.Dir, loading every tenant
// already on disk (its program.hdl is parsed and its WAL replayed)
// before returning, so a restarted server serves all programs from the
// first request. A state directory without a program.hdl — the residue
// of a crash between mkdir and the program write, before any WAL
// existed — is skipped with a warning rather than failing boot.
func Open(cfg Config) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("tenant: Config.Dir is required")
	}
	if cfg.DefaultName == "" {
		cfg.DefaultName = "default"
	}
	if !ValidName(cfg.DefaultName) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, cfg.DefaultName)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: creating programs dir: %w", err)
	}
	r := &Registry{
		cfg:     cfg,
		defName: cfg.DefaultName,
		log:     cfg.Logger,
		tenants: make(map[string]*Tenant),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("tenant: scanning programs dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		if !ValidName(name) {
			r.log.Warn("skipping programs-dir entry with invalid name", "entry", name)
			continue
		}
		src, err := os.ReadFile(filepath.Join(cfg.Dir, name, programFile))
		if os.IsNotExist(err) {
			r.log.Warn("skipping program dir without program.hdl (incomplete create?)", "program", name)
			continue
		}
		if err != nil {
			r.closeAllLocked()
			return nil, fmt.Errorf("tenant: reading program %q: %w", name, err)
		}
		t, err := r.openTenant(name, string(src))
		if err != nil {
			r.closeAllLocked()
			return nil, fmt.Errorf("tenant: recovering program %q: %w", name, err)
		}
		r.tenants[name] = t
		r.log.Info("program recovered", "program", name,
			"data_version", t.Version(), "rules_hash", fmt.Sprintf("%016x", t.rulesHash))
	}
	register(r)
	return r, nil
}

// NewStatic wraps one pre-built pool (and optional live store) as a
// registry whose only tenant is the default. It backs legacy
// single-program server configs; Create and Delete fail with ErrStatic.
func NewStatic(name string, pool *hypo.Pool, live *hypo.Live, mets *metrics.Set, maxConcurrent, maxQueue int) *Registry {
	if name == "" {
		name = "default"
	}
	if mets == nil {
		mets = metrics.Default
	}
	r := &Registry{
		static:  true,
		defName: name,
		log:     slog.Default(),
		tenants: map[string]*Tenant{name: newTenant(name, "", "", 0, pool, live, mets, maxConcurrent, maxQueue)},
	}
	register(r)
	return r
}

// Static reports whether the registry was built by NewStatic (admin
// operations unavailable).
func (r *Registry) Static() bool { return r.static }

// DefaultName returns the name of the default tenant.
func (r *Registry) DefaultName() string { return r.defName }

// Default returns the default tenant, or nil if it has not been
// created yet (dynamic registries start empty on a fresh directory).
func (r *Registry) Default() *Tenant {
	t, _ := r.Get(r.defName)
	return t
}

// Get returns the tenant registered under name, or ErrUnknown.
func (r *Registry) Get(name string) (*Tenant, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return t, nil
}

// List returns all tenants sorted by name.
func (r *Registry) List() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Create registers a new program under name with the given rulebase,
// creating its state directory and an empty WAL. It is idempotent: a
// PUT of the exact same rules (by RulesHash) returns the existing
// tenant with created=false; different rules fail with ErrConflict
// (programs are replaced by delete + create, never silently swapped
// under live traffic).
func (r *Registry) Create(name, source string) (t *Tenant, created bool, err error) {
	if r.static {
		return nil, false, ErrStatic
	}
	if !ValidName(name) {
		return nil, false, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	prog, perr := hypo.Parse(source)
	if perr != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrBadProgram, perr)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false, ErrClosed
	}
	if existing, ok := r.tenants[name]; ok {
		if existing.rulesHash == prog.RulesHash() {
			return existing, false, nil
		}
		return nil, false, fmt.Errorf("%w: %q", ErrConflict, name)
	}
	dir := filepath.Join(r.cfg.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("tenant: creating program dir: %w", err)
	}
	// Write program.hdl atomically (tmp + rename) so boot recovery
	// never sees a torn rulebase.
	tmp := filepath.Join(dir, programFile+".tmp")
	if err := os.WriteFile(tmp, []byte(source), 0o644); err != nil {
		return nil, false, fmt.Errorf("tenant: writing program: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, programFile)); err != nil {
		return nil, false, fmt.Errorf("tenant: writing program: %w", err)
	}
	t, err = r.openTenant(name, source)
	if err != nil {
		return nil, false, fmt.Errorf("tenant: opening program %q: %w", name, err)
	}
	r.tenants[name] = t
	r.log.Info("program created", "program", name,
		"rules_hash", fmt.Sprintf("%016x", t.rulesHash))
	return t, true, nil
}

// openTenant builds the full per-tenant stack (metrics set, live store
// over the tenant's WAL/snapshot, pool, admission gate) for a program
// whose directory already holds program.hdl. Caller holds r.mu or is
// single-threaded boot.
func (r *Registry) openTenant(name, source string) (*Tenant, error) {
	prog, err := hypo.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
	}
	mets := r.metricsFor(name)
	opts := r.cfg.Options
	opts.Metrics = mets
	lc := r.cfg.LiveConfig
	dir := filepath.Join(r.cfg.Dir, name)
	lc.WALPath = filepath.Join(dir, walFile)
	lc.SnapshotPath = filepath.Join(dir, snapshotFile)
	if lc.Logger == nil {
		lc.Logger = r.log
	}
	lc.Logger = lc.Logger.With("program", name)
	lv, err := hypo.OpenLive(prog, lc, opts)
	if err != nil {
		return nil, err
	}
	t := newTenant(name, dir, source, prog.RulesHash(), lv.Pool(), lv,
		mets, r.cfg.MaxConcurrent, r.cfg.MaxQueue)
	t.SetQuotas(r.cfg.MemoryQuota, r.cfg.DiskQuota)
	return t, nil
}

// metricsFor picks the tenant's metric set: the default tenant aliases
// metrics.Default so the legacy "hypo" expvar keeps reporting it; every
// other tenant gets a fresh set named hypo_<name>, visible through the
// dynamic "hypo_programs" expvar (per-tenant expvar.Publish would leak
// names forever — expvar cannot unpublish).
func (r *Registry) metricsFor(name string) *metrics.Set {
	if name == r.defName {
		return metrics.Default
	}
	return metrics.NewSet("hypo_" + name)
}

// Delete tears a program down with the server's two-phase drain: the
// tenant is unregistered and flipped to draining (new requests refused
// with 503), then Delete waits — bounded by ctx — for in-flight
// evaluations to finish before closing the stores and removing the
// state directory. If the drain deadline expires the stores are closed
// anyway (in-flight queries finish on their leased engines; see
// Pool.Close) and the directory is still removed.
func (r *Registry) Delete(ctx context.Context, name string) error {
	if r.static {
		return ErrStatic
	}
	if name == r.defName {
		return fmt.Errorf("%w: %q", ErrProtected, name)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	t, ok := r.tenants[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	delete(r.tenants, name)
	r.mu.Unlock()

	t.BeginDrain()
	if err := t.drain(ctx); err != nil {
		r.log.Warn("program drain deadline expired; closing with evaluations in flight",
			"program", name, "err", err)
	}
	if err := t.closeStores(); err != nil {
		r.log.Warn("closing program stores", "program", name, "err", err)
	}
	if err := os.RemoveAll(t.dir); err != nil {
		return fmt.Errorf("tenant: removing program dir: %w", err)
	}
	r.log.Info("program deleted", "program", name)
	return nil
}

// BeginDrain flips every tenant into draining mode. Idempotent.
func (r *Registry) BeginDrain() {
	for _, t := range r.List() {
		t.BeginDrain()
	}
}

// Close closes every tenant's stores (WALs are synced and final
// snapshots written where configured) and marks the registry closed.
// State directories are left on disk for the next boot.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closeAllLocked()
}

func (r *Registry) closeAllLocked() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	for _, t := range r.tenants {
		t.BeginDrain()
		if err := t.closeStores(); err != nil && first == nil {
			first = err
		}
	}
	unregister(r)
	return first
}

// The one process-wide export: a dynamic "hypo_programs" expvar whose
// snapshot walks every tenant of every live registry. Deleted tenants
// simply stop appearing — unlike per-tenant expvar.Publish names, which
// could never be removed.
var (
	pubOnce sync.Once
	regsMu  sync.Mutex
	regs    = make(map[*Registry]struct{})
)

func register(r *Registry) {
	regsMu.Lock()
	regs[r] = struct{}{}
	regsMu.Unlock()
	pubOnce.Do(func() {
		metrics.PublishFunc("hypo_programs", programsSnapshot)
	})
}

func unregister(r *Registry) {
	regsMu.Lock()
	delete(regs, r)
	regsMu.Unlock()
}

func programsSnapshot() any {
	out := make(map[string]any)
	regsMu.Lock()
	live := make([]*Registry, 0, len(regs))
	for r := range regs {
		live = append(live, r)
	}
	regsMu.Unlock()
	for _, r := range live {
		for _, t := range r.List() {
			snap := t.mets.Snapshot()
			snap["data_version"] = t.Version()
			out[t.name] = snap
		}
	}
	return out
}
