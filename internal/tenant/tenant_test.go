package tenant

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/metrics"
)

const uniSrc = `
take(tony, his101).
take(tony, eng201).
take(mary, his101).
grad(S) :- take(S, his101), take(S, eng201).
`

const paritySrc = `
even.
odd :- not even.
`

func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

func openTestRegistry(t *testing.T, dir string) *Registry {
	t.Helper()
	r, err := Open(Config{
		Dir:        dir,
		Options:    hypo.Options{PoolSize: 2},
		LiveConfig: hypo.LiveConfig{NoSync: true},
		Logger:     quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"default", "a", "tenant-1", "x_y", "0abc"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "-lead", "_lead", "UPPER", "dot.dot", "a/b", "..",
		"ab123456789012345678901234567890123456789012345678901234567890123"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

func TestCreateGetDelete(t *testing.T) {
	r := openTestRegistry(t, t.TempDir())

	tn, created, err := r.Create("uni", uniSrc)
	if err != nil || !created {
		t.Fatalf("Create = %v, created=%v", err, created)
	}
	if tn.Name() != "uni" || tn.Live() == nil || tn.Pool() == nil {
		t.Fatalf("tenant not fully built: %+v", tn)
	}
	if got, err := r.Get("uni"); err != nil || got != tn {
		t.Fatalf("Get = %v, %v", got, err)
	}

	// Idempotent PUT: same rules return the same tenant, created=false.
	again, created, err := r.Create("uni", uniSrc)
	if err != nil || created || again != tn {
		t.Fatalf("re-Create = %v, created=%v, same=%v", err, created, again == tn)
	}

	// Different rules conflict.
	if _, _, err := r.Create("uni", paritySrc); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting Create err = %v, want ErrConflict", err)
	}

	// The tenant answers queries through its own pool.
	ok, err := tn.Pool().Ask("grad(tony)")
	if err != nil || !ok {
		t.Fatalf("Ask through tenant pool = %v, %v", ok, err)
	}

	if err := r.Delete(context.Background(), "uni"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := r.Get("uni"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Get after delete err = %v, want ErrUnknown", err)
	}
	if _, err := os.Stat(filepath.Join(r.cfg.Dir, "uni")); !os.IsNotExist(err) {
		t.Fatalf("state dir survived delete: %v", err)
	}
	if err := r.Delete(context.Background(), "uni"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double Delete err = %v, want ErrUnknown", err)
	}
}

func TestCreateValidation(t *testing.T) {
	r := openTestRegistry(t, t.TempDir())
	if _, _, err := r.Create("Bad Name", uniSrc); !errors.Is(err, ErrBadName) {
		t.Errorf("bad name err = %v, want ErrBadName", err)
	}
	if _, _, err := r.Create("ok", "p :- q("); !errors.Is(err, ErrBadProgram) {
		t.Errorf("bad program err = %v, want ErrBadProgram", err)
	}
}

func TestDefaultProtected(t *testing.T) {
	r := openTestRegistry(t, t.TempDir())
	if _, _, err := r.Create("default", uniSrc); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(context.Background(), "default"); !errors.Is(err, ErrProtected) {
		t.Fatalf("Delete(default) err = %v, want ErrProtected", err)
	}
	if r.Default() == nil {
		t.Fatal("default tenant gone after refused delete")
	}
}

// TestBootRecovery writes through two tenants, closes the registry, and
// reopens it over the same directory: both programs must come back with
// their own committed data, proving per-tenant WALs replay
// independently.
func TestBootRecovery(t *testing.T) {
	dir := t.TempDir()
	r := openTestRegistry(t, dir)
	if _, _, err := r.Create("uni", uniSrc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Create("parity", paritySrc); err != nil {
		t.Fatal(err)
	}
	uni, _ := r.Get("uni")
	ms, err := hypo.ParseMutations([]string{"take(mary, eng201)"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uni.Live().Apply(ms); err != nil {
		t.Fatal(err)
	}
	wantV := uni.Version()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openTestRegistry(t, dir)
	names := []string{}
	for _, tn := range r2.List() {
		names = append(names, tn.Name())
	}
	if len(names) != 2 || names[0] != "parity" || names[1] != "uni" {
		t.Fatalf("recovered tenants = %v", names)
	}
	uni2, _ := r2.Get("uni")
	if uni2.Version() != wantV {
		t.Errorf("recovered uni version = %d, want %d", uni2.Version(), wantV)
	}
	if ok, err := uni2.Pool().Ask("grad(mary)"); err != nil || !ok {
		t.Errorf("recovered write lost: grad(mary) = %v, %v", ok, err)
	}
	par, _ := r2.Get("parity")
	if ok, err := par.Pool().Ask("even"); err != nil || !ok {
		t.Errorf("recovered parity: even = %v, %v", ok, err)
	}
}

// TestBootSkipsIncompleteDir: a directory without program.hdl (crash
// between mkdir and the program write) must not fail boot.
func TestBootSkipsIncompleteDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "halfmade"), 0o755); err != nil {
		t.Fatal(err)
	}
	r := openTestRegistry(t, dir)
	if _, err := r.Get("halfmade"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("incomplete dir registered: %v", err)
	}
}

func TestStaticRegistry(t *testing.T) {
	prog, err := hypo.Parse(uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := hypo.NewPool(prog, hypo.Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	r := NewStatic("default", pool, nil, nil, 0, 0)
	defer r.Close()
	if !r.Static() || r.Default() == nil || r.Default().Pool() != pool {
		t.Fatalf("static registry malformed")
	}
	if _, _, err := r.Create("x", uniSrc); !errors.Is(err, ErrStatic) {
		t.Errorf("static Create err = %v, want ErrStatic", err)
	}
	if err := r.Delete(context.Background(), "x"); !errors.Is(err, ErrStatic) {
		t.Errorf("static Delete err = %v, want ErrStatic", err)
	}
	if r.Default().Metrics() != metrics.Default {
		t.Error("static default tenant not on metrics.Default")
	}
}

// TestAdmitQuota exercises the per-tenant admission gate directly:
// slots, bounded queue, shed, and drain waking queued waiters.
func TestAdmitQuota(t *testing.T) {
	r := openTestRegistry(t, t.TempDir())
	tn, _, err := r.Create("q", uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The registry template sets no explicit quota; pool size 2 → 2
	// slots, queue 8. Occupy both slots.
	rel1, err := tn.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := tn.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A third admit with an immediate deadline parks in the queue and
	// surfaces the ctx error.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := tn.Admit(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued admit err = %v, want DeadlineExceeded", err)
	}
	rel1()
	// A slot is free again.
	rel3, err := tn.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel3()
	rel2()

	tn.BeginDrain()
	if _, err := tn.Admit(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit while draining err = %v, want ErrDraining", err)
	}
}

// TestAdmitShedsBeyondQueue fills slots and queue and checks the
// overflow is shed immediately, counted on this tenant's metric set
// only.
func TestAdmitShedsBeyondQueue(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{
		Dir:           dir,
		Options:       hypo.Options{PoolSize: 1},
		LiveConfig:    hypo.LiveConfig{NoSync: true},
		MaxConcurrent: 1,
		MaxQueue:      1,
		Logger:        quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a, _, err := r.Create("a", uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.Create("b", uniSrc)
	if err != nil {
		t.Fatal(err)
	}

	rel, err := a.Admit(context.Background()) // slot
	if err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() {
		_, err := a.Admit(context.Background()) // queue (released by drain below)
		queuedErr <- err
	}()
	// Wait until the goroutine is actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for a.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Admit(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow admit err = %v, want ErrShed", err)
	}
	if got := a.Metrics().HTTPShed.Value(); got != 1 {
		t.Errorf("tenant a shed counter = %d, want 1", got)
	}
	if got := b.Metrics().HTTPShed.Value(); got != 0 {
		t.Errorf("tenant b shed counter = %d, want 0 (isolation)", got)
	}
	// Tenant b is untouched by a's pressure.
	relB, err := b.Admit(context.Background())
	if err != nil {
		t.Fatalf("tenant b admit during a's saturation: %v", err)
	}
	relB()

	a.BeginDrain()
	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Errorf("queued waiter err = %v, want ErrDraining", err)
	}
	rel()
}

// TestDeleteWaitsForInFlight: Delete must not close stores under an
// in-flight evaluation — the drain acquires every slot first.
func TestDeleteWaitsForInFlight(t *testing.T) {
	r := openTestRegistry(t, t.TempDir())
	tn, _, err := r.Create("busy", uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := tn.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Delete(context.Background(), "busy") }()
	select {
	case err := <-done:
		t.Fatalf("Delete returned %v with a request in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	rel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Delete after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Delete never finished after the in-flight request released")
	}
}

func TestMetricsIsolationAndSnapshot(t *testing.T) {
	r := openTestRegistry(t, t.TempDir())
	a, _, err := r.Create("ma", uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.Create("mb", uniSrc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics() == b.Metrics() {
		t.Fatal("tenants share a metric set")
	}
	if a.Metrics().Name() != "hypo_ma" {
		t.Errorf("tenant metric set name = %q", a.Metrics().Name())
	}
	if _, err := a.Pool().Ask("grad(tony)"); err != nil {
		t.Fatal(err)
	}
	if a.Metrics().QueriesStarted.Value() == 0 {
		t.Error("tenant a query not counted on its set")
	}
	if b.Metrics().QueriesStarted.Value() != 0 {
		t.Error("tenant a query leaked onto b's set")
	}
	snap, ok := programsSnapshot().(map[string]any)
	if !ok {
		t.Fatal("programsSnapshot is not a map")
	}
	if _, ok := snap["ma"]; !ok {
		t.Errorf("snapshot missing tenant ma: %v", snap)
	}
	if _, ok := snap["mb"]; !ok {
		t.Errorf("snapshot missing tenant mb: %v", snap)
	}
}
