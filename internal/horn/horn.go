// Package horn is a plain Datalog engine: bottom-up evaluation of
// function-free Horn rules with stratified negation, with both naive and
// semi-naive fixpoint strategies.
//
// It exists as the baseline for the paper's framing claims: linear
// recursion and stratified negation do not change the data-complexity of
// Horn rulebases (both stay in P, section 1), in contrast to hypothetical
// rulebases where they generate the polynomial-time hierarchy. It rejects
// hypothetical premises — those need the hypo engines.
package horn

import (
	"fmt"
	"sort"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/symbols"
)

type indexKey struct {
	pred symbols.Pred
	pos  int
	val  symbols.Const
}

// Strategy selects the fixpoint algorithm.
type Strategy int

const (
	// SemiNaive re-joins only against atoms derived in the previous round.
	SemiNaive Strategy = iota
	// Naive re-joins against the full relation every round.
	Naive
)

// Stats counts evaluation work.
type Stats struct {
	Rounds     int   // fixpoint rounds across all strata
	RuleFires  int64 // rule body matches that produced a (possibly old) head
	Derived    int   // atoms in the computed model (excluding base facts)
	JoinProbes int64 // candidate atoms inspected during matching
}

// Engine evaluates a Horn program bottom-up and answers membership in its
// perfect model.
type Engine struct {
	prog     *ast.CProgram
	in       *facts.Interner
	base     *facts.DB
	strategy Strategy

	model    map[facts.AtomID]struct{}
	byPred   map[symbols.Pred][]facts.AtomID
	index    map[indexKey][]facts.AtomID // derived atoms by (pred, pos, val)
	computed bool
	stats    Stats

	levels [][]int // rules grouped by negation stratum
}

// New builds an engine over a compiled program. It returns an error if the
// program contains hypothetical premises or recursion through negation.
func New(cp *ast.CProgram, strategy Strategy) (*Engine, error) {
	for _, r := range cp.Rules {
		for _, pr := range r.Body {
			if pr.Kind == ast.Hyp || pr.Kind == ast.NegHyp {
				return nil, fmt.Errorf("horn: rule at line %d has a hypothetical premise; use the hypo engines", r.Line)
			}
		}
		// Range restriction: every head variable must occur in a positive
		// body premise, so bottom-up evaluation grounds heads fully.
		inBody := make([]bool, r.NumVars)
		for _, pr := range r.Body {
			if pr.Kind != ast.Plain {
				continue
			}
			for _, t := range pr.Atom.Args {
				if t.IsVar() {
					inBody[t.VarSlot()] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar() && !inBody[t.VarSlot()] {
				return nil, fmt.Errorf("horn: rule at line %d is not range-restricted (head variable %s)",
					r.Line, r.VarNames[t.VarSlot()])
			}
		}
	}
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	for _, f := range cp.Facts {
		if _, err := base.Insert(in.InternGround(f)); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		prog:     cp,
		in:       in,
		base:     base,
		strategy: strategy,
		model:    make(map[facts.AtomID]struct{}),
		byPred:   make(map[symbols.Pred][]facts.AtomID),
		index:    make(map[indexKey][]facts.AtomID),
	}
	lv, err := e.negationLevels()
	if err != nil {
		return nil, err
	}
	e.levels = lv
	return e, nil
}

// negationLevels stratifies the program by negation, failing on recursion
// through negation.
func (e *Engine) negationLevels() ([][]int, error) {
	level := map[symbols.Pred]int{}
	for p := range e.prog.IDB {
		level[p] = 1
	}
	n := len(level)
	for pass := 0; ; pass++ {
		if pass > 2*n+2 {
			return nil, fmt.Errorf("horn: recursion through negation")
		}
		changed := false
		for _, r := range e.prog.Rules {
			h := r.Head.Pred
			for _, pr := range r.Body {
				q := pr.Atom.Pred
				if !e.prog.IDB[q] {
					continue
				}
				need := level[q]
				if pr.Kind == ast.Negated {
					need++
				}
				if level[h] < need {
					level[h] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	maxLvl := 1
	for _, l := range level {
		if l > maxLvl {
			maxLvl = l
		}
	}
	out := make([][]int, maxLvl)
	for ri, r := range e.prog.Rules {
		out[level[r.Head.Pred]-1] = append(out[level[r.Head.Pred]-1], ri)
	}
	return out, nil
}

// Interner returns the engine's ground-atom interner.
func (e *Engine) Interner() *facts.Interner { return e.in }

// Stats returns the evaluation counters (valid after the model has been
// computed by a query or by Compute).
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Derived = len(e.model)
	return s
}

// Compute materialises the perfect model.
func (e *Engine) Compute() {
	if e.computed {
		return
	}
	for _, rules := range e.levels {
		switch e.strategy {
		case Naive:
			e.naiveFixpoint(rules)
		default:
			e.semiNaiveFixpoint(rules)
		}
	}
	e.computed = true
}

// Holds reports whether an interned atom is in the perfect model.
func (e *Engine) Holds(goal facts.AtomID) bool {
	e.Compute()
	if e.base.Has(goal) {
		return true
	}
	_, ok := e.model[goal]
	return ok
}

// Model returns the derived atoms, sorted. Base facts are not included.
func (e *Engine) Model() []facts.AtomID {
	e.Compute()
	out := make([]facts.AtomID, 0, len(e.model))
	for id := range e.model {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e *Engine) insert(id facts.AtomID) bool {
	if e.base.Has(id) {
		return false
	}
	if _, ok := e.model[id]; ok {
		return false
	}
	e.model[id] = struct{}{}
	pred := e.in.Pred(id)
	e.byPred[pred] = append(e.byPred[pred], id)
	for pos, val := range e.in.Args(id) {
		k := indexKey{pred, pos, val}
		e.index[k] = append(e.index[k], id)
	}
	return true
}

// naiveFixpoint applies all rules against the full model until quiescence.
func (e *Engine) naiveFixpoint(rules []int) {
	for {
		e.stats.Rounds++
		changed := false
		for _, ri := range rules {
			if e.fireRule(ri, nil) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// semiNaiveFixpoint seeds with one naive round, then re-joins each rule
// only against bindings that touch the previous round's delta.
func (e *Engine) semiNaiveFixpoint(rules []int) {
	e.stats.Rounds++
	var delta []facts.AtomID
	collect := func(id facts.AtomID) { delta = append(delta, id) }
	for _, ri := range rules {
		e.fireRuleCollect(ri, nil, collect)
	}
	for len(delta) > 0 {
		e.stats.Rounds++
		deltaSet := make(map[facts.AtomID]struct{}, len(delta))
		for _, id := range delta {
			deltaSet[id] = struct{}{}
		}
		delta = delta[:0]
		for _, ri := range rules {
			e.fireRuleCollect(ri, deltaSet, collect)
		}
	}
}

// fireRule derives new instances of one rule; deltaSet, when non-nil,
// restricts matching so at least one positive premise matches a delta atom.
func (e *Engine) fireRule(ri int, deltaSet map[facts.AtomID]struct{}) bool {
	changed := false
	e.fireRuleCollect(ri, deltaSet, func(facts.AtomID) { changed = true })
	return changed
}

func (e *Engine) fireRuleCollect(ri int, deltaSet map[facts.AtomID]struct{}, onNew func(facts.AtomID)) {
	r := &e.prog.Rules[ri]
	binding := make([]symbols.Const, r.NumVars)
	for i := range binding {
		binding[i] = unbound
	}
	// Premise order: positive first, negations last.
	var pos, negs []int
	for i := range r.Body {
		if r.Body[i].Kind == ast.Negated {
			negs = append(negs, i)
		} else {
			pos = append(pos, i)
		}
	}

	yield := func() {
		h := e.groundHead(r, binding)
		if e.insert(h) {
			onNew(h)
		}
		e.stats.RuleFires++
	}
	if deltaSet == nil {
		order := append(append([]int(nil), pos...), negs...)
		e.joinAt(r, order, binding, 0, nil, -1, yield)
		return
	}
	// Semi-naive: one pass per positive premise, with that premise bound
	// to the delta and — crucially — evaluated first, so the small delta
	// drives the join instead of a full-relation scan.
	for i := range pos {
		order := make([]int, 0, len(r.Body))
		order = append(order, pos[i])
		for j, p := range pos {
			if j != i {
				order = append(order, p)
			}
		}
		order = append(order, negs...)
		e.joinAt(r, order, binding, 0, deltaSet, 0, yield)
	}
}

const unbound symbols.Const = -1

func (e *Engine) groundHead(r *ast.CRule, binding []symbols.Const) facts.AtomID {
	args := make([]symbols.Const, len(r.Head.Args))
	for i, t := range r.Head.Args {
		if t.IsVar() {
			v := binding[t.VarSlot()]
			if v == unbound {
				panic(fmt.Sprintf("horn: rule at line %d is not range-restricted (head variable %s unbound)",
					r.Line, r.VarNames[t.VarSlot()]))
			}
			args[i] = v
		} else {
			args[i] = t.ConstID()
		}
	}
	return e.in.ID(r.Head.Pred, args)
}

// joinAt enumerates bindings premise by premise.
func (e *Engine) joinAt(r *ast.CRule, order []int, binding []symbols.Const, pi int, deltaSet map[facts.AtomID]struct{}, deltaAt int, yield func()) {
	if pi == len(order) {
		yield()
		return
	}
	pr := &r.Body[order[pi]]
	if pr.Kind == ast.Negated {
		if !e.negHolds(r, pr, binding) {
			e.joinAt(r, order, binding, pi+1, deltaSet, deltaAt, yield)
		}
		return
	}
	mustDelta := pi == deltaAt && deltaSet != nil
	e.match(pr.Atom, binding, mustDelta, deltaSet, func() {
		e.joinAt(r, order, binding, pi+1, deltaSet, deltaAt, yield)
	})
}

// negHolds evaluates a negated premise; unbound (negation-local) variables
// are quantified inside the negation.
func (e *Engine) negHolds(r *ast.CRule, pr *ast.CPremise, binding []symbols.Const) bool {
	for _, t := range pr.Atom.Args {
		if t.IsVar() && binding[t.VarSlot()] == unbound {
			// Some instance provable? Match against base + model.
			found := false
			e.match(pr.Atom, binding, false, nil, func() { found = true })
			return found
		}
	}
	args := make([]symbols.Const, len(pr.Atom.Args))
	for i, t := range pr.Atom.Args {
		if t.IsVar() {
			args[i] = binding[t.VarSlot()]
		} else {
			args[i] = t.ConstID()
		}
	}
	id, ok := e.in.Lookup(pr.Atom.Pred, args)
	if !ok {
		return false
	}
	if e.base.Has(id) {
		return true
	}
	_, ok = e.model[id]
	return ok
}

// match enumerates atoms in base+model matching the pattern under binding.
func (e *Engine) match(pattern ast.CAtom, binding []symbols.Const, mustDelta bool, deltaSet map[facts.AtomID]struct{}, yield func()) {
	bestPos, bestVal := -1, unbound
	for i, t := range pattern.Args {
		var v symbols.Const
		if t.IsVar() {
			v = binding[t.VarSlot()]
		} else {
			v = t.ConstID()
		}
		if v != unbound {
			bestPos, bestVal = i, v
			break
		}
	}
	try := func(id facts.AtomID) {
		e.stats.JoinProbes++
		args := e.in.Args(id)
		var boundHere []int
		ok := true
		for i, t := range pattern.Args {
			if t.IsVar() {
				s := t.VarSlot()
				switch binding[s] {
				case unbound:
					binding[s] = args[i]
					boundHere = append(boundHere, s)
				case args[i]:
				default:
					ok = false
				}
			} else if t.ConstID() != args[i] {
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			yield()
		}
		for _, s := range boundHere {
			binding[s] = unbound
		}
	}
	if mustDelta {
		// Semi-naive: the delta premise scans only last round's new atoms.
		for id := range deltaSet {
			if e.in.Pred(id) == pattern.Pred {
				try(id)
			}
		}
		return
	}
	// Derived atoms are snapshotted up front: yield may append to the
	// slices during iteration, and new atoms are picked up by the
	// enclosing fixpoint's next round.
	var derived []facts.AtomID
	if bestPos >= 0 {
		for _, id := range e.base.ByPredArg(pattern.Pred, bestPos, bestVal) {
			try(id)
		}
		derived = e.index[indexKey{pattern.Pred, bestPos, bestVal}]
	} else {
		for _, id := range e.base.ByPred(pattern.Pred) {
			try(id)
		}
		derived = e.byPred[pattern.Pred]
	}
	n := len(derived)
	for i := 0; i < n; i++ {
		try(derived[i])
	}
}
