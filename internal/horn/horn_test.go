package horn

import (
	"fmt"
	"math/rand"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/symbols"
)

func build(t *testing.T, src string, strategy Strategy) (*Engine, *ast.CProgram) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e, err := New(cp, strategy)
	if err != nil {
		t.Fatalf("horn.New: %v", err)
	}
	return e, cp
}

func holds(t *testing.T, e *Engine, cp *ast.CProgram, atomSrc string) bool {
	t.Helper()
	a, err := parser.ParseAtom(atomSrc)
	if err != nil {
		t.Fatal(err)
	}
	args := make([]symbols.Const, a.Arity())
	for i, tm := range a.Args {
		if tm.IsVar {
			t.Fatalf("atom %q not ground", atomSrc)
		}
		c, ok := cp.Syms.LookupConst(tm.Name)
		if !ok {
			return false
		}
		args[i] = c
	}
	p, ok := cp.Syms.LookupPred(a.Pred, a.Arity())
	if !ok {
		return false
	}
	id := e.Interner().ID(p, args)
	return e.Holds(id)
}

func chainTC(n int) string {
	src := `
		tc(X, Y) :- edge(X, Y).
		tc(X, Y) :- tc(X, Z), edge(Z, Y).
	`
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("edge(v%d, v%d).\n", i, i+1)
	}
	return src
}

func TestTransitiveClosure(t *testing.T) {
	for _, strategy := range []Strategy{Naive, SemiNaive} {
		e, cp := build(t, chainTC(5), strategy)
		if !holds(t, e, cp, "tc(v0, v5)") {
			t.Errorf("strategy %v: tc(v0,v5) false", strategy)
		}
		if holds(t, e, cp, "tc(v5, v0)") {
			t.Errorf("strategy %v: tc(v5,v0) true", strategy)
		}
	}
}

func TestNonLinearTC(t *testing.T) {
	src := `
		tc(X, Y) :- edge(X, Y).
		tc(X, Y) :- tc(X, Z), tc(Z, Y).
		edge(a, b). edge(b, c). edge(c, d).
	`
	e, cp := build(t, src, SemiNaive)
	if !holds(t, e, cp, "tc(a, d)") {
		t.Error("non-linear tc(a,d) false")
	}
}

func TestStratifiedNegation(t *testing.T) {
	src := `
		node(a). node(b). node(c).
		edge(a, b).
		reach(a).
		reach(Y) :- reach(X), edge(X, Y).
		unreach(X) :- node(X), not reach(X).
	`
	e, cp := build(t, src, SemiNaive)
	if !holds(t, e, cp, "unreach(c)") {
		t.Error("unreach(c) false")
	}
	if holds(t, e, cp, "unreach(b)") {
		t.Error("unreach(b) true")
	}
}

func TestNegationLocalVariable(t *testing.T) {
	// empty holds iff no p atom is derivable at all.
	src := "empty :- not p(X).\nq(a).\n"
	e, cp := build(t, src, SemiNaive)
	if !holds(t, e, cp, "empty") {
		t.Error("empty should hold with no p facts")
	}
	src2 := "empty :- not p(X).\np(a).\n"
	e2, cp2 := build(t, src2, SemiNaive)
	if holds(t, e2, cp2, "empty") {
		t.Error("empty should fail when p(a) exists")
	}
}

func TestRejectsHypothetical(t *testing.T) {
	prog, err := parser.Parse("a :- b[add: c].")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cp, SemiNaive); err == nil {
		t.Error("expected hypothetical-premise rejection")
	}
}

func TestRejectsRecursionThroughNegation(t *testing.T) {
	prog, err := parser.Parse("a :- not b.\nb :- not a.\n")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cp, SemiNaive); err == nil {
		t.Error("expected recursion-through-negation rejection")
	}
}

func TestRejectsNonRangeRestricted(t *testing.T) {
	prog, err := parser.Parse("p(X) :- q.\nq.\n")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cp, SemiNaive); err == nil {
		t.Error("expected range-restriction rejection")
	}
}

// TestNaiveSemiNaiveAgree compares the two strategies on random graphs.
func TestNaiveSemiNaiveAgree(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 4 + rng.Intn(5)
		src := `
			tc(X, Y) :- edge(X, Y).
			tc(X, Y) :- tc(X, Z), edge(Z, Y).
			sym(X, Y) :- tc(X, Y), tc(Y, X).
			island(X) :- node(X), not tc(X, Y).
		`
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("node(v%d).\n", i)
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.25 {
					src += fmt.Sprintf("edge(v%d, v%d).\n", i, j)
				}
			}
		}
		eN, _ := build(t, src, Naive)
		eS, _ := build(t, src, SemiNaive)
		// The engines intern atoms in different orders, so compare the
		// models as sets of formatted atoms.
		mN := map[string]bool{}
		for _, id := range eN.Model() {
			mN[eN.Interner().Format(id)] = true
		}
		mS := map[string]bool{}
		for _, id := range eS.Model() {
			mS[eS.Interner().Format(id)] = true
		}
		for a := range mN {
			if !mS[a] {
				t.Errorf("seed %d: missing in semi-naive: %s", seed, a)
			}
		}
		for a := range mS {
			if !mN[a] {
				t.Errorf("seed %d: extra in semi-naive: %s", seed, a)
			}
		}
	}
}

func TestSemiNaiveDoesLessWork(t *testing.T) {
	eN, _ := build(t, chainTC(40), Naive)
	eS, _ := build(t, chainTC(40), SemiNaive)
	eN.Compute()
	eS.Compute()
	if eS.Stats().JoinProbes >= eN.Stats().JoinProbes {
		t.Errorf("semi-naive probes %d >= naive probes %d",
			eS.Stats().JoinProbes, eN.Stats().JoinProbes)
	}
}
