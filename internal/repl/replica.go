package repl

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hypodatalog/internal/live"
	"hypodatalog/internal/metrics"
)

// Target is the local store a replica applies streamed state into;
// *hypo.Live satisfies it.
type Target interface {
	// Version is the applied data version.
	Version() uint64
	// ApplyReplicated applies one streamed record; the record's version
	// must be exactly Version()+1.
	ApplyReplicated(rec live.Record) (live.CommitInfo, error)
	// InstallSnapshot replaces the fact base with a bootstrap snapshot
	// (storage.Write format) at the given version.
	InstallSnapshot(rd io.Reader, version uint64) error
}

// ReplicaConfig configures a tailing replica.
type ReplicaConfig struct {
	// Primary is the primary's base URL, e.g. "http://10.0.0.1:8080"
	// (required).
	Primary string
	// Target is the local store (required).
	Target Target
	// RulesHash fingerprints the local rule set; sent on every request so
	// an incompatible primary refuses us immediately.
	RulesHash uint64
	// Client issues the HTTP requests; nil means a default client with no
	// overall timeout (the stream is long-lived; liveness comes from
	// StreamTimeout below).
	Client *http.Client
	// StreamTimeout is the longest silence (no frame, not even a
	// heartbeat) tolerated on an open stream before it is torn down and
	// re-established; 0 means 10s.
	StreamTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff;
	// 0 means 50ms / 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Logger receives lifecycle events; nil discards them.
	Logger *slog.Logger
	// OnApply, when non-nil, is called after every applied record and
	// installed snapshot with the new applied version (tests use it to
	// wait for convergence without polling).
	OnApply func(version uint64)
	// Metrics is the metric set replication counters report into; nil
	// means metrics.Default.
	Metrics *metrics.Set
}

// Status is a point-in-time snapshot of a replica's replication state.
type Status struct {
	// Connected reports whether a tail stream is currently open.
	Connected bool
	// Ready reports whether the replica has, at least once since
	// starting, caught up to the primary's advertised version. It is
	// sticky: a replica that was caught up and lags again stays Ready
	// (readiness gates traffic admission, lag is reported separately).
	Ready bool
	// Applied is the locally applied data version; Primary is the
	// primary's last advertised one (0 until the first heartbeat).
	Applied uint64
	Primary uint64
	// RecordsApplied, Bootstraps and Reconnects count records applied,
	// snapshot bootstraps and stream re-establishments since Start.
	RecordsApplied uint64
	Bootstraps     uint64
	Reconnects     uint64
	// LastError is the most recent stream/bootstrap error, cleared on a
	// healthy reconnect.
	LastError string
}

// Lag is how many versions the replica trails the primary's last
// advertised version (0 when caught up or not yet connected).
func (s Status) Lag() uint64 {
	if s.Primary > s.Applied {
		return s.Primary - s.Applied
	}
	return 0
}

// Replica tails a primary in a background goroutine: bootstrap from a
// snapshot when needed, then apply streamed records, reconnecting with
// backoff forever until Close.
type Replica struct {
	cfg    ReplicaConfig
	cancel context.CancelFunc
	done   chan struct{}

	mu sync.Mutex
	st Status
}

// errSnapshotRequired is the internal signal that the stream position
// is unservable and the replica must bootstrap.
var errSnapshotRequired = errors.New("repl: snapshot required")

// Start begins replicating in the background and returns immediately.
func Start(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Primary == "" {
		return nil, errors.New("repl: ReplicaConfig.Primary is required")
	}
	if cfg.Target == nil {
		return nil, errors.New("repl: ReplicaConfig.Target is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.StreamTimeout <= 0 {
		cfg.StreamTimeout = 10 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{cfg: cfg, cancel: cancel, done: make(chan struct{})}
	r.st.Applied = cfg.Target.Version()
	cfg.Metrics.ReplAppliedVersion.Set(int64(r.st.Applied))
	go r.run(ctx)
	return r, nil
}

// Close stops replicating and waits for the background goroutine to
// exit. The local store keeps serving its applied version.
func (r *Replica) Close() {
	r.cancel()
	<-r.done
}

// Status snapshots the replication state.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

// run is the reconnect loop: stream until it fails, bootstrap when told
// to, back off exponentially between attempts, reset the backoff after
// any productive connection.
func (r *Replica) run(ctx context.Context) {
	defer close(r.done)
	defer r.setConnected(false)
	backoff := r.cfg.BackoffMin
	for ctx.Err() == nil {
		err := r.streamOnce(ctx)
		if errors.Is(err, errSnapshotRequired) {
			if berr := r.bootstrap(ctx); berr != nil {
				r.noteError(berr)
				r.cfg.Logger.Warn("repl: bootstrap failed", "err", berr)
			} else {
				backoff = r.cfg.BackoffMin
				continue // tail immediately from the fresh snapshot
			}
		} else if err != nil && ctx.Err() == nil {
			r.noteError(err)
			r.cfg.Logger.Warn("repl: stream failed", "err", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > r.cfg.BackoffMax {
			backoff = r.cfg.BackoffMax
		}
	}
}

func (r *Replica) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(r.cfg.Primary, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Hdl-Rules-Hash", strconv.FormatUint(r.cfg.RulesHash, 10))
	return r.cfg.Client.Do(req)
}

// bodySnippet drains up to 256 bytes of an error response for the log.
func bodySnippet(rd io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(rd, 256))
	return strings.TrimSpace(string(b))
}

// streamOnce opens one tail stream from the current applied version and
// applies frames until it breaks. A nil return means a clean
// disconnect; errSnapshotRequired means bootstrap first.
func (r *Replica) streamOnce(ctx context.Context) error {
	from := r.cfg.Target.Version()
	resp, err := r.get(ctx, "/v1/repl/stream?from="+strconv.FormatUint(from, 10))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errSnapshotRequired
	default:
		return fmt.Errorf("repl: stream refused: %s: %s", resp.Status, bodySnippet(resp.Body))
	}

	r.bumpReconnects()
	r.setConnected(true)
	defer r.setConnected(false)
	r.cfg.Logger.Info("repl: stream connected", "from", from, "primary", r.cfg.Primary)

	// The watchdog enforces StreamTimeout between frames: heartbeats
	// arrive every couple of seconds on a healthy stream, so a silent
	// peer (partition, hung conn) is cut instead of trusted forever.
	wd := time.AfterFunc(r.cfg.StreamTimeout, func() { resp.Body.Close() })
	defer wd.Stop()

	br := bufio.NewReader(resp.Body)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if err == io.EOF {
				return fmt.Errorf("repl: primary closed the stream")
			}
			return err
		}
		wd.Reset(r.cfg.StreamTimeout)
		switch typ {
		case frameHeartbeat:
			v, n := binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("repl: malformed heartbeat payload")
			}
			r.notePrimary(v)
		case frameRecord:
			rec, err := live.DecodeRecordPayload(payload)
			if err != nil {
				return err
			}
			if _, err := r.cfg.Target.ApplyReplicated(rec); err != nil {
				// A version gap means the stream and store diverged —
				// re-bootstrap. Anything else (validation, disk) is fatal for
				// this stream and will be retried from the reconnect loop.
				return fmt.Errorf("repl: applying version %d: %w", rec.Version, err)
			}
			r.cfg.Metrics.ReplRecordsApplied.Inc()
			r.noteApplied(rec.Version)
			if r.cfg.OnApply != nil {
				r.cfg.OnApply(rec.Version)
			}
		case frameGone:
			return errSnapshotRequired
		default:
			return fmt.Errorf("repl: unknown frame type %q", typ)
		}
	}
}

// bootstrap downloads and installs a full snapshot. It refuses a
// snapshot that does not advance the local version: retrying the stream
// is then correct (we are at or ahead of the primary's snapshot), and
// installing it would either rewind or spin in a hot
// stream-410/bootstrap loop.
func (r *Replica) bootstrap(ctx context.Context) error {
	resp, err := r.get(ctx, "/v1/repl/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot refused: %s: %s", resp.Status, bodySnippet(resp.Body))
	}
	ver, err := strconv.ParseUint(resp.Header.Get("X-Hdl-Version"), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: snapshot response has no X-Hdl-Version")
	}
	if local := r.cfg.Target.Version(); ver <= local {
		return fmt.Errorf("repl: snapshot version %d does not advance local version %d", ver, local)
	}
	if err := r.cfg.Target.InstallSnapshot(resp.Body, ver); err != nil {
		return err
	}
	r.cfg.Metrics.ReplBootstraps.Inc()
	r.mu.Lock()
	r.st.Bootstraps++
	r.mu.Unlock()
	r.noteApplied(ver)
	if r.cfg.OnApply != nil {
		r.cfg.OnApply(ver)
	}
	r.cfg.Logger.Info("repl: bootstrapped from snapshot", "version", ver)
	return nil
}

func (r *Replica) setConnected(c bool) {
	r.mu.Lock()
	r.st.Connected = c
	r.mu.Unlock()
	if c {
		r.cfg.Metrics.ReplConnected.Set(1)
	} else {
		r.cfg.Metrics.ReplConnected.Set(0)
	}
}

func (r *Replica) bumpReconnects() {
	r.mu.Lock()
	r.st.Reconnects++
	n := r.st.Reconnects
	r.mu.Unlock()
	if n > 1 {
		r.cfg.Metrics.ReplReconnects.Inc()
	}
}

func (r *Replica) noteError(err error) {
	r.mu.Lock()
	r.st.LastError = err.Error()
	r.mu.Unlock()
}

func (r *Replica) notePrimary(v uint64) {
	r.mu.Lock()
	r.st.Primary = v
	r.st.LastError = ""
	if r.st.Applied >= v {
		r.st.Ready = true
	}
	lag := r.st.Lag()
	r.mu.Unlock()
	r.cfg.Metrics.ReplPrimaryVersion.Set(int64(v))
	r.cfg.Metrics.ReplLag.Set(int64(lag))
}

func (r *Replica) noteApplied(v uint64) {
	r.mu.Lock()
	r.st.Applied = v
	if r.st.Primary <= v {
		r.st.Ready = true
	}
	lag := r.st.Lag()
	r.mu.Unlock()
	r.cfg.Metrics.ReplAppliedVersion.Set(int64(v))
	r.cfg.Metrics.ReplLag.Set(int64(lag))
}
