package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		typ     byte
		payload []byte
	}{
		{frameHeartbeat, binary.AppendUvarint(nil, 42)},
		{frameRecord, []byte("some record bytes")},
		{frameGone, nil},
		{frameRecord, bytes.Repeat([]byte{0xab}, 1<<16)},
	}
	for _, f := range frames {
		if err := writeFrame(&buf, f.typ, f.payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, f := range frames {
		typ, payload, err := readFrame(br)
		if err != nil {
			t.Fatalf("readFrame %d: %v", i, err)
		}
		if typ != f.typ || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d round trip: type %q len %d, want %q len %d",
				i, typ, len(payload), f.typ, len(f.payload))
		}
	}
	if _, _, err := readFrame(br); err != io.EOF {
		t.Fatalf("err at clean boundary = %v, want io.EOF", err)
	}
}

func TestFrameCRCMismatch(t *testing.T) {
	raw := appendFrame(nil, frameRecord, []byte("payload"))
	for _, flip := range []int{0, 3, 7, len(raw) - 1} {
		corrupt := append([]byte(nil), raw...)
		corrupt[flip] ^= 0x01
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(corrupt)))
		if err == nil {
			t.Fatalf("flipping byte %d went undetected", flip)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	raw := appendFrame(nil, frameRecord, []byte("payload"))
	// Every strict prefix (past the first byte) is a torn frame.
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw[:cut])))
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameLengthBound(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(frameRecord)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], maxFramePayload+1)
	buf.Write(lenBuf[:])
	_, _, err := readFrame(bufio.NewReader(&buf))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized length prefix: err = %v, want payload-limit error", err)
	}
}
