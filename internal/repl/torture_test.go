package repl_test

// Replication torture harness.
//
// A primary with a deliberately short stream tail serves a replica
// whose every HTTP exchange passes through a seeded flaky transport —
// connections are refused, cut mid-body, or stalled until the liveness
// watchdog fires — while the replica's disk is an in-memory image that
// is crash-damaged (kill -9) at random points. After every crash the
// recovered replica must satisfy the replication contract:
//
//	recovered version == the version the replica had durably applied
//	recovered facts   == the primary's fact set at exactly that version
//
// (nothing acked is lost, nothing uncommitted is served), and after the
// network heals the replica must converge to the primary's head.
//
// Failing seeds shrink to the smallest failing round count. Knobs match
// the live-store torture harness:
//
//	TORTURE_SEED=N      torture exactly seed N
//	TORTURE_RANDOM=1    use a time-derived seed (CI torture job)
//	$TORTURE_ARTIFACT_DIR  failing-seed reports for CI upload

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/vfs"
)

// flakyTransport injects partitions: per request it may refuse the
// connection, cut the response body after a bounded number of bytes, or
// stall it until the peer gives up. Heal() stops all injection.
type flakyTransport struct {
	inner http.RoundTripper

	mu     sync.Mutex
	rng    *rand.Rand
	healed bool
}

func (f *flakyTransport) Heal() {
	f.mu.Lock()
	f.healed = true
	f.mu.Unlock()
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	healed := f.healed
	var mode, cut int
	if !healed {
		mode = f.rng.Intn(5)
		cut = f.rng.Intn(4096)
	}
	f.mu.Unlock()
	if healed || mode <= 1 { // pass 2/5 of the time
		return f.inner.RoundTrip(req)
	}
	if mode == 2 {
		return nil, errors.New("flaky: connection refused")
	}
	resp, err := f.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = &flakyBody{rc: resp.Body, remaining: cut, stall: mode == 4, closed: make(chan struct{})}
	return resp, nil
}

// flakyBody delivers at most `remaining` bytes, then errors (cut) or
// blocks until closed (stall — what a silent partition looks like; the
// replica's watchdog must cut it).
type flakyBody struct {
	rc        io.ReadCloser
	remaining int
	stall     bool
	closed    chan struct{}
	once      sync.Once
}

func (b *flakyBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		if b.stall {
			<-b.closed
		}
		return 0, errors.New("flaky: connection lost")
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	return n, err
}

func (b *flakyBody) Close() error {
	b.once.Do(func() { close(b.closed) })
	return b.rc.Close()
}

// tortureOp is one scripted step, pre-generated so a shorter run is a
// prefix of a longer one (what shrinking relies on).
type tortureOp struct {
	assert   bool
	from, to string
	crash    bool // crash + recover the replica after this op
}

func makeOps(rng *rand.Rand, n int) []tortureOp {
	consts := []string{"a", "b", "c", "d", "e", "f"}
	ops := make([]tortureOp, n)
	for i := range ops {
		ops[i] = tortureOp{
			assert: rng.Intn(3) != 0,
			from:   consts[rng.Intn(len(consts))],
			to:     consts[rng.Intn(len(consts))],
			crash:  rng.Intn(4) == 0,
		}
	}
	return ops
}

// replTorture runs one seeded schedule and returns the first contract
// violation.
func replTorture(t *testing.T, seed int64, nOps int) error {
	rng := newRand(seed)
	ops := makeOps(rng, nOps)

	primary := openNode(t, nil, 3) // short tail: disconnected replicas fall behind it
	defer primary.Close()
	srv := newPrimaryServer(t, primary)

	flaky := &flakyTransport{inner: http.DefaultTransport, rng: newRand(seed * 31)}
	client := &http.Client{Transport: flaky}

	// model[v] is the primary's sorted fact set at version v.
	model := map[uint64][]string{0: nodeFacts(t, primary)}

	crng := newRand(seed * 7)
	mem := vfs.NewMem()
	replica := openNode(t, mem, 0)
	rep := startReplica(t, srv.URL, replica, client)

	closeAll := func() {
		rep.Close()
		_ = replica.Close()
	}

	var head uint64
	for i, op := range ops {
		var asserts, retracts []string
		lit := fmt.Sprintf("edge(%s, %s)", op.from, op.to)
		if op.assert {
			asserts = []string{lit}
		} else {
			retracts = []string{lit}
		}
		ms, err := hypo.ParseMutations(asserts, retracts)
		if err != nil {
			closeAll()
			return fmt.Errorf("op %d: %v", i, err)
		}
		info, err := primary.Apply(ms)
		if err != nil {
			closeAll()
			return fmt.Errorf("op %d: primary apply: %v", i, err)
		}
		head = info.Version
		model[head] = nodeFacts(t, primary)

		if !op.crash {
			continue
		}
		// kill -9 the replica, crash its disk, recover, check the contract.
		rep.Close()
		applied := replica.Version()
		_ = replica.Close()
		mem.Crash(crng)
		replica = openNode(t, mem, 0)
		v := replica.Version()
		if v != applied {
			_ = replica.Close()
			return fmt.Errorf("op %d: recovered version %d != durably applied %d", i, v, applied)
		}
		want, okv := model[v]
		if !okv {
			_ = replica.Close()
			return fmt.Errorf("op %d: recovered version %d was never a primary version", i, v)
		}
		if got := nodeFacts(t, replica); !equalStrings(got, want) {
			_ = replica.Close()
			return fmt.Errorf("op %d: facts at recovered version %d diverge:\n got %v\nwant %v", i, v, got, want)
		}
		rep = startReplica(t, srv.URL, replica, client)
	}

	// Heal the network and demand convergence to head.
	flaky.Heal()
	deadline := time.Now().Add(20 * time.Second)
	for replica.Version() < head {
		if time.Now().After(deadline) {
			st := rep.Status()
			closeAll()
			return fmt.Errorf("no convergence after heal: replica at %d, head %d (status %+v)", replica.Version(), head, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, want := nodeFacts(t, replica), model[head]; !equalStrings(got, want) {
		closeAll()
		return fmt.Errorf("converged facts diverge:\n got %v\nwant %v", got, want)
	}
	if v := replica.Version(); v != head {
		closeAll()
		return fmt.Errorf("replica overshot head: at %d, head %d", v, head)
	}
	closeAll()
	return nil
}

func shrinkReplTorture(t *testing.T, seed int64, nOps int) (int, error) {
	for n := 1; n <= nOps; n++ {
		if err := replTorture(t, seed, n); err != nil {
			return n, err
		}
	}
	return nOps, fmt.Errorf("failure did not reproduce during shrinking")
}

func replTortureSeeds(t *testing.T) []int64 {
	if v := os.Getenv("TORTURE_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("TORTURE_SEED=%q: %v", v, err)
		}
		return []int64{seed}
	}
	if os.Getenv("TORTURE_RANDOM") == "1" {
		seed := time.Now().UnixNano()
		t.Logf("torture: random seed %d (repro with TORTURE_SEED=%d)", seed, seed)
		return []int64{seed}
	}
	return []int64{1, 2}
}

func TestReplicationTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("replication torture is not -short")
	}
	const nOps = 20
	for _, seed := range replTortureSeeds(t) {
		err := replTorture(t, seed, nOps)
		if err == nil {
			continue
		}
		n, minErr := shrinkReplTorture(t, seed, nOps)
		report := fmt.Sprintf("replication torture seed %d failed: %v\n\nminimal repro: %d op(s): %v\nrerun: TORTURE_SEED=%d go test -run TestReplicationTorture ./internal/repl/\n",
			seed, err, n, minErr, seed)
		if dir := os.Getenv("TORTURE_ARTIFACT_DIR"); dir != "" {
			_ = os.MkdirAll(dir, 0o755)
			path := filepath.Join(dir, fmt.Sprintf("repl-torture-seed-%d.txt", seed))
			if werr := os.WriteFile(path, []byte(report), 0o644); werr == nil {
				t.Logf("torture: failing seed written to %s", path)
			}
		}
		t.Fatal(report)
	}
}
