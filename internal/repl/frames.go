// Package repl is WAL-shipping replication for the live store: a
// primary streams committed WAL records to read replicas over HTTP,
// each replica applies them through its own durable store and serves
// reads at its applied data version.
//
// # Protocol
//
// A follower bootstraps with GET /v1/repl/snapshot (the full fact base
// in storage.Write format, its version in the X-Hdl-Version response
// header), then tails GET /v1/repl/stream?from=<version>. The stream is
// a sequence of binary frames:
//
//	[type 1B] [payload length u32 BE] [payload] [CRC32-IEEE(type ∥ payload) u32 BE]
//
// Frame types:
//
//	'R' — one committed WAL record (live.EncodeRecordPayload); records
//	      arrive in version order with no gaps.
//	'H' — heartbeat; payload is the primary's current data version as a
//	      uvarint. Sent immediately on connect and every Heartbeat
//	      interval, so a follower can measure lag while idle and detect
//	      a dead peer.
//	'G' — gone; empty payload. The follower's resume point aged out of
//	      the primary's in-memory tail mid-stream; it must re-bootstrap
//	      from a snapshot. Sent instead of silently skipping versions.
//
// The stream request carries X-Hdl-Rules-Hash: replication is only
// sound between processes running the same rule set (validation and the
// pinned domain derive from it), so a mismatch is refused with 409
// rather than detected later as a validation failure. A from-version
// ahead of the primary (split brain, or a primary restored from an old
// backup) is also 409; a from-version already evicted from the tail is
// 410, telling the follower to bootstrap.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types on the stream wire.
const (
	frameRecord    = 'R'
	frameHeartbeat = 'H'
	frameGone      = 'G'
)

// maxFramePayload bounds one frame so a corrupt length prefix cannot
// make a reader allocate unbounded memory.
const maxFramePayload = 1 << 28

// appendFrame appends one wire frame to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.NewIEEE()
	_, _ = crc.Write([]byte{typ})
	_, _ = crc.Write(payload)
	return binary.BigEndian.AppendUint32(dst, crc.Sum32())
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	_, err := w.Write(appendFrame(nil, typ, payload))
	return err
}

// readFrame reads and checksums one frame. io.EOF is returned verbatim
// at a clean frame boundary; a short read inside a frame is
// io.ErrUnexpectedEOF.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	typ, err := br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("repl: frame payload of %d bytes exceeds the %d limit", n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	crc := crc32.NewIEEE()
	_, _ = crc.Write([]byte{typ})
	_, _ = crc.Write(payload)
	if got, want := binary.BigEndian.Uint32(crcBuf[:]), crc.Sum32(); got != want {
		return 0, nil, fmt.Errorf("repl: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return typ, payload, nil
}
