package repl

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/live"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/storage"
)

// Source is the slice of the live store a primary streams from;
// *live.Store satisfies it.
type Source interface {
	// Version is the current committed data version.
	Version() uint64
	// StreamHorizon is the oldest version the in-memory tail can resume
	// from: RecordsSince(from) succeeds for any from >= StreamHorizon().
	StreamHorizon() uint64
	// RecordsSince returns the committed records with versions in
	// (from, Version()]; ok=false when the tail no longer reaches back to
	// from+1 (the follower must bootstrap). A caught-up follower gets
	// (nil, true).
	RecordsSince(from uint64) ([]Record, bool)
	// Updates returns a channel closed on the next commit.
	Updates() <-chan struct{}
	// SnapshotProgram returns the program (rules + current facts) and the
	// version it is consistent at, atomically.
	SnapshotProgram() (*ast.Program, uint64)
}

// Record is one committed WAL record; an alias for live.Record so
// Source implementations and tests need not name the live package.
type Record = live.Record

// PrimaryConfig configures a streaming primary.
type PrimaryConfig struct {
	// Source is the store to stream from (required).
	Source Source
	// RulesHash fingerprints the primary's rule set; stream requests
	// carrying a different X-Hdl-Rules-Hash are refused with 409.
	RulesHash uint64
	// Heartbeat is the idle-stream heartbeat interval; 0 means 2s.
	Heartbeat time.Duration
	// Logger receives stream lifecycle events; nil discards them.
	Logger *slog.Logger
	// Metrics is the metric set replication counters report into; nil
	// means metrics.Default.
	Metrics *metrics.Set
}

// Primary serves the replication endpoints over an existing live store.
// It holds no state of its own beyond configuration: followers track
// their own positions and resume by version, so a primary restart
// forgets nothing that matters.
type Primary struct {
	cfg PrimaryConfig
}

// NewPrimary builds a Primary over src.
func NewPrimary(cfg PrimaryConfig) *Primary {
	if cfg.Source == nil {
		panic("repl: PrimaryConfig.Source is required")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	return &Primary{cfg: cfg}
}

// writeError mirrors the server package's JSON error shape
// ({"error":{"kind","message"}}) without importing it.
func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"kind": kind, "message": msg},
	})
}

// checkRulesHash enforces the rule-set compatibility gate when the
// request carries the header; requests without it (curl, older
// followers) pass.
func (p *Primary) checkRulesHash(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get("X-Hdl-Rules-Hash")
	if h == "" {
		return true
	}
	v, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "X-Hdl-Rules-Hash is not a uint64")
		return false
	}
	if v != p.cfg.RulesHash {
		writeError(w, http.StatusConflict, "rules_mismatch",
			fmt.Sprintf("follower rules hash %d does not match primary %d; replication requires identical programs", v, p.cfg.RulesHash))
		return false
	}
	return true
}

// ServeSnapshot streams the full fact base in storage.Write format,
// with the version it is consistent at in X-Hdl-Version. The snapshot
// is taken atomically against the store, so a follower installing it
// and then tailing from its version sees every commit exactly once.
func (p *Primary) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	if !p.checkRulesHash(w, r) {
		return
	}
	prog, ver := p.cfg.Source.SnapshotProgram()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Hdl-Version", strconv.FormatUint(ver, 10))
	if err := storage.Write(w, prog); err != nil {
		// Headers are gone; all we can do is log and cut the stream so the
		// follower sees a short read, not a silently truncated snapshot.
		p.cfg.Logger.Error("repl: snapshot stream failed", "err", err)
		return
	}
	p.cfg.Metrics.ReplSnapshotsServed.Inc()
	p.cfg.Logger.Info("repl: served bootstrap snapshot", "version", ver, "remote", r.RemoteAddr)
}

// ServeStream tails committed WAL records to one follower from
// ?from=<version> (exclusive): first an immediate heartbeat carrying
// the primary's version, then every record after `from` as it commits,
// with heartbeats while idle. The response stays open until the
// follower disconnects or its resume point ages out of the tail (a
// Gone frame, telling it to re-bootstrap).
func (p *Primary) ServeStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	if !p.checkRulesHash(w, r) {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "?from must be a uint64 data version")
		return
	}
	src := p.cfg.Source
	if v := src.Version(); from > v {
		writeError(w, http.StatusConflict, "ahead",
			fmt.Sprintf("follower is at version %d but primary is at %d; refusing to stream (split brain or restored backup)", from, v))
		return
	}
	if h := src.StreamHorizon(); from < h {
		w.Header().Set("X-Hdl-Stream-Horizon", strconv.FormatUint(h, 10))
		writeError(w, http.StatusGone, "snapshot_required",
			fmt.Sprintf("version %d has aged out of the stream tail (horizon %d); bootstrap from /v1/repl/snapshot", from, h))
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	p.cfg.Metrics.ReplStreams.Inc()
	defer p.cfg.Metrics.ReplStreams.Dec()
	p.cfg.Logger.Info("repl: stream opened", "from", from, "remote", r.RemoteAddr)
	defer p.cfg.Logger.Info("repl: stream closed", "remote", r.RemoteAddr)

	heartbeat := func() error {
		var buf []byte
		buf = binary.AppendUvarint(buf, src.Version())
		if err := writeFrame(w, frameHeartbeat, buf); err != nil {
			return err
		}
		p.cfg.Metrics.ReplFramesSent.Inc()
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	// An immediate heartbeat lets the follower mark itself caught up (and
	// ready) without waiting for traffic.
	if heartbeat() != nil {
		return
	}

	ticker := time.NewTicker(p.cfg.Heartbeat)
	defer ticker.Stop()
	cur := from
	for {
		// Grab the update channel BEFORE draining: a commit landing between
		// the drain and the select closes the channel we already hold, so
		// it cannot be missed.
		ch := src.Updates()
		recs, ok := src.RecordsSince(cur)
		if !ok {
			// The resume point aged out mid-stream (the follower fell more
			// than a tail's length behind). Say so explicitly.
			_ = writeFrame(w, frameGone, nil)
			p.cfg.Metrics.ReplFramesSent.Inc()
			if flusher != nil {
				flusher.Flush()
			}
			p.cfg.Logger.Warn("repl: follower fell behind the stream tail", "at", cur, "horizon", src.StreamHorizon())
			return
		}
		for _, rec := range recs {
			if err := writeFrame(w, frameRecord, live.EncodeRecordPayload(rec)); err != nil {
				return
			}
			p.cfg.Metrics.ReplFramesSent.Inc()
			cur = rec.Version
		}
		if len(recs) > 0 && flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ch:
		case <-ticker.C:
			if heartbeat() != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Mount registers the replication endpoints on mux.
func (p *Primary) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/repl/snapshot", p.ServeSnapshot)
	mux.HandleFunc("/v1/repl/stream", p.ServeStream)
}
