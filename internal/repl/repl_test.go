package repl_test

// End-to-end replication tests: a primary hypo.Live behind httptest
// serving the repl endpoints, with replica hypo.Lives tailing it.

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/repl"
	"hypodatalog/internal/vfs"
)

var quiet = slog.New(slog.NewTextHandler(io.Discard, nil))

// replSrc pins constants a..f so asserted edges stay in-domain.
const replSrc = `
node(a). node(b). node(c). node(d). node(e). node(f).
edge(a, b).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
`

func parse(t *testing.T) *hypo.Program {
	t.Helper()
	p, err := hypo.Parse(replSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

// openNode opens one hypo.Live over its own temp dir (or fs when
// non-nil), with a bounded stream tail so fall-behind paths are
// reachable in tests.
func openNode(t *testing.T, fs vfs.FS, tailLen int) *hypo.Live {
	t.Helper()
	dir := "/db"
	if fs == nil {
		dir = t.TempDir()
	}
	lv, err := hypo.OpenLive(parse(t), hypo.LiveConfig{
		WALPath:       filepath.Join(dir, "wal.log"),
		SnapshotPath:  filepath.Join(dir, "db.snap"),
		SnapshotEvery: 4,
		NoSync:        fs == nil, // in-memory disks sync for free; crashes need it
		Logger:        quiet,
		FS:            fs,
		StreamTailLen: tailLen,
	}, hypo.Options{})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	return lv
}

// newPrimaryServer mounts the replication endpoints for lv on an
// httptest server with a fast heartbeat.
func newPrimaryServer(t *testing.T, lv *hypo.Live) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	repl.NewPrimary(repl.PrimaryConfig{
		Source:    lv.Store(),
		RulesHash: parse(t).RulesHash(),
		Heartbeat: 50 * time.Millisecond,
		Logger:    quiet,
	}).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// startReplica tails url into target with test-friendly timeouts.
func startReplica(t *testing.T, url string, target *hypo.Live, client *http.Client) *repl.Replica {
	t.Helper()
	rep, err := repl.Start(repl.ReplicaConfig{
		Primary:       url,
		Target:        target,
		RulesHash:     parse(t).RulesHash(),
		Client:        client,
		StreamTimeout: 500 * time.Millisecond,
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		Logger:        quiet,
	})
	if err != nil {
		t.Fatalf("repl.Start: %v", err)
	}
	t.Cleanup(rep.Close)
	return rep
}

// waitVersion polls until target reaches at least version v.
func waitVersion(t *testing.T, target *hypo.Live, v uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for target.Version() < v {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at version %d, want >= %d", target.Version(), v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func assertEdge(t *testing.T, lv *hypo.Live, from, to string) uint64 {
	t.Helper()
	ms, err := hypo.ParseMutations([]string{fmt.Sprintf("edge(%s, %s)", from, to)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lv.Apply(ms)
	if err != nil {
		t.Fatalf("Apply edge(%s, %s): %v", from, to, err)
	}
	return info.Version
}

func nodeFacts(t *testing.T, lv *hypo.Live) []string {
	t.Helper()
	prog, _ := lv.Store().SnapshotProgram()
	out := make([]string, 0, len(prog.Facts))
	for _, f := range prog.Facts {
		out = append(out, f.String())
	}
	sort.Strings(out)
	return out
}

// TestThreeNodeWriteThenRead is the headline e2e: one primary, two
// replicas, a write on the primary becomes readable (through the rules,
// not just the raw fact) on both replicas.
func TestThreeNodeWriteThenRead(t *testing.T) {
	primary := openNode(t, nil, 0)
	defer primary.Close()
	srv := newPrimaryServer(t, primary)

	r1 := openNode(t, nil, 0)
	defer r1.Close()
	r2 := openNode(t, nil, 0)
	defer r2.Close()
	rep1 := startReplica(t, srv.URL, r1, nil)
	rep2 := startReplica(t, srv.URL, r2, nil)

	v := assertEdge(t, primary, "b", "c")
	v = assertEdge(t, primary, "c", "d")

	for i, r := range []*hypo.Live{r1, r2} {
		waitVersion(t, r, v, 5*time.Second)
		ok, err := r.Pool().Ask("reach(a, d)")
		if err != nil || !ok {
			t.Fatalf("replica %d: reach(a, d) = %v, %v; want true", i+1, ok, err)
		}
		if got, want := nodeFacts(t, r), nodeFacts(t, primary); !equalStrings(got, want) {
			t.Fatalf("replica %d facts diverge:\n got %v\nwant %v", i+1, got, want)
		}
	}
	for i, rep := range []*repl.Replica{rep1, rep2} {
		st := rep.Status()
		if !st.Ready || st.Applied != v {
			t.Fatalf("replica %d status = %+v; want Ready at version %d", i+1, st, v)
		}
	}
}

// TestBootstrapFromSnapshot starts a replica so far behind a
// short-tailed primary that streaming is impossible: it must fetch the
// snapshot, install it, then tail.
func TestBootstrapFromSnapshot(t *testing.T) {
	primary := openNode(t, nil, 2)
	defer primary.Close()
	var v uint64
	pairs := []struct{ from, to string }{
		{"b", "c"}, {"c", "d"}, {"d", "e"}, {"e", "f"}, {"a", "c"}, {"a", "d"},
	}
	for _, p := range pairs {
		v = assertEdge(t, primary, p.from, p.to)
	}
	srv := newPrimaryServer(t, primary)

	r := openNode(t, nil, 0)
	defer r.Close()
	rep := startReplica(t, srv.URL, r, nil)
	waitVersion(t, r, v, 5*time.Second)

	st := rep.Status()
	if st.Bootstraps == 0 {
		t.Fatalf("replica converged without a bootstrap (status %+v); the tail cannot reach version 0", st)
	}
	if got, want := nodeFacts(t, r), nodeFacts(t, primary); !equalStrings(got, want) {
		t.Fatalf("facts diverge after bootstrap:\n got %v\nwant %v", got, want)
	}
	// And the stream keeps the replica current after the jump.
	v = assertEdge(t, primary, "f", "a")
	waitVersion(t, r, v, 5*time.Second)
}

// TestRulesHashMismatch: a follower running different rules is refused
// with 409 before any state moves.
func TestRulesHashMismatch(t *testing.T) {
	primary := openNode(t, nil, 0)
	defer primary.Close()
	srv := newPrimaryServer(t, primary)

	for _, path := range []string{"/v1/repl/stream?from=0", "/v1/repl/snapshot"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		req.Header.Set("X-Hdl-Rules-Hash", "12345")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("GET %s with bad rules hash = %d, want 409", path, resp.StatusCode)
		}
	}
}

// TestStreamRefusesAheadFollower: a from-version past the primary's is
// split brain, not a resumable position.
func TestStreamRefusesAheadFollower(t *testing.T) {
	primary := openNode(t, nil, 0)
	defer primary.Close()
	srv := newPrimaryServer(t, primary)

	resp, err := http.Get(srv.URL + "/v1/repl/stream?from=999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("from=999 on an empty primary = %d, want 409", resp.StatusCode)
	}
}

// TestStreamGoneForEvictedResume: a resume point below the horizon gets
// 410 + the horizon header, the signal to bootstrap.
func TestStreamGoneForEvictedResume(t *testing.T) {
	primary := openNode(t, nil, 2)
	defer primary.Close()
	for _, p := range []struct{ from, to string }{{"b", "c"}, {"c", "d"}, {"d", "e"}, {"e", "f"}} {
		assertEdge(t, primary, p.from, p.to)
	}
	srv := newPrimaryServer(t, primary)

	resp, err := http.Get(srv.URL + "/v1/repl/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted resume point = %d, want 410", resp.StatusCode)
	}
	h, err := strconv.ParseUint(resp.Header.Get("X-Hdl-Stream-Horizon"), 10, 64)
	if err != nil || h != 2 {
		t.Fatalf("X-Hdl-Stream-Horizon = %q, want 2", resp.Header.Get("X-Hdl-Stream-Horizon"))
	}
}

// TestReplicaCrashMidStreamResumes kills a replica mid-tail-stream
// (in-memory disk crash, dropping anything unsynced), recovers it, and
// checks nothing acked was lost and nothing uncommitted surfaced: the
// recovered version is exactly what the replica had durably applied,
// and after restart it converges to the primary's head.
func TestReplicaCrashMidStreamResumes(t *testing.T) {
	primary := openNode(t, nil, 0)
	defer primary.Close()
	srv := newPrimaryServer(t, primary)

	mem := vfs.NewMem()
	r := openNode(t, mem, 0)
	rep := startReplica(t, srv.URL, r, nil)

	pairs := []struct{ from, to string }{
		{"b", "c"}, {"c", "d"}, {"d", "e"}, {"e", "f"}, {"a", "c"},
	}
	var head uint64
	for _, p := range pairs {
		head = assertEdge(t, primary, p.from, p.to)
	}
	waitVersion(t, r, 2, 5*time.Second) // mid-stream: some but maybe not all applied

	// kill -9: stop the process abruptly, then crash the disk image.
	// (The replica stops first so "applied" is a stable observation, not
	// a race against the apply loop.)
	rep.Close()
	applied := r.Version()
	appliedFacts := nodeFacts(t, r)
	_ = r.Close()
	mem.Crash(newRand(1))

	r2 := openNode(t, mem, 0)
	defer r2.Close()
	if got := r2.Version(); got != applied {
		t.Fatalf("recovered version %d, want the durably applied %d", got, applied)
	}
	if got := nodeFacts(t, r2); !equalStrings(got, appliedFacts) {
		t.Fatalf("recovered facts diverge from applied state:\n got %v\nwant %v", got, appliedFacts)
	}

	startReplica(t, srv.URL, r2, nil)
	waitVersion(t, r2, head, 5*time.Second)
	if got, want := nodeFacts(t, r2), nodeFacts(t, primary); !equalStrings(got, want) {
		t.Fatalf("facts diverge after recovery:\n got %v\nwant %v", got, want)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
