package lexer

import "testing"

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokens(src)
	if err != nil {
		t.Fatalf("Tokens(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, "grad(S) :- take(S, his101).")
	want := []Kind{Ident, LParen, Variable, RParen, Implies, Ident, LParen,
		Variable, Comma, Ident, RParen, Period, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestHypotheticalBrackets(t *testing.T) {
	got := kinds(t, "a :- b[add: c].")
	want := []Kind{Ident, Implies, Ident, LBracket, Ident, Colon, Ident,
		RBracket, Period, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestNegationForms(t *testing.T) {
	for _, src := range []string{"not p", "~p", "~ p"} {
		toks, err := Tokens(src)
		if err != nil {
			t.Fatalf("Tokens(%q): %v", src, err)
		}
		if toks[0].Kind != Not {
			t.Errorf("%q: first token %v, want Not", src, toks[0])
		}
		if toks[1].Kind != Ident || toks[1].Text != "p" {
			t.Errorf("%q: second token %v, want ident p", src, toks[1])
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "% whole line\np. // trailing\nq.")
	want := []Kind{Ident, Period, Ident, Period, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestQueryToken(t *testing.T) {
	got := kinds(t, "?- p(a).")
	if got[0] != Query {
		t.Fatalf("got %v, want leading Query token", got)
	}
}

func TestIntegersAreConstants(t *testing.T) {
	toks, err := Tokens("next(0, 1)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != Int || toks[2].Text != "0" {
		t.Fatalf("got %v want Int 0", toks[2])
	}
}

func TestQuotedAtom(t *testing.T) {
	toks, err := Tokens("p('Hello World')")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != Ident || toks[2].Text != "Hello World" {
		t.Fatalf("got %v", toks[2])
	}
}

func TestVariablesUpperAndUnderscore(t *testing.T) {
	toks, err := Tokens("X _y Abc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if toks[i].Kind != Variable {
			t.Errorf("token %d = %v, want Variable", i, toks[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"p(#)", "3abc", "'unterminated", "?x"} {
		if _, err := Tokens(src); err == nil {
			t.Errorf("Tokens(%q): expected error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokens("p.\n  q.")
	if err != nil {
		t.Fatal(err)
	}
	q := toks[2]
	if q.Line != 2 || q.Col != 3 {
		t.Fatalf("q at %d:%d, want 2:3", q.Line, q.Col)
	}
}
