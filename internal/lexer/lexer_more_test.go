package lexer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestQuotedEscapes(t *testing.T) {
	toks, err := Tokens(`p('it\'s', 'a\\b')`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Text != "it's" {
		t.Errorf("first quoted = %q", toks[2].Text)
	}
	if toks[4].Text != `a\b` {
		t.Errorf("second quoted = %q", toks[4].Text)
	}
}

func TestUnterminatedEscape(t *testing.T) {
	if _, err := Tokens(`p('abc\`); err == nil {
		t.Error("unterminated escape accepted")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{EOF, Ident, Variable, Int, LParen, RParen, LBracket,
		RBracket, Comma, Period, Colon, Implies, Query, Not, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("Kind(%d) has empty String", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Text: "abc"}
	if got := tok.String(); !strings.Contains(got, `"abc"`) {
		t.Errorf("Token.String = %q", got)
	}
	if got := (Token{Kind: Comma}).String(); got != "','" {
		t.Errorf("punct token = %q", got)
	}
}

func TestErrorFormat(t *testing.T) {
	_, err := Tokens("p(#)")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 1:") {
		t.Errorf("error = %q", err)
	}
}

// TestLexerNeverPanics: arbitrary strings either tokenize or error.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		toks, err := Tokens(src)
		if err != nil {
			return true
		}
		// Token stream must end with EOF and contain no zero-kind garbage
		// besides it.
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCRLFAndTabs(t *testing.T) {
	toks, err := Tokens("p.\r\n\tq.")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // p . q . EOF
		t.Fatalf("tokens = %v", toks)
	}
}
