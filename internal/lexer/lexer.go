// Package lexer tokenizes the hypothetical Datalog surface syntax.
//
// The token classes are identifiers (lower-case first letter: predicate and
// constant symbols), variables (upper-case first letter or underscore),
// integer literals (constants), quoted atoms ('like this', constants), and
// the punctuation of the rule language: ( ) [ ] , . : :- ?- and the
// negation keyword "not" (or the prefix operator ~).
//
// Comments run from % or // to end of line.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Variable
	Int
	LParen
	RParen
	LBracket
	RBracket
	Comma
	Period
	Colon
	Implies // :-
	Query   // ?-
	Not     // "not" keyword or ~
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Variable:
		return "variable"
	case Int:
		return "integer"
	case LParen:
		return "'('"
	case RParen:
		return "')'"
	case LBracket:
		return "'['"
	case RBracket:
		return "']'"
	case Comma:
		return "','"
	case Period:
		return "'.'"
	case Colon:
		return "':'"
	case Implies:
		return "':-'"
	case Query:
		return "'?-'"
	case Not:
		return "'not'"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is a lexed token with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int // 1-based
	Col  int // 1-based, in runes
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Error is a lexical error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans an input string into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokens lexes the entire input, returning the token stream (terminated by
// an EOF token) or the first lexical error.
func Tokens(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			l.skipLine()
		case r == '/' && l.peek2() == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *Lexer) skipLine() {
	for l.pos < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return Token{Kind: LParen, Line: line, Col: col}, nil
	case r == ')':
		l.advance()
		return Token{Kind: RParen, Line: line, Col: col}, nil
	case r == '[':
		l.advance()
		return Token{Kind: LBracket, Line: line, Col: col}, nil
	case r == ']':
		l.advance()
		return Token{Kind: RBracket, Line: line, Col: col}, nil
	case r == ',':
		l.advance()
		return Token{Kind: Comma, Line: line, Col: col}, nil
	case r == '.':
		l.advance()
		return Token{Kind: Period, Line: line, Col: col}, nil
	case r == '~':
		l.advance()
		return Token{Kind: Not, Text: "~", Line: line, Col: col}, nil
	case r == ':':
		l.advance()
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: Implies, Line: line, Col: col}, nil
		}
		return Token{Kind: Colon, Line: line, Col: col}, nil
	case r == '?':
		l.advance()
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: Query, Line: line, Col: col}, nil
		}
		return Token{}, &Error{line, col, "expected '?-'"}
	case r == '\'':
		return l.quotedAtom(line, col)
	case unicode.IsDigit(r):
		return l.number(line, col)
	case r == '_' || unicode.IsUpper(r):
		text := l.word()
		return Token{Kind: Variable, Text: text, Line: line, Col: col}, nil
	case unicode.IsLower(r):
		text := l.word()
		if text == "not" {
			return Token{Kind: Not, Text: text, Line: line, Col: col}, nil
		}
		return Token{Kind: Ident, Text: text, Line: line, Col: col}, nil
	default:
		return Token{}, &Error{line, col, fmt.Sprintf("unexpected character %q", r)}
	}
}

func (l *Lexer) word() string {
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.peek()
		if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(l.advance())
		} else {
			break
		}
	}
	return b.String()
}

func (l *Lexer) number(line, col int) (Token, error) {
	var b strings.Builder
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		b.WriteRune(l.advance())
	}
	// A digit-led word like 3abc is a lexical error rather than two tokens.
	if l.pos < len(l.src) {
		if r := l.peek(); r == '_' || unicode.IsLetter(r) {
			return Token{}, &Error{line, col, "identifier may not start with a digit"}
		}
	}
	return Token{Kind: Int, Text: b.String(), Line: line, Col: col}, nil
}

func (l *Lexer) quotedAtom(line, col int) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, &Error{line, col, "unterminated quoted atom"}
		}
		r := l.advance()
		if r == '\'' {
			return Token{Kind: Ident, Text: b.String(), Line: line, Col: col}, nil
		}
		if r == '\\' {
			if l.pos >= len(l.src) {
				return Token{}, &Error{line, col, "unterminated escape in quoted atom"}
			}
			r = l.advance()
		}
		b.WriteRune(r)
	}
}
