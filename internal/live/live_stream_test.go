package live

import (
	"path/filepath"
	"sort"
	"testing"

	"hypodatalog/internal/ast"
)

// openTailStore opens a store with a tiny stream tail so eviction paths
// are easy to hit.
func openTailStore(t *testing.T, dir string, tailLen int) *Store {
	t.Helper()
	s, _, err := Open(prog(t, seedSrc), Config{
		WALPath:       filepath.Join(dir, "wal.log"),
		StreamTailLen: tailLen,
		Logger:        quiet(),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func commitFact(t *testing.T, s *Store, src string) CommitInfo {
	t.Helper()
	info, err := s.Commit([]Mutation{Assert(atom(t, src))})
	if err != nil {
		t.Fatalf("Commit(%s): %v", src, err)
	}
	return info
}

func TestRecordsSinceAndHorizon(t *testing.T) {
	s := openTailStore(t, t.TempDir(), 3)
	defer s.Close()

	if recs, ok := s.RecordsSince(0); !ok || recs != nil {
		t.Fatalf("empty store RecordsSince(0) = %v, %v; want nil, true", recs, ok)
	}
	if h := s.StreamHorizon(); h != 0 {
		t.Fatalf("empty horizon = %d, want 0", h)
	}

	commitFact(t, s, "edge(c, d)") // v1
	commitFact(t, s, "edge(d, e)") // v2

	recs, ok := s.RecordsSince(0)
	if !ok || len(recs) != 2 || recs[0].Version != 1 || recs[1].Version != 2 {
		t.Fatalf("RecordsSince(0) = %+v, %v", recs, ok)
	}
	if recs, ok := s.RecordsSince(1); !ok || len(recs) != 1 || recs[0].Version != 2 {
		t.Fatalf("RecordsSince(1) = %+v, %v", recs, ok)
	}
	if recs, ok := s.RecordsSince(2); !ok || recs != nil {
		t.Fatalf("caught-up RecordsSince(2) = %v, %v; want nil, true", recs, ok)
	}

	// Push past the tail bound: versions 3, 4, 5 with StreamTailLen=3
	// evict versions 1 and 2.
	commitFact(t, s, "edge(e, f)") // v3
	commitFact(t, s, "edge(f, g)") // v4
	commitFact(t, s, "edge(g, h)") // v5
	if h := s.StreamHorizon(); h != 2 {
		t.Fatalf("horizon after eviction = %d, want 2", h)
	}
	if _, ok := s.RecordsSince(1); ok {
		t.Fatal("RecordsSince(1) should report the tail no longer reaches back")
	}
	if recs, ok := s.RecordsSince(2); !ok || len(recs) != 3 {
		t.Fatalf("RecordsSince(2) = %+v, %v; want 3 records", recs, ok)
	}
}

func TestUpdatesBroadcastOnCommit(t *testing.T) {
	s := openTailStore(t, t.TempDir(), 8)
	defer s.Close()
	ch := s.Updates()
	select {
	case <-ch:
		t.Fatal("channel closed before any commit")
	default:
	}
	commitFact(t, s, "edge(c, d)")
	select {
	case <-ch:
	default:
		t.Fatal("commit did not close the update channel")
	}
	// The replacement channel reports the next commit.
	ch2 := s.Updates()
	select {
	case <-ch2:
		t.Fatal("fresh channel already closed")
	default:
	}
	commitFact(t, s, "edge(d, e)")
	select {
	case <-ch2:
	default:
		t.Fatal("second commit did not close the new channel")
	}
}

func TestEncodeDecodeRecordPayload(t *testing.T) {
	rec := Record{Version: 7, Muts: []Mutation{
		Assert(atom(t, "edge(a, b)")),
		Retract(atom(t, "edge(b, c)")),
	}}
	got, err := DecodeRecordPayload(EncodeRecordPayload(rec))
	if err != nil {
		t.Fatalf("DecodeRecordPayload: %v", err)
	}
	if got.Version != rec.Version || len(got.Muts) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range rec.Muts {
		if got.Muts[i].Op != rec.Muts[i].Op || got.Muts[i].Atom.String() != rec.Muts[i].Atom.String() {
			t.Fatalf("mutation %d round trip = %+v, want %+v", i, got.Muts[i], rec.Muts[i])
		}
	}
	// Version 0 on the wire is a reset marker, never a streamable record.
	if _, err := DecodeRecordPayload(EncodeRecordPayload(Record{Version: 0})); err == nil {
		t.Fatal("DecodeRecordPayload accepted version 0")
	}
}

func storeFacts(t *testing.T, s *Store) []string {
	t.Helper()
	prog, _ := s.SnapshotProgram()
	out := make([]string, 0, len(prog.Facts))
	for _, f := range prog.Facts {
		out = append(out, f.String())
	}
	sort.Strings(out)
	return out
}

func TestResetToFactsDurability(t *testing.T) {
	dir := t.TempDir()
	s := openTailStore(t, dir, 8)
	commitFact(t, s, "edge(c, d)") // v1

	facts := []ast.Atom{atom(t, "edge(x, y)"), atom(t, "edge(y, z)")}
	if err := s.ResetToFacts(facts, 5); err != nil {
		t.Fatalf("ResetToFacts: %v", err)
	}
	if v := s.Version(); v != 5 {
		t.Fatalf("version after reset = %d, want 5", v)
	}
	want := []string{"edge(x, y)", "edge(y, z)"}
	if got := storeFacts(t, s); !equalStrings(got, want) {
		t.Fatalf("facts after reset = %v, want %v", got, want)
	}

	// A reset clears the stream tail: history before the jump is gone,
	// so a follower behind the reset must re-bootstrap.
	if h := s.StreamHorizon(); h != 5 {
		t.Fatalf("horizon after reset = %d, want 5", h)
	}
	if _, ok := s.RecordsSince(1); ok {
		t.Fatal("RecordsSince(1) should fail after a reset cleared the tail")
	}

	// Rewinds are refused.
	if err := s.ResetToFacts(facts, 5); err == nil {
		t.Fatal("ResetToFacts accepted a non-advancing version")
	}
	if err := s.ResetToFacts(facts, 3); err == nil {
		t.Fatal("ResetToFacts accepted a rewind")
	}

	// The reset survives a crash/reopen.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openTailStore(t, dir, 8)
	defer s2.Close()
	if v := s2.Version(); v != 5 {
		t.Fatalf("version after reopen = %d, want 5", v)
	}
	if got := storeFacts(t, s2); !equalStrings(got, want) {
		t.Fatalf("facts after reopen = %v, want %v", got, want)
	}
	// Commits continue from the jumped-to version.
	if info := commitFact(t, s2, "edge(z, w)"); info.Version != 6 {
		t.Fatalf("commit after reopen = v%d, want v6", info.Version)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
