package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hypodatalog/internal/ast"
)

// The WAL is an append-only sequence of commit records behind a small
// header, following the encoding conventions of internal/storage: all
// integers are uvarints, strings are length-prefixed bytes, and every
// unit (the header and each record) is guarded by a CRC32 so a torn tail
// left by a crash is detected and discarded rather than replayed.
//
// Layout:
//
//	header   "HDLWAL\x01" | crc32(body) LE uint32 | uvarint len(body) | body
//	         body = uvarint baseVersion
//	record   crc32(body) LE uint32 | uvarint len(body) | body
//	         body = uvarint version | uvarint nMuts | nMuts × mutation
//	mutation op byte | uvarint len(pred) | pred | uvarint nArgs |
//	         nArgs × (uvarint len | bytes)
//
// Record versions are strictly sequential from baseVersion+1. The base
// version is the data version the rest of the durable state (snapshot or
// seed program) is at when the WAL file is created; replaying every
// record on top of it reconstructs the latest committed version.
//
// One record form may jump versions: a *reset* record, whose body starts
// with uvarint 0 (impossible for a commit record — versions start at
// baseVersion+1 ≥ 1) followed by the real version and the complete fact
// set as OpAssert mutations. A reset replaces the whole fact set at that
// version in a single atomic append — it is how a read replica installs
// a snapshot fetched from its primary without rewriting its snapshot and
// WAL files in a multi-step (and hence crash-fragile) dance. Replay
// clears the fact set, applies the asserts, and continues sequentially
// from the reset's version.
//
// Replay is tolerant of one specific overlap: after a compaction crash
// between the snapshot rename and the WAL rotation, the snapshot may
// already contain a prefix of the WAL's records. Re-applying that prefix
// is harmless because mutations are last-writer-wins per atom (asserting
// a present fact and retracting an absent one are no-ops), so recovery
// never needs to know the snapshot's exact version.

var walMagic = []byte("HDLWAL\x01")

// maxSaneLen guards length fields against corrupt or hostile input,
// mirroring internal/storage.
const maxSaneLen = 1 << 28

// walRecord is one decoded commit: the version it produced and its
// mutations. reset marks a full-fact-set reset record (see the package
// comment): muts are then the complete fact set as asserts and version
// may jump past the previous record's.
type walRecord struct {
	version uint64
	muts    []Mutation
	reset   bool
}

// Record is one committed mutation batch as replayed from — or shipped
// out of — the WAL: the data version the batch produced and its
// mutations. It is the unit of replication: a primary streams Records to
// its followers, which apply them in version order.
type Record struct {
	Version uint64
	Muts    []Mutation
}

// EncodeRecordPayload renders a Record in the WAL record-body encoding
// (uvarint version | uvarint nMuts | mutations) — the payload format the
// replication stream ships, identical to what the WAL stores inside its
// frames.
func EncodeRecordPayload(r Record) []byte {
	return encodeRecordBody(r.Version, r.Muts)
}

// DecodeRecordPayload parses a WAL record body as produced by
// EncodeRecordPayload. Reset records (version 0 marker) are not valid on
// the wire and are rejected.
func DecodeRecordPayload(b []byte) (Record, error) {
	d := &walDecoder{buf: b}
	version := d.uvarint()
	if d.err != nil {
		return Record{}, fmt.Errorf("live: record payload has no version")
	}
	if version == 0 {
		return Record{}, fmt.Errorf("live: reset records are not streamable")
	}
	rec, err := decodeMutations(b[d.pos:], version)
	if err != nil {
		return Record{}, err
	}
	return Record{Version: rec.version, Muts: rec.muts}, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendFramed wraps body in the crc | len | body framing shared by the
// header and the records.
func appendFramed(b, body []byte) []byte {
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(body))
	b = append(b, crcBuf[:]...)
	b = appendUvarint(b, uint64(len(body)))
	return append(b, body...)
}

// encodeHeader renders the WAL header for a file whose records start at
// baseVersion+1.
func encodeHeader(baseVersion uint64) []byte {
	body := appendUvarint(nil, baseVersion)
	return appendFramed(append([]byte(nil), walMagic...), body)
}

// encodeRecordBody renders a commit record's body (unframed).
func encodeRecordBody(version uint64, ms []Mutation) []byte {
	body := appendUvarint(nil, version)
	body = appendUvarint(body, uint64(len(ms)))
	for _, m := range ms {
		body = append(body, byte(m.Op))
		body = appendString(body, m.Atom.Pred)
		body = appendUvarint(body, uint64(len(m.Atom.Args)))
		for _, t := range m.Atom.Args {
			body = appendString(body, t.Name)
		}
	}
	return body
}

// encodeRecord renders one framed commit record.
func encodeRecord(version uint64, ms []Mutation) []byte {
	return appendFramed(nil, encodeRecordBody(version, ms))
}

// encodeResetRecord renders a framed reset record: the uvarint 0 marker,
// then a normal record body carrying the complete fact set as asserts.
func encodeResetRecord(version uint64, facts []ast.Atom) []byte {
	body := appendUvarint(nil, 0)
	body = appendUvarint(body, version)
	body = appendUvarint(body, uint64(len(facts)))
	for _, a := range facts {
		body = append(body, byte(OpAssert))
		body = appendString(body, a.Pred)
		body = appendUvarint(body, uint64(len(a.Args)))
		for _, t := range a.Args {
			body = appendString(body, t.Name)
		}
	}
	return appendFramed(nil, body)
}

// walDecoder reads uvarints and byte strings from a buffer, latching the
// first error like storage's decoder.
type walDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("live: truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *walDecoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > maxSaneLen || d.pos+int(n) > len(d.buf) {
		d.err = fmt.Errorf("live: truncated data at offset %d (want %d bytes)", d.pos, n)
		return nil
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out
}

func (d *walDecoder) byte() byte {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

// readFramed consumes one crc | len | body frame and returns the body.
// ok is false (with d.err unset) when the remaining bytes do not contain
// a complete, checksum-valid frame — the torn-tail condition.
func (d *walDecoder) readFramed() (body []byte, ok bool) {
	crcBytes := d.bytes(4)
	n := d.uvarint()
	body = d.bytes(n)
	if d.err != nil {
		d.err = nil
		return nil, false
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, false
	}
	return body, true
}

// decodeMutations parses the mutation list of a record body.
func decodeMutations(body []byte, version uint64) (*walRecord, error) {
	d := &walDecoder{buf: body}
	n := d.uvarint()
	if n > maxSaneLen {
		return nil, fmt.Errorf("live: implausible mutation count %d", n)
	}
	rec := &walRecord{version: version, muts: make([]Mutation, 0, n)}
	for i := uint64(0); i < n; i++ {
		op := Op(d.byte())
		if d.err == nil && op != OpAssert && op != OpRetract {
			return nil, fmt.Errorf("live: unknown mutation op %d", op)
		}
		pred := string(d.bytes(d.uvarint()))
		nArgs := d.uvarint()
		if nArgs > 1024 {
			return nil, fmt.Errorf("live: implausible arity %d", nArgs)
		}
		a := ast.Atom{Pred: pred}
		for j := uint64(0); j < nArgs; j++ {
			a.Args = append(a.Args, ast.Const(string(d.bytes(d.uvarint()))))
		}
		if d.err != nil {
			return nil, d.err
		}
		rec.muts = append(rec.muts, Mutation{Op: op, Atom: a})
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("live: %d trailing record bytes", len(d.buf)-d.pos)
	}
	return rec, nil
}

// tornHeader reports whether data is a strict prefix of a valid WAL
// header — the image a power cut leaves when it interrupts WAL creation
// before the header was ever synced. Nothing can have been acknowledged
// from such a file, so recovery discards and recreates it. A complete
// header frame that fails its checksum is NOT torn: an append-only
// writer cannot produce it, so it is interior corruption and recovery
// refuses it.
func tornHeader(data []byte) bool {
	if len(data) < len(walMagic) {
		return string(data) == string(walMagic[:len(data)])
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		return false
	}
	d := &walDecoder{buf: data, pos: len(walMagic)}
	d.bytes(4) // crc
	d.bytes(d.uvarint())
	return d.err != nil // cut mid-frame: torn; complete frame: judge by crc
}

// parseWAL decodes a WAL image. It returns the header's base version,
// the decoded records, and goodLen — the byte length of the valid prefix.
// A torn or checksum-failing tail is NOT an error: parsing stops and
// goodLen < len(data) reports how much survives (the caller truncates).
// A malformed header, a non-sequential record version, or garbage inside
// a checksum-valid record IS an error: those cannot be produced by a
// torn write and replaying past them could silently lose acknowledged
// commits.
func parseWAL(data []byte) (base uint64, recs []walRecord, goodLen int, err error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		return 0, nil, 0, fmt.Errorf("live: bad WAL magic (not a WAL, or unsupported version)")
	}
	d := &walDecoder{buf: data, pos: len(walMagic)}
	hdr, ok := d.readFramed()
	if !ok {
		return 0, nil, 0, fmt.Errorf("live: corrupt WAL header")
	}
	hd := &walDecoder{buf: hdr}
	base = hd.uvarint()
	if hd.err != nil || hd.pos != len(hdr) {
		return 0, nil, 0, fmt.Errorf("live: malformed WAL header body")
	}
	goodLen = d.pos
	next := base + 1
	for d.pos < len(data) {
		body, ok := d.readFramed()
		if !ok {
			// Torn tail: keep what we have, report the cut point.
			return base, recs, goodLen, nil
		}
		rd := &walDecoder{buf: body}
		version := rd.uvarint()
		if rd.err != nil {
			return 0, nil, 0, fmt.Errorf("live: record at offset %d has no version", goodLen)
		}
		reset := false
		if version == 0 {
			// Reset record: the real version follows the marker and may
			// jump forward past the sequence (never backward — that could
			// only come from corruption, not from any writer).
			reset = true
			version = rd.uvarint()
			if rd.err != nil || version == 0 {
				return 0, nil, 0, fmt.Errorf("live: reset record at offset %d has no version", goodLen)
			}
			if version < next {
				return 0, nil, 0, fmt.Errorf("live: reset record version %d at offset %d rewinds past %d",
					version, goodLen, next)
			}
		} else if version != next {
			return 0, nil, 0, fmt.Errorf("live: record version %d at offset %d, want %d (WAL sequence broken)",
				version, goodLen, next)
		}
		rec, err := decodeMutations(body[rd.pos:], version)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("live: record %d: %w", version, err)
		}
		rec.reset = reset
		if reset {
			for _, m := range rec.muts {
				if m.Op != OpAssert {
					return 0, nil, 0, fmt.Errorf("live: reset record %d contains a retract", version)
				}
			}
		}
		recs = append(recs, *rec)
		goodLen = d.pos
		next = version + 1
	}
	return base, recs, goodLen, nil
}
