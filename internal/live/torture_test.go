package live

// Crash-consistency torture harness.
//
// The harness replays a deterministic randomized mutation workload
// against an in-memory disk (vfs.Mem) behind a fault injector
// (vfs.Fault), simulating a power cut at EVERY mutating filesystem
// operation — each write, sync, create, rename, remove and directory
// fsync the store issues — then crashes the disk, recovers a fresh
// store from the surviving image, and asserts the durability contract:
//
//	acked ≤ recovered version ≤ attempted
//	recovered fact set == the model's fact set at exactly that version
//
// The lower bound is the promise to callers (an acknowledged commit is
// never lost). The upper bound plus exact-state equality is atomicity:
// a batch that was cut mid-commit may be fully present (the usual ack
// ambiguity — it was durable before the ack could be delivered) or
// fully absent, but never partially applied, and recovery can never
// invent versions nobody attempted.
//
// A failing seed is shrunk to the smallest failing batch count and
// written to $TORTURE_ARTIFACT_DIR (when set) so CI can upload it.
// Environment knobs:
//
//	TORTURE_SEED=N      torture exactly seed N (repro a CI failure)
//	TORTURE_RANDOM=1    use a time-derived seed (CI torture job)
//
// Without either, a fixed seed set runs — fast and deterministic, so
// the sweep is part of the ordinary test suite.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"time"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/vfs"
)

func isReadOnly(err error) bool { return errors.Is(err, ErrReadOnly) }

const (
	tortureWAL     = "/db/wal.log"
	tortureSnap    = "/db/db.snap"
	tortureEvery   = 4 // compact often: rename/rotate paths are the interesting ones
	tortureBatches = 24
)

func tortureConfig(fs vfs.FS) Config {
	return Config{
		WALPath:       tortureWAL,
		SnapshotPath:  tortureSnap,
		SnapshotEvery: tortureEvery,
		FS:            fs,
		Logger:        quiet(),
	}
}

// makeBatches generates n mutation batches from rng. Generation is
// sequential, so makeBatches(rng, m) for m < n yields a prefix of the
// same workload — the property the shrinking loop relies on.
func makeBatches(rng *rand.Rand, n int) [][]Mutation {
	consts := []string{"a", "b", "c", "d", "e", "f"}
	pick := func() ast.Term { return ast.Const(consts[rng.Intn(len(consts))]) }
	batches := make([][]Mutation, n)
	for i := range batches {
		size := 1 + rng.Intn(3)
		batch := make([]Mutation, size)
		for j := range batch {
			a := ast.Atom{Pred: "edge", Args: []ast.Term{pick(), pick()}}
			if rng.Intn(3) == 0 {
				batch[j] = Retract(a)
			} else {
				batch[j] = Assert(a)
			}
		}
		batches[i] = batch
	}
	return batches
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func factKeys(facts []ast.Atom) []string {
	keys := make([]string, len(facts))
	for i, a := range facts {
		keys[i] = a.String()
	}
	sort.Strings(keys)
	return keys
}

// modelStates computes the expected fact set after every version:
// states[v] is the sorted fact-key set once batches[0:v] have been
// applied (states[0] is the seed).
func modelStates(seedFacts []ast.Atom, batches [][]Mutation) [][]string {
	cur := make(map[string]bool)
	for _, a := range seedFacts {
		cur[a.String()] = true
	}
	states := make([][]string, 0, len(batches)+1)
	states = append(states, sortedKeys(cur))
	for _, b := range batches {
		for _, m := range b {
			if m.Op == OpAssert {
				cur[m.Atom.String()] = true
			} else {
				delete(cur, m.Atom.String())
			}
		}
		states = append(states, sortedKeys(cur))
	}
	return states
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runToCut replays the workload against a disk that power-cuts at
// crash boundary k, reporting how many batches were acknowledged and
// how many were attempted. A harness-level surprise (a commit failing
// without the read-only contract, or the degradation not being sticky)
// is returned as an error.
func runToCut(seedProg *ast.Program, batches [][]Mutation, mem *vfs.Mem, cut vfs.Script) (acked, attempted int, harness error) {
	ft := vfs.NewFault(mem, cut)
	s, _, err := Open(seedProg, tortureConfig(ft))
	if err != nil {
		return 0, 0, nil // the cut landed inside Open: nothing was acked
	}
	defer s.Close() // post-cut close failures are expected; ignored
	for _, b := range batches {
		attempted++
		if _, err := s.Commit(b); err != nil {
			if !isReadOnly(err) {
				return acked, attempted, fmt.Errorf("failed commit did not carry ErrReadOnly: %v", err)
			}
			// Degradation must be sticky: the next commit is refused too.
			if _, err2 := s.Commit(b); !isReadOnly(err2) {
				return acked, attempted, fmt.Errorf("read-only state not sticky: second commit = %v", err2)
			}
			if ro, _ := s.ReadOnly(); !ro {
				return acked, attempted, fmt.Errorf("commit failed (%v) but ReadOnly() = false", err)
			}
			return acked, attempted, nil
		}
		acked++
	}
	return acked, attempted, nil
}

// checkRecovery opens a fresh store over the crashed (now fault-free)
// disk image and verifies the durability contract.
func checkRecovery(seedProg *ast.Program, states [][]string, acked, attempted int, mem *vfs.Mem) error {
	s, rec, err := Open(seedProg, tortureConfig(mem))
	if err != nil {
		return fmt.Errorf("recovery failed: %v", err)
	}
	defer s.Close()
	v := int(rec.Version)
	if v < acked || v > attempted {
		return fmt.Errorf("recovered version %d outside [acked %d, attempted %d]", v, acked, attempted)
	}
	got := factKeys(s.Facts())
	if !equalKeys(got, states[v]) {
		return fmt.Errorf("facts at recovered version %d diverge from model:\n got %v\nwant %v", v, got, states[v])
	}
	if ro, roErr := s.ReadOnly(); ro {
		return fmt.Errorf("recovered store is read-only: %v", roErr)
	}
	return nil
}

// tortureSweep runs the full crash-point sweep for one (seed, batch
// count) pair and returns the first invariant violation.
func tortureSweep(seedProg *ast.Program, seed int64, nBatches int) error {
	batches := makeBatches(rand.New(rand.NewSource(seed)), nBatches)
	states := modelStates(seedProg.Facts, batches)

	// Counting run on a healthy disk: every batch must ack, the final
	// state must match the model, and Ops() is the number of crash
	// boundaries the sweep enumerates.
	mem := vfs.NewMem()
	ft := vfs.NewFault(mem, nil)
	s, _, err := Open(seedProg, tortureConfig(ft))
	if err != nil {
		return fmt.Errorf("healthy open: %v", err)
	}
	for i, b := range batches {
		if _, err := s.Commit(b); err != nil {
			return fmt.Errorf("healthy commit %d: %v", i+1, err)
		}
	}
	if got := factKeys(s.Facts()); !equalKeys(got, states[nBatches]) {
		return fmt.Errorf("healthy run final state diverges from model:\n got %v\nwant %v", got, states[nBatches])
	}
	if err := s.Close(); err != nil {
		return fmt.Errorf("healthy close: %v", err)
	}
	n := ft.Ops()

	for k := 0; k <= n; k++ {
		// Deterministic per-crash-point randomness: the torn-write length
		// and the crash's survival draws depend only on (seed, k).
		crng := rand.New(rand.NewSource(seed*1_000_003 + int64(k)))
		mem := vfs.NewMem()
		acked, attempted, herr := runToCut(seedProg, batches, mem, vfs.PowerCut(k, crng.Intn(64)))
		if herr != nil {
			return fmt.Errorf("crash point %d/%d: %v", k, n, herr)
		}
		mem.Crash(crng)
		if err := checkRecovery(seedProg, states, acked, attempted, mem); err != nil {
			return fmt.Errorf("crash point %d/%d: %v", k, n, err)
		}
	}
	return nil
}

// shrinkTorture finds the smallest batch count that still fails for the
// seed (workloads are prefix-stable, so this is a true minimization).
func shrinkTorture(seedProg *ast.Program, seed int64, nBatches int) (int, error) {
	for nb := 1; nb <= nBatches; nb++ {
		if err := tortureSweep(seedProg, seed, nb); err != nil {
			return nb, err
		}
	}
	return nBatches, fmt.Errorf("failure did not reproduce during shrinking")
}

func tortureSeeds(t *testing.T) []int64 {
	if v := os.Getenv("TORTURE_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("TORTURE_SEED=%q: %v", v, err)
		}
		return []int64{seed}
	}
	if os.Getenv("TORTURE_RANDOM") == "1" {
		seed := time.Now().UnixNano()
		t.Logf("torture: random seed %d (repro with TORTURE_SEED=%d)", seed, seed)
		return []int64{seed}
	}
	return []int64{1, 2, 3}
}

func TestTortureCrashSweep(t *testing.T) {
	seedProg := prog(t, seedSrc)
	for _, seed := range tortureSeeds(t) {
		err := tortureSweep(seedProg, seed, tortureBatches)
		if err == nil {
			continue
		}
		nb, minErr := shrinkTorture(seedProg, seed, tortureBatches)
		report := fmt.Sprintf("torture seed %d failed: %v\n\nminimal repro: %d batch(es): %v\nrerun: TORTURE_SEED=%d go test -run TestTortureCrashSweep ./internal/live/\n",
			seed, err, nb, minErr, seed)
		if dir := os.Getenv("TORTURE_ARTIFACT_DIR"); dir != "" {
			_ = os.MkdirAll(dir, 0o755)
			path := filepath.Join(dir, fmt.Sprintf("torture-seed-%d.txt", seed))
			if werr := os.WriteFile(path, []byte(report), 0o644); werr == nil {
				t.Logf("torture: failing seed written to %s", path)
			}
		}
		t.Fatal(report)
	}
}
