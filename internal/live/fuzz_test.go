package live

import (
	"testing"

	"hypodatalog/internal/ast"
)

// FuzzWALReplay throws arbitrary bytes at the WAL parser. Whatever the
// input, parseWAL must not panic, must report a valid prefix no longer
// than the input, and must hand back strictly sequential record versions
// — the invariants recovery relies on to never replay garbage.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("HDLWAL\x01"))
	f.Add(encodeHeader(0))
	f.Add(encodeHeader(1 << 40))
	one := append(encodeHeader(0), encodeRecord(1, []Mutation{
		Assert(ast.Atom{Pred: "edge", Args: []ast.Term{ast.Const("a"), ast.Const("b")}}),
	})...)
	f.Add(one)
	f.Add(append(append([]byte(nil), one...), encodeRecord(2, []Mutation{
		Retract(ast.Atom{Pred: "flag"}),
	})...))
	f.Add(one[:len(one)-3]) // torn tail
	mangled := append([]byte(nil), one...)
	mangled[len(mangled)-1] ^= 0xff // CRC mismatch in the last record
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		base, recs, goodLen, err := parseWAL(data)
		if err != nil {
			return
		}
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0, %d]", goodLen, len(data))
		}
		next := base + 1
		for _, r := range recs {
			if r.version != next {
				t.Fatalf("non-sequential record version %d, want %d", r.version, next)
			}
			next++
			for _, m := range r.muts {
				if m.Op != OpAssert && m.Op != OpRetract {
					t.Fatalf("decoded invalid op %d", m.Op)
				}
				if !m.Atom.IsGround() {
					t.Fatalf("decoded non-ground atom %s", m.Atom)
				}
			}
		}
		// The accepted prefix must re-parse to the same result: truncation
		// at goodLen is what recovery does on disk.
		base2, recs2, goodLen2, err2 := parseWAL(data[:goodLen])
		if err2 != nil || base2 != base || goodLen2 != goodLen || len(recs2) != len(recs) {
			t.Fatalf("re-parse of valid prefix diverged: err=%v base %d/%d goodLen %d/%d recs %d/%d",
				err2, base2, base, goodLen2, goodLen, len(recs2), len(recs))
		}
		// And round-trip: re-encoding the decoded records and parsing
		// that must give back the same records. (Not byte-exact: varints
		// admit non-minimal encodings that we decode but never emit.)
		enc := encodeHeader(base)
		for _, r := range recs {
			enc = append(enc, encodeRecord(r.version, r.muts)...)
		}
		base3, recs3, goodLen3, err3 := parseWAL(enc)
		if err3 != nil || base3 != base || goodLen3 != len(enc) || len(recs3) != len(recs) {
			t.Fatalf("re-encode round-trip diverged: err=%v base %d/%d recs %d/%d",
				err3, base3, base, len(recs3), len(recs))
		}
		for i, r := range recs3 {
			if r.version != recs[i].version || len(r.muts) != len(recs[i].muts) {
				t.Fatalf("record %d diverged after round-trip", i)
			}
			for j, m := range r.muts {
				if m.Op != recs[i].muts[j].Op || !m.Atom.Equal(recs[i].muts[j].Atom) {
					t.Fatalf("mutation %d/%d diverged after round-trip", i, j)
				}
			}
		}
	})
}
