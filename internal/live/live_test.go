package live

import (
	"bytes"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
)

func atom(t *testing.T, src string) ast.Atom {
	t.Helper()
	a, err := parser.ParseAtom(src)
	if err != nil {
		t.Fatalf("ParseAtom(%q): %v", src, err)
	}
	return a
}

func prog(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

const seedSrc = `
edge(a, b).
edge(b, c).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
`

// quiet drops log output so expected warnings (torn tails) don't clutter
// test output.
func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(bytes.NewBuffer(nil), nil))
}

func openStore(t *testing.T, dir string, every int) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(prog(t, seedSrc), Config{
		WALPath:       filepath.Join(dir, "wal.log"),
		SnapshotPath:  filepath.Join(dir, "db.snap"),
		SnapshotEvery: every,
		Logger:        quiet(),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func TestCommitAndVersioning(t *testing.T) {
	s, rec := openStore(t, t.TempDir(), 0)
	defer s.Close()
	if rec.Version != 0 || rec.Replayed != 0 || rec.FromSnapshot {
		t.Fatalf("fresh recovery = %+v", rec)
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("seed fact count = %d, want 2", n)
	}

	info, err := s.Commit([]Mutation{Assert(atom(t, "edge(c, d)"))})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if info.Version != 1 || info.Changed != 1 {
		t.Fatalf("info = %+v", info)
	}
	if !s.Has(atom(t, "edge(c, d)")) {
		t.Fatal("asserted fact missing")
	}

	// Batches are one version regardless of size; no-op mutations commit
	// but report Changed accordingly.
	info, err = s.Commit([]Mutation{
		Assert(atom(t, "edge(c, d)")), // already present
		Retract(atom(t, "edge(a, b)")),
		Retract(atom(t, "edge(x, y)")), // absent
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if info.Version != 2 || info.Changed != 1 {
		t.Fatalf("info = %+v", info)
	}
	if s.Has(atom(t, "edge(a, b)")) {
		t.Fatal("retracted fact still present")
	}
	if s.Version() != 2 {
		t.Fatalf("Version = %d, want 2", s.Version())
	}
}

func TestCommitRejectsBadBatches(t *testing.T) {
	s, _ := openStore(t, t.TempDir(), 0)
	defer s.Close()

	if _, err := s.Commit(nil); err == nil {
		t.Fatal("empty batch committed")
	}
	nonGround := ast.Atom{Pred: "edge", Args: []ast.Term{ast.Var("X"), ast.Const("b")}}
	if _, err := s.Commit([]Mutation{Assert(nonGround)}); err == nil {
		t.Fatal("non-ground fact committed")
	}
	if _, err := s.Commit([]Mutation{{Op: 7, Atom: atom(t, "edge(a, b)")}}); err == nil {
		t.Fatal("unknown op committed")
	}
	// A bad mutation anywhere in the batch rejects the whole batch.
	if _, err := s.Commit([]Mutation{
		Assert(atom(t, "edge(z, z)")),
		Assert(nonGround),
	}); err == nil {
		t.Fatal("batch with one bad mutation committed")
	}
	if s.Has(atom(t, "edge(z, z)")) {
		t.Fatal("partial batch applied")
	}
	if s.Version() != 0 {
		t.Fatalf("rejected batches moved the version to %d", s.Version())
	}
}

func TestFactsSnapshotIsolationOfSlice(t *testing.T) {
	s, _ := openStore(t, t.TempDir(), 0)
	defer s.Close()
	before := s.Facts()
	if len(before) != 2 {
		t.Fatalf("Facts len = %d, want 2", len(before))
	}
	if again := s.Facts(); &again[0] != &before[0] {
		t.Fatal("same-version Facts() rebuilt the slice")
	}
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(c, d)"))}); err != nil {
		t.Fatal(err)
	}
	after := s.Facts()
	if len(before) != 2 || len(after) != 3 {
		t.Fatalf("old slice len %d / new %d, want 2 / 3", len(before), len(after))
	}
	// Sorted by canonical text.
	for i := 1; i < len(after); i++ {
		if after[i-1].String() >= after[i].String() {
			t.Fatalf("Facts not sorted: %s before %s", after[i-1], after[i])
		}
	}
}

func TestRecoveryReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, 0) // no compaction: everything lives in the WAL
	for _, m := range []Mutation{
		Assert(atom(t, "edge(c, d)")),
		Assert(atom(t, "edge(d, e)")),
		Retract(atom(t, "edge(a, b)")),
	} {
		if _, err := s.Commit([]Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: skip Close (which would compact) and drop the
	// file handle on the floor.
	s.wal.Close()
	s.closed = true

	r, rec := openStore(t, dir, 0)
	defer r.Close()
	if rec.Version != 3 || rec.Replayed != 3 || rec.FromSnapshot || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if !r.Has(atom(t, "edge(d, e)")) || r.Has(atom(t, "edge(a, b)")) {
		t.Fatal("replayed state wrong")
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "wal.log")
	s, _ := openStore(t, dir, 0)
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(c, d)"))}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(d, e)"))}); err != nil {
		t.Fatal(err)
	}
	s.wal.Close()
	s.closed = true

	// Tear the last record: chop off its final 3 bytes, as a crash
	// mid-write would.
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r, rec := openStore(t, dir, 0)
	defer r.Close()
	if rec.Version != 1 || rec.Replayed != 1 || rec.TornBytes == 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if r.Has(atom(t, "edge(d, e)")) {
		t.Fatal("torn commit replayed")
	}
	// The torn tail must be gone from disk so the next commit appends to
	// a valid prefix: commit and recover once more.
	if _, err := r.Commit([]Mutation{Assert(atom(t, "edge(e, f)"))}); err != nil {
		t.Fatal(err)
	}
	r.wal.Close()
	r.closed = true
	r2, rec2 := openStore(t, dir, 0)
	defer r2.Close()
	if rec2.Version != 2 || !r2.Has(atom(t, "edge(e, f)")) {
		t.Fatalf("post-truncation recovery = %+v", rec2)
	}
}

func TestRecoveryRejectsCorruptInterior(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "wal.log")
	s, _ := openStore(t, dir, 0)
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(c, d)"))}); err != nil {
		t.Fatal(err)
	}
	s.wal.Close()
	s.closed = true

	// A record that passes its CRC but claims an out-of-sequence version
	// means the file was assembled wrong, not torn: refuse to open.
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, encodeRecord(99, []Mutation{Assert(ast.Atom{Pred: "p"})})...)
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(prog(t, seedSrc), Config{WALPath: wal, Logger: quiet()})
	if err == nil {
		t.Fatal("out-of-sequence WAL opened")
	}
}

func TestCompactionAndSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, 2) // compact every 2 commits
	var last CommitInfo
	for _, f := range []string{"edge(c, d)", "edge(d, e)", "edge(e, f)"} {
		var err error
		if last, err = s.Commit([]Mutation{Assert(atom(t, f))}); err != nil {
			t.Fatal(err)
		}
	}
	// Commit 2 compacted; commit 3 sits in the rotated WAL.
	if !last.Compacted && s.SinceSnapshot() != 1 {
		t.Fatalf("SinceSnapshot = %d after 3 commits with every=2", s.SinceSnapshot())
	}
	s.wal.Close()
	s.closed = true

	r, rec := openStore(t, dir, 2)
	defer r.Close()
	if !rec.FromSnapshot {
		t.Fatalf("recovery did not use snapshot: %+v", rec)
	}
	if rec.Version != 3 || rec.Replayed != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	for _, f := range []string{"edge(a, b)", "edge(c, d)", "edge(d, e)", "edge(e, f)"} {
		if !r.Has(atom(t, f)) {
			t.Fatalf("fact %s missing after snapshot recovery", f)
		}
	}
}

func TestCleanCloseCompactsAndReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, 0) // periodic compaction off; Close still compacts
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(c, d)"))}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(x, y)"))}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close = %v, want ErrClosed", err)
	}

	r, rec := openStore(t, dir, 0)
	defer r.Close()
	if rec.Replayed != 0 || !rec.FromSnapshot || rec.Version != 1 {
		t.Fatalf("clean-shutdown recovery = %+v", rec)
	}
	if !r.Has(atom(t, "edge(c, d)")) {
		t.Fatal("fact lost across clean restart")
	}
}

// TestCompactionCrashWindow covers a crash between the snapshot rename
// and the WAL rotation: the snapshot already holds the WAL's records, and
// replaying them on top must be a harmless no-op.
func TestCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, 0)
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(c, d)"))}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([]Mutation{Retract(atom(t, "edge(a, b)"))}); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot by hand, leaving the old WAL (records 1..2, base
	// 0) in place — exactly the state after the first rename.
	old, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	s.wal.Close()
	s.closed = true

	r, rec := openStore(t, dir, 0)
	defer r.Close()
	if rec.Version != 2 || rec.Replayed != 2 || !rec.FromSnapshot {
		t.Fatalf("crash-window recovery = %+v", rec)
	}
	if !r.Has(atom(t, "edge(c, d)")) || r.Has(atom(t, "edge(a, b)")) {
		t.Fatal("overlap replay corrupted state")
	}
}

func TestWALRoundTrip(t *testing.T) {
	ms := []Mutation{
		Assert(atom(t, "edge(a, b)")),
		Retract(atom(t, "flag")),
		Assert(atom(t, "'weird pred'('multi word const', '')")),
	}
	data := encodeHeader(41)
	data = append(data, encodeRecord(42, ms)...)
	base, recs, goodLen, err := parseWAL(data)
	if err != nil {
		t.Fatalf("parseWAL: %v", err)
	}
	if base != 41 || goodLen != len(data) || len(recs) != 1 {
		t.Fatalf("base=%d goodLen=%d/%d recs=%d", base, goodLen, len(data), len(recs))
	}
	if recs[0].version != 42 || len(recs[0].muts) != len(ms) {
		t.Fatalf("record = %+v", recs[0])
	}
	for i, m := range recs[0].muts {
		if m.Op != ms[i].Op || !m.Atom.Equal(ms[i].Atom) {
			t.Fatalf("mutation %d = %+v, want %+v", i, m, ms[i])
		}
	}
}
