package live

// Targeted fault-injection regressions: each test scripts one specific
// disk failure and pins down the store's contract for it. The torture
// sweep (torture_test.go) explores the space; these document the
// individual guarantees.

import (
	"errors"
	"math/rand"
	"testing"

	"hypodatalog/internal/vfs"
)

func openMemStore(t *testing.T, fs vfs.FS, every int) *Store {
	t.Helper()
	cfg := tortureConfig(fs)
	cfg.SnapshotEvery = every
	s, _, err := Open(prog(t, seedSrc), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustCommit(t *testing.T, s *Store, ms ...Mutation) CommitInfo {
	t.Helper()
	info, err := s.Commit(ms)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return info
}

// TestCommitSyncFailureDegrades: a failed WAL fsync mid-commit must (a)
// leave memory exactly where it was — the WAL and the fact set may not
// diverge, (b) flip the store to sticky read-only, (c) keep reads
// serving, and (d) recover to precisely the acked state after a crash.
func TestCommitSyncFailureDegrades(t *testing.T) {
	mem := vfs.NewMem()
	// Sync #1 is the WAL header; #2 and #3 are the two good commits.
	ft := vfs.NewFault(mem, vfs.FailNth(vfs.OpSync, 4))
	s := openMemStore(t, ft, 0)
	mustCommit(t, s, Assert(atom(t, "edge(c, d)")))
	mustCommit(t, s, Assert(atom(t, "edge(d, e)")))
	version, facts := s.Version(), factKeys(s.Facts())

	_, err := s.Commit([]Mutation{Assert(atom(t, "edge(e, f)"))})
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("commit over failed sync = %v; want ErrReadOnly wrapping ErrInjected", err)
	}
	if got := s.Version(); got != version {
		t.Fatalf("version moved across a failed commit: %d -> %d", version, got)
	}
	if got := factKeys(s.Facts()); !equalKeys(got, facts) {
		t.Fatalf("facts moved across a failed commit:\n got %v\nwant %v", got, facts)
	}
	if ro, roErr := s.ReadOnly(); !ro || !errors.Is(roErr, vfs.ErrInjected) {
		t.Fatalf("ReadOnly() = %v, %v; want sticky injected cause", ro, roErr)
	}
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(e, f)"))}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("second commit after degradation = %v; want ErrReadOnly", err)
	}
	if !s.Has(atom(t, "edge(d, e)")) {
		t.Fatal("reads stopped serving after degradation")
	}

	// Power cut, then recovery on the healed disk: the acked version and
	// nothing else.
	mem.Crash(rand.New(rand.NewSource(7)))
	s2, rec, err := Open(prog(t, seedSrc), tortureConfig(mem))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if rec.Version != version {
		t.Fatalf("recovered version = %d, want %d", rec.Version, version)
	}
	if got := factKeys(s2.Facts()); !equalKeys(got, facts) {
		t.Fatalf("recovered facts:\n got %v\nwant %v", got, facts)
	}
}

// TestSnapshotRenameFailureStaysWritable: a compaction that dies at the
// snapshot rename must not take the store down with it — the commit
// that triggered it still acks, later commits still work, and a restart
// replays everything from the never-rotated WAL.
func TestSnapshotRenameFailureStaysWritable(t *testing.T) {
	mem := vfs.NewMem()
	ft := vfs.NewFault(mem, vfs.FailPath(vfs.OpRename, tortureSnap))
	s := openMemStore(t, ft, 2)
	mustCommit(t, s, Assert(atom(t, "edge(c, d)")))
	info := mustCommit(t, s, Assert(atom(t, "edge(d, e)"))) // triggers the doomed compaction
	if info.Compacted {
		t.Fatal("compaction reported success past a failed snapshot rename")
	}
	if ro, _ := s.ReadOnly(); ro {
		t.Fatal("a failed snapshot rename degraded the store; the WAL still covers everything")
	}
	mustCommit(t, s, Assert(atom(t, "edge(e, f)")))
	want := factKeys(s.Facts())

	s2, rec, err := Open(prog(t, seedSrc), tortureConfig(mem))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if rec.Version != 3 || rec.FromSnapshot {
		t.Fatalf("recovery = version %d fromSnapshot %v, want 3 from WAL", rec.Version, rec.FromSnapshot)
	}
	if got := factKeys(s2.Facts()); !equalKeys(got, want) {
		t.Fatalf("recovered facts:\n got %v\nwant %v", got, want)
	}
}

// TestSnapshotDirSyncFailureAbortsCompaction: the directory fsync after
// the snapshot rename is load-bearing — if it fails, the WAL must NOT
// rotate (a rotation the crash could outlive while the snapshot rename
// rolls back would lose every commit in between). The store stays
// writable; recovery replays the full, never-rotated WAL.
func TestSnapshotDirSyncFailureAbortsCompaction(t *testing.T) {
	mem := vfs.NewMem()
	// SyncDir #1 durably creates the WAL; #2 is the snapshot rename's.
	ft := vfs.NewFault(mem, vfs.FailNth(vfs.OpSyncDir, 2))
	s := openMemStore(t, ft, 2)
	mustCommit(t, s, Assert(atom(t, "edge(c, d)")))
	info := mustCommit(t, s, Assert(atom(t, "edge(d, e)")))
	if info.Compacted {
		t.Fatal("compaction reported success past a failed snapshot dir-sync")
	}
	if ro, _ := s.ReadOnly(); ro {
		t.Fatal("an aborted compaction degraded the store")
	}
	mustCommit(t, s, Assert(atom(t, "edge(e, f)")))
	want := factKeys(s.Facts())

	mem.Crash(rand.New(rand.NewSource(11)))
	s2, rec, err := Open(prog(t, seedSrc), tortureConfig(mem))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if rec.Version != 3 {
		t.Fatalf("recovered version = %d, want 3", rec.Version)
	}
	if got := factKeys(s2.Facts()); !equalKeys(got, want) {
		t.Fatalf("recovered facts:\n got %v\nwant %v", got, want)
	}
}

// TestWALRotationDirSyncFailureDegrades: once the rotated WAL's rename
// is issued, a failed directory fsync means future appends land in a
// file a crash could roll back — the store must degrade. The commit
// that triggered the compaction was already durable, so it still acks.
func TestWALRotationDirSyncFailureDegrades(t *testing.T) {
	mem := vfs.NewMem()
	// SyncDir #1: WAL create; #2: snapshot rename; #3: WAL rotation.
	ft := vfs.NewFault(mem, vfs.FailNth(vfs.OpSyncDir, 3))
	s := openMemStore(t, ft, 2)
	mustCommit(t, s, Assert(atom(t, "edge(c, d)")))
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(d, e)"))}); err != nil {
		t.Fatalf("the triggering commit was durable before the rotation; it must ack: %v", err)
	}
	if ro, roErr := s.ReadOnly(); !ro || !errors.Is(roErr, vfs.ErrInjected) {
		t.Fatalf("ReadOnly() = %v, %v; want degraded with injected cause", ro, roErr)
	}
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(e, f)"))}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("commit after rotation degradation = %v; want ErrReadOnly", err)
	}
	version, want := s.Version(), factKeys(s.Facts())

	mem.Crash(rand.New(rand.NewSource(13)))
	s2, rec, err := Open(prog(t, seedSrc), tortureConfig(mem))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if rec.Version != version {
		t.Fatalf("recovered version = %d, want %d", rec.Version, version)
	}
	if got := factKeys(s2.Facts()); !equalKeys(got, want) {
		t.Fatalf("recovered facts:\n got %v\nwant %v", got, want)
	}
}

// TestFirstBootCreateDirSyncFailure: even the very first WAL creation
// propagates its directory fsync — otherwise first-boot commits could be
// acked into a file a crash unlinks.
func TestFirstBootCreateDirSyncFailure(t *testing.T) {
	ft := vfs.NewFault(vfs.NewMem(), vfs.FailNth(vfs.OpSyncDir, 1))
	if _, _, err := Open(prog(t, seedSrc), tortureConfig(ft)); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Open over failed create dir-sync = %v; want ErrInjected", err)
	}
}
