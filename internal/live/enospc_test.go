package live

// Disk-full (ENOSPC) survival tests. Unlike the EIO-class faults in
// fault_test.go — which are sticky until restart — space pressure is
// transient: the kernel rejected the data outright, the rollback
// truncate restored the known-good WAL prefix, and once space returns
// the store must become writable again IN PLACE via TryRecover, no
// restart. The sweep at the bottom fills the disk at every mutating
// operation of the workload (including mid-compaction) and asserts the
// full contract each time.

import (
	"errors"
	"fmt"
	"math/rand"
	"syscall"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/vfs"
)

// TestENOSPCCommitDegradesTransient: a commit hitting a full disk must
// (a) roll back cleanly — version and facts unmoved, (b) degrade the
// store read-only with a transient classification, (c) keep serving
// reads, (d) refuse TryRecover while the disk is still full, and (e)
// recover to writable via TryRecover once space returns.
func TestENOSPCCommitDegradesTransient(t *testing.T) {
	mem := vfs.NewMem()
	en := vfs.NewENOSPC(7) // first failing write is torn: rollback must cope
	ft := vfs.NewFault(mem, en)
	s := openMemStore(t, ft, 0)
	mustCommit(t, s, Assert(atom(t, "edge(c, d)")))
	version, facts := s.Version(), factKeys(s.Facts())

	en.Fill()
	_, err := s.Commit([]Mutation{Assert(atom(t, "edge(d, e)"))})
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("commit on full disk = %v; want ErrReadOnly wrapping ENOSPC", err)
	}
	if got := s.Version(); got != version {
		t.Fatalf("version moved across a failed commit: %d -> %d", version, got)
	}
	if got := factKeys(s.Facts()); !equalKeys(got, facts) {
		t.Fatalf("facts moved across a failed commit:\n got %v\nwant %v", got, facts)
	}
	ro, transient, cause := s.Degraded()
	if !ro || !transient || !errors.Is(cause, syscall.ENOSPC) {
		t.Fatalf("Degraded() = %v, %v, %v; want read-only, transient, ENOSPC cause", ro, transient, cause)
	}
	if !s.Has(atom(t, "edge(c, d)")) {
		t.Fatal("reads stopped serving after ENOSPC degradation")
	}

	// Still full: the probe write must fail and the store stay read-only.
	if err := s.TryRecover(); err == nil {
		t.Fatal("TryRecover succeeded while the disk is still full")
	}
	if ro, _, _ := s.Degraded(); !ro {
		t.Fatal("a failed recovery probe cleared the degradation")
	}

	// Space returns: recovery re-enables writes without a restart.
	en.Release()
	if err := s.TryRecover(); err != nil {
		t.Fatalf("TryRecover after space returned: %v", err)
	}
	if ro, _, _ := s.Degraded(); ro {
		t.Fatal("store still read-only after successful recovery")
	}
	mustCommit(t, s, Assert(atom(t, "edge(d, e)")))
	want := factKeys(s.Facts())

	// The recovered write path is durable: a crash loses nothing acked.
	mem.Crash(rand.New(rand.NewSource(3)))
	s2, rec, err := Open(prog(t, seedSrc), tortureConfig(mem))
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer s2.Close()
	if rec.Version != version+1 {
		t.Fatalf("recovered version = %d, want %d", rec.Version, version+1)
	}
	if got := factKeys(s2.Facts()); !equalKeys(got, want) {
		t.Fatalf("recovered facts:\n got %v\nwant %v", got, want)
	}
}

// TestENOSPCStickyWhenRollbackFails: transiency requires a clean
// rollback. If the truncate restoring the WAL prefix fails too, the
// on-disk tail is no longer a known-good prefix — the degradation must
// be sticky, and TryRecover must refuse even after space returns.
func TestENOSPCStickyWhenRollbackFails(t *testing.T) {
	en := vfs.NewENOSPC(5)
	script := vfs.ScriptFunc(func(op vfs.Op) vfs.Decision {
		if en.Full() && op.Kind == vfs.OpTruncate {
			return vfs.Decision{Err: vfs.ErrInjected}
		}
		return en.Decide(op)
	})
	ft := vfs.NewFault(vfs.NewMem(), script)
	s := openMemStore(t, ft, 0)
	mustCommit(t, s, Assert(atom(t, "edge(c, d)")))

	en.Fill()
	if _, err := s.Commit([]Mutation{Assert(atom(t, "edge(d, e)"))}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("commit on full disk = %v; want ErrReadOnly", err)
	}
	if _, transient, _ := s.Degraded(); transient {
		t.Fatal("degradation classified transient although the rollback truncate failed")
	}
	en.Release()
	if err := s.TryRecover(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("TryRecover on a sticky degradation = %v; want ErrReadOnly", err)
	}
	if ro, _, _ := s.Degraded(); !ro {
		t.Fatal("sticky degradation cleared by TryRecover")
	}
}

// TestTortureENOSPCSweep fills the disk at every mutating operation of
// the torture workload in turn — WAL appends, fsyncs, snapshot writes,
// WAL rotations, everything compaction does — and asserts, for each
// fill point: acked commits are intact in memory, any degradation is
// transient, releasing space makes the store writable again in place,
// and the post-recovery state survives a crash-restart.
func TestTortureENOSPCSweep(t *testing.T) {
	seedProg := prog(t, seedSrc)
	batches := makeBatches(rand.New(rand.NewSource(5)), tortureBatches)
	states := modelStates(seedProg.Facts, batches)

	// Counting run on a healthy disk enumerates the fill points.
	mem := vfs.NewMem()
	ft := vfs.NewFault(mem, nil)
	s, _, err := Open(seedProg, tortureConfig(ft))
	if err != nil {
		t.Fatalf("healthy open: %v", err)
	}
	for i, b := range batches {
		if _, err := s.Commit(b); err != nil {
			t.Fatalf("healthy commit %d: %v", i+1, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("healthy close: %v", err)
	}
	n := ft.Ops()

	for k := 1; k <= n; k++ {
		if err := enospcRound(seedProg, batches, states, k); err != nil {
			t.Fatalf("fill point %d/%d: %v", k, n, err)
		}
	}
}

// enospcRound runs one fill point of the ENOSPC sweep: the disk fills
// at mutating op k, the workload runs until refused, then space returns
// and the full recovery contract is checked.
func enospcRound(seedProg *ast.Program, batches [][]Mutation, states [][]string, k int) error {
	mem := vfs.NewMem()
	en := vfs.NewENOSPC(k % 64) // deterministic torn-write length per point
	filled := false
	script := vfs.ScriptFunc(func(op vfs.Op) vfs.Decision {
		if !filled && op.Seq >= k {
			filled = true
			en.Fill()
		}
		return en.Decide(op)
	})
	ft := vfs.NewFault(mem, script)
	s, _, err := Open(seedProg, tortureConfig(ft))
	if err != nil {
		// The fill landed inside Open (e.g. the WAL header write). Space
		// returning must make a fresh Open succeed; nothing was acked.
		en.Release()
		s, _, err = Open(seedProg, tortureConfig(ft))
		if err != nil {
			return fmt.Errorf("reopen after releasing space: %v", err)
		}
	}
	defer s.Close()
	acked := 0
	for _, b := range batches {
		if _, err := s.Commit(b); err != nil {
			if !errors.Is(err, ErrReadOnly) {
				return fmt.Errorf("failed commit did not carry ErrReadOnly: %v", err)
			}
			break
		}
		acked++
	}
	// No crash happened: every acked commit must be intact in memory.
	if got := int(s.Version()); got != acked {
		return fmt.Errorf("version %d != acked %d", got, acked)
	}
	if got := factKeys(s.Facts()); !equalKeys(got, states[acked]) {
		return fmt.Errorf("facts at version %d diverge from model:\n got %v\nwant %v", acked, got, states[acked])
	}

	// Space returns: the store must become writable again without restart.
	en.Release()
	if ro, transient, cause := s.Degraded(); ro {
		if !transient {
			return fmt.Errorf("ENOSPC degradation not transient: %v", cause)
		}
		if err := s.TryRecover(); err != nil {
			return fmt.Errorf("TryRecover after space returned: %v", err)
		}
	}
	extra := Assert(ast.Atom{Pred: "edge", Args: []ast.Term{ast.Const("a"), ast.Const("f")}})
	if _, err := s.Commit([]Mutation{extra}); err != nil {
		return fmt.Errorf("commit after recovery: %v", err)
	}
	postVersion, postFacts := s.Version(), factKeys(s.Facts())

	// The post-recovery write path is durable: crash and recover.
	mem.Crash(rand.New(rand.NewSource(int64(k))))
	s2, rec, err := Open(seedProg, tortureConfig(mem))
	if err != nil {
		return fmt.Errorf("recovery after crash: %v", err)
	}
	defer s2.Close()
	if rec.Version != postVersion {
		return fmt.Errorf("recovered version = %d, want %d", rec.Version, postVersion)
	}
	if got := factKeys(s2.Facts()); !equalKeys(got, postFacts) {
		return fmt.Errorf("recovered facts:\n got %v\nwant %v", got, postFacts)
	}
	if ro, _, _ := s2.Degraded(); ro {
		return fmt.Errorf("recovered store is read-only")
	}
	return nil
}
