// Package live is the mutable, durable, versioned base database — the
// "live EDB" under a hypothetical Datalog engine. Where the rest of the
// system treats the extensional database as frozen at load time, a
// live.Store accepts transactional mutation batches (assert/retract of
// ground facts, all-or-nothing), gives each committed batch a new
// immutable data version, and makes every acknowledged commit durable:
//
//   - a commit is appended to an append-only, CRC-guarded write-ahead log
//     and fsynced before it is acknowledged;
//   - every SnapshotEvery commits the fact set is compacted into the
//     HDLSNAP snapshot format (internal/storage) and the WAL is rotated;
//   - crash recovery = load the snapshot (or the seed program) and replay
//     the WAL tail; a torn last record is discarded by its checksum, so
//     recovery converges on a version ≥ every acknowledged commit.
//
// All disk access goes through an injectable filesystem (internal/vfs,
// Config.FS): production uses the real one, the crash-consistency
// torture harness (torture_test.go) swaps in a simulated disk and power-
// cuts it at every write/sync boundary. When an I/O error makes further
// durability promises impossible — a failed WAL append or fsync, or a
// WAL rotation whose directory entry could not be made durable — the
// store degrades into a sticky read-only state (ErrReadOnly): the last
// committed version keeps serving, mutations are refused, and only a
// restart (with a healthy disk) clears the condition. Fsync failure is
// not retried: after EIO the kernel may have dropped the dirty pages, so
// "retry until it works" silently loses acknowledged data.
//
// The store itself is engine-agnostic: it owns facts as surface-syntax
// ground atoms and knows nothing about domains, stratification or
// intensional predicates. Admission policy (rejecting constants outside
// the declared domain, mutations of intensional predicates, arity
// conflicts) belongs to the engine layer wrapping it — see hypo.Live.
//
// A Store is safe for concurrent use; commits are serialised internally.
package live

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/storage"
	"hypodatalog/internal/vfs"
)

// Op is a mutation kind.
type Op uint8

const (
	// OpAssert inserts a ground fact into the base database.
	OpAssert Op = 1
	// OpRetract removes a ground fact from the base database.
	OpRetract Op = 2
)

// String names the op in surface terms.
func (o Op) String() string {
	switch o {
	case OpAssert:
		return "assert"
	case OpRetract:
		return "retract"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mutation is one assert or retract of a ground fact.
type Mutation struct {
	Op   Op
	Atom ast.Atom
}

// Assert builds an OpAssert mutation.
func Assert(a ast.Atom) Mutation { return Mutation{Op: OpAssert, Atom: a} }

// Retract builds an OpRetract mutation.
func Retract(a ast.Atom) Mutation { return Mutation{Op: OpRetract, Atom: a} }

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("live: store is closed")

// ErrReadOnly is returned by Commit (and Compact) once an I/O error has
// degraded the store to read-only: reads keep serving the last
// committed version and every subsequent mutation fails with an error
// satisfying errors.Is(err, ErrReadOnly). For corruption-class errors
// (EIO, a failed rollback) the state is sticky — only a restart, which
// re-runs recovery against the surviving durable state, clears it. For
// transient space pressure (ENOSPC with a clean rollback) the write
// path can be re-enabled in place once TryRecover's probe write fsyncs
// cleanly. Test with errors.Is; the original I/O error is joined in
// (and available via ReadOnly).
var ErrReadOnly = errors.New("live: store is read-only (degraded after an I/O error; restart to recover)")

// Config parameterises a Store.
type Config struct {
	// WALPath is the write-ahead log file. Required. Created if absent;
	// replayed (with the torn tail truncated) if present.
	WALPath string

	// SnapshotPath, when set, enables compaction: the fact set is
	// periodically written there in the HDLSNAP format and the WAL is
	// rotated. On Open, an existing snapshot at this path seeds the fact
	// set (the WAL tail is replayed on top of it).
	SnapshotPath string

	// SnapshotEvery compacts after this many commits since the last
	// compaction. Zero disables periodic compaction (a clean Close still
	// compacts when SnapshotPath is set).
	SnapshotEvery int

	// NoSync skips the per-commit fsync (and the directory fsyncs).
	// Commits are then only as durable as the OS page cache — for tests
	// and benchmarks, not production.
	NoSync bool

	// StreamTailLen bounds the in-memory ring of recent commit records
	// kept for replication streaming (RecordsSince). A follower whose
	// resume point has aged out of the ring must bootstrap from a
	// snapshot. Default: 4096.
	StreamTailLen int

	// FS is the filesystem the store runs on. Default: the real one
	// (vfs.OS). Tests inject vfs.Mem/vfs.Fault to simulate crashes and
	// disk faults.
	FS vfs.FS

	// Logger receives compaction and recovery diagnostics. Default:
	// slog.Default().
	Logger *slog.Logger
}

// Recovery reports what Open reconstructed.
type Recovery struct {
	// Version is the data version the store resumed at.
	Version uint64
	// Replayed is the number of WAL records applied on top of the base
	// fact set.
	Replayed int
	// TornBytes is the size of the discarded torn WAL tail (0 on a clean
	// shutdown).
	TornBytes int
	// FromSnapshot reports whether the base fact set came from the
	// snapshot file rather than the seed program.
	FromSnapshot bool
}

// CommitInfo reports one successful commit.
type CommitInfo struct {
	// Version is the new data version produced by the batch.
	Version uint64
	// Changed is how many mutations altered the fact set (asserting a
	// present fact or retracting an absent one is a no-op that still
	// commits).
	Changed int
	// Compacted reports whether this commit triggered a snapshot
	// compaction.
	Compacted bool
}

// Store is the versioned fact store. See the package comment.
type Store struct {
	mu    sync.Mutex
	cfg   Config
	fs    vfs.FS
	log   *slog.Logger
	rules *ast.Program // rules and queries only; facts live in the map

	facts   map[string]ast.Atom // key: canonical surface text
	version uint64

	wal       vfs.File
	walBase   uint64 // header base version of the current WAL file
	sinceSnap int    // commits since the last compaction (or Open)

	cache  []ast.Atom // sorted fact slice for the current version
	closed bool
	roErr  error // first degrading I/O error; non-nil = read-only
	// roTransient marks the degradation as transient I/O pressure (e.g.
	// ENOSPC with a clean WAL rollback) rather than corruption: the
	// on-disk prefix is known-good, so TryRecover may re-enable writes
	// once a probe write fsyncs cleanly. Sticky degradations (EIO,
	// failed rollback) keep it false and only a restart recovers.
	roTransient bool

	// tail is the in-memory ring of recent commit records — the stream
	// source for replication followers. It is seeded from the WAL tail at
	// recovery and bounded by cfg.StreamTailLen; a follower further behind
	// than the ring's first record must bootstrap from a snapshot instead.
	tail []Record
	// changed is closed (and replaced) on every commit or reset — the
	// broadcast replication streamers block on between records.
	changed chan struct{}
}

// Open builds a store from the seed program and the durable state at
// cfg's paths. The seed's rules and queries are authoritative (they are
// what gets written into compaction snapshots); its facts are used only
// when no snapshot exists. Facts are deduplicated by canonical text.
func Open(seed *ast.Program, cfg Config) (*Store, Recovery, error) {
	if cfg.WALPath == "" {
		return nil, Recovery{}, errors.New("live: Config.WALPath is required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS{}
	}
	if cfg.StreamTailLen <= 0 {
		cfg.StreamTailLen = 4096
	}
	s := &Store{
		cfg:     cfg,
		fs:      cfg.FS,
		log:     cfg.Logger,
		rules:   &ast.Program{Rules: seed.Rules, Queries: seed.Queries},
		facts:   make(map[string]ast.Atom),
		changed: make(chan struct{}),
	}
	var rec Recovery

	// Base fact set: the snapshot if one exists, else the seed program.
	base := seed.Facts
	if cfg.SnapshotPath != "" {
		f, err := s.fs.Open(cfg.SnapshotPath)
		switch {
		case err == nil:
			snap, rerr := storage.Read(f)
			f.Close()
			if rerr != nil {
				return nil, Recovery{}, fmt.Errorf("live: snapshot %s: %w", cfg.SnapshotPath, rerr)
			}
			base = snap.Facts
			rec.FromSnapshot = true
		case errors.Is(err, fs.ErrNotExist):
			// First boot: seed facts.
		default:
			return nil, Recovery{}, fmt.Errorf("live: snapshot: %w", err)
		}
	}
	for _, a := range base {
		if !a.IsGround() {
			return nil, Recovery{}, fmt.Errorf("live: base fact %s is not ground", a)
		}
		s.facts[a.String()] = a
	}

	if err := s.openWAL(&rec); err != nil {
		return nil, Recovery{}, err
	}
	rec.Version = s.version
	return s, rec, nil
}

// openWAL replays (or creates) the WAL file and leaves it open for
// appending.
func (s *Store) openWAL(rec *Recovery) error {
	data, err := s.fs.ReadFile(s.cfg.WALPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return s.createWAL(0)
	case err != nil:
		return fmt.Errorf("live: reading WAL: %w", err)
	}
	if tornHeader(data) {
		// Power was cut during first-boot creation: the header never became
		// durable, so nothing was ever acknowledged from this file.
		if rec.FromSnapshot {
			return fmt.Errorf("live: WAL %s has a torn header but a snapshot exists; cannot infer the base version", s.cfg.WALPath)
		}
		s.log.Warn("live: discarding WAL torn during creation",
			"wal", s.cfg.WALPath, "bytes", len(data))
		rec.TornBytes = len(data)
		if err := s.fs.Remove(s.cfg.WALPath); err != nil {
			return fmt.Errorf("live: removing torn WAL: %w", err)
		}
		return s.createWAL(0)
	}
	base, recs, goodLen, err := parseWAL(data)
	if err != nil {
		return err
	}
	if goodLen < len(data) {
		rec.TornBytes = len(data) - goodLen
		s.log.Warn("live: discarding torn WAL tail",
			"wal", s.cfg.WALPath, "bytes", rec.TornBytes)
		if err := s.fs.Truncate(s.cfg.WALPath, int64(goodLen)); err != nil {
			return fmt.Errorf("live: truncating torn WAL tail: %w", err)
		}
	}
	s.walBase = base
	s.version = base
	for _, r := range recs {
		if r.reset {
			s.facts = make(map[string]ast.Atom, len(r.muts))
			s.tail = nil
		}
		for _, m := range r.muts {
			s.apply(m)
		}
		s.version = r.version
		if !r.reset {
			s.appendTailLocked(Record{Version: r.version, Muts: r.muts})
		}
	}
	rec.Replayed = len(recs)
	f, err := s.fs.OpenFile(s.cfg.WALPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("live: reopening WAL for append: %w", err)
	}
	s.wal = f
	s.sinceSnap = len(recs)
	return nil
}

// createWAL writes a fresh WAL file containing only a header and opens
// it for appending.
func (s *Store) createWAL(base uint64) error {
	f, err := s.fs.OpenFile(s.cfg.WALPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("live: creating WAL: %w", err)
	}
	if _, err := f.Write(encodeHeader(base)); err != nil {
		f.Close()
		return fmt.Errorf("live: writing WAL header: %w", err)
	}
	if err := s.syncFile(f); err != nil {
		f.Close()
		return err
	}
	// The directory entry must be durable too: fsyncing record data into
	// a file a crash could unlink would lose acked first-boot commits.
	if err := s.syncDir(s.cfg.WALPath); err != nil {
		f.Close()
		return err
	}
	s.wal = f
	s.walBase = base
	s.version = base
	s.sinceSnap = 0
	return nil
}

func (s *Store) syncFile(f vfs.File) error {
	if s.cfg.NoSync {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("live: fsync: %w", err)
	}
	return nil
}

// syncDir fsyncs the parent directory of path, making creations and
// renames of the file durable. Skipped (like every fsync) under NoSync.
func (s *Store) syncDir(path string) error {
	if s.cfg.NoSync {
		return nil
	}
	if err := s.fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("live: fsync dir %s: %w", filepath.Dir(path), err)
	}
	return nil
}

// isTransientIO reports whether an I/O error is space pressure rather
// than disk damage. ENOSPC (and the quota twin EDQUOT) is transient:
// the kernel rejected the data outright, so unlike a post-EIO fsync
// there are no untrustworthy dirty pages — once the rollback truncate
// has restored the known-good WAL prefix, resuming appends after space
// returns is sound.
func isTransientIO(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// degradeLocked records the first degrading I/O error and flips the
// store read-only. rollbackOK reports whether the on-disk state is
// still a known-good prefix (nothing was written, or the rollback
// truncate succeeded); only then, and only for transient space-pressure
// errors, is the degradation recoverable by TryRecover — anything else
// is sticky until restart. It returns the error to hand the caller:
// ErrReadOnly joined with the cause.
func (s *Store) degradeLocked(cause error, rollbackOK bool) error {
	if s.roErr == nil {
		s.roErr = cause
		s.roTransient = rollbackOK && isTransientIO(cause)
		if s.roTransient {
			s.log.Error("live: transient I/O pressure; store is read-only until a recovery probe succeeds", "err", cause)
		} else {
			s.log.Error("live: unrecoverable I/O error; store is now read-only", "err", cause)
		}
	}
	return errors.Join(ErrReadOnly, cause)
}

// ReadOnly reports whether an I/O error has degraded the store to
// read-only, and if so the error that caused it.
func (s *Store) ReadOnly() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roErr != nil, s.roErr
}

// Degraded reports the store's degradation state: whether it is
// read-only, whether that degradation is transient (eligible for
// TryRecover), and the causing error.
func (s *Store) Degraded() (ro, transient bool, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roErr != nil, s.roTransient, s.roErr
}

// TryRecover attempts to re-enable the write path of a transiently
// degraded store (see Degraded). It probes the disk — a throwaway file
// in the WAL's directory must create, write and fsync cleanly — then
// re-fsyncs the WAL handle and its directory so any durability step the
// degradation interrupted (e.g. a rotation's directory entry) lands.
// Only when every step succeeds does the store become writable again.
// On a healthy store it is a no-op; on a sticky degradation it fails
// with ErrReadOnly without touching the disk.
func (s *Store) TryRecover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.roErr == nil {
		return nil
	}
	if !s.roTransient {
		return errors.Join(ErrReadOnly, s.roErr)
	}
	probe := s.cfg.WALPath + ".probe"
	f, err := s.fs.OpenFile(probe, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("live: recovery probe create: %w", err)
	}
	_, err = f.Write([]byte("hdl-recovery-probe"))
	if err == nil {
		err = s.syncFile(f)
	}
	cerr := f.Close()
	s.fs.Remove(probe)
	if err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("live: recovery probe: %w", err)
	}
	// The probe proves the disk accepts new data; now make the store's
	// own files durable again (a rotation degrade left its directory
	// fsync pending, an append degrade left a truncated-back WAL whose
	// metadata should settle before new records land on it).
	if err := s.syncFile(s.wal); err != nil {
		return fmt.Errorf("live: recovery WAL fsync: %w", err)
	}
	if err := s.syncDir(s.cfg.WALPath); err != nil {
		return fmt.Errorf("live: recovery dir fsync: %w", err)
	}
	s.log.Info("live: write path recovered", "cause", s.roErr, "version", s.version)
	s.roErr = nil
	s.roTransient = false
	return nil
}

// DiskBytes reports the store's current on-disk footprint: the WAL plus
// the snapshot (when configured). It is an instantaneous figure read
// through the store's filesystem, used for disk-quota accounting.
func (s *Store) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	var n int64
	if s.wal != nil {
		if off, err := s.wal.Seek(0, io.SeekEnd); err == nil {
			n += off
		}
	}
	if s.cfg.SnapshotPath != "" {
		if f, err := s.fs.Open(s.cfg.SnapshotPath); err == nil {
			if off, err := f.Seek(0, io.SeekEnd); err == nil {
				n += off
			}
			f.Close()
		}
	}
	return n
}

// apply performs one mutation on the fact map, reporting whether it
// changed anything.
func (s *Store) apply(m Mutation) bool {
	key := m.Atom.String()
	switch m.Op {
	case OpAssert:
		if _, ok := s.facts[key]; ok {
			return false
		}
		s.facts[key] = m.Atom
		return true
	case OpRetract:
		if _, ok := s.facts[key]; !ok {
			return false
		}
		delete(s.facts, key)
		return true
	default:
		return false
	}
}

// Commit applies a mutation batch atomically: the batch is validated,
// appended to the WAL and fsynced, and only then applied to the fact
// set under a new data version. A failed validation or write leaves the
// store exactly as it was. Asserting a present fact or retracting an
// absent one is a committed no-op (it still produces a version).
func (s *Store) Commit(ms []Mutation) (CommitInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CommitInfo{}, ErrClosed
	}
	if s.roErr != nil {
		return CommitInfo{}, errors.Join(ErrReadOnly, s.roErr)
	}
	if len(ms) == 0 {
		return CommitInfo{}, errors.New("live: empty mutation batch")
	}
	for _, m := range ms {
		if m.Op != OpAssert && m.Op != OpRetract {
			return CommitInfo{}, fmt.Errorf("live: unknown mutation op %d", m.Op)
		}
		if !m.Atom.IsGround() {
			return CommitInfo{}, fmt.Errorf("live: %s %s: fact is not ground", m.Op, m.Atom)
		}
		if len(m.Atom.Args) > 1024 {
			return CommitInfo{}, fmt.Errorf("live: %s %s: implausible arity %d", m.Op, m.Atom, len(m.Atom.Args))
		}
	}

	// Durability first: the record reaches disk before the fact set (or
	// the version) moves, so an acknowledged commit can never be lost and
	// a failed write never leaves a half-applied batch. Any failure here
	// degrades the store to read-only: after a failed append or fsync the
	// on-disk suffix is unknowable (the truncate below is best-effort, and
	// post-EIO page-cache state is not trustworthy), so appending further
	// records could corrupt the WAL interior — recovery hard-fails on
	// that, which would turn one lost commit into a lost store.
	record := encodeRecord(s.version+1, ms)
	off, err := s.wal.Seek(0, io.SeekEnd)
	if err != nil {
		return CommitInfo{}, s.degradeLocked(fmt.Errorf("live: WAL seek: %w", err), true)
	}
	if _, err := s.wal.Write(record); err != nil {
		// Cut the possibly partial record back off so the surviving prefix
		// stays parseable for recovery; a clean cut also keeps a transient
		// failure (ENOSPC) recoverable in place.
		terr := s.wal.Truncate(off)
		return CommitInfo{}, s.degradeLocked(fmt.Errorf("live: WAL append: %w", err), terr == nil)
	}
	if err := s.syncFile(s.wal); err != nil {
		terr := s.wal.Truncate(off)
		return CommitInfo{}, s.degradeLocked(err, terr == nil)
	}

	info := CommitInfo{Version: s.version + 1}
	for _, m := range ms {
		if s.apply(m) {
			info.Changed++
		}
	}
	s.version++
	s.cache = nil
	s.sinceSnap++
	s.appendTailLocked(Record{Version: s.version, Muts: append([]Mutation(nil), ms...)})
	s.broadcastLocked()

	if s.cfg.SnapshotEvery > 0 && s.cfg.SnapshotPath != "" && s.sinceSnap >= s.cfg.SnapshotEvery {
		if err := s.compactLocked(); err != nil {
			// The commit itself is durable in the WAL; a failed compaction
			// only delays the next one.
			s.log.Error("live: compaction failed", "err", err)
		} else {
			info.Compacted = true
		}
	}
	return info, nil
}

// Version returns the current data version.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Len returns the number of facts at the current version.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.facts)
}

// SinceSnapshot returns the number of commits since the last compaction
// (or since Open, if none has happened) — the length of the WAL tail a
// crash right now would replay.
func (s *Store) SinceSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnap
}

// Has reports whether the ground atom is a fact at the current version.
func (s *Store) Has(a ast.Atom) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.facts[a.String()]
	return ok
}

// Facts returns the fact set of the current version, sorted by canonical
// text. The returned slice is shared and immutable: callers must not
// modify it, and successive calls at the same version return the same
// slice (a new slice is built per version, so a caller holding version
// v's slice is isolated from later commits).
func (s *Store) Facts() []ast.Atom {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.factsLocked()
}

func (s *Store) factsLocked() []ast.Atom {
	if s.cache == nil {
		keys := make([]string, 0, len(s.facts))
		for k := range s.facts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]ast.Atom, len(keys))
		for i, k := range keys {
			out[i] = s.facts[k]
		}
		s.cache = out
	}
	return s.cache
}

// Compact writes the current fact set to the snapshot file and rotates
// the WAL. It is a no-op error when no SnapshotPath is configured.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked writes snapshot.tmp, renames it over the snapshot and
// makes the rename durable, then writes wal.tmp (header only, base =
// current version), renames it over the WAL and makes that durable too.
// The directory fsync between the renames is load-bearing: without it a
// crash could persist the WAL rotation but not the snapshot rename,
// recovering an old snapshot under a WAL whose records start past it —
// silently losing every commit in between. A crash after the snapshot
// rename but before the rotation merely leaves a snapshot newer than
// the WAL's base, which replay tolerates (see wal.go).
//
// Failures before the rotation's rename abort the compaction and leave
// the store writable: the old WAL still covers every commit. A failure
// making the rotation durable degrades the store instead — once the
// directory points at the rotated WAL, appends land there, and if the
// rotation itself could be rolled back by a crash those appends could
// not be guaranteed to survive.
func (s *Store) compactLocked() error {
	if s.cfg.SnapshotPath == "" {
		return errors.New("live: no SnapshotPath configured")
	}
	if s.roErr != nil {
		return errors.Join(ErrReadOnly, s.roErr)
	}
	prog := &ast.Program{Rules: s.rules.Rules, Queries: s.rules.Queries, Facts: s.factsLocked()}
	tmp := s.cfg.SnapshotPath + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("live: snapshot tmp: %w", err)
	}
	bw := bufio.NewWriter(f)
	err = storage.Write(bw, prog)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("live: writing snapshot: %w", err)
	}
	if err := s.syncFile(f); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, s.cfg.SnapshotPath); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("live: snapshot rename: %w", err)
	}
	if err := s.syncDir(s.cfg.SnapshotPath); err != nil {
		return err
	}

	// Rotate the WAL: fresh header at the snapshot's (now durable) version.
	walTmp := s.cfg.WALPath + ".tmp"
	nf, err := s.fs.OpenFile(walTmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("live: WAL tmp: %w", err)
	}
	if _, err := nf.Write(encodeHeader(s.version)); err != nil {
		nf.Close()
		s.fs.Remove(walTmp)
		return fmt.Errorf("live: writing rotated WAL header: %w", err)
	}
	if err := s.syncFile(nf); err != nil {
		nf.Close()
		s.fs.Remove(walTmp)
		return err
	}
	if err := s.fs.Rename(walTmp, s.cfg.WALPath); err != nil {
		nf.Close()
		s.fs.Remove(walTmp)
		return fmt.Errorf("live: WAL rotate rename: %w", err)
	}
	// The directory now points at the rotated file; the handle must swap
	// with it no matter what happens next, or acked commits would keep
	// appending to the unlinked old WAL.
	s.wal.Close()
	s.wal = nf
	s.walBase = s.version
	s.sinceSnap = 0
	if err := s.syncDir(s.cfg.WALPath); err != nil {
		// Recoverable when transient: the rotated file is already the
		// directory's target and the handle is swapped; a later successful
		// directory fsync (TryRecover) makes the rotation durable.
		return s.degradeLocked(fmt.Errorf("live: WAL rotation: %w", err), true)
	}
	s.log.Info("live: compacted",
		"snapshot", s.cfg.SnapshotPath, "version", s.version, "facts", len(s.facts))
	return nil
}

// appendTailLocked pushes one record onto the bounded stream ring.
func (s *Store) appendTailLocked(r Record) {
	s.tail = append(s.tail, r)
	if n := len(s.tail); n > s.cfg.StreamTailLen {
		// Copy rather than re-slice so the evicted prefix becomes garbage.
		s.tail = append([]Record(nil), s.tail[n-s.cfg.StreamTailLen:]...)
	}
}

// broadcastLocked wakes everyone blocked on Updates.
func (s *Store) broadcastLocked() {
	close(s.changed)
	s.changed = make(chan struct{})
}

// Updates returns a channel that is closed when the store moves past the
// current version (a commit or a reset). Callers re-arm by calling
// Updates again after each wakeup: grab the channel, re-check the
// version, then block — in that order, or a commit landing in between is
// missed until the next one.
func (s *Store) Updates() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.changed
}

// RecordsSince returns the commit records with versions in (from,
// current], in order. ok is false when the in-memory ring no longer
// reaches back to from+1 — the caller (a replication follower) must
// bootstrap from a snapshot instead. A from at or past the current
// version returns (nil, true): caught up.
func (s *Store) RecordsSince(from uint64) ([]Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from >= s.version {
		return nil, true
	}
	if len(s.tail) == 0 || s.tail[0].Version > from+1 {
		return nil, false
	}
	i := 0
	for i < len(s.tail) && s.tail[i].Version <= from {
		i++
	}
	return append([]Record(nil), s.tail[i:]...), true
}

// StreamHorizon reports the lowest version a follower may resume
// streaming from (the largest version already folded out of the ring);
// a follower at an older version must snapshot-bootstrap.
func (s *Store) StreamHorizon() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tail) == 0 {
		return s.version
	}
	return s.tail[0].Version - 1
}

// SnapshotProgram returns the rules plus the fact set of the current
// version as one program, with the version it is consistent at — the
// payload a primary serves to a bootstrapping follower. The fact slice
// is the shared immutable per-version slice; callers must not modify it.
func (s *Store) SnapshotProgram() (*ast.Program, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prog := &ast.Program{Rules: s.rules.Rules, Queries: s.rules.Queries, Facts: s.factsLocked()}
	return prog, s.version
}

// ResetToFacts atomically replaces the whole fact set, jumping the store
// to the given version — how a replication follower installs a snapshot
// fetched from its primary. The reset is a single durable WAL append
// (fsynced before the fact set or version move), so a crash at any point
// leaves either the old state or the new one, never a mixture. version
// must be ahead of the current one. When a snapshot path is configured
// the store compacts immediately afterwards, folding the (fact-set-
// sized) reset record out of the WAL.
func (s *Store) ResetToFacts(facts []ast.Atom, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.roErr != nil {
		return errors.Join(ErrReadOnly, s.roErr)
	}
	if version <= s.version {
		return fmt.Errorf("live: reset to version %d would not advance the store (at %d)", version, s.version)
	}
	for _, a := range facts {
		if !a.IsGround() {
			return fmt.Errorf("live: reset fact %s is not ground", a)
		}
	}
	record := encodeResetRecord(version, facts)
	off, err := s.wal.Seek(0, io.SeekEnd)
	if err != nil {
		return s.degradeLocked(fmt.Errorf("live: WAL seek: %w", err), true)
	}
	if _, err := s.wal.Write(record); err != nil {
		terr := s.wal.Truncate(off)
		return s.degradeLocked(fmt.Errorf("live: WAL reset append: %w", err), terr == nil)
	}
	if err := s.syncFile(s.wal); err != nil {
		terr := s.wal.Truncate(off)
		return s.degradeLocked(err, terr == nil)
	}
	s.facts = make(map[string]ast.Atom, len(facts))
	for _, a := range facts {
		s.facts[a.String()] = a
	}
	s.version = version
	s.cache = nil
	s.sinceSnap++
	// Records before the jump cannot seed a contiguous catch-up chain any
	// more; followers of this store (chained replicas) must re-bootstrap.
	s.tail = nil
	s.broadcastLocked()
	if s.cfg.SnapshotPath != "" {
		if err := s.compactLocked(); err != nil {
			// The reset itself is durable in the WAL; a failed compaction
			// only leaves the oversized record for the next one to fold.
			s.log.Error("live: post-reset compaction failed", "err", err)
		}
	}
	return nil
}

// Close compacts once more when a snapshot path is configured (so a
// clean restart replays nothing) and closes the WAL. A degraded
// (read-only) store skips the final compaction — the WAL already holds
// everything that was acknowledged, and the disk is not to be trusted.
// Further operations fail with ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.cfg.SnapshotPath != "" && s.sinceSnap > 0 && s.roErr == nil {
		err = s.compactLocked()
	}
	s.closed = true
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
