// Package depgraph builds the predicate dependency graph of a program and
// computes its strongly connected components. Edges are labelled with the
// occurrence kind of Definition 4 of the paper: positive, negative, or
// hypothetical. Two predicates are mutually recursive iff they are in the
// same SCC (considering all three edge kinds), which is the equivalence
// relation used by the linearity and stratification analyses.
package depgraph

import (
	"hypodatalog/internal/ast"
)

// EdgeKind is the occurrence kind that induced a dependency edge.
type EdgeKind int

// Edge kinds, per Definition 4.
const (
	Pos EdgeKind = iota // B(x̄) occurs as a plain premise
	Neg                 // ~B(x̄)
	Hyp                 // B(x̄)[add: ...]
)

func (k EdgeKind) String() string {
	switch k {
	case Pos:
		return "positive"
	case Neg:
		return "negative"
	case Hyp:
		return "hypothetical"
	default:
		return "?"
	}
}

// Edge is a labelled dependency from a rule's head predicate to a premise
// predicate.
type Edge struct {
	To   int      // node index of the premise predicate
	Kind EdgeKind // occurrence kind
	Rule int      // index into the program's Rules
}

// Graph is the predicate dependency graph of a program.
type Graph struct {
	Nodes  []ast.PredSig
	NodeOf map[ast.PredSig]int
	Adj    [][]Edge // Adj[i]: edges out of node i (head -> premise)

	// Defined[i] reports whether node i has at least one defining rule.
	Defined []bool
	// RuleNode[r] is the node of rule r's head predicate.
	RuleNode []int
}

// Build constructs the dependency graph of a program. Every predicate
// mentioned anywhere (including in [add: ...] lists and facts) gets a node;
// edges are added only for premise occurrences, matching Definition 4 — a
// hypothetically added atom is data, not a dependency.
func Build(p *ast.Program) *Graph {
	g := &Graph{NodeOf: make(map[ast.PredSig]int)}
	node := func(a ast.Atom) int {
		sig := ast.PredSig{Name: a.Pred, Arity: a.Arity()}
		if i, ok := g.NodeOf[sig]; ok {
			return i
		}
		i := len(g.Nodes)
		g.Nodes = append(g.Nodes, sig)
		g.NodeOf[sig] = i
		g.Adj = append(g.Adj, nil)
		g.Defined = append(g.Defined, false)
		return i
	}
	for _, f := range p.Facts {
		node(f)
	}
	for _, q := range p.Queries {
		node(q.Atom)
		for _, a := range q.Adds {
			node(a)
		}
	}
	g.RuleNode = make([]int, len(p.Rules))
	for ri, r := range p.Rules {
		h := node(r.Head)
		g.Defined[h] = true
		g.RuleNode[ri] = h
		for _, pr := range r.Body {
			var kind EdgeKind
			switch pr.Kind {
			case ast.Plain:
				kind = Pos
			case ast.Negated:
				kind = Neg
			case ast.Hyp, ast.NegHyp:
				kind = Hyp
			}
			to := node(pr.Atom)
			g.Adj[h] = append(g.Adj[h], Edge{To: to, Kind: kind, Rule: ri})
			for _, a := range pr.Adds {
				node(a) // ensure added predicates have nodes; no edge
			}
			for _, a := range pr.Dels {
				node(a) // likewise for deleted predicates
			}
		}
	}
	return g
}

// SCCs returns the strongly connected components of the graph in reverse
// topological order (callees before callers), and compOf mapping each node
// to its component index.
func (g *Graph) SCCs() (comps [][]int, compOf []int) {
	n := len(g.Nodes)
	compOf = make([]int, n)
	for i := range compOf {
		compOf[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0

	// Iterative Tarjan so benchmark-sized graphs cannot overflow anything.
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		callStack := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.ei < len(g.Adj[v]) {
				w := g.Adj[v][f.ei].To
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					compOf[w] = len(comps)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps, compOf
}

// MutuallyRecursive reports whether two predicates are in the same SCC,
// given compOf from SCCs.
func MutuallyRecursive(compOf []int, a, b int) bool {
	return compOf[a] == compOf[b]
}

// Cone returns the affected cone of a set of seed predicates: every
// predicate whose extension can change when the seeds' base extensions
// change — the seeds themselves plus all predicates that reach a seed in
// the head→premise digraph (reverse reachability), over every edge kind.
// Negative and hypothetical occurrences propagate dependence just like
// positive ones: a head whose rule consults a seed through ~B or
// B[add: ...] can flip either way when the seed's extension moves, so
// the cone is exactly the set whose memoised results a base-fact commit
// may invalidate; everything outside it keeps its tables.
//
// Seeds absent from the graph are ignored — a predicate no rule or fact
// mentions cannot influence any derivation. A hypothetically added atom
// contributes no edge (it is data, per Build), which is sound here too:
// the premise B[add: c(x̄)] reads c's base extension only through rules
// for B that mention c, and those contribute B→c edges already.
func (g *Graph) Cone(seeds []ast.PredSig) map[ast.PredSig]bool {
	cone := make(map[ast.PredSig]bool, len(seeds))
	// Reverse adjacency: radj[to] = nodes with an edge into to.
	radj := make([][]int, len(g.Nodes))
	for from, edges := range g.Adj {
		for _, e := range edges {
			radj[e.To] = append(radj[e.To], from)
		}
	}
	marked := make([]bool, len(g.Nodes))
	var queue []int
	for _, sig := range seeds {
		cone[sig] = true // seeds are affected even when unmentioned
		if n, ok := g.NodeOf[sig]; ok && !marked[n] {
			marked[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		cone[g.Nodes[n]] = true
		for _, m := range radj[n] {
			if !marked[m] {
				marked[m] = true
				queue = append(queue, m)
			}
		}
	}
	return cone
}

// Extend adds synthetic rules — ones not part of the graph's source
// program — to an already-built graph. The demand-driven mode uses it so
// that commit-cone computation sees the installed magic rules' edges: a
// magic or supplementary predicate depends on the same base facts its
// source rules consult, so a commit that can move those facts puts the
// magic predicates inside the cone and their demand caches get
// invalidated. Extension rules have no index in the owning program, so
// RuleNode is left alone and their edges carry Rule: -1 (Cone never
// reads Edge.Rule).
func (g *Graph) Extend(rules []ast.Rule) {
	node := func(a ast.Atom) int {
		sig := ast.PredSig{Name: a.Pred, Arity: a.Arity()}
		if i, ok := g.NodeOf[sig]; ok {
			return i
		}
		i := len(g.Nodes)
		g.Nodes = append(g.Nodes, sig)
		g.NodeOf[sig] = i
		g.Adj = append(g.Adj, nil)
		g.Defined = append(g.Defined, false)
		return i
	}
	for _, r := range rules {
		h := node(r.Head)
		g.Defined[h] = true
		for _, pr := range r.Body {
			var kind EdgeKind
			switch pr.Kind {
			case ast.Plain:
				kind = Pos
			case ast.Negated:
				kind = Neg
			case ast.Hyp, ast.NegHyp:
				kind = Hyp
			}
			to := node(pr.Atom)
			g.Adj[h] = append(g.Adj[h], Edge{To: to, Kind: kind, Rule: -1})
			for _, a := range pr.Adds {
				node(a)
			}
			for _, a := range pr.Dels {
				node(a)
			}
		}
	}
}
