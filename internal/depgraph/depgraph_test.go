package depgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(p)
}

func TestEdgeKinds(t *testing.T) {
	g := build(t, "h(X) :- p(X), not q(X), r(X)[add: w(X)].")
	h := g.NodeOf[ast.PredSig{Name: "h", Arity: 1}]
	if len(g.Adj[h]) != 3 {
		t.Fatalf("edges = %d", len(g.Adj[h]))
	}
	kinds := map[string]EdgeKind{}
	for _, e := range g.Adj[h] {
		kinds[g.Nodes[e.To].Name] = e.Kind
	}
	if kinds["p"] != Pos || kinds["q"] != Neg || kinds["r"] != Hyp {
		t.Errorf("kinds = %v", kinds)
	}
	// w appears only as an added atom: node exists, no edge to it.
	if _, ok := g.NodeOf[ast.PredSig{Name: "w", Arity: 1}]; !ok {
		t.Error("added predicate has no node")
	}
}

func TestDefinedFlags(t *testing.T) {
	g := build(t, "h :- p.\np :- e.\n")
	for name, want := range map[string]bool{"h": true, "p": true, "e": false} {
		n := g.NodeOf[ast.PredSig{Name: name, Arity: 0}]
		if g.Defined[n] != want {
			t.Errorf("Defined[%s] = %v", name, g.Defined[n])
		}
	}
}

func TestSCCsMutualRecursion(t *testing.T) {
	g := build(t, `
		even :- odd[add: c].
		odd :- even[add: c].
		even :- not sel.
		sel :- base.
	`)
	comps, compOf := g.SCCs()
	even := g.NodeOf[ast.PredSig{Name: "even"}]
	odd := g.NodeOf[ast.PredSig{Name: "odd"}]
	sel := g.NodeOf[ast.PredSig{Name: "sel"}]
	if compOf[even] != compOf[odd] {
		t.Error("even and odd not mutually recursive")
	}
	if compOf[even] == compOf[sel] {
		t.Error("sel wrongly grouped with even")
	}
	if !MutuallyRecursive(compOf, even, odd) {
		t.Error("MutuallyRecursive false")
	}
	// Reverse topological order: sel's component before even/odd's.
	if compOf[sel] > compOf[even] {
		t.Errorf("comp order: sel=%d even=%d (callees must come first)", compOf[sel], compOf[even])
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != len(g.Nodes) {
		t.Errorf("components cover %d of %d nodes", total, len(g.Nodes))
	}
}

func TestSCCChain(t *testing.T) {
	g := build(t, "a :- b.\nb :- c.\nc :- d.\n")
	_, compOf := g.SCCs()
	a := g.NodeOf[ast.PredSig{Name: "a"}]
	d := g.NodeOf[ast.PredSig{Name: "d"}]
	if compOf[a] == compOf[d] {
		t.Error("chain collapsed into one SCC")
	}
	if compOf[d] > compOf[a] {
		t.Error("callee component after caller")
	}
}

// TestSCCPartitionProperty: on random graphs, SCCs partition the nodes and
// the reverse-topological property holds for every edge.
func TestSCCPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		prog := &ast.Program{}
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.2 {
					prog.Rules = append(prog.Rules, ast.Rule{
						Head: ast.NewAtom(names[i]),
						Body: []ast.Premise{ast.PlainP(ast.NewAtom(names[j]))},
					})
				}
			}
		}
		g := Build(prog)
		comps, compOf := g.SCCs()
		seen := map[int]bool{}
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		if len(seen) != len(g.Nodes) {
			return false
		}
		for from, edges := range g.Adj {
			for _, e := range edges {
				// Callee's component index must be <= caller's.
				if compOf[e.To] > compOf[from] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCone(t *testing.T) {
	// Chain with a fork: top and mid depend on e; aside depends only on f;
	// neg consults e through negation, hy through a hypothetical premise.
	g := build(t, `
		top(X) :- mid(X).
		mid(X) :- e(X).
		aside(X) :- f(X).
		neg(X) :- g(X), not e(X).
		hy(X) :- e(X)[add: f(X)].
	`)
	cone := g.Cone([]ast.PredSig{{Name: "e", Arity: 1}})
	for _, name := range []string{"e", "mid", "top", "neg", "hy"} {
		if !cone[ast.PredSig{Name: name, Arity: 1}] {
			t.Errorf("%s missing from cone of e", name)
		}
	}
	for _, name := range []string{"aside", "f", "g"} {
		if cone[ast.PredSig{Name: name, Arity: 1}] {
			t.Errorf("%s wrongly in cone of e", name)
		}
	}
}

func TestConeUnknownSeed(t *testing.T) {
	g := build(t, "h :- p.")
	cone := g.Cone([]ast.PredSig{{Name: "zzz", Arity: 3}})
	if len(cone) != 1 || !cone[ast.PredSig{Name: "zzz", Arity: 3}] {
		t.Errorf("cone of unmentioned seed = %v", cone)
	}
}

// TestConeRecursive: in a recursive program the whole SCC of a dependent
// predicate joins the cone.
func TestConeRecursive(t *testing.T) {
	g := build(t, `
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
		iso(X) :- lonely(X).
	`)
	cone := g.Cone([]ast.PredSig{{Name: "edge", Arity: 2}})
	if !cone[ast.PredSig{Name: "reach", Arity: 2}] {
		t.Error("reach missing from cone of edge")
	}
	if cone[ast.PredSig{Name: "iso", Arity: 1}] || cone[ast.PredSig{Name: "lonely", Arity: 1}] {
		t.Error("unrelated predicates in cone")
	}
}
