package topdown

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/workload"
)

// negFreeFuzz builds fuzz options whose generated programs we then strip
// of negations, leaving a monotone (hypothetical Horn) program.
func stripNegation(p *ast.Program) {
	for ri := range p.Rules {
		var body []ast.Premise
		for _, pr := range p.Rules[ri].Body {
			if pr.Kind == ast.Negated || pr.Kind == ast.NegHyp {
				continue
			}
			body = append(body, pr)
		}
		p.Rules[ri].Body = body
	}
}

// TestMonotonicityProperty: for negation-free programs, hypothetically
// adding facts never removes derivable atoms (section 3.1 notes the base
// system is monotonic — negation is what breaks it).
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := workload.RandomStratifiedProgram(rng, workload.DefaultFuzz())
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		stripNegation(prog)
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			return false
		}
		dom := ref.Domain(cp)
		if len(dom) == 0 {
			return true
		}
		e := New(cp, dom, Options{MaxGoals: 2_000_000})

		// Pick a random unary atom to add hypothetically.
		poolPred, ok := cp.Syms.LookupPred("pool", 1)
		if !ok {
			return true
		}
		added := e.Interner().ID(poolPred, []symbols.Const{dom[rng.Intn(len(dom))]})
		st := e.EmptyState()
		ext := st.Add(added)

		// Every unary atom derivable in st stays derivable in ext.
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 1 {
				continue
			}
			for _, c := range dom {
				id := e.Interner().ID(p, []symbols.Const{c})
				before, err := e.Ask(id, st)
				if err != nil {
					return true // budget blowup: skip, soundness untested here
				}
				if !before {
					continue
				}
				after, err := e.Ask(id, ext)
				if err != nil {
					return true
				}
				if !after {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismProperty: asking the same goal twice (cold and warm
// table) gives the same answer, and so does a fresh engine.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := workload.RandomStratifiedProgram(rng, workload.DefaultFuzz())
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			return false
		}
		dom := ref.Domain(cp)
		e1 := New(cp, dom, Options{MaxGoals: 2_000_000})
		e2 := New(cp, dom, Options{MaxGoals: 2_000_000})
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 1 {
				continue
			}
			for _, c := range dom {
				id1 := e1.Interner().ID(p, []symbols.Const{c})
				a, err1 := e1.Ask(id1, e1.EmptyState())
				b, err2 := e1.Ask(id1, e1.EmptyState()) // warm
				id2 := e2.Interner().ID(p, []symbols.Const{c})
				cAns, err3 := e2.Ask(id2, e2.EmptyState())
				if err1 != nil || err2 != nil || err3 != nil {
					return true
				}
				if a != b || a != cAns {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStateOrderIrrelevance: the answer under a delta does not depend on
// the order the delta was built in.
func TestStateOrderIrrelevance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := workload.RandomStratifiedProgram(rng, workload.DefaultFuzz())
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			return false
		}
		dom := ref.Domain(cp)
		if len(dom) < 2 {
			return true
		}
		e := New(cp, dom, Options{MaxGoals: 2_000_000})
		poolPred, ok := cp.Syms.LookupPred("pool", 1)
		if !ok {
			return true
		}
		a := e.Interner().ID(poolPred, []symbols.Const{dom[0]})
		b := e.Interner().ID(poolPred, []symbols.Const{dom[1]})
		st1 := e.EmptyState().Add(a).Add(b)
		st2 := e.EmptyState().Add(b).Add(a)
		if st1.Key() != st2.Key() {
			return false
		}
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 1 {
				continue
			}
			id := e.Interner().ID(p, []symbols.Const{dom[0]})
			r1, err1 := e.Ask(id, st1)
			r2, err2 := e.Ask(id, st2)
			if err1 != nil || err2 != nil {
				return true
			}
			if r1 != r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
