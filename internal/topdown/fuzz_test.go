package topdown

import (
	"math/rand"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/workload"
)

// TestFuzzAgainstReference generates random stratified programs with
// hypothetical premises and negation and checks that the engine — with and
// without tabling, with and without the planner — agrees with the naive
// Definition 3 interpreter on every ground atom over the domain.
//
// This is the principal soundness test for the clean-failure memoisation:
// a bug in the minimum-touched-frame bookkeeping shows up here as a tabled
// engine disagreeing with the untabled one or with the reference.
func TestFuzzAgainstReference(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 25
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src := workload.RandomStratifiedProgram(rng, workload.DefaultFuzz())
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
		}
		if errs := ast.Validate(prog); len(errs) > 0 {
			t.Fatalf("seed %d: generated program invalid: %v\n%s", seed, errs[0], src)
		}
		if err := strat.CheckNegation(prog); err != nil {
			t.Fatalf("seed %d: generated program has recursion through negation: %v\n%s", seed, err, src)
		}
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		ip := ref.New(cp)
		dom := ip.Dom()
		engines := map[string]*Engine{
			"tabled":    New(cp, dom, Options{MaxGoals: 5_000_000}),
			"untabled":  New(cp, dom, Options{NoTabling: true, MaxGoals: 5_000_000}),
			"noplanner": New(cp, dom, Options{NoPlanner: true, MaxGoals: 5_000_000}),
		}
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			arity := cp.Syms.PredArity(p)
			args := make([]symbols.Const, arity)
			var rec func(i int)
			rec = func(i int) {
				if t.Failed() {
					return
				}
				if i == arity {
					want := ip.Holds(ip.Interner().ID(p, args), ip.EmptyState())
					for name, e := range engines {
						got, err := e.Ask(e.Interner().ID(p, args), e.EmptyState())
						if err != nil {
							t.Fatalf("seed %d: engine %s: %v\n%s", seed, name, err, src)
						}
						if got != want {
							t.Errorf("seed %d: engine %s disagrees on %s: got %v want %v\nprogram:\n%s",
								seed, name, e.Interner().Format(e.Interner().ID(p, args)), got, want, src)
						}
					}
					return
				}
				for _, c := range dom {
					args[i] = c
					rec(i + 1)
				}
			}
			rec(0)
		}
	}
}

// TestFuzzHypotheticalStates extends the fuzz to non-empty initial deltas:
// proving under hypothetically extended states must agree too.
func TestFuzzHypotheticalStates(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 10
	}
	for seed := 1000; seed < 1000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src := workload.RandomStratifiedProgram(rng, workload.DefaultFuzz())
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ip := ref.New(cp)
		dom := ip.Dom()
		e := New(cp, dom, Options{MaxGoals: 5_000_000})

		poolPred, ok := cp.Syms.LookupPred("pool", 1)
		if !ok {
			continue
		}
		// Extend the state with one or two pool atoms.
		stE := e.EmptyState()
		stR := ip.EmptyState()
		for i := 0; i < 1+rng.Intn(2); i++ {
			c := dom[rng.Intn(len(dom))]
			stE = stE.Add(e.Interner().ID(poolPred, []symbols.Const{c}))
			stR = stR.Add(ip.Interner().ID(poolPred, []symbols.Const{c}))
		}
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 1 {
				continue
			}
			for _, c := range dom {
				args := []symbols.Const{c}
				want := ip.Holds(ip.Interner().ID(p, args), stR)
				got, err := e.Ask(e.Interner().ID(p, args), stE)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if got != want {
					t.Errorf("seed %d: state %v: %s: got %v want %v\n%s",
						seed, stE.Delta.IDs(), e.Interner().Format(e.Interner().ID(p, args)), got, want, src)
				}
			}
		}
	}
}
