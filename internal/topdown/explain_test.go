package topdown

import (
	"strings"
	"testing"

	"hypodatalog/internal/symbols"
	"hypodatalog/internal/workload"
)

// explainGoal asks and explains a 0-ary or unary ground goal.
func explainGoal(t *testing.T, e *Engine, pred string, arity int, arg string) *Proof {
	t.Helper()
	syms := e.prog.Syms
	p, ok := syms.LookupPred(pred, arity)
	if !ok {
		t.Fatalf("no predicate %s/%d", pred, arity)
	}
	var args []symbols.Const
	if arity == 1 {
		c, ok := syms.LookupConst(arg)
		if !ok {
			t.Fatalf("no constant %s", arg)
		}
		args = []symbols.Const{c}
	}
	proof, err := e.Explain(e.Interner().ID(p, args), e.EmptyState())
	if err != nil {
		t.Fatal(err)
	}
	return proof
}

func TestExplainFact(t *testing.T) {
	e, _ := newEngine(t, "p(a).\n", Options{})
	proof := explainGoal(t, e, "p", 1, "a")
	if proof == nil || proof.Kind != ProofFact {
		t.Fatalf("proof = %v", proof)
	}
	if !strings.Contains(proof.String(), "[fact]") {
		t.Errorf("rendering: %s", proof.String())
	}
}

func TestExplainRuleChain(t *testing.T) {
	e, _ := newEngine(t, `
		edge(a, b). edge(b, c).
		tc(X, Y) :- edge(X, Y).
		tc(X, Y) :- tc(X, Z), edge(Z, Y).
	`, Options{})
	p, okP := e.prog.Syms.LookupPred("tc", 2)
	if !okP {
		t.Fatal("no tc/2")
	}
	a, _ := e.prog.Syms.LookupConst("a")
	c, _ := e.prog.Syms.LookupConst("c")
	proof, err := e.Explain(e.Interner().ID(p, []symbols.Const{a, c}), e.EmptyState())
	if err != nil {
		t.Fatal(err)
	}
	if proof == nil || proof.Kind != ProofRule {
		t.Fatalf("proof = %v", proof)
	}
	out := proof.String()
	for _, want := range []string{"tc(a, c)", "edge(b, c)", "tc(a, b)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if proof.Size() < 4 {
		t.Errorf("proof too small: %d nodes\n%s", proof.Size(), out)
	}
}

func TestExplainHypothetical(t *testing.T) {
	e, _ := newEngine(t, `
		p(a).
		q(X) :- r(X)[add: s(X)].
		r(X) :- p(X), s(X).
	`, Options{})
	proof := explainGoal(t, e, "q", 1, "a")
	if proof == nil {
		t.Fatal("no proof")
	}
	out := proof.String()
	if !strings.Contains(out, "under add: s(a)") {
		t.Errorf("no hypothesis marker:\n%s", out)
	}
	// The added fact is usable inside the sub-proof.
	if !strings.Contains(out, "s(a)  [fact]") {
		t.Errorf("added fact not used:\n%s", out)
	}
}

func TestExplainNegation(t *testing.T) {
	e, _ := newEngine(t, `
		d(a).
		ok(X) :- d(X), not bad(X).
	`, Options{})
	proof := explainGoal(t, e, "ok", 1, "a")
	if proof == nil {
		t.Fatal("no proof")
	}
	if !strings.Contains(proof.String(), "no instance provable") {
		t.Errorf("no negation node:\n%s", proof.String())
	}
}

func TestExplainUnprovableIsNil(t *testing.T) {
	e, _ := newEngine(t, "p(a).\n", Options{})
	syms := e.prog.Syms
	p, _ := syms.LookupPred("p", 1)
	b := syms.Const("b")
	proof, err := e.Explain(e.Interner().ID(p, []symbols.Const{b}), e.EmptyState())
	if err != nil {
		t.Fatal(err)
	}
	if proof != nil {
		t.Fatalf("proof of unprovable goal: %v", proof)
	}
}

// TestExplainAgreesWithAsk: on the example workloads, Explain returns a
// tree iff Ask returns true, and the tree's root goal is the asked atom.
func TestExplainAgreesWithAsk(t *testing.T) {
	sources := []string{
		workload.ParityProgram(3),
		workload.ChainProgram(4),
		workload.HamiltonianProgram(workload.Digraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}),
	}
	for _, src := range sources {
		e, cp := newEngine(t, src, Options{})
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 0 {
				continue
			}
			id := e.Interner().ID(p, nil)
			ok, err := e.Ask(id, e.EmptyState())
			if err != nil {
				t.Fatal(err)
			}
			proof, err := e.Explain(id, e.EmptyState())
			if err != nil {
				t.Fatal(err)
			}
			if (proof != nil) != ok {
				t.Errorf("%s: ask=%v explain=%v", cp.Syms.PredName(p), ok, proof != nil)
			}
			if proof != nil && !strings.HasPrefix(proof.Goal, cp.Syms.PredName(p)) {
				t.Errorf("root goal %q for %s", proof.Goal, cp.Syms.PredName(p))
			}
		}
	}
}

func TestExplainHamiltonianWitness(t *testing.T) {
	g := workload.Digraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}
	e, _ := newEngine(t, workload.HamiltonianProgram(g), Options{})
	proof := explainGoal(t, e, "yes", 0, "")
	if proof == nil {
		t.Fatal("no proof of yes")
	}
	out := proof.String()
	// The witness path v0 -> v1 -> v2 must appear as pnode additions.
	for _, want := range []string{"pnode(v0)", "pnode(v1)", "pnode(v2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in witness:\n%s", want, out)
		}
	}
}
