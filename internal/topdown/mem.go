package topdown

// MemTracker accumulates an approximate heap footprint for one evaluator
// — a uniform engine or a whole cascade sharing one fact substrate — and
// enforces an optional per-query growth ceiling.
//
// The footprint has two parts: explicit charges (memo-table entries,
// cached Δ materialisations) added and removed with Add, and polled
// sources (the interner and base database report their own running
// totals). Begin snapshots the footprint at query start; Over reports
// whether the query has since grown it past the configured maximum, so a
// warm pooled engine carrying megabytes of useful memo state is never
// penalised for work done by earlier queries.
//
// All methods are nil-safe: a nil tracker never charges and never trips,
// so call sites need no branching. A MemTracker is confined to one
// evaluator and, like the engines themselves, is not safe for concurrent
// use.
type MemTracker struct {
	max  int64
	used int64
	base int64
	srcs []func() int64
}

// NewMemTracker builds a tracker with the given growth ceiling in bytes;
// max <= 0 means account but never trip.
func NewMemTracker(max int64) *MemTracker {
	return &MemTracker{max: max}
}

// AddSource registers a footprint source polled by Current (e.g. the
// interner's and base database's byte counters).
func (t *MemTracker) AddSource(f func() int64) {
	if t == nil {
		return
	}
	t.srcs = append(t.srcs, f)
}

// Add charges (or, negative, releases) n bytes of explicit footprint.
func (t *MemTracker) Add(n int64) {
	if t == nil {
		return
	}
	t.used += n
}

// Current returns the total tracked footprint: explicit charges plus
// every registered source.
func (t *MemTracker) Current() int64 {
	if t == nil {
		return 0
	}
	n := t.used
	for _, f := range t.srcs {
		n += f()
	}
	return n
}

// Begin snapshots the current footprint as the new query's baseline.
func (t *MemTracker) Begin() {
	if t == nil {
		return
	}
	t.base = t.Current()
}

// Grown returns the footprint growth since the last Begin.
func (t *MemTracker) Grown() int64 {
	if t == nil {
		return 0
	}
	return t.Current() - t.base
}

// Max returns the configured ceiling (0 = unlimited).
func (t *MemTracker) Max() int64 {
	if t == nil {
		return 0
	}
	return t.max
}

// Over reports whether the query's growth has exceeded the ceiling.
func (t *MemTracker) Over() bool {
	return t != nil && t.max > 0 && t.Grown() > t.max
}
