package topdown

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
)

// compileSrc parses, validates and compiles a program.
func compileSrc(t *testing.T, src string) *ast.CProgram {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ast.RewriteNegHyp(prog)
	if errs := ast.Validate(prog); len(errs) > 0 {
		t.Fatalf("validate: %v", errs[0])
	}
	if err := strat.CheckNegation(prog); err != nil {
		t.Fatalf("stratify: %v", err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return cp
}

// newEngine builds a topdown engine with the paper's dom(R, DB).
func newEngine(t *testing.T, src string, opts Options) (*Engine, *ast.CProgram) {
	t.Helper()
	cp := compileSrc(t, src)
	return New(cp, ref.Domain(cp), opts), cp
}

// ask evaluates a premise given in surface syntax, e.g.
// "grad(tony)[add: take(tony, cs452)]" or "not yes".
func ask(t *testing.T, e *Engine, cp *ast.CProgram, query string) bool {
	t.Helper()
	pr, err := parser.ParsePremise(query)
	if err != nil {
		t.Fatalf("parse query %q: %v", query, err)
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, cp.Syms, vars, &names)
	if err != nil {
		t.Fatalf("compile query %q: %v", query, err)
	}
	if len(names) > 0 {
		t.Fatalf("query %q is not ground", query)
	}
	ok, err := e.AskPremise(cpr, e.EmptyState())
	if err != nil {
		t.Fatalf("ask %q: %v", query, err)
	}
	return ok
}

func expect(t *testing.T, e *Engine, cp *ast.CProgram, query string, want bool) {
	t.Helper()
	if got := ask(t, e, cp, query); got != want {
		t.Errorf("query %s = %v, want %v", query, got, want)
	}
}

const universitySrc = `
	% Examples 1-3 of the paper: university rules.
	take(tony, his101).
	take(tony, eng201).
	take(mary, his101).
	grad(S) :- take(S, his101), take(S, eng201).

	% Example 3: two-discipline graduation via hypothetical premises.
	take2(sue, m1). take2(sue, m2). take2(sue, p1).
	grad2(S, math) :- take2(S, m1), take2(S, m2), take2(S, m3).
	grad2(S, phys) :- take2(S, p1), take2(S, p2).
	within1(S, D) :- grad2(S, D)[add: take2(S, C)].
	grad2(S, mathphys) :- within1(S, math), within1(S, phys).
`

func TestExample1HypotheticalQuery(t *testing.T) {
	e, cp := newEngine(t, universitySrc, Options{})
	// Tony already graduates.
	expect(t, e, cp, "grad(tony)", true)
	// Example 1: "if Mary took eng201, would she be eligible?"
	expect(t, e, cp, "grad(mary)", false)
	expect(t, e, cp, "grad(mary)[add: take(mary, eng201)]", true)
	expect(t, e, cp, "grad(mary)[add: take(mary, his101)]", false)
}

func TestExample3WithinOne(t *testing.T) {
	e, cp := newEngine(t, universitySrc, Options{})
	// Sue is one course short of math (needs m3) and one short of physics
	// (needs p2), so she qualifies for the joint degree.
	expect(t, e, cp, "grad2(sue, math)", false)
	expect(t, e, cp, "within1(sue, math)", true)
	expect(t, e, cp, "within1(sue, phys)", true)
	expect(t, e, cp, "grad2(sue, mathphys)", true)
	// Tony has taken nothing in take2, so he is not within one course.
	expect(t, e, cp, "within1(tony, math)", false)
}

// chainSrc builds Example 4: A_i <- A_{i+1}[add: B_i], A_{n+1} <- D, where
// D <- B_1, ..., B_n (so A_1 holds iff all hypotheses accumulate).
func chainSrc(n int) string {
	src := ""
	for i := 1; i <= n; i++ {
		src += fmt.Sprintf("a%d :- a%d[add: b%d].\n", i, i+1, i)
	}
	src += fmt.Sprintf("a%d :- d.\n", n+1)
	src += "d :- "
	for i := 1; i <= n; i++ {
		if i > 1 {
			src += ", "
		}
		src += fmt.Sprintf("b%d", i)
	}
	src += ".\n"
	return src
}

func TestExample4HypChain(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		e, cp := newEngine(t, chainSrc(n), Options{})
		// A_1 requires the whole chain of additions B_1..B_n.
		expect(t, e, cp, "a1", true)
		// A_2 misses B_1, so D cannot be proven.
		if n >= 1 {
			expect(t, e, cp, "a2", false)
		}
	}
}

const orderLoopSrc = `
	% Example 5: iterate over a stored linear order a1..a4, adding b(x).
	first(e1). next(e1, e2). next(e2, e3). next(e3, e4). last(e4).
	a :- first(X), ap(X)[add: b(X)].
	ap(X) :- next(X, Y), ap(Y)[add: b(Y)].
	ap(X) :- last(X), d.
	d :- b(e1), b(e2), b(e3), b(e4).
`

func TestExample5OrderLoop(t *testing.T) {
	e, cp := newEngine(t, orderLoopSrc, Options{})
	expect(t, e, cp, "a", true)
	// ap(e2) only accumulates b(e2)..b(e4), so d fails.
	expect(t, e, cp, "ap(e2)[add: b(e2)]", false)
}

// paritySrc is Example 6 over a unary relation item/1 with n elements.
func paritySrc(n int) string {
	src := `
		even :- selectx(X), odd[add: copied(X)].
		odd :- selectx(X), even[add: copied(X)].
		even :- not selectx(X).
		selectx(X) :- item(X), not copied(X).
	`
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("item(x%d).\n", i)
	}
	return src
}

func TestExample6Parity(t *testing.T) {
	for n := 0; n <= 7; n++ {
		e, cp := newEngine(t, paritySrc(n), Options{})
		wantEven := n%2 == 0
		if got := ask(t, e, cp, "even"); got != wantEven {
			t.Errorf("n=%d: even = %v, want %v", n, got, wantEven)
		}
		if n > 0 {
			if got := ask(t, e, cp, "odd"); got != !wantEven {
				t.Errorf("n=%d: odd = %v, want %v", n, got, !wantEven)
			}
		}
	}
}

// hamSrc is Example 7 (plus Example 8's NO rule) for a given digraph.
func hamSrc(nodes []string, edges [][2]string) string {
	src := `
		yes :- node(X), path(X)[add: pnode(X)].
		path(X) :- selecty(Y), edge(X, Y), path(Y)[add: pnode(Y)].
		path(X) :- not selecty(Y).
		selecty(Y) :- node(Y), not pnode(Y).
		no :- not yes.
	`
	for _, n := range nodes {
		src += fmt.Sprintf("node(%s).\n", n)
	}
	for _, e := range edges {
		src += fmt.Sprintf("edge(%s, %s).\n", e[0], e[1])
	}
	return src
}

func TestExample7Hamiltonian(t *testing.T) {
	cases := []struct {
		name  string
		nodes []string
		edges [][2]string
		want  bool
	}{
		{"single node", []string{"n1"}, nil, true},
		{"two connected", []string{"n1", "n2"}, [][2]string{{"n1", "n2"}}, true},
		{"two disconnected", []string{"n1", "n2"}, nil, false},
		{"path of 4", []string{"n1", "n2", "n3", "n4"},
			[][2]string{{"n1", "n2"}, {"n2", "n3"}, {"n3", "n4"}}, true},
		{"star has no ham path", []string{"c", "l1", "l2", "l3"},
			[][2]string{{"c", "l1"}, {"c", "l2"}, {"c", "l3"}}, false},
		{"cycle", []string{"n1", "n2", "n3"},
			[][2]string{{"n1", "n2"}, {"n2", "n3"}, {"n3", "n1"}}, true},
		{"needs the right start", []string{"n1", "n2", "n3"},
			[][2]string{{"n2", "n1"}, {"n2", "n3"}, {"n3", "n1"}}, true},
		{"wrong direction", []string{"n1", "n2", "n3"},
			[][2]string{{"n1", "n2"}, {"n1", "n3"}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, cp := newEngine(t, hamSrc(tc.nodes, tc.edges), Options{})
			expect(t, e, cp, "yes", tc.want)
			// Example 8: NO <- ~YES flips the answer.
			expect(t, e, cp, "no", !tc.want)
		})
	}
}

func TestStatsAndTable(t *testing.T) {
	e, cp := newEngine(t, paritySrc(4), Options{})
	expect(t, e, cp, "even", true)
	s := e.Stats()
	if s.Goals == 0 || s.MaxDepth == 0 {
		t.Errorf("stats not collected: %+v", s)
	}
	// Second ask should hit the table.
	e.ResetStats()
	expect(t, e, cp, "even", true)
	if e.Stats().TableHits == 0 {
		t.Errorf("expected table hits on repeat query, got %+v", e.Stats())
	}
	e.ResetTable()
	if e.Stats().TableSize != 0 {
		t.Errorf("table not cleared")
	}
}

func TestNoTablingMatches(t *testing.T) {
	for n := 0; n <= 4; n++ {
		src := paritySrc(n)
		e1, cp1 := newEngine(t, src, Options{})
		e2, cp2 := newEngine(t, src, Options{NoTabling: true})
		if ask(t, e1, cp1, "even") != ask(t, e2, cp2, "even") {
			t.Errorf("n=%d: tabling changes the answer", n)
		}
	}
}

func TestNoPlannerMatches(t *testing.T) {
	// Bodies ordered so left-to-right evaluation still terminates: the
	// planner-free engine enumerates unbound variables over the domain.
	src := hamSrc([]string{"n1", "n2", "n3"},
		[][2]string{{"n1", "n2"}, {"n2", "n3"}})
	e1, cp1 := newEngine(t, src, Options{})
	e2, cp2 := newEngine(t, src, Options{NoPlanner: true})
	if ask(t, e1, cp1, "yes") != ask(t, e2, cp2, "yes") {
		t.Error("planner changes the answer")
	}
}

func TestGoalBudget(t *testing.T) {
	e, cp := newEngine(t, paritySrc(6), Options{MaxGoals: 5})
	pr, err := parser.ParsePremise("even")
	if err != nil {
		t.Fatal(err)
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, cp.Syms, vars, &names)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.AskPremise(cpr, e.EmptyState())
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T, want *AbortError", err)
	}
	if ae.Limit != 5 {
		t.Errorf("AbortError.Limit = %d, want 5", ae.Limit)
	}
	// The budget is exact: exactly MaxGoals expansions ran.
	if ae.Stats.Goals != 5 || e.Stats().Goals != 5 {
		t.Errorf("goals = %d (snapshot %d), want exactly 5", e.Stats().Goals, ae.Stats.Goals)
	}
}

// TestContextCancel checks that a canceled context aborts evaluation with
// ErrCanceled and a stats snapshot, and that a pre-canceled context never
// starts proving.
func TestContextCancel(t *testing.T) {
	// "even" over 9 items is false, so the untabled search is exhaustive
	// (factorial): plenty of goal expansions for the poll to notice.
	e, cp := newEngine(t, paritySrc(9), Options{NoTabling: true})
	pr, err := parser.ParsePremise("even")
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := ast.CompilePremise(pr, cp.Syms, map[string]int{}, new([]string))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.AskPremiseCtx(ctx, cpr, e.EmptyState())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: err = %v, want ErrCanceled", err)
	}
	if g := e.Stats().Goals; g != 0 {
		t.Errorf("pre-canceled context still expanded %d goals", g)
	}

	// Untabled parity over 8 items runs far longer than 5ms, so the
	// cancellation lands mid-evaluation.
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err = e.AskPremiseCtx(ctx, cpr, e.EmptyState())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-flight: err = %v, want ErrCanceled", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Stats.Goals == 0 {
		t.Errorf("abort should carry a non-zero stats snapshot, got %+v", err)
	}
}

// TestContextDeadline checks ErrDeadline on an expired deadline.
func TestContextDeadline(t *testing.T) {
	e, cp := newEngine(t, paritySrc(9), Options{NoTabling: true})
	pr, err := parser.ParsePremise("even")
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := ast.CompilePremise(pr, cp.Syms, map[string]int{}, new([]string))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.AskPremiseCtx(ctx, cpr, e.EmptyState())
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("abort took %v, want well under 2s", d)
	}
}

// TestAgainstReference differentially tests the engine against the naive
// Definition 3 interpreter on all the example programs and every ground
// atom over their domains.
func TestAgainstReference(t *testing.T) {
	// The full university program (Example 3) is excluded: its grad2/within1
	// hypothetical recursion makes the naive fixpoint reference materialise
	// an exponential state space. A trimmed variant with the same structure
	// but a two-constant course pool is used instead.
	sources := map[string]string{
		"university-small": `
			t(s1, m1).
			g(S, m) :- t(S, m1), t(S, m2).
			w(S) :- g(S, m)[add: t(S, C)].
		`,
		"chain":     chainSrc(3),
		"orderloop": orderLoopSrc,
		"parity2":   paritySrc(2),
		"parity3":   paritySrc(3),
		"ham": hamSrc([]string{"n1", "n2", "n3"},
			[][2]string{{"n1", "n2"}, {"n2", "n3"}, {"n3", "n1"}}),
		"negchain": `
			p(a). q(b).
			r(X) :- p(X), not q(X).
			s(X) :- r(X)[add: p(X)].
			w(X) :- not r(X), q(X).
		`,
		"mutual": `
			e(a, b). e(b, c).
			even(X) :- start(X).
			even(X) :- e(Y, X), odd(Y).
			odd(X) :- e(Y, X), even(Y).
			start(a).
		`,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			cp := compileSrc(t, src)
			ip := ref.New(cp)
			e := New(cp, ref.Domain(cp), Options{})
			checkAllAtoms(t, cp, ip, e)
		})
	}
}

// checkAllAtoms compares engine and reference on every ground atom
// constructible from the program's predicates and domain.
func checkAllAtoms(t *testing.T, cp *ast.CProgram, ip *ref.Interp, e *Engine) {
	t.Helper()
	dom := ip.Dom()
	st := e.EmptyState()
	rst := ip.EmptyState()
	for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
		arity := cp.Syms.PredArity(p)
		args := make([]symbols.Const, arity)
		var rec func(i int)
		rec = func(i int) {
			if i == arity {
				idE := e.Interner().ID(p, args)
				idR := ip.Interner().ID(p, args)
				got, err := e.Ask(idE, st)
				if err != nil {
					t.Fatalf("ask: %v", err)
				}
				want := ip.Holds(idR, rst)
				if got != want {
					t.Errorf("atom %s: engine=%v ref=%v",
						e.Interner().Format(idE), got, want)
				}
				return
			}
			for _, c := range dom {
				args[i] = c
				rec(i + 1)
			}
		}
		rec(0)
	}
}
