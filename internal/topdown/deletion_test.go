package topdown

import (
	"errors"
	"math/rand"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/workload"
)

func TestDeletionBasics(t *testing.T) {
	e, cp := newEngine(t, `
		q(a).
		p(X) :- d(X), not q(X).
		d(a).
		ok(X) :- p(X)[del: q(X)].
	`, Options{})
	// q(a) blocks p(a); deleting it hypothetically unblocks.
	expect(t, e, cp, "p(a)", false)
	expect(t, e, cp, "ok(a)", true)
}

func TestDeletionOfBaseFactInvisible(t *testing.T) {
	e, cp := newEngine(t, "q(a).\nw(X) :- r(X)[del: q(X)].\nr(X) :- q(X).\n", Options{})
	expect(t, e, cp, "r(a)", true)
	expect(t, e, cp, "w(a)", false) // with q(a) deleted, r(a) is unprovable
}

func TestAddThenDeleteComposition(t *testing.T) {
	e, cp := newEngine(t, `
		% a deletes x, then b re-adds it: c sees x.
		a :- b[del: x].
		b :- c[add: x].
		c :- x.
		% a2 adds x, then b2 deletes it: c2 must not see x.
		a2 :- b2[add: x].
		b2 :- c2[del: x].
		c2 :- not x.
	`, Options{})
	expect(t, e, cp, "a", true)
	expect(t, e, cp, "a2", true)
	expect(t, e, cp, "c", false)
}

func TestCombinedAddDelPremise(t *testing.T) {
	e, cp := newEngine(t, `
		u(a).
		s(X) :- tt(X), not u(X).
		r(X) :- s(X)[add: tt(X)][del: u(X)].
	`, Options{})
	expect(t, e, cp, "s(a)", false)
	expect(t, e, cp, "r(a)", true)
}

func TestDeletionCycleTerminates(t *testing.T) {
	// Moving a token around a cycle revisits states; the (goal, state)
	// loop check must terminate and answer reachability correctly.
	g := workload.Digraph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}}}
	e, cp := newEngine(t, workload.TokenGameProgram(g, 0, 2), Options{MaxGoals: 1_000_000})
	expect(t, e, cp, "goal", true)
	// Node 3 is unreachable.
	g2 := workload.Digraph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}}}
	e2, cp2 := newEngine(t, workload.TokenGameProgram(g2, 0, 3), Options{MaxGoals: 1_000_000})
	expect(t, e2, cp2, "goal", false)
}

func TestTokenGameMatchesReachability(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g := workload.RandomDigraph(rng, n, 0.3)
		target := rng.Intn(n)
		want := workload.Reachable(g, 0, target)
		e, cp := newEngine(t, workload.TokenGameProgram(g, 0, target), Options{MaxGoals: 5_000_000})
		if got := ask(t, e, cp, "goal"); got != want {
			t.Errorf("seed %d: goal=%v reachable=%v (n=%d target=%d)", seed, got, want, n, target)
		}
	}
}

// TestFuzzDeletionsAgainstReference extends the differential fuzz to
// programs with hypothetical deletions.
func TestFuzzDeletionsAgainstReference(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 20
	}
	opts := workload.DefaultFuzz()
	opts.DelProb = 0.5
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed + 9000)))
		src := workload.RandomStratifiedProgram(rng, opts)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ip := ref.New(cp)
		dom := ip.Dom()
		engines := map[string]*Engine{
			"tabled":   New(cp, dom, Options{MaxGoals: 5_000_000}),
			"untabled": New(cp, dom, Options{NoTabling: true, MaxGoals: 2_000_000}),
		}
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 1 {
				continue
			}
			for _, c := range dom {
				args := []symbols.Const{c}
				want := ip.Holds(ip.Interner().ID(p, args), ip.EmptyState())
				for name, e := range engines {
					got, err := e.Ask(e.Interner().ID(p, args), e.EmptyState())
					if errors.Is(err, ErrBudget) && name == "untabled" {
						// Without tabling, cyclic state transitions from
						// deletions are only cut per path; blowups are
						// expected (this is the EXPTIME fragment).
						continue
					}
					if err != nil {
						t.Fatalf("seed %d: %s: %v\n%s", seed, name, err, src)
					}
					if got != want {
						t.Errorf("seed %d: %s disagrees on %s(%s): got %v want %v\n%s",
							seed, name, cp.Syms.PredName(p), cp.Syms.ConstName(c), got, want, src)
					}
				}
			}
		}
	}
}
