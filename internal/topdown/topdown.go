// Package topdown is the goal-directed evaluation engine for hypothetical
// Datalog. It is the deterministic realisation of the paper's PROVE_Σ
// procedure (section 5.2.1): goals are expanded through rules exactly as in
// lines 1-3 of the procedure, hypothetical premises extend the database
// state, and negated premises (which the paper routes to PROVE_Δ) are
// evaluated by recursive proof in an independent region, which is sound
// because stratification forbids loops across negation.
//
// Where the paper's procedure chooses nondeterministically, this engine
// searches depth-first with:
//
//   - an on-stack check on (goal, state) pairs — complete because every
//     derivable goal has a derivation with no repeated (goal, state) pair
//     on a root-to-leaf path;
//   - a table of proven results — successes are unconditional and always
//     cached; failures are cached only when *clean*, i.e. the failed
//     subtree never consulted an in-progress ancestor, tracked with a
//     lowlink-style minimum-touched-frame index;
//   - a premise planner that orders rule-body premises greedily by
//     boundness, realising the "some ground substitution over dom(R,DB)"
//     semantics of Definition 3 without blind enumeration.
package topdown

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/symbols"
)

// Resolver decides goals whose predicate has no defining rule in this
// engine's program view. The stratified cascade uses it to route subgoals
// below Σ_i to PROVE_Δi; the resolver's answer must be unconditional
// (independent of any in-progress computation in this engine).
type Resolver func(goal facts.AtomID, st facts.State) (bool, error)

// Options configure an Engine. The zero value enables all features.
type Options struct {
	// Resolver handles goals of predicates not defined in this engine's
	// rule set. When nil, such predicates are extensional: only state
	// membership makes them true.
	Resolver Resolver
	// ExternalIDB marks predicates that are intensional but defined
	// outside this engine's rule set (and answered by Resolver).
	// Predicates neither in the engine's rule set nor in ExternalIDB are
	// treated as extensional and matched against the state by index.
	ExternalIDB map[symbols.Pred]bool
	// NoTabling disables the (goal, state) result table. Proofs remain
	// correct (the on-stack check still guarantees termination) but can be
	// exponentially slower. Used by the ablation experiment.
	NoTabling bool
	// NoPlanner evaluates rule bodies strictly left to right, enumerating
	// unbound variables over the domain as encountered.
	NoPlanner bool
	// MaxGoals aborts evaluation after exactly this many goal expansions
	// with an *AbortError wrapping ErrBudget (the error reports the limit
	// and a Stats snapshot). Zero means no limit.
	MaxGoals int64
	// MaxMemoryBytes aborts evaluation once the query has grown the
	// engine's tracked footprint (memo table, interner, base database) by
	// more than this many bytes, with an *AbortError wrapping ErrMemory.
	// Zero means no limit. Engines embedded in a cascade share one
	// tracker installed with SetMem instead.
	MaxMemoryBytes int64
}

// Sentinel causes for aborted evaluations. The error returned by the
// engine wraps one of these in an *AbortError carrying a Stats snapshot,
// so both errors.Is(err, ErrDeadline) and errors.As(err, &abortErr) work.
var (
	// ErrBudget is returned when Options.MaxGoals is exhausted.
	ErrBudget = errors.New("topdown: goal budget exhausted")
	// ErrCanceled is returned when the caller's context is canceled
	// mid-evaluation.
	ErrCanceled = errors.New("topdown: evaluation canceled")
	// ErrDeadline is returned when the caller's context deadline expires
	// mid-evaluation.
	ErrDeadline = errors.New("topdown: evaluation deadline exceeded")
	// ErrMemory is returned when Options.MaxMemoryBytes (or the memory
	// tracker installed with SetMem) is exhausted.
	ErrMemory = errors.New("topdown: memory budget exhausted")
)

// AbortError reports an evaluation cut short — by the goal budget, by
// caller cancellation, or by a deadline — together with a snapshot of the
// work done up to the abort.
type AbortError struct {
	// Reason is ErrBudget, ErrCanceled, ErrDeadline, or ErrMemory.
	Reason error
	// Limit is the configured Options.MaxGoals for budget aborts, or the
	// configured byte ceiling for memory aborts; 0 otherwise.
	Limit int64
	// Stats is the engine's counters at the moment of the abort.
	Stats Stats
}

func (e *AbortError) Error() string {
	if e.Reason == ErrBudget && e.Limit > 0 {
		return fmt.Sprintf("%v (limit %d)", e.Reason, e.Limit)
	}
	if e.Reason == ErrMemory {
		return fmt.Sprintf("%v (limit %d bytes, grew %d)", e.Reason, e.Limit, e.Stats.MemBytes)
	}
	return fmt.Sprintf("%v after %d goal expansions", e.Reason, e.Stats.Goals)
}

func (e *AbortError) Unwrap() error { return e.Reason }

// ContextAbort wraps a context error (context.Canceled or
// context.DeadlineExceeded) as an *AbortError with the corresponding
// sentinel reason. Shared by every evaluation layer that polls a context.
func ContextAbort(ctxErr error, stats Stats) *AbortError {
	reason := ErrCanceled
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		reason = ErrDeadline
	}
	return &AbortError{Reason: reason, Stats: stats}
}

// ctxCheckInterval is how many goal expansions pass between context
// polls. Powers of two keep the hot-path check a mask-and-branch.
const ctxCheckInterval = 256

// Stats are evaluation counters, reset by ResetStats. They back the
// Appendix A experiment (polynomial goal-sequence length).
type Stats struct {
	Goals      int64 // prove() entries
	TableHits  int64
	LoopCuts   int64 // on-stack hits
	MaxDepth   int   // deepest proof stack
	TableSize  int   // entries currently in the table
	Enumerated int64 // domain bindings tried by the planner
	NegCalls   int64 // nested negation regions started
	MemBytes   int64 // tracked footprint growth since the query began
}

// Engine proves ground goals against hypothetical states.
// An Engine is not safe for concurrent use.
type Engine struct {
	prog *ast.CProgram
	in   *facts.Interner
	base *facts.DB
	dom  []symbols.Const
	opts Options

	table   map[tableKey]bool
	onStack map[tableKey]int

	// ctx is the cancellation source of the in-flight *Ctx call, or nil
	// when the call is not cancellable; prove polls it every
	// ctxCheckInterval goal expansions.
	ctx context.Context

	// mem is the footprint tracker enforcing MaxMemoryBytes; nil disables
	// both accounting and the ceiling.
	mem *MemTracker

	stats Stats
}

// tableEntryBytes approximates the heap cost of one memo-table entry.
func tableEntryBytes(k tableKey) int64 { return 64 + int64(len(k.state)) }

type tableKey struct {
	goal  facts.AtomID
	state string
}

const maxFrame = math.MaxInt

// New builds an engine over a compiled program. The base database is
// populated from the program's facts; dom is the constant domain used when
// the planner must enumerate (pass ref.Domain(cp) for the paper's
// dom(R, DB)).
func New(cp *ast.CProgram, dom []symbols.Const, opts Options) *Engine {
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	for _, f := range cp.Facts {
		// Compiled facts intern their predicate with their own arity, so a
		// mismatch here means a corrupted CProgram — unrecoverable.
		if _, err := base.Insert(in.InternGround(f)); err != nil {
			panic(err)
		}
	}
	e := &Engine{
		prog:    cp,
		in:      in,
		base:    base,
		dom:     dom,
		opts:    opts,
		table:   make(map[tableKey]bool),
		onStack: make(map[tableKey]int),
	}
	e.initMem()
	return e
}

// NewWithBase builds an engine sharing an existing base database (and its
// interner). The program's facts are NOT re-inserted.
func NewWithBase(cp *ast.CProgram, base *facts.DB, dom []symbols.Const, opts Options) *Engine {
	e := &Engine{
		prog:    cp,
		in:      base.Interner(),
		base:    base,
		dom:     dom,
		opts:    opts,
		table:   make(map[tableKey]bool),
		onStack: make(map[tableKey]int),
	}
	e.initMem()
	return e
}

// initMem builds the standalone tracker Options.MaxMemoryBytes asks for.
// Engines assembled into a cascade get a shared tracker via SetMem
// instead (the cascade's components share one interner and database, so
// per-engine sources would double-count them).
func (e *Engine) initMem() {
	if e.opts.MaxMemoryBytes <= 0 {
		return
	}
	t := NewMemTracker(e.opts.MaxMemoryBytes)
	t.AddSource(e.in.MemBytes)
	t.AddSource(e.base.MemBytes)
	t.Begin()
	e.mem = t
}

// SetMem installs a footprint tracker (replacing any standalone one).
// The engine charges its memo table into it and polls it at the same
// points as the goal budget. Passing nil disables accounting.
func (e *Engine) SetMem(t *MemTracker) { e.mem = t }

// Mem returns the engine's footprint tracker, or nil.
func (e *Engine) Mem() *MemTracker { return e.mem }

// Base returns the engine's base database.
func (e *Engine) Base() *facts.DB { return e.base }

// EmptyState returns the state of the unmodified base database.
func (e *Engine) EmptyState() facts.State { return facts.NewState(e.base) }

// Interner returns the engine's ground-atom interner.
func (e *Engine) Interner() *facts.Interner { return e.in }

// Dom returns the engine's enumeration domain.
func (e *Engine) Dom() []symbols.Const { return e.dom }

// Stats returns a snapshot of the evaluation counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.TableSize = len(e.table)
	s.MemBytes = e.mem.Grown()
	return s
}

// ResetStats zeroes the counters (the table is kept).
func (e *Engine) ResetStats() { e.stats = Stats{} }

// ResetTable clears the memo table.
func (e *Engine) ResetTable() {
	for k := range e.table {
		e.mem.Add(-tableEntryBytes(k))
	}
	e.table = make(map[tableKey]bool)
}

// PruneTable drops every memo entry whose goal predicate lies in the
// affected cone of a base-fact commit and returns how many were dropped.
// Entries outside the cone stay: their truth values are functions of
// extensions the commit cannot have changed. The state component of a
// key needs no inspection — a hypothetical delta only narrows which base
// atoms are visible, and visibility of non-cone predicates is unchanged;
// keys whose delta mentions a committed atom are simply never asked
// again (the canonical key for the new base differs), so stale entries
// under them are unreachable, not wrong.
func (e *Engine) PruneTable(cone map[symbols.Pred]bool) int {
	n := 0
	for k := range e.table {
		if cone[e.in.Pred(k.goal)] {
			delete(e.table, k)
			e.mem.Add(-tableEntryBytes(k))
			n++
		}
	}
	return n
}

// ApplyDelta mutates the engine's base database in place with a commit's
// effective fact delta and invalidates the memo entries the change can
// affect. The caller must not be mid-query, and the removed/added ids
// must already be interned in this engine's interner.
func (e *Engine) ApplyDelta(added, removed []facts.AtomID, cone map[symbols.Pred]bool) error {
	for _, id := range removed {
		e.base.Remove(id)
	}
	for _, id := range added {
		if _, err := e.base.Insert(id); err != nil {
			return err
		}
	}
	e.PruneTable(cone)
	return nil
}

// Ask reports whether the interned ground atom is derivable in the state:
// R, DB+Δ ⊢ A.
func (e *Engine) Ask(goal facts.AtomID, st facts.State) (bool, error) {
	ok, _, err := e.prove(goal, st, 0)
	return ok, err
}

// AskCtx is Ask with cancellation: the proof is aborted with ErrCanceled
// or ErrDeadline (wrapped in an *AbortError carrying a Stats snapshot)
// when ctx is canceled. The poll happens every ctxCheckInterval goal
// expansions, so abort latency is bounded by a few hundred expansions.
func (e *Engine) AskCtx(ctx context.Context, goal facts.AtomID, st facts.State) (bool, error) {
	restore, err := e.pushCtx(ctx)
	if err != nil {
		return false, err
	}
	if restore != nil {
		defer restore()
	}
	ok, _, err := e.prove(goal, st, 0)
	return ok, err
}

// pushCtx installs ctx as the engine's cancellation source for the
// duration of one public call, returning a restore closure. A nil or
// never-cancellable context disables polling entirely and returns a nil
// restore, keeping the uncancellable path allocation-free (the cascade
// routes every subgoal through here).
func (e *Engine) pushCtx(ctx context.Context) (func(), error) {
	if ctx == nil || ctx.Done() == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, ContextAbort(err, e.Stats())
	}
	saved := e.ctx
	e.ctx = ctx
	return func() { e.ctx = saved }, nil
}

// AskPremiseCtx is AskPremise with cancellation; see AskCtx.
func (e *Engine) AskPremiseCtx(ctx context.Context, p ast.CPremise, st facts.State) (bool, error) {
	restore, err := e.pushCtx(ctx)
	if err != nil {
		return false, err
	}
	if restore != nil {
		defer restore()
	}
	return e.AskPremise(p, st)
}

// AskPremise evaluates a ground compiled premise (plain, negated, or
// hypothetical) in the state.
func (e *Engine) AskPremise(p ast.CPremise, st facts.State) (bool, error) {
	if !p.Atom.IsGround() {
		return false, fmt.Errorf("topdown: AskPremise requires a ground premise, got %s",
			ast.FormatCAtom(p.Atom, e.prog.Syms, nil))
	}
	switch p.Kind {
	case ast.Plain:
		return e.Ask(e.in.InternGround(p.Atom), st)
	case ast.Negated:
		ok, err := e.Ask(e.in.InternGround(p.Atom), st)
		return !ok, err
	case ast.Hyp:
		next := st
		for _, a := range p.Adds {
			if !a.IsGround() {
				return false, fmt.Errorf("topdown: non-ground hypothetical add %s",
					ast.FormatCAtom(a, e.prog.Syms, nil))
			}
			next = next.Add(e.in.InternGround(a))
		}
		for _, a := range p.Dels {
			if !a.IsGround() {
				return false, fmt.Errorf("topdown: non-ground hypothetical del %s",
					ast.FormatCAtom(a, e.prog.Syms, nil))
			}
			next = next.Del(e.in.InternGround(a))
		}
		return e.Ask(e.in.InternGround(p.Atom), next)
	default:
		return false, fmt.Errorf("topdown: unsupported premise kind %v", p.Kind)
	}
}

// prove implements the tabled DFS. depth doubles as this goal's frame
// index; the second result is the minimum frame index of any in-progress
// ancestor the (failed) subtree consulted, or maxFrame when untouched.
func (e *Engine) prove(goal facts.AtomID, st facts.State, depth int) (bool, int, error) {
	if e.opts.MaxGoals > 0 && e.stats.Goals >= e.opts.MaxGoals {
		// Checked before counting, so exactly MaxGoals expansions run.
		return false, maxFrame, &AbortError{Reason: ErrBudget, Limit: e.opts.MaxGoals, Stats: e.Stats()}
	}
	if e.mem.Over() {
		return false, maxFrame, &AbortError{Reason: ErrMemory, Limit: e.mem.Max(), Stats: e.Stats()}
	}
	e.stats.Goals++
	if e.ctx != nil && e.stats.Goals%ctxCheckInterval == 0 {
		if err := e.ctx.Err(); err != nil {
			return false, maxFrame, ContextAbort(err, e.Stats())
		}
	}
	if depth > e.stats.MaxDepth {
		e.stats.MaxDepth = depth
	}
	if st.Has(goal) {
		return true, maxFrame, nil
	}
	pred := e.in.Pred(goal)
	if !e.prog.IDB[pred] {
		if e.opts.Resolver != nil && e.opts.ExternalIDB[pred] {
			ok, err := e.opts.Resolver(goal, st)
			return ok, maxFrame, err
		}
		// Extensional predicate: only state membership can make it true.
		return false, maxFrame, nil
	}
	key := tableKey{goal, st.Key()}
	if !e.opts.NoTabling {
		if v, ok := e.table[key]; ok {
			e.stats.TableHits++
			return v, maxFrame, nil
		}
	}
	if f, ok := e.onStack[key]; ok {
		e.stats.LoopCuts++
		return false, f, nil
	}
	e.onStack[key] = depth
	defer delete(e.onStack, key)

	minTouched := maxFrame
	for _, ri := range e.prog.ByHead[pred] {
		rule := &e.prog.Rules[ri]
		binding := newBinding(rule.NumVars)
		if !unifyHead(rule.Head, e.in.Args(goal), binding) {
			continue
		}
		ok, touched, err := e.evalBody(rule, binding, fullMask(len(rule.Body)), st, depth+1)
		if err != nil {
			return false, maxFrame, err
		}
		if touched < minTouched {
			minTouched = touched
		}
		if ok {
			if !e.opts.NoTabling {
				e.table[key] = true
				e.mem.Add(tableEntryBytes(key))
			}
			return true, maxFrame, nil
		}
	}
	if !e.opts.NoTabling && minTouched >= depth {
		// Clean failure: nothing above this frame was consulted.
		e.table[key] = false
		e.mem.Add(tableEntryBytes(key))
	}
	return false, minTouched, nil
}

// isExtensional reports whether a predicate is neither defined by this
// engine's rules nor owned by the resolver.
func (e *Engine) isExtensional(p symbols.Pred) bool {
	return !e.prog.IDB[p] && !e.opts.ExternalIDB[p]
}

// unbound marks an unbound variable slot.
const unbound symbols.Const = -1

func newBinding(n int) []symbols.Const {
	b := make([]symbols.Const, n)
	for i := range b {
		b[i] = unbound
	}
	return b
}

// unifyHead matches a rule head against ground goal arguments, extending
// binding. It reports failure on constant mismatch or conflicting variable
// bindings (repeated head variables).
func unifyHead(head ast.CAtom, goalArgs []symbols.Const, binding []symbols.Const) bool {
	for i, t := range head.Args {
		g := goalArgs[i]
		if t.IsVar() {
			s := t.VarSlot()
			if binding[s] == unbound {
				binding[s] = g
			} else if binding[s] != g {
				return false
			}
		} else if t.ConstID() != g {
			return false
		}
	}
	return true
}

// fullMask returns a bitmask with the low n bits set (bodies are capped at
// 64 premises, far beyond anything the compiler produces in practice).
func fullMask(n int) uint64 {
	if n >= 64 {
		panic("topdown: rule body longer than 64 premises")
	}
	return (uint64(1) << n) - 1
}

// evalBody proves the premises indicated by mask under binding, choosing
// the next premise with the planner. Returns (proved, minTouchedFrame).
func (e *Engine) evalBody(rule *ast.CRule, binding []symbols.Const, mask uint64, st facts.State, depth int) (bool, int, error) {
	if mask == 0 {
		return true, maxFrame, nil
	}
	idx := e.pickPremise(rule, binding, mask, st)
	pr := &rule.Body[idx]
	rest := mask &^ (uint64(1) << idx)

	// Enumerate any unbound variables the premise needs, then evaluate it
	// and recurse on the remaining premises.
	switch pr.Kind {
	case ast.Plain:
		if e.isExtensional(pr.Atom.Pred) {
			// Extensional: matching the state is complete.
			return e.evalEDBPremise(rule, pr, binding, rest, st, depth)
		}
		return e.evalEnumerated(rule, pr, binding, rest, st, depth)
	case ast.Negated:
		return e.evalNegated(rule, pr, binding, rest, st, depth)
	case ast.Hyp:
		return e.evalEnumerated(rule, pr, binding, rest, st, depth)
	default:
		return false, maxFrame, fmt.Errorf("topdown: premise kind %v in compiled rule", pr.Kind)
	}
}

// evalEDBPremise matches an extensional premise against the state, which
// is complete because extensional predicates have no rules. Each match
// extends the binding.
func (e *Engine) evalEDBPremise(rule *ast.CRule, pr *ast.CPremise, binding []symbols.Const, rest uint64, st facts.State, depth int) (bool, int, error) {
	minTouched := maxFrame
	ok := false
	err := e.matchState(pr.Atom, binding, st, func() error {
		res, touched, err := e.evalBody(rule, binding, rest, st, depth)
		if err != nil {
			return err
		}
		if touched < minTouched {
			minTouched = touched
		}
		if res {
			ok = true
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return false, maxFrame, err
	}
	if ok {
		return true, maxFrame, nil
	}
	return false, minTouched, nil
}

// errStop is an internal sentinel to stop match enumeration early.
var errStop = fmt.Errorf("topdown: stop")

// evalEnumerated handles intensional plain premises and hypothetical
// premises: unbound variables range over the domain (Definition 3's
// "ground substitution over dom(R, DB)"), and each ground instance is
// proved recursively.
func (e *Engine) evalEnumerated(rule *ast.CRule, pr *ast.CPremise, binding []symbols.Const, rest uint64, st facts.State, depth int) (bool, int, error) {
	slots := premiseUnboundSlots(pr, binding)
	minTouched := maxFrame
	proved := false

	var tryGround func(i int) error
	tryGround = func(i int) error {
		if i < len(slots) {
			for _, c := range e.dom {
				e.stats.Enumerated++
				binding[slots[i]] = c
				if err := tryGround(i + 1); err != nil {
					return err
				}
			}
			binding[slots[i]] = unbound
			return nil
		}
		next := st
		if pr.Kind == ast.Hyp {
			for _, a := range pr.Adds {
				next = next.Add(e.groundAtom(a, binding))
			}
			for _, a := range pr.Dels {
				next = next.Del(e.groundAtom(a, binding))
			}
		}
		goal := e.groundAtom(pr.Atom, binding)
		res, touched, err := e.prove(goal, next, depth)
		if err != nil {
			return err
		}
		if touched < minTouched {
			minTouched = touched
		}
		if !res {
			return nil
		}
		res2, touched2, err := e.evalBody(rule, binding, rest, st, depth)
		if err != nil {
			return err
		}
		if touched2 < minTouched {
			minTouched = touched2
		}
		if res2 {
			proved = true
			return errStop
		}
		return nil
	}
	err := tryGround(0)
	if err != nil && err != errStop {
		return false, maxFrame, err
	}
	// Restore slots bound during a successful early stop.
	if !proved {
		for _, s := range slots {
			binding[s] = unbound
		}
		return false, minTouched, nil
	}
	return true, maxFrame, nil
}

// evalNegated evaluates ~A. Unbound variables that occur positively
// elsewhere in the rule are enumerated over the domain (outer existential,
// per Definition 3); variables occurring only in negated premises are
// quantified inside the negation — ~A(x) with negation-local x holds iff
// no instantiation of x makes A provable. This is the reading the paper's
// Examples 6 and 7 rely on (EVEN ← ~SELECT(x̄) fires when nothing is
// selectable).
func (e *Engine) evalNegated(rule *ast.CRule, pr *ast.CPremise, binding []symbols.Const, rest uint64, st facts.State, depth int) (bool, int, error) {
	slots := premiseUnboundSlots(pr, binding)
	var enumSlots, localSlots []int
	for _, s := range slots {
		if rule.PosVar[s] {
			enumSlots = append(enumSlots, s)
		} else {
			localSlots = append(localSlots, s)
		}
	}
	minTouched := maxFrame
	proved := false

	var tryGround func(i int) error
	tryGround = func(i int) error {
		if i < len(enumSlots) {
			for _, c := range e.dom {
				e.stats.Enumerated++
				binding[enumSlots[i]] = c
				if err := tryGround(i + 1); err != nil {
					return err
				}
			}
			binding[enumSlots[i]] = unbound
			return nil
		}
		holds, err := e.negHolds(pr.Atom, binding, localSlots, st)
		if err != nil {
			return err
		}
		if holds {
			return nil // some instance of A is provable; ~A fails here
		}
		res, touched, err := e.evalBody(rule, binding, rest, st, depth)
		if err != nil {
			return err
		}
		if touched < minTouched {
			minTouched = touched
		}
		if res {
			proved = true
			return errStop
		}
		return nil
	}
	err := tryGround(0)
	if err != nil && err != errStop {
		return false, maxFrame, err
	}
	if !proved {
		for _, s := range slots {
			binding[s] = unbound
		}
		return false, minTouched, nil
	}
	return true, maxFrame, nil
}

// negHolds reports whether some instantiation of the negation-local slots
// makes the atom provable in the state.
func (e *Engine) negHolds(atom ast.CAtom, binding []symbols.Const, localSlots []int, st facts.State) (bool, error) {
	if len(localSlots) == 0 {
		return e.negCheck(e.groundAtom(atom, binding), st)
	}
	found := false
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(localSlots) {
			ok, err := e.negCheck(e.groundAtom(atom, binding), st)
			if err != nil {
				return err
			}
			if ok {
				found = true
				return errStop
			}
			return nil
		}
		for _, c := range e.dom {
			e.stats.Enumerated++
			binding[localSlots[i]] = c
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0)
	for _, s := range localSlots {
		binding[s] = unbound
	}
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

// negCheck decides R, DB+Δ ⊢ A for a negated premise in a fresh region.
// Stratification guarantees the goal's predicate is strictly below every
// in-progress frame's predicate, so the nested proof cannot consult them;
// its result is unconditional.
func (e *Engine) negCheck(goal facts.AtomID, st facts.State) (bool, error) {
	e.stats.NegCalls++
	savedStack := e.onStack
	e.onStack = make(map[tableKey]int)
	ok, _, err := e.prove(goal, st, 0)
	e.onStack = savedStack
	return ok, err
}

// groundAtom interns a premise atom under a (fully binding) substitution.
func (e *Engine) groundAtom(a ast.CAtom, binding []symbols.Const) facts.AtomID {
	args := make([]symbols.Const, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v := binding[t.VarSlot()]
			if v == unbound {
				panic("topdown: grounding with unbound variable")
			}
			args[i] = v
		} else {
			args[i] = t.ConstID()
		}
	}
	return e.in.ID(a.Pred, args)
}

// premiseUnboundSlots returns the unbound variable slots of a premise
// (atom plus adds), each once, in first-occurrence order.
func premiseUnboundSlots(pr *ast.CPremise, binding []symbols.Const) []int {
	var slots []int
	seen := map[int]bool{}
	note := func(a ast.CAtom) {
		for _, t := range a.Args {
			if t.IsVar() {
				s := t.VarSlot()
				if binding[s] == unbound && !seen[s] {
					seen[s] = true
					slots = append(slots, s)
				}
			}
		}
	}
	note(pr.Atom)
	for _, a := range pr.Adds {
		note(a)
	}
	for _, a := range pr.Dels {
		note(a)
	}
	return slots
}

// matchState enumerates the atoms in the state (base plus delta) matching
// the pattern under the current binding, invoking yield with the binding
// extended for each match and restoring it afterwards. Used only for
// extensional predicates, where the state is the complete extension.
func (e *Engine) matchState(pattern ast.CAtom, binding []symbols.Const, st facts.State, yield func() error) error {
	// Pick the most selective index: a bound argument position.
	bestPos, bestVal := -1, unbound
	for i, t := range pattern.Args {
		var v symbols.Const
		if t.IsVar() {
			v = binding[t.VarSlot()]
		} else {
			v = t.ConstID()
		}
		if v != unbound {
			bestPos, bestVal = i, v
			break
		}
	}
	var candidates []facts.AtomID
	if bestPos >= 0 {
		candidates = e.base.ByPredArg(pattern.Pred, bestPos, bestVal)
	} else {
		candidates = e.base.ByPred(pattern.Pred)
	}
	tryMatch := func(id facts.AtomID) error {
		args := e.in.Args(id)
		var boundHere []int
		ok := true
		for i, t := range pattern.Args {
			if t.IsVar() {
				s := t.VarSlot()
				switch binding[s] {
				case unbound:
					binding[s] = args[i]
					boundHere = append(boundHere, s)
				case args[i]:
				default:
					ok = false
				}
			} else if t.ConstID() != args[i] {
				ok = false
			}
			if !ok {
				break
			}
		}
		var err error
		if ok {
			err = yield()
		}
		for _, s := range boundHere {
			binding[s] = unbound
		}
		return err
	}
	for _, id := range candidates {
		if st.Delta.Deleted(id) {
			continue // hypothetically deleted
		}
		if err := tryMatch(id); err != nil {
			return err
		}
	}
	// Delta atoms of this predicate (deltas are small; scan them).
	for _, id := range st.Delta.IDs() {
		if e.in.Pred(id) != pattern.Pred {
			continue
		}
		if e.base.Has(id) {
			continue // already seen via the base scan
		}
		if err := tryMatch(id); err != nil {
			return err
		}
	}
	return nil
}

// pickPremise chooses the next premise to evaluate from mask: the one with
// the lowest estimated cost given the current binding.
func (e *Engine) pickPremise(rule *ast.CRule, binding []symbols.Const, mask uint64, st facts.State) int {
	if e.opts.NoPlanner {
		for i := 0; i < len(rule.Body); i++ {
			if mask&(uint64(1)<<i) != 0 {
				return i
			}
		}
	}
	best, bestCost := -1, math.Inf(1)
	for i := 0; i < len(rule.Body); i++ {
		if mask&(uint64(1)<<i) == 0 {
			continue
		}
		c := e.premiseCost(&rule.Body[i], binding, st)
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}

// premiseCost estimates the branching a premise introduces right now.
func (e *Engine) premiseCost(pr *ast.CPremise, binding []symbols.Const, st facts.State) float64 {
	unboundCount := len(premiseUnboundSlots(pr, binding))
	domN := float64(len(e.dom))
	if domN == 0 {
		domN = 1
	}
	switch pr.Kind {
	case ast.Plain:
		if e.isExtensional(pr.Atom.Pred) {
			if unboundCount == 0 {
				return 0
			}
			// Index-supported match: estimate candidates.
			n := len(e.base.ByPred(pr.Atom.Pred)) + st.Delta.Len()
			for i, t := range pr.Atom.Args {
				var v symbols.Const
				if t.IsVar() {
					v = binding[t.VarSlot()]
				} else {
					v = t.ConstID()
				}
				if v != unbound {
					m := len(e.base.ByPredArg(pr.Atom.Pred, i, v)) + st.Delta.Len()
					if m < n {
						n = m
					}
				}
			}
			return 1 + float64(n)
		}
		if unboundCount == 0 {
			return 2 // a single recursive proof
		}
		return 10 * math.Pow(domN, float64(unboundCount))
	case ast.Negated:
		if unboundCount == 0 {
			return 3
		}
		// Prefer to bind the variables elsewhere first.
		return 100 * math.Pow(domN, float64(unboundCount))
	case ast.Hyp:
		if unboundCount == 0 {
			return 5
		}
		return 20 * math.Pow(domN, float64(unboundCount))
	default:
		return math.Inf(1)
	}
}
