package topdown

import (
	"fmt"
	"strings"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/symbols"
)

// ProofKind classifies a node of a derivation tree.
type ProofKind int

// Proof node kinds.
const (
	// ProofFact: the goal is in the (hypothetically extended) database.
	ProofFact ProofKind = iota
	// ProofRule: the goal follows from a rule instance; Children prove
	// the premises.
	ProofRule
	// ProofNegation: a negated premise ~A, established by the failure of
	// every instance of A (no subtree — failure has no finite witness).
	ProofNegation
	// ProofHyp: a hypothetical premise A[add: ...]; the single child
	// proves A in the extended state.
	ProofHyp
)

// Proof is one node of a derivation tree for R, DB+Δ ⊢ A.
type Proof struct {
	Kind ProofKind
	// Goal is the proven atom (for ProofNegation, the failed atom pattern
	// rendered ground when possible).
	Goal string
	// Rule is the instantiated rule head :- body for ProofRule nodes.
	Rule string
	// Added and Deleted list the hypothetically inserted and removed atoms
	// for ProofHyp nodes.
	Added   []string
	Deleted []string
	// Children are the sub-proofs (premises for ProofRule; the inner
	// proof for ProofHyp).
	Children []*Proof
}

// String renders the proof as an indented tree.
func (p *Proof) String() string {
	var b strings.Builder
	p.render(&b, 0)
	return b.String()
}

func (p *Proof) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	switch p.Kind {
	case ProofFact:
		fmt.Fprintf(b, "%s%s  [fact]\n", indent, p.Goal)
	case ProofRule:
		fmt.Fprintf(b, "%s%s  [rule %s]\n", indent, p.Goal, p.Rule)
	case ProofNegation:
		fmt.Fprintf(b, "%snot %s  [no instance provable]\n", indent, p.Goal)
	case ProofHyp:
		mods := ""
		if len(p.Added) > 0 {
			mods = "add: " + strings.Join(p.Added, ", ")
		}
		if len(p.Deleted) > 0 {
			if mods != "" {
				mods += "; "
			}
			mods += "del: " + strings.Join(p.Deleted, ", ")
		}
		fmt.Fprintf(b, "%s%s  [under %s]\n", indent, p.Goal, mods)
	}
	for _, c := range p.Children {
		c.render(b, depth+1)
	}
}

// Size counts the nodes of the proof tree.
func (p *Proof) Size() int {
	n := 1
	for _, c := range p.Children {
		n += c.Size()
	}
	return n
}

// Explain produces a derivation tree for a provable ground goal, or nil
// when the goal does not hold. It reuses the engine's memo table, so
// explaining after asking is cheap.
func (e *Engine) Explain(goal facts.AtomID, st facts.State) (*Proof, error) {
	ok, err := e.Ask(goal, st)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	seen := map[tableKey]bool{}
	return e.explain(goal, st, seen)
}

// explain reconstructs one derivation, guarding against cyclic
// reconstruction with an on-path set (a provable goal always has an
// acyclic derivation, so skipping on-path repeats is safe).
func (e *Engine) explain(goal facts.AtomID, st facts.State, onPath map[tableKey]bool) (*Proof, error) {
	if st.Has(goal) {
		return &Proof{Kind: ProofFact, Goal: e.in.Format(goal)}, nil
	}
	key := tableKey{goal, st.Key()}
	if onPath[key] {
		return nil, nil
	}
	onPath[key] = true
	defer delete(onPath, key)

	pred := e.in.Pred(goal)
	for _, ri := range e.prog.ByHead[pred] {
		rule := &e.prog.Rules[ri]
		binding := newBinding(rule.NumVars)
		if !unifyHead(rule.Head, e.in.Args(goal), binding) {
			continue
		}
		children, ok, err := e.explainBody(rule, binding, 0, st, onPath)
		if err != nil {
			return nil, err
		}
		if ok {
			return &Proof{
				Kind:     ProofRule,
				Goal:     e.in.Format(goal),
				Rule:     e.formatRuleInstance(rule, binding),
				Children: children,
			}, nil
		}
	}
	return nil, nil
}

// explainBody finds a satisfying instantiation of the premises from index
// pi on (in source order — explanations favour readability over the
// planner's ordering) and returns their sub-proofs.
func (e *Engine) explainBody(rule *ast.CRule, binding []symbols.Const, pi int, st facts.State, onPath map[tableKey]bool) ([]*Proof, bool, error) {
	if pi == len(rule.Body) {
		return nil, true, nil
	}
	pr := &rule.Body[pi]
	var result []*Proof
	found := false

	tryRest := func(node *Proof) (bool, error) {
		children, ok, err := e.explainBody(rule, binding, pi+1, st, onPath)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		result = append([]*Proof{node}, children...)
		found = true
		return true, nil
	}

	switch pr.Kind {
	case ast.Plain:
		err := e.forEachPremiseInstance(rule, pr, binding, st, func() (bool, error) {
			goal := e.groundAtom(pr.Atom, binding)
			ok, err := e.Ask(goal, st)
			if err != nil || !ok {
				return false, err
			}
			sub, err := e.explain(goal, st, onPath)
			if err != nil {
				return false, err
			}
			if sub == nil {
				return false, nil
			}
			return tryRest(sub)
		})
		return result, found, err
	case ast.Hyp:
		err := e.forEachPremiseInstance(rule, pr, binding, st, func() (bool, error) {
			next := st
			var added, deleted []string
			for _, a := range pr.Adds {
				id := e.groundAtom(a, binding)
				next = next.Add(id)
				added = append(added, e.in.Format(id))
			}
			for _, a := range pr.Dels {
				id := e.groundAtom(a, binding)
				next = next.Del(id)
				deleted = append(deleted, e.in.Format(id))
			}
			goal := e.groundAtom(pr.Atom, binding)
			ok, err := e.Ask(goal, next)
			if err != nil || !ok {
				return false, err
			}
			sub, err := e.explain(goal, next, onPath)
			if err != nil {
				return false, err
			}
			if sub == nil {
				return false, nil
			}
			return tryRest(&Proof{
				Kind:     ProofHyp,
				Goal:     e.in.Format(goal),
				Added:    added,
				Deleted:  deleted,
				Children: []*Proof{sub},
			})
		})
		return result, found, err
	case ast.Negated:
		var enumSlots, localSlots []int
		for _, s := range premiseUnboundSlots(pr, binding) {
			if rule.PosVar[s] {
				enumSlots = append(enumSlots, s)
			} else {
				localSlots = append(localSlots, s)
			}
		}
		err := e.enumerate(enumSlots, binding, func() (bool, error) {
			holds, err := e.negHolds(pr.Atom, binding, localSlots, st)
			if err != nil {
				return false, err
			}
			if holds {
				return false, nil
			}
			return tryRest(&Proof{
				Kind: ProofNegation,
				Goal: e.formatPattern(pr.Atom, binding, rule.VarNames),
			})
		})
		return result, found, err
	default:
		return nil, false, fmt.Errorf("topdown: explain: premise kind %v", pr.Kind)
	}
}

// forEachPremiseInstance enumerates instantiations of a premise's unbound
// variables, preferring state matches for extensional atoms and the
// domain otherwise, until leaf returns true.
func (e *Engine) forEachPremiseInstance(rule *ast.CRule, pr *ast.CPremise, binding []symbols.Const, st facts.State, leaf func() (bool, error)) error {
	if pr.Kind == ast.Plain && e.isExtensional(pr.Atom.Pred) {
		stop := fmt.Errorf("stop")
		err := e.matchState(pr.Atom, binding, st, func() error {
			done, err := leaf()
			if err != nil {
				return err
			}
			if done {
				return stop
			}
			return nil
		})
		if err != nil && err.Error() != "stop" {
			return err
		}
		return nil
	}
	slots := premiseUnboundSlots(pr, binding)
	return e.enumerate(slots, binding, leaf)
}

// enumerate binds slots over the domain until leaf returns true; the
// successful binding is left in place, failures are restored.
func (e *Engine) enumerate(slots []int, binding []symbols.Const, leaf func() (bool, error)) error {
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(slots) {
			return leaf()
		}
		for _, c := range e.dom {
			binding[slots[i]] = c
			done, err := rec(i + 1)
			if err != nil {
				return false, err
			}
			if done {
				return true, nil
			}
		}
		binding[slots[i]] = unbound
		return false, nil
	}
	_, err := rec(0)
	return err
}

// formatRuleInstance renders a rule with its current (possibly partial)
// binding applied.
func (e *Engine) formatRuleInstance(rule *ast.CRule, binding []symbols.Const) string {
	var b strings.Builder
	b.WriteString(e.formatPattern(rule.Head, binding, rule.VarNames))
	if len(rule.Body) > 0 {
		b.WriteString(" :- ")
		for i := range rule.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			pr := &rule.Body[i]
			if pr.Kind == ast.Negated {
				b.WriteString("not ")
			}
			b.WriteString(e.formatPattern(pr.Atom, binding, rule.VarNames))
			if pr.Kind == ast.Hyp {
				if len(pr.Adds) > 0 {
					b.WriteString("[add: ")
					for j, a := range pr.Adds {
						if j > 0 {
							b.WriteString(", ")
						}
						b.WriteString(e.formatPattern(a, binding, rule.VarNames))
					}
					b.WriteString("]")
				}
				if len(pr.Dels) > 0 {
					b.WriteString("[del: ")
					for j, a := range pr.Dels {
						if j > 0 {
							b.WriteString(", ")
						}
						b.WriteString(e.formatPattern(a, binding, rule.VarNames))
					}
					b.WriteString("]")
				}
			}
		}
	}
	return b.String()
}

// formatPattern renders an atom under a partial binding: bound slots show
// their constants, unbound slots their variable names.
func (e *Engine) formatPattern(a ast.CAtom, binding []symbols.Const, varNames []string) string {
	syms := e.prog.Syms
	if len(a.Args) == 0 {
		return syms.PredName(a.Pred)
	}
	var b strings.Builder
	b.WriteString(syms.PredName(a.Pred))
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case !t.IsVar():
			b.WriteString(syms.ConstName(t.ConstID()))
		case binding[t.VarSlot()] != unbound:
			b.WriteString(syms.ConstName(binding[t.VarSlot()]))
		default:
			b.WriteString(varNames[t.VarSlot()])
		}
	}
	b.WriteByte(')')
	return b.String()
}
