// Package engine assembles complete evaluators for hypothetical Datalog
// programs.
//
// Two evaluators implement the same inference relation:
//
//   - Uniform: the top-down tabled engine (package topdown) over the whole
//     rulebase. Works for any program with stratified negation.
//   - Cascade: the paper's PROVE_k, ..., PROVE_1 architecture (section
//     5.2): one top-down PROVE_Σi engine per stratum's Σ part, one
//     bottom-up PROVE_Δi materialiser per Δ part, each stratum using the
//     one below as its oracle. Requires a linear stratification.
//
// Both satisfy the Asker interface; Solutions enumerates the answers of a
// non-ground query over the domain.
package engine

import (
	"context"
	"fmt"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/bottomup"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// Asker is the query interface shared by the uniform engine and the
// cascade.
type Asker interface {
	// Ask reports whether the interned ground atom is derivable in the
	// state: R, DB+Δ ⊢ A.
	Ask(goal facts.AtomID, st facts.State) (bool, error)
	// AskCtx is Ask with cancellation: evaluation aborts with an error
	// wrapping topdown.ErrCanceled or topdown.ErrDeadline when ctx is
	// canceled mid-proof.
	AskCtx(ctx context.Context, goal facts.AtomID, st facts.State) (bool, error)
	// AskPremise evaluates a ground premise (plain, negated or
	// hypothetical).
	AskPremise(p ast.CPremise, st facts.State) (bool, error)
	// AskPremiseCtx is AskPremise with cancellation; see AskCtx.
	AskPremiseCtx(ctx context.Context, p ast.CPremise, st facts.State) (bool, error)
	// Interner gives access to the ground-atom interner.
	Interner() *facts.Interner
	// EmptyState is the state of the unmodified base database.
	EmptyState() facts.State
	// Dom is the constant domain dom(R, DB).
	Dom() []symbols.Const
}

// NewUniform builds the uniform top-down engine for a compiled program.
func NewUniform(cp *ast.CProgram, dom []symbols.Const, opts topdown.Options) *topdown.Engine {
	return topdown.New(cp, dom, opts)
}

// Cascade is the stratified PROVE cascade of section 5.2.
type Cascade struct {
	prog *ast.CProgram
	in   *facts.Interner
	base *facts.DB
	dom  []symbols.Const

	partOf    map[symbols.Pred]int // partition number; 0 = extensional
	numStrata int
	sigma     []*topdown.Engine // sigma[i]: PROVE_Σ(i+1)
	delta     []*bottomup.Prover

	// ctx is the cancellation source of the in-flight *Ctx call, or nil.
	// The Σ engines and Δ provers pick it up on every routed subgoal, so
	// one context covers the whole cascade. A Cascade is not safe for
	// concurrent use.
	ctx context.Context
}

// NewCascade builds the cascade from a compiled program and its linear
// stratification (from strat.Stratify on the same source program).
func NewCascade(cp *ast.CProgram, s *strat.Stratification, dom []symbols.Const) (*Cascade, error) {
	in := facts.NewInterner(cp.Syms)
	base := facts.NewDB(in)
	for _, f := range cp.Facts {
		if _, err := base.Insert(in.InternGround(f)); err != nil {
			return nil, err
		}
	}
	return NewCascadeWithBase(cp, s, dom, base)
}

// NewCascadeWithBase builds the cascade over an existing base database
// (and its interner); the program's facts are assumed to already be in
// it. This lets pooled engines share a per-version fact substrate by
// cloning instead of re-interning from scratch.
func NewCascadeWithBase(cp *ast.CProgram, s *strat.Stratification, dom []symbols.Const, base *facts.DB) (*Cascade, error) {
	c := &Cascade{
		prog:      cp,
		in:        base.Interner(),
		base:      base,
		dom:       dom,
		partOf:    make(map[symbols.Pred]int),
		numStrata: s.NumStrata,
	}
	for sig, part := range s.Part {
		p, ok := cp.Syms.LookupPred(sig.Name, sig.Arity)
		if !ok {
			continue
		}
		if cp.IDB[p] {
			c.partOf[p] = part
		}
	}
	c.sigma = make([]*topdown.Engine, s.NumStrata)
	c.delta = make([]*bottomup.Prover, s.NumStrata)
	for i := 1; i <= s.NumStrata; i++ {
		i := i
		var oracle bottomup.Oracle
		if i >= 2 {
			oracle = func(goal facts.AtomID, st facts.State) (bool, error) {
				return c.askAt(goal, st, 2*(i-1))
			}
		}
		dp, err := bottomup.New(cp, base, dom, s.Delta[i-1], oracle)
		if err != nil {
			return nil, fmt.Errorf("engine: stratum %d Δ part: %w", i, err)
		}
		c.delta[i-1] = dp

		external := make(map[symbols.Pred]bool)
		for p, part := range c.partOf {
			if part <= 2*i-1 {
				external[p] = true
			}
		}
		c.sigma[i-1] = topdown.NewWithBase(cp.Restrict(s.Sigma[i-1]), base, dom, topdown.Options{
			Resolver: func(goal facts.AtomID, st facts.State) (bool, error) {
				return c.askAt(goal, st, 2*i-1)
			},
			ExternalIDB: external,
		})
	}
	return c, nil
}

// SetMemTracker installs one shared footprint tracker into every Σ
// engine and Δ prover of the cascade. The components share a single
// interner and base database, so the tracker's sources are registered
// once by the caller, not per component; the components only charge
// their private memo/materialisation state into it.
func (c *Cascade) SetMemTracker(t *topdown.MemTracker) {
	for _, se := range c.sigma {
		se.SetMem(t)
	}
	for _, dp := range c.delta {
		dp.SetMem(t)
	}
}

// Interner returns the cascade's ground-atom interner.
func (c *Cascade) Interner() *facts.Interner { return c.in }

// Base returns the cascade's base database.
func (c *Cascade) Base() *facts.DB { return c.base }

// EmptyState returns the state of the unmodified base database.
func (c *Cascade) EmptyState() facts.State { return facts.NewState(c.base) }

// Dom returns the enumeration domain.
func (c *Cascade) Dom() []symbols.Const { return c.dom }

// NumStrata returns the number of strata in the cascade.
func (c *Cascade) NumStrata() int { return c.numStrata }

// SigmaStats returns the top-down statistics of PROVE_Σi (1-based i).
func (c *Cascade) SigmaStats(i int) topdown.Stats { return c.sigma[i-1].Stats() }

// Ask reports whether the goal is derivable in the state.
func (c *Cascade) Ask(goal facts.AtomID, st facts.State) (bool, error) {
	return c.askAt(goal, st, 2*c.numStrata)
}

// AskCtx is Ask with cancellation: every Σ engine and Δ prover the query
// is routed through polls ctx and aborts with an error wrapping
// topdown.ErrCanceled or topdown.ErrDeadline.
func (c *Cascade) AskCtx(ctx context.Context, goal facts.AtomID, st facts.State) (bool, error) {
	restore, err := c.pushCtx(ctx)
	if err != nil {
		return false, err
	}
	if restore != nil {
		defer restore()
	}
	return c.askAt(goal, st, 2*c.numStrata)
}

// AskPremiseCtx is AskPremise with cancellation; see AskCtx.
func (c *Cascade) AskPremiseCtx(ctx context.Context, p ast.CPremise, st facts.State) (bool, error) {
	restore, err := c.pushCtx(ctx)
	if err != nil {
		return false, err
	}
	if restore != nil {
		defer restore()
	}
	return c.AskPremise(p, st)
}

// pushCtx installs ctx for the duration of one public call; nil or
// never-cancellable contexts disable polling and return a nil restore.
func (c *Cascade) pushCtx(ctx context.Context) (func(), error) {
	if ctx == nil || ctx.Done() == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, topdown.ContextAbort(err, topdown.Stats{})
	}
	saved := c.ctx
	c.ctx = ctx
	return func() { c.ctx = saved }, nil
}

// ApplyDelta applies a commit's effective base-fact delta to the cascade
// in place instead of rebuilding it. cone is the affected cone of the
// changed predicates (depgraph.Cone translated to interned predicates):
// everything outside it keeps its Σ memo entries and Δ materialisations
// verbatim. The update is two-phase because DRed overdeletion must join
// against the pre-commit database:
//
//  1. each Δ prover plans — per cached state, either drop the entry or
//     compute its overdeletion set against the old base;
//  2. the shared base database is mutated;
//  3. Σ memo entries whose goal predicate is in the cone are pruned;
//  4. each planned Δ entry is finished: overdeleted atoms are removed,
//     survivors rederived, and rederivations plus additions propagated
//     semi-naively to the new fixpoint, lowest stratum first so oracle
//     consultations during rederivation see fully-updated lower strata.
//
// The caller must hold the cascade exclusively (no query in flight). On
// error the cascade is left half-mutated and must be discarded.
func (c *Cascade) ApplyDelta(added, removed []facts.AtomID, cone map[symbols.Pred]bool) error {
	plans := make([]*bottomup.Plan, len(c.delta))
	for i, dp := range c.delta {
		plans[i] = dp.PlanDelta(added, removed, cone)
	}
	for _, id := range removed {
		c.base.Remove(id)
	}
	for _, id := range added {
		if _, err := c.base.Insert(id); err != nil {
			return err
		}
	}
	for _, se := range c.sigma {
		se.PruneTable(cone)
	}
	for i, dp := range c.delta {
		dp.ApplyPlan(plans[i], added)
	}
	return nil
}

// askAt answers a goal whose predicate must live at partition <= maxPart,
// routing odd partitions to PROVE_Δ and even ones to PROVE_Σ.
func (c *Cascade) askAt(goal facts.AtomID, st facts.State, maxPart int) (bool, error) {
	if st.Has(goal) {
		return true, nil
	}
	part, ok := c.partOf[c.in.Pred(goal)]
	if !ok {
		return false, nil // extensional and not in the state
	}
	if part > maxPart {
		return false, fmt.Errorf("engine: goal %s at partition %d consulted from partition bound %d (stratification violation)",
			c.in.Format(goal), part, maxPart)
	}
	stratum := (part + 1) / 2
	if part%2 == 1 {
		return c.delta[stratum-1].HoldsCtx(c.ctx, goal, st)
	}
	return c.sigma[stratum-1].AskCtx(c.ctx, goal, st)
}

// AskPremise evaluates a ground premise against the cascade.
func (c *Cascade) AskPremise(p ast.CPremise, st facts.State) (bool, error) {
	if !p.Atom.IsGround() {
		return false, fmt.Errorf("engine: AskPremise requires a ground premise")
	}
	switch p.Kind {
	case ast.Plain:
		return c.Ask(c.in.InternGround(p.Atom), st)
	case ast.Negated:
		ok, err := c.Ask(c.in.InternGround(p.Atom), st)
		return !ok, err
	case ast.Hyp:
		next := st
		for _, a := range p.Adds {
			if !a.IsGround() {
				return false, fmt.Errorf("engine: non-ground hypothetical add")
			}
			next = next.Add(c.in.InternGround(a))
		}
		for _, a := range p.Dels {
			if !a.IsGround() {
				return false, fmt.Errorf("engine: non-ground hypothetical del")
			}
			next = next.Del(c.in.InternGround(a))
		}
		return c.Ask(c.in.InternGround(p.Atom), next)
	default:
		return false, fmt.Errorf("engine: unsupported premise kind %v", p.Kind)
	}
}

// Solution is one answer to a non-ground query: the values bound to its
// variables, in slot order.
type Solution []symbols.Const

// Solutions enumerates the answers of a (possibly non-ground) premise by
// instantiating its variables over the domain and asking the engine. The
// variable slots are numbered by first occurrence; numVars is the size of
// the premise's binding space (from ast.CompilePremise's names).
func Solutions(a Asker, p ast.CPremise, numVars int, st facts.State) ([]Solution, error) {
	return SolutionsCtx(context.Background(), a, p, numVars, st)
}

// SolutionsCtx is Solutions with cancellation: both the domain
// enumeration and each per-instance proof poll ctx, so even queries whose
// cost is dominated by the dom^numVars instantiation loop abort promptly
// with an error wrapping topdown.ErrCanceled or topdown.ErrDeadline.
func SolutionsCtx(ctx context.Context, a Asker, p ast.CPremise, numVars int, st facts.State) ([]Solution, error) {
	var out []Solution
	err := SolutionsEachCtx(ctx, a, p, numVars, st, func(s Solution) error {
		out = append(out, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SolutionsEachCtx is SolutionsCtx with streaming delivery: each solution
// is passed to yield as soon as its proof succeeds, and nothing is
// accumulated, so an answer set larger than memory can be forwarded
// incrementally (e.g. onto a network connection). The yielded slice is
// owned by the callee. A non-nil error from yield stops the enumeration
// and is returned verbatim, so callers can distinguish their own
// delivery failures from evaluation aborts.
func SolutionsEachCtx(ctx context.Context, a Asker, p ast.CPremise, numVars int, st facts.State, yield func(Solution) error) error {
	if numVars == 0 {
		ok, err := a.AskPremiseCtx(ctx, p, st)
		if err != nil {
			return err
		}
		if ok {
			return yield(Solution{})
		}
		return nil
	}
	cancellable := ctx != nil && ctx.Done() != nil
	dom := a.Dom()
	binding := make([]symbols.Const, numVars)
	var tried int64
	var rec func(i int) error
	rec = func(i int) error {
		if i == numVars {
			tried++
			if cancellable && tried%ctxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return topdown.ContextAbort(err, topdown.Stats{})
				}
			}
			g, err := groundPremise(p, binding)
			if err != nil {
				return err
			}
			ok, err := a.AskPremiseCtx(ctx, g, st)
			if err != nil {
				return err
			}
			if ok {
				return yield(append(Solution(nil), binding...))
			}
			return nil
		}
		for _, c := range dom {
			binding[i] = c
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// ctxCheckInterval is how many query instantiations pass between context
// polls in SolutionsCtx.
const ctxCheckInterval = 256

// groundPremise substitutes binding into a premise.
func groundPremise(p ast.CPremise, binding []symbols.Const) (ast.CPremise, error) {
	g := ast.CPremise{Kind: p.Kind, Atom: groundCAtom(p.Atom, binding)}
	for _, a := range p.Adds {
		g.Adds = append(g.Adds, groundCAtom(a, binding))
	}
	for _, a := range p.Dels {
		g.Dels = append(g.Dels, groundCAtom(a, binding))
	}
	return g, nil
}

func groundCAtom(a ast.CAtom, binding []symbols.Const) ast.CAtom {
	out := ast.CAtom{Pred: a.Pred}
	if len(a.Args) > 0 {
		out.Args = make([]ast.CTerm, len(a.Args))
	}
	for i, t := range a.Args {
		if t.IsVar() {
			out.Args[i] = ast.CConst(binding[t.VarSlot()])
		} else {
			out.Args[i] = t
		}
	}
	return out
}
