package engine

import (
	"math/rand"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
	"hypodatalog/internal/workload"
)

// buildBoth compiles a linearly stratifiable program and returns the
// uniform engine and the cascade over it.
func buildBoth(t *testing.T, src string) (*topdown.Engine, *Cascade, *ast.CProgram) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ast.RewriteNegHyp(prog)
	s, err := strat.Stratify(prog)
	if err != nil {
		t.Fatalf("stratify: %v", err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dom := ref.Domain(cp)
	uni := NewUniform(cp, dom, topdown.Options{})
	cas, err := NewCascade(cp, s, dom)
	if err != nil {
		t.Fatalf("cascade: %v", err)
	}
	return uni, cas, cp
}

func askBoth(t *testing.T, uni *topdown.Engine, cas *Cascade, cp *ast.CProgram, query string) bool {
	t.Helper()
	pr, err := parser.ParsePremise(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, cp.Syms, vars, &names)
	if err != nil {
		t.Fatal(err)
	}
	u, err := uni.AskPremise(cpr, uni.EmptyState())
	if err != nil {
		t.Fatalf("uniform %q: %v", query, err)
	}
	c, err := cas.AskPremise(cpr, cas.EmptyState())
	if err != nil {
		t.Fatalf("cascade %q: %v", query, err)
	}
	if u != c {
		t.Fatalf("query %q: uniform=%v cascade=%v", query, u, c)
	}
	return u
}

func TestCascadeParity(t *testing.T) {
	for n := 0; n <= 6; n++ {
		uni, cas, cp := buildBoth(t, workload.ParityProgram(n))
		if got := askBoth(t, uni, cas, cp, "even"); got != (n%2 == 0) {
			t.Errorf("n=%d: even=%v", n, got)
		}
	}
}

func TestCascadeHamiltonian(t *testing.T) {
	graphs := []workload.Digraph{
		{N: 1},
		{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}},
		{N: 3, Edges: [][2]int{{0, 1}, {0, 2}}},
		{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
		{N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}}},
	}
	for gi, g := range graphs {
		uni, cas, cp := buildBoth(t, workload.HamiltonianProgram(g))
		want := workload.HasHamiltonianPath(g)
		if got := askBoth(t, uni, cas, cp, "yes"); got != want {
			t.Errorf("graph %d: yes=%v want %v", gi, got, want)
		}
		if got := askBoth(t, uni, cas, cp, "no"); got != !want {
			t.Errorf("graph %d: no=%v want %v", gi, got, !want)
		}
	}
}

func TestCascadeChainAndOrderLoop(t *testing.T) {
	for _, n := range []int{1, 4, 8} {
		uni, cas, cp := buildBoth(t, workload.ChainProgram(n))
		if !askBoth(t, uni, cas, cp, "a1") {
			t.Errorf("chain n=%d: a1 false", n)
		}
		uni, cas, cp = buildBoth(t, workload.OrderLoopProgram(n))
		if !askBoth(t, uni, cas, cp, "a") {
			t.Errorf("orderloop n=%d: a false", n)
		}
	}
}

func TestCascadeKStrata(t *testing.T) {
	// In KStrataProgram with no b/c/d facts, a1 is false (d1 is not
	// derivable), so a2 :- d2, not a1 is still false (d2 missing), etc.
	// Add the d<i> facts for even i only and check the alternation:
	// a1 false -> a2 needs d2 and ~a1: with d2 present, a2 true;
	// a3 needs d3 (absent) -> false.
	src := workload.KStrataProgram(3, 1) + "d2.\n"
	uni, cas, cp := buildBoth(t, src)
	if askBoth(t, uni, cas, cp, "a1") {
		t.Error("a1 should be false (no d1)")
	}
	if !askBoth(t, uni, cas, cp, "a2") {
		t.Error("a2 should be true (d2 and not a1)")
	}
	if askBoth(t, uni, cas, cp, "a3") {
		t.Error("a3 should be false (no d3)")
	}
}

// TestCascadeAgainstReference cross-checks cascade, uniform engine and the
// naive interpreter on every atom of linearly stratifiable fuzz programs.
func TestCascadeAgainstReference(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 20
	}
	checked := 0
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed + 5000)))
		src := workload.RandomStratifiedProgram(rng, workload.DefaultFuzz())
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		s, err := strat.Stratify(prog)
		if err != nil {
			continue // fuzz can produce non-linear programs; skip those
		}
		checked++
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			t.Fatal(err)
		}
		dom := ref.Domain(cp)
		ip := ref.New(cp)
		uni := NewUniform(cp, dom, topdown.Options{MaxGoals: 5_000_000})
		cas, err := NewCascade(cp, s, dom)
		if err != nil {
			t.Fatalf("seed %d: cascade: %v\n%s", seed, err, src)
		}
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 1 {
				continue
			}
			for _, cst := range dom {
				args := []symbols.Const{cst}
				want := ip.Holds(ip.Interner().ID(p, args), ip.EmptyState())
				gu, err := uni.Ask(uni.Interner().ID(p, args), uni.EmptyState())
				if err != nil {
					t.Fatalf("seed %d: uniform: %v", seed, err)
				}
				gc, err := cas.Ask(cas.Interner().ID(p, args), cas.EmptyState())
				if err != nil {
					t.Fatalf("seed %d: cascade: %v\n%s", seed, err, src)
				}
				if gu != want || gc != want {
					t.Errorf("seed %d: %s(%s): ref=%v uniform=%v cascade=%v\n%s",
						seed, cp.Syms.PredName(p), cp.Syms.ConstName(cst), want, gu, gc, src)
				}
			}
		}
	}
	if checked < iters/4 {
		t.Errorf("only %d/%d fuzz programs were linearly stratifiable; generator too hot", checked, iters)
	}
}

// TestCascadeDeletionFuzz cross-checks cascade, uniform engine and the
// reference interpreter on programs with hypothetical deletions.
func TestCascadeDeletionFuzz(t *testing.T) {
	iters := 80
	if testing.Short() {
		iters = 15
	}
	opts := workload.DefaultFuzz()
	opts.DelProb = 0.5
	checked := 0
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed + 12000)))
		src := workload.RandomStratifiedProgram(rng, opts)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		s, err := strat.Stratify(prog)
		if err != nil {
			continue
		}
		checked++
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			t.Fatal(err)
		}
		dom := ref.Domain(cp)
		ip := ref.New(cp)
		uni := NewUniform(cp, dom, topdown.Options{MaxGoals: 5_000_000})
		cas, err := NewCascade(cp, s, dom)
		if err != nil {
			t.Fatalf("seed %d: cascade: %v\n%s", seed, err, src)
		}
		for p := symbols.Pred(0); int(p) < cp.Syms.NumPreds(); p++ {
			if cp.Syms.PredArity(p) != 1 {
				continue
			}
			for _, cst := range dom {
				args := []symbols.Const{cst}
				want := ip.Holds(ip.Interner().ID(p, args), ip.EmptyState())
				gu, err := uni.Ask(uni.Interner().ID(p, args), uni.EmptyState())
				if err != nil {
					t.Fatalf("seed %d: uniform: %v\n%s", seed, err, src)
				}
				gc, err := cas.Ask(cas.Interner().ID(p, args), cas.EmptyState())
				if err != nil {
					t.Fatalf("seed %d: cascade: %v\n%s", seed, err, src)
				}
				if gu != want || gc != want {
					t.Errorf("seed %d: %s(%s): ref=%v uniform=%v cascade=%v\n%s",
						seed, cp.Syms.PredName(p), cp.Syms.ConstName(cst), want, gu, gc, src)
				}
			}
		}
	}
	if checked < iters/4 {
		t.Errorf("only %d/%d deletion fuzz programs were linearly stratifiable", checked, iters)
	}
}

func TestSolutions(t *testing.T) {
	src := `
		take(tony, his101).
		take(tony, eng201).
		take(mary, his101).
		grad(S) :- take(S, his101), take(S, eng201).
	`
	uni, cas, cp := buildBoth(t, src)
	pr, err := parser.ParsePremise("grad(S)[add: take(S, eng201)]")
	if err != nil {
		t.Fatal(err)
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, cp.Syms, vars, &names)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Asker{uni, cas} {
		sols, err := Solutions(a, cpr, len(names), a.EmptyState())
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, s := range sols {
			got[cp.Syms.ConstName(s[0])] = true
		}
		// Example 2's shape: everyone who could graduate with one more
		// course — tony (already can) and mary (his101 + hypothetical
		// eng201).
		if !got["tony"] || !got["mary"] || len(got) != 2 {
			t.Errorf("solutions = %v", got)
		}
	}
}

func TestSolutionsGroundQuery(t *testing.T) {
	uni, _, cp := buildBoth(t, "p(a).\nq(X) :- p(X).")
	pr, _ := parser.ParsePremise("q(a)")
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, cp.Syms, vars, &names)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := Solutions(uni, cpr, len(names), uni.EmptyState())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || len(sols[0]) != 0 {
		t.Errorf("ground query solutions = %v", sols)
	}
}
