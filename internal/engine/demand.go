package engine

import (
	"context"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/bottomup"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/magic"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// Demand is the demand-driven (magic-sets) evaluation mode: an Asker
// that answers ground goals by evaluating the magic-transformed program
// for the goal's predicate, seeded with the goal's arguments, and routes
// everything else — non-intensional goals, patterns the transform cannot
// restrict, out-of-scope subgoals reached during evaluation — to the
// full inner engine it wraps.
//
// The magic seed travels in the query state's hypothetical delta: asking
// p(ā) under state S evaluates the transformed program over S + the seed
// atom 'magic$p$b..b'(ā). The per-state materialisation cache of the
// underlying bottom-up prover therefore keys demand models by (state,
// seed) pairs with no extra bookkeeping, and hypothetical [add:]/[del:]
// contexts compose with demand for free — the effective delta and the
// seed are one delta.
//
// A Demand is engine-local and, like the engines it wraps, not safe for
// concurrent use; the transform/compile cache (magic.Set) is shared and
// concurrency-safe.
type Demand struct {
	inner Asker
	set   *magic.Set
	cp    *ast.CProgram
	base  *facts.DB
	in    *facts.Interner
	dom   []symbols.Const
	mets  *metrics.Set
	mem   *topdown.MemTracker

	// ctx is the cancellation source for oracle callbacks into the inner
	// engine, installed per public call (the provers poll their own).
	ctx context.Context

	pats map[symbols.Pred]*demandPattern
}

// demandPattern is one per-engine installed pattern: the shared compiled
// transform plus this engine's prover for it. comp.CP == nil marks an
// ineligible predicate (cached so the fallback decision is made once).
type demandPattern struct {
	comp *magic.Compiled
	pv   *bottomup.Prover
}

// NewDemand wraps an engine's asker in demand-driven evaluation. cp is
// the source program's compiled form (for intensionality checks), set
// the program's shared pattern cache.
func NewDemand(inner Asker, set *magic.Set, cp *ast.CProgram, mets *metrics.Set) *Demand {
	base := inner.EmptyState().Base
	return &Demand{
		inner: inner,
		set:   set,
		cp:    cp,
		base:  base,
		in:    base.Interner(),
		dom:   inner.Dom(),
		mets:  mets,
		pats:  map[symbols.Pred]*demandPattern{},
	}
}

// SetMem installs the engine's shared memory tracker on provers built
// from now on (call before use, as hypo does).
func (d *Demand) SetMem(t *topdown.MemTracker) { d.mem = t }

// Interner returns the shared atom interner.
func (d *Demand) Interner() *facts.Interner { return d.in }

// EmptyState returns the state of the unmodified base database.
func (d *Demand) EmptyState() facts.State { return facts.NewState(d.base) }

// Dom returns the active constant domain.
func (d *Demand) Dom() []symbols.Const { return d.dom }

// Ask answers a ground goal demand-driven.
func (d *Demand) Ask(goal facts.AtomID, st facts.State) (bool, error) {
	return d.AskCtx(nil, goal, st)
}

// AskCtx is Ask with cancellation.
func (d *Demand) AskCtx(ctx context.Context, goal facts.AtomID, st facts.State) (bool, error) {
	pat, err := d.pattern(d.in.Pred(goal))
	if err != nil {
		return false, err
	}
	if pat == nil {
		return d.inner.AskCtx(ctx, goal, st)
	}
	d.mets.MagicQueries.Inc()
	seed := d.in.ID(pat.comp.Seed, d.in.Args(goal))
	saved := d.ctx
	d.ctx = ctx
	defer func() { d.ctx = saved }()
	return pat.pv.HoldsCtx(ctx, goal, st.Add(seed))
}

// AskPremise evaluates one ground premise against a state.
func (d *Demand) AskPremise(p ast.CPremise, st facts.State) (bool, error) {
	return d.AskPremiseCtx(nil, p, st)
}

// AskPremiseCtx evaluates one ground premise — plain, negated, or
// hypothetical — routing the resulting ground goal through demand.
func (d *Demand) AskPremiseCtx(ctx context.Context, p ast.CPremise, st facts.State) (bool, error) {
	if !p.Atom.IsGround() {
		return d.inner.AskPremiseCtx(ctx, p, st)
	}
	switch p.Kind {
	case ast.Plain:
		return d.AskCtx(ctx, d.in.InternGround(p.Atom), st)
	case ast.Negated:
		ok, err := d.AskCtx(ctx, d.in.InternGround(p.Atom), st)
		return !ok, err
	case ast.Hyp:
		next := st
		for _, a := range p.Adds {
			if !a.IsGround() {
				return d.inner.AskPremiseCtx(ctx, p, st)
			}
			next = next.Add(d.in.InternGround(a))
		}
		for _, a := range p.Dels {
			if !a.IsGround() {
				return d.inner.AskPremiseCtx(ctx, p, st)
			}
			next = next.Del(d.in.InternGround(a))
		}
		return d.AskCtx(ctx, d.in.InternGround(p.Atom), next)
	default:
		return d.inner.AskPremiseCtx(ctx, p, st)
	}
}

// pattern returns the engine-local pattern for a predicate, installing
// it on first use, or nil when the predicate must fall back to the inner
// engine (extensional, degenerate transform, or compile failure).
func (d *Demand) pattern(pred symbols.Pred) (*demandPattern, error) {
	if pat, ok := d.pats[pred]; ok {
		if pat.comp == nil {
			return nil, nil
		}
		return pat, nil
	}
	if !d.cp.IDB[pred] {
		// Extensional goals are a state lookup either way; not a magic
		// fallback, just not demand's business.
		d.pats[pred] = &demandPattern{}
		return nil, nil
	}
	sig := ast.PredSig{Name: d.cp.Syms.PredName(pred), Arity: d.cp.Syms.PredArity(pred)}
	comp := d.set.For(sig)
	if !comp.Eligible() {
		d.mets.MagicFallbacks.Inc()
		d.pats[pred] = &demandPattern{}
		return nil, nil
	}
	pv, err := bottomup.New(comp.CP, d.base, d.dom, comp.RuleIdx, d.oracle)
	if err != nil {
		// The transformed program introduced no negation of its own, so
		// this should be unreachable; degrade to the full engine rather
		// than failing queries.
		d.mets.MagicFallbacks.Inc()
		d.pats[pred] = &demandPattern{}
		return nil, nil
	}
	pv.SetMem(d.mem)
	d.mets.MagicTransforms.Inc()
	pat := &demandPattern{comp: comp, pv: pv}
	d.pats[pred] = pat
	return pat, nil
}

// oracle answers out-of-scope subgoals with the full inner engine. The
// state it receives may carry magic seed atoms in its delta; user rules
// never mention magic predicates, so they are inert there (and make the
// inner memo keys demand-distinct for free).
func (d *Demand) oracle(goal facts.AtomID, st facts.State) (bool, error) {
	return d.inner.AskCtx(d.ctx, goal, st)
}

// Invalidate maintains the demand caches across a base-fact commit with
// the given affected-predicate cone. A pattern whose transformed rules
// mention a cone predicate may derive different answers now: its whole
// materialisation cache is dropped. Patterns disjoint from the cone keep
// their models, but entries whose state delta touches the committed
// atoms are dropped anyway — their state keys are no longer canonical
// against the new base.
func (d *Demand) Invalidate(cone map[symbols.Pred]bool, added, removed []facts.AtomID) {
	for _, pat := range d.pats {
		if pat.comp == nil || pat.pv == nil {
			continue
		}
		stale := false
		for _, m := range pat.comp.Mentioned {
			if cone[m] {
				stale = true
				break
			}
		}
		if stale {
			pat.pv.DropCache()
			d.mets.MagicInvalidations.Inc()
		} else {
			pat.pv.DropTouching(added, removed)
		}
	}
}

// InstalledRules returns the transformed rules of every pattern compiled
// for this program so far (across all engines sharing the Set), for
// dependency-graph extension in commit-cone computation.
func (d *Demand) InstalledRules() []ast.Rule { return d.set.Installed() }
