package strat

import (
	"hypodatalog/internal/ast"
	"hypodatalog/internal/depgraph"
)

// DemandScope computes the set of intensional predicates whose evaluation
// may soundly be restricted to query demand by a magic-sets rewrite
// (internal/magic). It is the extended-magic analogue of "don't peek
// below an unsafe stratum": demand may only flow through positive plain
// premises, because a predicate consulted under negation or inside a
// hypothetical `[add:]`/`[del:]` premise must be answered against its
// full (per-state) model, not a demanded slice of it.
//
// The scope is the greatest set S such that
//
//   - every predicate in S is defined (has at least one rule) and is
//     reachable from the query through positive plain premises of rules
//     whose heads are in S, and
//   - no rule whose head is in S consults a predicate of S through a
//     negated or hypothetical premise.
//
// computed as plain-positive forward reachability followed by iterated
// removal of negation/hypothesis targets until a fixpoint. Predicates
// outside the scope are left to the full engine (the magic rewrite
// routes them to its oracle), which keeps the rewrite sound: shrinking
// the scope never changes answers, only how much of the program enjoys
// demand restriction. The query itself may fall out of the scope (e.g.
// when it is consulted under negation by its own cone); callers must
// then fall back to full evaluation.
func DemandScope(p *ast.Program, query ast.PredSig) map[ast.PredSig]bool {
	g := depgraph.Build(p)
	qn, ok := g.NodeOf[query]
	if !ok || !g.Defined[qn] {
		return nil
	}
	scope := map[int]bool{qn: true}
	queue := []int{qn}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.Adj[n] {
			if e.Kind != depgraph.Pos || !g.Defined[e.To] || scope[e.To] {
				continue
			}
			scope[e.To] = true
			queue = append(queue, e.To)
		}
	}
	// A predicate negated (or hypothesised over) by an in-scope rule must
	// be evaluated in full; removing it can expose further removals, so
	// iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for n := range scope {
			for _, e := range g.Adj[n] {
				if e.Kind != depgraph.Pos && scope[e.To] {
					delete(scope, e.To)
					changed = true
				}
			}
		}
	}
	out := make(map[ast.PredSig]bool, len(scope))
	for n := range scope {
		out[g.Nodes[n]] = true
	}
	return out
}
