package strat

import (
	"strings"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/workload"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// example9 is the paper's Example 9: three strata, the i-th defining a_i.
const example9 = `
	a3 :- b3, a3[add: c3].
	a3 :- d3, not a2.
	a2 :- b2, a2[add: c2].
	a2 :- d2, not a1.
	a1 :- b1, a1[add: c1].
	a1 :- d1.
`

func TestExample9IsLinearlyStratified(t *testing.T) {
	p := parse(t, example9)
	s, err := Stratify(p)
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if s.NumStrata != 3 {
		t.Errorf("NumStrata = %d, want 3", s.NumStrata)
	}
	// Each a_i must be in stratum i and in an even (Σ) partition.
	for i, name := range []string{"a1", "a2", "a3"} {
		sig := ast.PredSig{Name: name, Arity: 0}
		if got := s.StratumOfPred(sig); got != i+1 {
			t.Errorf("stratum(%s) = %d, want %d", name, got, i+1)
		}
		if part := s.Part[sig]; part%2 != 0 {
			t.Errorf("partition(%s) = %d, want even (Σ part)", name, part)
		}
	}
}

// example10 is the paper's Example 10: H-stratified with two strata, but
// not linearly stratified (Σ2 contains a non-linear hypothetical rule).
const example10 = `
	a2 :- a2[add: e2], a2[add: f2].
	a2 :- not b2.
	b2 :- not c2, b2.
	c2 :- not d2, c2.
	d2 :- a1[add: g1].
	a1 :- a1[add: e1].
	a1 :- a1[add: f1].
	a1 :- not b1.
`

func TestExample10NotLinearButHStratified(t *testing.T) {
	p := parse(t, example10)
	_, err := Stratify(p)
	if err == nil {
		t.Fatal("Stratify(example 10) succeeded, want non-linearity error")
	}
	var nse *NotStratifiableError
	if e, ok := err.(*NotStratifiableError); ok {
		nse = e
	} else {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(nse.Reason, "non-linear") {
		t.Errorf("reason = %q, want non-linearity", nse.Reason)
	}
	// But it IS H-stratifiable.
	hs, err := HStratify(p)
	if err != nil {
		t.Fatalf("HStratify: %v", err)
	}
	if hs.NumStrata != 2 {
		t.Errorf("H-stratification strata = %d, want 2", hs.NumStrata)
	}
}

func TestRecursionThroughNegationRejected(t *testing.T) {
	p := parse(t, "a :- not b.\nb :- not a.\n")
	err := Check(p)
	if err == nil {
		t.Fatal("expected recursion-through-negation error")
	}
	if !strings.Contains(err.Error(), "negation") {
		t.Errorf("error = %v", err)
	}
	if err := CheckNegation(p); err == nil {
		t.Error("CheckNegation should also reject it")
	}
}

func TestIndirectNonLinearityRejected(t *testing.T) {
	// The paper's n+1 rule example after Definition 7: each rule looks
	// linear but together they imply the non-linear rule (2).
	src := `
		a :- b, d1, d2.
		d1 :- a[add: c1].
		d2 :- a[add: c2].
	`
	p := parse(t, src)
	if err := Check(p); err == nil {
		t.Fatal("expected non-linearity error for the indirect encoding")
	}
}

func TestDirectNonLinearHypRejected(t *testing.T) {
	// Rule form (2): two recursive hypothetical premises.
	p := parse(t, "a :- b, a[add: c1], a[add: c2].\na :- d.\n")
	if err := Check(p); err == nil {
		t.Fatal("expected non-linearity error for rule form (2)")
	}
}

func TestNonLinearHornIsFine(t *testing.T) {
	// Non-linear recursion WITHOUT hypothetical recursion is permitted
	// (it is ordinary Horn logic, still in P).
	src := `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, Z), path(Z, Y).
	`
	p := parse(t, src)
	s, err := Stratify(p)
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if s.NumStrata != 1 {
		t.Errorf("strata = %d, want 1", s.NumStrata)
	}
}

func TestLinearHypRecursionAccepted(t *testing.T) {
	// Mutual recursion with a single recursive premise per rule is linear
	// (e.g. Example 6's EVEN/ODD pair).
	p := parse(t, workload.ParityProgram(3))
	s, err := Stratify(p)
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	even := ast.PredSig{Name: "even", Arity: 0}
	odd := ast.PredSig{Name: "odd", Arity: 0}
	if s.CompOf[even] != s.CompOf[odd] {
		t.Error("even and odd should be mutually recursive")
	}
	// selectx is negated by the Σ rules, so it must live strictly below
	// the partition of even/odd.
	sel := ast.PredSig{Name: "selectx", Arity: 1}
	if s.Part[sel] >= s.Part[even] {
		t.Errorf("part(selectx)=%d not below part(even)=%d", s.Part[sel], s.Part[even])
	}
}

func TestHamiltonianIsOneStratum(t *testing.T) {
	g := workload.Digraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}
	p := parse(t, workload.HamiltonianProgram(g))
	s, err := Stratify(p)
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	// yes is NP (stratum 1); no = ~yes needs the next Δ, i.e. stratum 2.
	yes := ast.PredSig{Name: "yes", Arity: 0}
	no := ast.PredSig{Name: "no", Arity: 0}
	if s.StratumOfPred(yes) != 1 {
		t.Errorf("stratum(yes) = %d, want 1", s.StratumOfPred(yes))
	}
	if s.StratumOfPred(no) != 2 {
		t.Errorf("stratum(no) = %d, want 2", s.StratumOfPred(no))
	}
}

func TestKStrataProgramHasKStrata(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7} {
		p := parse(t, workload.KStrataProgram(k, 2))
		s, err := Stratify(p)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if s.NumStrata != k {
			t.Errorf("k=%d: NumStrata = %d", k, s.NumStrata)
		}
	}
}

func TestDeltaSigmaPartition(t *testing.T) {
	p := parse(t, example9)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every rule must appear in exactly one of Delta/Sigma.
	seen := map[int]bool{}
	for _, grp := range append(append([][]int{}, s.Delta...), s.Sigma...) {
		for _, ri := range grp {
			if seen[ri] {
				t.Errorf("rule %d in two groups", ri)
			}
			seen[ri] = true
		}
	}
	if len(seen) != len(p.Rules) {
		t.Errorf("partitioned %d of %d rules", len(seen), len(p.Rules))
	}
	// Hypothetical rules must land in Σ parts (even partitions).
	for ri, r := range p.Rules {
		hyp := false
		for _, pr := range r.Body {
			if pr.Kind == ast.Hyp {
				hyp = true
			}
		}
		if hyp && s.RulePart[ri]%2 != 0 {
			t.Errorf("hypothetical rule %q in odd partition %d", r.String(), s.RulePart[ri])
		}
	}
}

func TestStratificationSatisfiesDefinition6(t *testing.T) {
	// Property: the computed partition satisfies the Definition 6
	// constraints on several generated programs.
	srcs := []string{
		example9,
		workload.ParityProgram(4),
		workload.KStrataProgram(5, 3),
		workload.ChainProgram(4),
		workload.OrderLoopProgram(4),
	}
	for _, src := range srcs {
		p := parse(t, src)
		s, err := Stratify(p)
		if err != nil {
			t.Fatalf("Stratify: %v\n%s", err, src)
		}
		verifyDefinition6(t, p, s, src)
	}
}

// verifyDefinition6 checks the H-stratification constraints directly.
func verifyDefinition6(t *testing.T, p *ast.Program, s *Stratification, src string) {
	t.Helper()
	defined := map[ast.PredSig]bool{}
	for _, r := range p.Rules {
		defined[ast.PredSig{Name: r.Head.Pred, Arity: r.Head.Arity()}] = true
	}
	for ri, r := range p.Rules {
		h := s.RulePart[ri]
		for _, pr := range r.Body {
			sig := ast.PredSig{Name: pr.Atom.Pred, Arity: pr.Atom.Arity()}
			if !defined[sig] {
				continue
			}
			b := s.Part[sig]
			switch pr.Kind {
			case ast.Plain:
				if b > h {
					t.Errorf("%s: positive %s at part %d above rule part %d\n%s", r, sig, b, h, src)
				}
			case ast.Negated:
				if b > h || (h%2 == 0 && b == h) {
					t.Errorf("%s: negative %s at part %d violates even rule part %d\n%s", r, sig, b, h, src)
				}
			case ast.Hyp:
				if b > h || (h%2 == 1 && b == h) {
					t.Errorf("%s: hypothetical %s at part %d violates odd rule part %d\n%s", r, sig, b, h, src)
				}
			}
		}
	}
}

func TestIterationsPolynomial(t *testing.T) {
	// Lemma 1: the relaxation terminates in O(m^2) outer iterations; on
	// the synthetic k-strata family it should stay near k.
	for _, k := range []int{2, 8, 32} {
		p := parse(t, workload.KStrataProgram(k, 2))
		s, err := Stratify(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Iterations > 4*k+4 {
			t.Errorf("k=%d: %d iterations, suspiciously high", k, s.Iterations)
		}
	}
}
