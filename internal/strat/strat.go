// Package strat implements linear stratification (section 4 of the paper).
//
// It provides the two polynomial-time decidability tests of Lemma 1 —
// (i) no equivalence class of mutually recursive predicates has recursion
// through negation, and (ii) no class has both hypothetical recursion and
// non-linear recursion — and the relaxation algorithm that assigns each
// predicate a partition number satisfying Definition 6 (H-stratification).
// Partitions are grouped into strata per Definition 7: partition 2i-1 is
// Δ_i (the Horn-with-negation lower part of stratum i) and partition 2i is
// Σ_i (the linear-hypothetical upper part).
package strat

import (
	"fmt"
	"sort"
	"strings"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/depgraph"
)

// NotStratifiableError reports why a program has no linear stratification.
type NotStratifiableError struct {
	Reason string        // human-readable failure class
	Preds  []ast.PredSig // the offending equivalence class
	Lines  []int         // source lines of the offending rules, if known
}

func (e *NotStratifiableError) Error() string {
	names := make([]string, len(e.Preds))
	for i, p := range e.Preds {
		names[i] = p.String()
	}
	msg := fmt.Sprintf("not linearly stratifiable: %s in {%s}", e.Reason, strings.Join(names, ", "))
	if len(e.Lines) > 0 {
		var ls []string
		for _, l := range e.Lines {
			if l > 0 {
				ls = append(ls, fmt.Sprintf("%d", l))
			}
		}
		if len(ls) > 0 {
			msg += " (rules at line " + strings.Join(ls, ", ") + ")"
		}
	}
	return msg
}

// Stratification is the result of a successful analysis.
type Stratification struct {
	// Part assigns every defined predicate its partition number (1-based).
	// Predicates with no defining rules (extensional) get partition 1.
	Part map[ast.PredSig]int
	// RulePart[r] is the partition of rule r (the partition of its head).
	RulePart []int
	// NumParts is the highest partition number in use.
	NumParts int
	// NumStrata is the number of strata k = ceil(NumParts/2); the program
	// is data-complete for Σ_k^P by Theorem 1.
	NumStrata int
	// Delta[i] and Sigma[i] list the rule indexes in Δ_{i+1} and Σ_{i+1}.
	Delta [][]int
	Sigma [][]int
	// Comps are the mutual-recursion equivalence classes; CompOf maps each
	// predicate to its class index.
	Comps  [][]ast.PredSig
	CompOf map[ast.PredSig]int
	// Iterations counts outer passes of the relaxation algorithm, for the
	// Lemma 1 complexity experiment.
	Iterations int
}

// StratumOfPred returns the 1-based stratum of a predicate (partitions
// 2i-1 and 2i form stratum i). Extensional predicates are in stratum 1.
func (s *Stratification) StratumOfPred(p ast.PredSig) int {
	part, ok := s.Part[p]
	if !ok || part <= 0 {
		return 1
	}
	return (part + 1) / 2
}

// Check runs the two Lemma 1 tests on a program. A nil error means the
// program is linearly stratifiable.
func Check(p *ast.Program) error {
	g := depgraph.Build(p)
	comps, compOf := g.SCCs()
	return check(p, g, comps, compOf)
}

// CheckNegation runs only the first Lemma 1 test: no recursion through
// negation. This is the condition required for the program's semantics to
// be well defined at all (section 3.1); linear stratifiability (the full
// Check) additionally bounds the data-complexity but is not needed for
// evaluation. Example 3 of the paper, for instance, passes CheckNegation
// but not Check.
func CheckNegation(p *ast.Program) error {
	g := depgraph.Build(p)
	comps, compOf := g.SCCs()
	for from, edges := range g.Adj {
		for _, e := range edges {
			if e.Kind == depgraph.Neg && compOf[e.To] == compOf[from] {
				return &NotStratifiableError{
					Reason: "recursion through negation",
					Preds:  compSigs(g, comps[compOf[from]]),
					Lines:  []int{p.Rules[e.Rule].Line},
				}
			}
		}
	}
	return nil
}

func check(p *ast.Program, g *depgraph.Graph, comps [][]int, compOf []int) error {
	// Test 1: recursion through negation — a negative edge inside an SCC.
	for from, edges := range g.Adj {
		for _, e := range edges {
			if e.Kind == depgraph.Neg && compOf[e.To] == compOf[from] {
				return &NotStratifiableError{
					Reason: "recursion through negation",
					Preds:  compSigs(g, comps[compOf[from]]),
					Lines:  []int{p.Rules[e.Rule].Line},
				}
			}
		}
	}
	// Test 2: an SCC with both hypothetical recursion and non-linear
	// recursion. A rule is recursive iff its premises mention >= 1
	// predicate mutually recursive with its head; non-linear iff >= 2
	// (Definition 8).
	hypRec := make([]bool, len(comps))
	hypLine := make([]int, len(comps))
	for from, edges := range g.Adj {
		for _, e := range edges {
			if e.Kind == depgraph.Hyp && compOf[e.To] == compOf[from] {
				c := compOf[from]
				if !hypRec[c] {
					hypRec[c] = true
					hypLine[c] = p.Rules[e.Rule].Line
				}
			}
		}
	}
	for ri, r := range p.Rules {
		h := g.RuleNode[ri]
		c := compOf[h]
		count := 0
		for _, pr := range r.Body {
			sig := ast.PredSig{Name: pr.Atom.Pred, Arity: pr.Atom.Arity()}
			n, ok := g.NodeOf[sig]
			if ok && compOf[n] == c {
				count++
			}
		}
		if count >= 2 && hypRec[c] {
			return &NotStratifiableError{
				Reason: "equivalence class has both hypothetical recursion and non-linear recursion",
				Preds:  compSigs(g, comps[c]),
				Lines:  []int{r.Line, hypLine[c]},
			}
		}
	}
	return nil
}

func compSigs(g *depgraph.Graph, comp []int) []ast.PredSig {
	out := make([]ast.PredSig, len(comp))
	for i, n := range comp {
		out[i] = g.Nodes[n]
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Stratify checks the program and, if it is linearly stratifiable, runs
// the paper's relaxation algorithm to compute a concrete stratification.
func Stratify(p *ast.Program) (*Stratification, error) {
	g := depgraph.Build(p)
	comps, compOf := g.SCCs()
	if err := check(p, g, comps, compOf); err != nil {
		return nil, err
	}
	s, err := relax(p, g, maxPartsBound(g))
	if err != nil {
		return nil, err
	}
	s.Comps = make([][]ast.PredSig, len(comps))
	s.CompOf = make(map[ast.PredSig]int, len(g.Nodes))
	for ci, comp := range comps {
		s.Comps[ci] = compSigs(g, comp)
		for _, n := range comp {
			s.CompOf[g.Nodes[n]] = ci
		}
	}
	return s, nil
}

// HStratify runs only the relaxation of Definition 6, without the
// linearity and negation tests. It succeeds on programs that are
// H-stratified but not linearly stratified (e.g. Example 10 of the paper)
// and fails when no H-stratification exists (the partition numbers would
// grow without bound, detected by the safety cap).
func HStratify(p *ast.Program) (*Stratification, error) {
	g := depgraph.Build(p)
	return relax(p, g, maxPartsBound(g))
}

// maxPartsBound is a safe upper bound on partition numbers: in the worst
// case each defined predicate occupies its own partition and parity
// adjustment can add one more level per predicate.
func maxPartsBound(g *depgraph.Graph) int {
	defined := 0
	for _, d := range g.Defined {
		if d {
			defined++
		}
	}
	return 2*defined + 2
}

// relax runs the paper's relaxation algorithm:
//
//	assign every predicate partition 1;
//	do until nothing changes:
//	  for each predicate P: if part(P) violates Definition 6, increment it.
//
// The Definition 6 conditions, phrased as requirements on the partition h
// of a rule's head given the partition b of an occurring defined predicate:
//
//	positive occurrence:      h >= b
//	negative occurrence:      h >= b, and if h is even then h > b
//	hypothetical occurrence:  h >= b, and if h is odd  then h > b
//
// (Negation inside an odd partition is permitted because Definition 9
// separately requires each Δ_i to have stratified negation, which test 1
// has already established; likewise hypothetical recursion inside an even
// partition is covered by the linearity test.)
func relax(p *ast.Program, g *depgraph.Graph, cap int) (*Stratification, error) {
	n := len(g.Nodes)
	part := make([]int, n)
	for i := range part {
		part[i] = 1
	}
	iters := 0
	for changed := true; changed; {
		changed = false
		iters++
		for node := 0; node < n; node++ {
			if !g.Defined[node] {
				continue
			}
			if violates(g, part, node) {
				part[node]++
				if part[node] > cap {
					return nil, &NotStratifiableError{
						Reason: "no H-stratification exists (partition numbers diverge)",
						Preds:  []ast.PredSig{g.Nodes[node]},
					}
				}
				changed = true
			}
		}
	}
	s := &Stratification{
		Part:       make(map[ast.PredSig]int, n),
		RulePart:   make([]int, len(p.Rules)),
		Iterations: iters,
	}
	for i, sig := range g.Nodes {
		s.Part[sig] = part[i]
		if part[i] > s.NumParts {
			s.NumParts = part[i]
		}
	}
	s.NumStrata = (s.NumParts + 1) / 2
	s.Delta = make([][]int, s.NumStrata)
	s.Sigma = make([][]int, s.NumStrata)
	for ri := range p.Rules {
		h := part[g.RuleNode[ri]]
		s.RulePart[ri] = h
		stratum := (h + 1) / 2 // partitions 2i-1,2i -> stratum i
		if h%2 == 1 {
			s.Delta[stratum-1] = append(s.Delta[stratum-1], ri)
		} else {
			s.Sigma[stratum-1] = append(s.Sigma[stratum-1], ri)
		}
	}
	return s, nil
}

// violates reports whether the current partition of node's definition
// breaks Definition 6 for any rule defining it.
func violates(g *depgraph.Graph, part []int, node int) bool {
	h := part[node]
	for _, e := range g.Adj[node] {
		if !g.Defined[e.To] {
			continue // empty definition is contained in every prefix
		}
		b := part[e.To]
		switch e.Kind {
		case depgraph.Pos:
			if h < b {
				return true
			}
		case depgraph.Neg:
			if h < b || (h%2 == 0 && h == b) {
				return true
			}
		case depgraph.Hyp:
			if h < b || (h%2 == 1 && h == b) {
				return true
			}
		}
	}
	return false
}
