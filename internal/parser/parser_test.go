package parser

import (
	"strings"
	"testing"

	"hypodatalog/internal/ast"
)

func TestParseFactsAndRules(t *testing.T) {
	prog, err := Parse(`
		take(tony, cs250).
		grad(S) :- take(S, his101), take(S, eng201).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 1 || len(prog.Rules) != 1 {
		t.Fatalf("facts=%d rules=%d, want 1/1", len(prog.Facts), len(prog.Rules))
	}
	if got := prog.Facts[0].String(); got != "take(tony, cs250)" {
		t.Errorf("fact = %q", got)
	}
	if got := prog.Rules[0].String(); got != "grad(S) :- take(S, his101), take(S, eng201)." {
		t.Errorf("rule = %q", got)
	}
}

func TestParseHypotheticalPremise(t *testing.T) {
	r, err := ParseRule("within1(S, D) :- grad(S, D)[add: take(S, C)].")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 1 {
		t.Fatalf("body len %d", len(r.Body))
	}
	p := r.Body[0]
	if p.Kind != ast.Hyp {
		t.Fatalf("kind = %v, want Hyp", p.Kind)
	}
	if p.Atom.Pred != "grad" || len(p.Adds) != 1 || p.Adds[0].Pred != "take" {
		t.Fatalf("premise = %v", p)
	}
}

func TestParseMultipleAdds(t *testing.T) {
	r, err := ParseRule("a(T) :- accept(T)[add: control(T), cell(T), cell2(T)].")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body[0].Adds) != 3 {
		t.Fatalf("adds = %d, want 3", len(r.Body[0].Adds))
	}
}

func TestParseDeletions(t *testing.T) {
	r, err := ParseRule("goal :- sub[add: a(X)][del: b(X), c].")
	if err != nil {
		t.Fatal(err)
	}
	pr := r.Body[0]
	if pr.Kind != ast.Hyp || len(pr.Adds) != 1 || len(pr.Dels) != 2 {
		t.Fatalf("premise = %v (adds=%d dels=%d)", pr, len(pr.Adds), len(pr.Dels))
	}
	// del-only premise.
	r2, err := ParseRule("goal :- sub[del: b].")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Body[0].Kind != ast.Hyp || len(r2.Body[0].Dels) != 1 || len(r2.Body[0].Adds) != 0 {
		t.Fatalf("premise = %v", r2.Body[0])
	}
	// Order [del][add] also accepted; round-trips via String.
	r3, err := ParseRule("goal :- sub[del: b][add: a].")
	if err != nil {
		t.Fatal(err)
	}
	if got := r3.String(); got != "goal :- sub[add: a][del: b]." {
		t.Errorf("canonical form = %q", got)
	}
}

func TestParseNegation(t *testing.T) {
	r, err := ParseRule("select(Y) :- node(Y), not pnode(Y).")
	if err != nil {
		t.Fatal(err)
	}
	if r.Body[1].Kind != ast.Negated {
		t.Fatalf("kind = %v", r.Body[1].Kind)
	}
	// Tilde form is equivalent.
	r2, err := ParseRule("select(Y) :- node(Y), ~pnode(Y).")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Body[1].Kind != ast.Negated {
		t.Fatalf("~ kind = %v", r2.Body[1].Kind)
	}
}

func TestParseNegatedHypothetical(t *testing.T) {
	r, err := ParseRule("a :- not b[add: c].")
	if err != nil {
		t.Fatal(err)
	}
	if r.Body[0].Kind != ast.NegHyp {
		t.Fatalf("kind = %v, want NegHyp", r.Body[0].Kind)
	}
}

func TestParseQuery(t *testing.T) {
	prog, err := Parse("?- grad(tony)[add: take(tony, cs452)].")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Queries) != 1 || prog.Queries[0].Kind != ast.Hyp {
		t.Fatalf("queries = %v", prog.Queries)
	}
}

func TestParseZeroArity(t *testing.T) {
	prog, err := Parse("even :- not select.\nyes.\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 1 || prog.Facts[0].Pred != "yes" {
		t.Fatalf("facts = %v", prog.Facts)
	}
	if prog.Rules[0].Head.Pred != "even" || prog.Rules[0].Head.Arity() != 0 {
		t.Fatalf("rule head = %v", prog.Rules[0].Head)
	}
}

func TestNonGroundBodilessClauseIsRule(t *testing.T) {
	prog, err := Parse("p(X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 || len(prog.Facts) != 0 {
		t.Fatalf("rules=%d facts=%d, want rule", len(prog.Rules), len(prog.Facts))
	}
}

func TestRoundTrip(t *testing.T) {
	src := `edge(a, b).
node(a).
path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
path(X) :- not select(Y).
select(Y) :- node(Y), not pnode(Y).
?- yes.
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, prog.String())
	}
	if prog.String() != prog2.String() {
		t.Fatalf("round trip mismatch:\n%s\n---\n%s", prog.String(), prog2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(",
		"p :- q",            // missing period
		"p :- q[sub: r].",   // wrong keyword
		"p :- q[add: ].",    // empty add list
		":- p.",             // missing head
		"p :- .",            // empty body
		"P(x).",             // variable as predicate: parse error
		"p(a) q(b).",        // missing separator
		"p :- q[add: r(X)]", // missing final period
		"?- p(a)",           // unterminated query
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("p.\nq :- r(.\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q lacks line info", err)
	}
}

func TestParseAtomAndPremiseHelpers(t *testing.T) {
	a, err := ParseAtom("edge(a, B)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred != "edge" || !a.Args[1].IsVar {
		t.Fatalf("atom = %v", a)
	}
	p, err := ParsePremise("grad(S)[add: take(S, C)]")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != ast.Hyp {
		t.Fatalf("premise = %v", p)
	}
	if _, err := ParseAtom("edge(a) trailing"); err == nil {
		t.Error("expected trailing-input error")
	}
}
