// Package parser parses the hypothetical Datalog surface syntax into an
// ast.Program.
//
// Grammar (comments run from % or // to end of line):
//
//	program   := clause*
//	clause    := '?-' premise '.'                  (query)
//	           | atom ':-' premise (',' premise)* '.'   (rule)
//	           | atom '.'                           (fact if ground,
//	                                                 unconditional rule otherwise)
//	premise   := ('not' | '~')? atom modifier*
//	modifier  := '[' ('add' | 'del') ':' atom (',' atom)* ']'
//	atom      := ident [ '(' term (',' term)* ')' ]
//	term      := ident | variable | integer
//
// Identifiers start with a lower-case letter (or are quoted, or integers)
// and denote predicate/constant symbols; variables start with an upper-case
// letter or underscore.
package parser

import (
	"fmt"
	"os"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/lexer"
)

// Error is a syntax error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks []lexer.Token
	pos  int
}

// Parse parses a full program from source text.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokens(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for p.peek().Kind != lexer.EOF {
		if err := p.clause(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// ParseFile parses a program from a file on disk.
func ParseFile(path string) (*ast.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return prog, nil
}

// ParseRule parses a single rule (or fact) from text, without the program
// wrapper. The trailing period is required.
func ParseRule(src string) (ast.Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return ast.Rule{}, err
	}
	switch {
	case len(prog.Rules) == 1 && len(prog.Facts) == 0 && len(prog.Queries) == 0:
		return prog.Rules[0], nil
	case len(prog.Facts) == 1 && len(prog.Rules) == 0 && len(prog.Queries) == 0:
		return ast.Rule{Head: prog.Facts[0]}, nil
	default:
		return ast.Rule{}, fmt.Errorf("parser: expected exactly one rule in %q", src)
	}
}

// ParseAtom parses a single atom (no trailing period).
func ParseAtom(src string) (ast.Atom, error) {
	toks, err := lexer.Tokens(src)
	if err != nil {
		return ast.Atom{}, err
	}
	p := &parser{toks: toks}
	a, err := p.atom()
	if err != nil {
		return ast.Atom{}, err
	}
	if p.peek().Kind != lexer.EOF {
		return ast.Atom{}, p.errHere("trailing input after atom")
	}
	return a, nil
}

// ParsePremise parses a single premise such as "p(X)[add: q(X)]" or
// "not p(X)" (no trailing period).
func ParsePremise(src string) (ast.Premise, error) {
	toks, err := lexer.Tokens(src)
	if err != nil {
		return ast.Premise{}, err
	}
	p := &parser{toks: toks}
	pr, err := p.premise()
	if err != nil {
		return ast.Premise{}, err
	}
	if p.peek().Kind != lexer.EOF {
		return ast.Premise{}, p.errHere("trailing input after premise")
	}
	return pr, nil
}

func (p *parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, &Error{t.Line, t.Col, fmt.Sprintf("expected %s, found %s", k, t)}
	}
	return p.next(), nil
}

func (p *parser) errHere(msg string) error {
	t := p.peek()
	return &Error{t.Line, t.Col, msg}
}

func (p *parser) clause(prog *ast.Program) error {
	if p.peek().Kind == lexer.Query {
		p.next()
		pr, err := p.premise()
		if err != nil {
			return err
		}
		if _, err := p.expect(lexer.Period); err != nil {
			return err
		}
		prog.Queries = append(prog.Queries, pr)
		return nil
	}
	startLine := p.peek().Line
	head, err := p.atom()
	if err != nil {
		return err
	}
	switch p.peek().Kind {
	case lexer.Period:
		p.next()
		if head.IsGround() {
			prog.Facts = append(prog.Facts, head)
		} else {
			prog.Rules = append(prog.Rules, ast.Rule{Head: head, Line: startLine})
		}
		return nil
	case lexer.Implies:
		p.next()
		var body []ast.Premise
		for {
			pr, err := p.premise()
			if err != nil {
				return err
			}
			body = append(body, pr)
			if p.peek().Kind != lexer.Comma {
				break
			}
			p.next()
		}
		if _, err := p.expect(lexer.Period); err != nil {
			return err
		}
		prog.Rules = append(prog.Rules, ast.Rule{Head: head, Body: body, Line: startLine})
		return nil
	default:
		return p.errHere(fmt.Sprintf("expected '.' or ':-' after %s", head))
	}
}

// premise := ('not'|'~')? atom ('[' ('add'|'del') ':' atomList ']')*
func (p *parser) premise() (ast.Premise, error) {
	neg := false
	if p.peek().Kind == lexer.Not {
		neg = true
		p.next()
	}
	a, err := p.atom()
	if err != nil {
		return ast.Premise{}, err
	}
	pr := ast.Premise{Kind: ast.Plain, Atom: a}
	for p.peek().Kind == lexer.LBracket {
		p.next()
		kw, err := p.expect(lexer.Ident)
		if err != nil {
			return ast.Premise{}, err
		}
		if kw.Text != "add" && kw.Text != "del" {
			return ast.Premise{}, &Error{kw.Line, kw.Col,
				fmt.Sprintf("expected 'add' or 'del' inside hypothetical premise, found %q", kw.Text)}
		}
		if _, err := p.expect(lexer.Colon); err != nil {
			return ast.Premise{}, err
		}
		for {
			atom, err := p.atom()
			if err != nil {
				return ast.Premise{}, err
			}
			if kw.Text == "add" {
				pr.Adds = append(pr.Adds, atom)
			} else {
				pr.Dels = append(pr.Dels, atom)
			}
			if p.peek().Kind != lexer.Comma {
				break
			}
			p.next()
		}
		if _, err := p.expect(lexer.RBracket); err != nil {
			return ast.Premise{}, err
		}
		pr.Kind = ast.Hyp
	}
	if neg {
		if pr.Kind == ast.Hyp {
			pr.Kind = ast.NegHyp
		} else {
			pr.Kind = ast.Negated
		}
	}
	return pr, nil
}

func (p *parser) atom() (ast.Atom, error) {
	t := p.peek()
	var name string
	switch t.Kind {
	case lexer.Ident, lexer.Int:
		name = t.Text
		p.next()
	default:
		return ast.Atom{}, &Error{t.Line, t.Col,
			fmt.Sprintf("expected predicate symbol, found %s", t)}
	}
	a := ast.Atom{Pred: name}
	if p.peek().Kind != lexer.LParen {
		return a, nil
	}
	p.next()
	for {
		tm, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		a.Args = append(a.Args, tm)
		if p.peek().Kind != lexer.Comma {
			break
		}
		p.next()
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return ast.Atom{}, err
	}
	return a, nil
}

func (p *parser) term() (ast.Term, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.Ident, lexer.Int:
		p.next()
		return ast.Const(t.Text), nil
	case lexer.Variable:
		p.next()
		return ast.Var(t.Text), nil
	default:
		return ast.Term{}, &Error{t.Line, t.Col,
			fmt.Sprintf("expected term, found %s", t)}
	}
}
