package parser

import (
	"testing"

	"hypodatalog/internal/workload"
)

// FuzzParse checks parser robustness: arbitrary input never panics, and
// anything that parses round-trips through the printer to an equivalent
// program (print → parse → print is a fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(a).",
		"grad(S) :- take(S, his101), take(S, eng201).",
		"a :- b[add: c, d(X)][del: e].",
		"even :- not selectx(X).",
		"?- grad(tony)[add: take(tony, cs452)].",
		"p('quoted atom', 0, X) :- q(_Y), ~r.",
		"% comment\np. // another\n",
		workload.ParityProgram(2),
		"p(", ":-", "a :- b[add:].", "?x", "3abc", "'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := prog.String()
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if prog2.String() != printed {
			t.Fatalf("print->parse->print not a fixpoint:\nfirst:  %q\nsecond: %q", printed, prog2.String())
		}
	})
}
