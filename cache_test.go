package hypo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"hypodatalog/internal/metrics"
)

const cacheTestSrc = `
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
`

func cacheTestPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	prog, err := Parse(cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPool(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pl.Close() })
	return pl
}

func TestPoolCacheHitServesWithoutEngine(t *testing.T) {
	// Uniform mode, because only the top-down engine reports goal counts
	// — and a zero-goal hit is exactly what this test is after.
	pl := cacheTestPool(t, Options{CacheBytes: 1 << 20, Mode: ModeUniform})
	ok, info, err := pl.AskInfoCtx(context.Background(), "path(a, d)")
	if err != nil || !ok {
		t.Fatalf("first ask: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheMiss {
		t.Fatalf("first ask served %v, want miss", info.Cache)
	}
	if info.Stats.Goals == 0 {
		t.Fatal("miss reported zero evaluation work")
	}
	ok, info, err = pl.AskInfoCtx(context.Background(), "path(a, d)")
	if err != nil || !ok {
		t.Fatalf("second ask: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheHit {
		t.Fatalf("second ask served %v, want hit", info.Cache)
	}
	if info.Stats.Goals != 0 {
		t.Fatalf("hit reported %d goals of work, want 0", info.Stats.Goals)
	}
}

func TestPoolCacheBypassWithoutBudget(t *testing.T) {
	pl := cacheTestPool(t, Options{})
	for i := 0; i < 2; i++ {
		ok, info, err := pl.AskInfoCtx(context.Background(), "path(a, d)")
		if err != nil || !ok {
			t.Fatalf("ask %d: ok=%v err=%v", i, ok, err)
		}
		if info.Cache != CacheBypass {
			t.Fatalf("ask %d served %v, want bypass", i, info.Cache)
		}
	}
}

func TestPoolCacheKeyDistinguishesOperations(t *testing.T) {
	pl := cacheTestPool(t, Options{CacheBytes: 1 << 20})
	ctx := context.Background()
	if ok, _, err := pl.AskInfoCtx(ctx, "path(a, d)"); err != nil || !ok {
		t.Fatalf("ask: %v %v", ok, err)
	}
	// Same text through AskUnder with no overlapping key: both must be
	// misses on first use, not cross-served.
	ok, info, err := pl.AskUnderInfoCtx(ctx, "path(a, d)", "edge(d, a)")
	if err != nil || !ok {
		t.Fatalf("askunder: %v %v", ok, err)
	}
	if info.Cache != CacheMiss {
		t.Fatalf("askunder served %v, want its own miss", info.Cache)
	}
	// Add order must not matter: a permutation is the same key.
	if _, info, err = pl.AskUnderInfoCtx(ctx, "path(a, d)", "edge(d, a)", "edge(c, a)"); err != nil || info.Cache != CacheMiss {
		t.Fatalf("two adds: %v %v", info.Cache, err)
	}
	if _, info, err = pl.AskUnderInfoCtx(ctx, "path(a, d)", "edge(c, a)", "edge(d, a)"); err != nil || info.Cache != CacheHit {
		t.Fatalf("permuted adds served %v, want hit", info.Cache)
	}
}

// TestPoolCacheSingleflight holds the pool's only engine hostage, fires K
// identical asks, and asserts the whole burst costs exactly one engine
// lease: one miss evaluates, everyone else shares its answer.
func TestPoolCacheSingleflight(t *testing.T) {
	pl := cacheTestPool(t, Options{PoolSize: 1, CacheBytes: 1 << 20})
	hold := make(chan struct{})
	held := make(chan struct{})
	doDone := make(chan error, 1)
	go func() {
		doDone <- pl.Do(context.Background(), func(e *Engine) error {
			close(held)
			<-hold
			return nil
		})
	}()
	<-held

	leases0 := metrics.Default.PoolGets.Value() + metrics.Default.PoolNews.Value()
	const K = 12
	var wg sync.WaitGroup
	oks := make([]bool, K)
	infos := make([]ReadInfo, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oks[i], infos[i], errs[i] = pl.AskInfoCtx(context.Background(), "path(a, d)")
		}(i)
	}
	// Let the burst queue up against the held engine, then release it.
	time.Sleep(50 * time.Millisecond)
	close(hold)
	wg.Wait()
	if err := <-doDone; err != nil {
		t.Fatal(err)
	}

	if leases := metrics.Default.PoolGets.Value() + metrics.Default.PoolNews.Value() - leases0; leases != 1 {
		t.Fatalf("%d engine leases for %d identical queries, want 1", leases, K)
	}
	misses := 0
	for i := 0; i < K; i++ {
		if errs[i] != nil || !oks[i] {
			t.Fatalf("caller %d: ok=%v err=%v", i, oks[i], errs[i])
		}
		switch infos[i].Cache {
		case CacheMiss:
			misses++
		case CacheHit, CacheCoalesced:
		default:
			t.Fatalf("caller %d served %v", i, infos[i].Cache)
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1", misses)
	}
}

// TestPoolCacheCanceledWaiter cancels one caller of a coalesced pair
// mid-wait: it must fail with ErrCanceled while the surviving caller —
// and every later one — still gets the correct answer (no poisoning).
func TestPoolCacheCanceledWaiter(t *testing.T) {
	pl := cacheTestPool(t, Options{PoolSize: 1, CacheBytes: 1 << 20})
	hold := make(chan struct{})
	held := make(chan struct{})
	go func() {
		_ = pl.Do(context.Background(), func(e *Engine) error {
			close(held)
			<-hold
			return nil
		})
	}()
	<-held

	survivor := make(chan error, 1)
	go func() {
		ok, _, err := pl.AskInfoCtx(context.Background(), "path(a, d)")
		if err == nil && !ok {
			err = errors.New("survivor got wrong answer")
		}
		survivor <- err
	}()

	wctx, wcancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, _, err := pl.AskInfoCtx(wctx, "path(a, d)")
		waiter <- err
	}()
	time.Sleep(30 * time.Millisecond)
	wcancel()
	if err := <-waiter; !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled caller got %v, want ErrCanceled", err)
	}

	close(hold)
	if err := <-survivor; err != nil {
		t.Fatalf("surviving caller: %v", err)
	}
	ok, info, err := pl.AskInfoCtx(context.Background(), "path(a, d)")
	if err != nil || !ok {
		t.Fatalf("after cancellation: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheHit {
		t.Fatalf("after cancellation served %v, want hit (entry must not be poisoned)", info.Cache)
	}
}

// TestPoolQueryEachYieldErrorWithCache is the regression test for the
// cached streaming path: an error returned by yield must abort the
// enumeration and surface verbatim — not be swallowed by the
// materialisation — and the partial set must not be cached.
func TestPoolQueryEachYieldErrorWithCache(t *testing.T) {
	pl := cacheTestPool(t, Options{CacheBytes: 1 << 20})
	ctx := context.Background()
	sentinel := errors.New("stop after first")

	seen := 0
	err := pl.QueryEachCtx(ctx, "path(a, X)", func(b Binding) error {
		seen++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("yield error came back as %v, want the sentinel verbatim", err)
	}
	if seen != 1 {
		t.Fatalf("yield ran %d times after returning an error, want 1", seen)
	}

	// The aborted enumeration must not have cached its partial set.
	bs, info, err := pl.QueryInfoCtx(ctx, "path(a, X)")
	if err != nil {
		t.Fatal(err)
	}
	if info.Cache != CacheMiss {
		t.Fatalf("read after aborted stream served %v, want miss", info.Cache)
	}
	if got := bindingSet(bs); got != "X=b|X=c|X=d" {
		t.Fatalf("full set %q, want all three reachable nodes", got)
	}

	// Now cached; the replay path must propagate yield errors too.
	bs, info, err = pl.QueryInfoCtx(ctx, "path(a, X)")
	if err != nil || info.Cache != CacheHit || len(bs) != 3 {
		t.Fatalf("cached read: %v %v %v", bs, info.Cache, err)
	}
	seen = 0
	err = pl.QueryEachCtx(ctx, "path(a, X)", func(b Binding) error {
		seen++
		return sentinel
	})
	if !errors.Is(err, sentinel) || seen != 1 {
		t.Fatalf("replay: err=%v seen=%d, want sentinel after 1", err, seen)
	}

	// A yield error that happens to be a context error must also come
	// back verbatim, not re-wrapped as this query's abort.
	err = pl.QueryEachCtx(ctx, "path(a, X)", func(b Binding) error {
		return context.Canceled
	})
	if err != context.Canceled {
		t.Fatalf("context.Canceled from yield came back as %v", err)
	}
}

// TestEngineCacheStandalone covers the single-engine cache (hypo.New with
// CacheBytes): same hit/miss semantics without a pool.
func TestEngineCacheStandalone(t *testing.T) {
	prog, err := Parse(cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, Options{CacheBytes: 1 << 20, Mode: ModeUniform})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	for i := 0; i < 3; i++ {
		ok, err := e.Ask("path(a, d)")
		if err != nil || !ok {
			t.Fatalf("ask %d: %v %v", i, ok, err)
		}
	}
	mid := e.Stats()
	if mid.Goals == before.Goals {
		t.Fatal("first ask did no work")
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Ask("path(a, d)"); err != nil {
			t.Fatal(err)
		}
	}
	if after := e.Stats(); after.Goals != mid.Goals {
		t.Fatalf("cached asks still expanded goals: %d -> %d", mid.Goals, after.Goals)
	}

	sentinel := errors.New("stop")
	seen := 0
	err = e.QueryEachCtx(context.Background(), "path(a, X)", func(b Binding) error {
		seen++
		return sentinel
	})
	if !errors.Is(err, sentinel) || seen != 1 {
		t.Fatalf("engine yield error: err=%v seen=%d", err, seen)
	}
	bs, err := e.Query("path(a, X)")
	if err != nil || len(bs) != 3 {
		t.Fatalf("engine full query after abort: %v %v", bs, err)
	}
}

func bindingSet(bs []Binding) string {
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + b[k]
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}

// TestCacheMetamorphicUnderMutation is the metamorphic property test from
// the live write path down: random readers race a stream of fact
// mutations against a cache-enabled pool, every answer echoes the data
// version it is valid at, and afterwards each recorded answer is replayed
// on a cold, cache-less engine built from the exact fact set of that
// version. Any stale-version answer that escaped the cache fails the
// replay. Run with -race: the hot-swap path is exactly what it races.
func TestCacheMetamorphicUnderMutation(t *testing.T) {
	metamorphicStorm(t, Options{PoolSize: 4, CacheBytes: 1 << 20})
}

// metamorphicStorm is the storm body, parameterised by pool options so
// the same harness exercises demand-driven pools (see demand_test.go):
// the cold replay engine is always a plain full-evaluation engine, so
// for a DemandDriven pool the replay doubles as a mode-equivalence
// check at every committed version.
func metamorphicStorm(t *testing.T, opts Options) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	var rules strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&rules, "node(%s).\n", n)
	}
	rules.WriteString("path(X, Y) :- edge(X, Y).\n")
	rules.WriteString("path(X, Z) :- edge(X, Y), path(Y, Z).\n")
	rules.WriteString("linked(X) :- node(X), path(n0, X).\n")
	base := rules.String() + "edge(n0, n1).\nedge(n1, n2).\n"

	prog, err := Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := OpenLive(prog, LiveConfig{WALPath: filepath.Join(t.TempDir(), "wal")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	pl := lv.Pool()

	// factsByVersion tracks the exact edge set committed at each version.
	edges := map[string]bool{"edge(n0, n1)": true, "edge(n1, n2)": true}
	factsByVersion := map[uint64][]string{}
	var mu sync.Mutex
	snapshot := func(v uint64) {
		fs := make([]string, 0, len(edges))
		for e := range edges {
			fs = append(fs, e)
		}
		sort.Strings(fs)
		mu.Lock()
		factsByVersion[v] = fs
		mu.Unlock()
	}
	snapshot(pl.Version())

	type sample struct {
		kind    string // ask | query | askunder
		query   string
		adds    []string
		ok      bool
		set     string
		version uint64
	}
	var samples []sample
	var smu sync.Mutex

	ctx := context.Background()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 6; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from := nodes[rng.Intn(len(nodes))]
				to := nodes[rng.Intn(len(nodes))]
				var s sample
				switch i % 3 {
				case 0:
					s = sample{kind: "ask", query: fmt.Sprintf("path(%s, %s)", from, to)}
					var info ReadInfo
					s.ok, info, _ = pl.AskInfoCtx(ctx, s.query)
					s.version = info.DataVersion
				case 1:
					s = sample{kind: "query", query: fmt.Sprintf("path(%s, X)", from)}
					bs, info, err := pl.QueryInfoCtx(ctx, s.query)
					if err != nil {
						continue
					}
					s.set, s.version = bindingSet(bs), info.DataVersion
				default:
					s = sample{
						kind:  "askunder",
						query: fmt.Sprintf("linked(%s)", to),
						adds:  []string{fmt.Sprintf("edge(n0, %s)", from)},
					}
					var info ReadInfo
					s.ok, info, _ = pl.AskUnderInfoCtx(ctx, s.query, s.adds...)
					s.version = info.DataVersion
				}
				smu.Lock()
				samples = append(samples, s)
				smu.Unlock()
			}
		}(g)
	}

	// The writer: a stream of single-edge mutations, each a hot swap.
	wrng := rand.New(rand.NewSource(99))
	for i := 0; i < 25; i++ {
		from := nodes[wrng.Intn(len(nodes))]
		to := nodes[wrng.Intn(len(nodes))]
		fact := fmt.Sprintf("edge(%s, %s)", from, to)
		retract := edges[fact] && wrng.Intn(2) == 0
		var am, rm []string
		if retract {
			rm = []string{fact}
		} else {
			am = []string{fact}
		}
		muts, err := ParseMutations(am, rm)
		if err != nil {
			t.Fatal(err)
		}
		info, err := lv.Apply(muts)
		if err != nil {
			t.Fatal(err)
		}
		if retract {
			delete(edges, fact)
		} else {
			edges[fact] = true
		}
		snapshot(info.Version)
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	readers.Wait()

	// Replay every sample on a cold engine at its echoed version.
	cold := map[uint64]*Engine{}
	for v, fs := range factsByVersion {
		src := rules.String() + strings.Join(fs, ".\n")
		if len(fs) > 0 {
			src += ".\n"
		}
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		e, err := New(p, Options{})
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		cold[v] = e
	}
	hits := 0
	for _, s := range samples {
		e, ok := cold[s.version]
		if !ok {
			t.Fatalf("answer stamped with unknown data version %d: %+v", s.version, s)
		}
		switch s.kind {
		case "ask":
			want, err := e.Ask(s.query)
			if err != nil {
				t.Fatalf("cold ask %q at v%d: %v", s.query, s.version, err)
			}
			if want != s.ok {
				t.Fatalf("stale answer escaped: %s %q at v%d: live=%v cold=%v",
					s.kind, s.query, s.version, s.ok, want)
			}
		case "query":
			bs, err := e.Query(s.query)
			if err != nil {
				t.Fatalf("cold query %q at v%d: %v", s.query, s.version, err)
			}
			if want := bindingSet(bs); want != s.set {
				t.Fatalf("stale bindings escaped: %q at v%d: live=%q cold=%q",
					s.query, s.version, s.set, want)
			}
		case "askunder":
			want, err := e.AskUnder(s.query, s.adds...)
			if err != nil {
				t.Fatalf("cold askunder %q at v%d: %v", s.query, s.version, err)
			}
			if want != s.ok {
				t.Fatalf("stale hypothetical answer escaped: %q+%v at v%d: live=%v cold=%v",
					s.query, s.adds, s.version, s.ok, want)
			}
		}
		hits++
	}
	if hits < 50 {
		t.Fatalf("only %d samples recorded; the storm did not exercise the cache", hits)
	}
}

// TestCacheCarriesAcrossUnrelatedCommit: a commit invalidates only the
// cached answers whose premises intersect its cone; everything else is
// re-keyed to the new version and keeps serving without evaluation.
// liveSrc has two independent cones — flag/light and edge/reach.
func TestCacheCarriesAcrossUnrelatedCommit(t *testing.T) {
	l := openLive(t, Options{CacheBytes: 1 << 20, Mode: ModeUniform})
	pl := l.Pool()
	ctx := context.Background()

	// Warm both cones at v0.
	for _, q := range []string{"light(off)", "reach(a, b)"} {
		ok, info, err := pl.AskInfoCtx(ctx, q)
		if err != nil || !ok {
			t.Fatalf("warm %q: ok=%v err=%v", q, ok, err)
		}
		if info.Cache != CacheMiss {
			t.Fatalf("warm %q served %v, want miss", q, info.Cache)
		}
	}

	// Commit inside the edge/reach cone only.
	if _, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil)); err != nil {
		t.Fatal(err)
	}

	// light(off) is outside the cone: its answer was carried to v1 and
	// still serves as a hit.
	ok, info, err := pl.AskInfoCtx(ctx, "light(off)")
	if err != nil || !ok {
		t.Fatalf("light(off) after commit: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheHit {
		t.Fatalf("light(off) after unrelated commit served %v, want carried hit", info.Cache)
	}
	if info.DataVersion != 1 {
		t.Fatalf("carried hit at version %d, want 1", info.DataVersion)
	}

	// reach(a, b) is inside the cone: the old answer must not survive.
	ok, info, err = pl.AskInfoCtx(ctx, "reach(a, b)")
	if err != nil || !ok {
		t.Fatalf("reach(a, b) after commit: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheMiss {
		t.Fatalf("reach(a, b) after in-cone commit served %v, want miss", info.Cache)
	}

	// A commit in the flag/light cone drops the carried entry: the next
	// light read is a miss, not a stale carried answer.
	if _, err := l.Apply(mutations(t, []string{"flag(a)"}, nil)); err != nil {
		t.Fatal(err)
	}
	ok, info, err = pl.AskInfoCtx(ctx, "light(a)")
	if err != nil || !ok {
		t.Fatalf("light(a) after flag commit: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheMiss {
		t.Fatalf("light(a) after flag commit served %v, want miss", info.Cache)
	}
}
