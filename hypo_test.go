package hypo

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func mustEngine(t *testing.T, src string, opts Options) *Engine {
	t.Helper()
	e, err := New(mustParse(t, src), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

const uniSrc = `
	take(tony, his101).
	take(tony, eng201).
	take(mary, his101).
	grad(S) :- take(S, his101), take(S, eng201).
`

func TestAskGround(t *testing.T) {
	e := mustEngine(t, uniSrc, Options{})
	for q, want := range map[string]bool{
		"grad(tony)":                          true,
		"grad(mary)":                          false,
		"grad(mary)[add: take(mary, eng201)]": true,
		"not grad(mary)":                      true,
	} {
		got, err := e.Ask(q)
		if err != nil {
			t.Fatalf("Ask(%q): %v", q, err)
		}
		if got != want {
			t.Errorf("Ask(%q) = %v, want %v", q, got, want)
		}
	}
}

func TestAskRejectsNonGround(t *testing.T) {
	e := mustEngine(t, uniSrc, Options{})
	if _, err := e.Ask("grad(S)"); err == nil {
		t.Error("expected non-ground rejection")
	}
}

func TestQueryBindings(t *testing.T) {
	e := mustEngine(t, uniSrc, Options{})
	// Example 2: who could graduate with one more course?
	bs, err := e.Query("grad(S)[add: take(S, C)]")
	if err != nil {
		t.Fatal(err)
	}
	students := map[string]bool{}
	for _, b := range bs {
		students[b["S"]] = true
	}
	if !students["tony"] || !students["mary"] {
		t.Errorf("students = %v", students)
	}
}

func TestAskUnder(t *testing.T) {
	e := mustEngine(t, uniSrc, Options{})
	got, err := e.AskUnder("grad(mary)", "take(mary, eng201)")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("AskUnder failed")
	}
	if _, err := e.AskUnder("grad(mary)", "take(mary, C)"); err == nil {
		t.Error("expected non-ground add rejection")
	}
}

func TestStratificationReport(t *testing.T) {
	p := mustParse(t, `
		a2 :- b2, a2[add: c2].
		a2 :- d2, not a1.
		a1 :- b1, a1[add: c1].
		a1 :- d1.
	`)
	s := p.Stratification()
	if !s.Linear || s.Strata != 2 {
		t.Errorf("stratification = %+v", s)
	}
	if s.Partition["a1/0"]%2 != 0 {
		t.Errorf("a1 partition = %d, want even", s.Partition["a1/0"])
	}

	p2 := mustParse(t, "a :- b, a[add: c1], a[add: c2].\n")
	s2 := p2.Stratification()
	if s2.Linear {
		t.Error("non-linear program reported as linear")
	}
	if !strings.Contains(s2.Reason, "non-linear") {
		t.Errorf("reason = %q", s2.Reason)
	}
}

func TestRecursionThroughNegationRejectedAtParse(t *testing.T) {
	if _, err := Parse("a :- not b.\nb :- not a.\n"); err == nil {
		t.Error("expected parse-time rejection")
	}
}

func TestNegHypRewriteAccepted(t *testing.T) {
	e := mustEngine(t, `
		p(a).
		q(X) :- p(X), not r(X)[add: w(X)].
		r(X) :- w(X), blocked.
	`, Options{})
	// blocked is false, so r(a) is not provable even with w(a): q(a) holds.
	got, err := e.Ask("q(a)")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("q(a) should hold via the rewritten negated hypothetical")
	}
}

func TestModeCascadeRequiresLinear(t *testing.T) {
	p := mustParse(t, "a :- b, a[add: c1], a[add: c2].\n")
	if _, err := New(p, Options{Mode: ModeCascade}); err == nil {
		t.Error("cascade over non-linear program should fail")
	}
	if _, err := New(p, Options{Mode: ModeUniform}); err != nil {
		t.Errorf("uniform mode should work: %v", err)
	}
	// Auto falls back to uniform.
	if _, err := New(p, Options{}); err != nil {
		t.Errorf("auto mode should work: %v", err)
	}
}

func TestModesAgree(t *testing.T) {
	src := `
		item(x0). item(x1). item(x2).
		even :- selectx(X), odd[add: copied(X)].
		odd :- selectx(X), even[add: copied(X)].
		even :- not selectx(X).
		selectx(X) :- item(X), not copied(X).
	`
	u := mustEngine(t, src, Options{Mode: ModeUniform})
	c := mustEngine(t, src, Options{Mode: ModeCascade})
	for _, q := range []string{"even", "odd"} {
		gu, err := u.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		gc, err := c.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		if gu != gc {
			t.Errorf("query %q: uniform=%v cascade=%v", q, gu, gc)
		}
	}
}

func TestExtraDomain(t *testing.T) {
	e := mustEngine(t, "grad(S) :- take(S, c1).\n", Options{ExtraDomain: []string{"bob", "c1"}})
	got, err := e.Ask("grad(bob)[add: take(bob, c1)]")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("extra-domain query failed")
	}
}

func TestProgramAccessors(t *testing.T) {
	p := mustParse(t, "p(a).\nq(X) :- p(X).\n?- q(a).\n")
	if len(p.Queries()) != 1 || p.Queries()[0] != "q(a)" {
		t.Errorf("queries = %v", p.Queries())
	}
	if !strings.Contains(p.String(), "q(X) :- p(X).") {
		t.Errorf("String() = %q", p.String())
	}
	sigs := p.AST().Predicates()
	var names []string
	for _, s := range sigs {
		names = append(names, s.String())
	}
	sort.Strings(names)
	if strings.Join(names, ",") != "p/1,q/1" {
		t.Errorf("predicates = %v", names)
	}
}

func TestStatsExposed(t *testing.T) {
	e := mustEngine(t, uniSrc, Options{Mode: ModeUniform})
	if _, err := e.Ask("grad(tony)"); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Goals == 0 {
		t.Error("no goals counted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := mustParse(t, uniSrc)
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Ask("grad(tony)")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("snapshot lost derivability of grad(tony)")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"p(",              // syntax
		"p(X).\np(a, b).", // arity conflict
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}
