module hypodatalog

go 1.22
