package hypo_test

// One testing.B benchmark per experiment of DESIGN.md §4 (E1-E12). Each
// sub-benchmark rebuilds a fresh engine per iteration so the memo tables
// never carry answers across iterations. cmd/hdlbench runs the same
// workloads with correctness checks and renders the EXPERIMENTS.md rows.

import (
	"fmt"
	"math/rand"
	"testing"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/engine"
	"hypodatalog/internal/generic"
	"hypodatalog/internal/horn"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
	"hypodatalog/internal/turing"
	"hypodatalog/internal/workload"
)

// compile parses and compiles a program once; the engines are rebuilt per
// iteration.
func compile(b *testing.B, src string) *ast.CProgram {
	b.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := ast.Compile(prog, symbols.NewTable())
	if err != nil {
		b.Fatal(err)
	}
	return cp
}

// benchAsk measures fresh-engine evaluation of a 0-ary goal.
func benchAsk(b *testing.B, src, goal string, want bool) {
	b.Helper()
	cp := compile(b, src)
	dom := ref.Domain(cp)
	p, ok := cp.Syms.LookupPred(goal, 0)
	if !ok {
		b.Fatalf("no %s/0", goal)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := topdown.New(cp, dom, topdown.Options{})
		got, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
		if err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatalf("%s = %v, want %v", goal, got, want)
		}
	}
}

func BenchmarkE1HypChain(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAsk(b, workload.ChainProgram(n), "a1", true)
		})
	}
}

func BenchmarkE2OrderLoop(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAsk(b, workload.OrderLoopProgram(n), "a", true)
		})
	}
}

func BenchmarkE3Parity(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAsk(b, workload.ParityProgram(n), "even", n%2 == 0)
		})
	}
}

func BenchmarkE4Hamiltonian(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 6, 8, 10} {
		g := workload.PlantedHamiltonian(rng, n, 0.15)
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			benchAsk(b, workload.HamiltonianProgram(g), "yes", true)
		})
		b.Run(fmt.Sprintf("bruteforce/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !workload.HasHamiltonianPath(g) {
					b.Fatal("planted path lost")
				}
			}
		})
	}
}

func BenchmarkE5HamCircuitNo(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{4, 6, 8} {
		g := workload.RandomDigraph(rng, n, 0.2)
		want := !workload.HasHamiltonianPath(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAsk(b, workload.HamiltonianProgram(g), "no", want)
		})
	}
}

func BenchmarkE6Stratify(b *testing.B) {
	for _, k := range []int{8, 64, 512, 2048} {
		src := workload.KStrataProgram(k, 4)
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := strat.Stratify(prog)
				if err != nil {
					b.Fatal(err)
				}
				if s.NumStrata != k {
					b.Fatalf("strata = %d", s.NumStrata)
				}
			}
		})
	}
}

func BenchmarkE7TMEncoding(b *testing.B) {
	cases := []struct {
		m    *turing.Machine
		in   string
		want bool
	}{
		{turing.HasOne(), "01", true},
		{turing.GuessOne(), "00", false},
		{turing.CopyThenAskYes(), "01", true},
		{turing.CopyThenAskNo(), "00", true},
	}
	for _, tc := range cases {
		n := 2*len(tc.in) + 6
		src, err := turing.Encode(tc.m, tc.in, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/in=%s", tc.m.Name, tc.in), func(b *testing.B) {
			benchAsk(b, src, "accept", tc.want)
		})
		b.Run(fmt.Sprintf("%s/in=%s/simulator", tc.m.Name, tc.in), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := tc.m.Accepts(tc.in, n)
				if err != nil {
					b.Fatal(err)
				}
				if got != tc.want {
					b.Fatal("simulator disagrees")
				}
			}
		})
	}
}

func BenchmarkE8Cascade(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		src := workload.ParityProgram(n)
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		st, err := strat.Stratify(prog)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := ast.Compile(prog, symbols.NewTable())
		if err != nil {
			b.Fatal(err)
		}
		dom := ref.Domain(cp)
		p, _ := cp.Syms.LookupPred("even", 0)
		want := n%2 == 0
		b.Run(fmt.Sprintf("uniform/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := topdown.New(cp, dom, topdown.Options{})
				got, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
				if err != nil || got != want {
					b.Fatalf("got=%v err=%v", got, err)
				}
			}
		})
		b.Run(fmt.Sprintf("cascade/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := engine.NewCascade(cp, st, dom)
				if err != nil {
					b.Fatal(err)
				}
				got, err := c.Ask(c.Interner().ID(p, nil), c.EmptyState())
				if err != nil || got != want {
					b.Fatalf("got=%v err=%v", got, err)
				}
			}
		})
	}
}

func BenchmarkE9HypOrder(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("el%d", i)
		}
		src := generic.ParityViaOrder("d") + generic.DomainFacts("d", names)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAsk(b, src, "yes", n%2 == 1)
		})
	}
}

func BenchmarkE10HornBaseline(b *testing.B) {
	linear := "tc(X, Y) :- edge(X, Y).\ntc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
	nonlinear := "tc(X, Y) :- edge(X, Y).\ntc(X, Y) :- tc(X, Z), tc(Z, Y).\n"
	for _, n := range []int{32, 128, 512} {
		edges := ""
		for i := 0; i < n; i++ {
			edges += fmt.Sprintf("edge(v%d, v%d).\n", i, i+1)
		}
		for _, v := range []struct {
			name, rules string
		}{{"linear", linear}, {"nonlinear", nonlinear}} {
			if v.name == "nonlinear" && n > 128 {
				// The composed relation has ~n^2/2 tuples with ~n/2
				// fan-out per join key; n=512 is minutes of joins.
				continue
			}
			cp := compile(b, v.rules+edges)
			for _, s := range []struct {
				name     string
				strategy horn.Strategy
			}{{"seminaive", horn.SemiNaive}, {"naive", horn.Naive}} {
				if s.strategy == horn.Naive && n > 128 {
					continue
				}
				b.Run(fmt.Sprintf("%s/%s/n=%d", v.name, s.name, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						e, err := horn.New(cp, s.strategy)
						if err != nil {
							b.Fatal(err)
						}
						e.Compute()
					}
				})
			}
		}
	}
}

func BenchmarkE11Rewrite(b *testing.B) {
	src := "p(a).\nq(X) :- p(X), not r(X)[add: w(X)].\nr(X) :- w(X), blocked.\nqa :- q(a).\n"
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rewrite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ast.RewriteNegHyp(prog.Clone())
		}
	})
	rewritten := prog.Clone()
	ast.RewriteNegHyp(rewritten)
	cp, err := ast.Compile(rewritten, symbols.NewTable())
	if err != nil {
		b.Fatal(err)
	}
	dom := ref.Domain(cp)
	p, _ := cp.Syms.LookupPred("qa", 0)
	b.Run("evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := topdown.New(cp, dom, topdown.Options{})
			got, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
			if err != nil || !got {
				b.Fatalf("got=%v err=%v", got, err)
			}
		}
	})
}

func BenchmarkE13Deletion(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{8, 32, 64} {
		g := workload.RandomDigraph(rng, n, 2.0/float64(n))
		target := rng.Intn(n)
		want := workload.Reachable(g, 0, target)
		src := workload.TokenGameProgram(g, 0, target)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAsk(b, src, "goal", want)
		})
	}
}

func BenchmarkE14GenericCompile(b *testing.B) {
	rules, err := generic.CompileGeneric(turing.HasOne(), "d", "p")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 3, 4} {
		facts := ""
		for i := 0; i < n; i++ {
			facts += fmt.Sprintf("d(el%d).\n", i)
		}
		facts += "p(el0).\n"
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAsk(b, rules+facts, "yes", true)
		})
	}
}

func BenchmarkE15Alternation(b *testing.B) {
	for _, tc := range []struct {
		m    *turing.AMachine
		in   string
		want bool
	}{
		{turing.AllOnesForall(), "11", true},
		{turing.AllOnesForall(), "10", false},
		{turing.HasDoubleOne(), "011", true},
	} {
		rules, err := turing.EncodeAlternating(tc.m)
		if err != nil {
			b.Fatal(err)
		}
		db, err := turing.EncodeAlternatingDB(tc.m, tc.in, 2*len(tc.in)+6)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/in=%s", tc.m.Name, tc.in), func(b *testing.B) {
			benchAsk(b, rules+db, "accept", tc.want)
		})
	}
}

func BenchmarkE12Ablation(b *testing.B) {
	// Untabled parity is factorial in |A|: n=7 keeps the ablation honest
	// (7! search paths) without multi-minute runs.
	const parityN = 7
	src := workload.ParityProgram(parityN)
	cp := compile(b, src)
	dom := ref.Domain(cp)
	p, _ := cp.Syms.LookupPred("even", 0)
	want := parityN%2 == 0
	configs := []struct {
		name string
		opts topdown.Options
	}{
		{"full", topdown.Options{}},
		{"notabling", topdown.Options{NoTabling: true, MaxGoals: 100_000_000}},
		{"noplanner", topdown.Options{NoPlanner: true, MaxGoals: 100_000_000}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := topdown.New(cp, dom, cfg.opts)
				got, err := e.Ask(e.Interner().ID(p, nil), e.EmptyState())
				if err != nil || got != want {
					b.Fatalf("got=%v err=%v", got, err)
				}
			}
		})
	}
}
