package hypo

// Resource-governance tests: per-query memory budgets (ErrMemory), the
// pool's footprint accounting and idle-engine trimming, and the live
// store's background write-path recovery after transient disk pressure.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hypodatalog/internal/live"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/vfs"
)

// chainSrc builds a linear edge chain n0 -> n1 -> ... -> nn with
// transitive reachability: reach/2 has O(n²) answers and the memo
// tables to match, so a byte budget has something to trip on.
func chainSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(n%d, n%d).\n", i, i+1)
	}
	b.WriteString("reach(X, Y) :- edge(X, Y).\n")
	b.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	return b.String()
}

// TestMemoryBudgetAbortsQuery: a query that grows the engine's tracked
// footprint past Options.MaxMemoryBytes aborts with ErrMemory inside an
// *AbortError carrying the partial-work stats — and leaves the engine
// unpoisoned: later (cheaper) queries answer correctly.
func TestMemoryBudgetAbortsQuery(t *testing.T) {
	e := mustEngine(t, chainSrc(80), Options{MaxMemoryBytes: 8 << 10})
	_, err := e.Query("reach(X, Y)")
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("Query under an 8KiB budget = %v, want ErrMemory", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("memory abort is not an *AbortError: %v", err)
	}
	if ae.Stats.MemBytes <= 8<<10 {
		t.Fatalf("abort stats claim %d bytes grown, want > budget", ae.Stats.MemBytes)
	}
	// The engine survives the abort: queries that fit the budget still
	// evaluate correctly. (Recursive asks are NOT cheap here — tabling
	// computes the whole strongly-connected region on first touch, which
	// is exactly what an 8KiB budget exists to refuse.)
	if ok, err := e.Ask("edge(n0, n1)"); err != nil || !ok {
		t.Fatalf("Ask after memory abort = %v, %v; want true", ok, err)
	}
	if ok, err := e.Ask("edge(n1, n0)"); err != nil || ok {
		t.Fatalf("Ask(edge(n1, n0)) after abort = %v, %v; want false", ok, err)
	}
	// And the budgeted query keeps refusing deterministically.
	if _, err := e.Query("reach(X, Y)"); !errors.Is(err, ErrMemory) {
		t.Fatalf("repeat over-budget query = %v, want ErrMemory again", err)
	}
}

// TestMemoryBudgetPerQueryBaseline: the budget bounds growth SINCE the
// query began, not the engine's absolute footprint — a warm engine
// carrying memo state from earlier queries is not penalised for it.
func TestMemoryBudgetPerQueryBaseline(t *testing.T) {
	e := mustEngine(t, chainSrc(40), Options{MaxMemoryBytes: 256 << 10})
	// Warm the engine well past what a 256KiB budget could absorb as a
	// cold start... then ask again: the repeat is nearly free.
	if _, err := e.Query("reach(X, Y)"); err != nil {
		t.Fatalf("warming query: %v", err)
	}
	if ok, err := e.Ask("reach(n0, n40)"); err != nil || !ok {
		t.Fatalf("warm repeat = %v, %v; want true under the same budget", ok, err)
	}
}

// TestPoolMemoryAbortMidStream (the answer-cache half of the memory
// story): a streaming enumeration that dies on the memory budget after
// yielding bindings must not poison the answer cache — the partial set
// is never stored, so the next identical request is a miss, not a hit
// serving truncated results. The query's hypothesis varies with the
// bound variable, so every instance opens a fresh hypothetical state
// with its own memo region: growth is incremental per answer, which is
// what makes a MID-stream abort (some yields, then ErrMemory) possible
// at all — a plain open call is tabled as one lump on first touch.
func TestPoolMemoryAbortMidStream(t *testing.T) {
	pl, err := NewPool(mustParse(t, chainSrc(30)), Options{
		PoolSize:       1,
		CacheBytes:     1 << 20,
		MaxMemoryBytes: 64 << 10,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pl.Close()

	const q = "reach(n0, Y)[add: edge(Y, n0)]"
	n := 0
	var info ReadInfo
	err = pl.QueryEachInfoCtx(context.Background(), q, &info, func(Binding) error {
		n++
		return nil
	})
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("streaming under a 64KiB budget = %v, want ErrMemory", err)
	}
	if n == 0 {
		t.Fatal("abort hit before any binding streamed; the mid-stream case needs at least one")
	}
	if info.Cache != CacheMiss {
		t.Fatalf("aborted stream reported cache status %v, want miss", info.Cache)
	}

	// Identical request: were the partial bindings cached, this would be
	// a hit; it must be a fresh miss (and abort the same way — the warm
	// states are free now, but the remaining ones still exceed budget).
	var info2 ReadInfo
	err = pl.QueryEachInfoCtx(context.Background(), q, &info2, func(Binding) error { return nil })
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("repeat streaming = %v, want ErrMemory again", err)
	}
	if info2.Cache != CacheMiss {
		t.Fatalf("repeat after aborted stream = cache %v; a partial enumeration was stored", info2.Cache)
	}

	// The engine went back to the pool unpoisoned, and the cache still
	// works for queries that fit the budget.
	for i := 0; i < 2; i++ {
		bs, inf, err := pl.QueryInfoCtx(context.Background(), "edge(X, Y)")
		if err != nil {
			t.Fatalf("bounded query after aborts: %v", err)
		}
		if len(bs) != 30 {
			t.Fatalf("edge(X, Y) = %d answers, want 30", len(bs))
		}
		if i == 1 && inf.Cache != CacheHit {
			t.Fatalf("repeat bounded query = cache %v, want hit", inf.Cache)
		}
	}
}

// TestPoolMemBytesAndTrim: the pool reports the footprint of its idle
// engines and can shed them to reach a target, rebuilding on demand.
func TestPoolMemBytesAndTrim(t *testing.T) {
	pl, err := NewPool(mustParse(t, chainSrc(20)), Options{PoolSize: 2})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pl.Close()
	if got := pl.MemBytes(); got <= 0 {
		t.Fatalf("MemBytes() = %d on a pool with an idle engine, want > 0", got)
	}
	if dropped := pl.TrimMemory(0); dropped == 0 {
		t.Fatal("TrimMemory(0) dropped no idle engines")
	}
	if got := pl.MemBytes(); got != 0 {
		t.Fatalf("MemBytes() = %d after trimming every idle engine, want 0", got)
	}
	// The pool rebuilds engines on demand after a trim.
	if ok, err := pl.Ask("reach(n0, n2)"); err != nil || !ok {
		t.Fatalf("Ask after trim = %v, %v; want true", ok, err)
	}
}

// TestLiveRecoveryProber: a transient (ENOSPC) degradation starts the
// background prober, which re-enables the write path in place once
// space returns — no restart, and the metrics tell the story.
func TestLiveRecoveryProber(t *testing.T) {
	mem := vfs.NewMem()
	en := vfs.NewENOSPC(4)
	ft := vfs.NewFault(mem, en)
	mets := metrics.NewSet("test_recovery_prober")
	l, err := OpenLive(mustParse(t, liveSrc), LiveConfig{
		WALPath:               "/db/wal.log",
		SnapshotPath:          "/db/db.snap",
		FS:                    ft,
		Logger:                quietLog,
		RecoveryProbeInterval: 2 * time.Millisecond,
	}, Options{PoolSize: 1, Metrics: mets})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	defer l.Close()
	if _, err := l.Apply(mutations(t, []string{"edge(a, c)"}, nil)); err != nil {
		t.Fatalf("healthy apply: %v", err)
	}

	en.Fill()
	if _, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil)); !errors.Is(err, live.ErrReadOnly) {
		t.Fatalf("apply on full disk = %v, want ErrReadOnly", err)
	}
	if ro, _ := l.Degraded(); !ro {
		t.Fatal("store not degraded after ENOSPC")
	}
	if !l.Recovering() {
		t.Fatal("no recovery prober running after a transient degradation")
	}
	if got := mets.LiveReadOnly.Value(); got != 1 {
		t.Fatalf("live_readonly gauge = %d, want 1", got)
	}

	en.Release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ro, _ := l.Degraded(); !ro {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write path did not recover within 5s of space returning")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil)); err != nil {
		t.Fatalf("apply after in-place recovery: %v", err)
	}
	if got := mets.DiskRecoveries.Value(); got != 1 {
		t.Fatalf("disk_recoveries = %d, want 1", got)
	}
	if got := mets.DiskRecoveryProbes.Value(); got < 1 {
		t.Fatalf("disk_recovery_probes = %d, want >= 1", got)
	}
	if got := mets.LiveReadOnly.Value(); got != 0 {
		t.Fatalf("live_readonly gauge = %d after recovery, want 0", got)
	}
	// The prober is gone; healthz-style state is clean.
	waitFor(t, time.Second, func() bool { return !l.Recovering() })
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
