package hypo

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hypodatalog/internal/topdown"
	"hypodatalog/internal/workload"
)

var hardHamiltonianCache *workload.Digraph

// hardHamiltonian builds a 12-node digraph with no Hamiltonian path but a
// huge search space: a complete 11-node core plus one isolated node (v11)
// that no path can ever reach. Proving "yes" false must exhaust the
// core's near-factorial path orderings. The no-path property holds by
// construction, so the check below is structural — running the
// brute-force HasHamiltonianPath here would itself take factorial time.
func hardHamiltonian(t *testing.T) workload.Digraph {
	t.Helper()
	if hardHamiltonianCache != nil {
		return *hardHamiltonianCache
	}
	g := workload.Digraph{N: 12}
	for i := 0; i < 11; i++ {
		for j := 0; j < 11; j++ {
			if i != j {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	for _, e := range g.Edges {
		if e[0] == 11 || e[1] == 11 {
			t.Fatal("construction broken: v11 must be isolated")
		}
	}
	hardHamiltonianCache = &g
	return g
}

// TestDeadlineHamiltonian is the acceptance test for context propagation:
// an intractable query under a 50ms deadline must return ErrDeadline well
// under 500ms, in both evaluation modes, with a non-zero work snapshot.
func TestDeadlineHamiltonian(t *testing.T) {
	src := workload.HamiltonianProgram(hardHamiltonian(t))
	for _, mode := range []Mode{ModeUniform, ModeCascade} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			e := mustEngine(t, src, Options{Mode: mode})
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := e.AskCtx(ctx, "yes")
			elapsed := time.Since(start)
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("AskCtx = %v, want ErrDeadline", err)
			}
			if elapsed >= 500*time.Millisecond {
				t.Errorf("abort took %v, want well under 500ms", elapsed)
			}
			var ae *AbortError
			if !errors.As(err, &ae) {
				t.Fatalf("error %v is not an *AbortError", err)
			}
			if ae.Stats == (topdown.Stats{}) {
				t.Error("AbortError carries a zero stats snapshot")
			}
		})
	}
}

// TestCancelPropagation covers plain cancellation (not a deadline) and
// checks the engine survives an abort: the same engine must still answer
// correctly afterwards.
func TestCancelPropagation(t *testing.T) {
	src := workload.HamiltonianProgram(hardHamiltonian(t))
	e := mustEngine(t, src, Options{Mode: ModeUniform})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := e.AskCtx(ctx, "yes"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("AskCtx = %v, want ErrCanceled", err)
	}

	// Pre-canceled contexts abort before any expansion.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := e.AskCtx(pre, "yes"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled AskCtx = %v, want ErrCanceled", err)
	}

	// The abort must not wedge the engine.
	got, err := e.Ask("node(v0)")
	if err != nil || !got {
		t.Fatalf("Ask after abort = %v, %v; want true, nil", got, err)
	}
}

// TestQueryCtxDeadline drives the deadline through the solution
// enumerator (QueryCtx) rather than a single ground ask.
func TestQueryCtxDeadline(t *testing.T) {
	src := workload.HamiltonianProgram(hardHamiltonian(t))
	e := mustEngine(t, src, Options{Mode: ModeUniform})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := e.QueryCtx(ctx, "yes"); !errors.Is(err, ErrDeadline) {
		t.Fatalf("QueryCtx = %v, want ErrDeadline", err)
	}
}

// TestAskUnderCtx checks the context path through AskUnder and that the
// hypothetical extension still works under the *Ctx spelling.
func TestAskUnderCtx(t *testing.T) {
	e := mustEngine(t, uniSrc, Options{})
	ok, err := e.AskUnderCtx(context.Background(), "grad(mary)", "take(mary, eng201)")
	if err != nil || !ok {
		t.Fatalf("AskUnderCtx = %v, %v; want true, nil", ok, err)
	}
}

// TestBudgetAbortError checks that MaxGoals exhaustion surfaces through
// the public API as ErrBudget with the configured limit and exact count.
func TestBudgetAbortError(t *testing.T) {
	src := workload.HamiltonianProgram(hardHamiltonian(t))
	e := mustEngine(t, src, Options{Mode: ModeUniform, MaxGoals: 100})
	_, err := e.Ask("yes")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Ask = %v, want ErrBudget", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *AbortError", err)
	}
	if ae.Limit != 100 {
		t.Errorf("AbortError.Limit = %d, want 100", ae.Limit)
	}
	if ae.Stats.Goals != 100 {
		t.Errorf("aborted after %d expansions, want exactly 100", ae.Stats.Goals)
	}
}

// TestDomainCheckDoesNotIntern checks the compile-order fix: a rejected
// out-of-domain query constant must not leak into the shared symbol
// table.
func TestDomainCheckDoesNotIntern(t *testing.T) {
	e := mustEngine(t, uniSrc, Options{})
	if _, err := e.Ask("grad(nosuchperson)"); err == nil {
		t.Fatal("out-of-domain constant accepted")
	}
	if _, ok := e.prog.syms.LookupConst("nosuchperson"); ok {
		t.Error("rejected query constant was interned into the symbol table")
	}
	if _, err := e.AskUnder("grad(tony)", "take(ghost, his101)"); err == nil {
		t.Fatal("out-of-domain added atom accepted")
	}
	if _, ok := e.prog.syms.LookupConst("ghost"); ok {
		t.Error("rejected added-atom constant was interned into the symbol table")
	}
}
