package hypo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hypodatalog/internal/metrics"
	"hypodatalog/internal/workload"
)

func TestPoolBasics(t *testing.T) {
	p := mustParse(t, uniSrc)
	pool, err := NewPool(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Ask("grad(tony)")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("grad(tony) false via pool")
	}
	bs, err := pool.Query("grad(S)[add: take(S, C)]")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) == 0 {
		t.Error("no bindings via pool")
	}
	if _, err := pool.Ask("grad(S)"); err == nil {
		t.Error("non-ground Ask accepted")
	}
}

func TestPoolRejectsBadConfig(t *testing.T) {
	p := mustParse(t, "a :- b, a[add: c1], a[add: c2].\n")
	if _, err := NewPool(p, Options{Mode: ModeCascade}); err == nil {
		t.Error("cascade pool over non-linear program should fail")
	}
}

// TestPoolConcurrent hammers a pool from many goroutines, with queries
// that intern fresh constants, so `go test -race` exercises the shared
// symbol table. Answers must match the single-threaded engine.
func TestPoolConcurrent(t *testing.T) {
	src := workload.ParityProgram(6) + workload.ChainProgram(4)
	p := mustParse(t, src)
	pool, err := NewPool(p, Options{
		Mode:        ModeUniform,
		ExtraDomain: []string{"freshconstant", "anotherfresh"},
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		q    string
		want bool
	}{
		{"even", true},
		{"a1", true},
		{"a2", false},
		{"even[add: item(freshconstant)]", false}, // |A| becomes 7: odd
		{"odd[add: item(anotherfresh)]", true},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qc := queries[(g+i)%len(queries)]
				got, err := pool.Ask(qc.q)
				if err != nil {
					errs <- err
					return
				}
				if got != qc.want {
					errs <- fmt.Errorf("goroutine %d: %s = %v, want %v", g, qc.q, got, qc.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolBounded checks the pool never creates more engines than its
// configured size, however many callers hammer it.
func TestPoolBounded(t *testing.T) {
	p := mustParse(t, uniSrc)
	newsBefore := metrics.Default.PoolNews.Value()
	pool, err := NewPool(p, Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 2 {
		t.Fatalf("Size = %d, want 2", pool.Size())
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := pool.Ask("grad(tony)"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if news := metrics.Default.PoolNews.Value() - newsBefore; news > 2 {
		t.Errorf("pool created %d engines, want at most 2", news)
	}
}

// TestPoolMixedCancel drives mixed Ask/Query/AskUnder traffic — cheap
// queries plus intractable ones under short deadlines — through one pool
// from many goroutines. Run under -race this exercises the shared symbol
// table, the bounded free list, and mid-flight cancellation; aborted
// engines must return to the pool still able to answer correctly.
func TestPoolMixedCancel(t *testing.T) {
	src := workload.HamiltonianProgram(hardHamiltonian(t))
	pool, err := NewPool(mustParse(t, src), Options{Mode: ModeUniform, PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 4 {
				case 0: // cheap ground ask
					if ok, err := pool.Ask("node(v0)"); err != nil || !ok {
						t.Errorf("Ask(node(v0)) = %v, %v", ok, err)
					}
				case 1: // binding query
					if bs, err := pool.Query("edge(v0, X)"); err != nil || len(bs) == 0 {
						t.Errorf("Query(edge(v0, X)) = %d rows, %v", len(bs), err)
					}
				case 2: // hypothetical extension
					if ok, err := pool.AskUnder("edge(v11, v0)", "edge(v11, v0)"); err != nil || !ok {
						t.Errorf("AskUnder = %v, %v", ok, err)
					}
				case 3: // intractable, canceled mid-flight
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
					_, err := pool.AskCtx(ctx, "yes")
					cancel()
					if err != nil && !errors.Is(err, ErrDeadline) && !errors.Is(err, ErrCanceled) {
						t.Errorf("deadline AskCtx = %v, want ErrDeadline", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolMetricsConsistent checks the invariant the expvar snapshot
// promises: every started query is counted exactly once as succeeded,
// failed, or canceled.
func TestPoolMetricsConsistent(t *testing.T) {
	src := workload.HamiltonianProgram(hardHamiltonian(t))
	pool, err := NewPool(mustParse(t, src), Options{Mode: ModeUniform, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	started := metrics.Default.QueriesStarted.Value()
	done := metrics.Default.QueriesSucceeded.Value() + metrics.Default.QueriesFailed.Value() + metrics.Default.QueriesCanceled.Value()
	gets := metrics.Default.PoolGets.Value()
	puts := metrics.Default.PoolPuts.Value()

	pool.Ask("node(v0)") // succeeds
	pool.Ask("node(")    // parse error: fails without consuming an engine
	pool.Query("edge(v0, X)")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	pool.AskCtx(ctx, "yes") // canceled
	cancel()

	if ds, dd := metrics.Default.QueriesStarted.Value()-started,
		metrics.Default.QueriesSucceeded.Value()+metrics.Default.QueriesFailed.Value()+metrics.Default.QueriesCanceled.Value()-done; ds != 4 || dd != 4 {
		t.Errorf("started delta = %d, outcome delta = %d; want 4 and 4", ds, dd)
	}
	// Three queries reached an engine (the parse error did not); every
	// lease was returned.
	if dg, dp := metrics.Default.PoolGets.Value()-gets, metrics.Default.PoolPuts.Value()-puts; dp != 3 || dg > dp {
		t.Errorf("pool gets delta = %d, puts delta = %d; want puts = 3, gets <= puts", dg, dp)
	}
}

// TestPoolBlockedGetHonorsContext checks a caller waiting for an engine
// gives up when its context expires, without wedging the pool.
func TestPoolBlockedGetHonorsContext(t *testing.T) {
	src := workload.HamiltonianProgram(hardHamiltonian(t))
	pool, err := NewPool(mustParse(t, src), Options{Mode: ModeUniform, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single engine with an intractable query.
	busy, stopBusy := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool.AskCtx(busy, "yes")
	}()
	// Give the busy query a moment to take the engine, then try to lease.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := pool.AskCtx(ctx, "node(v0)"); !errors.Is(err, ErrDeadline) {
		t.Errorf("blocked AskCtx = %v, want ErrDeadline", err)
	}
	stopBusy()
	wg.Wait()
	// The pool must still work.
	if ok, err := pool.Ask("node(v0)"); err != nil || !ok {
		t.Fatalf("Ask after contention = %v, %v", ok, err)
	}
}

// TestPoolClose covers the Close contract: fail-fast leases, waking
// blocked getters, dropping engines returned after Close, and
// idempotence.
func TestPoolClose(t *testing.T) {
	pool, err := NewPool(mustParse(t, uniSrc), Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single engine so the pool is empty, then block a second
	// caller waiting for it.
	hold := make(chan struct{})
	released := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		released <- pool.Do(context.Background(), func(*Engine) error {
			<-hold
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let Do take the engine
	blocked := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := pool.Ask("grad(tony)")
		blocked <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Ask block on the free list

	if err := pool.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if err := <-blocked; !errors.Is(err, ErrPoolClosed) {
		t.Errorf("blocked getter after Close = %v, want ErrPoolClosed", err)
	}
	// The in-flight lease finishes normally; its engine is then dropped.
	close(hold)
	if err := <-released; err != nil {
		t.Errorf("in-flight Do across Close = %v", err)
	}
	wg.Wait()
	pool.mu.Lock()
	created, free := pool.created, len(pool.free)
	pool.mu.Unlock()
	if created != 0 || free != 0 {
		t.Errorf("after Close: created=%d free=%d, want 0 and 0", created, free)
	}
	// Every query surface fails fast now, and Close stays idempotent.
	if _, err := pool.Ask("grad(tony)"); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Ask after Close = %v, want ErrPoolClosed", err)
	}
	if _, err := pool.Query("grad(S)"); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Query after Close = %v, want ErrPoolClosed", err)
	}
	if err := pool.QueryEachCtx(context.Background(), "grad(S)", func(Binding) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("QueryEachCtx after Close = %v, want ErrPoolClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

// TestPoolDoPanicReturnsEngine checks the Do contract a panicking
// handler relies on: the engine is back on the free list before the
// panic propagates.
func TestPoolDoPanicReturnsEngine(t *testing.T) {
	pool, err := NewPool(mustParse(t, uniSrc), Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of Do")
			}
		}()
		pool.Do(context.Background(), func(*Engine) error { panic("boom") })
	}()
	// With PoolSize 1, this deadlocks unless the engine was returned.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if ok, err := pool.AskCtx(ctx, "grad(tony)"); err != nil || !ok {
		t.Fatalf("Ask after panic = %v, %v; engine was not returned", ok, err)
	}
}

// TestPoolQueryEach checks the streaming enumerator yields exactly the
// Query answer set and that a yield error stops the walk and surfaces
// verbatim.
func TestPoolQueryEach(t *testing.T) {
	pool, err := NewPool(mustParse(t, uniSrc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pool.Query("take(S, C)")
	if err != nil {
		t.Fatal(err)
	}
	var got []Binding
	if err := pool.QueryEachCtx(context.Background(), "take(S, C)", func(b Binding) error {
		got = append(got, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d bindings, Query returned %d", len(got), len(want))
	}
	key := func(b Binding) string { return fmt.Sprintf("%s|%s", b["S"], b["C"]) }
	seen := map[string]bool{}
	for _, b := range got {
		seen[key(b)] = true
	}
	for _, b := range want {
		if !seen[key(b)] {
			t.Errorf("Query binding %v missing from stream", b)
		}
	}
	// A ground provable query yields exactly one empty binding.
	n := 0
	if err := pool.QueryEachCtx(context.Background(), "grad(tony)", func(b Binding) error {
		n++
		if len(b) != 0 {
			t.Errorf("ground query yielded non-empty binding %v", b)
		}
		return nil
	}); err != nil || n != 1 {
		t.Errorf("ground stream: n=%d err=%v, want 1 and nil", n, err)
	}
	// A yield error aborts the enumeration and comes back verbatim.
	sentinel := errors.New("stop here")
	calls := 0
	if err := pool.QueryEachCtx(context.Background(), "take(S, C)", func(Binding) error {
		calls++
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("yield error = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Errorf("yield called %d times after error, want 1", calls)
	}
}
